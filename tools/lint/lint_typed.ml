(* The typed backend of netcalc-lint: interprocedural dataflow over
   compiler-libs [.cmt] typedtrees (DESIGN.md §17).

   Per compilation unit, [facts_of_cmt] extracts local facts — the
   module-level mutable bindings, and for every binding the global
   symbols it references, the unguarded writes to non-local mutable
   state, the exceptions it can raise (minus those handled locally),
   plus every [Par.map]/[Par.mapi]/[Par.map_reduce] call site (with
   the facts of its worker closures, scoped so that state captured
   from the enclosing function counts as non-local) and every
   memoization site ([Incremental.memoize], [Minplus.cached],
   [Minplus.cached_op]) with the references of its key and compute
   arguments.  This phase is pure per file, so the driver fans it out
   on the [Par] pool.

   [analyze] then merges the facts into one symbol table and call
   graph and runs the four interprocedural rule families:

     par-escape          a write (without [Obs_sync.with_lock]) to
                         module-level mutable state — or to state
                         captured from the enclosing function — on a
                         path reachable from a Par worker closure
     exn-escape          control-flow exceptions (Not_found, Exit,
                         End_of_file) that can cross a Par worker
                         boundary uncaught, and *any* exception that
                         can escape a function marked
                         [[@@lint.exn_barrier]] (the serve request
                         loop)
     cache-key           mutable state transitively readable from a
                         memoized compute closure but not from its
                         key expression: a silent wrong-reuse bug
     unsorted-fold-flow  a list built by an unsorted hash-table fold
                         that flows into the function's return value
                         (the syntactic unsorted-fold rule only sees
                         the iteration site itself)

   Symbols are normalized to their last two dotted components
   ("Engine.compare_all", "Hashtbl.fold"); the netcalc libraries are
   all [(wrapped false)], so this matches how cross-module references
   appear in the typedtree.  The analysis is deliberately
   name-based and over-approximate on calls (passing a function as a
   value counts as calling it) and under-approximate on aliasing
   (writes through parameters are not tracked) — see
   tools/lint/README.md for the contract. *)

open Lint_core

type sym = string

(* ------------------------------------------------------------------ *)
(* Facts                                                               *)
(* ------------------------------------------------------------------ *)

type write = {
  w_name : string;  (* what was written, for messages *)
  w_sym : sym option;  (* Some when the target is a module-level binding *)
  w_captured : bool;  (* target captured from the enclosing function *)
  w_file : string;
  w_line : int;
  w_col : int;
}

type call = { c_sym : sym; c_handled : string list; c_catch_all : bool }

type fn = {
  fn_sym : sym;
  fn_file : string;
  fn_line : int;
  fn_waived : string list;
  fn_barrier : bool;
  fn_calls : call list;  (* every global reference, with handler context *)
  fn_writes : write list;  (* unguarded writes to non-local state *)
  fn_raises : (string * int) list;  (* exception name, line *)
}

type par_site = {
  ps_callee : string;
  ps_file : string;
  ps_line : int;
  ps_col : int;
  ps_waived : string list;  (* waivers on the enclosing binding *)
  ps_handled : string list;  (* handlers enclosing the call site *)
  ps_catch_all : bool;
  ps_worker_calls : call list;
  ps_worker_writes : write list;
  ps_worker_raises : (string * int) list;
}

type memo_site = {
  ms_callee : string;
  ms_file : string;
  ms_line : int;
  ms_col : int;
  ms_waived : string list;
  ms_key_refs : sym list;
  ms_compute_refs : sym list;
}

type unit_facts = {
  uf_file : string;
  uf_mutables : (sym * string * string list) list;  (* sym, kind, waivers *)
  uf_fns : fn list;
  uf_pars : par_site list;
  uf_memos : memo_site list;
  uf_findings : finding list;  (* resolved per-unit: fold-flow, cmt-error *)
}

let empty_unit file =
  { uf_file = file;
    uf_mutables = [];
    uf_fns = [];
    uf_pars = [];
    uf_memos = [];
    uf_findings = []
  }

(* ------------------------------------------------------------------ *)
(* Symbol normalization                                                *)
(* ------------------------------------------------------------------ *)

(* [Path.name] spells every constructor (including ones newer
   compilers add) as a dotted string, so splitting it is portable
   across 4.14 and 5.1. *)
let path_parts p = String.split_on_char '.' (Path.name p)

let strip_stdlib = function "Stdlib" :: rest -> rest | parts -> parts

(* "Stdlib.List.sort" -> "List.sort"; "Par.map" -> "Par.map";
   "Stdlib.raise" -> "raise".  [Pident]s are resolved by the caller
   (module-level binding vs. local) before reaching this point. *)
let norm_parts parts =
  match strip_stdlib parts with
  | [] -> ""
  | [ x ] -> x
  | parts -> (
      match List.rev parts with
      | v :: m :: _ -> m ^ "." ^ v
      | _ -> String.concat "." parts)

(* Unit name from [cmt_modname]: dune mangles executable modules to
   "Dune__exe__Netcalc_cli". *)
let unit_name_of_modname m =
  match String.rindex_opt m '_' with
  | Some i when i >= 1 && m.[i - 1] = '_' ->
      String.sub m (i + 1) (String.length m - i - 1)
  | _ -> m

(* ------------------------------------------------------------------ *)
(* Vocabulary                                                          *)
(* ------------------------------------------------------------------ *)

let tbl_module m =
  m = "Hashtbl"
  ||
  let lm = String.lowercase_ascii m in
  let n = String.length lm in
  n >= 3 && String.sub lm (n - 3) 3 = "tbl"

let split_sym s =
  match String.index_opt s '.' with
  | None -> ("", s)
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

(* Module-level bindings with these right-hand sides are mutable state
   the typed rules track.  [Incremental.table] and [Atomic.make] are
   typed-pass extras: the syntactic race-global rule predates them and
   its baseline is pinned, while par-escape/cache-key want them. *)
let mutable_rhs_callee s =
  let m, v = split_sym s in
  match (m, v) with
  | "", "ref" -> Some "ref cell"
  | _, "create" when tbl_module m -> Some "hash table"
  | "Buffer", "create" -> Some "buffer"
  | "Queue", "create" -> Some "queue"
  | "Stack", "create" -> Some "stack"
  | "Bytes", ("create" | "make") -> Some "byte buffer"
  | "Array", ("make" | "init" | "create_float") -> Some "array"
  | "Weak", "create" -> Some "weak array"
  | "Atomic", "make" -> Some "atomic"
  | "Incremental", "table" -> Some "memo table"
  | _ -> None

(* Calls that mutate their first unlabeled argument. *)
let mutator_callee s =
  let m, v = split_sym s in
  match (m, v) with
  | "", (":=" | "incr" | "decr") -> true
  | _, ("add" | "replace" | "remove" | "reset" | "clear" | "filter_map_inplace")
    when tbl_module m ->
      true
  | ( "Buffer",
      ( "add_string" | "add_char" | "add_substring" | "add_bytes"
      | "add_buffer" | "add_channel" | "clear" | "reset" | "truncate" ) ) ->
      true
  | "Queue", ("push" | "add" | "pop" | "take" | "clear" | "transfer") -> true
  | "Stack", ("push" | "pop" | "clear") -> true
  | "Array", ("set" | "fill" | "blit" | "unsafe_set") -> true
  | "Bytes", ("set" | "fill" | "blit" | "unsafe_set") -> true
  | ( "Atomic",
      ("set" | "exchange" | "compare_and_set" | "fetch_and_add" | "incr"
      | "decr") ) ->
      true
  | _ -> false

let sort_callee s =
  let m, v = split_sym s in
  match (m, v) with
  | "List", ("sort" | "sort_uniq" | "stable_sort" | "fast_sort") -> true
  | "Array", ("sort" | "stable_sort" | "fast_sort") -> true
  | _ -> false

let fold_callee s =
  let m, v = split_sym s in
  v = "fold" && tbl_module m

let par_callee s = List.mem s [ "Par.map"; "Par.mapi"; "Par.map_reduce" ]

let memo_callee s =
  List.mem s [ "Incremental.memoize"; "Minplus.cached"; "Minplus.cached_op" ]

let raise_callee s =
  match s with
  | "raise" | "raise_notrace" -> `Dynamic
  | "failwith" -> `Named "Failure"
  | "invalid_arg" -> `Named "Invalid_argument"
  | _ -> `No

(* Order-preserving list transforms: a nondeterministically ordered
   list stays order-sensitive through these. *)
let order_preserving s =
  let m, v = split_sym s in
  match (m, v) with
  | ( "List",
      ( "rev" | "map" | "mapi" | "rev_map" | "filter" | "filter_map"
      | "concat" | "concat_map" | "append" | "flatten" | "tl" ) ) ->
      true
  | "Array", "of_list" -> true
  | _ -> false

(* Exceptions that are local control flow by convention: crossing a
   Par worker boundary means they were meant to be caught near their
   raise site and now surface somewhere unrelated. *)
let par_danger_exn = [ "Not_found"; "Exit"; "End_of_file" ]

(* ------------------------------------------------------------------ *)
(* Attribute parsing (compiler-libs parsetree attributes)              *)
(* ------------------------------------------------------------------ *)

let attr_string_payload (a : Parsetree.attribute) =
  match a.attr_payload with
  | PStr
      [ { pstr_desc =
            Pstr_eval
              ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                _ );
          _
        }
      ] ->
      Some s
  | _ -> None

(* Malformed payloads are reported by the syntactic pass (which sees
   every source file); here we only consume well-formed waivers. *)
let waivers_of_attributes (attrs : Parsetree.attributes) =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt = legacy_waiver_name then
        match attr_string_payload a with
        | Some s when String.trim s <> "" -> legacy_rules
        | _ -> []
      else if a.attr_name.txt = waive_name then
        match Option.bind (attr_string_payload a) parse_waive_payload with
        | Some (rules, _) -> rules
        | None -> []
      else [])
    attrs

let has_barrier_attr (attrs : Parsetree.attributes) =
  List.exists (fun (a : Parsetree.attribute) -> a.attr_name.txt = barrier_name)
    attrs

(* ------------------------------------------------------------------ *)
(* Typedtree helpers                                                   *)
(* ------------------------------------------------------------------ *)

open Typedtree

let loc_line (loc : Location.t) = loc.loc_start.pos_lnum
let loc_col (loc : Location.t) =
  loc.loc_start.pos_cnum - loc.loc_start.pos_bol

let unlabeled args =
  List.filter_map
    (function Asttypes.Nolabel, Some e -> Some e | _ -> None)
    args

let arg_exprs args = List.filter_map (fun (_, e) -> e) args

let split_last l =
  match List.rev l with
  | [] -> None
  | x :: rev_init -> Some (List.rev rev_init, x)

let binding_ident vb =
  let rec go p =
    match p.pat_desc with
    | Tpat_var (id, _) -> Some id
    | Tpat_alias (p, _, _) -> go p
    | _ -> None
  in
  go vb.vb_pat

(* All idents bound by patterns (and [for] indices) within [e]. *)
let bound_idents_of_expr e =
  let acc = Hashtbl.create 32 in
  let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun sub p ->
    List.iter (fun id -> Hashtbl.replace acc id ()) (pat_bound_idents p);
    Tast_iterator.default_iterator.pat sub p
  in
  let expr sub e =
    (match e.exp_desc with
    | Texp_for (id, _, _, _, _, _) -> Hashtbl.replace acc id ()
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with pat; expr } in
  it.expr it e;
  acc

(* The exception names a handler-case pattern catches.
   [`All] is a wildcard. *)
let rec handler_of_pat p =
  match p.pat_desc with
  | Tpat_any | Tpat_var _ -> `All
  | Tpat_alias (p, _, _) -> handler_of_pat p
  | Tpat_construct (_, cstr, _, _) -> `Names [ cstr.Types.cstr_name ]
  | Tpat_or (a, b, _) -> (
      match (handler_of_pat a, handler_of_pat b) with
      | `All, _ | _, `All -> `All
      | `Names x, `Names y -> `Names (x @ y))
  | _ -> `Names []

let handlers_of_cases cases =
  List.fold_left
    (fun (names, catch_all) c ->
      match handler_of_pat c.c_lhs with
      | `All -> (names, true)
      | `Names ns -> (ns @ names, catch_all))
    ([], false) cases

(* Exception-handler part of [match] cases ([| exception E -> ...]). *)
let exn_handlers_of_match_cases cases =
  List.fold_left
    (fun (names, catch_all) c ->
      match split_pattern c.c_lhs with
      | _, Some exn_pat -> (
          match handler_of_pat exn_pat with
          | `All -> (names, true)
          | `Names ns -> (ns @ names, catch_all))
      | _, None -> (names, catch_all))
    ([], false) cases

let head_norm globals e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
      match p with
      | Path.Pident id -> (
          match Hashtbl.find_opt globals id with
          | Some sym -> Some sym
          | None -> Some (Ident.name id))
      | _ -> Some (norm_parts (path_parts p)))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Per-unit extraction                                                 *)
(* ------------------------------------------------------------------ *)

type scope = {
  sc_file : string;
  sc_globals : (Ident.t, sym) Hashtbl.t;  (* module-level idents *)
  sc_locals : (Ident.t, unit) Hashtbl.t;  (* bound within this scope *)
  (* resolved global refs of local let-bindings, for key-expression
     closure and worker resolution *)
  sc_let_refs : (Ident.t, sym list) Hashtbl.t;
  sc_let_funs : (Ident.t, expression) Hashtbl.t;
  mutable sc_lock : int;
  mutable sc_sort : int;
  mutable sc_handlers : (string list * bool) list;
  mutable sc_calls : call list;
  mutable sc_writes : write list;
  mutable sc_raises : (string * int) list;
  (* unsorted-fold-flow bookkeeping *)
  sc_tainted : (Ident.t, int) Hashtbl.t;  (* ident -> fold line *)
  mutable sc_sorted : Ident.t list;  (* idents later passed to a sort *)
}

let new_scope ~file ~globals locals =
  { sc_file = file;
    sc_globals = globals;
    sc_locals = locals;
    sc_let_refs = Hashtbl.create 16;
    sc_let_funs = Hashtbl.create 16;
    sc_lock = 0;
    sc_sort = 0;
    sc_handlers = [];
    sc_calls = [];
    sc_writes = [];
    sc_raises = [];
    sc_tainted = Hashtbl.create 4;
    sc_sorted = []
  }

let scope_handled sc =
  List.fold_left
    (fun (names, ca) (ns, c) -> (ns @ names, ca || c))
    ([], false) sc.sc_handlers

(* Resolve an ident path to the global symbols it denotes: a module
   path directly; a local let-binding to the refs of its right-hand
   side (so a let-bound key expression still reveals what it reads). *)
let resolve_syms sc p =
  match p with
  | Path.Pident id -> (
      match Hashtbl.find_opt sc.sc_globals id with
      | Some sym -> [ sym ]
      | None -> (
          match Hashtbl.find_opt sc.sc_let_refs id with
          | Some syms -> syms
          | None -> []))
  | _ -> [ norm_parts (path_parts p) ]

(* The global references of a sub-expression (key/compute arguments),
   with local lets resolved through [sc_let_refs]. *)
let refs_of_expr sc e =
  let acc = ref [] in
  let expr sub x =
    (match x.exp_desc with
    | Texp_ident (p, _, _) -> acc := resolve_syms sc p @ !acc
    | _ -> ());
    Tast_iterator.default_iterator.expr sub x
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it e;
  List.sort_uniq String.compare !acc

let expr_contains pred e =
  let found = ref false in
  let expr sub x =
    if !found then ()
    else if pred x then found := true
    else Tast_iterator.default_iterator.expr sub x
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

let builds_list e =
  expr_contains
    (fun x ->
      match x.exp_desc with
      | Texp_construct (_, cstr, _) -> cstr.Types.cstr_name = "::"
      | _ -> false)
    e

(* An unsorted hash-table fold building a list somewhere inside [e]
   (the right-hand side of a let): returns the fold's line. *)
let unsorted_fold_in sc e =
  let found = ref None in
  let expr sub x =
    (if !found = None then
       match x.exp_desc with
       | Texp_apply (h, args) -> (
           match head_norm sc.sc_globals h with
           | Some s when fold_callee s -> (
               match unlabeled args with
               | cb :: _ when builds_list cb ->
                   found := Some (loc_line x.exp_loc)
               | _ -> ())
           | _ -> ())
       | _ -> ());
    Tast_iterator.default_iterator.expr sub x
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it e;
  match !found with
  | Some line ->
      (* A sort applied anywhere in the same right-hand side
         ([fold ... |> List.sort]) already pins the order. *)
      let sorted =
        expr_contains
          (fun x ->
            match x.exp_desc with
            | Texp_ident (p, _, _) -> sort_callee (norm_parts (path_parts p))
            | _ -> false)
          e
      in
      if sorted then None else Some line
  | None -> None

(* Classify a write target. *)
let rec write_target sc e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
      match p with
      | Path.Pident id ->
          if Hashtbl.mem sc.sc_locals id then `Local
          else (
            match Hashtbl.find_opt sc.sc_globals id with
            | Some sym -> `Global (Ident.name id, sym)
            | None -> `Captured (Ident.name id))
      | _ ->
          let parts = path_parts p in
          `Global (String.concat "." (strip_stdlib parts), norm_parts parts))
  | Texp_field (inner, _, _) -> write_target sc inner
  | _ -> `Opaque

let record_write sc ~loc target =
  if sc.sc_lock = 0 then
    match target with
    | `Local -> ()
    | `Global (name, sym) ->
        sc.sc_writes <-
          { w_name = name;
            w_sym = Some sym;
            w_captured = false;
            w_file = sc.sc_file;
            w_line = loc_line loc;
            w_col = loc_col loc
          }
          :: sc.sc_writes
    | `Captured name ->
        sc.sc_writes <-
          { w_name = name;
            w_sym = None;
            w_captured = true;
            w_file = sc.sc_file;
            w_line = loc_line loc;
            w_col = loc_col loc
          }
          :: sc.sc_writes
    | `Opaque -> ()

(* Mutable sinks filled by [walk] across every scope of a unit. *)
type unit_acc = {
  mutable ua_pars : par_site list;
  mutable ua_memos : memo_site list;
  mutable ua_findings : finding list;
}

(* The main walker over a scope's expressions.  Special forms get
   manual recursion with adjusted context; everything else goes
   through [Tast_iterator.default_iterator], which keeps the walker
   portable across 4.14 and 5.1 typedtree differences. *)
let rec walk sc ~ua ~binding_waivers e =
  let it = make_iterator sc ~ua ~binding_waivers in
  it.Tast_iterator.expr it e

and make_iterator sc ~ua ~binding_waivers =
  let expr sub (e : expression) =
    let dflt () = Tast_iterator.default_iterator.expr sub e in
    let walk_e x = sub.Tast_iterator.expr sub x in
    match e.exp_desc with
    | Texp_ident (p, _, _) ->
        let handled, catch_all = scope_handled sc in
        List.iter
          (fun s ->
            sc.sc_calls <-
              { c_sym = s; c_handled = handled; c_catch_all = catch_all }
              :: sc.sc_calls)
          (match p with
          | Path.Pident id -> (
              if Hashtbl.mem sc.sc_locals id then []
              else
                match Hashtbl.find_opt sc.sc_globals id with
                | Some sym -> [ sym ]
                | None -> [])
          | _ -> [ norm_parts (path_parts p) ])
    | Texp_let (_, vbs, body) ->
        List.iter
          (fun vb ->
            walk_e vb.vb_expr;
            match binding_ident vb with
            | Some id ->
                Hashtbl.replace sc.sc_let_refs id (refs_of_expr sc vb.vb_expr);
                (match vb.vb_expr.exp_desc with
                | Texp_function _ -> Hashtbl.replace sc.sc_let_funs id vb.vb_expr
                | _ -> ());
                if sc.sc_sort = 0 then (
                  match unsorted_fold_in sc vb.vb_expr with
                  | Some line -> Hashtbl.replace sc.sc_tainted id line
                  | None -> ())
            | None -> ())
          vbs;
        walk_e body
    | Texp_setfield (lhs, _, _, rhs) ->
        record_write sc ~loc:e.exp_loc (write_target sc lhs);
        walk_e lhs;
        walk_e rhs
    | Texp_try (body, cases) ->
        let names, catch_all = handlers_of_cases cases in
        sc.sc_handlers <- (names, catch_all) :: sc.sc_handlers;
        walk_e body;
        sc.sc_handlers <- List.tl sc.sc_handlers;
        List.iter
          (fun c ->
            Option.iter walk_e c.c_guard;
            walk_e c.c_rhs)
          cases
    | Texp_match (scrut, cases, _) ->
        let names, catch_all = exn_handlers_of_match_cases cases in
        (if names <> [] || catch_all then (
           sc.sc_handlers <- (names, catch_all) :: sc.sc_handlers;
           walk_e scrut;
           sc.sc_handlers <- List.tl sc.sc_handlers)
         else walk_e scrut);
        List.iter
          (fun c ->
            Option.iter walk_e c.c_guard;
            walk_e c.c_rhs)
          cases
    | Texp_assert _ ->
        sc.sc_raises <- ("Assert_failure", loc_line e.exp_loc) :: sc.sc_raises;
        dflt ()
    | Texp_apply (h, args) -> (
        match head_norm sc.sc_globals h with
        | None -> dflt ()
        | Some s -> (
            match raise_callee s with
            | `Named exn ->
                if not (locally_handled sc exn) then
                  sc.sc_raises <- (exn, loc_line e.exp_loc) :: sc.sc_raises;
                List.iter walk_e (arg_exprs args)
            | `Dynamic ->
                let exn =
                  match unlabeled args with
                  | [ { exp_desc = Texp_construct (_, cstr, _); _ } ] ->
                      cstr.Types.cstr_name
                  | _ -> "<dynamic>"
                in
                if not (locally_handled sc exn) then
                  sc.sc_raises <- (exn, loc_line e.exp_loc) :: sc.sc_raises;
                List.iter walk_e (arg_exprs args)
            | `No ->
                if String.length s >= 9
                   && (let n = String.length s in
                       String.sub s (n - 9) 9 = "with_lock")
                then (
                  match split_last args with
                  | Some (init, (_, body)) ->
                      walk_e h;
                      List.iter walk_e (arg_exprs init);
                      sc.sc_lock <- sc.sc_lock + 1;
                      Option.iter walk_e body;
                      sc.sc_lock <- sc.sc_lock - 1
                  | None -> dflt ())
                else if sort_callee s then (
                  List.iter
                    (fun a ->
                      match a.exp_desc with
                      | Texp_ident (Path.Pident id, _, _) ->
                          sc.sc_sorted <- id :: sc.sc_sorted
                      | _ -> ())
                    (unlabeled args);
                  walk_e h;
                  sc.sc_sort <- sc.sc_sort + 1;
                  List.iter walk_e (arg_exprs args);
                  sc.sc_sort <- sc.sc_sort - 1)
                else if s = "|>" || s = "@@" then (
                  (* [x |> List.sort cmp] / [List.sort cmp @@ x]: credit
                     the sort to the piped argument. *)
                  (match (s, unlabeled args) with
                  | "|>", [ lhs; rhs ] -> pipe_sort sc rhs lhs
                  | "@@", [ lhs; rhs ] -> pipe_sort sc lhs rhs
                  | _ -> ());
                  dflt ())
                else if mutator_callee s then (
                  (match unlabeled args with
                  | target :: _ ->
                      record_write sc ~loc:e.exp_loc (write_target sc target)
                  | [] -> ());
                  walk_e h;
                  List.iter walk_e (arg_exprs args))
                else if par_callee s then (
                  record_par_site sc ~ua ~binding_waivers ~callee:s
                    ~loc:e.exp_loc args;
                  walk_e h;
                  List.iter walk_e (arg_exprs args))
                else if memo_callee s then (
                  record_memo_site sc ~ua ~binding_waivers ~callee:s
                    ~loc:e.exp_loc args;
                  walk_e h;
                  List.iter walk_e (arg_exprs args))
                else dflt ()))
    | _ -> dflt ()
  in
  { Tast_iterator.default_iterator with expr }

and locally_handled sc exn =
  let names, catch_all = scope_handled sc in
  catch_all || List.mem exn names

and pipe_sort sc callee_side arg_side =
  let is_sort =
    match callee_side.exp_desc with
    | Texp_ident (p, _, _) -> sort_callee (norm_parts (path_parts p))
    | Texp_apply (h, _) -> (
        match head_norm sc.sc_globals h with
        | Some s -> sort_callee s
        | None -> false)
    | _ -> false
  in
  if is_sort then
    match arg_side.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> sc.sc_sorted <- id :: sc.sc_sorted
    | _ -> ()

(* A Par call site: analyze each worker argument in a fresh scope so
   that everything bound outside the worker (enclosing-function
   locals included) counts as captured.  Local let-bound helper
   functions referenced by the worker are pulled into the same worker
   scope, one level at a time, so [let bump () = ... in Par.map (fun x
   -> bump (); x) xs] still surfaces the write. *)
and record_par_site sc ~ua ~binding_waivers ~callee ~loc args =
  let workers =
    match callee with
    | "Par.map_reduce" ->
        List.filter_map
          (function
            | Asttypes.Labelled ("map" | "reduce"), (Some _ as e) -> e
            | _ -> None)
          args
    | _ -> (
        match unlabeled args with w :: _ -> [ w ] | [] -> [])
  in
  let locals = Hashtbl.create 32 in
  let wsc = new_scope ~file:sc.sc_file ~globals:sc.sc_globals locals in
  (* Resolution of captured locals still goes through the enclosing
     scope's let-bindings. *)
  Hashtbl.iter (fun k v -> Hashtbl.replace wsc.sc_let_refs k v) sc.sc_let_refs;
  let queue = Queue.create () in
  let visited = Hashtbl.create 8 in
  List.iter (fun w -> Queue.add w queue) workers;
  while not (Queue.is_empty queue) do
    let w = Queue.pop queue in
    (match w.exp_desc with
    | Texp_ident (Path.Pident id, _, _)
      when not (Hashtbl.mem sc.sc_globals id) -> (
        (* a local ident: analyze its function body if we have one *)
        match Hashtbl.find_opt sc.sc_let_funs id with
        | Some body when not (Hashtbl.mem visited id) ->
            Hashtbl.replace visited id ();
            Queue.add body queue
        | _ -> ())
    | _ ->
        Hashtbl.iter
          (fun id () -> Hashtbl.replace locals id ())
          (bound_idents_of_expr w);
        walk wsc ~ua ~binding_waivers w;
        (* pull in local helpers the worker calls *)
        List.iter
          (fun c ->
            ignore c;
            ())
          [];
        Hashtbl.iter
          (fun id body ->
            if
              (not (Hashtbl.mem visited id))
              && expr_contains
                   (fun x ->
                     match x.exp_desc with
                     | Texp_ident (Path.Pident id', _, _) ->
                         Ident.same id id'
                     | _ -> false)
                   w
            then (
              Hashtbl.replace visited id ();
              Queue.add body queue))
          sc.sc_let_funs);
    ()
  done;
  let handled, catch_all = scope_handled sc in
  ua.ua_pars <-
    { ps_callee = callee;
      ps_file = sc.sc_file;
      ps_line = loc_line loc;
      ps_col = loc_col loc;
      ps_waived = binding_waivers;
      ps_handled = handled;
      ps_catch_all = catch_all;
      ps_worker_calls = wsc.sc_calls;
      ps_worker_writes = wsc.sc_writes;
      ps_worker_raises = wsc.sc_raises
    }
    :: ua.ua_pars

and record_memo_site sc ~ua ~binding_waivers ~callee ~loc args =
  let exprs = arg_exprs args in
  match split_last exprs with
  | None -> ()
  | Some (key_args, compute) ->
      ua.ua_memos <-
        { ms_callee = callee;
          ms_file = sc.sc_file;
          ms_line = loc_line loc;
          ms_col = loc_col loc;
          ms_waived = binding_waivers;
          ms_key_refs =
            List.sort_uniq String.compare
              (List.concat_map (refs_of_expr sc) key_args);
          ms_compute_refs = refs_of_expr sc compute
        }
        :: ua.ua_memos

(* ------------------------------------------------------------------ *)
(* Return-position scan for unsorted-fold-flow                         *)
(* ------------------------------------------------------------------ *)

(* The tail expressions of a function body: where its return value is
   built. *)
let rec tails e acc =
  match e.exp_desc with
  | Texp_function { cases; _ } ->
      List.fold_left (fun acc c -> tails c.c_rhs acc) acc cases
  | Texp_let (_, _, body) -> tails body acc
  | Texp_sequence (_, b) -> tails b acc
  | Texp_ifthenelse (_, t, f) ->
      let acc = tails t acc in
      (match f with Some f -> tails f acc | None -> acc)
  | Texp_match (_, cases, _) ->
      List.fold_left (fun acc c -> tails c.c_rhs acc) acc cases
  | Texp_try (_, cases) ->
      List.fold_left (fun acc c -> tails c.c_rhs acc) acc cases
  | _ -> e :: acc

(* Idents whose order reaches the return value of a tail expression:
   the ident itself, tuple/constructor/record components, and
   order-preserving list transforms of it. *)
let rec returned_idents globals e acc =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> id :: acc
  | Texp_tuple es -> List.fold_left (fun a x -> returned_idents globals x a) acc es
  | Texp_construct (_, _, es) ->
      List.fold_left (fun a x -> returned_idents globals x a) acc es
  | Texp_record { fields; _ } ->
      Array.fold_left
        (fun a (_, def) ->
          match def with
          | Overridden (_, x) -> returned_idents globals x a
          | Kept _ -> a)
        acc fields
  | Texp_apply (h, args) -> (
      match head_norm globals h with
      | Some s when order_preserving s ->
          List.fold_left
            (fun a x -> returned_idents globals x a)
            acc (unlabeled args)
      | _ -> acc)
  | _ -> acc

(* ------------------------------------------------------------------ *)
(* Unit analysis                                                       *)
(* ------------------------------------------------------------------ *)

let mutable_kind_of_rhs globals e =
  match e.exp_desc with
  | Texp_apply (h, _) -> (
      match head_norm globals h with
      | Some s -> mutable_rhs_callee s
      | None -> None)
  | Texp_array _ -> Some "array"
  | Texp_record { fields; _ }
    when Array.exists
           (fun (ld, _) -> ld.Types.lbl_mut = Asttypes.Mutable)
           fields ->
      Some "record with mutable fields"
  | _ -> None

let facts_of_structure ~file ~unit_name str =
  (* pass A: module-level bindings -> symbols *)
  let globals : (Ident.t, sym) Hashtbl.t = Hashtbl.create 64 in
  let bindings : (sym * string * value_binding) list ref = ref [] in
  let rec collect_str prefix s = List.iter (collect_item prefix) s.str_items
  and collect_item prefix it =
    match it.str_desc with
    | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match binding_ident vb with
            | Some id ->
                let sym = prefix ^ "." ^ Ident.name id in
                Hashtbl.replace globals id sym;
                bindings := (sym, prefix, vb) :: !bindings
            | None -> ())
          vbs
    | Tstr_module mb -> collect_mb prefix mb
    | Tstr_recmodule mbs -> List.iter (collect_mb prefix) mbs
    | Tstr_include incl -> collect_mod prefix incl.incl_mod
    | _ -> ()
  and collect_mb prefix mb =
    let inner =
      match mb.mb_id with Some id -> Ident.name id | None -> prefix
    in
    collect_mod inner mb.mb_expr
  and collect_mod prefix me =
    match me.mod_desc with
    | Tmod_structure s -> collect_str prefix s
    | Tmod_constraint (m, _, _, _) -> collect_mod prefix m
    | Tmod_functor (_, m) -> collect_mod prefix m
    | _ -> ()
  in
  collect_str unit_name str;
  let bindings = List.rev !bindings in

  (* pass B: per-binding facts *)
  let ua = { ua_pars = []; ua_memos = []; ua_findings = [] } in
  let mutables = ref [] in
  let fns = ref [] in
  List.iter
    (fun (sym, _prefix, vb) ->
      let waivers = waivers_of_attributes vb.vb_attributes in
      let barrier = has_barrier_attr vb.vb_attributes in
      (match mutable_kind_of_rhs globals vb.vb_expr with
      | Some kind -> mutables := (sym, kind, waivers) :: !mutables
      | None -> ());
      let locals = bound_idents_of_expr vb.vb_expr in
      let sc = new_scope ~file ~globals locals in
      walk sc ~ua ~binding_waivers:waivers vb.vb_expr;
      (* unsorted-fold-flow: tainted lets reaching the return value *)
      (if not (List.mem "unsorted-fold-flow" waivers) then
         let tail_ids =
           tails vb.vb_expr []
           |> List.fold_left (fun a t -> returned_idents globals t a) []
         in
         Hashtbl.fold (fun id line acc -> (id, line) :: acc) sc.sc_tainted []
         |> List.sort (fun (_, a) (_, b) -> compare a b)
         |> List.iter
              (fun (id, fold_line) ->
             if
               (not (List.exists (Ident.same id) sc.sc_sorted))
               && List.exists (Ident.same id) tail_ids
             then
               ua.ua_findings <-
                 { file;
                   line = fold_line;
                   col = 0;
                   rule = "unsorted-fold-flow";
                   msg =
                     Printf.sprintf
                       "hash-table fold builds [%s] in unspecified iteration \
                        order and it flows into the value returned by %s"
                       (Ident.name id) sym;
                   hint =
                     "sort before returning (the order crosses the function \
                      boundary), or waive with [@@lint.waive \
                      \"unsorted-fold-flow: reason\"]"
                 }
                 :: ua.ua_findings));
      fns :=
        { fn_sym = sym;
          fn_file = file;
          fn_line = loc_line vb.vb_loc;
          fn_waived = waivers;
          fn_barrier = barrier;
          fn_calls = sc.sc_calls;
          fn_writes = sc.sc_writes;
          fn_raises = sc.sc_raises
        }
        :: !fns)
    bindings;
  { uf_file = file;
    uf_mutables = !mutables;
    uf_fns = !fns;
    uf_pars = ua.ua_pars;
    uf_memos = ua.ua_memos;
    uf_findings = ua.ua_findings
  }

let facts_of_cmt path =
  match Cmt_format.read_cmt path with
  | exception exn ->
      let u = empty_unit path in
      { u with
        uf_findings =
          [ { file = path;
              line = 0;
              col = 0;
              rule = "cmt-error";
              msg =
                Printf.sprintf "cannot read cmt: %s" (Printexc.to_string exn);
              hint =
                "rebuild (dune build @check) with the same compiler as the \
                 linter"
            }
          ]
      }
  | cmt -> (
      let file =
        match cmt.Cmt_format.cmt_sourcefile with Some s -> s | None -> path
      in
      match cmt.Cmt_format.cmt_annots with
      | Cmt_format.Implementation str ->
          let unit_name = unit_name_of_modname cmt.Cmt_format.cmt_modname in
          facts_of_structure ~file ~unit_name str
      | _ -> empty_unit file)

(* ------------------------------------------------------------------ *)
(* Global phases                                                       *)
(* ------------------------------------------------------------------ *)

module SSet = Set.Make (String)

let analyze (units : unit_facts list) : finding list =
  let findings = ref [] in
  let add f = findings := f :: !findings in

  let fn_tbl : (sym, fn) Hashtbl.t = Hashtbl.create 512 in
  let mut_tbl : (sym, string * string list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun u ->
      List.iter (fun f -> Hashtbl.replace fn_tbl f.fn_sym f) u.uf_fns;
      List.iter
        (fun (s, kind, waivers) -> Hashtbl.replace mut_tbl s (kind, waivers))
        u.uf_mutables;
      List.iter add u.uf_findings)
    units;
  let mut_waived rule s =
    match Hashtbl.find_opt mut_tbl s with
    | Some (_, waivers) -> List.mem rule waivers
    | None -> false
  in

  (* -- raise-set fixpoint ------------------------------------------- *)
  let raises : (sym, SSet.t) Hashtbl.t = Hashtbl.create 512 in
  let get_raises s =
    match Hashtbl.find_opt raises s with Some x -> x | None -> SSet.empty
  in
  let raises_through (c : call) =
    if c.c_catch_all then SSet.empty
    else SSet.diff (get_raises c.c_sym) (SSet.of_list c.c_handled)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun s (f : fn) ->
        let direct = SSet.of_list (List.map fst f.fn_raises) in
        let v =
          List.fold_left
            (fun acc c -> SSet.union acc (raises_through c))
            direct f.fn_calls
        in
        if not (SSet.equal v (get_raises s)) then (
          Hashtbl.replace raises s v;
          changed := true))
      fn_tbl
  done;

  (* -- reachable-mutable fixpoint (for cache-key) ------------------- *)
  let mreach : (sym, SSet.t) Hashtbl.t = Hashtbl.create 512 in
  let get_mreach s =
    match Hashtbl.find_opt mreach s with Some x -> x | None -> SSet.empty
  in
  let direct_and_reach s =
    if Hashtbl.mem mut_tbl s then SSet.singleton s else get_mreach s
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun s (f : fn) ->
        let v =
          List.fold_left
            (fun acc c -> SSet.union acc (direct_and_reach c.c_sym))
            SSet.empty f.fn_calls
        in
        if not (SSet.equal v (get_mreach s)) then (
          Hashtbl.replace mreach s v;
          changed := true))
      fn_tbl
  done;
  let mreach_of_refs refs =
    List.fold_left
      (fun acc s -> SSet.union acc (direct_and_reach s))
      SSet.empty refs
  in

  (* -- par-escape --------------------------------------------------- *)
  let reachable_from roots =
    let visited = Hashtbl.create 64 in
    let rec go s =
      if not (Hashtbl.mem visited s) then (
        Hashtbl.replace visited s ();
        match Hashtbl.find_opt fn_tbl s with
        | Some f -> List.iter (fun c -> go c.c_sym) f.fn_calls
        | None -> ())
    in
    List.iter go roots;
    visited
  in
  let flag_write ~via ~waivers (w : write) =
    let waived =
      List.mem "par-escape" waivers
      || match w.w_sym with Some s -> mut_waived "par-escape" s | None -> false
    in
    if not waived then
      let what =
        match w.w_sym with
        | Some s -> (
            match Hashtbl.find_opt mut_tbl s with
            | Some (kind, _) -> Printf.sprintf "top-level mutable %s [%s]" kind s
            | None -> if w.w_captured then
                Printf.sprintf "captured mutable [%s]" w.w_name
              else Printf.sprintf "[%s]" s)
        | None -> Printf.sprintf "captured mutable [%s]" w.w_name
      in
      (* only writes to known mutable state or captured state count *)
      let tracked =
        w.w_captured
        || match w.w_sym with Some s -> Hashtbl.mem mut_tbl s | None -> false
      in
      if tracked then
        add
          { file = w.w_file;
            line = w.w_line;
            col = w.w_col;
            rule = "par-escape";
            msg =
              Printf.sprintf
                "unsynchronized write to %s on a path reachable from %s \
                 workers"
                what via;
            hint =
              "wrap the write in Obs_sync.with_lock, keep the state local to \
               the worker, or waive with [@@lint.waive \"par-escape: \
               reason\"]"
          }
  in
  List.iter
    (fun u ->
      List.iter
        (fun ps ->
          let via =
            Printf.sprintf "%s (%s:%d)" ps.ps_callee ps.ps_file ps.ps_line
          in
          (* direct writes in the worker closure *)
          List.iter (flag_write ~via ~waivers:ps.ps_waived) ps.ps_worker_writes;
          (* writes anywhere reachable from the worker's references *)
          let roots = List.map (fun c -> c.c_sym) ps.ps_worker_calls in
          let reach = reachable_from roots in
          Hashtbl.iter
            (fun s () ->
              match Hashtbl.find_opt fn_tbl s with
              | Some (f : fn) ->
                  if not (List.mem "par-escape" f.fn_waived) then
                    List.iter
                      (fun w ->
                        if not w.w_captured then
                          flag_write ~via ~waivers:f.fn_waived w)
                      f.fn_writes
              | None -> ())
            reach)
        u.uf_pars)
    units;

  (* -- exn-escape at Par sites -------------------------------------- *)
  List.iter
    (fun u ->
      List.iter
        (fun ps ->
          if not (List.mem "exn-escape" ps.ps_waived || ps.ps_catch_all) then (
            let direct = SSet.of_list (List.map fst ps.ps_worker_raises) in
            let via_calls =
              List.fold_left
                (fun acc c -> SSet.union acc (raises_through c))
                SSet.empty ps.ps_worker_calls
            in
            let escapes =
              SSet.diff (SSet.union direct via_calls)
                (SSet.of_list ps.ps_handled)
            in
            let dangerous =
              SSet.inter escapes (SSet.of_list par_danger_exn)
            in
            SSet.iter
              (fun exn ->
                add
                  { file = ps.ps_file;
                    line = ps.ps_line;
                    col = ps.ps_col;
                    rule = "exn-escape";
                    msg =
                      Printf.sprintf
                        "%s can cross the %s worker boundary uncaught: it is \
                         control flow that was meant to be handled near its \
                         raise site"
                        exn ps.ps_callee;
                    hint =
                      "validate inputs before the parallel section, catch \
                       the exception inside the worker, or waive the \
                       enclosing binding with [@@lint.waive \"exn-escape: \
                       reason\"]"
                  })
              dangerous))
        u.uf_pars)
    units;

  (* -- exn-escape at barriers --------------------------------------- *)
  Hashtbl.iter
    (fun s (f : fn) ->
      if f.fn_barrier && not (List.mem "exn-escape" f.fn_waived) then
        SSet.iter
          (fun exn ->
            add
              { file = f.fn_file;
                line = f.fn_line;
                col = 0;
                rule = "exn-escape";
                msg =
                  (if exn = "<dynamic>" then
                     Printf.sprintf
                       "%s re-raises a dynamic exception past its \
                        [@@lint.exn_barrier]"
                       s
                   else
                     Printf.sprintf
                       "%s can let %s escape past its [@@lint.exn_barrier]"
                       s exn);
                hint =
                  "a barrier function must convert every exception into a \
                   response value (catch-all at the dispatch point)"
              })
          (get_raises s))
    fn_tbl;

  (* -- cache-key ---------------------------------------------------- *)
  List.iter
    (fun u ->
      List.iter
        (fun ms ->
          if not (List.mem "cache-key" ms.ms_waived) then (
            let key_amb = mreach_of_refs ms.ms_key_refs in
            let comp_amb = mreach_of_refs ms.ms_compute_refs in
            let unkeyed =
              SSet.filter
                (fun s -> not (mut_waived "cache-key" s))
                (SSet.diff comp_amb key_amb)
            in
            (* One finding per memo site, naming every unkeyed symbol
               — per-symbol findings at the same line would collapse
               in dedup and hide all but the first. *)
            if not (SSet.is_empty unkeyed) then
              add
                { file = ms.ms_file;
                  line = ms.ms_line;
                  col = ms.ms_col;
                  rule = "cache-key";
                  msg =
                    Printf.sprintf
                      "%s compute reads mutable state not folded into the \
                       cache key (a stale hit silently replays a value \
                       computed under different state): %s"
                      ms.ms_callee
                      (String.concat ", " (SSet.elements unkeyed));
                  hint =
                    "fold the state into the key expression, or — where it \
                     cannot change the computed value — waive the state \
                     binding with [@@lint.waive \"cache-key: reason\"]"
                }))
        u.uf_memos)
    units;

  !findings

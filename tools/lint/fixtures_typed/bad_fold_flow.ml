(* unsorted-fold-flow (bad): a list built by Hashtbl.fold is bound to
   a local, passes through an order-preserving transform, and is
   returned — the syntactic same-expression rule cannot see it, only
   the flow-aware typed pass can. *)

let summarize tbl =
  let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  List.rev items

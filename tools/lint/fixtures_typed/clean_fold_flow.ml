(* unsorted-fold-flow (clean): the same fold-into-local shape, but
   the local is sorted before it reaches the return value, which
   pins the iteration order. *)

let summarize tbl =
  let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  List.sort compare items

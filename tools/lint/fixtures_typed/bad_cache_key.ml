(* cache-key (bad): the memoized compute reads Fixture_state.knob
   (through a cross-module call), but the key is derived from the
   network alone — a later change to the knob serves a stale hit. *)

let memo : float Incremental.table = Incremental.table ()

let analysis net =
  Fixture_state.scale (float_of_int (List.length (Network.servers net)))

let cached net =
  Incremental.memoize memo (Incremental.net_key net) (fun () -> analysis net)

(* par-escape (bad): mutable state written, lock-free, from inside a
   Par worker — once transitively through a cross-module helper
   (Fixture_state.bump writes Fixture_state.total), once directly on
   a local captured by the worker closure. *)

let run xs =
  Par.map
    (fun n ->
      Fixture_state.bump n;
      n)
    xs

let sum xs =
  let acc = ref 0 in
  let _ =
    Par.map
      (fun n ->
        acc := !acc + n;
        n)
      xs
  in
  !acc

(* cache-key (clean): the same knob-dependent compute, but the knob
   is folded into the key.  The key is a let-bound local, so the
   checker must resolve the local back to its right-hand side before
   judging coverage. *)

let memo : float Incremental.table = Incremental.table ()

let analysis net =
  Fixture_state.scale (float_of_int (List.length (Network.servers net)))

let cached net =
  let key =
    Incremental.net_key
      ~options:(Options.with_compaction !Fixture_state.knob Options.default)
      net
  in
  Incremental.memoize memo key (fun () -> analysis net)

(* exn-escape (bad): an exception raised by a cross-module helper
   (Fixture_state.find_exn raises Not_found) escapes a Par worker
   with no handler inside the worker; and a function declared as an
   exception barrier lets Failure out. *)

let lookup_all tbl ks = Par.map (fun k -> Fixture_state.find_exn tbl k) ks

let handle line = if String.length line = 0 then failwith "empty" else line
[@@lint.exn_barrier]

(* Shared mutable state and helpers for the typed-lint fixture
   corpus.  The bad_* fixtures reference these cross-module, so the
   interprocedural passes must look through unit boundaries to
   connect a Par worker (or a memoized compute) in one file with a
   write (or a read) in this one. *)

let total = ref 0
let knob = ref 1.0

(* Written without a lock: flagged (par-escape) when reached from a
   Par worker in Bad_par_escape. *)
let bump n = total := !total + n

(* Reads [knob]: flagged (cache-key) when reached from a memoized
   compute in Bad_cache_key whose key ignores the knob. *)
let scale x = x *. !knob

(* Raises: flagged (exn-escape) when reached from a Par worker in
   Bad_exn_escape with no handler inside the worker. *)
let find_exn tbl k =
  match Hashtbl.find_opt tbl k with
  | Some v -> v
  | None -> raise Not_found

(* exn-escape (clean): the worker catches the helper's Not_found
   itself (match ... with exception), and the barrier function ends
   in a catch-all. *)

let lookup_all tbl ks =
  Par.map
    (fun k ->
      match Fixture_state.find_exn tbl k with
      | v -> Some v
      | exception Not_found -> None)
    ks

let handle line =
  try if String.length line = 0 then failwith "empty" else line
  with _ -> "error"
[@@lint.exn_barrier]

(* par-escape (clean): the same shapes as Bad_par_escape, but the
   global write is guarded by Obs_sync.with_lock, the captured-local
   write carries a reasoned waiver, and a read-only capture is fine
   as-is. *)

let lock = Obs_sync.create ()
let total = ref 0

let bump n = Obs_sync.with_lock lock (fun () -> total := !total + n)

let run xs =
  Par.map
    (fun n ->
      bump n;
      n)
    xs

let hits = ref 0
[@@lint.waive
  "par-escape: fixture — demonstrates a reasoned waiver on a counter \
   whose exact value is not load-bearing"]

let count xs =
  Par.map
    (fun n ->
      hits := !hits + n;
      n)
    xs

let scale_all factor xs = Par.map (fun x -> x *. factor) xs

(* netcalc-lint — static analyzer for netcalc's domain-safety and
   numeric-discipline conventions.

   Parses every [.ml] file under the given paths with ppxlib's parser
   and enforces six rule families (DESIGN.md §12):

     race-global     top-level mutable state (ref cells, hash tables,
                     buffers, arrays, records with mutable fields) in
                     library code must have every access wrapped in
                     [Obs_sync.with_lock] within the same function, or
                     carry a [[@@lint.domain_safe "reason"]] waiver
     pwl-poly-eq     no polymorphic [=] / [<>] / [compare] /
                     [Hashtbl.hash] on expressions syntactically known
                     to be [Pwl.t] — use the uid-based [Pwl.equal] /
                     [Pwl.compare] / [Pwl.hash]
     float-eq        no raw [=] / [<>] on float literals or
                     float-annotated expressions outside
                     [lib/util/float_ops.ml]
     forbidden-prim  [Sys.time], [Random.self_init], [Obj.magic]
                     anywhere; [print_string] / [Printf.printf] in
                     [lib/] (output belongs to obs or return values)
     unsorted-fold   [Hashtbl.fold] / [Hashtbl.iter] whose callback
                     builds a list or prints, with no enclosing sort:
                     iteration order is unspecified, so the output is
                     nondeterministic
     curve-repr      engine code (lib/core, lib/sched, lib/serve)
                     calling the min-plus kernels directly
                     ([Minplus.conv] &c.) or rebuilding curves from
                     samplers ([Pwl.of_sampler]): both bypass the
                     [--curve-backend] dispatch seam ([Curve_repr])

   plus two infrastructure rules: [parse-error] (a file does not parse)
   and [bad-waiver] (a [lint.domain_safe] attribute whose payload is
   not a nonempty reason string).

   The check for race-global is deliberately syntactic and
   same-function: an access counts as guarded only when it occurs
   inside the thunk passed to a [with_lock] call visible in the same
   expression tree.  Helpers that are "always called with the lock
   held" need the waiver (with the invariant as the reason) — exactly
   the kind of unstated protocol the rule exists to surface.

   Exit codes: 0 clean (all findings baselined), 1 at least one fresh
   finding, 2 usage or I/O error. *)

open Ppxlib

(* ------------------------------------------------------------------ *)
(* Findings                                                            *)
(* ------------------------------------------------------------------ *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
  hint : string;
}

let findings : finding list ref = ref []

let report ~file ~loc ~rule ~msg ~hint =
  let p = loc.Location.loc_start in
  findings :=
    { file;
      line = p.Lexing.pos_lnum;
      col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
      rule;
      msg;
      hint }
    :: !findings

(* ------------------------------------------------------------------ *)
(* Path classification                                                 *)
(* ------------------------------------------------------------------ *)

type role = Lib | Bin | Bench | Other

let path_segs path =
  String.split_on_char '/' path
  |> List.concat_map (String.split_on_char '\\')
  |> List.filter (fun s -> s <> "" && s <> ".")

let role_of_path path =
  let rec find = function
    | [] -> Other
    | "lib" :: _ -> Lib
    | "bin" :: _ -> Bin
    | "bench" :: _ -> Bench
    | _ :: rest -> find rest
  in
  find (path_segs path)

(* Directories whose code constitutes the analysis engines: they must
   reach the min-plus kernels through the [Curve_repr] dispatch seam,
   so the [--curve-backend] switch covers every analysis path.
   lib/pwl (the backends themselves), lib/curves (curve constructors,
   including the sampler-based FIFO-theta clipping) and lib/sim (the
   fluid simulator computes explicit trajectories, not bounds) stay on
   the kernels. *)
let engine_path path =
  let rec find = function
    | "lib" :: d :: _ -> List.mem d [ "core"; "sched"; "serve" ]
    | _ :: rest -> find rest
    | [] -> false
  in
  find (path_segs path)

(* The one module allowed to spell out raw float comparison. *)
let is_float_ops_file path = Filename.basename path = "float_ops.ml"

(* ------------------------------------------------------------------ *)
(* Syntactic helpers                                                   *)
(* ------------------------------------------------------------------ *)

let rec last_of_lid = function
  | Lident s -> s
  | Ldot (_, s) -> s
  | Lapply (_, l) -> last_of_lid l

let head_ident e =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some txt | _ -> None

(* Callee of an expression that may itself be a (partial) application:
   used to recognize [x |> List.sort cmp] pipelines. *)
let callee_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some txt
  | Pexp_apply (h, _) -> head_ident h
  | _ -> None

let rec unconstrain e =
  match e.pexp_desc with Pexp_constraint (e, _) -> unconstrain e | _ -> e

let binding_name pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
  | _ -> None

let unlabeled args =
  List.filter_map (function Nolabel, e -> Some e | _ -> None) args

let split_last l =
  match List.rev l with
  | [] -> None
  | x :: rev_init -> Some (List.rev rev_init, x)

(* A generic "does any sub-expression satisfy [pred]" scan. *)
let expr_contains pred e =
  let found = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression x =
        if !found then ()
        else if pred x then found := true
        else super#expression x
    end
  in
  it#expression e;
  !found

(* ------------------------------------------------------------------ *)
(* Rule vocabulary                                                     *)
(* ------------------------------------------------------------------ *)

let poly_eq_op = function
  | Lident (("=" | "<>" | "compare") as s)
  | Ldot (Lident "Stdlib", (("=" | "<>" | "compare") as s)) ->
      Some s
  | _ -> None

let float_eq_op = function
  | Lident (("=" | "<>") as s) | Ldot (Lident "Stdlib", (("=" | "<>") as s))
    ->
      Some s
  | _ -> None

(* Module names that denote hash-table-like containers: the stdlib ones
   plus local [Hashtbl.Make] instances, which this codebase names
   [*_tbl] / [*Tbl] by convention. *)
let tbl_module m =
  m = "Hashtbl"
  ||
  let lm = String.lowercase_ascii m in
  let n = String.length lm in
  n >= 3 && String.sub lm (n - 3) 3 = "tbl"

let mutable_ctor = function
  | Lident "ref" -> Some "ref cell"
  | Ldot (Lident m, "create") when tbl_module m -> Some "hash table"
  | Ldot (Lident "Buffer", "create") -> Some "buffer"
  | Ldot (Lident "Queue", "create") -> Some "queue"
  | Ldot (Lident "Stack", "create") -> Some "stack"
  | Ldot (Lident "Bytes", ("create" | "make")) -> Some "byte buffer"
  | Ldot (Lident "Array", ("make" | "init" | "create_float")) -> Some "array"
  | Ldot (Lident "Weak", "create") -> Some "weak array"
  | _ -> None

let sort_callee = function
  | Ldot (Lident "List", ("sort" | "sort_uniq" | "stable_sort" | "fast_sort"))
  | Ldot (Lident "Array", ("sort" | "stable_sort" | "fast_sort")) ->
      true
  | _ -> false

let hashtbl_iteration = function
  | Ldot (Lident m, (("fold" | "iter") as f)) when tbl_module m ->
      Some (m ^ "." ^ f)
  | _ -> None

let forbidden_prim role = function
  | Ldot (Lident "Sys", "time") ->
      Some ("Sys.time", "use the monotonic Trace.now_us instead")
  | Ldot (Lident "Random", "self_init") ->
      Some
        ( "Random.self_init",
          "nondeterministic seeding; use Random.init with an explicit seed" )
  | Ldot (Lident "Obj", "magic") -> Some ("Obj.magic", "no unsafe casts")
  | Lident "print_string" when role = Lib ->
      Some
        ( "print_string",
          "libraries must not print; return values or record via netcalc.obs"
        )
  | Ldot (Lident "Printf", "printf") when role = Lib ->
      Some
        ( "Printf.printf",
          "libraries must not print; return values or record via netcalc.obs"
        )
  | _ -> None

(* Expressions that user-visible output flows through: flagged when fed
   straight from an unsorted hash-table iteration. *)
let sink_ident = function
  | Lident
      ( "print_string" | "print_endline" | "print_newline" | "print_int"
      | "print_float" | "output_string" | "prerr_string" | "prerr_endline" )
    ->
      true
  | Ldot (Lident ("Printf" | "Format"), ("printf" | "eprintf" | "fprintf")) ->
      true
  | Ldot (Lident "Buffer", ("add_string" | "add_char")) -> true
  | Ldot
      ( Lident "Table",
        ("add_row" | "add_floats" | "print" | "output" | "to_string" | "to_csv")
      ) ->
      true
  | _ -> false

let builds_list e =
  expr_contains
    (fun x ->
      match x.pexp_desc with
      | Pexp_construct ({ txt = Lident "::"; _ }, _) -> true
      | _ -> false)
    e

let contains_sink e =
  expr_contains
    (fun x ->
      match x.pexp_desc with
      | Pexp_ident { txt; _ } -> sink_ident txt
      | _ -> false)
    e

(* Pwl.t constructors whose results are curves (scalar-returning
   accessors like [eval] or [final_slope] are deliberately absent). *)
let pwl_ctors =
  [ "make"; "constant"; "affine"; "of_sampler"; "add"; "sum"; "sub"; "scale";
    "min_pw"; "max_pw"; "nonneg"; "min_list"; "shift_left"; "shift_right";
    "compose"; "pseudo_inverse"; "running_max"; "lower_convex_hull"; "compact"
  ]

let minplus_ctors = [ "conv"; "conv_list"; "conv_with_rate"; "deconv" ]

let is_pwl_type ty =
  match ty.ptyp_desc with
  | Ptyp_constr ({ txt = Ldot (Lident "Pwl", "t"); _ }, []) -> true
  | _ -> false

let is_float_type ty =
  match ty.ptyp_desc with
  | Ptyp_constr ({ txt = Lident "float" | Ldot (Lident "Float", "t"); _ }, [])
    ->
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Waivers                                                             *)
(* ------------------------------------------------------------------ *)

let waiver_name = "lint.domain_safe"

let waiver_attr attrs =
  List.find_opt (fun a -> a.attr_name.txt = waiver_name) attrs

let waiver_reason attr =
  match attr.attr_payload with
  | PStr
      [ { pstr_desc =
            Pstr_eval
              ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                _ );
          _
        }
      ]
    when String.trim s <> "" ->
      Some s
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Per-file analysis                                                   *)
(* ------------------------------------------------------------------ *)

let analyze_structure ~file ~role str =
  let float_ops = is_float_ops_file file in
  let engine = engine_path file in
  (* Names of mutable record labels declared in this file: a top-level
     [let st = { pos = 0; ... }] with such a label is module-scope
     mutable state. *)
  let mutable_labels : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  (* Top-level mutable bindings: name -> kind. *)
  let tracked : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let waived : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  (* Names syntactically known to hold Pwl.t values. *)
  let pwl_names : (string, unit) Hashtbl.t = Hashtbl.create 8 in

  let rec is_pwlish e =
    match e.pexp_desc with
    | Pexp_constraint (inner, ty) -> is_pwl_type ty || is_pwlish inner
    | Pexp_ident { txt = Lident n; _ } -> Hashtbl.mem pwl_names n
    | Pexp_ident { txt = Ldot (Lident "Pwl", "zero"); _ } -> true
    | Pexp_apply (h, _) -> (
        match head_ident h with
        | Some (Ldot (Lident "Pwl", f)) -> List.mem f pwl_ctors
        | Some (Ldot (Lident "Minplus", f)) -> List.mem f minplus_ctors
        | _ -> false)
    | _ -> false
  in
  let rec is_floatish e =
    match e.pexp_desc with
    | Pexp_constant (Pconst_float _) -> true
    | Pexp_constraint (inner, ty) -> is_float_type ty || is_floatish inner
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = Lident ("~-." | "~+."); _ }; _ },
         [ (Nolabel, a) ]) ->
        is_floatish a
    | _ -> false
  in

  (* -- pass 1: module-scope declarations ---------------------------- *)
  let collect_type_decl td =
    match td.ptype_kind with
    | Ptype_record labels ->
        List.iter
          (fun ld ->
            if ld.pld_mutable = Mutable then
              Hashtbl.replace mutable_labels ld.pld_name.txt ())
          labels
    | _ -> ()
  in
  let mutable_rhs e =
    let e = unconstrain e in
    match e.pexp_desc with
    | Pexp_apply (h, _) -> (
        match head_ident h with Some p -> mutable_ctor p | None -> None)
    | Pexp_record (fields, _)
      when List.exists
             (fun (lid, _) -> Hashtbl.mem mutable_labels (last_of_lid lid.txt))
             fields ->
        Some "record with mutable fields"
    | Pexp_array _ -> Some "array"
    | _ -> None
  in
  let collect_vb vb =
    (match waiver_attr vb.pvb_attributes with
    | None -> ()
    | Some attr -> (
        match waiver_reason attr with
        | Some _ -> (
            match binding_name vb.pvb_pat with
            | Some n -> Hashtbl.replace waived n ()
            | None -> ())
        | None ->
            report ~file ~loc:attr.attr_loc ~rule:"bad-waiver"
              ~msg:
                "[@@lint.domain_safe] without a reason: the payload must be \
                 a nonempty string explaining why unguarded access is safe"
              ~hint:"write [@@lint.domain_safe \"reason\"]"));
    match binding_name vb.pvb_pat with
    | Some n -> (
        match mutable_rhs vb.pvb_expr with
        | Some kind -> Hashtbl.replace tracked n kind
        | None -> ())
    | None -> ()
  in
  let rec collect_structure items = List.iter collect_item items
  and collect_item it =
    match it.pstr_desc with
    | Pstr_value (_, vbs) -> List.iter collect_vb vbs
    | Pstr_type (_, decls) -> List.iter collect_type_decl decls
    | Pstr_module mb -> collect_module mb.pmb_expr
    | Pstr_recmodule mbs -> List.iter (fun mb -> collect_module mb.pmb_expr) mbs
    | Pstr_include incl -> collect_module incl.pincl_mod
    | _ -> ()
  and collect_module me =
    match me.pmod_desc with
    | Pmod_structure s -> collect_structure s
    | Pmod_constraint (m, _) -> collect_module m
    | Pmod_functor (_, m) -> collect_module m
    | _ -> ()
  in
  (* Types first: a record binding earlier in the file than its type is
     impossible, but keeping the passes separate costs nothing. *)
  collect_structure str;

  (* -- pass 2: names syntactically known to be Pwl.t ---------------- *)
  let name_collector =
    object
      inherit Ast_traverse.iter as super

      method! value_binding vb =
        (match binding_name vb.pvb_pat with
        | Some n ->
            let annotated =
              match vb.pvb_pat.ppat_desc with
              | Ppat_constraint (_, ty) -> is_pwl_type ty
              | _ -> false
            in
            if annotated || is_pwlish vb.pvb_expr then
              Hashtbl.replace pwl_names n ()
        | None -> ());
        super#value_binding vb

      method! pattern p =
        (match p.ppat_desc with
        | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, ty)
          when is_pwl_type ty ->
            Hashtbl.replace pwl_names txt ()
        | _ -> ());
        super#pattern p
    end
  in
  name_collector#structure str;

  (* -- pass 3: flagging --------------------------------------------- *)
  let visitor =
    object (self)
      inherit Ast_traverse.iter as super
      val mutable lock_depth = 0
      val mutable sort_depth = 0

      method private check_ident e txt =
        (match txt with
        | Lident n
          when role = Lib && lock_depth = 0 && Hashtbl.mem tracked n
               && not (Hashtbl.mem waived n) ->
            report ~file ~loc:e.pexp_loc ~rule:"race-global"
              ~msg:
                (Printf.sprintf
                   "access to top-level mutable %s [%s] outside \
                    Obs_sync.with_lock"
                   (Hashtbl.find tracked n) n)
              ~hint:
                "wrap the access in Obs_sync.with_lock, or waive the \
                 binding with [@@lint.domain_safe \"reason\"]"
        | _ -> ());
        (match txt with
        | Ldot (Lident "Minplus", f) when engine && List.mem f minplus_ctors ->
            report ~file ~loc:e.pexp_loc ~rule:"curve-repr"
              ~msg:
                (Printf.sprintf
                   "direct Minplus.%s in engine code bypasses the \
                    curve-backend switch"
                   f)
              ~hint:
                "go through Curve_repr.conv / conv_list / conv_with_rate / \
                 deconv"
        | Ldot (Lident "Pwl", "of_sampler") when engine ->
            report ~file ~loc:e.pexp_loc ~rule:"curve-repr"
              ~msg:
                "Pwl.of_sampler in engine code builds a \
                 representation-specific curve behind the Curve_repr seam"
              ~hint:
                "move the sampler-based construction into lib/pwl or \
                 lib/curves and expose it through the repr interface"
        | _ -> ());
        match forbidden_prim role txt with
        | Some (sym, hint) ->
            report ~file ~loc:e.pexp_loc ~rule:"forbidden-prim"
              ~msg:(Printf.sprintf "forbidden primitive %s" sym)
              ~hint
        | None -> ()

      method private check_apply e h args =
        match head_ident h with
        | None -> ()
        | Some p ->
            (match (poly_eq_op p, unlabeled args) with
            | Some op, [ a; b ] when is_pwlish a || is_pwlish b ->
                report ~file ~loc:e.pexp_loc ~rule:"pwl-poly-eq"
                  ~msg:
                    (Printf.sprintf
                       "polymorphic (%s) on a Pwl.t value (hash-consed; \
                        structure is not identity)"
                       op)
                  ~hint:"use Pwl.equal / Pwl.compare (uid-based)"
            | _ -> ());
            (match (p, unlabeled args) with
            | Ldot (Lident "Hashtbl", "hash"), a :: _ when is_pwlish a ->
                report ~file ~loc:e.pexp_loc ~rule:"pwl-poly-eq"
                  ~msg:"Hashtbl.hash on a Pwl.t value"
                  ~hint:"use Pwl.hash (precomputed content hash)"
            | _ -> ());
            (match (float_eq_op p, unlabeled args) with
            | Some op, [ a; b ]
              when (not float_ops)
                   && (not (is_pwlish a || is_pwlish b))
                   && (is_floatish a || is_floatish b) ->
                report ~file ~loc:e.pexp_loc ~rule:"float-eq"
                  ~msg:(Printf.sprintf "raw float (%s)" op)
                  ~hint:
                    "use Float_ops.(=~) (tolerant) or Float_ops.eq_exact \
                     (deliberate exact comparison)"
            | _ -> ());
            match hashtbl_iteration p with
            | Some name when sort_depth = 0 -> (
                match unlabeled args with
                | cb :: _ when contains_sink cb ->
                    report ~file ~loc:e.pexp_loc ~rule:"unsorted-fold"
                      ~msg:
                        (Printf.sprintf
                           "%s prints in hash-table iteration order, which \
                            is unspecified"
                           name)
                      ~hint:"collect the bindings, sort, then emit"
                | cb :: _ when builds_list cb ->
                    report ~file ~loc:e.pexp_loc ~rule:"unsorted-fold"
                      ~msg:
                        (Printf.sprintf
                           "%s builds a list in hash-table iteration order \
                            with no enclosing sort"
                           name)
                      ~hint:
                        "pipe the result through List.sort (or sort the \
                         keys first)"
                | _ -> ())
            | _ -> ()

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } -> self#check_ident e txt
        | _ -> ());
        match e.pexp_desc with
        | Pexp_apply (h, args) -> (
            self#check_apply e h args;
            let visit_all l = List.iter (fun (_, a) -> self#expression a) l in
            match head_ident h with
            | Some p when last_of_lid p = "with_lock" -> (
                (* The last argument is the critical section. *)
                match split_last args with
                | Some (init, (_, body)) ->
                    self#expression h;
                    visit_all init;
                    lock_depth <- lock_depth + 1;
                    self#expression body;
                    lock_depth <- lock_depth - 1
                | None -> super#expression e)
            | Some p when sort_callee p ->
                self#expression h;
                sort_depth <- sort_depth + 1;
                visit_all args;
                sort_depth <- sort_depth - 1
            | Some (Lident "|>") -> (
                match args with
                | [ (_, lhs); (_, rhs) ]
                  when (match callee_path rhs with
                       | Some c -> sort_callee c
                       | None -> false) ->
                    sort_depth <- sort_depth + 1;
                    self#expression lhs;
                    sort_depth <- sort_depth - 1;
                    self#expression rhs
                | _ -> super#expression e)
            | Some (Lident "@@") -> (
                match args with
                | [ (_, lhs); (_, rhs) ]
                  when (match callee_path lhs with
                       | Some c -> sort_callee c
                       | None -> false) ->
                    self#expression lhs;
                    sort_depth <- sort_depth + 1;
                    self#expression rhs;
                    sort_depth <- sort_depth - 1
                | _ -> super#expression e)
            | _ -> super#expression e)
        | _ -> super#expression e
    end
  in
  visitor#structure str

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let analyze_file path =
  let role = role_of_path path in
  let src = read_file path in
  let lexbuf = Lexing.from_string src in
  lexbuf.Lexing.lex_curr_p <-
    { Lexing.pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
  match Parse.implementation lexbuf with
  | str -> analyze_structure ~file:path ~role str
  | exception exn ->
      let msg =
        match Location.Error.of_exn exn with
        | Some err -> Location.Error.message err
        | None -> Printexc.to_string exn
      in
      report ~file:path
        ~loc:
          { Location.loc_start = Lexing.dummy_pos;
            loc_end = Lexing.dummy_pos;
            loc_ghost = true
          }
        ~rule:"parse-error"
        ~msg:(Printf.sprintf "file does not parse: %s" msg)
        ~hint:"fix the syntax error (the compiler will tell you more)"

(* ------------------------------------------------------------------ *)
(* Minimal JSON (the container ships no JSON library)                  *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg =
      raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
    in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then (
        pos := !pos + l;
        v)
      else fail ("expected " ^ lit)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents b
        else if c = '\\' then (
          if !pos >= n then fail "bad escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              if !pos + 4 > n then fail "bad unicode escape";
              let code =
                try int_of_string ("0x" ^ String.sub s !pos 4)
                with _ -> fail "bad unicode escape"
              in
              pos := !pos + 4;
              if code < 128 then Buffer.add_char b (Char.chr code)
              else Buffer.add_char b '?'
          | _ -> fail "bad escape");
          go ())
        else (
          Buffer.add_char b c;
          go ())
      in
      go ()
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then (
            advance ();
            Obj [])
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then (
            advance ();
            Arr [])
          else
            let rec elements acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements (v :: acc)
              | Some ']' ->
                  advance ();
                  Arr (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            elements []
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') ->
          let start = !pos in
          let num_char = function
            | '-' | '+' | '.' | 'e' | 'E' | '0' .. '9' -> true
            | _ -> false
          in
          while
            match peek () with Some c when num_char c -> true | _ -> false
          do
            advance ()
          done;
          let lit = String.sub s start (!pos - start) in
          (try Num (float_of_string lit) with _ -> fail "bad number")
      | _ -> fail "unexpected character"
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v

  let member k = function
    | Obj fields -> List.assoc_opt k fields
    | _ -> None

  let quote s =
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
end

(* ------------------------------------------------------------------ *)
(* Baseline                                                            *)
(* ------------------------------------------------------------------ *)

(* A baseline entry identifies a finding by (file, rule, line): stable
   under unrelated edits elsewhere, invalidated (on purpose) when the
   flagged code moves — the gate then forces a re-look. *)

let load_baseline path =
  if not (Sys.file_exists path) then []
  else
    let j =
      try Json.parse (read_file path)
      with Json.Parse_error msg ->
        Printf.eprintf "netcalc-lint: cannot parse baseline %s: %s\n" path msg;
        exit 2
    in
    match Json.member "findings" j with
    | Some (Json.Arr entries) ->
        List.filter_map
          (fun e ->
            match
              ( Json.member "file" e,
                Json.member "rule" e,
                Json.member "line" e )
            with
            | Some (Json.Str f), Some (Json.Str r), Some (Json.Num l) ->
                Some (f, r, int_of_float l)
            | _ -> None)
          entries
    | _ ->
        Printf.eprintf
          "netcalc-lint: baseline %s has no \"findings\" array\n" path;
        exit 2

let write_baseline path fs =
  let oc = open_out path in
  output_string oc "{\n  \"schema\": \"netcalc-lint-baseline/1\",\n";
  output_string oc "  \"findings\": [";
  List.iteri
    (fun i f ->
      Printf.fprintf oc "%s\n    {\"file\": %s, \"rule\": %s, \"line\": %d}"
        (if i = 0 then "" else ",")
        (Json.quote f.file) (Json.quote f.rule) f.line)
    fs;
  output_string oc (if fs = [] then "]\n}\n" else "\n  ]\n}\n");
  close_out oc

let write_report path ~files_scanned classified =
  let total = List.length classified in
  let baselined =
    List.length (List.filter (fun (_, b) -> b) classified)
  in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"netcalc-lint/1\",\n";
  Printf.fprintf oc "  \"files_scanned\": %d,\n" files_scanned;
  Printf.fprintf oc "  \"total\": %d,\n" total;
  Printf.fprintf oc "  \"baselined\": %d,\n" baselined;
  Printf.fprintf oc "  \"fresh\": %d,\n" (total - baselined);
  output_string oc "  \"findings\": [";
  List.iteri
    (fun i (f, b) ->
      Printf.fprintf oc
        "%s\n\
        \    {\"file\": %s, \"line\": %d, \"col\": %d, \"rule\": %s, \
         \"baselined\": %b, \"msg\": %s, \"hint\": %s}"
        (if i = 0 then "" else ",")
        (Json.quote f.file) f.line f.col (Json.quote f.rule) b
        (Json.quote f.msg) (Json.quote f.hint))
    classified;
  output_string oc (if classified = [] then "]\n}\n" else "\n  ]\n}\n");
  close_out oc

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let rec collect_ml acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || (entry <> "" && entry.[0] = '.') then acc
           else collect_ml acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let () =
  let usage =
    "netcalc_lint [--baseline FILE] [--json FILE] [--update-baseline] PATH..."
  in
  let baseline_file = ref None in
  let json_file = ref None in
  let update = ref false in
  let paths = ref [] in
  Arg.parse
    [ ( "--baseline",
        Arg.String (fun s -> baseline_file := Some s),
        "FILE baseline of accepted findings (ratchet)" );
      ( "--json",
        Arg.String (fun s -> json_file := Some s),
        "FILE write a machine-readable report" );
      ( "--update-baseline",
        Arg.Set update,
        " rewrite the baseline to the current findings" )
    ]
    (fun p -> paths := p :: !paths)
    usage;
  if !paths = [] then (
    prerr_endline usage;
    exit 2);
  let files =
    List.fold_left collect_ml [] (List.rev !paths) |> List.sort String.compare
  in
  List.iter analyze_file files;
  let all =
    List.sort_uniq
      (fun a b ->
        match String.compare a.file b.file with
        | 0 -> (
            match Stdlib.compare (a.line, a.col) (b.line, b.col) with
            | 0 -> String.compare a.rule b.rule
            | c -> c)
        | c -> c)
      !findings
  in
  (* Collapse duplicates of the same (file, rule, line) reported at
     different columns: one diagnostic per flagged line and rule. *)
  let all =
    List.fold_left
      (fun acc f ->
        match acc with
        | prev :: _
          when prev.file = f.file && prev.rule = f.rule && prev.line = f.line
          ->
            acc
        | _ -> f :: acc)
      [] all
    |> List.rev
  in
  (match !baseline_file with
  | Some path when !update ->
      write_baseline path all;
      Printf.printf "netcalc-lint: wrote %d finding(s) to %s\n"
        (List.length all) path;
      exit 0
  | _ -> ());
  let baseline =
    match !baseline_file with Some p -> load_baseline p | None -> []
  in
  let classified =
    List.map
      (fun f -> (f, List.mem (f.file, f.rule, f.line) baseline))
      all
  in
  let stale =
    List.filter
      (fun (bf, br, bl) ->
        not (List.exists (fun f -> (f.file, f.rule, f.line) = (bf, br, bl)) all))
      baseline
  in
  List.iter
    (fun (f, baselined) ->
      Printf.printf "%s:%d:%d: [%s] %s%s\n  hint: %s\n" f.file f.line f.col
        f.rule f.msg
        (if baselined then " (baselined)" else "")
        f.hint)
    classified;
  (match !json_file with
  | Some path ->
      write_report path ~files_scanned:(List.length files) classified
  | None -> ());
  let fresh = List.filter (fun (_, b) -> not b) classified in
  Printf.printf
    "netcalc-lint: %d file(s), %d finding(s) (%d baselined, %d fresh, %d \
     stale baseline entr%s)\n"
    (List.length files) (List.length classified)
    (List.length classified - List.length fresh)
    (List.length fresh) (List.length stale)
    (if List.length stale = 1 then "y" else "ies");
  exit (if fresh = [] then 0 else 1)

(* netcalc-lint driver: collects inputs, fans the two analysis
   backends out on the [Par] pool, merges findings deterministically,
   applies the baseline ratchet and writes the reports.

   The syntactic backend ([Lint_syntactic]) scans [.ml] sources under
   the positional PATH arguments.  The typed backend ([Lint_typed],
   enabled by [--typed]) scans every [.cmt] below [--cmt-root] —
   whole-program, because the call graph needs all units — but only
   reports findings whose source file lies under one of the PATHs
   (except [cmt-error], which is always fatal); with no PATHs at all
   every typed finding is reported, which is what the fixture tests
   use.

   Exit codes: 0 clean, 1 fresh findings or stale baseline entries,
   2 usage/input error (including an empty [.cmt] scan, which would
   otherwise make a gate pass vacuously). *)

open Lint_core

let path_prefixes roots =
  List.map (fun r -> path_segs r) roots

let under_roots roots file =
  let segs = path_segs file in
  let rec is_prefix p s =
    match (p, s) with
    | [], _ -> true
    | x :: p', y :: s' -> x = y && is_prefix p' s'
    | _ :: _, [] -> false
  in
  List.exists (fun p -> is_prefix p segs) roots

let triple f = (f.file, f.rule, f.line)

let () =
  let usage =
    "netcalc_lint [--baseline FILE] [--json FILE] [--update-baseline] \
     [--typed --cmt-root DIR] [-j N] PATH..."
  in
  let baseline_file = ref None in
  let json_file = ref None in
  let update = ref false in
  let typed = ref false in
  let cmt_root = ref None in
  let jobs_flag = ref 0 in
  let paths = ref [] in
  Arg.parse
    [ ( "--baseline",
        Arg.String (fun s -> baseline_file := Some s),
        "FILE baseline of accepted findings (shrink-only ratchet)" );
      ( "--json",
        Arg.String (fun s -> json_file := Some s),
        "FILE write a machine-readable report (schema netcalc-lint/2)" );
      ( "--update-baseline",
        Arg.Set update,
        " prune stale baseline entries (refuses to absorb fresh findings; \
         bootstraps when the baseline file does not exist yet)" );
      ( "--typed",
        Arg.Set typed,
        " run the typed cross-module pass over .cmt artifacts" );
      ( "--cmt-root",
        Arg.String (fun s -> cmt_root := Some s),
        "DIR build tree holding the .cmt files (e.g. _build/default; \
         produce them with: dune build @check)" );
      ("-j", Arg.Set_int jobs_flag, "N analysis workers (default: Par pool)");
      ("--jobs", Arg.Set_int jobs_flag, "N same as -j")
    ]
    (fun p -> paths := p :: !paths)
    usage;
  let paths = List.rev !paths in
  if paths = [] && not !typed then (
    prerr_endline usage;
    exit 2);
  if !jobs_flag > 0 then Par.set_jobs !jobs_flag;
  let t0 = Unix.gettimeofday () in

  (* syntactic pass over sources *)
  let files =
    List.fold_left collect_ml [] paths |> List.sort String.compare
  in
  let syntactic =
    Par.map Lint_syntactic.analyze_file files |> List.concat
  in

  (* typed pass over cmts *)
  let units, typed_findings =
    if not !typed then (0, [])
    else
      match !cmt_root with
      | None ->
          prerr_endline "netcalc-lint: --typed requires --cmt-root DIR";
          exit 2
      | Some root ->
          if not (Sys.file_exists root && Sys.is_directory root) then (
            Printf.eprintf "netcalc-lint: --cmt-root %s is not a directory\n"
              root;
            exit 2);
          let cmts = collect_cmt root in
          if cmts = [] then (
            Printf.eprintf
              "netcalc-lint: no .cmt files under %s — build them with: dune \
               build @check\n"
              root;
            exit 2);
          let facts = Par.map Lint_typed.facts_of_cmt cmts in
          let findings = Lint_typed.analyze facts in
          let roots = path_prefixes paths in
          let findings =
            if paths = [] then findings
            else
              List.filter
                (fun f -> f.rule = "cmt-error" || under_roots roots f.file)
                findings
          in
          (List.length cmts, findings)
  in
  let all = dedup (syntactic @ typed_findings) in
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in

  (* --update-baseline: shrink-only ratchet *)
  (match (!baseline_file, !update) with
  | None, true ->
      prerr_endline "netcalc-lint: --update-baseline requires --baseline FILE";
      exit 2
  | Some path, true -> (
      let current = List.map triple all in
      match load_baseline path with
      | None ->
          write_baseline path current;
          Printf.printf
            "netcalc-lint: bootstrapped %s with %d finding(s)\n" path
            (List.length current);
          exit 0
      | Some old ->
          let fresh =
            List.filter (fun f -> not (List.mem (triple f) old)) all
          in
          if fresh <> [] then (
            List.iter
              (fun f ->
                Printf.printf "%s:%d:%d: [%s] %s\n  hint: %s\n" f.file f.line
                  f.col f.rule f.msg f.hint)
              fresh;
            Printf.printf
              "netcalc-lint: refusing to absorb %d fresh finding(s) into %s \
               — the baseline only shrinks; fix or waive them instead\n"
              (List.length fresh) path;
            exit 1)
          else (
            let kept = List.filter (fun t -> List.mem t old) current in
            write_baseline path kept;
            Printf.printf
              "netcalc-lint: wrote %s (%d entr%s kept, %d stale pruned)\n"
              path (List.length kept)
              (if List.length kept = 1 then "y" else "ies")
              (List.length old - List.length kept);
            exit 0))
  | _, false -> ());

  (* normal run: classify against the baseline, fail on fresh or stale *)
  let baseline =
    match !baseline_file with
    | Some p -> ( match load_baseline p with Some b -> b | None -> [])
    | None -> []
  in
  let classified = List.map (fun f -> (f, List.mem (triple f) baseline)) all in
  let stale =
    List.filter
      (fun t -> not (List.exists (fun f -> triple f = t) all))
      baseline
  in
  List.iter
    (fun (f, baselined) ->
      Printf.printf "%s:%d:%d: [%s:%s] %s%s\n  hint: %s\n" f.file f.line f.col
        (pass_of_rule f.rule) f.rule f.msg
        (if baselined then " (baselined)" else "")
        f.hint)
    classified;
  List.iter
    (fun (bf, br, bl) ->
      Printf.printf
        "%s:%d: stale baseline entry [%s]: the finding no longer occurs — \
         prune it with --update-baseline\n"
        bf bl br)
    stale;
  (match !json_file with
  | Some path ->
      write_report path ~files_scanned:(List.length files)
        ~units_scanned:units ~elapsed_ms ~jobs:(Par.jobs ()) ~typed:!typed
        ~stale:(List.length stale) classified
  | None -> ());
  let fresh = List.filter (fun (_, b) -> not b) classified in
  Printf.printf
    "netcalc-lint: %d file(s), %d unit(s), %d finding(s) (%d baselined, %d \
     fresh, %d stale baseline entr%s) in %.0f ms [j=%d]\n"
    (List.length files) units (List.length classified)
    (List.length classified - List.length fresh)
    (List.length fresh) (List.length stale)
    (if List.length stale = 1 then "y" else "ies")
    elapsed_ms (Par.jobs ());
  exit (if fresh = [] && stale = [] then 0 else 1)

(* Shared infrastructure of netcalc-lint: the finding type, path
   roles, the waiver vocabulary, the JSON codec, the baseline ratchet
   and the report writer.  The two analysis backends
   ([Lint_syntactic] over ppxlib parsetrees, [Lint_typed] over
   compiler-libs [.cmt] typedtrees) both produce plain
   [finding list]s, so the driver can merge, deduplicate and ratchet
   them uniformly — and run the per-file phases on the [Par] pool
   without any shared mutable state.

   Exit codes (owned by the driver): 0 clean (all findings
   baselined), 1 at least one fresh finding or a stale baseline
   entry, 2 usage or I/O error. *)

(* ------------------------------------------------------------------ *)
(* Findings                                                            *)
(* ------------------------------------------------------------------ *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
  hint : string;
}

let compare_finding a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Stdlib.compare (a.line, a.col) (b.line, b.col) with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
  | c -> c

(* Deterministic merge: sort by (file, line, col, rule), then collapse
   duplicates of the same (file, rule, line) reported at different
   columns — one diagnostic per flagged line and rule.  Both backends
   and every [-j] worker feed through this, so the output order is
   independent of the jobs count. *)
let dedup findings =
  let all = List.sort_uniq compare_finding findings in
  List.fold_left
    (fun acc f ->
      match acc with
      | prev :: _
        when prev.file = f.file && prev.rule = f.rule && prev.line = f.line ->
          acc
      | _ -> f :: acc)
    [] all
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Path classification                                                 *)
(* ------------------------------------------------------------------ *)

type role = Lib | Bin | Bench | Tools | Other

let path_segs path =
  String.split_on_char '/' path
  |> List.concat_map (String.split_on_char '\\')
  |> List.filter (fun s -> s <> "" && s <> ".")

let role_of_path path =
  let rec find = function
    | [] -> Other
    | "lib" :: _ -> Lib
    | "bin" :: _ -> Bin
    | "bench" :: _ -> Bench
    | "tools" :: _ -> Tools
    | _ :: rest -> find rest
  in
  find (path_segs path)

(* Directories whose code constitutes the analysis engines: they must
   reach the min-plus kernels through the [Curve_repr] dispatch seam,
   so the [--curve-backend] switch covers every analysis path.
   lib/pwl (the backends themselves), lib/curves (curve constructors,
   including the sampler-based FIFO-theta clipping) and lib/sim (the
   fluid simulator computes explicit trajectories, not bounds) stay on
   the kernels. *)
let engine_path path =
  let rec find = function
    | "lib" :: d :: _ -> List.mem d [ "core"; "sched"; "serve" ]
    | _ :: rest -> find rest
    | [] -> false
  in
  find (path_segs path)

(* The one module allowed to spell out raw float comparison. *)
let is_float_ops_file path = Filename.basename path = "float_ops.ml"

(* Fixture corpora live under the analyzer's own tree; they are
   deliberately dirty and must never leak into a real-tree scan.  A
   path is only treated as a fixture when the fixture segment appears
   *below* the scan root, so the fixture tests can still point the
   scanner straight at a corpus. *)
let fixture_seg s =
  s = "fixtures" || s = "fixtures_typed"

let under_fixtures rel = List.exists fixture_seg (path_segs rel)

(* ------------------------------------------------------------------ *)
(* Waivers                                                             *)
(* ------------------------------------------------------------------ *)

(* Two attribute spellings:

     [@@lint.domain_safe "reason"]            (legacy, PR 5)
     [@@lint.waive "rule[, rule ...]: reason"]

   [lint.domain_safe] waives the two shared-mutable-state rules
   (race-global syntactically, par-escape interprocedurally) — the
   reasons written for PR 5 argue exactly that invariant.
   [lint.waive] names its rules explicitly, so one binding can e.g.
   be declared cache-key-transparent without also waiving the race
   rules.  Only binding-scoped rules are waivable. *)

let legacy_waiver_name = "lint.domain_safe"
let waive_name = "lint.waive"
let barrier_name = "lint.exn_barrier"
let legacy_rules = [ "race-global"; "par-escape" ]

let waivable_rules =
  [ "race-global"; "par-escape"; "exn-escape"; "cache-key";
    "unsorted-fold-flow" ]

(* Parse a [lint.waive] payload "rule[, rule ...]: reason" into
   ([rules], reason).  [None] means the payload is malformed (the
   caller reports bad-waiver). *)
let parse_waive_payload s =
  match String.index_opt s ':' with
  | None -> None
  | Some i ->
      let rules =
        String.sub s 0 i
        |> String.split_on_char ','
        |> List.concat_map (String.split_on_char ' ')
        |> List.map String.trim
        |> List.filter (fun r -> r <> "")
      in
      let reason = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
      if
        rules <> [] && reason <> ""
        && List.for_all (fun r -> List.mem r waivable_rules) rules
      then Some (rules, reason)
      else None

(* ------------------------------------------------------------------ *)
(* File system                                                         *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec collect_ml acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if
             entry = "_build" || fixture_seg entry
             || (entry <> "" && entry.[0] = '.')
           then acc
           else collect_ml acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

(* All [.cmt] files below [root] (dune keeps them in per-library
   [.<lib>.objs/byte/] and per-executable [.<exe>.eobjs/byte/]
   directories, which start with a dot — so unlike [collect_ml] this
   walk must descend into dot-directories). *)
let collect_cmt root =
  let acc = ref [] in
  let rec go rel path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.iter (fun entry ->
             if entry = "_build" || fixture_seg entry then ()
             else
               go
                 (if rel = "" then entry else rel ^ "/" ^ entry)
                 (Filename.concat path entry))
    else if Filename.check_suffix path ".cmt" then acc := path :: !acc
  in
  go "" root;
  List.sort String.compare !acc

(* ------------------------------------------------------------------ *)
(* Minimal JSON (the container ships no JSON library)                  *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg =
      raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
    in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then (
        pos := !pos + l;
        v)
      else fail ("expected " ^ lit)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents b
        else if c = '\\' then (
          if !pos >= n then fail "bad escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              if !pos + 4 > n then fail "bad unicode escape";
              let code =
                try int_of_string ("0x" ^ String.sub s !pos 4)
                with _ -> fail "bad unicode escape"
              in
              pos := !pos + 4;
              if code < 128 then Buffer.add_char b (Char.chr code)
              else Buffer.add_char b '?'
          | _ -> fail "bad escape");
          go ())
        else (
          Buffer.add_char b c;
          go ())
      in
      go ()
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then (
            advance ();
            Obj [])
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then (
            advance ();
            Arr [])
          else
            let rec elements acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements (v :: acc)
              | Some ']' ->
                  advance ();
                  Arr (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            elements []
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') ->
          let start = !pos in
          let num_char = function
            | '-' | '+' | '.' | 'e' | 'E' | '0' .. '9' -> true
            | _ -> false
          in
          while
            match peek () with Some c when num_char c -> true | _ -> false
          do
            advance ()
          done;
          let lit = String.sub s start (!pos - start) in
          (try Num (float_of_string lit) with _ -> fail "bad number")
      | _ -> fail "unexpected character"
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v

  let member k = function
    | Obj fields -> List.assoc_opt k fields
    | _ -> None

  let quote s =
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
end

(* ------------------------------------------------------------------ *)
(* Baseline                                                            *)
(* ------------------------------------------------------------------ *)

(* A baseline entry identifies a finding by (file, rule, line): stable
   under unrelated edits elsewhere, invalidated (on purpose) when the
   flagged code moves — the gate then forces a re-look.  The ratchet
   only shrinks: a normal run fails on stale entries (findings that no
   longer occur), and [--update-baseline] over an existing baseline
   writes the intersection of old and current — it refuses to absorb
   fresh findings.  Bootstrapping (no baseline file yet) writes all
   current findings once. *)

let load_baseline path =
  if not (Sys.file_exists path) then None
  else
    let j =
      try Json.parse (read_file path)
      with Json.Parse_error msg ->
        Printf.eprintf "netcalc-lint: cannot parse baseline %s: %s\n" path msg;
        exit 2
    in
    match Json.member "findings" j with
    | Some (Json.Arr entries) ->
        Some
          (List.filter_map
             (fun e ->
               match
                 ( Json.member "file" e,
                   Json.member "rule" e,
                   Json.member "line" e )
               with
               | Some (Json.Str f), Some (Json.Str r), Some (Json.Num l) ->
                   Some (f, r, int_of_float l)
               | _ -> None)
             entries)
    | _ ->
        Printf.eprintf "netcalc-lint: baseline %s has no \"findings\" array\n"
          path;
        exit 2

let write_baseline path entries =
  let oc = open_out path in
  output_string oc "{\n  \"schema\": \"netcalc-lint-baseline/1\",\n";
  output_string oc "  \"findings\": [";
  List.iteri
    (fun i (file, rule, line) ->
      Printf.fprintf oc "%s\n    {\"file\": %s, \"rule\": %s, \"line\": %d}"
        (if i = 0 then "" else ",")
        (Json.quote file) (Json.quote rule) line)
    entries;
  output_string oc (if entries = [] then "]\n}\n" else "\n  ]\n}\n");
  close_out oc

(* ------------------------------------------------------------------ *)
(* Report (schema netcalc-lint/2)                                      *)
(* ------------------------------------------------------------------ *)

(* v2 adds: the [lint] self-runtime budget object ([lint.files] inputs
   analyzed, [lint.ms] wall time, [lint.jobs]), the [typed] flag,
   [units_scanned] (cmt units, on top of v1's source
   [files_scanned]), the [stale] baseline-entry count, and a [pass]
   tag ("syntactic" | "typed") on every finding. *)

let typed_rules =
  [ "par-escape"; "exn-escape"; "cache-key"; "unsorted-fold-flow";
    "cmt-error" ]

let pass_of_rule rule = if List.mem rule typed_rules then "typed" else "syntactic"

let write_report path ~files_scanned ~units_scanned ~elapsed_ms ~jobs ~typed
    ~stale classified =
  let total = List.length classified in
  let baselined = List.length (List.filter (fun (_, b) -> b) classified) in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"netcalc-lint/2\",\n";
  Printf.fprintf oc "  \"files_scanned\": %d,\n" files_scanned;
  Printf.fprintf oc "  \"units_scanned\": %d,\n" units_scanned;
  Printf.fprintf oc "  \"typed\": %b,\n" typed;
  Printf.fprintf oc
    "  \"lint\": {\"files\": %d, \"ms\": %.3f, \"jobs\": %d},\n"
    (files_scanned + units_scanned)
    elapsed_ms jobs;
  Printf.fprintf oc "  \"total\": %d,\n" total;
  Printf.fprintf oc "  \"baselined\": %d,\n" baselined;
  Printf.fprintf oc "  \"fresh\": %d,\n" (total - baselined);
  Printf.fprintf oc "  \"stale\": %d,\n" stale;
  output_string oc "  \"findings\": [";
  List.iteri
    (fun i (f, b) ->
      Printf.fprintf oc
        "%s\n\
        \    {\"file\": %s, \"line\": %d, \"col\": %d, \"rule\": %s, \
         \"pass\": %s, \"baselined\": %b, \"msg\": %s, \"hint\": %s}"
        (if i = 0 then "" else ",")
        (Json.quote f.file) f.line f.col (Json.quote f.rule)
        (Json.quote (pass_of_rule f.rule))
        b (Json.quote f.msg) (Json.quote f.hint))
    classified;
  output_string oc (if classified = [] then "]\n}\n" else "\n  ]\n}\n");
  close_out oc

(* The syntactic backend of netcalc-lint: per-file rules over the
   ppxlib parsetree (DESIGN.md §12).  Six rule families:

     race-global     top-level mutable state (ref cells, hash tables,
                     buffers, arrays, records with mutable fields) in
                     library code must have every access wrapped in
                     [Obs_sync.with_lock] within the same function, or
                     carry a waiver
     pwl-poly-eq     no polymorphic [=] / [<>] / [compare] /
                     [Hashtbl.hash] on expressions syntactically known
                     to be [Pwl.t] — use the uid-based [Pwl.equal] /
                     [Pwl.compare] / [Pwl.hash]
     float-eq        no raw [=] / [<>] on float literals or
                     float-annotated expressions outside
                     [lib/util/float_ops.ml]
     forbidden-prim  [Sys.time], [Random.self_init], [Obj.magic]
                     anywhere; [print_string] / [Printf.printf] in
                     [lib/] (output belongs to obs or return values)
     unsorted-fold   [Hashtbl.fold] / [Hashtbl.iter] whose callback
                     builds a list or prints, with no enclosing sort:
                     iteration order is unspecified, so the output is
                     nondeterministic
     curve-repr      engine code (lib/core, lib/sched, lib/serve)
                     calling the min-plus kernels directly
                     ([Minplus.conv] &c.) or rebuilding curves from
                     samplers ([Pwl.of_sampler]): both bypass the
                     [--curve-backend] dispatch seam ([Curve_repr])

   plus two infrastructure rules: [parse-error] (a file does not
   parse) and [bad-waiver] (a waiver attribute whose payload does not
   parse).  The interprocedural rules (par-escape, exn-escape,
   cache-key, unsorted-fold-flow) live in [Lint_typed].

   The check for race-global is deliberately syntactic and
   same-function: an access counts as guarded only when it occurs
   inside the thunk passed to a [with_lock] call visible in the same
   expression tree.  Helpers that are "always called with the lock
   held" need the waiver (with the invariant as the reason) — exactly
   the kind of unstated protocol the rule exists to surface. *)

open Ppxlib
open Lint_core

(* ------------------------------------------------------------------ *)
(* Syntactic helpers                                                   *)
(* ------------------------------------------------------------------ *)

let rec last_of_lid = function
  | Lident s -> s
  | Ldot (_, s) -> s
  | Lapply (_, l) -> last_of_lid l

let head_ident e =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some txt | _ -> None

(* Callee of an expression that may itself be a (partial) application:
   used to recognize [x |> List.sort cmp] pipelines. *)
let callee_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some txt
  | Pexp_apply (h, _) -> head_ident h
  | _ -> None

let rec unconstrain e =
  match e.pexp_desc with Pexp_constraint (e, _) -> unconstrain e | _ -> e

let binding_name pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
  | _ -> None

let unlabeled args =
  List.filter_map (function Nolabel, e -> Some e | _ -> None) args

let split_last l =
  match List.rev l with
  | [] -> None
  | x :: rev_init -> Some (List.rev rev_init, x)

(* A generic "does any sub-expression satisfy [pred]" scan. *)
let expr_contains pred e =
  let found = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression x =
        if !found then ()
        else if pred x then found := true
        else super#expression x
    end
  in
  it#expression e;
  !found

(* ------------------------------------------------------------------ *)
(* Rule vocabulary                                                     *)
(* ------------------------------------------------------------------ *)

let poly_eq_op = function
  | Lident (("=" | "<>" | "compare") as s)
  | Ldot (Lident "Stdlib", (("=" | "<>" | "compare") as s)) ->
      Some s
  | _ -> None

let float_eq_op = function
  | Lident (("=" | "<>") as s) | Ldot (Lident "Stdlib", (("=" | "<>") as s))
    ->
      Some s
  | _ -> None

(* Module names that denote hash-table-like containers: the stdlib ones
   plus local [Hashtbl.Make] instances, which this codebase names
   [*_tbl] / [*Tbl] by convention. *)
let tbl_module m =
  m = "Hashtbl"
  ||
  let lm = String.lowercase_ascii m in
  let n = String.length lm in
  n >= 3 && String.sub lm (n - 3) 3 = "tbl"

let mutable_ctor = function
  | Lident "ref" -> Some "ref cell"
  | Ldot (Lident m, "create") when tbl_module m -> Some "hash table"
  | Ldot (Lident "Buffer", "create") -> Some "buffer"
  | Ldot (Lident "Queue", "create") -> Some "queue"
  | Ldot (Lident "Stack", "create") -> Some "stack"
  | Ldot (Lident "Bytes", ("create" | "make")) -> Some "byte buffer"
  | Ldot (Lident "Array", ("make" | "init" | "create_float")) -> Some "array"
  | Ldot (Lident "Weak", "create") -> Some "weak array"
  | _ -> None

let sort_callee = function
  | Ldot (Lident "List", ("sort" | "sort_uniq" | "stable_sort" | "fast_sort"))
  | Ldot (Lident "Array", ("sort" | "stable_sort" | "fast_sort")) ->
      true
  | _ -> false

let hashtbl_iteration = function
  | Ldot (Lident m, (("fold" | "iter") as f)) when tbl_module m ->
      Some (m ^ "." ^ f)
  | _ -> None

let forbidden_prim role = function
  | Ldot (Lident "Sys", "time") ->
      Some ("Sys.time", "use the monotonic Trace.now_us instead")
  | Ldot (Lident "Random", "self_init") ->
      Some
        ( "Random.self_init",
          "nondeterministic seeding; use Random.init with an explicit seed" )
  | Ldot (Lident "Obj", "magic") -> Some ("Obj.magic", "no unsafe casts")
  | Lident "print_string" when role = Lib ->
      Some
        ( "print_string",
          "libraries must not print; return values or record via netcalc.obs"
        )
  | Ldot (Lident "Printf", "printf") when role = Lib ->
      Some
        ( "Printf.printf",
          "libraries must not print; return values or record via netcalc.obs"
        )
  | _ -> None

(* Expressions that user-visible output flows through: flagged when fed
   straight from an unsorted hash-table iteration. *)
let sink_ident = function
  | Lident
      ( "print_string" | "print_endline" | "print_newline" | "print_int"
      | "print_float" | "output_string" | "prerr_string" | "prerr_endline" )
    ->
      true
  | Ldot (Lident ("Printf" | "Format"), ("printf" | "eprintf" | "fprintf")) ->
      true
  | Ldot (Lident "Buffer", ("add_string" | "add_char")) -> true
  | Ldot
      ( Lident "Table",
        ("add_row" | "add_floats" | "print" | "output" | "to_string" | "to_csv")
      ) ->
      true
  | _ -> false

let builds_list e =
  expr_contains
    (fun x ->
      match x.pexp_desc with
      | Pexp_construct ({ txt = Lident "::"; _ }, _) -> true
      | _ -> false)
    e

let contains_sink e =
  expr_contains
    (fun x ->
      match x.pexp_desc with
      | Pexp_ident { txt; _ } -> sink_ident txt
      | _ -> false)
    e

(* Pwl.t constructors whose results are curves (scalar-returning
   accessors like [eval] or [final_slope] are deliberately absent). *)
let pwl_ctors =
  [ "make"; "constant"; "affine"; "of_sampler"; "add"; "sum"; "sub"; "scale";
    "min_pw"; "max_pw"; "nonneg"; "min_list"; "shift_left"; "shift_right";
    "compose"; "pseudo_inverse"; "running_max"; "lower_convex_hull"; "compact"
  ]

let minplus_ctors = [ "conv"; "conv_list"; "conv_with_rate"; "deconv" ]

let is_pwl_type ty =
  match ty.ptyp_desc with
  | Ptyp_constr ({ txt = Ldot (Lident "Pwl", "t"); _ }, []) -> true
  | _ -> false

let is_float_type ty =
  match ty.ptyp_desc with
  | Ptyp_constr ({ txt = Lident "float" | Ldot (Lident "Float", "t"); _ }, [])
    ->
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Waivers                                                             *)
(* ------------------------------------------------------------------ *)

let string_payload attr =
  match attr.attr_payload with
  | PStr
      [ { pstr_desc =
            Pstr_eval
              ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                _ );
          _
        }
      ] ->
      Some s
  | _ -> None

(* The rules a binding's attributes waive, with bad-waiver diagnostics
   for malformed payloads (reported through [report]). *)
let waived_rules ~report attrs =
  List.concat_map
    (fun a ->
      if a.attr_name.txt = legacy_waiver_name then (
        match string_payload a with
        | Some s when String.trim s <> "" -> legacy_rules
        | _ ->
            report ~loc:a.attr_loc ~rule:"bad-waiver"
              ~msg:
                "[@@lint.domain_safe] without a reason: the payload must be \
                 a nonempty string explaining why unguarded access is safe"
              ~hint:"write [@@lint.domain_safe \"reason\"]";
            [])
      else if a.attr_name.txt = waive_name then (
        match Option.bind (string_payload a) parse_waive_payload with
        | Some (rules, _reason) -> rules
        | None ->
            report ~loc:a.attr_loc ~rule:"bad-waiver"
              ~msg:
                "[@@lint.waive] payload must be \"rule[, rule ...]: reason\" \
                 with known rule names and a nonempty reason"
              ~hint:
                (Printf.sprintf "waivable rules: %s"
                   (String.concat ", " waivable_rules));
            [])
      else [])
    attrs

(* ------------------------------------------------------------------ *)
(* Per-file analysis                                                   *)
(* ------------------------------------------------------------------ *)

let analyze_structure ~report ~file ~role str =
  let float_ops = is_float_ops_file file in
  let engine = engine_path file in
  (* Names of mutable record labels declared in this file: a top-level
     [let st = { pos = 0; ... }] with such a label is module-scope
     mutable state. *)
  let mutable_labels : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  (* Top-level mutable bindings: name -> kind. *)
  let tracked : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let waived : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  (* Names syntactically known to hold Pwl.t values. *)
  let pwl_names : (string, unit) Hashtbl.t = Hashtbl.create 8 in

  let rec is_pwlish e =
    match e.pexp_desc with
    | Pexp_constraint (inner, ty) -> is_pwl_type ty || is_pwlish inner
    | Pexp_ident { txt = Lident n; _ } -> Hashtbl.mem pwl_names n
    | Pexp_ident { txt = Ldot (Lident "Pwl", "zero"); _ } -> true
    | Pexp_apply (h, _) -> (
        match head_ident h with
        | Some (Ldot (Lident "Pwl", f)) -> List.mem f pwl_ctors
        | Some (Ldot (Lident "Minplus", f)) -> List.mem f minplus_ctors
        | _ -> false)
    | _ -> false
  in
  let rec is_floatish e =
    match e.pexp_desc with
    | Pexp_constant (Pconst_float _) -> true
    | Pexp_constraint (inner, ty) -> is_float_type ty || is_floatish inner
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = Lident ("~-." | "~+."); _ }; _ },
         [ (Nolabel, a) ]) ->
        is_floatish a
    | _ -> false
  in

  (* -- pass 1: module-scope declarations ---------------------------- *)
  let collect_type_decl td =
    match td.ptype_kind with
    | Ptype_record labels ->
        List.iter
          (fun ld ->
            if ld.pld_mutable = Mutable then
              Hashtbl.replace mutable_labels ld.pld_name.txt ())
          labels
    | _ -> ()
  in
  let mutable_rhs e =
    let e = unconstrain e in
    match e.pexp_desc with
    | Pexp_apply (h, _) -> (
        match head_ident h with Some p -> mutable_ctor p | None -> None)
    | Pexp_record (fields, _)
      when List.exists
             (fun (lid, _) -> Hashtbl.mem mutable_labels (last_of_lid lid.txt))
             fields ->
        Some "record with mutable fields"
    | Pexp_array _ -> Some "array"
    | _ -> None
  in
  let collect_vb vb =
    (match (waived_rules ~report vb.pvb_attributes, binding_name vb.pvb_pat)
     with
    | rules, Some n when List.mem "race-global" rules ->
        Hashtbl.replace waived n ()
    | _ -> ());
    match binding_name vb.pvb_pat with
    | Some n -> (
        match mutable_rhs vb.pvb_expr with
        | Some kind -> Hashtbl.replace tracked n kind
        | None -> ())
    | None -> ()
  in
  let rec collect_structure items = List.iter collect_item items
  and collect_item it =
    match it.pstr_desc with
    | Pstr_value (_, vbs) -> List.iter collect_vb vbs
    | Pstr_type (_, decls) -> List.iter collect_type_decl decls
    | Pstr_module mb -> collect_module mb.pmb_expr
    | Pstr_recmodule mbs -> List.iter (fun mb -> collect_module mb.pmb_expr) mbs
    | Pstr_include incl -> collect_module incl.pincl_mod
    | _ -> ()
  and collect_module me =
    match me.pmod_desc with
    | Pmod_structure s -> collect_structure s
    | Pmod_constraint (m, _) -> collect_module m
    | Pmod_functor (_, m) -> collect_module m
    | _ -> ()
  in
  (* Types first: a record binding earlier in the file than its type is
     impossible, but keeping the passes separate costs nothing. *)
  collect_structure str;

  (* -- pass 2: names syntactically known to be Pwl.t ---------------- *)
  let name_collector =
    object
      inherit Ast_traverse.iter as super

      method! value_binding vb =
        (match binding_name vb.pvb_pat with
        | Some n ->
            let annotated =
              match vb.pvb_pat.ppat_desc with
              | Ppat_constraint (_, ty) -> is_pwl_type ty
              | _ -> false
            in
            if annotated || is_pwlish vb.pvb_expr then
              Hashtbl.replace pwl_names n ()
        | None -> ());
        super#value_binding vb

      method! pattern p =
        (match p.ppat_desc with
        | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, ty)
          when is_pwl_type ty ->
            Hashtbl.replace pwl_names txt ()
        | _ -> ());
        super#pattern p
    end
  in
  name_collector#structure str;

  (* -- pass 3: flagging --------------------------------------------- *)
  let visitor =
    object (self)
      inherit Ast_traverse.iter as super
      val mutable lock_depth = 0
      val mutable sort_depth = 0

      method private check_ident e txt =
        (match txt with
        | Lident n
          when role = Lib && lock_depth = 0 && Hashtbl.mem tracked n
               && not (Hashtbl.mem waived n) ->
            report ~loc:e.pexp_loc ~rule:"race-global"
              ~msg:
                (Printf.sprintf
                   "access to top-level mutable %s [%s] outside \
                    Obs_sync.with_lock"
                   (Hashtbl.find tracked n) n)
              ~hint:
                "wrap the access in Obs_sync.with_lock, or waive the \
                 binding with [@@lint.domain_safe \"reason\"]"
        | _ -> ());
        (match txt with
        | Ldot (Lident "Minplus", f) when engine && List.mem f minplus_ctors ->
            report ~loc:e.pexp_loc ~rule:"curve-repr"
              ~msg:
                (Printf.sprintf
                   "direct Minplus.%s in engine code bypasses the \
                    curve-backend switch"
                   f)
              ~hint:
                "go through Curve_repr.conv / conv_list / conv_with_rate / \
                 deconv"
        | Ldot (Lident "Pwl", "of_sampler") when engine ->
            report ~loc:e.pexp_loc ~rule:"curve-repr"
              ~msg:
                "Pwl.of_sampler in engine code builds a \
                 representation-specific curve behind the Curve_repr seam"
              ~hint:
                "move the sampler-based construction into lib/pwl or \
                 lib/curves and expose it through the repr interface"
        | _ -> ());
        match forbidden_prim role txt with
        | Some (sym, hint) ->
            report ~loc:e.pexp_loc ~rule:"forbidden-prim"
              ~msg:(Printf.sprintf "forbidden primitive %s" sym)
              ~hint
        | None -> ()

      method private check_apply e h args =
        match head_ident h with
        | None -> ()
        | Some p ->
            (match (poly_eq_op p, unlabeled args) with
            | Some op, [ a; b ] when is_pwlish a || is_pwlish b ->
                report ~loc:e.pexp_loc ~rule:"pwl-poly-eq"
                  ~msg:
                    (Printf.sprintf
                       "polymorphic (%s) on a Pwl.t value (hash-consed; \
                        structure is not identity)"
                       op)
                  ~hint:"use Pwl.equal / Pwl.compare (uid-based)"
            | _ -> ());
            (match (p, unlabeled args) with
            | Ldot (Lident "Hashtbl", "hash"), a :: _ when is_pwlish a ->
                report ~loc:e.pexp_loc ~rule:"pwl-poly-eq"
                  ~msg:"Hashtbl.hash on a Pwl.t value"
                  ~hint:"use Pwl.hash (precomputed content hash)"
            | _ -> ());
            (match (float_eq_op p, unlabeled args) with
            | Some op, [ a; b ]
              when (not float_ops)
                   && (not (is_pwlish a || is_pwlish b))
                   && (is_floatish a || is_floatish b) ->
                report ~loc:e.pexp_loc ~rule:"float-eq"
                  ~msg:(Printf.sprintf "raw float (%s)" op)
                  ~hint:
                    "use Float_ops.(=~) (tolerant) or Float_ops.eq_exact \
                     (deliberate exact comparison)"
            | _ -> ());
            match hashtbl_iteration p with
            | Some name when sort_depth = 0 -> (
                match unlabeled args with
                | cb :: _ when contains_sink cb ->
                    report ~loc:e.pexp_loc ~rule:"unsorted-fold"
                      ~msg:
                        (Printf.sprintf
                           "%s prints in hash-table iteration order, which \
                            is unspecified"
                           name)
                      ~hint:"collect the bindings, sort, then emit"
                | cb :: _ when builds_list cb ->
                    report ~loc:e.pexp_loc ~rule:"unsorted-fold"
                      ~msg:
                        (Printf.sprintf
                           "%s builds a list in hash-table iteration order \
                            with no enclosing sort"
                           name)
                      ~hint:
                        "pipe the result through List.sort (or sort the \
                         keys first)"
                | _ -> ())
            | _ -> ()

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } -> self#check_ident e txt
        | _ -> ());
        match e.pexp_desc with
        | Pexp_apply (h, args) -> (
            self#check_apply e h args;
            let visit_all l = List.iter (fun (_, a) -> self#expression a) l in
            match head_ident h with
            | Some p when last_of_lid p = "with_lock" -> (
                (* The last argument is the critical section. *)
                match split_last args with
                | Some (init, (_, body)) ->
                    self#expression h;
                    visit_all init;
                    lock_depth <- lock_depth + 1;
                    self#expression body;
                    lock_depth <- lock_depth - 1
                | None -> super#expression e)
            | Some p when sort_callee p ->
                self#expression h;
                sort_depth <- sort_depth + 1;
                visit_all args;
                sort_depth <- sort_depth - 1
            | Some (Lident "|>") -> (
                match args with
                | [ (_, lhs); (_, rhs) ]
                  when (match callee_path rhs with
                       | Some c -> sort_callee c
                       | None -> false) ->
                    sort_depth <- sort_depth + 1;
                    self#expression lhs;
                    sort_depth <- sort_depth - 1;
                    self#expression rhs
                | _ -> super#expression e)
            | Some (Lident "@@") -> (
                match args with
                | [ (_, lhs); (_, rhs) ]
                  when (match callee_path lhs with
                       | Some c -> sort_callee c
                       | None -> false) ->
                    self#expression lhs;
                    sort_depth <- sort_depth + 1;
                    self#expression rhs;
                    sort_depth <- sort_depth - 1
                | _ -> super#expression e)
            | _ -> super#expression e)
        | _ -> super#expression e
    end
  in
  visitor#structure str

(* Parsing goes through the host compiler's lexer, which keeps global
   state (the string buffer, the comment accumulator) — it is not
   reentrant.  The [-j] per-file fan-out therefore serializes the
   parse step and runs only the visitor passes concurrently. *)
let parse_mutex = Obs_sync.create ()

let analyze_file path =
  let findings = ref [] in
  let report ~loc ~rule ~msg ~hint =
    let p = loc.Location.loc_start in
    findings :=
      { file = path;
        line = p.Lexing.pos_lnum;
        col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
        rule;
        msg;
        hint }
      :: !findings
  in
  let role = role_of_path path in
  let src = read_file path in
  let parsed =
    Obs_sync.with_lock parse_mutex (fun () ->
        let lexbuf = Lexing.from_string src in
        lexbuf.Lexing.lex_curr_p <-
          { Lexing.pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
        match Parse.implementation lexbuf with
        | str -> Ok str
        | exception exn -> Error exn)
  in
  (match parsed with
  | Ok str -> analyze_structure ~report ~file:path ~role str
  | Error exn ->
      let msg =
        match Location.Error.of_exn exn with
        | Some err -> Location.Error.message err
        | None -> Printexc.to_string exn
      in
      report
        ~loc:
          { Location.loc_start = Lexing.dummy_pos;
            loc_end = Lexing.dummy_pos;
            loc_ghost = true
          }
        ~rule:"parse-error"
        ~msg:(Printf.sprintf "file does not parse: %s" msg)
        ~hint:"fix the syntax error (the compiler will tell you more)");
  !findings

(* Fixture for the unsorted-fold rule: hash-table iteration feeding
   output with no intervening sort.  Lives under a bench/ segment on
   purpose: printing is legal there (so forbidden-prim stays quiet) and
   the race rule only applies to lib/ — this file isolates the
   determinism rule.  Never compiled — only parsed by netcalc-lint's
   self-tests. *)

let tbl : (string, int) Hashtbl.t = Hashtbl.create 8

let print_all () = Hashtbl.iter (fun k v -> Printf.printf "%s=%d\n" k v) tbl
let rows () = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

(* Sorted variants are not flagged. *)
let rows_sorted () =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let rows_sorted2 () =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

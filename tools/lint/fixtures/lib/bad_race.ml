(* Fixture for the race-global rule: top-level mutable state accessed
   outside Obs_sync.with_lock.  Never compiled — only parsed by
   netcalc-lint's self-tests, which pin the exact lines flagged. *)

let lock = Obs_sync.create ()
let hits = ref 0
let table : (int, string) Hashtbl.t = Hashtbl.create 16
let record n = hits := !hits + n
let lookup k = Hashtbl.find_opt table k
let guarded () = Obs_sync.with_lock lock (fun () -> !hits)

(* A waiver without a reason string is itself a finding and does not
   silence the rule. *)
let bad = ref 0 [@@lint.domain_safe]

let poke () = bad := 1

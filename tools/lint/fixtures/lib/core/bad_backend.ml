(* Seeded violations for the curve-repr rule: this file pretends to be
   engine code (lib/core), where the min-plus kernels must be reached
   through the Curve_repr dispatch seam so that --curve-backend covers
   every analysis path. *)

let smooth alpha beta = Minplus.conv alpha beta
let end_to_end curves = Minplus.conv_list curves
let reich g = Minplus.conv_with_rate ~rate:1. g
let output alpha beta = Minplus.deconv alpha beta
let probe eval = Pwl.of_sampler ~candidates:[ 0. ] ~eval ()

(* Scalar kernels without a representation choice stay allowed. *)
let busy agg = Minplus.busy_period ~agg ~rate:1.

(* Fixture: a file every rule is happy with.  The self-test asserts
   netcalc-lint reports nothing here.  Never compiled — only parsed. *)

let lock = Obs_sync.create ()

let counter = ref 0
[@@lint.domain_safe "fixture: registered from a single domain at startup"]

let bump () = counter := !counter + 1
let guarded = ref 0
let read () = Obs_sync.with_lock lock (fun () -> !guarded)
let write n = Obs_sync.with_lock lock (fun () -> guarded := n)
let close a b = Float_ops.( =~ ) a b
let same f g = Pwl.equal f g
let order f g = Pwl.compare f g

(* Fixture for the float-eq rule: raw (=) / (<>) on float literals or
   float-annotated expressions (only lib/util/float_ops.ml may spell
   these out).  Never compiled — only parsed by netcalc-lint's
   self-tests. *)

let x = 1.5
let lit_eq = x = 1.5
let lit_ne = 0.1 +. 0.2 <> 0.3
let annotated y = (y : float) = x

(* The blessed comparisons are not flagged. *)
let ok = Float_ops.( =~ ) x 1.5
let ok_exact = Float_ops.eq_exact x 1.5

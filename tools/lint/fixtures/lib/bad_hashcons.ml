(* Fixture for the pwl-poly-eq rule: polymorphic comparison/hash on
   values syntactically known to be Pwl.t.  Never compiled — only
   parsed by netcalc-lint's self-tests. *)

let f = Pwl.make [ (0., 0., 1.) ]
let g : Pwl.t = Pwl.zero
let direct_eq = f = g
let direct_ne = Pwl.zero <> g
let cmp = compare f (Pwl.scale 2. g)
let h = Hashtbl.hash (Pwl.add f g)

(* The blessed API is not flagged. *)
let ok = Pwl.equal f g
let ok_cmp = Pwl.compare f g
let ok_hash = Pwl.hash f

(* Fixture for the forbidden-prim rule.  Never compiled — only parsed
   by netcalc-lint's self-tests. *)

let t0 = Sys.time ()
let () = Random.self_init ()
let cast (x : int) : float = Obj.magic x

(* Printing is forbidden in lib/ specifically. *)
let shout () = print_string "hello"
let shout2 n = Printf.printf "%d\n" n

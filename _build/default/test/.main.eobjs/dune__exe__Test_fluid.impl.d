test/test_fluid.ml: Alcotest Arrival Decomposed Discipline Fifo Float Flow Fluid Integrated List Minplus Network Pairing Printf Pwl QCheck2 Server Tandem Testutil

test/test_pwl_deep.ml: Deviation Float List Minplus Pwl QCheck2 Testutil

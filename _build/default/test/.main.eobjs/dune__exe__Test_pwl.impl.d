test/test_pwl.ml: Alcotest Deviation Float List Minplus Pwl QCheck2 Testutil

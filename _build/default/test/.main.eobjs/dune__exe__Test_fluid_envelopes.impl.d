test/test_fluid_envelopes.ml: Arrival Decomposed Flow Fluid Integrated List Network Pairing Printf Pwl QCheck2 Tandem Testutil

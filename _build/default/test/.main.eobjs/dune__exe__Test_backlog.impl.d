test/test_backlog.ml: Alcotest Arrival Decomposed Fifo Float Flow List Network Printf Pwl QCheck2 Server Sim Tandem Testutil

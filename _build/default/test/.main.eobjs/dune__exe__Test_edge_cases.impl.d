test/test_edge_cases.ml: Admission Alcotest Arrival Decomposed Engine Fifo_theta Float Flow Integrated List Minplus Network Pairing Pwl Server Service_curve_method Sim Source Tandem Testutil

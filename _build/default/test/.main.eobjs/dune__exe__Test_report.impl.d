test/test_report.ml: Arrival Decomposed Flow Integrated List Network Pairing Printf Report Service_curve_method Sim String Tandem Testutil Validate

test/test_pwl_differential.ml: Float List Minplus Pwl QCheck2 Testutil

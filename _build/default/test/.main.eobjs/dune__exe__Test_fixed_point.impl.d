test/test_fixed_point.ml: Alcotest Decomposed Fixed_point Float Flow List Network Ring Server Sim Tandem Testutil Validate

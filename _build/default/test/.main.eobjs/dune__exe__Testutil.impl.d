test/testutil.ml: Alcotest Float Minplus Pwl QCheck2 QCheck_alcotest

test/test_scenario.ml: Alcotest Arrival Contracts Decomposed Filename Float Flow Integrated List Network Pairing QCheck2 Randomnet Ring Scenario Server Sys Tandem Testutil

test/test_integrated_sp.ml: Alcotest Arrival Decomposed Discipline Flow Integrated Integrated_sp List Network Options Pairing Printf QCheck2 Randomnet Server Sim Tandem Testutil Validate

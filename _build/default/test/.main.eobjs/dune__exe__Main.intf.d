test/main.mli:

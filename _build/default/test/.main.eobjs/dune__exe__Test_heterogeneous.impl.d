test/test_heterogeneous.ml: Decomposed Float Flow Fluid Integrated List Network Pair_analysis Pairing Pwl QCheck2 Randomnet Server Testutil

test/test_edf_allocation.ml: Alcotest Arrival Discipline Edf_allocation Flow List Network Printf QCheck2 Server Sim Stdlib Testutil Validate

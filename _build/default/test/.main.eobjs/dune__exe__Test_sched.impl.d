test/test_sched.ml: Edf Fifo Float Gps List Pwl QCheck2 Service Static_priority Testutil

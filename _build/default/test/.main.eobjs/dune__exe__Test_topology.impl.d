test/test_topology.ml: Alcotest Arrival Dot Flow List Network Printf QCheck2 Randomnet Server String Tandem Testutil

test/test_curves.ml: Alcotest Arrival Pwl QCheck2 Service Testutil

test/test_util.ml: Alcotest Float Float_ops List String Sweep Table Testutil

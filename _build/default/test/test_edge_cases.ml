(* Edge cases across the library: degenerate networks, unsupported
   shapes, boundary parameters, engine dispatch. *)

open Testutil

let arrival = Arrival.token_bucket ~sigma:1. ~rho:0.1 ()

(* ------------------------------------------------------------------ *)
(* Degenerate networks                                                 *)
(* ------------------------------------------------------------------ *)

let test_empty_network () =
  let net = Network.make ~servers:[] ~flows:[] in
  Alcotest.(check int) "size" 0 (Network.size net);
  check_bool "feedforward" true (Network.is_feedforward net);
  check_bool "stable" true (Network.stable net);
  let a = Decomposed.analyze net in
  Alcotest.(check (list (pair int (float 1e-9)))) "no flows" []
    (Decomposed.all_flow_delays a)

let test_single_server_single_flow () =
  let net =
    Network.make
      ~servers:[ Server.make ~id:0 ~rate:1. () ]
      ~flows:[ Flow.make ~id:0 ~arrival ~route:[ 0 ] () ]
  in
  let d = Decomposed.flow_delay (Decomposed.analyze net) 0 in
  approx "single hop burst" 1. d;
  let i = Integrated.flow_delay (Integrated.analyze net) 0 in
  approx "integrated single hop" 1. i;
  let sc = Service_curve_method.flow_delay (Service_curve_method.analyze net) 0 in
  approx "sfa single hop (no cross)" 1. sc

let test_flow_with_zero_rate () =
  (* A pure burst source (rho = 0) drains and bounds stay finite. *)
  let f =
    Flow.make ~id:0
      ~arrival:(Arrival.token_bucket ~sigma:2. ~rho:0. ())
      ~route:[ 0; 1 ] ()
  in
  let net =
    Network.make
      ~servers:[ Server.make ~id:0 ~rate:1. (); Server.make ~id:1 ~rate:1. () ]
      ~flows:[ f ]
  in
  let d = Decomposed.flow_delay (Decomposed.analyze net) 0 in
  check_bool "finite" true (Float.is_finite d);
  let i =
    Integrated.flow_delay
      (Integrated.analyze ~strategy:(Pairing.Along_route 0) net)
      0
  in
  approx "integrated pays the burst once" 2. i

let test_exact_capacity_is_unstable () =
  (* rho exactly equal to the rate: bounds must be infinite (the
     busy period never closes). *)
  let f =
    Flow.make ~id:0 ~arrival:(Arrival.token_bucket ~sigma:1. ~rho:1. ())
      ~route:[ 0 ] ()
  in
  let net =
    Network.make ~servers:[ Server.make ~id:0 ~rate:1. () ] ~flows:[ f ]
  in
  approx "at capacity" infinity (Decomposed.flow_delay (Decomposed.analyze net) 0)

(* ------------------------------------------------------------------ *)
(* Pairing corner cases                                                *)
(* ------------------------------------------------------------------ *)

let test_pairing_odd_route () =
  (* 3-hop route: one pair + one singleton along the route. *)
  let net =
    Network.make
      ~servers:(List.init 3 (fun id -> Server.make ~id ~rate:1. ()))
      ~flows:[ Flow.make ~id:0 ~arrival ~route:[ 0; 1; 2 ] () ]
  in
  let p = Pairing.build net (Pairing.Along_route 0) in
  check_bool "pair + singleton" true
    (List.mem (Pairing.Pair (0, 1)) p && List.mem (Pairing.Single 2) p);
  (* Pay the burst once in the pair (sigma = 1), then the pair-delay-
     inflated burst once more in the singleton (1 + rho * 1 = 1.1). *)
  approx "bound" 2.1
    (Integrated.flow_delay (Integrated.analyze_with_pairing net p) 0)

let test_pair_with_no_transit () =
  (* A pair whose servers share no flow is rejected (no u -> v edge). *)
  let net =
    Network.make
      ~servers:[ Server.make ~id:0 ~rate:1. (); Server.make ~id:1 ~rate:1. () ]
      ~flows:
        [
          Flow.make ~id:0 ~arrival ~route:[ 0 ] ();
          Flow.make ~id:1 ~arrival ~route:[ 1 ] ();
        ]
  in
  try
    Pairing.validate net [ Pairing.Pair (0, 1) ];
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_greedy_on_disconnected () =
  let net =
    Network.make
      ~servers:(List.init 4 (fun id -> Server.make ~id ~rate:1. ()))
      ~flows:
        [
          Flow.make ~id:0 ~arrival ~route:[ 0; 1 ] ();
          Flow.make ~id:1 ~arrival ~route:[ 2; 3 ] ();
        ]
  in
  let p = Pairing.build net Pairing.Greedy in
  Pairing.validate net p;
  check_bool "pairs both components" true
    (List.mem (Pairing.Pair (0, 1)) p && List.mem (Pairing.Pair (2, 3)) p)

(* ------------------------------------------------------------------ *)
(* Curve algebra corners                                               *)
(* ------------------------------------------------------------------ *)

let test_conv_rejects_general_shape () =
  let zigzag = Pwl.make [ (0., 0., 3.); (1., 3., 0.5); (2., 3.5, 2.) ] in
  check_bool "zigzag classified general" true (Pwl.shape zigzag = `General);
  try
    ignore (Minplus.conv zigzag zigzag);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_sup_on_unbounded () =
  approx "positive slope to infinity" infinity
    (Pwl.sup_on (Pwl.affine ~y0:0. ~slope:1.) ~lo:0. ~hi:infinity);
  approx "negative slope to infinity" 5.
    (Pwl.sup_on (Pwl.affine ~y0:5. ~slope:(-1.)) ~lo:0. ~hi:infinity)

let test_scale_zero () =
  let f = Pwl.affine ~y0:3. ~slope:2. in
  check_bool "zero scale" true (Pwl.equal (Pwl.scale 0. f) Pwl.zero)

let test_shift_by_zero_identity () =
  let f = Pwl.affine ~y0:1. ~slope:0.5 in
  check_bool "shift_left 0" true (Pwl.equal (Pwl.shift_left f 0.) f);
  check_bool "shift_right 0" true (Pwl.equal (Pwl.shift_right f 0.) f)

(* ------------------------------------------------------------------ *)
(* Engine dispatch                                                     *)
(* ------------------------------------------------------------------ *)

let test_engine_all_methods_on_tandem () =
  let t = Tandem.make ~n:2 ~utilization:0.4 () in
  List.iter
    (fun m ->
      let d =
        Engine.flow_delay ~strategy:(Pairing.Along_route 0) t.network m 0
      in
      check_bool (Engine.method_name m ^ " finite") true (Float.is_finite d);
      check_bool (Engine.method_name m ^ " positive") true (d > 0.))
    Engine.all_methods

let test_relative_improvement_corners () =
  check_bool "nan on infinity" true
    (Float.is_nan (Engine.relative_improvement infinity 3.));
  check_bool "nan on zero base" true
    (Float.is_nan (Engine.relative_improvement 0. 3.));
  approx "negative when worse" (-0.5) (Engine.relative_improvement 2. 3.)

let test_fifo_theta_thetas_accessor () =
  let t = Tandem.make ~n:3 ~utilization:0.6 () in
  let a = Fifo_theta.analyze t.network in
  let thetas = Fifo_theta.thetas a ~flow:0 in
  Alcotest.(check int) "one theta per hop" 3 (List.length thetas);
  List.iter (fun th -> check_bool "nonnegative" true (th >= 0.)) thetas

(* ------------------------------------------------------------------ *)
(* Simulator corners                                                   *)
(* ------------------------------------------------------------------ *)

let test_sim_no_emissions () =
  (* Horizon 0 with a start offset: nothing is emitted or delivered. *)
  let f = Flow.make ~id:0 ~arrival ~route:[ 0 ] () in
  let net =
    Network.make ~servers:[ Server.make ~id:0 ~rate:1. () ] ~flows:[ f ]
  in
  let res =
    Sim.run
      ~config:
        {
          Sim.default_config with
          horizon = 1.;
          models = [ (0, Source.Greedy { start = 5. }) ];
        }
      net
  in
  Alcotest.(check int) "nothing delivered" 0 (Sim.packets_delivered res);
  approx "no delay recorded" 0. (Sim.max_delay res 0)

let test_source_rejects_oversized_packet () =
  try
    ignore
      (Source.emission_times (Greedy { start = 0. }) ~sigma:1. ~rho:0.5
         ~peak:infinity ~packet_size:2. ~horizon:10.);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_deadline_met_helper () =
  let f = Flow.make ~id:0 ~arrival ~route:[ 0 ] ~deadline:5. () in
  let g = Flow.make ~id:1 ~arrival ~route:[ 0 ] () in
  check_bool "met" true (Admission.deadline_met [ (0, 4.); (1, 99.) ] [ f; g ]);
  check_bool "missed" false (Admission.deadline_met [ (0, 6.) ] [ f ]);
  check_bool "missing bound counts as miss" false
    (Admission.deadline_met [] [ f ]);
  check_bool "no deadline always ok" true (Admission.deadline_met [] [ g ])

let suite =
  ( "edge-cases",
    [
      test "empty network" test_empty_network;
      test "single server, single flow" test_single_server_single_flow;
      test "zero-rate (pure burst) flow" test_flow_with_zero_rate;
      test "exact capacity is unstable" test_exact_capacity_is_unstable;
      test "odd route pairing" test_pairing_odd_route;
      test "pair without transit rejected" test_pair_with_no_transit;
      test "greedy on disconnected components" test_greedy_on_disconnected;
      test "conv rejects general shapes" test_conv_rejects_general_shape;
      test "sup_on unbounded windows" test_sup_on_unbounded;
      test "scale by zero" test_scale_zero;
      test "shift by zero" test_shift_by_zero_identity;
      test "engine dispatch over all methods" test_engine_all_methods_on_tandem;
      test "relative improvement corners" test_relative_improvement_corners;
      test "fifo-theta accessor" test_fifo_theta_thetas_accessor;
      test "simulator with no emissions" test_sim_no_emissions;
      test "oversized packets rejected" test_source_rejects_oversized_packet;
      test "deadline_met helper" test_deadline_met_helper;
    ] )

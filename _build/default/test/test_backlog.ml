(* Backlog bounds and buffer dimensioning. *)

open Testutil

let test_single_server_backlog () =
  let f =
    Flow.make ~id:0 ~arrival:(Arrival.token_bucket ~sigma:3. ~rho:0.5 ())
      ~route:[ 0 ] ()
  in
  let net =
    Network.make ~servers:[ Server.make ~id:0 ~rate:1. () ] ~flows:[ f ]
  in
  let a = Decomposed.analyze net in
  approx "backlog = burst" 3. (Decomposed.server_backlog a 0);
  approx "busy period" 6. (Decomposed.server_busy_period a 0)

let test_backlog_grows_downstream () =
  (* Along the tandem the propagated envelopes get burstier, so buffer
     requirements at the middle ports grow with the hop index. *)
  let t = Tandem.make ~n:5 ~utilization:0.7 () in
  let a = Decomposed.analyze t.network in
  let backlogs = List.map (Decomposed.server_backlog a) t.mid_servers in
  let rec nondecreasing = function
    | x :: (y :: _ as rest) -> x <= y +. 1e-9 && nondecreasing rest
    | _ -> true
  in
  check_bool "nondecreasing along the chain" true
    (nondecreasing (List.tl backlogs));
  List.iter (fun b -> check_bool "finite" true (Float.is_finite b)) backlogs

let test_backlog_dominates_simulation () =
  let t = Tandem.make ~n:4 ~utilization:0.8 ~peak:infinity () in
  let net = t.network in
  let a = Decomposed.analyze net in
  let packet_size = 0.2 in
  let res =
    Sim.run ~config:{ Sim.default_config with packet_size; horizon = 300. } net
  in
  List.iter
    (fun (s : Server.t) ->
      let observed = Sim.server_max_backlog res s.id in
      let bound = Decomposed.server_backlog a s.id in
      (* Packetized arrivals are impulses: grant one packet per
         incoming link over the fluid envelope. *)
      let allowance =
        packet_size
        *. float_of_int (List.length (Network.flows_at net s.id))
      in
      check_bool
        (Printf.sprintf "backlog bound at %s: %.3f <= %.3f + %.3f" s.name
           observed bound allowance)
        true
        (observed <= bound +. allowance +. 1e-9))
    (Network.servers net)

let test_idle_server () =
  let net =
    Network.make
      ~servers:[ Server.make ~id:0 ~rate:1. (); Server.make ~id:1 ~rate:1. () ]
      ~flows:
        [
          Flow.make ~id:0 ~arrival:(Arrival.token_bucket ~sigma:1. ~rho:0.1 ())
            ~route:[ 0 ] ();
        ]
  in
  let a = Decomposed.analyze net in
  approx "idle backlog" 0. (Decomposed.server_backlog a 1);
  approx "idle busy period" 0. (Decomposed.server_busy_period a 1)

let prop_backlog_at_least_delay_times_nothing =
  (* Classic relation at a constant-rate server: backlog = delay * rate
     for the FIFO aggregate bound (both are deviations of the same
     envelope). *)
  qtest "backlog = rate * delay at a FIFO server"
    QCheck2.Gen.(triple gen_burst (float_range 0.05 0.7) (float_range 0.5 3.))
    (fun (sigma, rho, rate) ->
      QCheck2.assume (rho < rate -. 1e-3);
      let agg = Pwl.affine ~y0:sigma ~slope:rho in
      let d = Fifo.local_delay ~rate ~agg in
      let b = Fifo.backlog ~rate ~agg in
      Float.abs (b -. (rate *. d)) <= 1e-6 *. Float.max 1. b)

let test_local_delay_bounds_dominate_simulation () =
  (* Finer-grained than the end-to-end check: the per-server local
     delay bound must dominate the worst simulated single-hop delay
     (one packet of store-and-forward allowance per hop). *)
  let t = Tandem.make ~n:4 ~utilization:0.8 ~peak:infinity () in
  let net = t.network in
  let a = Decomposed.analyze net in
  let packet_size = 0.2 in
  let res =
    Sim.run ~config:{ Sim.default_config with packet_size; horizon = 300. } net
  in
  List.iter
    (fun (s : Server.t) ->
      let observed = Sim.server_max_delay res s.id in
      let bound = Decomposed.server_delay a s.id in
      check_bool
        (Printf.sprintf "local bound at %s: %.3f <= %.3f + %.3f" s.name
           observed bound (packet_size /. s.rate))
        true
        (observed <= bound +. (packet_size /. s.rate) +. 1e-9))
    (Network.servers net)

let test_buffer_dimensioning_no_loss () =
  (* Provision every server's buffer at its backlog bound (plus the
     packetization grace): the simulation must drop nothing. *)
  let t = Tandem.make ~n:4 ~utilization:0.8 ~peak:infinity () in
  let net = t.network in
  let a = Decomposed.analyze net in
  let packet_size = 0.25 in
  let buffers =
    List.map
      (fun (s : Server.t) ->
        let grace =
          packet_size *. float_of_int (List.length (Network.flows_at net s.id))
        in
        (s.id, Decomposed.server_backlog a s.id +. grace))
      (Network.servers net)
  in
  let res =
    Sim.run
      ~config:{ Sim.default_config with packet_size; horizon = 300.; buffers }
      net
  in
  Alcotest.(check int) "zero drops with dimensioned buffers" 0
    (Sim.total_drops res)

let test_undersized_buffers_drop () =
  let t = Tandem.make ~n:3 ~utilization:0.8 ~peak:infinity () in
  let net = t.network in
  let packet_size = 0.25 in
  (* First measure the real peaks, then provision at half of them. *)
  let free =
    Sim.run ~config:{ Sim.default_config with packet_size; horizon = 200. } net
  in
  let buffers =
    List.filter_map
      (fun (s : Server.t) ->
        let peak = Sim.server_max_backlog free s.id in
        if peak > packet_size then Some (s.id, peak /. 2.) else None)
      (Network.servers net)
  in
  let res =
    Sim.run
      ~config:{ Sim.default_config with packet_size; horizon = 200.; buffers }
      net
  in
  check_bool "halved buffers cause drops" true (Sim.total_drops res > 0)


let suite =
  ( "backlog",
    [
      test "single server" test_single_server_backlog;
      test "grows downstream" test_backlog_grows_downstream;
      test "dominates simulated backlog" test_backlog_dominates_simulation;
      test "local delay bounds dominate per-hop simulation"
        test_local_delay_bounds_dominate_simulation;
      test "idle server" test_idle_server;
      test "buffer dimensioning prevents loss"
        test_buffer_dimensioning_no_loss;
      test "undersized buffers drop" test_undersized_buffers_drop;
      prop_backlog_at_least_delay_times_nothing;
    ] )

(* Tests for the discrete-event simulator and bound validation. *)

open Testutil

(* ------------------------------------------------------------------ *)
(* Event heap                                                          *)
(* ------------------------------------------------------------------ *)

let test_heap_order () =
  let h = Event_heap.create () in
  List.iter (fun (t, v) -> Event_heap.push h ~time:t v)
    [ (3., "c"); (1., "a"); (2., "b"); (1., "a2"); (0.5, "z") ];
  let popped = ref [] in
  let rec drain () =
    match Event_heap.pop h with
    | Some (_, v) ->
        popped := v :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string))
    "time order with FIFO ties"
    [ "z"; "a"; "a2"; "b"; "c" ]
    (List.rev !popped)

let prop_heap_sorted =
  qtest "heap pops in nondecreasing time order"
    QCheck2.Gen.(list_size (int_range 0 200) (float_range 0. 100.))
    (fun times ->
      let h = Event_heap.create () in
      List.iter (fun t -> Event_heap.push h ~time:t ()) times;
      let rec check last =
        match Event_heap.pop h with
        | Some (t, ()) -> t >= last && check t
        | None -> true
      in
      check neg_infinity)

(* ------------------------------------------------------------------ *)
(* Sources                                                             *)
(* ------------------------------------------------------------------ *)

let conforms ~sigma ~rho ~packet_size times =
  (* Check N (s, t] <= sigma + rho (t - s) over all emission pairs. *)
  let arr = Array.of_list times in
  let n = Array.length arr in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      (* Packets i..j all emitted in the window (arr.(i) - eps, arr.(j)]. *)
      let count = float_of_int (j - i + 1) *. packet_size in
      let window = arr.(j) -. arr.(i) in
      if count > sigma +. (rho *. window) +. 1e-9 then ok := false
    done
  done;
  !ok

let test_greedy_emissions () =
  let times =
    Source.emission_times (Greedy { start = 0. }) ~sigma:1. ~rho:0.25 ~peak:1.
      ~packet_size:0.25 ~horizon:10.
  in
  check_bool "nonempty" true (times <> []);
  (* The initial burst: 4 packets spaced by packet/peak = 0.25. *)
  (match times with
  | t1 :: t2 :: _ ->
      approx "first right away" 0. t1;
      approx "peak spacing" 0.25 t2
  | _ -> Alcotest.fail "too few packets");
  check_bool "conforms" true (conforms ~sigma:1. ~rho:0.25 ~packet_size:0.25 times)

let test_periodic_emissions () =
  let times =
    Source.emission_times
      (Periodic { start = 0.; interval = 2. })
      ~sigma:1. ~rho:1. ~peak:infinity ~packet_size:1. ~horizon:10.
  in
  Alcotest.(check int) "count" 6 (List.length times);
  approx "spacing" 2. (List.nth times 1 -. List.nth times 0)

let test_onoff_emissions () =
  let times =
    Source.emission_times
      (On_off { start = 0.; on = 1.; off = 3. })
      ~sigma:1. ~rho:0.25 ~peak:1. ~packet_size:0.5 ~horizon:20.
  in
  check_bool "nonempty" true (times <> []);
  (* No emission strictly inside an off-phase. *)
  List.iter
    (fun t ->
      let phase = Float.rem t 4. in
      check_bool (Printf.sprintf "t=%g in on-phase" t) true (phase <= 1. +. 1e-9))
    times;
  check_bool "conforms" true (conforms ~sigma:1. ~rho:0.25 ~packet_size:0.5 times)

let prop_greedy_conforms =
  qtest ~count:100 "greedy emissions conform to the token bucket"
    QCheck2.Gen.(
      triple (float_range 0.5 4.) (float_range 0.05 0.9) (float_range 0.1 0.5))
    (fun (sigma, rho, frac) ->
      let packet_size = frac *. sigma in
      let times =
        Source.emission_times (Greedy { start = 0. }) ~sigma ~rho ~peak:1.
          ~packet_size ~horizon:30.
      in
      conforms ~sigma ~rho ~packet_size times)

(* ------------------------------------------------------------------ *)
(* Single-server sanity                                                *)
(* ------------------------------------------------------------------ *)

let single_server_net ~discipline flows =
  Network.make ~servers:[ Server.make ~id:0 ~rate:1. ~discipline () ] ~flows

let test_single_fifo_delay () =
  (* One greedy (sigma=1, rho=0.25) source on a rate-1 server: the
     first packets queue behind the burst; max delay stays below the
     analytic bound sigma = 1 and approaches it. *)
  let f =
    Flow.make ~id:0 ~arrival:(Arrival.token_bucket ~sigma:1. ~rho:0.25 ())
      ~route:[ 0 ] ()
  in
  let net = single_server_net ~discipline:Discipline.Fifo [ f ] in
  let res =
    Sim.run ~config:{ Sim.default_config with packet_size = 0.25; horizon = 50. } net
  in
  let bound = Fifo.local_delay ~rate:1. ~agg:(Flow.source_curve f) in
  let obs = Sim.max_delay res 0 in
  check_bool "below bound" true (obs <= bound +. 1e-9);
  check_bool "bound reasonably tight (> 60%)" true (obs >= 0.6 *. bound)

let test_work_conservation () =
  (* All packets drain: delivered = emitted. *)
  let f1 =
    Flow.make ~id:0 ~arrival:(Arrival.token_bucket ~sigma:1. ~rho:0.3 ())
      ~route:[ 0 ] ()
  in
  let f2 =
    Flow.make ~id:1 ~arrival:(Arrival.token_bucket ~sigma:1. ~rho:0.3 ())
      ~route:[ 0 ] ()
  in
  let net = single_server_net ~discipline:Discipline.Fifo [ f1; f2 ] in
  let res =
    Sim.run ~config:{ Sim.default_config with packet_size = 0.5; horizon = 40. } net
  in
  let emitted =
    List.length
      (Source.emission_times (Greedy { start = 0. }) ~sigma:1. ~rho:0.3
         ~peak:infinity ~packet_size:0.5 ~horizon:40.)
  in
  Alcotest.(check int) "all delivered" (2 * emitted) (Sim.packets_delivered res)

let test_sp_preference () =
  (* High-priority flow sees much lower delay than low-priority one. *)
  let mk id prio =
    Flow.make ~id ~arrival:(Arrival.token_bucket ~sigma:2. ~rho:0.4 ())
      ~route:[ 0 ] ~priority:prio ()
  in
  let net =
    single_server_net ~discipline:Discipline.Static_priority
      [ mk 0 0; mk 1 5 ]
  in
  let res =
    Sim.run ~config:{ Sim.default_config with packet_size = 0.5; horizon = 60. } net
  in
  check_bool "high priority faster" true
    (Sim.max_delay res 0 < Sim.max_delay res 1)

let test_gps_isolation () =
  (* Under WFQ a light flow is protected from a heavy one. *)
  let mk id sigma w =
    Flow.make ~id ~arrival:(Arrival.token_bucket ~sigma ~rho:0.4 ())
      ~route:[ 0 ] ~weight:w ()
  in
  let net = single_server_net ~discipline:Discipline.Gps [ mk 0 0.5 1.; mk 1 6. 1. ] in
  let res =
    Sim.run ~config:{ Sim.default_config with packet_size = 0.25; horizon = 60. } net
  in
  check_bool "light flow protected" true
    (Sim.max_delay res 0 < Sim.max_delay res 1)

let test_edf_meets_deadlines () =
  let mk id dl =
    Flow.make ~id ~arrival:(Arrival.token_bucket ~sigma:1. ~rho:0.3 ())
      ~route:[ 0 ] ~deadline:dl ()
  in
  let net = single_server_net ~discipline:Discipline.Edf [ mk 0 3.; mk 1 8. ] in
  let res =
    Sim.run ~config:{ Sim.default_config with packet_size = 0.5; horizon = 60. } net
  in
  (* The schedulability test accepts this population, so simulated
     delays stay below the local deadlines. *)
  check_bool "flow 0 meets deadline" true (Sim.max_delay res 0 <= 3.);
  check_bool "flow 1 meets deadline" true (Sim.max_delay res 1 <= 8.);
  check_bool "tight flow served sooner" true
    (Sim.max_delay res 0 <= Sim.max_delay res 1)

(* ------------------------------------------------------------------ *)
(* Bound validation (the headline property)                            *)
(* ------------------------------------------------------------------ *)

let validate_tandem n u =
  let t = Tandem.make ~n ~utilization:u ~peak:infinity () in
  let net = t.network in
  let dd = Decomposed.analyze net in
  let sc = Service_curve_method.analyze net in
  let integ = Integrated.analyze ~strategy:(Pairing.Along_route 0) net in
  let config = { Sim.default_config with packet_size = 0.25; horizon = 300. } in
  List.iter
    (fun (engine, bounds) ->
      let reports = Validate.check ~config ~bounds net in
      List.iter
        (fun (r : Validate.report) ->
          check_bool
            (Printf.sprintf "%s bound holds for flow %d (n=%d U=%g): %.3f <= %.3f"
               engine r.flow n u r.observed r.bound)
            true (r.slack >= -1e-6))
        reports)
    [
      ("decomposed", Decomposed.all_flow_delays dd);
      ("service-curve", Service_curve_method.all_flow_delays sc);
      ("integrated", Integrated.all_flow_delays integ);
    ]

let test_validation_small () = validate_tandem 2 0.6
let test_validation_medium () = validate_tandem 4 0.8
let test_validation_large () = validate_tandem 6 0.9

let prop_validation_random_networks =
  qtest ~count:15 "bounds dominate simulation on random networks"
    QCheck2.Gen.(triple (int_range 2 4) (int_range 2 8) (int_range 0 5_000))
    (fun (layers, num_flows, seed) ->
      let net =
        Randomnet.generate
          {
            Randomnet.default with
            layers;
            num_flows;
            seed;
            utilization = 0.75;
            peak = infinity;
            max_burst = 2.;
          }
      in
      let integ = Integrated.analyze ~strategy:Pairing.Greedy net in
      let dd = Decomposed.analyze net in
      let config =
        { Sim.default_config with packet_size = 0.05; horizon = 150. }
      in
      let ok bounds =
        Validate.violations (Validate.check ~config ~bounds net) = []
      in
      ok (Integrated.all_flow_delays integ) && ok (Decomposed.all_flow_delays dd))

let test_validation_staggered_sources () =
  (* Offsetting source start times must not break any bound. *)
  let t = Tandem.make ~n:3 ~utilization:0.8 ~peak:infinity () in
  let net = t.network in
  let models =
    List.mapi
      (fun i (f : Flow.t) ->
        (f.id, Source.Greedy { start = float_of_int (i mod 4) *. 1.7 }))
      (Network.flows net)
  in
  let config = { Sim.default_config with packet_size = 0.25; horizon = 300.; models } in
  let integ = Integrated.analyze ~strategy:(Pairing.Along_route 0) net in
  check_bool "no violations" true
    (Validate.violations
       (Validate.check ~config ~bounds:(Integrated.all_flow_delays integ) net)
    = [])

let test_validation_onoff_sources () =
  let t = Tandem.make ~n:3 ~utilization:0.7 ~peak:infinity () in
  let net = t.network in
  let models =
    List.map
      (fun (f : Flow.t) -> (f.id, Source.On_off { start = 0.; on = 3.; off = 5. }))
      (Network.flows net)
  in
  let config = { Sim.default_config with packet_size = 0.25; horizon = 300.; models } in
  let integ = Integrated.analyze ~strategy:(Pairing.Along_route 0) net in
  check_bool "no violations" true
    (Validate.violations
       (Validate.check ~config ~bounds:(Integrated.all_flow_delays integ) net)
    = [])

(* ------------------------------------------------------------------ *)
(* Envelope-propagation validation (paper Fig. 2, Step 3.2)            *)
(* ------------------------------------------------------------------ *)

let envelope_checks_pass name checks =
  List.iter
    (fun (flow, server, ok) ->
      check_bool
        (Printf.sprintf "%s envelope of flow %d after server %d" name flow
           server)
        true ok)
    checks;
  check_bool (name ^ " checked something") true (checks <> [])

let test_decomposed_envelopes_hold () =
  let t = Tandem.make ~n:4 ~utilization:0.8 ~peak:infinity () in
  let net = t.network in
  let a = Decomposed.analyze net in
  let checks =
    Validate.check_output_envelopes
      ~config:{ Sim.default_config with packet_size = 0.25; horizon = 200. }
      ~envelope_at:(fun ~flow ~server -> Decomposed.envelope_at a ~flow ~server)
      net
  in
  envelope_checks_pass "decomposed" checks

let test_integrated_envelopes_hold () =
  let t = Tandem.make ~n:4 ~utilization:0.8 ~peak:infinity () in
  let net = t.network in
  let a = Integrated.analyze ~strategy:(Pairing.Along_route 0) net in
  let checks =
    Validate.check_output_envelopes
      ~config:{ Sim.default_config with packet_size = 0.25; horizon = 200. }
      ~envelope_at:(fun ~flow ~server -> Integrated.envelope_at a ~flow ~server)
      net
  in
  envelope_checks_pass "integrated" checks

let test_conforms_to_envelope_detects_violation () =
  (* Four packets of size 1 at the same instant violate a (2, 0.1)
     token bucket even with one packet of slack. *)
  let env = Pwl.affine ~y0:2. ~slope:0.1 in
  check_bool "violation detected" false
    (Validate.conforms_to_envelope ~packet_size:1. ~slack:1. env
       [ 0.; 0.; 0.; 0. ]);
  check_bool "conforming series accepted" true
    (Validate.conforms_to_envelope ~packet_size:1. ~slack:1. env
       [ 0.; 0.; 10.; 20. ])

let suite =
  ( "sim",
    [
      test "heap ordering" test_heap_order;
      prop_heap_sorted;
      test "greedy emissions" test_greedy_emissions;
      test "periodic emissions" test_periodic_emissions;
      test "on/off emissions" test_onoff_emissions;
      prop_greedy_conforms;
      test "single FIFO server" test_single_fifo_delay;
      test "work conservation" test_work_conservation;
      test "static priority preference" test_sp_preference;
      test "gps isolation" test_gps_isolation;
      test "edf meets deadlines" test_edf_meets_deadlines;
      test "bounds hold on tandem n=2" test_validation_small;
      test "bounds hold on tandem n=4" test_validation_medium;
      test "bounds hold on tandem n=6" test_validation_large;
      prop_validation_random_networks;
      test "bounds hold with staggered sources"
        test_validation_staggered_sources;
      test "bounds hold with on/off sources" test_validation_onoff_sources;
      test "decomposed output envelopes hold" test_decomposed_envelopes_hold;
      test "integrated output envelopes hold" test_integrated_envelopes_hold;
      test "envelope conformance detects violations"
        test_conforms_to_envelope_detects_violation;
    ] )

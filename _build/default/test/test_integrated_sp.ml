(* Tests for the static-priority integrated engine (the paper's Sec. 5
   future-work extension). *)

open Testutil

let sp_tandem ?(peak = 1.) n u =
  Tandem.make ~n ~utilization:u ~peak
    ~discipline:Discipline.Static_priority ()

let test_fifo_special_case () =
  (* On an all-FIFO network the SP engine must coincide exactly with
     the FIFO integrated engine. *)
  List.iter
    (fun (n, u) ->
      let t = Tandem.make ~n ~utilization:u () in
      let a = Integrated.analyze ~strategy:(Pairing.Along_route 0) t.network in
      let b =
        Integrated_sp.analyze ~strategy:(Pairing.Along_route 0) t.network
      in
      List.iter
        (fun (f : Flow.t) ->
          approx
            (Printf.sprintf "%s n=%d U=%g" f.name n u)
            (Integrated.flow_delay a f.id)
            (Integrated_sp.flow_delay b f.id))
        (Network.flows t.network))
    [ (2, 0.4); (4, 0.7); (5, 0.9) ]

let test_sp_beats_decomposed () =
  List.iter
    (fun (n, u) ->
      let t = sp_tandem n u in
      let dd = Decomposed.analyze t.network in
      let sp =
        Integrated_sp.analyze ~strategy:(Pairing.Along_route 0) t.network
      in
      List.iter
        (fun (f : Flow.t) ->
          check_bool
            (Printf.sprintf "%s: SP-integrated <= SP-decomposed (n=%d U=%g)"
               f.name n u)
            true
            (Integrated_sp.flow_delay sp f.id
            <= Decomposed.flow_delay dd f.id +. 1e-9))
        (Network.flows t.network);
      check_bool "strictly better for conn0" true
        (Integrated_sp.flow_delay sp 0 < Decomposed.flow_delay dd 0 -. 1e-6))
    [ (2, 0.3); (4, 0.6); (8, 0.9) ]

let test_priority_ordering () =
  (* In the SP tandem, urgent A-flows see (near) zero delay, conn0
     (middle priority) less than the background B-flows at comparable
     path lengths. *)
  let t = sp_tandem 4 0.7 in
  let sp = Integrated_sp.analyze ~strategy:(Pairing.Along_route 0) t.network in
  approx "urgent class alone sees no fluid delay" 0.
    (Integrated_sp.flow_delay sp 1);
  (* conn0 (priority 1, 4 hops) vs B1 (priority 2, 3 hops). *)
  check_bool "middle class beats background on comparable paths" true
    (Integrated_sp.flow_delay sp 0 /. 4.
    < Integrated_sp.flow_delay sp 4 /. 3.)

let test_rejects_mixed_and_other () =
  let arrival = Arrival.token_bucket ~sigma:1. ~rho:0.1 () in
  let mixed =
    Network.make
      ~servers:
        [
          Server.make ~id:0 ~rate:1. ();
          Server.make ~id:1 ~rate:1.
            ~discipline:Discipline.Static_priority ();
        ]
      ~flows:[ Flow.make ~id:0 ~arrival ~route:[ 0; 1 ] () ]
  in
  (try
     ignore (Integrated_sp.analyze mixed);
     Alcotest.fail "expected Invalid_argument for mixed disciplines"
   with Invalid_argument _ -> ());
  let gps =
    Network.make
      ~servers:[ Server.make ~id:0 ~rate:1. ~discipline:Discipline.Gps () ]
      ~flows:[ Flow.make ~id:0 ~arrival ~route:[ 0 ] () ]
  in
  try
    ignore (Integrated_sp.analyze gps);
    Alcotest.fail "expected Invalid_argument for GPS"
  with Invalid_argument _ -> ()

let test_blocking_increases_bounds () =
  let t = sp_tandem 4 0.6 in
  let plain =
    Integrated_sp.analyze ~strategy:(Pairing.Along_route 0) t.network
  in
  let blocked =
    Integrated_sp.analyze
      ~options:(Options.with_blocking 0.5 Options.default)
      ~strategy:(Pairing.Along_route 0) t.network
  in
  List.iter
    (fun (f : Flow.t) ->
      check_bool (f.name ^ ": blocking never decreases the bound") true
        (Integrated_sp.flow_delay blocked f.id
        >= Integrated_sp.flow_delay plain f.id -. 1e-9))
    (Network.flows t.network)

let test_validation_against_simulator () =
  (* Non-preemptive packet SP simulator vs preemptive fluid analysis
     with the blocking term set to the packet size. *)
  let packet_size = 0.25 in
  let t = sp_tandem ~peak:infinity 3 0.7 in
  let net = t.network in
  let options = Options.with_blocking packet_size Options.default in
  let bounds_sp =
    Integrated_sp.all_flow_delays
      (Integrated_sp.analyze ~options ~strategy:(Pairing.Along_route 0) net)
  in
  let bounds_dd = Decomposed.all_flow_delays (Decomposed.analyze ~options net) in
  let config = { Sim.default_config with packet_size; horizon = 300. } in
  List.iter
    (fun (name, bounds) ->
      let reports = Validate.check ~config ~bounds net in
      List.iter
        (fun (r : Validate.report) ->
          check_bool
            (Printf.sprintf "%s bound holds for flow %d: %.3f <= %.3f + %.3f"
               name r.flow r.observed r.bound r.allowance)
            true (r.slack >= -1e-6))
        reports)
    [ ("sp-integrated", bounds_sp); ("sp-decomposed", bounds_dd) ]

let prop_sp_dominated_on_random_nets =
  qtest ~count:25 "SP-integrated <= SP-decomposed on random feedforward nets"
    QCheck2.Gen.(triple (int_range 2 4) (int_range 2 8) (int_range 0 5_000))
    (fun (layers, num_flows, seed) ->
      let base =
        Randomnet.generate
          { Randomnet.default with layers; num_flows; seed; utilization = 0.7 }
      in
      (* Re-type every server as static priority and spread flow
         priorities deterministically. *)
      let servers =
        List.map
          (fun (s : Server.t) ->
            Server.make ~id:s.id ~name:s.name ~rate:s.rate
              ~discipline:Discipline.Static_priority ())
          (Network.servers base)
      in
      let flows =
        List.map
          (fun (f : Flow.t) ->
            Flow.make ~id:f.id ~name:f.name ~arrival:f.arrival ~route:f.route
              ~priority:(f.id mod 3) ~weight:f.weight ())
          (Network.flows base)
      in
      let net = Network.make ~servers ~flows in
      let dd = Decomposed.analyze net in
      let sp = Integrated_sp.analyze ~strategy:Pairing.Greedy net in
      List.for_all
        (fun (f : Flow.t) ->
          Integrated_sp.flow_delay sp f.id
          <= Decomposed.flow_delay dd f.id +. 1e-6)
        flows)

let test_priority_demotion_hurts () =
  (* Demoting conn0 from middle to background priority can only
     increase (or keep) its bound. *)
  let bound priority =
    let base = sp_tandem 4 0.6 in
    let flows =
      List.map
        (fun (f : Flow.t) ->
          if f.id = 0 then
            Flow.make ~id:f.id ~name:f.name ~arrival:f.arrival ~route:f.route
              ~priority ()
          else f)
        (Network.flows base.network)
    in
    let net = Network.with_flows base.network flows in
    Integrated_sp.flow_delay
      (Integrated_sp.analyze ~strategy:(Pairing.Along_route 0) net)
      0
  in
  check_bool "demotion monotone" true (bound 3 >= bound 1 -. 1e-9);
  check_bool "promotion helps" true (bound 0 <= bound 1 +. 1e-9)


let suite =
  ( "integrated-sp",
    [
      test "FIFO special case equals Integrated" test_fifo_special_case;
      test "beats SP decomposition on the tandem" test_sp_beats_decomposed;
      test "priority ordering" test_priority_ordering;
      test "rejects mixed/unsupported disciplines"
        test_rejects_mixed_and_other;
      test "blocking term is monotone" test_blocking_increases_bounds;
      test "priority demotion monotone" test_priority_demotion_hurts;
      test "bounds hold against non-preemptive packet simulation"
        test_validation_against_simulator;
      prop_sp_dominated_on_random_nets;
    ] )

(* Differential tests of the exact piecewise-linear constructions
   against brute-force references, on adversarial GENERAL-shape inputs
   (arbitrary slopes, jumps, flats, near-vertical burst segments).
   These generators found real bugs that the concave/convex generators
   of the other suites could not reach. *)

open Testutil

let gen_general =
  QCheck2.Gen.(
    let* n = int_range 1 6 in
    let* xs = list_repeat n (float_range 0.01 3.) in
    let* ys = list_repeat n (float_range 0. 10.) in
    let* ss = list_repeat n (float_range (-1.) 5.) in
    let rec build x acc = function
      | (w, (y, s)) :: rest -> build (x +. w) ((x, y, s) :: acc) rest
      | [] -> List.rev acc
    in
    return (Pwl.make (build 0. [] (List.combine xs (List.combine ys ss)))))

let gen_general_monotone =
  QCheck2.Gen.(
    let* n = int_range 1 6 in
    let* ws = list_repeat n (float_range 0.01 3.) in
    let* dys = list_repeat n (float_range 0. 2.) in
    let* ss = list_repeat n (float_range 0. 3.) in
    let* steep = QCheck2.Gen.bool in
    let rec build x y acc = function
      | (w, (dy, s)) :: rest ->
          let s = if steep && acc = [] then 1e4 else s in
          build (x +. w) (y +. dy +. (s *. w)) ((x, y +. dy, s) :: acc) rest
      | [] -> List.rev acc
    in
    return (Pwl.make (build 0. 0. [] (List.combine ws (List.combine dys ss)))))

let grid = List.init 120 (fun i -> float_of_int i /. 8.)

let close a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1. (Float.abs b)

let prop_add_exact =
  qtest ~count:300 "add is exact on general shapes"
    QCheck2.Gen.(pair gen_general gen_general)
    (fun (f, g) ->
      List.for_all
        (fun t -> close (Pwl.eval (Pwl.add f g) t) (Pwl.eval f t +. Pwl.eval g t))
        grid)

let prop_min_max_exact =
  qtest ~count:300 "min/max are exact on general shapes"
    QCheck2.Gen.(pair gen_general gen_general)
    (fun (f, g) ->
      List.for_all
        (fun t ->
          close
            (Pwl.eval (Pwl.min_pw f g) t)
            (Float.min (Pwl.eval f t) (Pwl.eval g t))
          && close
               (Pwl.eval (Pwl.max_pw f g) t)
               (Float.max (Pwl.eval f t) (Pwl.eval g t)))
        grid)

let prop_running_max_exact =
  qtest ~count:300 "running_max equals the exact prefix supremum"
    gen_general
    (fun f ->
      let m = Pwl.running_max f in
      Pwl.is_nondecreasing m
      && List.for_all
           (fun t -> close (Pwl.eval m t) (Pwl.sup_on f ~lo:0. ~hi:t))
           grid)

let prop_compose_exact =
  qtest ~count:300 "compose is exact pointwise on general shapes"
    QCheck2.Gen.(pair gen_general gen_general_monotone)
    (fun (outer, inner) ->
      let h = Pwl.compose ~outer ~inner in
      List.for_all
        (fun t -> close (Pwl.eval h t) (Pwl.eval outer (Pwl.eval inner t)))
        grid)

let prop_inverse_galois_general =
  qtest ~count:300 "pseudo-inverse is the exact upper inverse"
    gen_general_monotone
    (fun f ->
      QCheck2.assume (Pwl.final_slope f > 1e-3);
      let inv = Pwl.pseudo_inverse f in
      List.for_all
        (fun y ->
          (* reference sup { x : f x <= y } by fine scan, valid when f
             exceeds y within the scanned range *)
          if Pwl.eval f 100. <= y +. 1e-6 then true
          else begin
            let r = ref 0. in
            for i = 0 to 5000 do
              let x = float_of_int i /. 50. in
              if Pwl.eval f x <= y then r := x
            done;
            Float.abs (Pwl.eval inv y -. !r) <= 0.03
          end)
        grid)

let prop_conv_with_rate_general =
  qtest ~count:200 "Reich's equation on general monotone inputs"
    QCheck2.Gen.(pair gen_general_monotone gen_rate)
    (fun (g, rate) ->
      let d = Minplus.conv_with_rate ~rate g in
      List.for_all
        (fun t ->
          let ref_v =
            List.fold_left
              (fun acc b ->
                if b <= t then
                  Float.min acc
                    (Float.min
                       (Pwl.eval g b +. (rate *. (t -. b)))
                       (Pwl.eval_left g b +. (rate *. (t -. b))))
                else acc)
              (Float.min (rate *. t) (Pwl.eval g t))
              (Pwl.breakpoints g)
          in
          Pwl.eval d t <= ref_v +. 1e-6)
        grid)

let prop_shift_left_general =
  qtest ~count:300 "shift_left is exact on general shapes"
    QCheck2.Gen.(pair gen_general (float_range 0. 8.))
    (fun (f, d) ->
      List.for_all
        (fun t -> close (Pwl.eval (Pwl.shift_left f d) t) (Pwl.eval f (t +. d)))
        grid)

let suite =
  ( "pwl-differential",
    [
      prop_add_exact;
      prop_min_max_exact;
      prop_running_max_exact;
      prop_compose_exact;
      prop_inverse_galois_general;
      prop_conv_with_rate_general;
      prop_shift_left_general;
    ] )

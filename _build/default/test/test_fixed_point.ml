(* Tests for the cyclic fixed-point engine and the ring generator. *)

open Testutil

let test_ring_structure () =
  let r = Ring.make ~n:4 ~hops:2 ~utilization:0.5 () in
  let net = r.network in
  Alcotest.(check int) "servers" 4 (Network.size net);
  check_bool "cyclic" false (Network.is_feedforward net);
  List.iter
    (fun (s : Server.t) -> approx "per-server load" 0.5 (Network.utilization net s.id))
    (Network.servers net)

let test_matches_decomposed_on_feedforward () =
  (* On a feedforward network the fixed point is reached in a few
     rounds and equals the decomposition result exactly. *)
  let t = Tandem.make ~n:4 ~utilization:0.6 () in
  let dd = Decomposed.analyze t.network in
  let fp = Fixed_point.analyze t.network in
  check_bool "converged" true (Fixed_point.converged fp);
  List.iter
    (fun (f : Flow.t) ->
      approx (f.name ^ " equals decomposed")
        (Decomposed.flow_delay dd f.id)
        (Fixed_point.flow_delay fp f.id))
    (Network.flows t.network)

let test_ring_low_load_converges () =
  let r = Ring.make ~n:5 ~hops:3 ~utilization:0.3 () in
  let fp = Fixed_point.analyze r.network in
  check_bool "converged" true (Fixed_point.converged fp);
  List.iter
    (fun (f : Flow.t) ->
      let d = Fixed_point.flow_delay fp f.id in
      check_bool (f.name ^ " finite") true (Float.is_finite d);
      check_bool (f.name ^ " positive") true (d > 0.))
    (Network.flows r.network);
  (* Symmetry: all flows get the same bound. *)
  let ds =
    List.map (fun (_, d) -> d) (Fixed_point.all_flow_delays fp)
  in
  List.iter (fun d -> approx "symmetric" (List.hd ds) d) ds

let test_ring_high_load_diverges () =
  (* The decomposition fixed point on a ring blows up well below
     utilization 1 — the feedback effect the paper's Sec. 5 warns
     about.  For the symmetric ring the linearized burst recursion has
     spectral radius U (hops - 1) / 2, i.e. threshold 2/3 for 4 hops. *)
  let r = Ring.make ~n:6 ~hops:4 ~utilization:0.8 () in
  let fp = Fixed_point.analyze ~max_iter:400 r.network in
  check_bool "did not converge at U=0.8 (threshold 2/3)" false
    (Fixed_point.converged fp);
  approx "bounds are infinite" infinity (Fixed_point.flow_delay fp 0);
  (* Below the threshold the same ring converges, and the symmetric
     closed form d = hops^2 sigma / (1 - U (hops-1)/2) per flow is
     matched exactly. *)
  let r2 = Ring.make ~n:6 ~hops:4 ~utilization:0.5 () in
  let fp2 = Fixed_point.analyze ~max_iter:400 r2.network in
  check_bool "converged at U=0.5" true (Fixed_point.converged fp2);
  approx ~tol:1e-6 "symmetric closed form"
    (16. /. (1. -. (0.5 *. 1.5)))
    (Fixed_point.flow_delay fp2 0)

let test_convergence_monotone_in_load () =
  (* If the iteration converges at some load it converges at any lower
     load (checked on a small grid). *)
  let converges u =
    Fixed_point.converged
      (Fixed_point.analyze (Ring.make ~n:4 ~hops:2 ~utilization:u ()).network)
  in
  let grid = [ 0.1; 0.3; 0.5; 0.7; 0.9 ] in
  let flags = List.map converges grid in
  let rec no_flip_back = function
    | a :: (b :: _ as rest) -> ((not b) || a) && no_flip_back rest
    | _ -> true
  in
  check_bool "convergence region is downward closed" true
    (no_flip_back (List.rev flags));
  check_bool "converges somewhere" true (List.hd flags)

let test_ring_bounds_hold_in_simulation () =
  let r = Ring.make ~n:4 ~hops:2 ~utilization:0.5 () in
  let net = r.network in
  let fp = Fixed_point.analyze net in
  check_bool "converged" true (Fixed_point.converged fp);
  let config = { Sim.default_config with packet_size = 0.2; horizon = 300. } in
  let reports =
    Validate.check ~config ~bounds:(Fixed_point.all_flow_delays fp) net
  in
  check_bool "no violations" true (Validate.violations reports = [])

let test_iterations_reported () =
  let t = Tandem.make ~n:3 ~utilization:0.5 () in
  let fp = Fixed_point.analyze t.network in
  check_bool "some iterations" true (Fixed_point.iterations fp >= 1);
  let r = Ring.make ~n:4 ~hops:2 ~utilization:0.6 () in
  let fp2 = Fixed_point.analyze r.network in
  check_bool "cyclic needs more rounds than tol-hit minimum" true
    (Fixed_point.iterations fp2 >= 2)

let suite =
  ( "fixed-point",
    [
      test "ring generator" test_ring_structure;
      test "equals decomposed on feedforward networks"
        test_matches_decomposed_on_feedforward;
      test "ring converges at low load" test_ring_low_load_converges;
      test "ring diverges at high load" test_ring_high_load_diverges;
      test "convergence region downward closed"
        test_convergence_monotone_in_load;
      test "ring bounds hold in simulation" test_ring_bounds_hold_in_simulation;
      test "iteration counts" test_iterations_reported;
    ] )

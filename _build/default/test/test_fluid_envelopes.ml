(* Exact-arithmetic validation of envelope propagation: the fluid
   trajectories of conforming scenarios must satisfy, window by window,
   the envelopes each analysis claims at every hop — with zero
   tolerance beyond float noise. *)

open Testutil

(* All-window check: f (t) - f (s) <= env (t - s) for windows anchored
   at the breakpoints of f (plus midpoints); exact for PL functions up
   to the sampled anchor set. *)
let windows_conform ~actual ~env =
  let anchors =
    let bps = Pwl.breakpoints actual in
    let rec mids = function
      | a :: (b :: _ as rest) -> ((a +. b) /. 2.) :: mids rest
      | [ a ] -> [ a +. 0.5; a +. 3.7 ]
      | [] -> []
    in
    List.sort_uniq compare (bps @ mids bps)
  in
  List.for_all
    (fun s ->
      List.for_all
        (fun t ->
          t < s
          || Pwl.eval actual t -. Pwl.eval actual s
             <= Pwl.eval env (t -. s) +. 1e-6)
        anchors)
    anchors

let check_analysis name envelope_at net =
  let fluid = Fluid.run net in
  List.iter
    (fun (f : Flow.t) ->
      List.iter
        (fun (s, s') ->
          match envelope_at ~flow:f.id ~server:s' with
          | env ->
              let actual = Fluid.input_at fluid ~flow:f.id ~server:s' in
              check_bool
                (Printf.sprintf "%s: %s envelope after server %d holds" name
                   f.name s)
                true
                (windows_conform ~actual ~env)
          | exception Not_found -> ())
        (Flow.hop_pairs f))
    (Network.flows net)

let test_decomposed_envelopes_exact () =
  let t = Tandem.make ~n:4 ~utilization:0.8 ~peak:infinity () in
  let a = Decomposed.analyze t.network in
  check_analysis "decomposed"
    (fun ~flow ~server -> Decomposed.envelope_at a ~flow ~server)
    t.network

let test_integrated_envelopes_exact () =
  let t = Tandem.make ~n:4 ~utilization:0.8 ~peak:infinity () in
  let a = Integrated.analyze ~strategy:(Pairing.Along_route 0) t.network in
  check_analysis "integrated"
    (fun ~flow ~server -> Integrated.envelope_at a ~flow ~server)
    t.network

let test_envelopes_exact_with_phases () =
  (* Same property under a phase-staggered scenario. *)
  let t = Tandem.make ~n:3 ~utilization:0.7 ~peak:infinity () in
  let net = t.network in
  let inputs =
    List.mapi
      (fun i (f : Flow.t) ->
        (f.id, Fluid.greedy ~phase:(0.9 *. float_of_int (i mod 3)) f))
      (Network.flows net)
  in
  let fluid = Fluid.run ~inputs net in
  let a = Decomposed.analyze net in
  List.iter
    (fun (f : Flow.t) ->
      List.iter
        (fun (s, s') ->
          let env = Decomposed.envelope_at a ~flow:f.id ~server:s' in
          let actual = Fluid.input_at fluid ~flow:f.id ~server:s' in
          check_bool
            (Printf.sprintf "phased: %s envelope after server %d" f.name s)
            true
            (windows_conform ~actual ~env))
        (Flow.hop_pairs f))
    (Network.flows net)

let prop_source_realization_conforms =
  qtest ~count:80 "greedy realizations conform to their own envelope"
    QCheck2.Gen.(
      triple (float_range 0.2 4.) (float_range 0.05 0.9)
        (QCheck2.Gen.float_range 0. 4.))
    (fun (sigma, rho, phase) ->
      QCheck2.assume (rho < 1.);
      let f =
        Flow.make ~id:0 ~arrival:(Arrival.token_bucket ~sigma ~rho ())
          ~route:[ 0 ] ()
      in
      let actual = Fluid.greedy ~phase f in
      windows_conform ~actual ~env:(Flow.source_curve f))

let suite =
  ( "fluid-envelopes",
    [
      test "decomposed envelopes hold in exact arithmetic"
        test_decomposed_envelopes_exact;
      test "integrated envelopes hold in exact arithmetic"
        test_integrated_envelopes_exact;
      test "envelopes hold under phase-staggered scenarios"
        test_envelopes_exact_with_phases;
      prop_source_realization_conforms;
    ] )

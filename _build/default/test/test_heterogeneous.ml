(* Heterogeneous-rate networks and scaling invariances. *)

open Testutil

let hetero ~seed ~num_flows =
  Randomnet.generate
    {
      Randomnet.default with
      layers = 3;
      num_flows;
      seed;
      utilization = 0.7;
      rate_spread = 0.45;
      peak = infinity;
    }

let test_hetero_generator () =
  let net = hetero ~seed:5 ~num_flows:8 in
  check_bool "feedforward" true (Network.is_feedforward net);
  check_bool "stable" true (Network.stable net);
  approx ~tol:1e-6 "max utilization on target" 0.7
    (Network.max_utilization net);
  (* Rates actually differ. *)
  let rates =
    List.sort_uniq compare
      (List.map (fun (s : Server.t) -> s.rate) (Network.servers net))
  in
  check_bool "heterogeneous rates" true (List.length rates > 1)

let prop_integrated_dominated_hetero =
  qtest ~count:30 "integrated <= decomposed on heterogeneous-rate nets"
    QCheck2.Gen.(pair (int_range 2 8) (int_range 0 10_000))
    (fun (num_flows, seed) ->
      let net = hetero ~seed ~num_flows in
      let dd = Decomposed.analyze net in
      let integ = Integrated.analyze ~strategy:Pairing.Greedy net in
      List.for_all
        (fun (f : Flow.t) ->
          Integrated.flow_delay integ f.id
          <= Decomposed.flow_delay dd f.id +. 1e-6)
        (Network.flows net))

let prop_fluid_below_bounds_hetero =
  qtest ~count:10 "fluid scenarios below bounds on heterogeneous nets"
    QCheck2.Gen.(pair (int_range 2 6) (int_range 0 3_000))
    (fun (num_flows, seed) ->
      let net = hetero ~seed ~num_flows in
      let integ = Integrated.analyze ~strategy:Pairing.Greedy net in
      let observed = Fluid.phase_search ~tries:3 ~seed net in
      List.for_all
        (fun (id, obs) -> obs <= Integrated.flow_delay integ id +. 1e-6)
        observed)

(* Homogeneity: scaling every burst by k scales every bound by k
   (rates fixed); tested on an asymmetric pair. *)
let prop_pair_bound_homogeneous_in_bursts =
  qtest ~count:60 "pair bound scales linearly with bursts"
    QCheck2.Gen.(
      quad (float_range 0.2 2.) (float_range 0.01 0.2) (float_range 0.5 2.)
        (float_range 1.5 4.))
    (fun (sigma, rho, c2, k) ->
      let mk s = Pwl.affine ~y0:s ~slope:rho in
      let bound s =
        (Pair_analysis.analyze
           {
             c1 = 1.;
             c2;
             s12 = [ mk s ];
             s1 = [ mk (0.5 *. s) ];
             s2 = [ mk (2. *. s) ];
           })
          .d_pair
      in
      let b1 = bound sigma and bk = bound (k *. sigma) in
      Float.abs (bk -. (k *. b1)) <= 1e-6 *. Float.max 1. bk)

(* Time-rescaling: multiplying all rates (server and source) by k
   divides all delays by k (bursts fixed). *)
let prop_pair_bound_time_rescaling =
  qtest ~count:60 "pair bound inversely scales with a rate rescaling"
    QCheck2.Gen.(
      triple (float_range 0.2 2.) (float_range 0.01 0.2) (float_range 1.5 4.))
    (fun (sigma, rho, k) ->
      let bound k =
        (Pair_analysis.analyze
           {
             c1 = k;
             c2 = k;
             s12 = [ Pwl.affine ~y0:sigma ~slope:(rho *. k) ];
             s1 = [ Pwl.affine ~y0:sigma ~slope:(rho *. k) ];
             s2 = [ Pwl.affine ~y0:sigma ~slope:(rho *. k) ];
           })
          .d_pair
      in
      let b1 = bound 1. and bk = bound k in
      Float.abs (bk -. (b1 /. k)) <= 1e-6 *. Float.max 1. b1)

let test_asymmetric_pair_directions () =
  (* Slower second server hurts; faster second server helps. *)
  let mk () = Pwl.affine ~y0:1. ~slope:0.2 in
  let bound c2 =
    (Pair_analysis.analyze
       { c1 = 1.; c2; s12 = [ mk () ]; s1 = [ mk () ]; s2 = [ mk () ] })
      .d_pair
  in
  check_bool "slower server 2 increases the bound" true (bound 0.7 > bound 1.);
  check_bool "faster server 2 decreases the bound" true (bound 2. < bound 1.)

let suite =
  ( "heterogeneous",
    [
      test "generator with rate spread" test_hetero_generator;
      prop_integrated_dominated_hetero;
      prop_fluid_below_bounds_hetero;
      prop_pair_bound_homogeneous_in_bursts;
      prop_pair_bound_time_rescaling;
      test "asymmetric pair monotonicity" test_asymmetric_pair_directions;
    ] )

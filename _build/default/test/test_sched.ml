(* Tests for the scheduling-discipline substrates. *)

open Testutil

let tb ~sigma ~rho = Pwl.affine ~y0:sigma ~slope:rho

let test_fifo_local_delay () =
  let agg = tb ~sigma:3. ~rho:0.5 in
  approx "rate 1" 3. (Fifo.local_delay ~rate:1. ~agg);
  approx "rate 2" 1.5 (Fifo.local_delay ~rate:2. ~agg);
  approx "unstable" infinity (Fifo.local_delay ~rate:0.5 ~agg)

let test_fifo_backlog_and_busy () =
  let agg = tb ~sigma:2. ~rho:0.5 in
  approx "backlog" 2. (Fifo.backlog ~rate:1. ~agg);
  approx "busy period" 4. (Fifo.busy_period ~rate:1. ~agg)

let test_fifo_output () =
  let agg = tb ~sigma:2. ~rho:0.5 in
  let out = Fifo.output_aggregate ~rate:1. ~agg in
  (* min(t, 2 + 0.5 t): link-limited before the crossing at 4. *)
  approx "early" 1. (Pwl.eval out 1.);
  approx "late" 5. (Pwl.eval out 6.);
  let flow = tb ~sigma:1. ~rho:0.25 in
  let fout = Fifo.output_flow ~rate:1. ~agg ~flow in
  (* shift by local delay 2: burst 1.5, but capped by aggregate output. *)
  approx "flow out burst" (Float.min (Pwl.eval out 0.) 1.5) (Pwl.eval fout 0.);
  approx "flow out later" (1. +. (0.25 *. 6.)) (Pwl.eval fout 4.)

let test_static_priority () =
  let higher = tb ~sigma:2. ~rho:0.25 in
  let own = tb ~sigma:1. ~rho:0.25 in
  (* class service = (t - 2 - 0.25 t)^+ = rate-latency(0.75, 8/3). *)
  let beta = Static_priority.class_service ~rate:1. ~higher () in
  check_bool "convex" true (Service.is_service_curve beta);
  approx "latency region" 0. (Pwl.eval beta (8. /. 3.));
  (* delay = hdev(own, beta) = T + sigma/R = 8/3 + 1/0.75. *)
  approx "class delay"
    ((8. /. 3.) +. (1. /. 0.75))
    (Static_priority.local_delay ~rate:1. ~higher ~own ());
  (* Blocking adds a constant to the cross traffic. *)
  let with_blocking =
    Static_priority.local_delay ~rate:1. ~higher ~own ~blocking:0.5 ()
  in
  check_bool "blocking increases delay" true
    (with_blocking > Static_priority.local_delay ~rate:1. ~higher ~own ())

let test_sp_priority_isolation () =
  (* Highest priority class sees no cross traffic. *)
  let own = tb ~sigma:1. ~rho:0.25 in
  approx "top class delay" 1.
    (Static_priority.local_delay ~rate:1. ~higher:Pwl.zero ~own ())

let test_edf_feasible () =
  let a1 = tb ~sigma:1. ~rho:0.25 and a2 = tb ~sigma:1. ~rho:0.25 in
  (* Generous deadlines: feasible. *)
  check_bool "feasible" true (Edf.feasible ~rate:1. [ (a1, 5.); (a2, 5.) ]);
  (* Impossible deadlines: two simultaneous unit bursts cannot both
     clear the rate-1 server within 1. *)
  check_bool "infeasible" false (Edf.feasible ~rate:1. [ (a1, 1.); (a2, 1.) ]);
  approx "local delay = deadline" 5.
    (Edf.local_delay ~rate:1. [ (a1, 5.); (a2, 5.) ] ~deadline:5.);
  approx "infeasible local delay" infinity
    (Edf.local_delay ~rate:1. [ (a1, 1.); (a2, 1.) ] ~deadline:1.)

let test_edf_min_uniform_deadline () =
  let curves = [ tb ~sigma:1. ~rho:0.25; tb ~sigma:1. ~rho:0.25 ] in
  let d = Edf.min_uniform_deadline ~rate:1. ~curves () in
  check_bool "min deadline feasible" true
    (Edf.feasible ~rate:1. (List.map (fun c -> (c, d)) curves));
  check_bool "slightly smaller infeasible" false
    (Edf.feasible ~rate:1. (List.map (fun c -> (c, d -. 1e-3)) curves));
  (* With equal deadlines EDF behaves like FIFO: the minimal uniform
     deadline equals the FIFO aggregate delay (total burst here). *)
  approx ~tol:1e-3 "equals FIFO delay" 2. d

let test_edf_unstable () =
  approx "unstable" infinity
    (Edf.min_uniform_deadline ~rate:0.4
       ~curves:[ tb ~sigma:1. ~rho:0.25; tb ~sigma:1. ~rho:0.25 ]
       ())

let test_gps () =
  approx "guaranteed rate" 0.25
    (Gps.guaranteed_rate ~rate:1. ~weight:1. ~total_weight:4.);
  let alpha = tb ~sigma:1. ~rho:0.2 in
  (* delay = sigma / r_i for fluid GPS. *)
  approx "fluid delay" 4.
    (Gps.local_delay ~rate:1. ~weight:1. ~total_weight:4. ~alpha ());
  (* PGPS adds the packet latency. *)
  approx "pgps delay" 4.5
    (Gps.local_delay ~rate:1. ~weight:1. ~total_weight:4. ~alpha
       ~packet_latency:0.5 ());
  (* Output: burst grows by rho * latency only (deconvolution), i.e.
     sigma + rho * 0 for fluid. *)
  let out = Gps.output_flow ~rate:1. ~weight:1. ~total_weight:4. ~alpha () in
  approx "output burst" 1. (Pwl.eval out 0.)

let prop_edf_deadline_monotone =
  qtest "EDF feasibility is monotone in the deadline"
    QCheck2.Gen.(
      triple gen_burst (QCheck2.Gen.float_range 0.05 0.4)
        (QCheck2.Gen.float_range 0. 10.))
    (fun (sigma, rho, d) ->
      let curves = [ tb ~sigma ~rho; tb ~sigma ~rho ] in
      let flows d = List.map (fun c -> (c, d)) curves in
      (not (Edf.feasible ~rate:1. (flows d)))
      || Edf.feasible ~rate:1. (flows (d +. 1.)))

let prop_sp_higher_load_hurts =
  qtest "more higher-priority traffic never helps an SP class"
    QCheck2.Gen.(pair gen_burst gen_burst)
    (fun (s1, s2) ->
      let own = tb ~sigma:1. ~rho:0.1 in
      let d_small =
        Static_priority.local_delay ~rate:1.
          ~higher:(tb ~sigma:s1 ~rho:0.2) ~own ()
      in
      let d_big =
        Static_priority.local_delay ~rate:1.
          ~higher:(tb ~sigma:(s1 +. s2) ~rho:0.2)
          ~own ()
      in
      d_big >= d_small -. 1e-6)

let suite =
  ( "sched",
    [
      test "fifo local delay" test_fifo_local_delay;
      test "fifo backlog/busy period" test_fifo_backlog_and_busy;
      test "fifo output envelopes" test_fifo_output;
      test "static priority" test_static_priority;
      test "sp top class isolation" test_sp_priority_isolation;
      test "edf feasibility" test_edf_feasible;
      test "edf minimal uniform deadline" test_edf_min_uniform_deadline;
      test "edf unstable" test_edf_unstable;
      test "gps" test_gps;
      prop_edf_deadline_monotone;
      prop_sp_higher_load_hurts;
    ] )

(* EDF end-to-end deadline allocation (the paper's ref [28] problem). *)

open Testutil

let edf_net ~flows =
  let max_id =
    List.fold_left
      (fun acc (f : Flow.t) -> List.fold_left Stdlib.max acc f.route)
      0 flows
  in
  Network.make
    ~servers:
      (List.init (max_id + 1) (fun id ->
           Server.make ~id ~rate:1. ~discipline:Discipline.Edf ()))
    ~flows

let flow ~id ~sigma ~rho ~route ~deadline =
  Flow.make ~id ~arrival:(Arrival.token_bucket ~sigma ~rho ()) ~route ~deadline ()

let test_single_flow_allocation () =
  (* One flow, two hops, tight budget: the minimal local deadline at
     each hop is sigma (the burst must clear), so any end-to-end
     deadline >= 2 sigma is certified. *)
  let f = flow ~id:0 ~sigma:1. ~rho:0.2 ~route:[ 0; 1 ] ~deadline:2.4 in
  let a = Edf_allocation.allocate (edf_net ~flows:[ f ]) in
  check_bool "feasible" true (Edf_allocation.flow_feasible a 0);
  check_bool "bound within deadline" true (Edf_allocation.flow_bound a 0 <= 2.4)

let test_unbalanced_load_beats_equal_split () =
  (* Hop 0 is saturated early by two pure-burst crosses with tight
     deadlines (their demand fills capacity up to t = 2), so the long
     flow needs a local deadline of about 3.2 there; hop 1 only needs
     its inflated burst (~1.2).  With an end-to-end budget of 5 the
     equal split (2.5 per hop) fails at the busy hop, while the
     need-proportional allocation succeeds. *)
  let long = flow ~id:0 ~sigma:1. ~rho:0.05 ~route:[ 0; 1 ] ~deadline:5. in
  let c1 = flow ~id:1 ~sigma:1. ~rho:0. ~route:[ 0 ] ~deadline:1. in
  let c2 = flow ~id:2 ~sigma:1. ~rho:0. ~route:[ 0 ] ~deadline:2. in
  let net = edf_net ~flows:[ long; c1; c2 ] in
  let a = Edf_allocation.allocate net in
  check_bool "allocation feasible" true (Edf_allocation.all_feasible a);
  check_bool "busy hop gets more budget" true
    (Edf_allocation.local_deadline a ~flow:0 ~server:0
    > Edf_allocation.local_deadline a ~flow:0 ~server:1);
  check_bool "equal split fails here" false
    (Edf_allocation.equal_split_feasible net 0)

let prop_never_worse_than_equal_split =
  qtest ~count:40 "allocation feasible whenever the equal split is"
    QCheck2.Gen.(
      triple (float_range 0.5 2.) (float_range 0.05 0.2) (float_range 4. 20.))
    (fun (sigma, rho, deadline) ->
      let flows =
        [
          flow ~id:0 ~sigma ~rho ~route:[ 0; 1; 2 ] ~deadline;
          flow ~id:1 ~sigma ~rho ~route:[ 0; 1 ] ~deadline;
          flow ~id:2 ~sigma ~rho ~route:[ 1; 2 ] ~deadline;
        ]
      in
      let net = edf_net ~flows in
      let equal_ok =
        List.for_all (fun (f : Flow.t) -> Edf_allocation.equal_split_feasible net f.id) flows
      in
      (not equal_ok) || Edf_allocation.all_feasible (Edf_allocation.allocate net))

let test_overload_reported () =
  let f1 = flow ~id:0 ~sigma:1. ~rho:0.6 ~route:[ 0 ] ~deadline:10. in
  let f2 = flow ~id:1 ~sigma:1. ~rho:0.6 ~route:[ 0 ] ~deadline:10. in
  let a = Edf_allocation.allocate (edf_net ~flows:[ f1; f2 ]) in
  check_bool "overloaded server infeasible" false (Edf_allocation.all_feasible a);
  check_bool "per-flow infeasible" false (Edf_allocation.flow_feasible a 0)

let test_allocation_validates_in_simulation () =
  (* Run the EDF packet simulator with the allocated local deadlines
     baked in as flow deadlines: observed delays stay within the
     certified end-to-end bounds (plus packetization). *)
  let long = flow ~id:0 ~sigma:1. ~rho:0.15 ~route:[ 0; 1 ] ~deadline:5. in
  let c1 = flow ~id:1 ~sigma:1. ~rho:0.15 ~route:[ 0 ] ~deadline:5. in
  let c2 = flow ~id:2 ~sigma:1. ~rho:0.15 ~route:[ 1 ] ~deadline:5. in
  let net = edf_net ~flows:[ long; c1; c2 ] in
  let a = Edf_allocation.allocate net in
  check_bool "feasible" true (Edf_allocation.all_feasible a);
  let packet_size = 0.25 in
  let res =
    Sim.run ~config:{ Sim.default_config with packet_size; horizon = 200. } net
  in
  List.iter
    (fun (f : Flow.t) ->
      let allowance =
        Validate.store_and_forward_allowance ~packet_size net f
      in
      check_bool
        (Printf.sprintf "%s simulated within certified bound" f.name)
        true
        (Sim.max_delay res f.id
        <= Edf_allocation.flow_bound a f.id +. allowance +. 1e-9))
    (Network.flows net)

let test_rejects_bad_inputs () =
  let fifo_net =
    Network.make
      ~servers:[ Server.make ~id:0 ~rate:1. () ]
      ~flows:[ flow ~id:0 ~sigma:1. ~rho:0.1 ~route:[ 0 ] ~deadline:5. ]
  in
  (try
     ignore (Edf_allocation.allocate fifo_net);
     Alcotest.fail "expected Invalid_argument for FIFO server"
   with Invalid_argument _ -> ());
  let no_deadline =
    Network.make
      ~servers:[ Server.make ~id:0 ~rate:1. ~discipline:Discipline.Edf () ]
      ~flows:
        [
          Flow.make ~id:0 ~arrival:(Arrival.token_bucket ~sigma:1. ~rho:0.1 ())
            ~route:[ 0 ] ();
        ]
  in
  try
    ignore (Edf_allocation.allocate no_deadline);
    Alcotest.fail "expected Invalid_argument for missing deadline"
  with Invalid_argument _ -> ()

let suite =
  ( "edf-allocation",
    [
      test "single flow" test_single_flow_allocation;
      test "beats the equal split on unbalanced load"
        test_unbalanced_load_beats_equal_split;
      prop_never_worse_than_equal_split;
      test "overload reported" test_overload_reported;
      test "certified bounds hold in EDF simulation"
        test_allocation_validates_in_simulation;
      test "rejects bad inputs" test_rejects_bad_inputs;
    ] )

(* Reports, adversarial validation, and cross-engine monotonicity
   properties. *)

open Testutil

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_decomposed_report () =
  let t = Tandem.make ~n:2 ~utilization:0.5 () in
  let r = Report.decomposed (Decomposed.analyze t.network) in
  List.iter
    (fun needle ->
      check_bool ("report mentions " ^ needle) true (contains r needle))
    [ "Decomposed"; "mid0"; "conn0"; "busy period"; "backlog"; "per-hop" ]

let test_integrated_report () =
  let t = Tandem.make ~n:2 ~utilization:0.5 () in
  let r =
    Report.integrated
      (Integrated.analyze ~strategy:(Pairing.Along_route 0) t.network)
  in
  List.iter
    (fun needle ->
      check_bool ("report mentions " ^ needle) true (contains r needle))
    [ "Integrated"; "Pairing:"; "{0,1}"; "per-subnetwork" ]

let test_comparison_report () =
  let t = Tandem.make ~n:3 ~utilization:0.6 () in
  let r = Report.comparison ~strategy:(Pairing.Along_route 0) t.network in
  check_bool "integrated wins for conn0" true (contains r "Integrated");
  check_bool "all methods present" true
    (contains r "Decomposed" && contains r "Service Curve")

let test_adversarial_dominates_single_run () =
  let t = Tandem.make ~n:3 ~utilization:0.7 ~peak:infinity () in
  let net = t.network in
  let config = { Sim.default_config with packet_size = 0.25; horizon = 150. } in
  let single = Sim.run ~config net in
  let adv = Validate.adversarial_max_delays ~config ~tries:4 net in
  List.iter
    (fun (f : Flow.t) ->
      let a = List.assoc f.id adv in
      check_bool (f.name ^ ": adversarial >= aligned run") true
        (a >= Sim.max_delay single f.id -. 1e-9))
    (Network.flows net);
  (* And still below the integrated bounds. *)
  let integ = Integrated.analyze ~strategy:(Pairing.Along_route 0) net in
  List.iter
    (fun (id, obs) ->
      let f = Network.flow net id in
      let allowance =
        Validate.store_and_forward_allowance ~packet_size:config.packet_size
          net f
      in
      check_bool
        (Printf.sprintf "%s: adversarial max below bound" f.name)
        true
        (obs <= Integrated.flow_delay integ id +. allowance +. 1e-9))
    adv

(* Monotonicity: adding traffic can only worsen (or keep) every bound. *)
let test_bounds_monotone_in_population () =
  let t = Tandem.make ~n:3 ~utilization:0.5 () in
  let net = t.network in
  let extra =
    Flow.make ~id:99 ~arrival:(Arrival.paper_source ~sigma:1. ~rho:0.05)
      ~route:[ 0; 1; 2 ] ()
  in
  let bigger = Network.with_flows net (Network.flows net @ [ extra ]) in
  let check_engine name flow_delay =
    List.iter
      (fun (f : Flow.t) ->
        check_bool
          (Printf.sprintf "%s: %s bound monotone" name f.name)
          true
          (flow_delay bigger f.id >= flow_delay net f.id -. 1e-9))
      (Network.flows net)
  in
  check_engine "decomposed" (fun n id ->
      Decomposed.flow_delay (Decomposed.analyze n) id);
  check_engine "integrated" (fun n id ->
      Integrated.flow_delay
        (Integrated.analyze ~strategy:(Pairing.Along_route 0) n)
        id);
  check_engine "service-curve" (fun n id ->
      Service_curve_method.flow_delay (Service_curve_method.analyze n) id)

let test_bounds_monotone_in_burst () =
  let bound sigma =
    let t = Tandem.make ~n:4 ~utilization:0.6 ~sigma () in
    Integrated.flow_delay
      (Integrated.analyze ~strategy:(Pairing.Along_route 0) t.network)
      0
  in
  let bs = List.map bound [ 0.5; 1.; 2.; 4. ] in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && increasing rest
    | _ -> true
  in
  check_bool "integrated bound monotone in sigma" true (increasing bs)

let suite =
  ( "report",
    [
      test "decomposed report" test_decomposed_report;
      test "integrated report" test_integrated_report;
      test "comparison report" test_comparison_report;
      test "adversarial phase search" test_adversarial_dominates_single_run;
      test "bounds monotone in population" test_bounds_monotone_in_population;
      test "bounds monotone in burst" test_bounds_monotone_in_burst;
    ] )

(* Shared helpers for the test suites. *)


let approx ?(tol = 1e-6) msg expected actual =
  let ok =
    if expected = infinity then actual = infinity
    else if expected = neg_infinity then actual = neg_infinity
    else
      Float.abs (expected -. actual)
      <= tol *. Float.max 1.0 (Float.abs expected)
  in
  if not ok then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

let check_bool = Alcotest.(check bool)
let test name f = Alcotest.test_case name `Quick f

(* QCheck generators used across suites. *)

let gen_rate = QCheck2.Gen.float_range 0.05 4.0
let gen_burst = QCheck2.Gen.float_range 0.0 8.0
let gen_latency = QCheck2.Gen.float_range 0.0 5.0

(* A random concave nondecreasing curve: pointwise minimum of up to four
   affine pieces with nonnegative intercepts and slopes. *)
let gen_concave =
  QCheck2.Gen.(
    let affine = map2 (fun y0 s -> Pwl.affine ~y0 ~slope:s) gen_burst gen_rate in
    map Pwl.min_list (list_size (int_range 1 4) affine))

(* A random convex service-like curve: min-plus convolution of up to
   three rate-latency curves (computed directly as max(0, R(t-T))). *)
let rate_latency ~rate ~latency =
  Pwl.nonneg (Pwl.affine ~y0:(-.rate *. latency) ~slope:rate)

let gen_convex =
  QCheck2.Gen.(
    let rl = map2 (fun r t -> rate_latency ~rate:r ~latency:t) gen_rate gen_latency in
    map Minplus.conv_list (list_size (int_range 1 3) rl))

let gen_time = QCheck2.Gen.float_range 0.0 30.0

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

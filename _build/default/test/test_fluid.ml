(* Tests for the exact fluid executor: Reich's equation, FIFO bit
   ordering, and allowance-free bound validation. *)

open Testutil

let tb ~sigma ~rho = Pwl.affine ~y0:sigma ~slope:rho

let test_conv_with_rate_basics () =
  (* Token bucket through rate 1: departures ramp at the link rate
     until the backlog clears at the busy-period end. *)
  let g = tb ~sigma:2. ~rho:0.25 in
  let d = Minplus.conv_with_rate ~rate:1. g in
  approx "starts empty" 0. (Pwl.eval d 0.);
  approx "link-limited" 1. (Pwl.eval d 1.);
  (* busy period ends at 2 / 0.75 = 8/3; beyond it D = G. *)
  approx "after busy period" (Pwl.eval g 4.) (Pwl.eval d 4.);
  check_bool "below arrivals" true
    (List.for_all (fun t -> Pwl.eval d t <= Pwl.eval g t +. 1e-9)
       [ 0.; 0.5; 1.; 2.; 3.; 10. ])

let prop_conv_with_rate_matches_brute_force =
  qtest ~count:80 "Reich's equation matches brute force"
    QCheck2.Gen.(triple gen_concave gen_rate gen_time)
    (fun (g, rate, t) ->
      let d = Minplus.conv_with_rate ~rate g in
      let brute =
        List.fold_left
          (fun acc i ->
            let s = t *. float_of_int i /. 400. in
            Float.min acc (Pwl.eval g s +. (rate *. (t -. s))))
          (Float.min (rate *. t) (Pwl.eval g t))
          (List.init 401 (fun i -> i))
      in
      (* The grid over-approximates the infimum; include the implicit
         pre-origin zero (g vanishes before 0). *)
      let exact = Pwl.eval d t in
      exact <= brute +. 1e-6
      && brute -. exact <= 0.05 *. Float.max 1. brute +. 0.1)

let test_running_max () =
  let zigzag = Pwl.make [ (0., 0., 2.); (1., 2., -1.); (3., 0., 1.) ] in
  let m = Pwl.running_max zigzag in
  check_bool "nondecreasing" true (Pwl.is_nondecreasing m);
  approx "rise" 1. (Pwl.eval m 0.5);
  approx "holds the peak" 2. (Pwl.eval m 2.);
  approx "resumes" 3. (Pwl.eval m 6.)

let test_single_flow_pay_burst_once () =
  let f =
    Flow.make ~id:0 ~arrival:(Arrival.token_bucket ~sigma:2. ~rho:0.25 ())
      ~route:[ 0; 1 ] ()
  in
  let net =
    Network.make
      ~servers:(List.init 2 (fun id -> Server.make ~id ~rate:1. ()))
      ~flows:[ f ]
  in
  let r = Fluid.run net in
  (* Exact worst case is sigma; the finite burst peak shaves
     O(sigma / 1e4). *)
  approx ~tol:1e-3 "exact fluid delay" 2. (Fluid.flow_delay r 0);
  (* And it matches the integrated bound, demonstrating tightness of
     pay-bursts-only-once in this configuration. *)
  approx ~tol:1e-3 "integrated bound achieved" 2.
    (Integrated.flow_delay (Integrated.analyze ~strategy:(Pairing.Along_route 0) net) 0)

let test_flow_conservation () =
  (* Per-flow outputs at a shared server sum to the aggregate
     departures. *)
  let mk id sigma rho = Flow.make ~id ~arrival:(Arrival.token_bucket ~sigma ~rho ()) ~route:[ 0 ] () in
  let net =
    Network.make ~servers:[ Server.make ~id:0 ~rate:1. () ]
      ~flows:[ mk 0 1. 0.2; mk 1 2. 0.3 ]
  in
  let r = Fluid.run net in
  let total = Pwl.add (Fluid.output_of r ~flow:0) (Fluid.output_of r ~flow:1) in
  let g = Pwl.add (Fluid.greedy (Network.flow net 0)) (Fluid.greedy (Network.flow net 1)) in
  let d = Minplus.conv_with_rate ~rate:1. g in
  List.iter
    (fun t ->
      approx ~tol:1e-6 (Printf.sprintf "conservation at %g" t)
        (Pwl.eval d t) (Pwl.eval total t))
    [ 0.5; 1.; 2.; 5.; 12. ]

let test_fluid_below_bounds_no_allowance () =
  (* The sharpest soundness oracle: exact fluid scenarios conform to
     the envelopes exactly, so bounds must hold with zero slack
     granted. *)
  List.iter
    (fun (n, u) ->
      let t = Tandem.make ~n ~utilization:u ~peak:infinity () in
      let net = t.network in
      let observed = Fluid.phase_search ~tries:6 net in
      let integ = Integrated.analyze ~strategy:(Pairing.Along_route 0) net in
      let dd = Decomposed.analyze net in
      List.iter
        (fun (id, obs) ->
          let f = Network.flow net id in
          check_bool
            (Printf.sprintf "%s fluid %.3f <= D_I %.3f (n=%d U=%g)" f.name obs
               (Integrated.flow_delay integ id) n u)
            true
            (obs <= Integrated.flow_delay integ id +. 1e-6);
          check_bool
            (Printf.sprintf "%s fluid below D_D" f.name)
            true
            (obs <= Decomposed.flow_delay dd id +. 1e-6))
        observed)
    [ (2, 0.5); (3, 0.8); (4, 0.9) ]

let test_fluid_backlog_below_bound () =
  let t = Tandem.make ~n:3 ~utilization:0.8 ~peak:infinity () in
  let net = t.network in
  let a = Decomposed.analyze net in
  let r = Fluid.run net in
  List.iter
    (fun (s : Server.t) ->
      check_bool
        (Printf.sprintf "fluid backlog at %s below bound" s.name)
        true
        (Fluid.server_backlog r s.id
        <= Decomposed.server_backlog a s.id +. 1e-6))
    (Network.servers net)

let test_fluid_single_server_tight () =
  (* One server, aligned greedy sources: the fluid delay equals the
     FIFO aggregate bound (the bound is tight for a single hop). *)
  let mk id = Flow.make ~id ~arrival:(Arrival.token_bucket ~sigma:1. ~rho:0.2 ()) ~route:[ 0 ] () in
  let net =
    Network.make ~servers:[ Server.make ~id:0 ~rate:1. () ]
      ~flows:[ mk 0; mk 1; mk 2 ]
  in
  let r = Fluid.run net in
  let bound = Fifo.local_delay ~rate:1. ~agg:(tb ~sigma:3. ~rho:0.6) in
  approx ~tol:1e-3 "single-hop bound achieved" bound (Fluid.flow_delay r 0)

let test_phase_search_dominates_aligned () =
  let t = Tandem.make ~n:3 ~utilization:0.7 ~peak:infinity () in
  let net = t.network in
  let aligned = Fluid.run net in
  let searched = Fluid.phase_search ~tries:5 net in
  List.iter
    (fun (f : Flow.t) ->
      check_bool (f.name ^ ": search >= aligned") true
        (List.assoc f.id searched >= Fluid.flow_delay aligned f.id -. 1e-9))
    (Network.flows net)

let test_fluid_rejects_unsupported () =
  let f = Flow.make ~id:0 ~arrival:(Arrival.token_bucket ~sigma:1. ~rho:0.1 ()) ~route:[ 0 ] () in
  let sp_net =
    Network.make
      ~servers:[ Server.make ~id:0 ~rate:1. ~discipline:Discipline.Static_priority () ]
      ~flows:[ f ]
  in
  (try
     ignore (Fluid.run sp_net);
     Alcotest.fail "expected Invalid_argument for SP"
   with Invalid_argument _ -> ());
  let zero_rate =
    Flow.make ~id:0 ~arrival:(Arrival.token_bucket ~sigma:1. ~rho:0. ())
      ~route:[ 0 ] ()
  in
  let net0 =
    Network.make ~servers:[ Server.make ~id:0 ~rate:1. () ] ~flows:[ zero_rate ]
  in
  try
    ignore (Fluid.run net0);
    Alcotest.fail "expected Invalid_argument for zero rate"
  with Invalid_argument _ -> ()

let prop_conv_with_rate_equals_min_for_concave =
  (* For a concave cumulative function vanishing at the origin, Reich's
     equation reduces to the textbook min (rate t, g t). *)
  qtest ~count:100 "Reich = min(rate t, g) for concave origin-0 inputs"
    QCheck2.Gen.(triple gen_burst gen_rate gen_time)
    (fun (sigma, rho, t) ->
      let g =
        Pwl.min_pw (Pwl.affine ~y0:0. ~slope:2.) (Pwl.affine ~y0:sigma ~slope:rho)
      in
      let d = Minplus.conv_with_rate ~rate:1. g in
      let expect = Float.min t (Pwl.eval g t) in
      Float.abs (Pwl.eval d t -. expect) <= 1e-9 *. Float.max 1. expect)


let suite =
  ( "fluid",
    [
      test "Reich's equation basics" test_conv_with_rate_basics;
      prop_conv_with_rate_matches_brute_force;
      prop_conv_with_rate_equals_min_for_concave;
      test "running max" test_running_max;
      test "pay burst once, exactly" test_single_flow_pay_burst_once;
      test "per-flow conservation" test_flow_conservation;
      test "bounds hold with zero allowance" test_fluid_below_bounds_no_allowance;
      test "fluid backlog below bound" test_fluid_backlog_below_bound;
      test "single-hop bound is achieved" test_fluid_single_server_tight;
      test "phase search dominates aligned" test_phase_search_dominates_aligned;
      test "unsupported inputs rejected" test_fluid_rejects_unsupported;
    ] )

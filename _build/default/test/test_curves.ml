(* Tests for arrival and service curve constructors. *)

open Testutil

let test_token_bucket () =
  let a = Arrival.token_bucket ~sigma:2. ~rho:0.5 () in
  approx "burst" 2. (Arrival.burst a);
  approx "rate" 0.5 (Arrival.rate a);
  approx "eval" 4.5 (Arrival.eval a 5.)

let test_paper_source () =
  (* b I = min { I, sigma + rho I } (Eq. 4): peak-clipped near 0. *)
  let a = Arrival.paper_source ~sigma:1. ~rho:0.25 in
  approx "at 0" 0. (Arrival.eval a 0.);
  approx "clipped" 0.5 (Arrival.eval a 0.5);
  approx "crossing" (1. +. (0.25 *. (4. /. 3.))) (Arrival.eval a (4. /. 3.));
  approx "beyond" (1. +. (0.25 *. 10.)) (Arrival.eval a 10.)

let test_multi () =
  let a =
    Arrival.make
      (Arrival.Multi
         [
           Arrival.Token_bucket { sigma = 1.; rho = 1.; peak = infinity };
           Arrival.Token_bucket { sigma = 4.; rho = 0.25; peak = infinity };
         ])
  in
  approx "small t uses tight bucket" 2. (Arrival.eval a 1.);
  approx "large t uses slow bucket" 6.5 (Arrival.eval a 10.);
  approx "long-run rate" 0.25 (Arrival.rate a)

let test_validation () =
  let expect_invalid f =
    try
      ignore (f ());
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument _ -> ()
  in
  expect_invalid (fun () -> Arrival.token_bucket ~sigma:(-1.) ~rho:1. ());
  expect_invalid (fun () -> Arrival.token_bucket ~peak:0.5 ~sigma:1. ~rho:1. ());
  expect_invalid (fun () -> Arrival.make (Arrival.Multi []));
  expect_invalid (fun () ->
      Arrival.of_curve (rate_latency ~rate:1. ~latency:1.))

let test_shift () =
  let a = Arrival.token_bucket ~sigma:1. ~rho:0.5 () in
  let b = Arrival.shift a 3. in
  approx "shift burst" 2.5 (Arrival.burst b);
  approx "shift eval" (1. +. (0.5 *. 7.)) (Arrival.eval b 4.)

let test_cap_rate () =
  let a = Arrival.token_bucket ~sigma:4. ~rho:0.5 () in
  let b = Arrival.cap_rate a ~rate:1. in
  approx "capped near 0" 1. (Arrival.eval b 1.);
  approx "uncapped far" 8. (Arrival.eval b 8.)

let test_aggregate () =
  let a = Arrival.token_bucket ~sigma:1. ~rho:0.5 () in
  let b = Arrival.token_bucket ~sigma:2. ~rho:0.25 () in
  let s = Arrival.sum [ a; b ] in
  approx "sum burst" 3. (Arrival.burst s);
  approx "sum rate" 0.75 (Arrival.rate s);
  approx "empty sum" 0. (Arrival.eval (Arrival.sum []) 10.)

let test_token_params () =
  let sigma, rho, peak =
    Arrival.token_params (Arrival.paper_source ~sigma:1. ~rho:0.25)
  in
  approx "sigma" 1. sigma;
  approx "rho" 0.25 rho;
  approx "peak" 1. peak;
  let s2, r2, p2 =
    Arrival.token_params (Arrival.token_bucket ~sigma:2. ~rho:0.5 ())
  in
  approx "pure sigma" 2. s2;
  approx "pure rho" 0.5 r2;
  approx "pure peak" infinity p2

let test_rate_latency_service () =
  let b = Service.rate_latency ~rate:2. ~latency:3. in
  approx "before latency" 0. (Pwl.eval b 2.);
  approx "after latency" 4. (Pwl.eval b 5.);
  check_bool "valid service curve" true (Service.is_service_curve b)

let test_leftover () =
  (* (C t - cross)^+ with cross = 2 + 0.5 t at C = 1:
     zero until 4, then slope 0.5. *)
  let cross = Pwl.affine ~y0:2. ~slope:0.5 in
  let b = Service.leftover ~rate:1. ~cross in
  approx "still zero" 0. (Pwl.eval b 4.);
  approx "after" 1. (Pwl.eval b 6.);
  check_bool "valid service curve" true (Service.is_service_curve b)

let test_fifo_theta_family () =
  (* Token-bucket cross (sigma_c, rho_c) at theta = sigma_c / C gives
     exactly the rate-latency curve (C - rho_c, sigma_c / C). *)
  let cross = Pwl.affine ~y0:2. ~slope:0.25 in
  let b = Service.fifo_theta ~rate:1. ~cross ~theta:2. in
  let expect = rate_latency ~rate:0.75 ~latency:2. in
  check_bool "theta* member is rate-latency" true (Pwl.equal b expect);
  (* theta = 0 recovers the leftover curve. *)
  check_bool "theta=0 is leftover" true
    (Pwl.equal
       (Service.fifo_theta ~rate:1. ~cross ~theta:0.)
       (Service.leftover ~rate:1. ~cross))

let prop_fifo_theta_dominates_leftover =
  qtest "fifo_theta at theta* dominates leftover"
    QCheck2.Gen.(triple gen_burst gen_rate gen_time)
    (fun (sigma_c, rho_c, t) ->
      QCheck2.assume (rho_c < 0.95);
      let cross = Pwl.affine ~y0:sigma_c ~slope:rho_c in
      let lo = Service.leftover ~rate:1. ~cross in
      let th = Service.fifo_theta ~rate:1. ~cross ~theta:sigma_c in
      Pwl.eval th t >= Pwl.eval lo t -. 1e-6)

let prop_leftover_is_convex_service =
  qtest "leftover curves are valid service curves" gen_concave (fun cross ->
      Service.is_service_curve (Service.leftover ~rate:2. ~cross))

let test_rejects_decreasing_envelope () =
  let decreasing = Pwl.make [ (0., 5., -1.); (5., 0., 0.) ] in
  try
    ignore (Arrival.of_curve decreasing);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()


let suite =
  ( "curves",
    [
      test "token bucket" test_token_bucket;
      test "paper source (Eq. 4)" test_paper_source;
      test "multi leaky bucket" test_multi;
      test "validation" test_validation;
      test "rejects decreasing envelopes" test_rejects_decreasing_envelope;
      test "shift (output characterization)" test_shift;
      test "cap_rate" test_cap_rate;
      test "aggregation" test_aggregate;
      test "token_params extraction" test_token_params;
      test "rate-latency service" test_rate_latency_service;
      test "leftover service" test_leftover;
      test "fifo-theta family" test_fifo_theta_family;
      prop_fifo_theta_dominates_leftover;
      prop_leftover_is_convex_service;
    ] )

type t = { mutable n : int; mutable sum : float; mutable max : float }

let create () = { n = 0; sum = 0.; max = 0. }

let record t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  if x > t.max then t.max <- x

let count t = t.n
let max_value t = t.max
let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4g max=%.4g" t.n (mean t) t.max

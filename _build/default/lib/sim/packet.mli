(** Packets flowing through the simulator. *)

type t = {
  id : int;
  flow : int;
  size : float;
  created : float;             (** emission time at the source *)
  mutable remaining : int list; (** hops still to traverse *)
  mutable enqueued : float;    (** arrival time at the current server *)
  mutable local_deadline : float; (** EDF tag at the current server *)
}

val make : id:int -> flow:int -> size:float -> created:float -> route:int list -> t

type report = {
  flow : int;
  observed : float;
  bound : float;
  allowance : float;
  slack : float;
}

let store_and_forward_allowance ~packet_size net (f : Flow.t) =
  List.fold_left
    (fun acc sid -> acc +. (packet_size /. (Network.server net sid).Server.rate))
    0. f.route

let check ?(config = Sim.default_config) ~bounds net =
  let result = Sim.run ~config net in
  bounds
  |> List.map (fun (flow, bound) ->
         let observed = Sim.max_delay result flow in
         let allowance =
           store_and_forward_allowance ~packet_size:config.packet_size net
             (Network.flow net flow)
         in
         { flow; observed; bound; allowance;
           slack = bound +. allowance -. observed })
  |> List.sort (fun a b -> compare a.flow b.flow)

let violations reports =
  List.filter (fun r -> r.slack < -1e-6) reports

(* All-window conformance of a packetized timestamp series to a fluid
   envelope: N (s, t] <= env (t - s) + slack for every emission pair
   (packet granularity contributes up to one packet over the fluid
   curve, which callers pass as [slack]). *)
let conforms_to_envelope ~packet_size ~slack env times =
  let arr = Array.of_list times in
  let n = Array.length arr in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let amount = float_of_int (j - i + 1) *. packet_size in
      let window = arr.(j) -. arr.(i) in
      if amount > Pwl.eval env window +. slack +. 1e-9 then ok := false
    done
  done;
  !ok

let check_output_envelopes ?(config = Sim.default_config)
    ~envelope_at net =
  let config = { config with Sim.record_departures = true } in
  let result = Sim.run ~config net in
  Network.flows net
  |> List.concat_map (fun (f : Flow.t) ->
         List.filter_map
           (fun (s, s') ->
             match envelope_at ~flow:f.id ~server:s' with
             | env ->
                 let times = Sim.departures result ~flow:f.id ~server:s in
                 Some
                   ( f.id,
                     s,
                     conforms_to_envelope ~packet_size:config.Sim.packet_size
                       ~slack:config.Sim.packet_size env times )
             | exception _ -> None)
           (Flow.hop_pairs f))

let adversarial_max_delays ?(config = Sim.default_config) ?(tries = 8)
    ?(seed = 7) net =
  (* Greedy sources with randomized start phases: each try is one
     conforming scenario; the per-flow maximum over tries is a tighter
     lower estimate of the true worst case than a single aligned run. *)
  let rng = Random.State.make [| seed |] in
  let flows = Network.flows net in
  let best = Hashtbl.create 16 in
  List.iter (fun (f : Flow.t) -> Hashtbl.replace best f.id 0.) flows;
  for i = 0 to tries - 1 do
    let models =
      if i = 0 then []
      else
        List.map
          (fun (f : Flow.t) ->
            (f.id, Source.Greedy { start = Random.State.float rng 5. }))
          flows
    in
    let result = Sim.run ~config:{ config with Sim.models } net in
    List.iter
      (fun (f : Flow.t) ->
        let d = Sim.max_delay result f.id in
        if d > Hashtbl.find best f.id then Hashtbl.replace best f.id d)
      flows
  done;
  flows
  |> List.map (fun (f : Flow.t) -> (f.id, Hashtbl.find best f.id))
  |> List.sort compare

type model =
  | Greedy of { start : float }
  | Periodic of { start : float; interval : float }
  | On_off of { start : float; on : float; off : float }

(* Token-bucket state machine.  Tokens fill at [rho] up to [sigma];
   each packet consumes [l] tokens and respects the peak spacing
   [l / peak].  Consuming at emission time guarantees the packetized
   stream satisfies N (s, t] <= sigma + rho (t - s) for every window
   (the peak branch of the fluid envelope cannot be met by impulses;
   validation therefore analyzes against the peak-free envelope). *)
let emission_times model ~sigma ~rho ~peak ~packet_size:l ~horizon =
  if l <= 0. then invalid_arg "Source.emission_times: packet_size <= 0";
  if l > sigma +. 1e-12 && rho <= 0. then
    invalid_arg "Source.emission_times: packet larger than bucket, no refill";
  if l > sigma +. 1e-12 then
    invalid_arg "Source.emission_times: packet_size must not exceed sigma";
  let start =
    match model with
    | Greedy { start } | Periodic { start; _ } | On_off { start; _ } -> start
  in
  let min_spacing = if peak = infinity then 0. else l /. peak in
  (* Earliest time >= [t] that lies in an emission window. *)
  let gate t =
    match model with
    | Greedy _ -> t
    | Periodic _ -> t
    | On_off { start; on; off } ->
        if t < start then start
        else
          let cycle = on +. off in
          let phase = Float.rem (t -. start) cycle in
          if phase <= on then t else t +. (cycle -. phase)
  in
  let periodic_floor k =
    match model with
    | Periodic { start; interval } -> start +. (float_of_int (k - 1) *. interval)
    | Greedy _ | On_off _ -> neg_infinity
  in
  let rec loop acc k tokens t_state last_emit =
    let t_tokens =
      if tokens >= l then t_state
      else if rho <= 0. then infinity
      else t_state +. ((l -. tokens) /. rho)
    in
    let t_min =
      Float.max t_tokens
        (Float.max (last_emit +. min_spacing) (periodic_floor k))
    in
    let t_emit = gate t_min in
    if t_emit > horizon || t_emit = infinity then List.rev acc
    else
      let refilled = Float.min sigma (tokens +. (rho *. (t_emit -. t_state))) in
      loop (t_emit :: acc) (k + 1) (refilled -. l) t_emit t_emit
  in
  loop [] 1 sigma start (start -. min_spacing)

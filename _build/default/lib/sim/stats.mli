(** Online per-flow delay statistics. *)

type t

val create : unit -> t
val record : t -> float -> unit
val count : t -> int
val max_value : t -> float
(** [0.] when empty. *)

val mean : t -> float
(** [0.] when empty. *)

val pp : Format.formatter -> t -> unit

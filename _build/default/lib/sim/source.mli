(** Source emission models.

    Every model conforms to the flow's token-bucket constraint
    [(sigma, rho, peak)]; the interesting question for bound validation
    is how adversarial the conforming pattern is. *)

type model =
  | Greedy of { start : float }
      (** Send as early as the bucket allows from [start] on: the
          initial burst goes out back-to-back (at peak rate), then
          packets at the sustained rate.  This is the worst-case
          pattern for an isolated token bucket. *)
  | Periodic of { start : float; interval : float }
      (** One packet every [interval] from [start] on, additionally
          clipped to bucket conformance. *)
  | On_off of { start : float; on : float; off : float }
      (** Greedy during [on]-long windows separated by [off]-long
          silences (bucket refills during silences, re-creating
          bursts). *)

val emission_times :
  model ->
  sigma:float ->
  rho:float ->
  peak:float ->
  packet_size:float ->
  horizon:float ->
  float list
(** Times at which a packet of [packet_size] is emitted, up to
    [horizon].  The cumulative traffic is guaranteed to satisfy
    [sent (s, t] <= min (peak (t - s), sigma + rho (t - s))] for all
    windows — asserted in tests. *)

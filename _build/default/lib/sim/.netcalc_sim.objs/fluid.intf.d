lib/sim/fluid.mli: Flow Network Pwl

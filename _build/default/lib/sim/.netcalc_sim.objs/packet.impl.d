lib/sim/packet.ml:

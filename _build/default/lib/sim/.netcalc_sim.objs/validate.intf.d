lib/sim/validate.mli: Flow Network Pwl Sim

lib/sim/validate.ml: Array Flow Hashtbl List Network Pwl Random Server Sim Source

lib/sim/sim.mli: Network Source Stats

lib/sim/event_heap.ml: Array Float Stdlib

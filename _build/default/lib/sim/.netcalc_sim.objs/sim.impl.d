lib/sim/sim.ml: Arrival Discipline Event_heap Float Flow Hashtbl List Network Option Packet Queue Server Source Stats

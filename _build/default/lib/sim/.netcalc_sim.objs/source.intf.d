lib/sim/source.mli:

lib/sim/source.ml: Float List

lib/sim/packet.mli:

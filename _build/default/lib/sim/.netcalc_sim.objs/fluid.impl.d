lib/sim/fluid.ml: Discipline Float_ops Flow Hashtbl List Minplus Network Printf Pwl Random Server

(** Exact fluid execution of a feedforward FIFO network.

    Where {!Sim} pushes discrete packets, this module computes the
    {e exact trajectory} of one fluid scenario through the network,
    breakpoint-exactly, using the classical single-server identities:

    - departures: Reich's equation,
      [D t = min_{s <= t} (G s + C (t - s))] ({!Minplus.conv_with_rate});
    - FIFO bit ordering: the bit departing at [t] arrived at
      [H t = G^{-1}(D t)], so flow [i]'s cumulative output is
      [A_i (H t)].

    A scenario assigns each flow its actual cumulative arrival
    function at its source — by default the {e greedy realization} of
    its envelope (the arrival curve itself read as a cumulative
    function, i.e. full burst at time 0 then the sustained rate).
    Because the executed traffic conforms exactly to the fluid
    envelopes the analyses assume, any flow delay above an analytic
    bound is a soundness bug {e with no packetization allowance at
    all} — this is the sharpest validation oracle in the library.  It
    is also a tightness probe: maximizing the observed delay over
    scenario phases lower-bounds the true worst case.

    Restrictions: feedforward FIFO networks; every flow needs a
    strictly positive long-run rate (bit ordering inverts the
    aggregate arrival function). *)

type t

val run : ?inputs:(int * Pwl.t) list -> Network.t -> t
(** Execute one scenario.  [inputs] overrides the cumulative source
    arrival function of selected flows (e.g. phase-shifted greedy
    curves built with {!greedy}); all others use [greedy ~phase:0.].
    @raise Network.Cyclic on cyclic routing.
    @raise Invalid_argument on non-FIFO servers or zero-rate flows. *)

val greedy : ?phase:float -> Flow.t -> Pwl.t
(** The greedy realization of a flow's envelope, optionally delayed by
    [phase]: nothing before [phase], then the envelope replayed as a
    cumulative arrival function. *)

val input_at : t -> flow:int -> server:int -> Pwl.t
(** Cumulative arrivals of a flow at one of its hops. *)

val output_of : t -> flow:int -> Pwl.t
(** Cumulative departures of a flow from its last hop. *)

val flow_delay : t -> int -> float
(** Worst per-bit end-to-end delay of the flow in this scenario
    (supremum of departure time minus arrival time over all bits). *)

val server_backlog : t -> int -> float
(** Peak fluid backlog at a server in this scenario. *)

val phase_search :
  ?tries:int -> ?seed:int -> ?max_phase:float -> Network.t -> (int * float) list
(** Per-flow maximum of {!flow_delay} over randomized phase
    assignments (first try all-aligned).  A fluid, allowance-free
    analogue of {!Validate.adversarial_max_delays}. *)

type t = {
  id : int;
  flow : int;
  size : float;
  created : float;
  mutable remaining : int list;
  mutable enqueued : float;
  mutable local_deadline : float;
}

let make ~id ~flow ~size ~created ~route =
  {
    id;
    flow;
    size;
    created;
    remaining = route;
    enqueued = created;
    local_deadline = infinity;
  }

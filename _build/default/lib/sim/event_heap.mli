(** Binary min-heap of timestamped events.

    Ties are broken by insertion order, so simultaneous events are
    processed deterministically (FIFO among equal times). *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument on a NaN time. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val peek_time : 'a t -> float option

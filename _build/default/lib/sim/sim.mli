(** Packet-level discrete-event simulator for feedforward networks.

    Each server is an output-queued multiplexor of constant rate with
    one of the four disciplines ({!Discipline.t}); links are
    instantaneous.  Sources emit conforming packet streams
    ({!Source}); sinks record end-to-end delays per flow.

    The simulator exists to {e validate} the analytic bounds: for every
    scenario in the test suite and the benchmark harness, the observed
    maximum delay must stay below every method's bound.  It also gives
    a feel for how loose each bound is. *)

type config = {
  packet_size : float;
  horizon : float;          (** stop emitting at this time; the run
                                continues until all packets drain *)
  models : (int * Source.model) list;
      (** per-flow emission model; flows not listed use
          [Greedy { start = 0. }] *)
  record_departures : bool;
      (** keep per-(flow, server) departure timestamps, enabling
          {!departures} (off by default: memory is proportional to
          packets x hops) *)
  buffers : (int * float) list;
      (** per-server buffer capacities (bytes, including the packet in
          service); unlisted servers are unbuffered (infinite).
          Arriving packets that would overflow are dropped — sizing
          every buffer at the analytic backlog bound must yield zero
          drops (tested). *)
}

val default_config : config
(** [packet_size = 0.25], [horizon = 200.], all-greedy, no departure
    recording. *)

type result

val run : ?config:config -> Network.t -> result
(** @raise Invalid_argument when a flow's packet size exceeds its
    burst (the conforming emitter needs [packet_size <= sigma]). *)

val flow_stats : result -> int -> Stats.t
(** End-to-end delay statistics of a flow.  @raise Not_found for an
    unknown id. *)

val max_delay : result -> int -> float
(** [Stats.max_value] of the flow (0. if it emitted no packets). *)

val server_max_backlog : result -> int -> float
(** Peak backlog (bytes) observed at a server. *)

val server_stats : result -> int -> Stats.t
(** Single-hop delay statistics at a server (arrival at the server to
    departure from it).  @raise Not_found for an unknown id. *)

val server_max_delay : result -> int -> float
(** [Stats.max_value] of the per-hop delays at a server. *)

val packets_delivered : result -> int

val drops : result -> int -> int
(** Packets dropped at a server due to buffer overflow. *)

val total_drops : result -> int

val departures : result -> flow:int -> server:int -> float list
(** Departure times of a flow's packets from a server, in time order;
    empty unless the run had [record_departures = true].  Used to check
    the analytic {e output envelopes} against observed traffic. *)

(** Bound-vs-simulation validation harness.

    Runs a greedy (worst-case-seeking) simulation of a network and
    compares the observed maximum end-to-end delays against analytic
    bounds.  Two systematic gaps between the fluid analysis and the
    packet simulator are accounted for:

    - packetized sources cannot meet the fluid {e peak-rate} envelope
      (a packet is an impulse), so validation scenarios must be built
      with [peak = infinity] sources — the conforming emitter then
      guarantees the simulated traffic satisfies exactly the
      [(sigma, rho)] envelopes the analyses assume;
    - the simulator is {e store-and-forward}: a packet reaches the next
      hop only once fully transmitted, adding up to [L / C_k] per hop
      over the fluid (cut-through) delay.  The classical packetization
      correction [sum_k L / C_k] along the route (Le Boudec-Thiran
      §1.7, packetizer elements) is therefore granted as an allowance.

    With those two corrections, {e any} remaining violation is a
    soundness bug in the analysis. *)

type report = {
  flow : int;
  observed : float;    (** max simulated end-to-end delay *)
  bound : float;       (** analytic (fluid) bound *)
  allowance : float;   (** store-and-forward correction for the route *)
  slack : float;       (** bound + allowance - observed; negative = violation *)
}

val store_and_forward_allowance :
  packet_size:float -> Network.t -> Flow.t -> float

val check :
  ?config:Sim.config ->
  bounds:(int * float) list ->
  Network.t ->
  report list
(** One report per flow present in [bounds], sorted by flow id. *)

val violations : report list -> report list
(** Reports with negative [slack] (beyond float tolerance). *)

val conforms_to_envelope :
  packet_size:float -> slack:float -> Pwl.t -> float list -> bool
(** All-window check that a packet timestamp series respects a fluid
    envelope up to [slack] (packets are impulses, so one packet of
    grace is the exact granularity correction). *)

val check_output_envelopes :
  ?config:Sim.config ->
  envelope_at:(flow:int -> server:int -> Pwl.t) ->
  Network.t ->
  (int * int * bool) list
(** Validate the {e envelope propagation} of an analysis (Step 3.2 of
    the paper's Fig. 2) directly: run a simulation recording per-hop
    departures and check, for every flow and every consecutive hop
    pair [(s, s')], that the traffic departing [s] conforms to the
    envelope the analysis claims at the input of [s'].  Returns
    [(flow, server, ok)] triples; any [false] is a propagation
    soundness bug. *)

val adversarial_max_delays :
  ?config:Sim.config -> ?tries:int -> ?seed:int -> Network.t ->
  (int * float) list
(** Per-flow maximum observed delay over several greedy scenarios with
    randomized source start phases (the first try is the all-aligned
    one).  A tighter lower estimate of the true worst case than a
    single run; useful for reporting how loose a bound is. *)

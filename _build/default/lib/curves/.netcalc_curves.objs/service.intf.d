lib/curves/service.mli: Pwl

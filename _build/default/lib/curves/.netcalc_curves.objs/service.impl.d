lib/curves/service.ml: Pwl

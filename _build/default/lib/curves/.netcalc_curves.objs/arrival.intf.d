lib/curves/arrival.mli: Format Pwl

lib/curves/arrival.ml: List Pwl

(** Arrival curves (traffic constraint functions, paper Def. 2).

    A flow with arrival function [f] conforms to arrival curve [b] when
    [f (t + I) - f t <= b I] for all [t, I >= 0] (Eq. (3)).  The paper's
    sources are token buckets with unit peak rate (Eq. (4)):
    [b I = min { I, sigma + rho I }].

    This module keeps a symbolic description alongside the
    piecewise-linear curve so that simulators and closed-form formulas
    can recover the parameters. *)

type spec =
  | Token_bucket of { sigma : float; rho : float; peak : float }
      (** [min { peak * I, sigma + rho * I }]; [peak = infinity] gives
          the classic (sigma, rho) curve.  Requires [0 <= rho],
          [0 <= sigma], [rho <= peak]. *)
  | Multi of spec list
      (** Pointwise minimum of several constraints (multi-leaky-bucket).
          Must be nonempty. *)
  | General of Pwl.t
      (** An arbitrary concave envelope (e.g. the output of an upstream
          analysis). *)

type t

val make : spec -> t
(** Build and validate; @raise Invalid_argument on bad parameters or a
    non-concave [General] curve. *)

val token_bucket : ?peak:float -> sigma:float -> rho:float -> unit -> t
(** Convenience for [make (Token_bucket ...)]; [peak] defaults to
    [infinity]. *)

val paper_source : sigma:float -> rho:float -> t
(** The source of the paper's evaluation: token bucket with peak rate 1
    (the normalized link speed), [b I = min { I, sigma + rho I }]. *)

val of_curve : Pwl.t -> t
(** [make (General c)]. *)

val curve : t -> Pwl.t
(** The envelope as a piecewise-linear function. *)

val spec : t -> spec

val rate : t -> float
(** Long-run rate [lim b(I)/I] — the final slope of the curve. *)

val burst : t -> float
(** [b 0+], i.e. {!Pwl.value_at_zero} of the curve. *)

val eval : t -> float -> float

val token_params : t -> float * float * float
(** [(sigma, rho, peak)] of the best token-bucket description of the
    envelope: [rho] is the long-run rate, [sigma] the intercept of the
    final affine piece (the effective burst once the peak constraint
    has played out), and [peak] the initial slope ([infinity] when the
    curve jumps at 0).  Exact for token-bucket specs; used by the
    simulator's conforming emitters. *)

val add : t -> t -> t
(** Envelope of the aggregate of two flows (pointwise sum). *)

val sum : t list -> t
(** Aggregate of a list; the zero envelope for [\[\]]. *)

val shift : t -> float -> t
(** [shift a d] is the envelope of the flow after it suffered at most
    [d] of delay: [fun I -> eval a (I + d)] (Cruz's output
    characterization for FIFO-per-aggregate servers).  The symbolic spec
    degrades to [General]. *)

val cap_rate : t -> rate:float -> t
(** [cap_rate a ~rate] adds the constraint that the flow (or aggregate)
    has just traversed a link of speed [rate]: pointwise minimum with
    [rate * I].  Used by the link-capacity sharpening ablation. *)

val pp : Format.formatter -> t -> unit

(** Service curves (paper Sec. 1.2).

    A server offers service curve [beta] to some traffic when, for every
    [t], the output [W t] satisfies [W t >= (F (x) beta) t] for input
    [F].  All service curves in this library are convex and
    nondecreasing, so they compose under min-plus convolution via the
    exact slope-sort rule (see {!Minplus.conv}). *)

val constant_rate : float -> Pwl.t
(** [lambda_C : t -> C t], the exact service curve of a work-conserving
    constant-rate server for its aggregate input. *)

val rate_latency : rate:float -> latency:float -> Pwl.t
(** [beta_{R,T} : t -> R (t - T)^+], the guaranteed-rate abstraction
    (GPS/WFQ-style servers). *)

val leftover : rate:float -> cross:Pwl.t -> Pwl.t
(** [leftover ~rate ~cross = (C t - cross t)^+]: the service available
    to a tagged flow at a work-conserving server of rate [C] whose
    competing (cross) traffic is bounded by the concave envelope
    [cross].  Valid for {e any} work-conserving discipline, including
    FIFO; this is the induced FIFO service curve used by Algorithm
    Service Curve (see DESIGN.md §3.2).  The result is convex. *)

val fifo_theta : rate:float -> cross:Pwl.t -> theta:float -> Pwl.t
(** The FIFO service-curve family (Cruz 1995 / Le Boudec):
    [beta_theta t = (C t - cross (t - theta))^+ . 1{t > theta}] is a
    service curve for the tagged flow at a FIFO server of rate [C] for
    every [theta >= 0].  [theta = 0] recovers {!leftover}.  Larger
    [theta] trades initial latency for a faster tail — the basis of the
    the Fifo_theta extension.

    The exact family member is not convex in general (it can jump at
    [theta]); we return its convex, right-continuous lower bound
    [(C t - cross (t - theta))^+] truncated to 0 on [\[0, theta\]],
    which is still a valid (weaker or equal) service curve. *)

val is_service_curve : Pwl.t -> bool
(** Sanity predicate used in tests: nondecreasing, starts at 0, convex
    shape. *)

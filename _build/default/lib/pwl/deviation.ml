
let hdev ~alpha ~beta =
  let open Float_ops in
  if Pwl.final_slope beta <~ Pwl.final_slope alpha then infinity
  else
    let beta_inv = Pwl.pseudo_inverse beta in
    let departure = Pwl.compose ~outer:beta_inv ~inner:alpha in
    let identity = Pwl.affine ~y0:0. ~slope:1. in
    Float_ops.positive_part (Pwl.sup_diff departure identity)

let vdev ~alpha ~beta = Float_ops.positive_part (Pwl.sup_diff alpha beta)

let delay_fifo_aggregate ~agg ~rate =
  if rate <= 0. then invalid_arg "Deviation.delay_fifo_aggregate: rate <= 0";
  if not (Minplus.stable ~agg ~rate) then infinity
  else
    let service = Pwl.affine ~y0:0. ~slope:rate in
    Float_ops.positive_part (Pwl.sup_diff agg service) /. rate

lib/pwl/minplus.ml: Float Float_ops List Pwl

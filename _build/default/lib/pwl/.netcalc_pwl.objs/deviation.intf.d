lib/pwl/deviation.mli: Pwl

lib/pwl/minplus.mli: Pwl

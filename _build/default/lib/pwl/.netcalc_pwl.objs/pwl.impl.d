lib/pwl/pwl.ml: Array Float Float_ops Format List Printf

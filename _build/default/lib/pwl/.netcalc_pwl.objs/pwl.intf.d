lib/pwl/pwl.mli: Format

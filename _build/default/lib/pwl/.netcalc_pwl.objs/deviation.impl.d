lib/pwl/deviation.ml: Float_ops Minplus Pwl

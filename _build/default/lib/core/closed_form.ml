let check n sigma rho =
  if n < 2 then invalid_arg "Closed_form: n < 2";
  if sigma <= 0. || rho < 0. then invalid_arg "Closed_form: bad source"

let decomposed_locals ~n ~sigma ~rho =
  check n sigma rho;
  if 4. *. rho >= 1. then List.init n (fun _ -> infinity)
  else begin
    (* E_0 = 3 sigma; E_k = 4 sigma + rho (P_(k-1) + E_(k-1)). *)
    let locals = Array.make n 0. in
    locals.(0) <- 3. *. sigma;
    let prefix = ref locals.(0) in
    for k = 1 to n - 1 do
      locals.(k) <- (4. *. sigma) +. (rho *. (!prefix +. locals.(k - 1)));
      prefix := !prefix +. locals.(k)
    done;
    Array.to_list locals
  end

let decomposed ~n ~sigma ~rho =
  List.fold_left ( +. ) 0. (decomposed_locals ~n ~sigma ~rho)

let service_curve ~n ~sigma ~rho =
  check n sigma rho;
  if 4. *. rho >= 1. || 3. *. rho >= 1. then infinity
  else begin
    let locals = Array.of_list (decomposed_locals ~n ~sigma ~rho) in
    (* Port 0: cross = A_0 + B_0 (fresh).  Port k >= 1: cross =
       B_(k-1) with burst sigma + rho E_(k-1), plus fresh A_k, B_k. *)
    let latency_0 = 2. *. sigma /. (1. -. (2. *. rho)) in
    let latencies =
      List.init (n - 1) (fun i ->
          let k = i + 1 in
          ((3. *. sigma) +. (rho *. locals.(k - 1))) /. (1. -. (3. *. rho)))
    in
    latency_0
    +. List.fold_left ( +. ) 0. latencies
    +. (sigma /. (1. -. (3. *. rho)))
  end

type outcome = {
  admitted : Flow.t list;
  rejected : Flow.t list;
  admitted_rate : float;
}

let deadline_met bounds flows =
  List.for_all
    (fun (f : Flow.t) ->
      match f.deadline with
      | None -> true
      | Some dl -> (
          match List.assoc_opt f.id bounds with
          | Some b -> Float.is_finite b && b <= dl +. Float_ops.eps
          | None -> false))
    flows

let bounds_for ?options ?strategy ~servers flows method_ =
  let net = Network.make ~servers ~flows in
  match (method_ : Engine.method_) with
  | Engine.Decomposed -> Decomposed.all_flow_delays (Decomposed.analyze ?options net)
  | Engine.Service_curve ->
      Service_curve_method.all_flow_delays
        (Service_curve_method.analyze ?options net)
  | Engine.Integrated ->
      Integrated.all_flow_delays (Integrated.analyze ?options ?strategy net)
  | Engine.Integrated_sp ->
      Integrated_sp.all_flow_delays
        (Integrated_sp.analyze ?options ?strategy net)
  | Engine.Fifo_theta ->
      Fifo_theta.all_flow_delays (Fifo_theta.analyze ?options net)

let run ?options ?strategy ~servers ~base ~candidates ~method_ () =
  let try_with flows =
    match bounds_for ?options ?strategy ~servers flows method_ with
    | bounds -> deadline_met bounds flows
    | exception Network.Cyclic -> false
  in
  let step (admitted, rejected) (cand : Flow.t) =
    match cand.deadline with
    | None -> (admitted, cand :: rejected)
    | Some _ ->
        let flows = base @ List.rev (cand :: admitted) in
        if try_with flows then (cand :: admitted, rejected)
        else (admitted, cand :: rejected)
  in
  let admitted_rev, rejected_rev =
    List.fold_left step ([], []) candidates
  in
  let admitted = List.rev admitted_rev in
  {
    admitted;
    rejected = List.rev rejected_rev;
    admitted_rate = Propagation.total_rate admitted;
  }

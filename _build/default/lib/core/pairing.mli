(** Partitioning a feedforward network into subnetworks of at most two
    servers (Algorithm Integrated, Steps 1-2 of paper Fig. 2).

    A pair [(u, v)] is admissible when some flow traverses [u] then [v]
    consecutively and contracting the pair keeps the subnetwork graph
    acyclic (otherwise the topological traversal of Step 2 would be
    impossible — this happens exactly when an alternative path
    [u ~> v] exists through other servers). *)

type subnet = Single of int | Pair of int * int

type t = subnet list
(** Covers every server exactly once, listed in a valid topological
    order of the contracted graph. *)

type strategy =
  | Along_route of int
      (** Pair consecutive servers of the given flow's route (the
          paper's choice: conn0's route in the tandem); remaining
          servers become singletons. *)
  | Greedy
      (** Scan servers in topological order and pair each unpaired
          server with the direct successor sharing the most transit
          flows, when admissible. *)
  | Singletons
      (** No pairing: Algorithm Integrated degenerates to Algorithm
          Decomposed (the ablation baseline). *)

val build : Network.t -> strategy -> t
(** @raise Network.Cyclic on non-feedforward input.
    @raise Invalid_argument when [Along_route] names an unknown flow. *)

val validate : Network.t -> t -> unit
(** Check cover, pair admissibility and topological order of an
    externally supplied pairing.  @raise Invalid_argument on
    violation. *)

val servers_of : subnet -> int list
val pp : Format.formatter -> t -> unit

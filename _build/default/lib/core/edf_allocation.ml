type t = {
  net : Network.t;
  locals : (int * int, float) Hashtbl.t;
  verified : (int, bool) Hashtbl.t; (* server -> final feasibility *)
}

let require_edf net =
  List.iter
    (fun (s : Server.t) ->
      if s.discipline <> Discipline.Edf then
        invalid_arg "Edf_allocation: every server must be EDF")
    (Network.servers net);
  List.iter
    (fun (f : Flow.t) ->
      if f.deadline = None then
        invalid_arg
          (Printf.sprintf "Edf_allocation: flow %s has no deadline" f.name))
    (Network.flows net)

let deadline (f : Flow.t) = Option.get f.deadline

(* Envelope at a hop, or None when a diverged upstream assignment never
   produced one (treated as unbounded: the server cannot verify). *)
let env_opt envs ~flow ~server =
  match Propagation.get envs ~flow ~server with
  | env -> Some env
  | exception Not_found -> None

let equal_share f = deadline f /. float_of_int (List.length f.route)

(* Minimal local deadline for one flow at one server, holding the other
   flows' assignments fixed (feasibility is monotone in the deadline). *)
let minimal_local ~tol ~rate ~own_env ~others =
  let feasible d = Edf.feasible ~rate ((own_env, d) :: others) in
  let rec widen hi =
    if feasible hi then hi else if hi > 1e6 then infinity else widen (2. *. hi)
  in
  let hi = widen 1. in
  if hi = infinity then infinity
  else
    let rec bisect lo hi =
      if hi -. lo <= tol then hi
      else
        let mid = (lo +. hi) /. 2. in
        if feasible mid then bisect lo mid else bisect mid hi
    in
    bisect 0. hi

(* Propagate envelopes under a given assignment (sweep in topological
   order); infinite local deadlines poison nothing here — downstream
   verification fails anyway. *)
let propagate net order locals =
  let envs = Propagation.create net in
  List.iter
    (fun sid ->
      List.iter
        (fun (f : Flow.t) ->
          match env_opt envs ~flow:f.id ~server:sid with
          | Some env ->
              let d = Hashtbl.find locals (f.id, sid) in
              if Float.is_finite d then
                Propagation.set_next envs f ~after:sid (Pwl.shift_left env d)
          | None -> ())
        (Network.flows_at net sid))
    order;
  envs

let verify net order locals =
  let envs = propagate net order locals in
  let verified = Hashtbl.create 16 in
  List.iter
    (fun sid ->
      let rate = (Network.server net sid).Server.rate in
      let present = Network.flows_at net sid in
      let assignment =
        List.map
          (fun (f : Flow.t) ->
            ( env_opt envs ~flow:f.id ~server:sid,
              Hashtbl.find locals (f.id, sid) ))
          present
      in
      let ok =
        present = []
        || (List.for_all
              (fun (env, d) -> env <> None && Float.is_finite d)
              assignment
           && Edf.feasible ~rate
                (List.map
                   (fun (env, d) -> (Option.get env, d))
                   assignment))
      in
      Hashtbl.replace verified sid ok)
    order;
  verified

let all_ok net verified locals =
  List.for_all
    (fun (f : Flow.t) ->
      let bound =
        List.fold_left
          (fun acc sid -> acc +. Hashtbl.find locals (f.id, sid))
          0. f.route
      in
      Float.is_finite bound
      && bound <= deadline f +. Float_ops.eps
      && List.for_all (fun sid -> Hashtbl.find verified sid) f.route)
    (Network.flows net)

let allocate ?(max_iter = 50) ?(tol = 1e-6) net =
  require_edf net;
  let order = Network.topological_order net in
  let flows = Network.flows net in
  (* Start from the equal split. *)
  let equal = Hashtbl.create 64 in
  List.iter
    (fun (f : Flow.t) ->
      List.iter
        (fun sid -> Hashtbl.replace equal (f.id, sid) (equal_share f))
        f.route)
    flows;
  let locals = Hashtbl.copy equal in
  (* Iterate: per-flow minimal locals (others fixed), then hand each
     flow's slack back proportionally to its per-hop need. *)
  for _ = 1 to max_iter do
    let envs = propagate net order locals in
    let minimal = Hashtbl.create 64 in
    List.iter
      (fun sid ->
        let rate = (Network.server net sid).Server.rate in
        let present = Network.flows_at net sid in
        List.iter
          (fun (f : Flow.t) ->
            match env_opt envs ~flow:f.id ~server:sid with
            | None -> Hashtbl.replace minimal (f.id, sid) infinity
            | Some own_env ->
                let others =
                  (* flows whose assignment diverged (infinite local or
                     missing envelope) contribute no demand here; the
                     final verification pass rejects such states *)
                  List.filter_map
                    (fun (g : Flow.t) ->
                      if g.id = f.id then None
                      else
                        let d = Hashtbl.find locals (g.id, sid) in
                        match env_opt envs ~flow:g.id ~server:sid with
                        | Some env when Float.is_finite d -> Some (env, d)
                        | _ -> None)
                    present
                in
                Hashtbl.replace minimal (f.id, sid)
                  (minimal_local ~tol ~rate ~own_env ~others))
          present)
      order;
    List.iter
      (fun (f : Flow.t) ->
        let mins = List.map (fun sid -> Hashtbl.find minimal (f.id, sid)) f.route in
        let total = List.fold_left ( +. ) 0. mins in
        if Float.is_finite total && total > 0. then begin
          let slack = Float.max 0. (deadline f -. total) in
          List.iter2
            (fun sid m ->
              Hashtbl.replace locals (f.id, sid)
                (m +. (slack *. m /. total)))
            f.route mins
        end
        else if Float.is_finite total then
          (* all-zero minimal needs: fall back to the equal split *)
          List.iter
            (fun sid -> Hashtbl.replace locals (f.id, sid) (equal_share f))
            f.route
        else
          List.iter
            (fun sid ->
              Hashtbl.replace locals (f.id, sid)
                (Hashtbl.find minimal (f.id, sid)))
            f.route)
      flows
  done;
  let verified = verify net order locals in
  if all_ok net verified locals then { net; locals; verified }
  else begin
    (* Never worse than the naive policy: keep the equal split when it
       verifies and the adaptive allocation does not. *)
    let everified = verify net order equal in
    if all_ok net everified equal then
      { net; locals = equal; verified = everified }
    else { net; locals; verified }
  end

let local_deadline t ~flow ~server = Hashtbl.find t.locals (flow, server)

let flow_bound t id =
  let f = Network.flow t.net id in
  List.fold_left
    (fun acc sid -> acc +. local_deadline t ~flow:id ~server:sid)
    0. f.route

let flow_feasible t id =
  let f = Network.flow t.net id in
  let bound = flow_bound t id in
  Float.is_finite bound
  && bound <= deadline f +. Float_ops.eps
  && List.for_all (fun sid -> Hashtbl.find t.verified sid) f.route

let all_feasible t =
  List.for_all (fun (f : Flow.t) -> flow_feasible t f.id) (Network.flows t.net)

let equal_split_feasible net id =
  let f = Network.flow net id in
  match Decomposed.flow_delay (Decomposed.analyze net) id with
  | d -> Float.is_finite d && d <= deadline f +. Float_ops.eps
  | exception Invalid_argument _ -> false

(** Algorithm Integrated — the paper's contribution (Fig. 2).

    The feedforward network is partitioned into subnetworks of at most
    two FIFO servers ({!Pairing}); subnetworks are visited in
    topological order; each is analyzed jointly ({!Pair_analysis}),
    producing the delay its flows suffer {e across the whole
    subnetwork} and their output envelopes; end-to-end bounds are the
    sums of per-subnetwork delays along each route.

    Because a pair is analyzed jointly, a burst is only "paid" once per
    pair instead of once per server, and the transit traffic between
    the paired servers is bounded by the physical link rate — the two
    effects that make this method dominate Algorithm Decomposed.

    Only FIFO servers are supported (the paper derives the closed-form
    pair bound for FIFO; extending to static priority is listed as
    future work — see {!Static_priority} for the single-server SP
    machinery). *)

type t

val analyze :
  ?options:Options.t -> ?strategy:Pairing.strategy -> Network.t -> t
(** [strategy] defaults to [Pairing.Greedy].
    @raise Network.Cyclic on non-feedforward routing.
    @raise Invalid_argument when the network has a non-FIFO server. *)

val analyze_with_pairing : ?options:Options.t -> Network.t -> Pairing.t -> t
(** Use an externally supplied (validated) pairing. *)

val network : t -> Network.t
val pairing : t -> Pairing.t

val flow_delay : t -> int -> float
(** End-to-end bound for a flow. *)

val all_flow_delays : t -> (int * float) list

val subnet_delay : t -> flow:int -> subnet:Pairing.subnet -> float
(** The delay contribution a flow picks up in one subnetwork of the
    pairing.  @raise Not_found if the flow does not cross it. *)

val envelope_at : t -> flow:int -> server:int -> Pwl.t
(** Input envelope of a flow at a hop as propagated by this analysis. *)

lib/core/integrated_sp.mli: Network Options Pairing Pwl

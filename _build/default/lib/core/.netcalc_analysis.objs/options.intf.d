lib/core/options.mli:

lib/core/decomposed.mli: Network Options Pwl

lib/core/engine.ml: Decomposed Fifo_theta Float Integrated Integrated_sp Service_curve_method

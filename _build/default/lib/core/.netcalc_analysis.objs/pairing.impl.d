lib/core/pairing.ml: Array Flow Format Hashtbl List Network Printf Server

lib/core/fifo_theta.mli: Network Options

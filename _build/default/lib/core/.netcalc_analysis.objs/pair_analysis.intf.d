lib/core/pair_analysis.mli: Pwl

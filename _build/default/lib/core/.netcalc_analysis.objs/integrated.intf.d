lib/core/integrated.mli: Network Options Pairing Pwl

lib/core/decomposed.ml: Fifo Float Flow Hashtbl List Local_bounds Network Options Propagation Pwl Server

lib/core/local_bounds.ml: Discipline Edf Fifo Flow Gps List Network Options Printf Propagation Pwl Server Static_priority

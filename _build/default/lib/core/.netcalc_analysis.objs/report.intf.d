lib/core/report.mli: Decomposed Integrated Network Options Pairing

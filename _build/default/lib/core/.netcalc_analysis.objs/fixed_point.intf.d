lib/core/fixed_point.mli: Network Options

lib/core/propagation.ml: Flow Hashtbl List Network Options Pwl Server

lib/core/engine.mli: Network Options Pairing

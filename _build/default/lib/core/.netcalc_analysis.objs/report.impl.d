lib/core/report.ml: Buffer Decomposed Discipline Float Flow Format Integrated List Network Pairing Server Service_curve_method String Table

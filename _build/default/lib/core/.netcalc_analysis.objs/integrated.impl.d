lib/core/integrated.ml: Array Discipline Fifo Flow Hashtbl List Network Options Pair_analysis Pairing Printf Propagation Pwl Server

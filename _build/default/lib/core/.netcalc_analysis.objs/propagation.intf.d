lib/core/propagation.mli: Flow Network Options Pwl

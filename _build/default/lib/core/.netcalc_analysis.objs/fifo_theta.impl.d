lib/core/fifo_theta.ml: Array Decomposed Deviation Flow List Minplus Network Pwl Server Service

lib/core/edf_allocation.mli: Network

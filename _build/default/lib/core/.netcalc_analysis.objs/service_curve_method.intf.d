lib/core/service_curve_method.mli: Network Options Pwl

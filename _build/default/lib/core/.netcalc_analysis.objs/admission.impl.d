lib/core/admission.ml: Decomposed Engine Fifo_theta Float Float_ops Flow Integrated Integrated_sp List Network Propagation Service_curve_method

lib/core/options.ml:

lib/core/closed_form.ml: Array List

lib/core/service_curve_method.ml: Decomposed Deviation Discipline Fifo Flow Gps List Minplus Network Pwl Static_priority

lib/core/pairing.mli: Format Network

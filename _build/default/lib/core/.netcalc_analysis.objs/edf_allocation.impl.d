lib/core/edf_allocation.ml: Decomposed Discipline Edf Float Float_ops Flow Hashtbl List Network Option Printf Propagation Pwl Server

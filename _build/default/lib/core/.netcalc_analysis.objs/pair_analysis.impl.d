lib/core/pair_analysis.ml: Deviation Fifo Float Float_ops List Printf Pwl Service

lib/core/fixed_point.ml: Float Flow Hashtbl List Local_bounds Network Options Propagation Pwl Server

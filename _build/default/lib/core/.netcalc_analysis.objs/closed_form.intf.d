lib/core/closed_form.mli:

lib/core/integrated_sp.ml: Array Discipline Flow Hashtbl List Network Options Pair_analysis Pairing Printf Propagation Pwl Server Static_priority

lib/core/local_bounds.mli: Flow Network Options Propagation

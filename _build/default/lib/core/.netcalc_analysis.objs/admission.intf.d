lib/core/admission.mli: Engine Flow Options Pairing Server

(** Options shared by the analysis engines. *)

type t = {
  link_cap : bool;
      (** When true, the aggregate of flows arriving at a server from
          the same upstream server is additionally capped by that
          upstream link's rate ([C * I] over any window) — the
          sharpening ablation of DESIGN.md §3.3.  Off by default: the
          classic algorithms of the paper do not use it. *)
  sp_blocking : float;
      (** Non-preemption blocking term for static-priority servers:
          the size of the largest lower-priority packet that can be in
          service when an urgent packet arrives.  [0.] (default)
          models the fluid preemptive server; set it to the packet
          size when validating against the packetized simulator. *)
}

val default : t
(** [{ link_cap = false; sp_blocking = 0. }] *)

val sharpened : t
(** [default] with [link_cap = true]. *)

val with_blocking : float -> t -> t

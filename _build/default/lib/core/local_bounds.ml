let at_server ~options net envs ~server:sid =
  let server = Network.server net sid in
  let present = Network.flows_at net sid in
  let env (f : Flow.t) = Propagation.get envs ~flow:f.id ~server:sid in
  let rate = server.Server.rate in
  match server.Server.discipline with
  | Discipline.Fifo ->
      let agg =
        Propagation.aggregate_input ~options net envs ~server:sid
          ~flows:present
      in
      let d = Fifo.local_delay ~rate ~agg in
      List.map (fun f -> (f, d)) present
  | Discipline.Static_priority ->
      List.map
        (fun (f : Flow.t) ->
          let of_class pred =
            Pwl.sum
              (List.filter_map
                 (fun (g : Flow.t) ->
                   if pred g.priority then Some (env g) else None)
                 present)
          in
          let higher = of_class (fun p -> p < f.priority) in
          let own = of_class (fun p -> p = f.priority) in
          ( f,
            Static_priority.local_delay ~rate ~higher ~own
              ~blocking:options.Options.sp_blocking () ))
        present
  | Discipline.Edf ->
      let local_deadline (f : Flow.t) =
        match f.deadline with
        | Some d -> d /. float_of_int (List.length f.route)
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Local_bounds: flow %s has no deadline but crosses EDF \
                  server %s"
                 f.name server.Server.name)
      in
      let pairs = List.map (fun f -> (env f, local_deadline f)) present in
      List.map
        (fun f -> (f, Edf.local_delay ~rate pairs ~deadline:(local_deadline f)))
        present
  | Discipline.Gps ->
      let total_weight =
        List.fold_left (fun acc (f : Flow.t) -> acc +. f.weight) 0. present
      in
      List.map
        (fun (f : Flow.t) ->
          ( f,
            Gps.local_delay ~rate ~weight:f.weight ~total_weight
              ~alpha:(env f) () ))
        present

(** Fixed-point analysis for networks with routing cycles.

    The paper restricts Algorithm Integrated to cycle-free
    configurations because, without traffic regulation, circular flow
    dependencies feed local delays back into themselves (Sec. 5, citing
    the authors' stability work [22, 23]).  This module implements the
    classical answer — Cruz's time-stopping / fixed-point method — as a
    companion engine:

    guess every flow's envelope at every hop (seeded with the source
    envelope), compute all local delays from the guess, re-derive the
    envelopes (each hop inflates by the upstream local delay), and
    iterate.  The operator is monotone in the envelopes, so from the
    optimistic seed the iterates increase; if they converge the limit
    is a valid set of envelopes and the summed local delays are sound
    end-to-end bounds, and if the bursts blow up the network is
    reported (possibly) unstable — which genuinely happens in rings
    above a load threshold even when every server is individually
    underloaded.

    On a feedforward network the iteration converges after at most
    (longest path) rounds to exactly the {!Decomposed} result. *)

type t

val analyze :
  ?options:Options.t -> ?max_iter:int -> ?tol:float -> Network.t -> t
(** Jacobi iteration until the envelopes move less than [tol]
    (sup-norm, default [1e-9]) or [max_iter] (default 200) rounds
    elapse.  No feedforward requirement. *)

val converged : t -> bool
val iterations : t -> int

val flow_delay : t -> int -> float
(** End-to-end bound; [infinity] when the iteration did not converge
    (or a server is outright unstable). *)

val all_flow_delays : t -> (int * float) list
val local_delay : t -> flow:int -> server:int -> float

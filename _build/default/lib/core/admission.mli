(** Connection admission control — the application the paper motivates
    its analysis with (Sec. 1: "admission control mechanisms that in
    turn use end-to-end delay computation algorithms").

    Candidate connections carry end-to-end deadlines; a connection is
    admitted when, with it added, the chosen analysis method still
    proves {e every} admitted connection's bound below its deadline.
    A tighter analysis admits more connections on the same plant —
    the utilization benefit of Algorithm Integrated. *)

type outcome = {
  admitted : Flow.t list;      (** in the order they were accepted *)
  rejected : Flow.t list;
  admitted_rate : float;       (** sum of admitted long-run rates *)
}

val run :
  ?options:Options.t ->
  ?strategy:Pairing.strategy ->
  servers:Server.t list ->
  base:Flow.t list ->
  candidates:Flow.t list ->
  method_:Engine.method_ ->
  unit ->
  outcome
(** Sequentially test each candidate (first-come-first-served, no
    backtracking, as an online CAC would).  [base] flows are part of
    the network but have no deadline requirement unless they carry one.
    Candidates without a deadline are rejected outright.
    @raise Invalid_argument on duplicate flow ids. *)

val deadline_met : (int * float) list -> Flow.t list -> bool
(** [deadline_met bounds flows]: every flow with a deadline has a
    finite bound at most its deadline. *)

(** Human-readable analysis reports.

    Render a network analysis the way an operator would want to read
    it: a network summary, per-server provisioning data (utilization,
    local delay, buffer requirement, busy period) and per-flow
    end-to-end results with the per-hop (or per-subnetwork)
    breakdown. *)

val decomposed : Decomposed.t -> string
(** Full report of a decomposition analysis. *)

val integrated : Integrated.t -> string
(** Full report of an integrated analysis, with the pairing and
    per-subnetwork delay contributions. *)

val comparison :
  ?options:Options.t -> ?strategy:Pairing.strategy -> Network.t -> string
(** Run Decomposed, Service Curve and Integrated on the network and
    tabulate all flows side by side ([strategy] defaults to greedy
    pairing). *)

(** Local allocation of end-to-end deadlines in EDF networks — the
    companion problem of Nagarajan/Kurose/Towsley (the paper's
    reference [28]): an EDF scheduler needs a {e local} deadline per
    hop, but applications specify {e end-to-end} deadlines; how should
    the budget be split?

    The decomposition engine's naive answer (equal split) wastes
    budget at lightly loaded hops.  This module computes a
    proportional-scaling allocation instead: at each server, the
    minimal uniform scaling of the flows' per-hop budget shares that
    passes the EDF demand-bound test is found by bisection
    (feasibility is monotone in the scaling), and envelope propagation
    is iterated to a fixed point because output envelopes depend on
    the assigned local deadlines.  A flow is schedulable when the
    minimal local deadlines along its route sum to at most its
    end-to-end deadline.

    Requires every server to be EDF and every flow to carry a
    deadline. *)

type t

val allocate : ?max_iter:int -> ?tol:float -> Network.t -> t
(** Iterate allocation/propagation ([max_iter] default 50 rounds,
    bisection tolerance [tol] default 1e-6).
    @raise Network.Cyclic on non-feedforward routing.
    @raise Invalid_argument on a non-EDF server or a deadline-less
    flow. *)

val local_deadline : t -> flow:int -> server:int -> float
(** The assigned local deadline (= local delay bound when feasible). *)

val flow_bound : t -> int -> float
(** Sum of the assigned local deadlines along the route — the end-to-end
    bound this allocation certifies. *)

val flow_feasible : t -> int -> bool
(** Whether that bound is within the flow's end-to-end deadline. *)

val all_feasible : t -> bool

val equal_split_feasible : Network.t -> int -> bool
(** Baseline for comparison: is the flow schedulable under the naive
    equal split (the {!Decomposed} policy)?  The allocation above is
    never worse (tested). *)

(** FIFO service-curve-family method — the extension beyond the paper
    (DESIGN.md §3.5).

    For a FIFO server of rate [C] with cross-traffic envelope
    [alpha_c], every [theta >= 0] yields a valid per-flow service curve
    [beta_theta t = (C t - alpha_c (t - theta))^+ 1{t > theta}]
    (Cruz 1995; Le Boudec-Thiran Prop. 6.2.1).  [theta = 0] is the
    leftover curve used by Algorithm Service Curve; for token-bucket
    cross traffic the choice [theta = sigma_c / C] gives the strictly
    better rate-latency curve [beta_{C - rho_c, sigma_c / C}].

    This method composes one family member per hop and tunes the
    [theta] vector by per-hop candidate enumeration plus coordinate
    descent on the end-to-end horizontal deviation.  Cross-traffic
    envelopes come from a {!Decomposed} propagation, as in
    {!Service_curve_method} — so the comparison against that method
    isolates exactly the value of the [theta] degree of freedom. *)

type t

val analyze : ?options:Options.t -> Network.t -> t
(** @raise Network.Cyclic on non-feedforward routing. *)

val network : t -> Network.t

val flow_delay : ?sweeps:int -> t -> int -> float
(** Delay bound for a flow after tuning thetas ([sweeps] coordinate-
    descent passes, default 2).  Never worse than the theta = 0
    (Algorithm Service Curve) bound, because theta = 0 is always among
    the candidates.  [infinity] when a hop is saturated. *)

val all_flow_delays : ?sweeps:int -> t -> (int * float) list

val thetas : ?sweeps:int -> t -> flow:int -> float list
(** The tuned per-hop theta vector (for inspection/tests). *)

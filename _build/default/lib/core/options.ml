type t = { link_cap : bool; sp_blocking : float }

let default = { link_cap = false; sp_blocking = 0. }
let sharpened = { default with link_cap = true }
let with_blocking b t = { t with sp_blocking = b }

(** Closed-form delay recurrences for the tandem of Fig. 3.

    The paper evaluates its general algorithms through closed forms
    specialized to the tandem topology (derived in the unavailable
    technical report [25]; the conference excerpts are corrupted by
    OCR).  This module re-derives the Decomposed and Service-Curve
    closed forms from first principles for the {e classic} token-bucket
    case ([peak = infinity], all rates 1) and serves as an independent
    cross-check of the general engines in the test suite.

    Derivation sketch (Decomposed, rate-1 FIFO servers, pure token
    buckets):  the local delay at a server equals the total burst
    arriving there ([sup (sum sigma_i + sum rho_i t - t) = sum sigma_i]
    at [t = 0] under stability), and a flow's burst after a hop with
    local delay [E] grows to [sigma + rho E].  With the Fig. 3
    population (Connection 0 plus [A_j, B_j, B_(j-1)] at middle port
    [j]) this gives

    - [E_0 = 3 sigma]                                 (3 fresh flows)
    - [E_k = 4 sigma + rho (P_(k-1) + E_(k-1))], [1 <= k <= n-1]

    where [P_k = E_0 + ... + E_k] is Connection 0's accumulated delay
    (its burst at port [k+1] is [sigma + rho P_k]; [B_(k-1)]'s burst is
    [sigma + rho E_(k-1)]), except that the final port [n-1] carries
    [B_(n-1)] but no [A]- or [B]-flow beyond the chain; the generator
    keeps [A_(n-1)] and [B_(n-1)] entering there, so the recurrence
    holds for all [k >= 1].  [D_D = P_(n-1)].

    For the Service-Curve method the leftover curve at port [k] against
    cross burst [S_k] and cross rate [r_k] is the rate-latency curve
    [beta_(1 - r_k, S_k / (1 - r_k))]; convolution adds latencies and
    takes the minimum rate, so
    [D_SC = sum_k S_k / (1 - r_k) + sigma / (1 - max_k r_k)]. *)

val decomposed_locals : n:int -> sigma:float -> rho:float -> float list
(** The per-port local delays [E_0 .. E_(n-1)]; [infinity] everywhere
    when some port is unstable. *)

val decomposed : n:int -> sigma:float -> rho:float -> float
(** [D_D] for Connection 0. *)

val service_curve : n:int -> sigma:float -> rho:float -> float
(** [D_SC] for Connection 0. *)

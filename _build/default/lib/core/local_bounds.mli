(** Per-server local delay bounds, shared by the decomposition engine
    and the cyclic fixed-point engine.

    Given the current input envelopes of the flows at a server (from a
    {!Propagation.env_table}), compute each flow's local worst-case
    delay under the server's discipline:
    - FIFO: the aggregate bound [sup (G t / C - t)^+], with the
      aggregate honoring the link-cap option;
    - static priority: per-class leftover-curve bound (with the
      non-preemption blocking option);
    - EDF: the flow's local deadline (end-to-end deadline split evenly
      across its hops) if the demand-bound test passes, else infinity;
    - GPS: the horizontal deviation from the flow's weighted share. *)

val at_server :
  options:Options.t ->
  Network.t ->
  Propagation.env_table ->
  server:int ->
  (Flow.t * float) list
(** One entry per flow present at the server, in the order of
    {!Network.flows_at}.  @raise Not_found when an envelope is missing
    from the table.  @raise Invalid_argument for a deadline-less flow
    at an EDF server. *)

(** Algorithm Service Curve — the induced-service-curve baseline
    (paper Sec. 1.2 and 4.2).

    For each hop of the tagged flow an induced per-flow service curve
    is derived from the server's discipline and its cross traffic; the
    network service curve is their min-plus convolution (paper Eq. (2))
    and the delay bound its horizontal deviation from the source
    envelope (Eq. (1)).

    For FIFO there is no exact per-flow service curve; following the
    paper we use the best curve available without per-flow information
    — the leftover curve [(C t - cross t)^+], valid for any
    work-conserving multiplexing.  The paper stresses that its D_SC
    numbers are therefore {e optimistic} (a lower bound on what any
    correct FIFO service-curve method would report); the same caveat
    applies here.

    Cross-traffic envelopes at interior servers are obtained from a
    {!Decomposed} propagation of the whole network. *)

type t

val analyze : ?options:Options.t -> Network.t -> t
(** Precomputes the decomposed propagation used for cross traffic.
    @raise Network.Cyclic on non-feedforward routing. *)

val network : t -> Network.t

val network_service_curve : t -> flow:int -> Pwl.t
(** The end-to-end service curve [beta_1 (x) ... (x) beta_m] of a flow.
    @raise Invalid_argument when some hop offers no service (unstable
    cross traffic saturates it). *)

val flow_delay : t -> int -> float
(** Delay bound [hdev(alpha_src, network curve)] for a flow;
    [infinity] when a hop is saturated. *)

val all_flow_delays : t -> (int * float) list

val hop_service_curve : t -> flow:int -> server:int -> Pwl.t
(** The induced curve at a single hop (exposed for tests and for the
    FIFO-theta extension to compare against). *)

type method_ = Decomposed | Service_curve | Integrated | Integrated_sp | Fifo_theta

let all_methods = [ Decomposed; Service_curve; Integrated; Integrated_sp; Fifo_theta ]

let method_name = function
  | Decomposed -> "Decomposed"
  | Service_curve -> "Service Curve"
  | Integrated -> "Integrated"
  | Integrated_sp -> "Integrated-SP"
  | Fifo_theta -> "FIFO-theta"

let flow_delay ?options ?strategy net method_ flow =
  match method_ with
  | Decomposed -> Decomposed.flow_delay (Decomposed.analyze ?options net) flow
  | Service_curve ->
      Service_curve_method.flow_delay (Service_curve_method.analyze ?options net) flow
  | Integrated ->
      Integrated.flow_delay (Integrated.analyze ?options ?strategy net) flow
  | Integrated_sp ->
      Integrated_sp.flow_delay (Integrated_sp.analyze ?options ?strategy net) flow
  | Fifo_theta -> Fifo_theta.flow_delay (Fifo_theta.analyze ?options net) flow

type comparison = {
  flow : int;
  decomposed : float;
  service_curve : float;
  integrated : float;
  fifo_theta : float;
}

let compare_all ?options ?strategy ?(with_theta = true) net flow =
  {
    flow;
    decomposed = flow_delay ?options net Decomposed flow;
    service_curve = flow_delay ?options net Service_curve flow;
    integrated = flow_delay ?options ?strategy net Integrated flow;
    fifo_theta =
      (if with_theta then flow_delay ?options net Fifo_theta flow else nan);
  }

let relative_improvement dx dy =
  if not (Float.is_finite dx) || not (Float.is_finite dy) || dx = 0. then nan
  else (dx -. dy) /. dx

lib/util/sweep.ml: List

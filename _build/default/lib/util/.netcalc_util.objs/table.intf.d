lib/util/table.mli:

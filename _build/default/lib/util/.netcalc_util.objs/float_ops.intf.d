lib/util/float_ops.mli:

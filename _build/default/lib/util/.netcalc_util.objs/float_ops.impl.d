lib/util/float_ops.ml: Float List

lib/util/sweep.mli:

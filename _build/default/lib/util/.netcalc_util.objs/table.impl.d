lib/util/table.ml: Filename List Printf Stdlib String Sys

(** Parameter sweeps for experiments. *)

val linspace : lo:float -> hi:float -> n:int -> float list
(** [linspace ~lo ~hi ~n] is [n] evenly spaced points from [lo] to [hi]
    inclusive.  Requires [n >= 2] (or [n = 1], giving [\[lo\]]). *)

val steps : lo:float -> hi:float -> step:float -> float list
(** Points [lo, lo+step, ...] up to and including [hi] (within tolerance).
    Requires [step > 0.]. *)

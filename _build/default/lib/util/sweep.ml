let linspace ~lo ~hi ~n =
  assert (n >= 1);
  if n = 1 then [ lo ]
  else
    List.init n (fun i ->
        lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))

let steps ~lo ~hi ~step =
  assert (step > 0.);
  let rec loop acc x =
    if x > hi +. (step /. 2.) then List.rev acc else loop (x :: acc) (x +. step)
  in
  loop [] lo

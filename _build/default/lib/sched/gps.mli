(** Local analysis of a GPS / weighted-fair-queueing multiplexor.

    GPS guarantees flow [i] a service rate of at least
    [C * w_i / sum w] whenever it is backlogged (Parekh-Gallager), i.e.
    the rate-latency service curve [beta_{r_i, 0}].  Its packetized
    approximations (PGPS/WFQ) add a latency of one maximum packet time
    [l_max / C] (the "guaranteed-rate" server model of Goyal et al. that
    the paper contrasts with FIFO). *)

val guaranteed_rate : rate:float -> weight:float -> total_weight:float -> float

val flow_service :
  rate:float ->
  weight:float ->
  total_weight:float ->
  ?packet_latency:float ->
  unit ->
  Pwl.t
(** Rate-latency curve [beta_{C w / W, packet_latency}];
    [packet_latency] defaults to 0 (fluid GPS). *)

val local_delay :
  rate:float ->
  weight:float ->
  total_weight:float ->
  alpha:Pwl.t ->
  ?packet_latency:float ->
  unit ->
  float
(** Horizontal deviation of [alpha] from the flow's service curve. *)

val output_flow :
  rate:float ->
  weight:float ->
  total_weight:float ->
  alpha:Pwl.t ->
  ?packet_latency:float ->
  unit ->
  Pwl.t
(** Output envelope [alpha (/) beta] — tighter than delay-shifting
    because GPS isolates the flow. *)

(** Local analysis of an earliest-deadline-first multiplexor of rate [C].

    For preemptive EDF over fluid traffic the classic demand-bound
    condition is exact: local deadlines [d_i] are met for flows with
    arrival curves [alpha_i] iff
    [sum_i alpha_i (t - d_i) <= C t] for all [t >= 0]
    (Liebeherr/Wrege/Ferrari; Firoiu et al.). *)

val demand_bound : (Pwl.t * float) list -> Pwl.t
(** [demand_bound flows] is [t -> sum_i alpha_i (t - d_i)] where each
    flow is given as [(alpha_i, d_i)] with [d_i >= 0.]. *)

val feasible : rate:float -> (Pwl.t * float) list -> bool
(** Whether the deadline assignment is schedulable on a rate-[C] EDF
    server. *)

val slack : rate:float -> (Pwl.t * float) list -> float
(** [sup_t (demand t - C t)]: negative or zero iff feasible; useful as a
    margin metric for admission control. *)

val min_uniform_deadline :
  rate:float -> curves:Pwl.t list -> ?tol:float -> unit -> float
(** Smallest common local deadline [d] such that giving every flow
    deadline [d] is feasible; [infinity] when the server is unstable.
    Bisection to absolute tolerance [tol] (default [1e-9]) — the
    feasibility frontier is monotone in [d]. *)

val local_delay : rate:float -> (Pwl.t * float) list -> deadline:float -> float
(** Delay bound for a flow with local deadline [deadline]: the deadline
    itself when {!feasible}, [infinity] otherwise. *)

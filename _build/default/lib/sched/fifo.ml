let local_delay ~rate ~agg = Deviation.delay_fifo_aggregate ~agg ~rate

let backlog ~rate ~agg =
  Deviation.vdev ~alpha:agg ~beta:(Service.constant_rate rate)

let busy_period ~rate ~agg = Minplus.busy_period ~agg ~rate

let output_aggregate ~rate ~agg =
  Pwl.min_pw (Service.constant_rate rate) agg

let output_flow ~rate ~agg ~flow =
  let d = local_delay ~rate ~agg in
  if d = infinity then invalid_arg "Fifo.output_flow: unstable server"
  else Pwl.min_pw (Pwl.shift_left flow d) (output_aggregate ~rate ~agg)

let leftover ~rate ~cross = Service.leftover ~rate ~cross

let class_service ~rate ~higher ?(blocking = 0.) () =
  if blocking < 0. then invalid_arg "Static_priority: negative blocking";
  Pwl.lower_convex_hull
    (Pwl.nonneg
       (Pwl.sub (Service.constant_rate rate)
          (Pwl.add higher (Pwl.constant blocking))))

let local_delay ~rate ~higher ~own ?blocking () =
  Deviation.hdev ~alpha:own ~beta:(class_service ~rate ~higher ?blocking ())

let output_flow ~rate ~higher ~own ~flow ?blocking () =
  let d = local_delay ~rate ~higher ~own ?blocking () in
  if d = infinity then invalid_arg "Static_priority.output_flow: unstable class"
  else Pwl.shift_left flow d

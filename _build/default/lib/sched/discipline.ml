type t = Fifo | Static_priority | Edf | Gps

let to_string = function
  | Fifo -> "FIFO"
  | Static_priority -> "SP"
  | Edf -> "EDF"
  | Gps -> "GPS"

let pp ppf d = Format.pp_print_string ppf (to_string d)
let all = [ Fifo; Static_priority; Edf; Gps ]

(** Packet scheduling disciplines.

    The paper's analysis targets FIFO servers; the other disciplines it
    surveys in Sec. 1 (static priority, EDF, GPS/fair queueing) are
    implemented as substrates: each provides a local delay bound and,
    where meaningful, an induced service curve, so that the
    decomposition engine and the simulator can run any of them. *)

type t =
  | Fifo
  | Static_priority  (** lower {!Flow} priority number = more urgent *)
  | Edf              (** earliest deadline first, by per-flow local deadline *)
  | Gps              (** generalized processor sharing, by per-flow weight *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val all : t list

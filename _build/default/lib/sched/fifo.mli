(** Local analysis of a FIFO multiplexor of constant rate [C].

    All bounds assume a stable server ([long-run input rate < C]) and a
    fluid model (packetization effects are second-order at high speeds
    and are validated separately against the packet simulator). *)

val local_delay : rate:float -> agg:Pwl.t -> float
(** Worst-case delay of {e any} bit through the server when the
    aggregate input is constrained by [agg]:
    [sup_t (agg t / rate - t)^+]; [infinity] if unstable. *)

val backlog : rate:float -> agg:Pwl.t -> float
(** Worst-case backlog [sup_t (agg t - rate t)^+]. *)

val busy_period : rate:float -> agg:Pwl.t -> float
(** Bound on the busy-period length (see {!Minplus.busy_period}). *)

val output_aggregate : rate:float -> agg:Pwl.t -> Pwl.t
(** Envelope of the aggregate output (paper Lemma 1):
    [W t = min_{0<=s<=t} (rate (t-s) + agg s)], computed as the
    min-plus convolution [lambda_rate (x) agg]. *)

val output_flow : rate:float -> agg:Pwl.t -> flow:Pwl.t -> Pwl.t
(** Envelope of one flow's output: the flow envelope shifted by the
    local delay bound (Cruz's FIFO output characterization),
    additionally capped by the whole server output when the flow is
    alone. *)

val leftover : rate:float -> cross:Pwl.t -> Pwl.t
(** Induced per-flow service curve [ (C t - cross t)^+ ] — the curve
    Algorithm Service Curve uses for FIFO (DESIGN.md §3.2). *)

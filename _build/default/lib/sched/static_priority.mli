(** Local analysis of a static-priority multiplexor of rate [C].

    Priority classes are served preemptively in priority order (lower
    number = more urgent); within a class the service is FIFO.  A
    non-preemptive server is modeled through the optional [blocking]
    term: the size of the largest lower-priority packet that can be in
    service when a higher-priority packet arrives (0 in the fluid
    model).  This is the Cruz / Li-Bettati-Zhao (RTSS'97) bound the
    paper's conclusion refers to when discussing the SP extension. *)

val class_service :
  rate:float -> higher:Pwl.t -> ?blocking:float -> unit -> Pwl.t
(** Service curve offered to a priority class given the aggregate
    envelope [higher] of all strictly more urgent classes:
    [(C t - higher t - blocking)^+]. *)

val local_delay :
  rate:float -> higher:Pwl.t -> own:Pwl.t -> ?blocking:float -> unit -> float
(** Worst-case delay of the class aggregate [own]:
    horizontal deviation from {!class_service}.  [infinity] when the
    class is unstable. *)

val output_flow :
  rate:float ->
  higher:Pwl.t ->
  own:Pwl.t ->
  flow:Pwl.t ->
  ?blocking:float ->
  unit ->
  Pwl.t
(** Output envelope of one flow of the class: the flow envelope shifted
    by the class delay bound. *)

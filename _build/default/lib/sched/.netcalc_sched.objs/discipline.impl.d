lib/sched/discipline.ml: Format

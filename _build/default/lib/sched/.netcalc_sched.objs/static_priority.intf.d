lib/sched/static_priority.mli: Pwl

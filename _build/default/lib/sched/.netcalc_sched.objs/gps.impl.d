lib/sched/gps.ml: Deviation Minplus Service

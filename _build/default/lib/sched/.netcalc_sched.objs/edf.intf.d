lib/sched/edf.mli: Pwl

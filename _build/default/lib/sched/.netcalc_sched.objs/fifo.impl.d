lib/sched/fifo.ml: Deviation Minplus Pwl Service

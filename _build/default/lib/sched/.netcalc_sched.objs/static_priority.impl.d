lib/sched/static_priority.ml: Deviation Pwl Service

lib/sched/fifo.mli: Pwl

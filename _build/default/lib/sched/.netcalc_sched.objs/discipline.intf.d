lib/sched/discipline.mli: Format

lib/sched/gps.mli: Pwl

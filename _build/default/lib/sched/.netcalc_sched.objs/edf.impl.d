lib/sched/edf.ml: Deviation Float Float_ops List Minplus Pwl Service

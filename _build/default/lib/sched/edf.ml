let demand_bound flows =
  List.iter
    (fun (_, d) -> if d < 0. then invalid_arg "Edf: negative deadline")
    flows;
  Pwl.sum (List.map (fun (alpha, d) -> Pwl.shift_right alpha d) flows)

let slack ~rate flows =
  Pwl.sup_diff (demand_bound flows) (Service.constant_rate rate)

let feasible ~rate flows =
  let open Float_ops in
  slack ~rate flows <=~ 0.

let min_uniform_deadline ~rate ~curves ?(tol = 1e-9) () =
  let agg = Pwl.sum curves in
  if not (Minplus.stable ~agg ~rate) then infinity
  else begin
    let with_deadline d = List.map (fun c -> (c, d)) curves in
    (* The FIFO aggregate delay is always a feasible uniform deadline. *)
    let hi0 = Deviation.delay_fifo_aggregate ~agg ~rate in
    let rec widen hi =
      if feasible ~rate (with_deadline hi) then hi else widen (2. *. hi)
    in
    let hi = widen (Float.max hi0 tol) in
    let rec bisect lo hi =
      if hi -. lo <= tol then hi
      else
        let mid = (lo +. hi) /. 2. in
        if feasible ~rate (with_deadline mid) then bisect lo mid
        else bisect mid hi
    in
    bisect 0. hi
  end

let local_delay ~rate flows ~deadline =
  if feasible ~rate flows then deadline else infinity

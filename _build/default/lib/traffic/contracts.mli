(** Standard traffic contracts mapped to arrival curves.

    The paper targets ATM and integrated-services packet networks;
    this module translates their traffic descriptors into the
    token-bucket envelopes the analyses consume.

    Units are up to the caller: pick a data unit (cells, bytes) and a
    time unit, and keep rates consistent.  [cell] defaults to [1.]
    (work in cells). *)

val atm_cbr : pcr:float -> ?cdvt:float -> ?cell:float -> unit -> Arrival.t
(** Constant bit rate: peak cell rate [pcr] policed with cell delay
    variation tolerance [cdvt] (default 0): envelope
    [cell + pcr * (t + cdvt)] capped at peak — i.e. a token bucket with
    burst [cell + pcr * cdvt] and rate [pcr]. *)

val atm_vbr :
  pcr:float -> scr:float -> mbs:float -> ?cell:float -> unit -> Arrival.t
(** Variable bit rate: peak cell rate, sustainable cell rate and
    maximum burst size (in cells).  Dual leaky bucket
    [min (cell + pcr t, sigma_s + scr t)] with the standard burst
    tolerance [sigma_s = cell + (mbs - 1) (1 - scr / pcr) cell].
    Requires [0 < scr <= pcr] and [mbs >= 1]. *)

val intserv_tspec :
  peak:float -> rate:float -> bucket:float -> max_packet:float -> Arrival.t
(** IETF integrated-services TSpec [(p, r, b, M)]:
    [min (M + p t, b + r t)].  Requires [rate <= peak],
    [max_packet <= bucket]. *)

lib/traffic/flow.ml: Arrival Format List

lib/traffic/flow.mli: Arrival Format Pwl

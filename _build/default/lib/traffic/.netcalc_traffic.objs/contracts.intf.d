lib/traffic/contracts.mli: Arrival

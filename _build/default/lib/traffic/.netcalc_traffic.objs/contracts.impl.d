lib/traffic/contracts.ml: Arrival

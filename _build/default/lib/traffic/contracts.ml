let atm_cbr ~pcr ?(cdvt = 0.) ?(cell = 1.) () =
  if pcr <= 0. then invalid_arg "Contracts.atm_cbr: pcr <= 0";
  if cdvt < 0. then invalid_arg "Contracts.atm_cbr: negative cdvt";
  Arrival.token_bucket ~sigma:(cell +. (pcr *. cdvt)) ~rho:pcr ()

let atm_vbr ~pcr ~scr ~mbs ?(cell = 1.) () =
  if scr <= 0. || scr > pcr then
    invalid_arg "Contracts.atm_vbr: need 0 < scr <= pcr";
  if mbs < 1. then invalid_arg "Contracts.atm_vbr: mbs < 1";
  let sigma_s = cell +. ((mbs -. 1.) *. (1. -. (scr /. pcr)) *. cell) in
  Arrival.make
    (Arrival.Multi
       [
         Arrival.Token_bucket { sigma = cell; rho = pcr; peak = infinity };
         Arrival.Token_bucket { sigma = sigma_s; rho = scr; peak = infinity };
       ])

let intserv_tspec ~peak ~rate ~bucket ~max_packet =
  if rate > peak then invalid_arg "Contracts.intserv_tspec: rate > peak";
  if max_packet > bucket then
    invalid_arg "Contracts.intserv_tspec: max_packet > bucket";
  Arrival.make
    (Arrival.Multi
       [
         Arrival.Token_bucket { sigma = max_packet; rho = peak; peak = infinity };
         Arrival.Token_bucket { sigma = bucket; rho = rate; peak = infinity };
       ])

module Int_map = Map.Make (Int)

type t = {
  servers : Server.t Int_map.t;
  flow_list : Flow.t list;
  flow_map : Flow.t Int_map.t;
}

exception Cyclic

let make ~servers ~flows =
  let server_map =
    List.fold_left
      (fun acc (s : Server.t) ->
        if Int_map.mem s.id acc then
          invalid_arg
            (Printf.sprintf "Network.make: duplicate server id %d" s.id)
        else Int_map.add s.id s acc)
      Int_map.empty servers
  in
  List.iter
    (fun (f : Flow.t) ->
      List.iter
        (fun sid ->
          if not (Int_map.mem sid server_map) then
            invalid_arg
              (Printf.sprintf "Network.make: flow %s routes via unknown server %d"
                 f.name sid))
        f.route)
    flows;
  let flow_map =
    List.fold_left
      (fun acc (f : Flow.t) ->
        if Int_map.mem f.id acc then
          invalid_arg (Printf.sprintf "Network.make: duplicate flow id %d" f.id)
        else Int_map.add f.id f acc)
      Int_map.empty flows
  in
  { servers = server_map; flow_list = flows; flow_map }

let server net id =
  match Int_map.find_opt id net.servers with
  | Some s -> s
  | None -> raise Not_found

let servers net = List.map snd (Int_map.bindings net.servers)
let flows net = net.flow_list

let flow net id =
  match Int_map.find_opt id net.flow_map with
  | Some f -> f
  | None -> raise Not_found

let size net = Int_map.cardinal net.servers

let flows_at net sid =
  List.filter (fun f -> Flow.traverses f sid) net.flow_list

let edges net =
  net.flow_list
  |> List.concat_map Flow.hop_pairs
  |> List.sort_uniq compare

let topological_order net =
  let es = edges net in
  let indegree = Hashtbl.create 64 in
  Int_map.iter (fun id _ -> Hashtbl.replace indegree id 0) net.servers;
  List.iter
    (fun (_, dst) -> Hashtbl.replace indegree dst (Hashtbl.find indegree dst + 1))
    es;
  let successors src = List.filter_map
      (fun (a, b) -> if a = src then Some b else None) es
  in
  let ready =
    Int_map.fold
      (fun id _ acc -> if Hashtbl.find indegree id = 0 then id :: acc else acc)
      net.servers []
    |> List.sort compare
  in
  let rec kahn order = function
    | [] -> List.rev order
    | id :: rest ->
        let next =
          List.fold_left
            (fun acc succ ->
              let d = Hashtbl.find indegree succ - 1 in
              Hashtbl.replace indegree succ d;
              if d = 0 then succ :: acc else acc)
            [] (successors id)
        in
        kahn (id :: order) (List.sort compare next @ rest)
  in
  let order = kahn [] ready in
  if List.length order <> size net then raise Cyclic else order

let is_feedforward net =
  match topological_order net with _ -> true | exception Cyclic -> false

let utilization net sid =
  let s = server net sid in
  let input_rate =
    List.fold_left (fun acc f -> acc +. Flow.rate f) 0. (flows_at net sid)
  in
  input_rate /. s.rate

let max_utilization net =
  Int_map.fold
    (fun id _ acc -> Float.max acc (utilization net id))
    net.servers 0.

let stable net =
  let open Float_ops in
  max_utilization net <~ 1.

let with_flows net flows = make ~servers:(servers net) ~flows

let pp ppf net =
  Format.fprintf ppf "network: %d servers, %d flows, max util %.3f" (size net)
    (List.length net.flow_list) (max_utilization net)

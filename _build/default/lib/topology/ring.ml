type t = { network : Network.t; n : int }

let make ~n ~hops ~utilization ?(sigma = 1.) ?(peak = infinity) () =
  if n < 2 then invalid_arg "Ring.make: n < 2";
  if hops < 2 || hops > n then invalid_arg "Ring.make: need 2 <= hops <= n";
  if utilization <= 0. || utilization >= 1. then
    invalid_arg "Ring.make: utilization must be in (0, 1)";
  if sigma <= 0. then invalid_arg "Ring.make: sigma <= 0";
  let rho = utilization /. float_of_int hops in
  let servers =
    List.init n (fun id ->
        Server.make ~id ~name:(Printf.sprintf "ring%d" id) ~rate:1. ())
  in
  let flows =
    List.init n (fun i ->
        Flow.make ~id:i
          ~name:(Printf.sprintf "f%d" i)
          ~arrival:(Arrival.token_bucket ~peak ~sigma ~rho ())
          ~route:(List.init hops (fun k -> (i + k) mod n))
          ())
  in
  { network = Network.make ~servers ~flows; n }

type t = {
  network : Network.t;
  conn0 : Flow.t;
  n : int;
  mid_servers : int list;
}

let make ~n ~utilization ?(sigma = 1.) ?(peak = 1.)
    ?(discipline = Discipline.Fifo) () =
  if n < 2 then invalid_arg "Tandem.make: need at least 2 switches";
  if utilization <= 0. || utilization >= 1. then
    invalid_arg "Tandem.make: utilization must be in (0, 1)";
  if sigma <= 0. then invalid_arg "Tandem.make: sigma <= 0";
  let rho = utilization /. 4. in
  let source () = Arrival.token_bucket ~peak ~sigma ~rho () in
  let mid k = k in
  let upper_exit k = n + k in
  let lower_exit k = (2 * n) + k in
  let servers =
    List.init n (fun k ->
        Server.make ~id:(mid k) ~name:(Printf.sprintf "mid%d" k) ~rate:1.
          ~discipline ())
    @ List.init n (fun k ->
          Server.make ~id:(upper_exit k) ~name:(Printf.sprintf "upx%d" k)
            ~rate:1. ~discipline ())
    @ List.init n (fun k ->
          Server.make ~id:(lower_exit k) ~name:(Printf.sprintf "lox%d" k)
            ~rate:1. ~discipline ())
  in
  let conn0 =
    Flow.make ~id:0 ~name:"conn0" ~arrival:(source ())
      ~route:(List.init n mid) ~priority:1 ()
  in
  let a_flow k =
    Flow.make ~id:((2 * k) + 1)
      ~name:(Printf.sprintf "A%d" k)
      ~arrival:(source ())
      ~route:[ mid k; upper_exit k ]
      ~priority:0 ()
  in
  let b_flow k =
    let mids = if k + 1 <= n - 1 then [ mid k; mid (k + 1) ] else [ mid k ] in
    Flow.make ~id:((2 * k) + 2)
      ~name:(Printf.sprintf "B%d" k)
      ~arrival:(source ())
      ~route:(mids @ [ lower_exit k ])
      ~priority:2 ()
  in
  let flows =
    conn0 :: List.concat (List.init n (fun k -> [ a_flow k; b_flow k ]))
  in
  let network = Network.make ~servers ~flows in
  { network; conn0; n; mid_servers = List.init n mid }

let cross_flows t =
  List.filter (fun (f : Flow.t) -> f.id <> 0) (Network.flows t.network)

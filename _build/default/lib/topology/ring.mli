(** Ring networks — the canonical cyclic topology for the fixed-point
    (feedback) analysis.

    [n] FIFO servers arranged in a cycle; flow [i] (one per server)
    enters at server [i] and traverses [hops] consecutive servers
    (indices mod [n]) before leaving.  Every server carries exactly
    [hops] flows, so with per-flow rate [rho = utilization / hops] each
    server runs at [utilization].  The routing graph contains the full
    cycle whenever [n >= 2] and [hops >= 2], which is exactly the
    configuration the paper's Sec. 5 excludes from Algorithm Integrated
    and the fixed-point engine handles.  Famously, such rings can defy
    the decomposition fixed point well below utilization 1. *)

type t = { network : Network.t; n : int }

val make :
  n:int ->
  hops:int ->
  utilization:float ->
  ?sigma:float ->
  ?peak:float ->
  unit ->
  t
(** Requires [2 <= hops <= n] and utilization in (0, 1).
    [sigma] defaults to 1, [peak] to [infinity].
    @raise Invalid_argument otherwise. *)

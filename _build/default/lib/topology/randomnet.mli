(** Random feedforward networks for property-based testing and stress
    experiments.

    Servers are arranged in layers; each route visits one server in
    each of a contiguous range of layers, so the routing graph is a DAG
    by construction.  Source rates are scaled after generation so that
    the most loaded server sits at the requested utilization. *)

type params = {
  layers : int;           (** >= 2 *)
  per_layer : int;        (** servers per layer, >= 1 *)
  num_flows : int;        (** >= 1 *)
  utilization : float;    (** target max utilization, in (0, 1) *)
  max_burst : float;      (** source bursts drawn from [0.05, max_burst] *)
  peak : float;           (** source peak rate; [infinity] for none *)
  rate_spread : float;    (** server rates drawn uniformly from
                              [1 - spread, 1 + spread]; 0 gives the
                              homogeneous unit-rate plant *)
  seed : int;
}

val default : params
(** 3 layers x 2 servers, 8 flows, utilization 0.6, max_burst 2,
    peak 1, homogeneous rates, seed 42. *)

val generate : params -> Network.t
(** All servers FIFO.  The result is always feedforward, and the most
    loaded server sits exactly at the target utilization relative to
    its own rate (hence stable). *)

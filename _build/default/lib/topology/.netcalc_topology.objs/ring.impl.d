lib/topology/ring.ml: Arrival Flow List Network Printf Server

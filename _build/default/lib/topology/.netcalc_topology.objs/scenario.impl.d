lib/topology/scenario.ml: Arrival Buffer Discipline Flow List Network Option Printf Server String

lib/topology/randomnet.ml: Arrival Float Flow Hashtbl List Network Printf Random Server

lib/topology/network.mli: Flow Format Server

lib/topology/tandem.mli: Discipline Flow Network

lib/topology/tandem.ml: Arrival Discipline Flow List Network Printf Server

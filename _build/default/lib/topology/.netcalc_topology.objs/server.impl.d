lib/topology/server.ml: Discipline Format

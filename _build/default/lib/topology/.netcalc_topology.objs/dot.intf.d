lib/topology/dot.mli: Network

lib/topology/ring.mli: Network

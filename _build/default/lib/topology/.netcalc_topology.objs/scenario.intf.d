lib/topology/scenario.mli: Network

lib/topology/dot.ml: Buffer Flow List Network Printf Server

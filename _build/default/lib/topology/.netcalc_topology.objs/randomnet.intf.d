lib/topology/randomnet.mli: Network

lib/topology/server.mli: Discipline Format

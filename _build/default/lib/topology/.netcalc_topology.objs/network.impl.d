lib/topology/network.ml: Float Float_ops Flow Format Hashtbl Int List Map Printf Server

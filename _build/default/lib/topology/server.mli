(** Servers (switch output ports / multiplexors).

    Following the paper's model, every contention point in the network —
    each output port of each switch — is one work-conserving server with
    a constant service rate and a scheduling discipline.  Links are
    instantaneous (propagation delay is an additive constant that does
    not affect the comparison of analysis methods). *)

type t = private {
  id : int;
  name : string;
  rate : float;
  discipline : Discipline.t;
}

val make :
  id:int -> ?name:string -> rate:float -> ?discipline:Discipline.t -> unit -> t
(** [discipline] defaults to [Fifo]; [name] to ["s<id>"].
    @raise Invalid_argument when [rate <= 0.] or [id < 0]. *)

val pp : Format.formatter -> t -> unit

let to_dot net =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph network {\n  rankdir=LR;\n";
  List.iter
    (fun (s : Server.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  %d [label=\"%s\\nC=%g u=%.2f\"];\n" s.id s.name
           s.rate
           (Network.utilization net s.id)))
    (Network.servers net);
  let count (a, b) =
    List.length
      (List.filter
         (fun f -> List.mem (a, b) (Flow.hop_pairs f))
         (Network.flows net))
  in
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf
        (Printf.sprintf "  %d -> %d [label=\"%d\"];\n" a b (count (a, b))))
    (Network.edges net);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

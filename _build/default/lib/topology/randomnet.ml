type params = {
  layers : int;
  per_layer : int;
  num_flows : int;
  utilization : float;
  max_burst : float;
  peak : float;
  rate_spread : float;
  seed : int;
}

let default =
  {
    layers = 3;
    per_layer = 2;
    num_flows = 8;
    utilization = 0.6;
    max_burst = 2.;
    peak = 1.;
    rate_spread = 0.;
    seed = 42;
  }

let generate p =
  if p.layers < 2 then invalid_arg "Randomnet.generate: layers < 2";
  if p.per_layer < 1 then invalid_arg "Randomnet.generate: per_layer < 1";
  if p.num_flows < 1 then invalid_arg "Randomnet.generate: num_flows < 1";
  if p.utilization <= 0. || p.utilization >= 1. then
    invalid_arg "Randomnet.generate: utilization must be in (0, 1)";
  if p.rate_spread < 0. || p.rate_spread >= 1. then
    invalid_arg "Randomnet.generate: rate_spread must be in [0, 1)";
  let rng = Random.State.make [| p.seed |] in
  let server_id layer pos = (layer * p.per_layer) + pos in
  let rates = Hashtbl.create 16 in
  let servers =
    List.concat
      (List.init p.layers (fun layer ->
           List.init p.per_layer (fun pos ->
               let rate =
                 1. -. p.rate_spread
                 +. Random.State.float rng (2. *. p.rate_spread)
               in
               Hashtbl.replace rates (server_id layer pos) rate;
               Server.make ~id:(server_id layer pos)
                 ~name:(Printf.sprintf "l%dp%d" layer pos)
                 ~rate ())))
  in
  (* Draw raw routes and unscaled (sigma, weight) parameters first. *)
  let raw =
    List.init p.num_flows (fun i ->
        let first = Random.State.int rng (p.layers - 1) in
        let len = 2 + Random.State.int rng (p.layers - first - 1) in
        let route =
          List.init len (fun k ->
              server_id (first + k) (Random.State.int rng p.per_layer))
        in
        let sigma = 0.05 +. Random.State.float rng (Float.max 1e-3 (p.max_burst -. 0.05)) in
        let rate_weight = Random.State.float rng 1.0 +. 0.1 in
        (i, route, sigma, rate_weight))
  in
  (* Scale rates so the most loaded server hits the target utilization. *)
  let load = Hashtbl.create 16 in
  List.iter
    (fun (_, route, _, w) ->
      List.iter
        (fun sid ->
          Hashtbl.replace load sid
            (w +. try Hashtbl.find load sid with Not_found -> 0.))
        route)
    raw;
  (* The binding constraint is relative to each server's own rate. *)
  let max_load =
    Hashtbl.fold
      (fun sid v acc -> Float.max (v /. Hashtbl.find rates sid) acc)
      load 0.
  in
  let scale = p.utilization /. max_load in
  let flows =
    List.map
      (fun (i, route, sigma, w) ->
        let rho = w *. scale in
        let peak = Float.max p.peak rho in
        Flow.make ~id:i ~arrival:(Arrival.token_bucket ~peak ~sigma ~rho ())
          ~route ())
      raw
  in
  Network.make ~servers ~flows

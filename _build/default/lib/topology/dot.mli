(** Graphviz export of the routing graph, for documentation and
    debugging. *)

val to_dot : Network.t -> string
(** A [digraph] whose nodes are servers (labeled with name, rate and
    utilization) and whose edges are the consecutive-hop pairs, labeled
    with the number of flows riding them. *)

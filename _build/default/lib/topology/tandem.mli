(** The evaluation topology of the paper (Fig. 3): a tandem of [n] 3x3
    switches.

    Servers (all FIFO, rate 1):
    - ids [0 .. n-1]: the middle output ports ("mid_out_k"), the chain
      Connection 0 rides end to end;
    - ids [n .. 2n-1]: the upper exit ports used by the 2-hop cross
      sessions [A_k];
    - ids [2n .. 3n-1]: the lower exit ports used by the 3-hop cross
      sessions [B_k].

    Flows ([2n + 1] of them, paper Sec. 4.1):
    - flow 0 ("conn0"): route [0; 1; ...; n-1];
    - [A_k] (flow id [2k+1]): enters switch [k], one middle hop, exits
      via its upper exit port — route [\[k; n+k\]];
    - [B_k] (flow id [2k+2]): enters switch [k], two middle hops (one at
      the tail of the chain), exits via its lower exit port — route
      [\[k; k+1; 2n+k\]] (clamped to [\[n-1; 2n+k\]] for [k = n-1]).

    This reproduces the paper's invariant that every middle output port
    except the first carries exactly four connections (Connection 0,
    [A_j], [B_j], [B_(j-1)]), so with per-source rate [rho = U/4] the
    internal links run at utilization [U].

    Every source is a token bucket with burst [sigma] (default 1) and
    peak rate equal to the link rate (default 1), exactly Eq. (4). *)

type t = {
  network : Network.t;
  conn0 : Flow.t;         (** the longest connection, whose delay the
                              evaluation reports *)
  n : int;
  mid_servers : int list; (** ids [0 .. n-1] in order *)
}

val make :
  n:int ->
  utilization:float ->
  ?sigma:float ->
  ?peak:float ->
  ?discipline:Discipline.t ->
  unit ->
  t
(** [n >= 2]; [utilization] in (0, 1) is the internal-link load [U]
    (per-source rate is [U / 4]).  [sigma] defaults to [1.]; [peak] to
    [1.] (pass [infinity] for classic unclipped token buckets).
    [discipline] (default FIFO) applies to every server; flows carry
    fixed priorities for static-priority experiments: the short [A_k]
    sessions are urgent (0), Connection 0 is middle (1), the [B_k]
    sessions are background (2).
    @raise Invalid_argument on out-of-range parameters. *)

val cross_flows : t -> Flow.t list
(** All flows except [conn0]. *)

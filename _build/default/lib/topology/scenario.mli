(** A small plain-text format for describing networks, so scenarios can
    live in files and be fed to the CLI.

    Grammar (one declaration per line; [#] starts a comment):

    {v
    server <id> rate=<float> [disc=fifo|sp|edf|gps] [name=<string>]
    flow <id> sigma=<float> rho=<float> route=<id,id,...>
         [peak=<float>] [deadline=<float>] [priority=<int>]
         [weight=<float>] [name=<string>]
    v}

    Example:

    {v
    # two switches, one video flow and one cross flow
    server 0 rate=1
    server 1 rate=1
    flow 0 sigma=1 rho=0.15 peak=1 route=0,1 name=video deadline=9
    flow 1 sigma=1 rho=0.2  peak=1 route=0   name=cross
    v} *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse : string -> Network.t
(** Parse a scenario from its textual content.
    @raise Parse_error on malformed input (including the errors
    {!Network.make} would raise, tagged with the offending line). *)

val load : string -> Network.t
(** Read and {!parse} a file.  @raise Sys_error on I/O failure. *)

val to_string : Network.t -> string
(** Render a network in the same format; [parse (to_string net)]
    reconstructs an equivalent network (round-trip tested).
    Limitations: names must not contain whitespace, and arrival curves
    are serialized through {!Arrival.token_params}, so multi-bucket
    envelopes degrade to their single-token-bucket description. *)

val save : string -> Network.t -> unit

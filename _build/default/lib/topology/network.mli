(** A network of servers together with the flows that traverse it.

    The analyses in this library require {e feedforward} routing: the
    directed graph whose edges are the consecutive server pairs of all
    routes must be acyclic (the paper, Sec. 5, explicitly restricts the
    integrated method to cycle-free configurations). *)

type t

exception Cyclic
(** Raised by {!topological_order} when the routing graph has a cycle. *)

val make : servers:Server.t list -> flows:Flow.t list -> t
(** @raise Invalid_argument on duplicate server ids or a flow whose
    route mentions an unknown server. *)

val server : t -> int -> Server.t
(** @raise Not_found for an unknown id. *)

val servers : t -> Server.t list
(** In increasing id order. *)

val flows : t -> Flow.t list
val flow : t -> int -> Flow.t
val size : t -> int

val flows_at : t -> int -> Flow.t list
(** All flows whose route contains the server, in flow-id order. *)

val edges : t -> (int * int) list
(** Deduplicated consecutive route pairs, the routing DAG. *)

val topological_order : t -> int list
(** Every server id (including isolated ones), sources first.
    @raise Cyclic when the routing graph is not feedforward. *)

val is_feedforward : t -> bool

val utilization : t -> int -> float
(** Long-run input rate at a server divided by its service rate. *)

val max_utilization : t -> float
(** Maximum {!utilization} over all servers. *)

val stable : t -> bool
(** [max_utilization < 1] (within tolerance) — the condition for finite
    delay bounds everywhere. *)

val with_flows : t -> Flow.t list -> t
(** Same servers, different flow population (used by admission
    control). *)

val pp : Format.formatter -> t -> unit

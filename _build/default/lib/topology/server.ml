type t = { id : int; name : string; rate : float; discipline : Discipline.t }

let make ~id ?name ~rate ?(discipline = Discipline.Fifo) () =
  if rate <= 0. then invalid_arg "Server.make: rate <= 0";
  if id < 0 then invalid_arg "Server.make: negative id";
  let name = match name with Some n -> n | None -> "s" ^ string_of_int id in
  { id; name; rate; discipline }

let pp ppf s =
  Format.fprintf ppf "%s(id=%d, C=%g, %a)" s.name s.id s.rate Discipline.pp
    s.discipline

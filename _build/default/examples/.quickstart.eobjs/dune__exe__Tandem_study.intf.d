examples/tandem_study.mli:

examples/feedback_ring.mli:

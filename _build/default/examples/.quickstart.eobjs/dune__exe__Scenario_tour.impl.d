examples/scenario_tour.ml: Decomposed Filename Flow Format Integrated Integrated_sp List Network Pairing Report Scenario Table

examples/admission_control.ml: Admission Arrival Engine Flow List Network Pairing Printf Table Tandem

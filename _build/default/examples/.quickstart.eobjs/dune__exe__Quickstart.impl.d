examples/quickstart.ml: Arrival Engine Flow Format Network Pairing Printf Server

examples/feedback_ring.ml: Fixed_point Float List Printf Ring Sim Sweep Table Validate

examples/stress_validation.ml: Decomposed Fluid Integrated List Pairing Printf Randomnet

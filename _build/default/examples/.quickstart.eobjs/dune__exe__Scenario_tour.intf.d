examples/scenario_tour.mli:

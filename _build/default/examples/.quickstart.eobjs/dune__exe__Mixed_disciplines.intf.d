examples/mixed_disciplines.mli:

examples/quickstart.mli:

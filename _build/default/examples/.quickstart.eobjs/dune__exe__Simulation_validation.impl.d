examples/simulation_validation.ml: Decomposed Float Flow Integrated List Network Pairing Printf Service_curve_method Sim Table Tandem Validate

examples/stress_validation.mli:

examples/tandem_study.ml: Engine List Pairing Printf Sweep Table Tandem

examples/mixed_disciplines.ml: Arrival Decomposed Discipline Flow List Network Option Printf Server String Table

(* Beyond FIFO: the decomposition engine also analyzes networks that
   mix static-priority, EDF and GPS servers — the substrate disciplines
   the paper surveys in its introduction.

   An industrial control network: a backbone switch (static priority)
   feeds either a GPS-scheduled wireless gateway or an EDF field bus.
   Control traffic is urgent, telemetry is background.

   Run with:  dune exec examples/mixed_disciplines.exe *)

let () =
  let servers =
    [
      Server.make ~id:0 ~name:"backbone"
        ~discipline:Discipline.Static_priority ~rate:1. ();
      Server.make ~id:1 ~name:"wireless-gw" ~discipline:Discipline.Gps
        ~rate:0.6 ();
      Server.make ~id:2 ~name:"field-bus" ~discipline:Discipline.Edf
        ~rate:0.4 ();
    ]
  in
  let control =
    Flow.make ~id:0 ~name:"control"
      ~arrival:(Arrival.token_bucket ~sigma:0.2 ~rho:0.05 ())
      ~route:[ 0; 2 ] ~priority:0 ~deadline:4. ~weight:2. ()
  in
  let telemetry =
    Flow.make ~id:1 ~name:"telemetry"
      ~arrival:(Arrival.token_bucket ~sigma:1. ~rho:0.15 ())
      ~route:[ 0; 1 ] ~priority:2 ~deadline:40. ~weight:1. ()
  in
  let video =
    Flow.make ~id:2 ~name:"video"
      ~arrival:(Arrival.token_bucket ~sigma:0.8 ~rho:0.2 ())
      ~route:[ 0; 1 ] ~priority:1 ~deadline:30. ~weight:3. ()
  in
  let sensor =
    Flow.make ~id:3 ~name:"sensor"
      ~arrival:(Arrival.token_bucket ~sigma:0.3 ~rho:0.08 ())
      ~route:[ 2 ] ~priority:0 ~deadline:6. ()
  in
  let net =
    Network.make ~servers ~flows:[ control; telemetry; video; sensor ]
  in
  let a = Decomposed.analyze net in
  Printf.printf "Mixed-discipline control network (Decomposed analysis):\n\n";
  let tbl =
    Table.create ~header:[ "flow"; "route"; "bound"; "deadline"; "ok" ]
  in
  List.iter
    (fun (f : Flow.t) ->
      let d = Decomposed.flow_delay a f.id in
      let dl = Option.value f.deadline ~default:infinity in
      Table.add_row tbl
        [
          f.name;
          String.concat "->"
            (List.map (fun s -> (Network.server net s).Server.name) f.route);
          Table.float_cell d;
          Table.float_cell dl;
          (if d <= dl then "yes" else "NO");
        ])
    (Network.flows net);
  Table.print tbl;
  (* Per-hop detail for the control flow. *)
  Printf.printf "\nControl flow per-hop bounds:\n";
  List.iter
    (fun sid ->
      Printf.printf "  %-12s %.3f\n" (Network.server net sid).Server.name
        (Decomposed.local_delay a ~flow:control.id ~server:sid))
    control.route

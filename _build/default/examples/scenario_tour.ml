(* Load the shipped scenario files, print full reports, and exercise
   the static-priority integrated engine on the plant network.

   Run with:  dune exec examples/scenario_tour.exe
   (paths are relative to the repository root)            *)

let scenario name = Filename.concat "examples/scenarios" name

let () =
  (* 1. The campus backbone: FIFO, analyzed with the full report. *)
  let campus = Scenario.load (scenario "campus.scn") in
  print_string (Report.decomposed (Decomposed.analyze campus));
  print_newline ();
  print_string
    (Report.integrated (Integrated.analyze ~strategy:Pairing.Greedy campus));
  print_newline ();

  (* 2. The industrial plant: homogeneous static-priority servers. *)
  let plant = Scenario.load (scenario "priority_plant.scn") in
  Format.printf "%a@.@." Network.pp plant;
  let dd = Decomposed.analyze plant in
  let sp = Integrated_sp.analyze ~strategy:Pairing.Greedy plant in
  let tbl =
    Table.create
      ~header:[ "flow"; "prio"; "deadline"; "SP-decomposed"; "SP-integrated"; "ok" ]
  in
  List.iter
    (fun (f : Flow.t) ->
      let d = Decomposed.flow_delay dd f.id in
      let i = Integrated_sp.flow_delay sp f.id in
      Table.add_row tbl
        [
          f.name;
          string_of_int f.priority;
          (match f.deadline with Some d -> Table.float_cell d | None -> "-");
          Table.float_cell d;
          Table.float_cell i;
          (match f.deadline with
          | Some dl -> if i <= dl then "yes" else "NO"
          | None -> "-");
        ])
    (Network.flows plant);
  Table.print tbl;
  print_endline
    "\nThe control loops (priority 0) meet their deadlines with large \
     margins; the\nintegrated SP bounds are tighter than the per-server \
     decomposition for every\nclass."

(* Soundness stress sweep: random heterogeneous-rate feedforward
   networks, phase-randomized exact fluid scenarios, every bound of
   every flow checked with zero allowance.

   This is a scaled-down version of the 15,000-network campaign used
   during development (crank up SEEDS_PER_SIZE to reproduce it); any
   violation printed here is a soundness bug.

   Run with:  dune exec examples/stress_validation.exe *)

let seeds_per_size = 60

let () =
  let scenarios = ref 0 and checks = ref 0 and violations = ref 0 in
  for num_flows = 2 to 5 do
    for seed = 0 to seeds_per_size - 1 do
      let net =
        Randomnet.generate
          {
            Randomnet.default with
            layers = 3;
            num_flows;
            seed;
            utilization = 0.7;
            rate_spread = 0.45;
            peak = infinity;
          }
      in
      incr scenarios;
      let integ = Integrated.analyze ~strategy:Pairing.Greedy net in
      let dd = Decomposed.analyze net in
      let observed = Fluid.phase_search ~tries:3 ~seed net in
      List.iter
        (fun (id, obs) ->
          incr checks;
          let di = Integrated.flow_delay integ id in
          let d = Decomposed.flow_delay dd id in
          if obs > di +. 1e-6 || obs > d +. 1e-6 then begin
            incr violations;
            Printf.printf
              "VIOLATION flows=%d seed=%d flow=%d observed=%.6f D_I=%.6f \
               D_D=%.6f\n"
              num_flows seed id obs di d
          end)
        observed
    done
  done;
  Printf.printf
    "%d networks, %d exact-fluid bound checks (3 phase draws each): %d \
     violation(s).\n"
    !scenarios !checks !violations;
  if !violations = 0 then
    print_endline
      "Every Integrated and Decomposed bound dominates every observed \
       exactly-conforming scenario, with zero tolerance granted."

(* Quickstart: build a three-switch network by hand, attach flows, and
   compare the three delay analyses of the paper on it.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* Three FIFO output ports, unit rate (times are in units of
     burst-transmission time). *)
  let servers =
    [
      Server.make ~id:0 ~name:"sw1" ~rate:1. ();
      Server.make ~id:1 ~name:"sw2" ~rate:1. ();
      Server.make ~id:2 ~name:"sw3" ~rate:1. ();
    ]
  in
  (* A video flow crossing all three switches, and two cross flows.
     Sources are token buckets with peak rate 1 (paper Eq. 4). *)
  let video =
    Flow.make ~id:0 ~name:"video"
      ~arrival:(Arrival.paper_source ~sigma:1. ~rho:0.15)
      ~route:[ 0; 1; 2 ] ()
  in
  let cross1 =
    Flow.make ~id:1 ~name:"cross1"
      ~arrival:(Arrival.paper_source ~sigma:1. ~rho:0.2)
      ~route:[ 0; 1 ] ()
  in
  let cross2 =
    Flow.make ~id:2 ~name:"cross2"
      ~arrival:(Arrival.paper_source ~sigma:1. ~rho:0.2)
      ~route:[ 1; 2 ] ()
  in
  let net = Network.make ~servers ~flows:[ video; cross1; cross2 ] in

  Format.printf "%a@.@." Network.pp net;

  (* The three analyses.  Integrated pairs the switches along the
     video flow's route, as the paper does for its tandem. *)
  let comparison =
    Engine.compare_all ~strategy:(Pairing.Along_route video.id) net video.id
  in
  Printf.printf "End-to-end delay bounds for the video flow:\n";
  Printf.printf "  Algorithm Decomposed     %.3f\n" comparison.decomposed;
  Printf.printf "  Algorithm Service Curve  %.3f\n" comparison.service_curve;
  Printf.printf "  Algorithm Integrated     %.3f\n" comparison.integrated;
  Printf.printf "  FIFO-theta (extension)   %.3f\n" comparison.fifo_theta;
  Printf.printf "\nIntegrated improves on Decomposed by %.1f%%\n"
    (100.
    *. Engine.relative_improvement comparison.decomposed comparison.integrated)

(* Validate every analysis method against a packet-level simulation of
   the tandem under greedy (worst-case-seeking) sources.

   Bounds are computed for fluid traffic; the simulator is packetized
   and store-and-forward, so sources are peak-free and the classical
   packetization allowance (sum of L/C along the route) is granted —
   see Validate.  Any negative slack would be a soundness bug.

   Run with:  dune exec examples/simulation_validation.exe *)

let () =
  let n = 4 and u = 0.8 in
  let t = Tandem.make ~n ~utilization:u ~peak:infinity () in
  let net = t.network in
  let config = { Sim.default_config with packet_size = 0.2; horizon = 500. } in
  let methods =
    [
      ("Decomposed", Decomposed.all_flow_delays (Decomposed.analyze net));
      ( "Service Curve",
        Service_curve_method.all_flow_delays
          (Service_curve_method.analyze net) );
      ( "Integrated",
        Integrated.all_flow_delays
          (Integrated.analyze ~strategy:(Pairing.Along_route 0) net) );
    ]
  in
  Printf.printf
    "Tandem n = %d at U = %g, greedy peak-free sources, packets of %g.\n\n"
    n u config.packet_size;
  let tbl =
    Table.create
      ~header:
        [ "flow"; "observed"; "D_D"; "D_SC"; "D_I"; "min slack" ]
  in
  let reports =
    List.map (fun (_, bounds) -> Validate.check ~config ~bounds net) methods
  in
  let all_ok = ref true in
  List.iteri
    (fun i (f : Flow.t) ->
      let row = List.map (fun rs -> List.nth rs i) reports in
      let observed = (List.hd row).Validate.observed in
      let min_slack =
        List.fold_left
          (fun acc (r : Validate.report) -> Float.min acc r.slack)
          infinity row
      in
      if min_slack < -1e-6 then all_ok := false;
      Table.add_row tbl
        ([ f.name; Table.float_cell observed ]
        @ List.map
            (fun (r : Validate.report) -> Table.float_cell r.bound)
            row
        @ [ Table.float_cell min_slack ]))
    (Network.flows net);
  Table.print tbl;
  Printf.printf "\n%s\n"
    (if !all_ok then
       "All bounds dominate the observed worst case (as they must)."
     else "*** SOUNDNESS VIOLATION DETECTED ***")

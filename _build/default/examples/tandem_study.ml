(* The paper's evaluation scenario in miniature: sweep the load of the
   Fig. 3 tandem and watch how the three methods diverge (Figs. 4-6).

   Run with:  dune exec examples/tandem_study.exe *)

let () =
  List.iter
    (fun n ->
      Printf.printf "=== Tandem of %d switches ===\n\n" n;
      let tbl =
        Table.create
          ~header:
            [ "U"; "D_D"; "D_SC"; "D_I"; "R(D,I)"; "R(SC,I)" ]
      in
      List.iter
        (fun u ->
          let t = Tandem.make ~n ~utilization:u () in
          let c =
            Engine.compare_all ~with_theta:false
              ~strategy:(Pairing.Along_route 0) t.network 0
          in
          Table.add_floats tbl
            [
              u;
              c.decomposed;
              c.service_curve;
              c.integrated;
              Engine.relative_improvement c.decomposed c.integrated;
              Engine.relative_improvement c.service_curve c.integrated;
            ])
        (Sweep.steps ~lo:0.1 ~hi:0.9 ~step:0.2);
      Table.print tbl;
      print_newline ())
    [ 2; 4; 8 ];
  print_endline
    "Shapes to notice (cf. the paper's Figures 4-6):\n\
    \  - D_SC explodes as U -> 1 (the induced FIFO service curve's rate\n\
    \    collapses), while D_D grows slowly;\n\
    \  - D_I < D_D at every point, and the relative improvement R(D,I)\n\
    \    grows with the network size;\n\
    \  - R(SC,I) is large everywhere, shrinking only for big, heavily\n\
    \    loaded systems."

(* Feedback effects in cyclic networks — the configuration the paper's
   Sec. 5 excludes from Algorithm Integrated and handles by fixed-point
   iteration in the authors' companion stability work.

   A ring of FIFO servers where every flow rides several hops: each
   server's delay inflates the bursts feeding the next, all the way
   around and back.  Below a load threshold the burst iteration
   converges to finite bounds; above it the decomposition fixed point
   blows up even though every server is individually underloaded.  For
   the symmetric ring the linearized burst recursion has spectral
   radius U (hops - 1) / 2, so with 4 hops the threshold sits near
   U = 2/3 — far below the per-server limit of 1.

   Run with:  dune exec examples/feedback_ring.exe *)

let () =
  let n = 6 and hops = 4 in
  Printf.printf "Ring of %d rate-1 FIFO servers, each flow rides %d hops.\n\n"
    n hops;
  let tbl =
    Table.create ~header:[ "U"; "converged"; "iterations"; "bound" ]
  in
  let threshold = ref None in
  List.iter
    (fun u ->
      let r = Ring.make ~n ~hops ~utilization:u () in
      let fp = Fixed_point.analyze ~max_iter:400 r.network in
      if (not (Fixed_point.converged fp)) && !threshold = None then
        threshold := Some u;
      Table.add_row tbl
        [
          Table.float_cell u;
          string_of_bool (Fixed_point.converged fp);
          string_of_int (Fixed_point.iterations fp);
          Table.float_cell (Fixed_point.flow_delay fp 0);
        ])
    (Sweep.steps ~lo:0.1 ~hi:0.95 ~step:0.05);
  Table.print tbl;
  (match !threshold with
  | Some u ->
      Printf.printf
        "\nThe fixed point first diverges near U = %.2f — far below the \
         per-server\nstability limit of 1: that is the feedback effect.\n"
        u
  | None -> print_endline "\nConverged everywhere (threshold above 0.95).");
  (* Validate a converged point against the simulator. *)
  let r = Ring.make ~n ~hops ~utilization:0.4 () in
  let fp = Fixed_point.analyze r.network in
  let reports =
    Validate.check
      ~config:{ Sim.default_config with packet_size = 0.2; horizon = 400. }
      ~bounds:(Fixed_point.all_flow_delays fp)
      r.network
  in
  let worst =
    List.fold_left
      (fun acc (r : Validate.report) -> Float.min acc r.slack)
      infinity reports
  in
  Printf.printf
    "\nSimulation check at U = 0.40: worst slack %.3f (positive = all \
     bounds hold).\n"
    worst

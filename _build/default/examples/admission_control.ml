(* Admission control for a video-conferencing service — the application
   the paper motivates its analysis with.

   A provider runs the Fig. 3 tandem as its backbone at a base load and
   receives a stream of conference requests, each needing an end-to-end
   deadline across the whole chain.  The CAC admits a request only when
   the chosen delay analysis can prove every admitted connection's
   bound.  A tighter analysis therefore monetizes directly as admitted
   connections.

   Run with:  dune exec examples/admission_control.exe *)

let () =
  let n = 4 in
  let base_load = 0.4 in
  let deadline = 20. in
  let t = Tandem.make ~n ~utilization:base_load () in
  let servers = Network.servers t.network in
  let base = Network.flows t.network in
  (* 12 conference requests, each a (sigma = 1, rho = 0.03) stream over
     the whole chain with a 20-time-unit deadline. *)
  let candidates =
    List.init 12 (fun i ->
        Flow.make ~id:(1000 + i)
          ~name:(Printf.sprintf "conf%d" i)
          ~arrival:(Arrival.paper_source ~sigma:1. ~rho:0.03)
          ~route:(List.init n (fun k -> k))
          ~deadline ())
  in
  Printf.printf
    "Backbone: tandem of %d switches at base load %g; %d conference\n\
     requests with end-to-end deadline %g.\n\n"
    n base_load (List.length candidates) deadline;
  let tbl =
    Table.create
      ~header:[ "analysis"; "admitted"; "admitted rate"; "backbone util" ]
  in
  List.iter
    (fun method_ ->
      let outcome =
        Admission.run ~servers ~base ~candidates ~method_
          ~strategy:(Pairing.Along_route 0) ()
      in
      let net_after =
        Network.make ~servers ~flows:(base @ outcome.admitted)
      in
      Table.add_row tbl
        [
          Engine.method_name method_;
          string_of_int (List.length outcome.admitted);
          Table.float_cell outcome.admitted_rate;
          Table.float_cell (Network.max_utilization net_after);
        ])
    [ Engine.Service_curve; Engine.Decomposed; Engine.Integrated ];
  Table.print tbl;
  print_endline
    "\nThe integrated analysis proves tighter bounds, so the same plant\n\
     carries more deadline-guaranteed connections (the paper's Sec. 1\n\
     utilization argument)."

(** Graphviz export of the routing graph, for documentation and
    debugging.

    Nodes are servers (labeled with name, rate and utilization), edges
    the consecutive-hop pairs labeled with the number of flows riding
    them.  Edge counts come from a single pass over the flows, so the
    export is O(servers + hops) however large the network. *)

val output_net : out_channel -> Network.t -> unit
(** Stream the digraph to a channel without materializing it — the
    right entry point for corpus-scale networks. *)

val to_dot : Network.t -> string
(** The digraph as a string (small networks / tests). *)

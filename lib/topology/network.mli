(** A network of servers together with the flows that traverse it.

    The analyses in this library require {e feedforward} routing: the
    directed graph whose edges are the consecutive server pairs of all
    routes must be acyclic (the paper, Sec. 5, explicitly restricts the
    integrated method to cycle-free configurations). *)

type t

exception Cyclic
(** Raised by {!topological_order} when the routing graph has a cycle. *)

val make : servers:Server.t list -> flows:Flow.t list -> t
(** @raise Invalid_argument on duplicate server ids or a flow whose
    route mentions an unknown server. *)

val server : t -> int -> Server.t
(** @raise Invalid_argument for an unknown id (a descriptive error
    rather than an ambient [Not_found], so a bad id surfaces with
    context even when the lookup happens on a [Par] worker). *)

val servers : t -> Server.t list
(** In increasing id order. *)

val flows : t -> Flow.t list

val flow : t -> int -> Flow.t
(** @raise Invalid_argument for an unknown id. *)

val flow_opt : t -> int -> Flow.t option
(** [None] for an unknown id: for callers that treat absence as data
    (the serve teardown path) rather than as a usage error. *)

val size : t -> int

val flows_at : t -> int -> Flow.t list
(** All flows whose route contains the server, in flow-list order.
    Served from an index built once in {!make}, so it is O(1) — the
    analyses call it once per server per pass, and a list filter here
    used to dominate everything past a few hundred servers. *)

val edges : t -> (int * int) list
(** Deduplicated consecutive route pairs, the routing DAG,
    lexicographically sorted. *)

val successors : t -> int -> int list
(** Deduplicated routing-DAG successors of a server, ascending. *)

val total_hop_count : t -> int
(** Sum of route lengths over all flows — the number of
    [(flow, server)] pairs a table-based propagation materializes. *)

val topological_order : t -> int list
(** Every server id (including isolated ones), sources first.
    @raise Cyclic when the routing graph is not feedforward. *)

val levels : t -> int list list
(** Antichain decomposition of the routing DAG: level 0 is the
    zero-indegree servers (plus isolated ones) and every edge goes from
    a strictly lower level to a strictly higher one, so no two servers
    of a level depend on each other — the unit of parallel sharding in
    the streaming propagation engine.  Levels are the longest-path
    layering; each level is sorted ascending.  O(V + E).
    @raise Cyclic when the routing graph is not feedforward. *)

val widest_antichain : t -> int
(** Size of the largest {!levels} entry — the bound on how many servers
    are ever analyzed concurrently, and the yardstick for the streaming
    engine's peak frontier. *)

val is_feedforward : t -> bool

val utilization : t -> int -> float
(** Long-run input rate at a server divided by its service rate. *)

val max_utilization : t -> float
(** Maximum {!utilization} over all servers. *)

val stable : t -> bool
(** [max_utilization < 1] (within tolerance) — the condition for finite
    delay bounds everywhere. *)

val with_flows : t -> Flow.t list -> t
(** Same servers, different flow population (used by admission
    control). *)

val restrict : t -> flow_ids:int list -> t
(** Induced sub-network: exactly the given flows (unknown ids are
    ignored) and the servers their routes visit.  Used to sample a
    simulable slice of a generated massive topology for
    cross-validation — note the sample drops the cross traffic, so its
    bounds are for the sub-network, not the original. *)

val pp : Format.formatter -> t -> unit

module Int_map = Map.Make (Int)

type t = {
  servers : Server.t Int_map.t;
  flow_list : Flow.t list;
  flow_map : Flow.t Int_map.t;
  (* Eager incidence index, built once in [make]: the analyses query
     [flows_at] once per server per pass, and the O(flows) list filter
     it used to be dominates everything past a few hundred servers. *)
  by_server : Flow.t list Int_map.t;
  (* Routing-DAG adjacency (deduplicated successors, ascending), the
     one-pass replacement for filtering the global edge list. *)
  succ_map : int list Int_map.t;
}

exception Cyclic

let make ~servers ~flows =
  let server_map =
    List.fold_left
      (fun acc (s : Server.t) ->
        if Int_map.mem s.id acc then
          invalid_arg
            (Printf.sprintf "Network.make: duplicate server id %d" s.id)
        else Int_map.add s.id s acc)
      Int_map.empty servers
  in
  List.iter
    (fun (f : Flow.t) ->
      List.iter
        (fun sid ->
          if not (Int_map.mem sid server_map) then
            invalid_arg
              (Printf.sprintf "Network.make: flow %s routes via unknown server %d"
                 f.name sid))
        f.route)
    flows;
  let flow_map =
    List.fold_left
      (fun acc (f : Flow.t) ->
        if Int_map.mem f.id acc then
          invalid_arg (Printf.sprintf "Network.make: duplicate flow id %d" f.id)
        else Int_map.add f.id f acc)
      Int_map.empty flows
  in
  (* One pass over all routes builds both indices.  Accumulate reversed
     (cons is O(1)), then flip so [flows_at] preserves [flow_list]
     order and successors come out ascending and deduplicated. *)
  let by_server_rev = Hashtbl.create (max 16 (Int_map.cardinal server_map)) in
  let succ_sets = Hashtbl.create (max 16 (Int_map.cardinal server_map)) in
  List.iter
    (fun (f : Flow.t) ->
      List.iter
        (fun sid ->
          let cur = try Hashtbl.find by_server_rev sid with Not_found -> [] in
          Hashtbl.replace by_server_rev sid (f :: cur))
        f.route;
      List.iter
        (fun (a, b) ->
          let cur = try Hashtbl.find succ_sets a with Not_found -> [] in
          Hashtbl.replace succ_sets a (b :: cur))
        (Flow.hop_pairs f))
    flows;
  let by_server =
    Hashtbl.fold
      (fun sid fs acc -> Int_map.add sid (List.rev fs) acc)
      by_server_rev Int_map.empty
  in
  let succ_map =
    Hashtbl.fold
      (fun sid ss acc -> Int_map.add sid (List.sort_uniq compare ss) acc)
      succ_sets Int_map.empty
  in
  { servers = server_map; flow_list = flows; flow_map; by_server; succ_map }

let server net id =
  match Int_map.find_opt id net.servers with
  | Some s -> s
  | None ->
      invalid_arg (Printf.sprintf "Network.server: unknown server id %d" id)

let servers net = List.map snd (Int_map.bindings net.servers)
let flows net = net.flow_list

let flow_opt net id = Int_map.find_opt id net.flow_map

let flow net id =
  match flow_opt net id with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Network.flow: unknown flow id %d" id)

let size net = Int_map.cardinal net.servers

let flows_at net sid =
  match Int_map.find_opt sid net.by_server with Some fs -> fs | None -> []

let successors net sid =
  match Int_map.find_opt sid net.succ_map with Some ss -> ss | None -> []

let edges net =
  (* succ_map iterates in ascending source order with ascending
     successor lists, so this is already the lexicographically sorted,
     deduplicated edge list the old sort_uniq produced. *)
  Int_map.fold
    (fun src succs acc ->
      List.fold_left (fun acc dst -> (src, dst) :: acc) acc succs)
    net.succ_map []
  |> List.rev

let total_hop_count net =
  List.fold_left
    (fun acc (f : Flow.t) -> acc + List.length f.route)
    0 net.flow_list

let indegrees net =
  let indegree = Hashtbl.create (max 16 (size net)) in
  Int_map.iter (fun id _ -> Hashtbl.replace indegree id 0) net.servers;
  Int_map.iter
    (fun _ succs ->
      List.iter
        (fun dst -> Hashtbl.replace indegree dst (Hashtbl.find indegree dst + 1))
        succs)
    net.succ_map;
  indegree

let topological_order net =
  let indegree = indegrees net in
  let ready =
    Int_map.fold
      (fun id _ acc -> if Hashtbl.find indegree id = 0 then id :: acc else acc)
      net.servers []
    |> List.sort compare
  in
  let count = ref 0 in
  let rec kahn order = function
    | [] -> List.rev order
    | id :: rest ->
        incr count;
        let next =
          List.fold_left
            (fun acc succ ->
              let d = Hashtbl.find indegree succ - 1 in
              Hashtbl.replace indegree succ d;
              if d = 0 then succ :: acc else acc)
            [] (successors net id)
        in
        kahn (id :: order) (List.sort compare next @ rest)
  in
  let order = kahn [] ready in
  if !count <> size net then raise Cyclic else order

let levels net =
  (* Longest-path layering: level 0 is the sources, and every edge goes
     from a strictly lower level to a strictly higher one, so each
     level is an antichain of the routing DAG.  A node becomes ready in
     the Kahn wave after its last predecessor's, so the waves are
     exactly the longest-path levels; one pass, O(V + E). *)
  let indegree = indegrees net in
  let ready =
    Int_map.fold
      (fun id _ acc -> if Hashtbl.find indegree id = 0 then id :: acc else acc)
      net.servers []
    |> List.sort compare
  in
  let count = ref 0 in
  let rec walk acc = function
    | [] -> List.rev acc
    | frontier ->
        count := !count + List.length frontier;
        let next =
          List.fold_left
            (fun acc id ->
              List.fold_left
                (fun acc succ ->
                  let d = Hashtbl.find indegree succ - 1 in
                  Hashtbl.replace indegree succ d;
                  if d = 0 then succ :: acc else acc)
                acc (successors net id))
            [] frontier
          |> List.sort compare
        in
        walk (frontier :: acc) next
  in
  let ls = walk [] ready in
  if !count <> size net then raise Cyclic else ls

let widest_antichain net =
  List.fold_left (fun acc l -> max acc (List.length l)) 0 (levels net)

let is_feedforward net =
  match topological_order net with _ -> true | exception Cyclic -> false

let utilization net sid =
  let s = server net sid in
  let input_rate =
    List.fold_left (fun acc f -> acc +. Flow.rate f) 0. (flows_at net sid)
  in
  input_rate /. s.rate

let max_utilization net =
  Int_map.fold
    (fun id _ acc -> Float.max acc (utilization net id))
    net.servers 0.

let stable net =
  let open Float_ops in
  max_utilization net <~ 1.

let with_flows net flows = make ~servers:(servers net) ~flows

let restrict net ~flow_ids =
  let keep =
    List.filter_map
      (fun id -> Int_map.find_opt id net.flow_map)
      (List.sort_uniq compare flow_ids)
  in
  let wanted = Hashtbl.create 64 in
  List.iter
    (fun (f : Flow.t) ->
      List.iter (fun sid -> Hashtbl.replace wanted sid ()) f.route)
    keep;
  let sub_servers =
    List.filter (fun (s : Server.t) -> Hashtbl.mem wanted s.id) (servers net)
  in
  make ~servers:sub_servers ~flows:keep

let pp ppf net =
  Format.fprintf ppf "network: %d servers, %d flows, max util %.3f" (size net)
    (List.length net.flow_list) (max_utilization net)

(** Edge-cloud microservice chains with per-hop RTT and bandwidth
    (seeded, deterministic; after the mSvcBench netdelay template).

    Each edge site hosts a [tiers x per_tier] microservice chain and a
    bandwidth-limited uplink; a fraction of the flows are offloaded
    through the uplink into a shared cloud chain.  The analysis bounds
    queueing delay; wire latency is the additive per-flow constant
    [base_latency] ([hop_latency] per link, plus the edge-cloud [rtt]
    for offloaded flows). *)

type params = {
  sites : int;            (** edge datacenters *)
  tiers : int;            (** service-chain depth per site *)
  per_tier : int;         (** replicas per tier *)
  cloud_tiers : int;      (** shared cloud chain depth *)
  cloud_per_tier : int;
  offload_fraction : float;  (** fraction of flows continuing to the
                                 cloud, in [0, 1] *)
  bandwidth : float;      (** uplink server rate *)
  rtt : float;            (** edge-cloud round-trip wire latency *)
  hop_latency : float;    (** per-link wire latency *)
  num_flows : int;
  utilization : float;    (** target max utilization, in (0, 1) *)
  max_burst : float;
  peak : float;           (** source peak rate; [infinity] for none *)
  seed : int;
}

val default : params
(** 3 sites x (4 tiers x 2) + uplink, 3x4 cloud (39 servers),
    24 flows, 30% offload, utilization 0.6, seed 42. *)

type t = { net : Network.t; base_latency : (int * float) list }
(** The network plus each flow's additive wire latency. *)

val site_block : params -> int
(** Servers contributed by one edge site: [tiers * per_tier + 1]. *)

val size : params -> int
(** Number of servers [generate] will produce. *)

val generate : params -> t
(** All servers FIFO; uplinks run at [bandwidth], everything else at
    unit rate; source rates scaled to the target utilization
    ({!Genutil.scale_to_utilization}).  Feedforward by construction. *)

val total_latency : t -> queueing:float -> int -> float
(** [total_latency t ~queueing id] adds flow [id]'s wire latency to a
    queueing-delay bound.  @raise Invalid_argument on an unknown flow. *)

(** Shared machinery of the scenario-corpus generators.

    Every corpus family ({!Leaf_spine}, {!Fat_tree}, {!Edge_cloud},
    {!Heavytail}) draws raw routes and source parameters from a seeded
    [Random.State.t] and then rescales the source rates so the most
    loaded server sits exactly at the requested utilization — the same
    stability-by-construction scheme as {!Randomnet}.  This module
    holds the pieces they share. *)

val bounded_pareto :
  Random.State.t -> alpha:float -> lo:float -> hi:float -> float
(** Inverse-CDF draw of a Pareto([alpha]) variable starting at [lo],
    truncated at [hi] — heavy-tailed route lengths and service-chain
    depths without degenerate outliers.
    @raise Invalid_argument on [alpha <= 0] or a bad range. *)

val draw_sigma : Random.State.t -> max_burst:float -> float
(** Source burst drawn uniformly from [0.05, max_burst] (the
    {!Randomnet} convention). *)

val scale_to_utilization :
  rate_of:(int -> float) ->
  utilization:float ->
  peak:float ->
  (int * int list * float * float) list ->
  Flow.t list
(** [scale_to_utilization ~rate_of ~utilization ~peak raw] turns raw
    [(id, route, sigma, weight)] draws into flows whose long-run rates
    are the weights scaled by a common factor chosen so the most loaded
    server (relative to [rate_of] its id) sits exactly at
    [utilization].  [peak] caps each source's peak rate from below by
    its own [rho] ([infinity] for unpeaked sources).
    @raise Invalid_argument when [utilization] is outside (0, 1) or no
    route touches any server. *)

(* Edge-cloud microservice chains with per-hop RTT and bandwidth.

   Modeled after the mSvcBench netdelay template: a set of edge sites
   each hosting a microservice chain (tiers x per_tier replicas), a
   bandwidth-limited uplink per site, and a shared cloud cluster that
   a fraction of the requests are offloaded to.  A request either
   completes inside its site

     svc(t0) -> svc(t1) -> ... -> svc(t_last)

   or is offloaded after the local chain

     svc(t0) -> ... -> svc(t_last) -> uplink -> cloud(t0) -> ...

   Queueing delay is what the analysis bounds; propagation is an
   additive constant per flow, reported separately as [base_latency]:
   [hop_latency] per traversed link plus the edge-cloud [rtt] when the
   flow is offloaded (the netdelay split of delay into per-hop wire
   latency + bandwidth-dependent queueing).  The uplink server's rate
   is the site's [bandwidth], so offloaded traffic contends for it.

   Ids are assigned site block by site block (tiers in order, then the
   uplink), with the cloud block last — every route is strictly
   increasing, so the network is feedforward by construction. *)

type params = {
  sites : int;
  tiers : int;
  per_tier : int;
  cloud_tiers : int;
  cloud_per_tier : int;
  offload_fraction : float;
  bandwidth : float;
  rtt : float;
  hop_latency : float;
  num_flows : int;
  utilization : float;
  max_burst : float;
  peak : float;
  seed : int;
}

let default =
  {
    sites = 3;
    tiers = 4;
    per_tier = 2;
    cloud_tiers = 3;
    cloud_per_tier = 4;
    offload_fraction = 0.3;
    bandwidth = 2.;
    rtt = 20.;
    hop_latency = 0.5;
    num_flows = 24;
    utilization = 0.6;
    max_burst = 2.;
    peak = 1.;
    seed = 42;
  }

type t = { net : Network.t; base_latency : (int * float) list }

let site_block p = (p.tiers * p.per_tier) + 1
let size p = (p.sites * site_block p) + (p.cloud_tiers * p.cloud_per_tier)

let generate p =
  if p.sites < 1 then invalid_arg "Edge_cloud.generate: sites < 1";
  if p.tiers < 1 || p.per_tier < 1 then
    invalid_arg "Edge_cloud.generate: empty service chain";
  if p.cloud_tiers < 1 || p.cloud_per_tier < 1 then
    invalid_arg "Edge_cloud.generate: empty cloud";
  if p.offload_fraction < 0. || p.offload_fraction > 1. then
    invalid_arg "Edge_cloud.generate: offload_fraction outside [0, 1]";
  if p.bandwidth <= 0. then invalid_arg "Edge_cloud.generate: bandwidth <= 0";
  if p.num_flows < 1 then invalid_arg "Edge_cloud.generate: num_flows < 1";
  let rng = Random.State.make [| p.seed |] in
  let block = site_block p in
  let svc site tier pos = (site * block) + (tier * p.per_tier) + pos in
  let uplink site = (site * block) + (p.tiers * p.per_tier) in
  let cloud tier pos =
    (p.sites * block) + (tier * p.cloud_per_tier) + pos
  in
  let servers =
    List.concat
      (List.init p.sites (fun s ->
           List.concat
             (List.init p.tiers (fun t ->
                  List.init p.per_tier (fun i ->
                      Server.make ~id:(svc s t i)
                        ~name:(Printf.sprintf "site%d-t%d-%d" s t i)
                        ~rate:1. ())))
           @ [
               Server.make ~id:(uplink s)
                 ~name:(Printf.sprintf "site%d-uplink" s)
                 ~rate:p.bandwidth ();
             ]))
    @ List.concat
        (List.init p.cloud_tiers (fun t ->
             List.init p.cloud_per_tier (fun i ->
                 Server.make ~id:(cloud t i)
                   ~name:(Printf.sprintf "cloud-t%d-%d" t i)
                   ~rate:1. ())))
  in
  let raw_with_lat =
    List.init p.num_flows (fun i ->
        let s = Random.State.int rng p.sites in
        let local =
          List.init p.tiers (fun t -> svc s t (Random.State.int rng p.per_tier))
        in
        let offloaded = Random.State.float rng 1.0 < p.offload_fraction in
        let route =
          if not offloaded then local
          else
            local
            @ (uplink s
               :: List.init p.cloud_tiers (fun t ->
                      cloud t (Random.State.int rng p.cloud_per_tier)))
        in
        let sigma = Genutil.draw_sigma rng ~max_burst:p.max_burst in
        let w = Random.State.float rng 1.0 +. 0.1 in
        let base =
          (p.hop_latency *. float_of_int (List.length route - 1))
          +. if offloaded then p.rtt else 0.
        in
        ((i, route, sigma, w), (i, base)))
  in
  let raw = List.map fst raw_with_lat in
  let base_latency = List.map snd raw_with_lat in
  let rate_of =
    let up = Hashtbl.create 16 in
    List.init p.sites (fun s -> uplink s)
    |> List.iter (fun sid -> Hashtbl.replace up sid ());
    fun sid -> if Hashtbl.mem up sid then p.bandwidth else 1.
  in
  let flows =
    Genutil.scale_to_utilization ~rate_of ~utilization:p.utilization
      ~peak:p.peak raw
  in
  { net = Network.make ~servers ~flows; base_latency }

let total_latency t ~queueing flow_id =
  match List.assoc_opt flow_id t.base_latency with
  | Some base -> base +. queueing
  | None ->
      invalid_arg
        (Printf.sprintf "Edge_cloud.total_latency: unknown flow %d" flow_id)

(** Heavy-tailed random feedforward DAGs (seeded, deterministic).

    Servers are popularity-ranked; each route visits Zipf-sampled
    servers in ascending id order (feedforward for free) with
    bounded-Pareto route lengths.  A few hub servers carry a large
    share of the flows, most carry almost none — the hub-and-tail
    shape of real WANs and service meshes, and the adversarial case
    for frontier accounting: many antichain levels of wildly uneven
    width. *)

type params = {
  num_servers : int;   (** >= 2 *)
  num_flows : int;
  zipf_s : float;      (** popularity skew; 0 = uniform sampling *)
  alpha : float;       (** Pareto shape for route lengths *)
  max_route : int;     (** route-length cap, >= 2 *)
  utilization : float; (** target max utilization, in (0, 1) *)
  max_burst : float;
  peak : float;        (** source peak rate; [infinity] for none *)
  rate_spread : float; (** server rates uniform in [1-s, 1+s] *)
  seed : int;
}

val default : params
(** 40 servers, 60 flows, zipf 0.8, Pareto 1.3 routes capped at 8,
    utilization 0.6, seed 42. *)

val generate : params -> Network.t
(** All servers FIFO; source rates scaled to the target utilization
    ({!Genutil.scale_to_utilization}).  Feedforward by construction
    (routes are strictly ascending in server id). *)

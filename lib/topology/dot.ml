(* Graphviz export.  The writer pushes each line straight into a sink
   and computes the per-edge flow counts in a single pass over the
   flows, so dumping a corpus-scale network is O(servers + hops) time
   and O(edges) extra memory: streamed through a channel, no
   whole-graph string is ever accumulated, and no per-edge rescan of
   the flow population happens. *)

let write print net =
  print "digraph network {\n  rankdir=LR;\n";
  List.iter
    (fun (s : Server.t) ->
      print
        (Printf.sprintf "  %d [label=\"%s\\nC=%g u=%.2f\"];\n" s.id s.name
           s.rate
           (Network.utilization net s.id)))
    (Network.servers net);
  (* One pass over all hop pairs; the per-edge lookup below is O(1). *)
  let counts = Hashtbl.create 1024 in
  List.iter
    (fun f ->
      List.iter
        (fun pair ->
          Hashtbl.replace counts pair
            (1 + try Hashtbl.find counts pair with Not_found -> 0))
        (Flow.hop_pairs f))
    (Network.flows net);
  List.iter
    (fun (a, b) ->
      let n = try Hashtbl.find counts (a, b) with Not_found -> 0 in
      print (Printf.sprintf "  %d -> %d [label=\"%d\"];\n" a b n))
    (Network.edges net);
  print "}\n"

let output_net out net = write (output_string out) net

let to_dot net =
  let buf = Buffer.create 1024 in
  write (Buffer.add_string buf) net;
  Buffer.contents buf

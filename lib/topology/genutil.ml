(* Shared machinery of the scenario-corpus generators (Leaf_spine,
   Fat_tree, Edge_cloud, Heavytail): seeded draws and the
   load-to-utilization scaling every family performs.

   All generators are deterministic functions of their params record:
   every random draw goes through a [Random.State.t] seeded from
   [params.seed], so the same params produce the same network in any
   process, at any jobs count, on any platform with the same OCaml
   [Random] implementation — the property the corpus determinism tests
   pin. *)

let bounded_pareto rng ~alpha ~lo ~hi =
  (* Inverse-CDF draw of a Pareto(alpha) starting at [lo], truncated at
     [hi]: heavy-tailed but never degenerate. *)
  if alpha <= 0. then invalid_arg "Genutil.bounded_pareto: alpha <= 0";
  if lo <= 0. || hi < lo then invalid_arg "Genutil.bounded_pareto: bad bounds";
  let u = Random.State.float rng 1.0 in
  let u = Float.min u 0.999999 in
  Float.min hi (lo *. ((1. -. u) ** (-1. /. alpha)))

let draw_sigma rng ~max_burst =
  0.05 +. Random.State.float rng (Float.max 1e-3 (max_burst -. 0.05))

(* Build the flow population from raw (id, route, sigma, weight) draws:
   the long-run rate of flow i becomes [weight_i * scale], with [scale]
   chosen so the most loaded server (relative to its own rate) sits
   exactly at the target utilization.  Same scheme as Randomnet, shared
   so every corpus family is stable by construction. *)
let scale_to_utilization ~rate_of ~utilization ~peak raw =
  if utilization <= 0. || utilization >= 1. then
    invalid_arg "Genutil.scale_to_utilization: utilization must be in (0, 1)";
  let load = Hashtbl.create 1024 in
  List.iter
    (fun (_, route, _, w) ->
      List.iter
        (fun sid ->
          Hashtbl.replace load sid
            (w +. try Hashtbl.find load sid with Not_found -> 0.))
        route)
    raw;
  (* Sorted fold: float max is order-insensitive, but keep the
     iteration order pinned anyway (cheap, and lint-clean by
     construction). *)
  let max_load =
    Hashtbl.fold (fun sid v acc -> (sid, v) :: acc) load []
    |> List.sort compare
    |> List.fold_left
         (fun acc (sid, v) -> Float.max (v /. rate_of sid) acc)
         0.
  in
  if max_load <= 0. then
    invalid_arg "Genutil.scale_to_utilization: no load on any server";
  let scale = utilization /. max_load in
  List.map
    (fun (id, route, sigma, w) ->
      let rho = w *. scale in
      let peak = Float.max peak rho in
      Flow.make ~id ~arrival:(Arrival.token_bucket ~peak ~sigma ~rho ()) ~route
        ())
    raw

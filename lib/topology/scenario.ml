exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error (line, m))) fmt

let discipline_of_string line = function
  | "fifo" -> Discipline.Fifo
  | "sp" -> Discipline.Static_priority
  | "edf" -> Discipline.Edf
  | "gps" -> Discipline.Gps
  | s -> fail line "unknown discipline %S (want fifo|sp|edf|gps)" s

let discipline_to_string = function
  | Discipline.Fifo -> "fifo"
  | Discipline.Static_priority -> "sp"
  | Discipline.Edf -> "edf"
  | Discipline.Gps -> "gps"

(* Split "key=value" attributes; bare words are rejected. *)
let parse_attrs line words =
  List.map
    (fun w ->
      match String.index_opt w '=' with
      | Some i ->
          (String.sub w 0 i, String.sub w (i + 1) (String.length w - i - 1))
      | None -> fail line "expected key=value, got %S" w)
    words

let float_attr line key v =
  match (v, float_of_string_opt v) with
  | "inf", _ -> infinity
  | _, Some f -> f
  | _, None -> fail line "attribute %s: not a number: %S" key v

let int_attr line key v =
  match int_of_string_opt v with
  | Some i -> i
  | None -> fail line "attribute %s: not an integer: %S" key v

let lookup attrs key = List.assoc_opt key attrs

let require line attrs key =
  match lookup attrs key with
  | Some v -> v
  | None -> fail line "missing required attribute %s" key

let parse_server line = function
  | id :: rest ->
      let id =
        match int_of_string_opt id with
        | Some i -> i
        | None -> fail line "server id must be an integer, got %S" id
      in
      let attrs = parse_attrs line rest in
      let rate = float_attr line "rate" (require line attrs "rate") in
      let discipline =
        match lookup attrs "disc" with
        | Some d -> discipline_of_string line d
        | None -> Discipline.Fifo
      in
      let name = lookup attrs "name" in
      (try Server.make ~id ?name ~rate ~discipline ()
       with Invalid_argument m -> fail line "%s" m)
  | [] -> fail line "server: missing id"

let parse_flow line = function
  | id :: rest ->
      let id =
        match int_of_string_opt id with
        | Some i -> i
        | None -> fail line "flow id must be an integer, got %S" id
      in
      let attrs = parse_attrs line rest in
      let sigma = float_attr line "sigma" (require line attrs "sigma") in
      let rho = float_attr line "rho" (require line attrs "rho") in
      let peak =
        match lookup attrs "peak" with
        | Some v -> float_attr line "peak" v
        | None -> infinity
      in
      let route =
        require line attrs "route" |> String.split_on_char ','
        |> List.map (fun s ->
               match int_of_string_opt (String.trim s) with
               | Some i -> i
               | None -> fail line "route: not an integer: %S" s)
      in
      let deadline =
        Option.map (float_attr line "deadline") (lookup attrs "deadline")
      in
      let priority =
        Option.map (int_attr line "priority") (lookup attrs "priority")
      in
      let weight =
        Option.map (float_attr line "weight") (lookup attrs "weight")
      in
      let buffer =
        Option.map (float_attr line "buffer") (lookup attrs "buffer")
      in
      let name = lookup attrs "name" in
      (try
         let arrival = Arrival.token_bucket ~peak ~sigma ~rho () in
         Flow.make ~id ?name ~arrival ~route ?deadline ?priority ?weight
           ?buffer ()
       with Invalid_argument m -> fail line "%s" m)
  | [] -> fail line "flow: missing id"

let parse content =
  let servers = ref [] and flows = ref [] in
  String.split_on_char '\n' content
  |> List.iteri (fun i raw ->
         let line = i + 1 in
         let text =
           match String.index_opt raw '#' with
           | Some j -> String.sub raw 0 j
           | None -> raw
         in
         match
           String.split_on_char ' ' text
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun w -> w <> "")
         with
         | [] -> ()
         | "server" :: rest -> servers := parse_server line rest :: !servers
         | "flow" :: rest -> flows := parse_flow line rest :: !flows
         | word :: _ -> fail line "unknown declaration %S" word);
  try Network.make ~servers:(List.rev !servers) ~flows:(List.rev !flows)
  with Invalid_argument m -> raise (Parse_error (0, m))

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  parse content

let float_str f = if f = infinity then "inf" else Printf.sprintf "%.12g" f

let to_string net =
  let buf = Buffer.create 512 in
  List.iter
    (fun (s : Server.t) ->
      Buffer.add_string buf
        (Printf.sprintf "server %d rate=%s disc=%s name=%s\n" s.id
           (float_str s.rate)
           (discipline_to_string s.discipline)
           s.name))
    (Network.servers net);
  List.iter
    (fun (f : Flow.t) ->
      let sigma, rho, peak = Arrival.token_params f.arrival in
      Buffer.add_string buf
        (Printf.sprintf
           "flow %d sigma=%s rho=%s peak=%s route=%s priority=%d weight=%s%s \
            name=%s\n"
           f.id (float_str sigma) (float_str rho) (float_str peak)
           (String.concat "," (List.map string_of_int f.route))
           f.priority (float_str f.weight)
           (match (f.deadline, f.buffer) with
           | Some d, Some b ->
               " deadline=" ^ float_str d ^ " buffer=" ^ float_str b
           | Some d, None -> " deadline=" ^ float_str d
           | None, Some b -> " buffer=" ^ float_str b
           | None, None -> "")
           f.name))
    (Network.flows net);
  Buffer.contents buf

let save path net =
  let oc = open_out path in
  output_string oc (to_string net);
  close_out oc

(* k-ary fat-tree (Al-Fares et al.), directionalized into a DAG.

   A k-ary fat-tree has k pods of k/2 edge and k/2 aggregation
   switches plus (k/2)^2 core switches.  Physical fat-tree routing is
   up-down: a packet climbs from its source edge switch towards a
   common ancestor and descends to its destination edge switch.  To
   keep the routing graph feedforward we model each switch's upward
   and downward output ports as distinct servers and assign ids in
   traversal-order blocks:

     edge_up | agg_up | core | agg_down | edge_down

   for 2k^2 + k^2/4 servers total.  Routes:

     same edge switch   : edge_up -> edge_down                (2 hops)
     intra-pod          : edge_up -> agg_up -> edge_down      (3 hops)
     inter-pod          : edge_up -> agg_up -> core
                           -> agg_down -> edge_down           (5 hops)

   Core wiring follows the standard scheme: aggregation switch a of
   any pod connects to cores [a*k/2 .. a*k/2 + k/2 - 1], so the core
   chosen on the way up determines the aggregation switch on the way
   down.  Every route's ids are strictly increasing across blocks, so
   the network is feedforward by construction. *)

type params = {
  k : int; (* even, >= 2 *)
  num_flows : int;
  utilization : float;
  max_burst : float;
  peak : float;
  seed : int;
}

let default =
  { k = 4; num_flows = 48; utilization = 0.6; max_burst = 2.; peak = 1.; seed = 42 }

let size p = (2 * p.k * p.k) + (p.k * p.k / 4)

let generate p =
  if p.k < 2 || p.k mod 2 <> 0 then
    invalid_arg "Fat_tree.generate: k must be even and >= 2";
  if p.num_flows < 1 then invalid_arg "Fat_tree.generate: num_flows < 1";
  let rng = Random.State.make [| p.seed |] in
  let half = p.k / 2 in
  let pods = p.k in
  let per_dir = pods * half in
  (* Id blocks, in traversal order. *)
  let edge_up pod e = (pod * half) + e in
  let agg_up pod a = per_dir + (pod * half) + a in
  let core c = (2 * per_dir) + c in
  let agg_down pod a = (2 * per_dir) + (half * half) + (pod * half) + a in
  let edge_down pod e =
    (3 * per_dir) + (half * half) + (pod * half) + e
  in
  let mk id name = Server.make ~id ~name ~rate:1. () in
  let servers =
    List.concat
      [
        List.concat
          (List.init pods (fun pd ->
               List.init half (fun e ->
                   mk (edge_up pd e) (Printf.sprintf "p%de%d-up" pd e))));
        List.concat
          (List.init pods (fun pd ->
               List.init half (fun a ->
                   mk (agg_up pd a) (Printf.sprintf "p%da%d-up" pd a))));
        List.init (half * half) (fun c -> mk (core c) (Printf.sprintf "core%d" c));
        List.concat
          (List.init pods (fun pd ->
               List.init half (fun a ->
                   mk (agg_down pd a) (Printf.sprintf "p%da%d-down" pd a))));
        List.concat
          (List.init pods (fun pd ->
               List.init half (fun e ->
                   mk (edge_down pd e) (Printf.sprintf "p%de%d-down" pd e))));
      ]
  in
  let raw =
    List.init p.num_flows (fun i ->
        let p1 = Random.State.int rng pods in
        let e1 = Random.State.int rng half in
        let p2 = Random.State.int rng pods in
        let e2 = Random.State.int rng half in
        let route =
          if p1 = p2 && e1 = e2 then [ edge_up p1 e1; edge_down p1 e1 ]
          else if p1 = p2 then
            let a = Random.State.int rng half in
            [ edge_up p1 e1; agg_up p1 a; edge_down p2 e2 ]
          else begin
            let a = Random.State.int rng half in
            let j = Random.State.int rng half in
            let c = (a * half) + j in
            (* Core c hangs off aggregation index [c / half] in every
               pod — the downward aggregation switch is forced. *)
            [
              edge_up p1 e1;
              agg_up p1 a;
              core c;
              agg_down p2 (c / half);
              edge_down p2 e2;
            ]
          end
        in
        let sigma = Genutil.draw_sigma rng ~max_burst:p.max_burst in
        let w = Random.State.float rng 1.0 +. 0.1 in
        (i, route, sigma, w))
  in
  let flows =
    Genutil.scale_to_utilization
      ~rate_of:(fun _ -> 1.)
      ~utilization:p.utilization ~peak:p.peak raw
  in
  Network.make ~servers ~flows

(** Two-tier leaf-spine datacenter fabric (seeded, deterministic).

    Each leaf switch is split into an uplink and a downlink server and
    every flow takes a 3-hop route [leaf_up -> spine -> leaf_down], so
    the network is feedforward by construction with exactly three
    antichain levels regardless of width — the go-to family for
    pushing the streaming engine to 10^5+ servers. *)

type params = {
  leaves : int;        (** leaf switches; contributes two servers each *)
  spines : int;        (** spine switches *)
  num_flows : int;
  utilization : float; (** target max utilization, in (0, 1) *)
  max_burst : float;
  peak : float;        (** source peak rate; [infinity] for none *)
  seed : int;
}

val default : params
(** 8 leaves x 4 spines (20 servers), 32 flows, utilization 0.6,
    seed 42. *)

val size : params -> int
(** Number of servers [generate] will produce: [2*leaves + spines]. *)

val generate : params -> Network.t
(** All servers FIFO; spine rate is [leaves/spines] (never below 1) so
    the fabric is not an artificial bottleneck; source rates scaled to
    the target utilization ({!Genutil.scale_to_utilization}). *)

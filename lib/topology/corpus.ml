(* The scenario corpus: one name per generator family, plus sizing
   heuristics that turn a target server count into concrete params.
   This is the single entry point the CLI (netcalc scale / netcalc
   dot --family), the scale benchmark and the determinism tests share,
   so a (family, target_servers, seed) triple names the same network
   everywhere. *)

type family = Leaf_spine | Fat_tree | Edge_cloud | Heavytail

let all = [ Leaf_spine; Fat_tree; Edge_cloud; Heavytail ]

let to_string = function
  | Leaf_spine -> "leaf-spine"
  | Fat_tree -> "fat-tree"
  | Edge_cloud -> "edge-cloud"
  | Heavytail -> "heavytail"

let of_string = function
  | "leaf-spine" -> Some Leaf_spine
  | "fat-tree" -> Some Fat_tree
  | "edge-cloud" -> Some Edge_cloud
  | "heavytail" -> Some Heavytail
  | _ -> None

let names = List.map to_string all

(* Sizing: hit the target server count as closely as the family's
   structure allows, with a flow population proportional to the
   network so per-server fan-in stays moderate at any scale. *)

let leaf_spine_params ~target_servers ~seed =
  let spines = max 1 (target_servers / 10) in
  let leaves = max 1 ((target_servers - spines) / 2) in
  {
    Leaf_spine.default with
    leaves;
    spines;
    num_flows = max 8 (2 * leaves);
    seed;
  }

let fat_tree_params ~target_servers ~seed =
  (* 2k^2 + k^2/4 = 9k^2/4 servers: smallest even k reaching the
     target. *)
  let k =
    let exact = sqrt (4. *. float_of_int target_servers /. 9.) in
    let k = int_of_float (Float.ceil exact) in
    max 2 (if k mod 2 = 0 then k else k + 1)
  in
  { Fat_tree.default with k; num_flows = max 8 target_servers; seed }

let edge_cloud_params ~target_servers ~seed =
  let p = { Edge_cloud.default with tiers = 6; per_tier = 4 } in
  let block = Edge_cloud.site_block p in
  let cloud = p.cloud_tiers * p.cloud_per_tier in
  let sites = max 1 ((target_servers - cloud + block - 1) / block) in
  { p with sites; num_flows = max 8 (target_servers / 2); seed }

let heavytail_params ~target_servers ~seed =
  {
    Heavytail.default with
    num_servers = max 2 target_servers;
    num_flows = max 8 target_servers;
    max_route = 12;
    seed;
  }

let generate ~family ~target_servers ~seed =
  match family with
  | Leaf_spine -> Leaf_spine.generate (leaf_spine_params ~target_servers ~seed)
  | Fat_tree -> Fat_tree.generate (fat_tree_params ~target_servers ~seed)
  | Edge_cloud ->
      (Edge_cloud.generate (edge_cloud_params ~target_servers ~seed)).Edge_cloud.net
  | Heavytail -> Heavytail.generate (heavytail_params ~target_servers ~seed)

let generate_unpeaked ~family ~target_servers ~seed =
  (* Same routes and rates as [generate] (peak is applied after all
     random draws), but with unpeaked sources — the form the packet
     simulator's conformance checker accepts. *)
  match family with
  | Leaf_spine ->
      Leaf_spine.generate
        { (leaf_spine_params ~target_servers ~seed) with peak = infinity }
  | Fat_tree ->
      Fat_tree.generate
        { (fat_tree_params ~target_servers ~seed) with peak = infinity }
  | Edge_cloud ->
      (Edge_cloud.generate
         { (edge_cloud_params ~target_servers ~seed) with peak = infinity })
        .Edge_cloud.net
  | Heavytail ->
      Heavytail.generate
        { (heavytail_params ~target_servers ~seed) with peak = infinity }

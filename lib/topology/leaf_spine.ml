(* Two-tier leaf-spine fabric, directionalized into a feedforward DAG.

   Each leaf switch contributes two servers — its fabric-facing uplink
   port (leaf_up) and its host-facing downlink port (leaf_down) — and
   each spine one server.  Every flow crosses the fabric:

     leaf_up(src) -> spine(j) -> leaf_down(dst)

   Ids are assigned in blocks (leaf_ups, then spines, then leaf_downs),
   so every route is strictly increasing and the network is feedforward
   by construction.  The antichain decomposition is exactly the three
   blocks, which makes this the cheapest family to push to 10^5+
   servers: levels stay at three however wide the fabric gets. *)

type params = {
  leaves : int;
  spines : int;
  num_flows : int;
  utilization : float;
  max_burst : float;
  peak : float;
  seed : int;
}

let default =
  {
    leaves = 8;
    spines = 4;
    num_flows = 32;
    utilization = 0.6;
    max_burst = 2.;
    peak = 1.;
    seed = 42;
  }

let size p = (2 * p.leaves) + p.spines

let generate p =
  if p.leaves < 1 then invalid_arg "Leaf_spine.generate: leaves < 1";
  if p.spines < 1 then invalid_arg "Leaf_spine.generate: spines < 1";
  if p.num_flows < 1 then invalid_arg "Leaf_spine.generate: num_flows < 1";
  let rng = Random.State.make [| p.seed |] in
  let leaf_up i = i in
  let spine j = p.leaves + j in
  let leaf_down i = p.leaves + p.spines + i in
  (* Spines carry the aggregate of many leaves: give them
     proportionally more capacity so utilization scaling is not
     dominated by an artificial fabric bottleneck. *)
  let spine_rate = Float.max 1. (float_of_int p.leaves /. float_of_int p.spines) in
  let rate_of sid = if sid >= p.leaves && sid < p.leaves + p.spines then spine_rate else 1. in
  let servers =
    List.init p.leaves (fun i ->
        Server.make ~id:(leaf_up i) ~name:(Printf.sprintf "leaf%d-up" i)
          ~rate:1. ())
    @ List.init p.spines (fun j ->
          Server.make ~id:(spine j) ~name:(Printf.sprintf "spine%d" j)
            ~rate:spine_rate ())
    @ List.init p.leaves (fun i ->
          Server.make ~id:(leaf_down i) ~name:(Printf.sprintf "leaf%d-down" i)
            ~rate:1. ())
  in
  let raw =
    List.init p.num_flows (fun i ->
        let src = Random.State.int rng p.leaves in
        let dst = Random.State.int rng p.leaves in
        let sp = Random.State.int rng p.spines in
        let route = [ leaf_up src; spine sp; leaf_down dst ] in
        let sigma = Genutil.draw_sigma rng ~max_burst:p.max_burst in
        let w = Random.State.float rng 1.0 +. 0.1 in
        (i, route, sigma, w))
  in
  let flows =
    Genutil.scale_to_utilization ~rate_of ~utilization:p.utilization
      ~peak:p.peak raw
  in
  Network.make ~servers ~flows

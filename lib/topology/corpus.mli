(** The scenario corpus: named generator families with shared sizing.

    A [(family, target_servers, seed)] triple names the same network
    in the CLI, the scale benchmark and the tests — the corpus is the
    single place that maps a target server count to each family's
    concrete parameters. *)

type family = Leaf_spine | Fat_tree | Edge_cloud | Heavytail

val all : family list
val names : string list

val to_string : family -> string

val of_string : string -> family option
(** Accepts ["leaf-spine"], ["fat-tree"], ["edge-cloud"],
    ["heavytail"]. *)

val generate : family:family -> target_servers:int -> seed:int -> Network.t
(** A network of roughly [target_servers] servers (exactly on families
    whose structure permits it, the nearest admissible size
    otherwise), with a flow population proportional to the network. *)

val generate_unpeaked :
  family:family -> target_servers:int -> seed:int -> Network.t
(** Same routes and rates as {!generate} — peak limiting is applied
    after all random draws — but with unpeaked sources, the form the
    packet simulator's conformance checker accepts
    ({!Validate.check}). *)

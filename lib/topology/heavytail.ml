(* Heavy-tailed random feedforward DAGs.

   Unlike Randomnet's layered construction, this family has no layer
   structure at all: servers are popularity-ranked, flow routes visit
   Zipf-sampled servers in ascending id order (which makes any sample
   a feedforward route for free), and route lengths follow a bounded
   Pareto.  The result is the hub-and-tail shape of real WANs and
   service meshes — a few servers carry a large share of the flows,
   most carry almost none — which stresses the streaming engine in the
   opposite way from the regular fabrics: many short antichain levels
   of wildly uneven width and a frontier dominated by the hubs. *)

type params = {
  num_servers : int;
  num_flows : int;
  zipf_s : float; (* popularity skew; 0 = uniform *)
  alpha : float; (* Pareto shape for route lengths *)
  max_route : int;
  utilization : float;
  max_burst : float;
  peak : float;
  rate_spread : float;
  seed : int;
}

let default =
  {
    num_servers = 40;
    num_flows = 60;
    zipf_s = 0.8;
    alpha = 1.3;
    max_route = 8;
    utilization = 0.6;
    max_burst = 2.;
    peak = 1.;
    rate_spread = 0.;
    seed = 42;
  }

let generate p =
  if p.num_servers < 2 then invalid_arg "Heavytail.generate: num_servers < 2";
  if p.num_flows < 1 then invalid_arg "Heavytail.generate: num_flows < 1";
  if p.zipf_s < 0. then invalid_arg "Heavytail.generate: zipf_s < 0";
  if p.max_route < 2 then invalid_arg "Heavytail.generate: max_route < 2";
  if p.rate_spread < 0. || p.rate_spread >= 1. then
    invalid_arg "Heavytail.generate: rate_spread must be in [0, 1)";
  let rng = Random.State.make [| p.seed |] in
  let rates = Hashtbl.create (max 16 p.num_servers) in
  let servers =
    List.init p.num_servers (fun i ->
        let rate =
          1. -. p.rate_spread +. Random.State.float rng (2. *. p.rate_spread)
        in
        Hashtbl.replace rates i rate;
        Server.make ~id:i ~name:(Printf.sprintf "h%d" i) ~rate ())
  in
  (* Zipf sampling via prefix sums + binary search: server i is drawn
     with probability proportional to 1 / (i + 1)^s. *)
  let prefix = Array.make p.num_servers 0. in
  let total =
    let acc = ref 0. in
    Array.iteri
      (fun i _ ->
        acc := !acc +. (1. /. Float.pow (float_of_int (i + 1)) p.zipf_s);
        prefix.(i) <- !acc)
      prefix;
    !acc
  in
  let sample () =
    let u = Random.State.float rng total in
    let lo = ref 0 and hi = ref (p.num_servers - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if prefix.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let module IS = Set.Make (Int) in
  let draw_route () =
    let len =
      int_of_float
        (Float.round
           (Genutil.bounded_pareto rng ~alpha:p.alpha ~lo:2.
              ~hi:(float_of_int (min p.max_route p.num_servers))))
    in
    let len = max 2 len in
    (* Collect [len] distinct servers; the attempt cap only matters for
       tiny networks where the Zipf head is nearly exhausted. *)
    let rec fill acc attempts =
      if IS.cardinal acc >= len || attempts > 64 * len then acc
      else fill (IS.add (sample ()) acc) (attempts + 1)
    in
    let picked = fill IS.empty 0 in
    (* Ascending ids: distinct and increasing, hence feedforward. *)
    IS.elements picked
  in
  let raw =
    List.init p.num_flows (fun i ->
        let route = draw_route () in
        let sigma = Genutil.draw_sigma rng ~max_burst:p.max_burst in
        let w = Random.State.float rng 1.0 +. 0.1 in
        (i, route, sigma, w))
  in
  let flows =
    Genutil.scale_to_utilization
      ~rate_of:(fun sid -> Hashtbl.find rates sid)
      ~utilization:p.utilization ~peak:p.peak raw
  in
  Network.make ~servers ~flows

(** k-ary fat-tree datacenter topology (seeded, deterministic).

    The classic 3-tier Clos fabric (Al-Fares et al.): k pods of k/2
    edge and k/2 aggregation switches plus (k/2)^2 cores.  Upward and
    downward switch ports are modeled as distinct servers so up-down
    routing becomes a feedforward DAG of [2k^2 + k^2/4] servers with
    2-hop (same edge), 3-hop (intra-pod) and 5-hop (inter-pod)
    routes. *)

type params = {
  k : int;             (** fabric arity; even, >= 2 *)
  num_flows : int;
  utilization : float; (** target max utilization, in (0, 1) *)
  max_burst : float;
  peak : float;        (** source peak rate; [infinity] for none *)
  seed : int;
}

val default : params
(** k = 4 (36 servers), 48 flows, utilization 0.6, seed 42. *)

val size : params -> int
(** Number of servers [generate] will produce: [2k^2 + k^2/4]. *)

val generate : params -> Network.t
(** All servers FIFO at unit rate; core wiring follows the standard
    scheme (aggregation switch a reaches cores [a*k/2 ..
    a*k/2 + k/2 - 1]); source rates scaled to the target utilization
    ({!Genutil.scale_to_utilization}). *)

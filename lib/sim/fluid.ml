type t = {
  net : Network.t;
  arrivals : (int * int, Pwl.t) Hashtbl.t; (* (flow, server) -> input *)
  outputs : (int, Pwl.t) Hashtbl.t;        (* flow -> final output *)
  backlogs : (int, float) Hashtbl.t;       (* server -> peak backlog *)
}

(* Instantaneous bursts (value jumps) break the exact FIFO
   bit-ordering composition A_i o G^{-1} o D at simultaneous batches,
   so greedy realizations emit the burst at a very high — but finite —
   peak rate instead.  The realization still conforms to the flow's
   envelope and is within O(sigma / burst_peak) of the instantaneous
   worst case. *)
let burst_peak = 1e4

let greedy ?(phase = 0.) (f : Flow.t) =
  if phase < 0. then invalid_arg "Fluid.greedy: negative phase";
  let env =
    Pwl.min_pw (Pwl.affine ~y0:0. ~slope:burst_peak) (Flow.source_curve f)
  in
  if Float_ops.eq_exact phase 0. then env else Pwl.shift_right env phase

let run ?(inputs = []) net =
  let order = Network.topological_order net in
  List.iter
    (fun (s : Server.t) ->
      if s.discipline <> Discipline.Fifo then
        invalid_arg "Fluid.run: FIFO servers only")
    (Network.servers net);
  List.iter
    (fun (f : Flow.t) ->
      if Flow.rate f <= 0. then
        invalid_arg
          (Printf.sprintf
             "Fluid.run: flow %s has zero long-run rate (bit ordering needs \
              an invertible aggregate)"
             f.name))
    (Network.flows net);
  let arrivals = Hashtbl.create 64 in
  let outputs = Hashtbl.create 16 in
  let backlogs = Hashtbl.create 16 in
  List.iter
    (fun (f : Flow.t) ->
      let source =
        match List.assoc_opt f.id inputs with
        | Some curve -> curve
        | None -> greedy f
      in
      Hashtbl.replace arrivals (f.id, Flow.first_hop f) source)
    (Network.flows net);
  List.iter
    (fun sid ->
      let server = Network.server net sid in
      let present = Network.flows_at net sid in
      if present <> [] then begin
        let ins =
          List.map
            (fun (f : Flow.t) -> (f, Hashtbl.find arrivals (f.id, sid)))
            present
        in
        (* running_max only scrubs sub-tolerance float noise from the
           repeated reconstructions; all these curves are nondecreasing
           mathematically. *)
        let g = Pwl.running_max (Pwl.sum (List.map snd ins)) in
        let d =
          Pwl.running_max (Minplus.conv_with_rate ~rate:server.Server.rate g)
        in
        Hashtbl.replace backlogs sid
          (Float_ops.positive_part (Pwl.sup_diff g d));
        (* Bit departing at t arrived at H t = G^{-1}(D t); flow i's
           output is A_i (H t). *)
        let h =
          Pwl.running_max (Pwl.compose ~outer:(Pwl.pseudo_inverse g) ~inner:d)
        in
        List.iter
          (fun ((f : Flow.t), a_in) ->
            let out = Pwl.running_max (Pwl.compose ~outer:a_in ~inner:h) in
            match Flow.next_hop f sid with
            | Some s' -> Hashtbl.replace arrivals (f.id, s') out
            | None -> Hashtbl.replace outputs f.id out)
          ins
      end)
    order;
  { net; arrivals; outputs; backlogs }

let input_at t ~flow ~server = Hashtbl.find t.arrivals (flow, server)
let output_of t ~flow = Hashtbl.find t.outputs flow

let flow_delay t id =
  let f = Network.flow t.net id in
  let source = Hashtbl.find t.arrivals (id, Flow.first_hop f) in
  let out = Hashtbl.find t.outputs id in
  (* Delay of the y-th bit: out^{-1} y - source^{-1} y.  sup_diff takes
     both right and left limits at every breakpoint, which pairs each
     bit's departure and arrival consistently (left limits give bit y
     exactly; right limits give the limit over bits just above y). *)
  Float_ops.positive_part
    (Pwl.sup_diff (Pwl.pseudo_inverse out) (Pwl.pseudo_inverse source))

let server_backlog t sid =
  match Hashtbl.find_opt t.backlogs sid with Some b -> b | None -> 0.

let phase_search ?(tries = 8) ?(seed = 11) ?(max_phase = 5.) net =
  let rng = Random.State.make [| seed |] in
  let flows = Network.flows net in
  let best = Hashtbl.create 16 in
  List.iter (fun (f : Flow.t) -> Hashtbl.replace best f.id 0.) flows;
  for i = 0 to tries - 1 do
    let inputs =
      if i = 0 then []
      else
        List.map
          (fun (f : Flow.t) ->
            (f.id, greedy ~phase:(Random.State.float rng max_phase) f))
          flows
    in
    let result = run ~inputs net in
    List.iter
      (fun (f : Flow.t) ->
        let d = flow_delay result f.id in
        if d > Hashtbl.find best f.id then Hashtbl.replace best f.id d)
      flows
  done;
  flows
  |> List.map (fun (f : Flow.t) -> (f.id, Hashtbl.find best f.id))
  |> List.sort compare

type config = {
  packet_size : float;
  horizon : float;
  models : (int * Source.model) list;
  record_departures : bool;
      (* keep per-(flow, server) departure timestamps; off by default
         (memory proportional to packets x hops) *)
  buffers : (int * float) list;
      (* per-server buffer capacities (bytes, incl. packet in service);
         servers not listed are unbuffered (infinite); arriving packets
         that would overflow are dropped and counted *)
}

let default_config =
  {
    packet_size = 0.25;
    horizon = 200.;
    models = [];
    record_departures = false;
    buffers = [];
  }

(* Discipline-specific ready queues.  EDF and GPS reuse the event heap
   as a priority queue keyed by deadline / virtual finish tag. *)
type queue =
  | Qfifo of Packet.t Queue.t
  | Qprio of (int, Packet.t Queue.t) Hashtbl.t
  | Qtag of Packet.t Event_heap.t

type server_state = {
  server : Server.t;
  queue : queue;
  mutable in_service : Packet.t option;
  mutable backlog : float;
  mutable max_backlog : float;
  (* SCFQ state for GPS servers: virtual time and per-flow last tag. *)
  mutable vtime : float;
  flow_tags : (int, float) Hashtbl.t;
}

type result = {
  flows : (int, Stats.t) Hashtbl.t;
  hops : (int, Stats.t) Hashtbl.t; (* per-server single-hop delays *)
  backlogs : (int, float) Hashtbl.t;
  departures : (int * int, float list ref) Hashtbl.t;
      (* (flow, server) -> departure times, newest first *)
  drops : (int, int) Hashtbl.t; (* server -> dropped packet count *)
  mutable delivered : int;
}

type event = Arrive of Packet.t * int | Finish of int

let make_state (s : Server.t) =
  let queue =
    match s.discipline with
    | Discipline.Fifo -> Qfifo (Queue.create ())
    | Discipline.Static_priority -> Qprio (Hashtbl.create 4)
    | Discipline.Edf | Discipline.Gps -> Qtag (Event_heap.create ())
  in
  {
    server = s;
    queue;
    in_service = None;
    backlog = 0.;
    max_backlog = 0.;
    vtime = 0.;
    flow_tags = Hashtbl.create 8;
  }

let queue_is_empty = function
  | Qfifo q -> Queue.is_empty q
  | Qprio tbl ->
      Hashtbl.fold (fun _ q acc -> acc && Queue.is_empty q) tbl true
  | Qtag h -> Event_heap.is_empty h

let enqueue net state (p : Packet.t) time =
  p.Packet.enqueued <- time;
  let flow = Network.flow net p.Packet.flow in
  (match state.queue with
  | Qfifo q -> Queue.push p q
  | Qprio tbl ->
      let prio = flow.Flow.priority in
      let q =
        match Hashtbl.find_opt tbl prio with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.replace tbl prio q;
            q
      in
      Queue.push p q
  | Qtag h -> (
      match state.server.discipline with
      | Discipline.Edf ->
          let local =
            match flow.Flow.deadline with
            | Some d -> d /. float_of_int (List.length flow.Flow.route)
            | None -> infinity
          in
          p.Packet.local_deadline <- time +. local;
          Event_heap.push h ~time:p.Packet.local_deadline p
      | Discipline.Gps ->
          (* Self-clocked fair queueing: tag = max(vtime, flow's last
             tag) + size / weight. *)
          let last =
            match Hashtbl.find_opt state.flow_tags flow.Flow.id with
            | Some t -> t
            | None -> 0.
          in
          let tag =
            Float.max state.vtime last
            +. (p.Packet.size /. flow.Flow.weight)
          in
          Hashtbl.replace state.flow_tags flow.Flow.id tag;
          p.Packet.local_deadline <- tag;
          Event_heap.push h ~time:tag p
      | Discipline.Fifo | Discipline.Static_priority -> assert false));
  state.backlog <- state.backlog +. p.Packet.size;
  if state.backlog > state.max_backlog then state.max_backlog <- state.backlog

let dequeue state =
  match state.queue with
  | Qfifo q -> if Queue.is_empty q then None else Some (Queue.pop q)
  | Qprio tbl ->
      let best = ref None in
      Hashtbl.iter
        (fun prio q ->
          if not (Queue.is_empty q) then
            match !best with
            | Some (p0, _) when p0 <= prio -> ()
            | _ -> best := Some (prio, q))
        tbl;
      Option.map (fun (_, q) -> Queue.pop q) !best
  | Qtag h -> (
      match Event_heap.pop h with
      | Some (tag, p) ->
          if state.server.discipline = Discipline.Gps then state.vtime <- tag;
          Some p
      | None -> None)

let c_events = Metrics.counter "sim.events"
let c_arrivals = Metrics.counter "sim.events.arrive"
let c_finishes = Metrics.counter "sim.events.finish"
let c_runs = Metrics.counter "sim.runs"
let d_heap_depth = Metrics.dist "sim.heap.depth"

let run ?(config = default_config) net =
  Prof.count c_runs;
  Prof.span "sim.run" @@ fun () ->
  let heap : event Event_heap.t = Event_heap.create () in
  let states = Hashtbl.create 16 in
  List.iter
    (fun (s : Server.t) -> Hashtbl.replace states s.id (make_state s))
    (Network.servers net);
  let result =
    {
      flows = Hashtbl.create 16;
      hops = Hashtbl.create 16;
      backlogs = Hashtbl.create 16;
      departures = Hashtbl.create 16;
      drops = Hashtbl.create 16;
      delivered = 0;
    }
  in
  List.iter
    (fun (s : Server.t) -> Hashtbl.replace result.hops s.id (Stats.create ()))
    (Network.servers net);
  List.iter
    (fun (f : Flow.t) -> Hashtbl.replace result.flows f.id (Stats.create ()))
    (Network.flows net);
  (* Schedule all emissions up front. *)
  let next_packet_id = ref 0 in
  List.iter
    (fun (f : Flow.t) ->
      let model =
        match List.assoc_opt f.id config.models with
        | Some m -> m
        | None -> Source.Greedy { start = 0. }
      in
      let sigma, rho, peak = Arrival.token_params f.arrival in
      let times =
        Source.emission_times model ~sigma ~rho ~peak
          ~packet_size:config.packet_size ~horizon:config.horizon
      in
      List.iter
        (fun t ->
          incr next_packet_id;
          let p =
            Packet.make ~id:!next_packet_id ~flow:f.id
              ~size:config.packet_size ~created:t ~route:f.route
          in
          Event_heap.push heap ~time:t (Arrive (p, List.hd f.route)))
        times)
    (Network.flows net);
  let start_service state time =
    match dequeue state with
    | Some p ->
        state.in_service <- Some p;
        Event_heap.push heap
          ~time:(time +. (p.Packet.size /. state.server.rate))
          (Finish state.server.id)
    | None -> ()
  in
  let rec drain () =
    if Prof.enabled () then
      Metrics.observe d_heap_depth (float_of_int (Event_heap.size heap));
    match Event_heap.pop heap with
    | None -> ()
    | Some (time, Arrive (p, sid)) ->
        Prof.count c_events;
        Prof.count c_arrivals;
        let state = Hashtbl.find states sid in
        let capacity =
          match List.assoc_opt sid config.buffers with
          | Some b -> b
          | None -> infinity
        in
        if state.backlog +. p.Packet.size > capacity +. 1e-12 then begin
          Hashtbl.replace result.drops sid
            (1 + try Hashtbl.find result.drops sid with Not_found -> 0);
          drain ()
        end
        else begin
          enqueue net state p time;
          if state.in_service = None then start_service state time;
          drain ()
        end
    | Some (time, Finish sid) ->
        Prof.count c_events;
        Prof.count c_finishes;
        let state = Hashtbl.find states sid in
        (match state.in_service with
        | None -> assert false
        | Some p ->
            state.in_service <- None;
            state.backlog <- state.backlog -. p.Packet.size;
            Stats.record (Hashtbl.find result.hops sid)
              (time -. p.Packet.enqueued);
            if config.record_departures then begin
              let key = (p.Packet.flow, sid) in
              let cell =
                match Hashtbl.find_opt result.departures key with
                | Some c -> c
                | None ->
                    let c = ref [] in
                    Hashtbl.replace result.departures key c;
                    c
              in
              cell := time :: !cell
            end;
            p.Packet.remaining <- List.tl p.Packet.remaining;
            (match p.Packet.remaining with
            | [] ->
                result.delivered <- result.delivered + 1;
                Stats.record
                  (Hashtbl.find result.flows p.Packet.flow)
                  (time -. p.Packet.created)
            | next :: _ -> Event_heap.push heap ~time (Arrive (p, next))));
        if not (queue_is_empty state.queue) then start_service state time;
        drain ()
  in
  drain ();
  Hashtbl.iter
    (fun sid state -> Hashtbl.replace result.backlogs sid state.max_backlog)
    states;
  result

let flow_stats result id = Hashtbl.find result.flows id
let server_stats result sid = Hashtbl.find result.hops sid
let server_max_delay result sid = Stats.max_value (server_stats result sid)
let max_delay result id = Stats.max_value (flow_stats result id)

let server_max_backlog result sid =
  match Hashtbl.find_opt result.backlogs sid with Some b -> b | None -> 0.

let packets_delivered result = result.delivered

let drops result sid =
  match Hashtbl.find_opt result.drops sid with Some n -> n | None -> 0

let total_drops result = Hashtbl.fold (fun _ n acc -> acc + n) result.drops 0

let departures result ~flow ~server =
  match Hashtbl.find_opt result.departures (flow, server) with
  | Some c -> List.rev !c
  | None -> []

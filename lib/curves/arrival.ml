
type spec =
  | Token_bucket of { sigma : float; rho : float; peak : float }
  | Multi of spec list
  | General of Pwl.t

type t = { spec : spec; curve : Pwl.t }

let rec curve_of_spec = function
  | Token_bucket { sigma; rho; peak } ->
      let tb = Pwl.affine ~y0:sigma ~slope:rho in
      if peak = infinity then tb
      else Pwl.min_pw (Pwl.affine ~y0:0. ~slope:peak) tb
  | Multi specs -> Pwl.min_list (List.map curve_of_spec specs)
  | General c -> c

let rec validate = function
  | Token_bucket { sigma; rho; peak } ->
      if sigma < 0. then invalid_arg "Arrival.make: negative burst";
      if rho < 0. then invalid_arg "Arrival.make: negative rate";
      if peak < rho then invalid_arg "Arrival.make: peak below sustained rate"
  | Multi [] -> invalid_arg "Arrival.make: empty Multi"
  | Multi specs -> List.iter validate specs
  | General c -> (
      if not (Pwl.is_nondecreasing c) then
        invalid_arg "Arrival.make: decreasing envelope";
      match Pwl.shape c with
      | `Concave | `Affine -> ()
      | `Convex | `General ->
          invalid_arg "Arrival.make: arrival curves must be concave")

let make spec =
  validate spec;
  { spec; curve = curve_of_spec spec }

let token_bucket ?(peak = infinity) ~sigma ~rho () =
  make (Token_bucket { sigma; rho; peak })

let paper_source ~sigma ~rho = token_bucket ~peak:1. ~sigma ~rho ()
let of_curve c = make (General c)
let curve a = a.curve
let spec a = a.spec
let rate a = Pwl.final_slope a.curve
let burst a = Pwl.value_at_zero a.curve
let eval a t = Pwl.eval a.curve t

let token_params a =
  let c = a.curve in
  let rho = Pwl.final_slope c in
  let x_last = Pwl.last_breakpoint c in
  let sigma = Pwl.eval c x_last -. (rho *. x_last) in
  let peak =
    if Pwl.value_at_zero c > 0. then infinity
    else
      match Pwl.segments c with
      | (_, _, s0) :: _ :: _ -> s0
      | _ -> infinity
  in
  (sigma, rho, peak)

let add a b = of_curve (Pwl.add a.curve b.curve)

let sum = function
  | [] -> of_curve Pwl.zero
  | a :: rest -> List.fold_left add a rest

let shift a d =
  if Float_ops.eq_exact d 0. then a else of_curve (Pwl.shift_left a.curve d)

let cap_rate a ~rate =
  of_curve (Pwl.min_pw (Pwl.affine ~y0:0. ~slope:rate) a.curve)

let pp ppf a = Pwl.pp ppf a.curve

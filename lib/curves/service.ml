
let constant_rate rate =
  if rate <= 0. then invalid_arg "Service.constant_rate: rate <= 0";
  Pwl.affine ~y0:0. ~slope:rate

let rate_latency ~rate ~latency =
  if rate <= 0. then invalid_arg "Service.rate_latency: rate <= 0";
  if latency < 0. then invalid_arg "Service.rate_latency: negative latency";
  Pwl.nonneg (Pwl.affine ~y0:(-.rate *. latency) ~slope:rate)

let leftover ~rate ~cross =
  Pwl.lower_convex_hull
    (Pwl.nonneg (Pwl.sub (constant_rate rate) cross))

let fifo_theta ~rate ~cross ~theta =
  if theta < 0. then invalid_arg "Service.fifo_theta: negative theta";
  if Float_ops.eq_exact theta 0. then leftover ~rate ~cross
  else
    let shifted_cross = Pwl.shift_right cross theta in
    let member = Pwl.nonneg (Pwl.sub (constant_rate rate) shifted_cross) in
    (* Zero out [0, theta): the family member gives no service before
       theta.  The result may jump at theta; take its convex hull, which
       is a valid (<=) service curve. *)
    let candidates = theta :: Pwl.breakpoints member in
    let clip ts vs =
      Array.iteri (fun i t -> if t < theta then vs.(i) <- 0.) ts;
      vs
    in
    let clipped =
      Pwl.of_sampler
        ~eval_seq:(fun ts -> clip ts (Pwl.eval_seq member ts))
        ~candidates
        ~eval:(fun t -> if t < theta then 0. else Pwl.eval member t)
        ()
    in
    Pwl.lower_convex_hull clipped

let is_service_curve beta =
  Pwl.is_nondecreasing beta
  && Float_ops.eq_exact (Pwl.value_at_zero beta) 0.
  && match Pwl.shape beta with `Convex | `Affine -> true | _ -> false

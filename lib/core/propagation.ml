type env_table = (int * int, Pwl.t) Hashtbl.t

let install_source table (f : Flow.t) =
  Hashtbl.replace table (f.id, Flow.first_hop f) (Flow.source_curve f)

let empty ?(size_hint = 64) () : env_table = Hashtbl.create (max 1 size_hint)

let create net =
  let table = empty () in
  List.iter (install_source table) (Network.flows net);
  table

let length (table : env_table) = Hashtbl.length table

let get table ~flow ~server = Hashtbl.find table (flow, server)
let find_opt table ~flow ~server = Hashtbl.find_opt table (flow, server)
let set table ~flow ~server env = Hashtbl.replace table (flow, server) env
let remove table ~flow ~server = Hashtbl.remove table (flow, server)

let set_next table (f : Flow.t) ~after env =
  match Flow.next_hop f after with
  | Some s -> set table ~flow:f.id ~server:s env
  | None -> ()

let aggregate_input ?(options = Options.default) net table ~server ~flows =
  let env (f : Flow.t) = get table ~flow:f.id ~server in
  if not options.Options.link_cap then
    Pwl.sum (List.map env flows)
  else begin
    (* Group flows by upstream server; cap each transit group by the
       upstream link rate (output over any window of length I is at
       most C_upstream * I). *)
    let groups = Hashtbl.create 8 in
    List.iter
      (fun (f : Flow.t) ->
        let key = Flow.prev_hop f server in
        let cur = try Hashtbl.find groups key with Not_found -> [] in
        Hashtbl.replace groups key (env f :: cur))
      flows;
    (* Sum the groups in sorted-key order: hash-table iteration order
       is unspecified, and float addition is not associative, so
       folding in table order would make the result depend on it. *)
    let keys =
      Hashtbl.fold (fun key _ acc -> key :: acc) groups []
      |> List.sort_uniq (Option.compare Int.compare)
    in
    List.fold_left
      (fun acc key ->
        let group_env = Pwl.sum (Hashtbl.find groups key) in
        let capped =
          match key with
          | None -> group_env
          | Some upstream ->
              let rate = (Network.server net upstream).Server.rate in
              Pwl.min_pw (Pwl.affine ~y0:0. ~slope:rate) group_env
        in
        Pwl.add acc capped)
      Pwl.zero keys
  end

let total_rate flows = List.fold_left (fun acc f -> acc +. Flow.rate f) 0. flows

(** One-stop comparison driver: run every analysis method on a network
    and collect the results (the paper's evaluation loop). *)

type method_ =
  | Decomposed
  | Service_curve
  | Integrated
  | Integrated_sp
      (** the Sec. 5 static-priority extension; requires a homogeneous
          FIFO or static-priority network *)
  | Fifo_theta  (** extension, not in the paper *)

val all_methods : method_ list
val method_name : method_ -> string

val flow_delay :
  ?options:Options.t ->
  ?strategy:Pairing.strategy ->
  Network.t ->
  method_ ->
  int ->
  float
(** Delay bound of one flow under one method.  [strategy] (default
    [Pairing.Greedy]) only affects [Integrated]. *)

val flow_backlog :
  ?options:Options.t ->
  ?strategy:Pairing.strategy ->
  Network.t ->
  method_ ->
  int ->
  float
(** Buffer requirement of one flow under one method: its worst per-hop
    backlog bound over its route.  Service Curve and FIFO-theta borrow
    the decomposed engine's bounds, which are sound for them too. *)

type comparison = {
  flow : int;
  decomposed : float;
  service_curve : float;
  integrated : float;
  fifo_theta : float;
  decomposed_backlog : float;  (** buffer requirement, decomposed *)
  integrated_backlog : float;  (** buffer requirement, integrated *)
}

val compare_all :
  ?options:Options.t ->
  ?strategy:Pairing.strategy ->
  ?with_theta:bool ->
  Network.t ->
  int ->
  comparison
(** All methods on one flow.  [with_theta = false] (default [true])
    skips the more expensive extension and reports [nan] for it. *)

val relative_improvement : float -> float -> float
(** [relative_improvement dx dy = (dx - dy) / dx] — the paper's
    [R_(X,Y)] metric (Sec. 4.1): the fraction by which method Y
    improves on method X.  [nan] when either is infinite or [dx = 0]. *)

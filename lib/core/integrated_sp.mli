(** Algorithm Integrated for static-priority networks — the extension
    the paper's conclusion announces ({e "We are currently extending
    the applicability of this approach to the static-priority
    discipline by deriving the appropriate closed form solutions of
    the delay formulas"}).

    The pairwise analysis of {!Pair_analysis} generalizes verbatim
    once each server's constant rate is replaced by the {e leftover
    service curve} of the analyzed priority class,
    [(C t - higher t)^+]: within a class, a static-priority server is
    FIFO, and the class's busy-period geometry is governed by the
    leftover curve instead of the service line.  Priority classes are
    analyzed in urgency order (lower number first) so that the
    higher-priority envelopes entering the second server of a pair are
    available when a class needs them.

    Every server must use [Discipline.Static_priority], or every
    server [Discipline.Fifo] (then all flows form one class and this
    engine coincides with {!Integrated}); mixing the two is rejected
    because a flow's class would not be consistent across a pair. *)

type t

val analyze :
  ?options:Options.t -> ?strategy:Pairing.strategy -> Network.t -> t
(** @raise Network.Cyclic on non-feedforward routing.
    @raise Invalid_argument when a server is neither FIFO nor
    static-priority. *)

val network : t -> Network.t
val pairing : t -> Pairing.t

val flow_delay : t -> int -> float
val all_flow_delays : t -> (int * float) list

val envelope_at : t -> flow:int -> server:int -> Pwl.t
(** Input envelope of a flow at a hop as propagated by this analysis. *)

val server_backlog : t -> int -> float
(** Aggregate backlog bound at a server: the sum over its priority
    classes of the class queue's vertical deviation from the class's
    leftover service, computed on the integrated input windows.  [0.]
    for an idle server, [infinity] past an unstable one. *)

val server_flow_backlogs : t -> int -> (int * float) list
(** Per-flow backlog bounds at a server, [(flow id, bound)] in id
    order: the minimal FIFO split within the flow's class (service is
    FIFO inside a priority class). *)

val local_backlog : t -> flow:int -> server:int -> float
(** The flow's backlog bound at one of its hops.
    @raise Invalid_argument when the flow does not cross the server. *)

val flow_backlog : t -> int -> float
(** The flow's buffer requirement: its worst per-hop backlog bound
    over its route. *)

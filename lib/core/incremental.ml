(* Cross-call memoization of whole-network analyses (the "recompute
   nothing twice" half of the incremental sweep engine; the prefix-reuse
   half lives in Sweep_engine).  Each analysis module keeps a private
   table and keys it with [net_key]: a structural fingerprint of
   everything its result depends on — server configs, flow configs
   (source curves by intern uid, see {!Pwl.uid}), options, pairing
   strategy.  Two structurally identical networks therefore share one
   analysis, whether they come from the same sweep, a different figure,
   or a different experiment in the same process.

   Correctness does not depend on the tables: a hit returns an
   immutable analysis value that a miss would have recomputed
   bit-identically (analyses are deterministic functions of the key),
   and source curves are keyed by intern uid, so uid equality implies
   physical equality of the curves.  After an intern reset the uids
   change and lookups miss — a harmless recompute, never a wrong hit.

   Tables are bounded like the [Minplus] cache (wholesale reset past a
   cap) and guarded by one lock for netcalc.par workers. *)

let c_reuse = Metrics.counter "incremental.reuse"
let c_recompute = Metrics.counter "incremental.recompute"
let lock = Obs_sync.create ()
let on = ref true
let cap = 512
let clearers : (unit -> unit) list ref = ref []
let sizers : (unit -> int) list ref = ref []

type key = string

let net_key ?(options = Options.default) ?strategy net =
  let servers =
    List.map
      (fun (s : Server.t) -> (s.id, s.name, s.rate, s.discipline))
      (Network.servers net)
  in
  let flows =
    List.map
      (fun (f : Flow.t) ->
        ( f.id,
          f.name,
          f.route,
          f.deadline,
          f.priority,
          f.weight,
          f.buffer,
          Pwl.uid (Flow.source_curve f) ))
      (Network.flows net)
  in
  (* Marshalling a pure immediate structure is deterministic within a
     process, which is all a memo key needs; strings hash over their
     whole contents, unlike the depth-limited generic hash on a deep
     tuple.  The curve-backend tag namespaces the key: pwl and upp
     results are bit-identical on the paper's curves by construction,
     but the tables must never be allowed to conflate regimes whose
     kernels differ (same reason the Minplus cache keys carry it). *)
  Marshal.to_string
    ( Curve_repr.backend_tag (),
      servers,
      flows,
      options,
      (strategy : Pairing.strategy option) )
    []

type 'a table = { tbl : (key, 'a) Hashtbl.t }

let table () =
  let tbl = Hashtbl.create 64 in
  Obs_sync.with_lock lock (fun () ->
      clearers := (fun () -> Hashtbl.reset tbl) :: !clearers;
      sizers := (fun () -> Hashtbl.length tbl) :: !sizers);
  { tbl }

let note_reuse () = Metrics.incr c_reuse

let memoize t key compute =
  if not (Obs_sync.with_lock lock (fun () -> !on)) then compute ()
  else
    match Obs_sync.with_lock lock (fun () -> Hashtbl.find_opt t.tbl key) with
    | Some v ->
        Metrics.incr c_reuse;
        v
    | None ->
        Metrics.incr c_recompute;
        (* Compute outside the lock; a concurrent duplicate of the same
           key is harmless (deterministic analyses, identical values). *)
        let v = compute () in
        Obs_sync.with_lock lock (fun () ->
            if Hashtbl.length t.tbl >= cap then Hashtbl.reset t.tbl;
            if not (Hashtbl.mem t.tbl key) then Hashtbl.add t.tbl key v);
        v

let enabled () = Obs_sync.with_lock lock (fun () -> !on)

(* [clearers] is read under the lock in both paths below (a shared
   helper reading it outside any visible [with_lock] is exactly what
   netcalc-lint's race-global rule rejects).  The registered closures
   only touch their own table, so running them while holding [lock]
   cannot re-enter it. *)
let clear () =
  Obs_sync.with_lock lock (fun () -> List.iter (fun f -> f ()) !clearers)

let set_enabled b =
  Obs_sync.with_lock lock (fun () ->
      if !on <> b then begin
        on := b;
        List.iter (fun f -> f ()) !clearers
      end)

let with_enabled b f =
  let prev = enabled () in
  if prev = b then f ()
  else begin
    (* set_enabled clears the tables on an actual toggle, so neither
       the bracketed run nor the restored state can see stale entries
       from the other regime. *)
    set_enabled b;
    Fun.protect ~finally:(fun () -> set_enabled prev) f
  end

type stats = { reuse : int; recompute : int; entries : int }

let stats () =
  let entries =
    Obs_sync.with_lock lock (fun () ->
        List.fold_left (fun acc f -> acc + f ()) 0 !sizers)
  in
  { reuse = Metrics.value c_reuse;
    recompute = Metrics.value c_recompute;
    entries }

(** Algorithm Integrated — the paper's contribution (Fig. 2).

    The feedforward network is partitioned into subnetworks of at most
    two FIFO servers ({!Pairing}); subnetworks are visited in
    topological order; each is analyzed jointly ({!Pair_analysis}),
    producing the delay its flows suffer {e across the whole
    subnetwork} and their output envelopes; end-to-end bounds are the
    sums of per-subnetwork delays along each route.

    Because a pair is analyzed jointly, a burst is only "paid" once per
    pair instead of once per server, and the transit traffic between
    the paired servers is bounded by the physical link rate — the two
    effects that make this method dominate Algorithm Decomposed.

    Only FIFO servers are supported (the paper derives the closed-form
    pair bound for FIFO; extending to static priority is listed as
    future work — see {!Static_priority} for the single-server SP
    machinery). *)

type t

val analyze :
  ?options:Options.t -> ?strategy:Pairing.strategy -> Network.t -> t
(** [strategy] defaults to [Pairing.Greedy].
    @raise Network.Cyclic on non-feedforward routing.
    @raise Invalid_argument when the network has a non-FIFO server. *)

val analyze_with_pairing : ?options:Options.t -> Network.t -> Pairing.t -> t
(** Use an externally supplied (validated) pairing. *)

val network : t -> Network.t
val pairing : t -> Pairing.t

val flow_delay : t -> int -> float
(** End-to-end bound for a flow. *)

val all_flow_delays : t -> (int * float) list

val subnet_delay : t -> flow:int -> subnet:Pairing.subnet -> float
(** The delay contribution a flow picks up in one subnetwork of the
    pairing.  @raise Invalid_argument if the flow does not cross it. *)

val subnet_delay_opt : t -> flow:int -> subnet:Pairing.subnet -> float option
(** [None] when the flow does not cross the subnetwork: for callers
    that enumerate the whole pairing and treat absence as data (the
    report tables). *)

val envelope_at : t -> flow:int -> server:int -> Pwl.t
(** Input envelope of a flow at a hop as propagated by this analysis. *)

val server_backlog : t -> int -> float
(** Aggregate backlog bound at a server, computed from the integrated
    input window (for the second server of a pair: link-capped,
    delay-inflated transit plus fresh traffic) — typically below the
    decomposed bound, since the integrated envelopes are tighter.
    [0.] for an idle server, [infinity] past an unstable one. *)

val server_flow_backlogs : t -> int -> (int * float) list
(** Per-flow backlog bounds at a server ({!Deviation.vdev_per_flow}
    against the integrated window), [(flow id, bound)] in id order. *)

val local_backlog : t -> flow:int -> server:int -> float
(** The flow's backlog bound at one of its hops.
    @raise Invalid_argument when the flow does not cross the server. *)

val flow_backlog : t -> int -> float
(** The flow's buffer requirement: its worst per-hop backlog bound
    over its route. *)

type reject_reason =
  | No_deadline
  | Cyclic_route
  | Deadline_violated of { flow : int; bound : float; deadline : float }
  | Buffer_violated of {
      flow : int;
      server : int;
      backlog : float;
      buffer : float;
    }

type verdict =
  | Accepted of { bounds : (int * float) list }
  | Rejected of reject_reason

type outcome = {
  admitted : Flow.t list;
  rejected : Flow.t list;
  rejections : (Flow.t * reject_reason) list;
  admitted_rate : float;
}

let deadline_ok ~bound ~deadline =
  Float.is_finite bound && bound <= deadline +. Float_ops.eps

let buffer_ok ~backlog ~buffer =
  Float.is_finite backlog && backlog <= buffer +. Float_ops.eps

let deadline_met bounds flows =
  List.for_all
    (fun (f : Flow.t) ->
      match f.deadline with
      | None -> true
      | Some dl -> (
          match List.assoc_opt f.id bounds with
          | Some b -> deadline_ok ~bound:b ~deadline:dl
          | None -> false))
    flows

(* Per-hop backlog bounds of one flow under a method.  Methods without
   a backlog notion of their own (Service Curve, FIFO-theta) borrow the
   decomposed engine's bounds, which are sound for any of them. *)
let flow_hop_backlogs ?options ?strategy net method_ (f : Flow.t) =
  match (method_ : Engine.method_) with
  | Engine.Decomposed | Engine.Service_curve | Engine.Fifo_theta ->
      let t = Decomposed.analyze ?options net in
      List.map
        (fun s -> (s, Decomposed.local_backlog t ~flow:f.id ~server:s))
        f.route
  | Engine.Integrated ->
      let t = Integrated.analyze ?options ?strategy net in
      List.map
        (fun s -> (s, Integrated.local_backlog t ~flow:f.id ~server:s))
        f.route
  | Engine.Integrated_sp ->
      let t = Integrated_sp.analyze ?options ?strategy net in
      List.map
        (fun s -> (s, Integrated_sp.local_backlog t ~flow:f.id ~server:s))
        f.route

(* A single flow's violation: the deadline check first, then — only if
   the flow carries a buffer budget — its per-hop backlog bounds, in
   route order. *)
let flow_violation ?options ?strategy net bounds method_ (f : Flow.t) =
  let deadline_v =
    match f.deadline with
    | None -> None
    | Some dl ->
        let b =
          match List.assoc_opt f.id bounds with
          | Some b -> b
          | None -> infinity
        in
        if deadline_ok ~bound:b ~deadline:dl then None
        else Some (Deadline_violated { flow = f.id; bound = b; deadline = dl })
  in
  match deadline_v with
  | Some _ -> deadline_v
  | None -> (
      match f.buffer with
      | None -> None
      | Some budget ->
          List.find_map
            (fun (s, b) ->
              if buffer_ok ~backlog:b ~buffer:budget then None
              else
                Some
                  (Buffer_violated
                     { flow = f.id; server = s; backlog = b; buffer = budget }))
            (flow_hop_backlogs ?options ?strategy net method_ f))

(* The violation a verdict reports: the lowest-id flow that fails a
   check (a flow with no bound in the list counts as unbounded), its
   deadline before its buffer.  Keyed by id, not list position, so the
   batch loop and the delta engine — which discovers violations in a
   different order — name the same culprit. *)
let first_violation ?options ?strategy net bounds method_ flows =
  flows
  |> List.sort (fun (a : Flow.t) (b : Flow.t) -> Int.compare a.id b.id)
  |> List.find_map (flow_violation ?options ?strategy net bounds method_)

let bounds_of_net ?options ?strategy net method_ =
  match (method_ : Engine.method_) with
  | Engine.Decomposed -> Decomposed.all_flow_delays (Decomposed.analyze ?options net)
  | Engine.Service_curve ->
      Service_curve_method.all_flow_delays
        (Service_curve_method.analyze ?options net)
  | Engine.Integrated ->
      Integrated.all_flow_delays (Integrated.analyze ?options ?strategy net)
  | Engine.Integrated_sp ->
      Integrated_sp.all_flow_delays
        (Integrated_sp.analyze ?options ?strategy net)
  | Engine.Fifo_theta ->
      Fifo_theta.all_flow_delays (Fifo_theta.analyze ?options net)

let bounds_for ?options ?strategy ~servers flows method_ =
  bounds_of_net ?options ?strategy (Network.make ~servers ~flows) method_

let decide_one ?options ?strategy ~servers ~flows ~candidate ~method_ () =
  match (candidate : Flow.t).deadline with
  | None -> Rejected No_deadline
  | Some _ -> (
      let all = flows @ [ candidate ] in
      let net = Network.make ~servers ~flows:all in
      match bounds_of_net ?options ?strategy net method_ with
      | exception Network.Cyclic -> Rejected Cyclic_route
      | bounds -> (
          match first_violation ?options ?strategy net bounds method_ all with
          | None -> Accepted { bounds }
          | Some reason -> Rejected reason))

let run ?options ?strategy ~servers ~base ~candidates ~method_ () =
  let step (admitted_rev, rejections_rev) (cand : Flow.t) =
    let flows = base @ List.rev admitted_rev in
    match
      decide_one ?options ?strategy ~servers ~flows ~candidate:cand ~method_ ()
    with
    | Accepted _ -> (cand :: admitted_rev, rejections_rev)
    | Rejected reason -> (admitted_rev, (cand, reason) :: rejections_rev)
  in
  let admitted_rev, rejections_rev = List.fold_left step ([], []) candidates in
  let admitted = List.rev admitted_rev in
  let rejections = List.rev rejections_rev in
  {
    admitted;
    rejected = List.map fst rejections;
    rejections;
    admitted_rate = Propagation.total_rate admitted;
  }

let reason_to_string = function
  | No_deadline -> "no deadline"
  | Cyclic_route -> "cyclic routing"
  | Deadline_violated { flow; bound; deadline } ->
      Printf.sprintf "flow %d bound %g > deadline %g" flow bound deadline
  | Buffer_violated { flow; server; backlog; buffer } ->
      Printf.sprintf "flow %d backlog %g at server %d > buffer %g" flow backlog
        server buffer

type reject_reason =
  | No_deadline
  | Cyclic_route
  | Deadline_violated of { flow : int; bound : float; deadline : float }

type verdict =
  | Accepted of { bounds : (int * float) list }
  | Rejected of reject_reason

type outcome = {
  admitted : Flow.t list;
  rejected : Flow.t list;
  rejections : (Flow.t * reject_reason) list;
  admitted_rate : float;
}

let deadline_ok ~bound ~deadline =
  Float.is_finite bound && bound <= deadline +. Float_ops.eps

let deadline_met bounds flows =
  List.for_all
    (fun (f : Flow.t) ->
      match f.deadline with
      | None -> true
      | Some dl -> (
          match List.assoc_opt f.id bounds with
          | Some b -> deadline_ok ~bound:b ~deadline:dl
          | None -> false))
    flows

(* The violation a verdict reports: the lowest-id flow whose deadline
   the analysis cannot prove (a flow with no bound in the list counts
   as unbounded).  Keyed by id, not list position, so the batch loop
   and the delta engine — which discovers violations in a different
   order — name the same culprit. *)
let first_violation bounds flows =
  List.filter_map
    (fun (f : Flow.t) ->
      match f.deadline with
      | None -> None
      | Some dl ->
          let b =
            match List.assoc_opt f.id bounds with
            | Some b -> b
            | None -> infinity
          in
          if deadline_ok ~bound:b ~deadline:dl then None else Some (f.id, b, dl))
    flows
  |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
  |> function
  | [] -> None
  | (flow, bound, deadline) :: _ ->
      Some (Deadline_violated { flow; bound; deadline })

let bounds_for ?options ?strategy ~servers flows method_ =
  let net = Network.make ~servers ~flows in
  match (method_ : Engine.method_) with
  | Engine.Decomposed -> Decomposed.all_flow_delays (Decomposed.analyze ?options net)
  | Engine.Service_curve ->
      Service_curve_method.all_flow_delays
        (Service_curve_method.analyze ?options net)
  | Engine.Integrated ->
      Integrated.all_flow_delays (Integrated.analyze ?options ?strategy net)
  | Engine.Integrated_sp ->
      Integrated_sp.all_flow_delays
        (Integrated_sp.analyze ?options ?strategy net)
  | Engine.Fifo_theta ->
      Fifo_theta.all_flow_delays (Fifo_theta.analyze ?options net)

let decide_one ?options ?strategy ~servers ~flows ~candidate ~method_ () =
  match (candidate : Flow.t).deadline with
  | None -> Rejected No_deadline
  | Some _ -> (
      let all = flows @ [ candidate ] in
      match bounds_for ?options ?strategy ~servers all method_ with
      | exception Network.Cyclic -> Rejected Cyclic_route
      | bounds -> (
          match first_violation bounds all with
          | None -> Accepted { bounds }
          | Some reason -> Rejected reason))

let run ?options ?strategy ~servers ~base ~candidates ~method_ () =
  let step (admitted_rev, rejections_rev) (cand : Flow.t) =
    let flows = base @ List.rev admitted_rev in
    match
      decide_one ?options ?strategy ~servers ~flows ~candidate:cand ~method_ ()
    with
    | Accepted _ -> (cand :: admitted_rev, rejections_rev)
    | Rejected reason -> (admitted_rev, (cand, reason) :: rejections_rev)
  in
  let admitted_rev, rejections_rev = List.fold_left step ([], []) candidates in
  let admitted = List.rev admitted_rev in
  let rejections = List.rev rejections_rev in
  {
    admitted;
    rejected = List.map fst rejections;
    rejections;
    admitted_rate = Propagation.total_rate admitted;
  }

let reason_to_string = function
  | No_deadline -> "no deadline"
  | Cyclic_route -> "cyclic routing"
  | Deadline_violated { flow; bound; deadline } ->
      Printf.sprintf "flow %d bound %g > deadline %g" flow bound deadline

(* Incremental (U, n) tandem sweeps — the paper's whole evaluation grid
   (Figures 4-6) as a single forward pass per load.

   The tandem family is prefix-closed: in [Tandem.make ~n], the flow
   population and every input envelope at middle server [k] are
   identical for all tandems with [n > k] (shrinking the tandem only
   removes servers {e downstream} of [k] — B_(n'-1)'s route truncation
   included).  A feedforward propagation at server [k] depends only on
   servers [< k], so one analysis of the largest tandem determines the
   delays of every prefix, bit for bit:

   - Decomposed: conn0's bound on [n'] hops is the running prefix sum
     (in route order, the same left fold as [Decomposed.flow_delay]) of
     the local delays computed on the max tandem.
   - Service Curve: the network curve of the [n'] prefix is the running
     [Curve_repr.conv] prefix of the per-hop leftover curves (the same
     left-fold association as [Curve_repr.conv_list]), with the same
     saturation rule: any saturated or poisoned hop [< n'] means
     [infinity].
   - Integrated (Along_route 0): the pairing of an even prefix is
     exactly the first [n'/2] pairs of the max pairing plus exit
     singletons that carry no conn0 contribution, so conn0's bound is
     the prefix sum of pair contributions in pairing order.  Odd
     prefixes pair differently (a trailing singleton mid), so they fall
     back to a direct analysis — every figure in the paper uses even
     hop counts.

   Cells served from the shared pass count as [incremental.reuse]; the
   underlying max-tandem analyses go through the per-method memo tables
   ({!Incremental}), so repeated figures over the same grid (fig4 vs
   fig6, delay vs improvement tables) reuse even the shared passes.
   With the engine disabled the grid falls back to one scratch
   [Engine.compare_all] per cell — the determinism tests pin that both
   paths produce byte-identical tables. *)

let scratch ?options ~with_theta ~sigma ~peak u n =
  let t = Tandem.make ~n ~utilization:u ~sigma ~peak () in
  Engine.compare_all ?options ~strategy:(Pairing.Along_route 0) ~with_theta
    t.network 0

let per_load ?options ~with_theta ~sigma ~peak ~hops u =
  let n_max = List.fold_left max 2 hops in
  let t = Tandem.make ~n:n_max ~utilization:u ~sigma ~peak () in
  let net = t.network in
  let alpha = Flow.source_curve t.conn0 in
  let dd = Decomposed.analyze ?options net in
  let integ =
    Integrated.analyze ?options ~strategy:(Pairing.Along_route 0) net
  in
  let scm = Service_curve_method.analyze ?options net in
  (* Running prefix sums/convolutions over the middle servers, indexed
     by prefix length. *)
  let dd_delay = Array.make (n_max + 1) 0. in
  for k = 0 to n_max - 1 do
    dd_delay.(k + 1) <-
      dd_delay.(k) +. Decomposed.local_delay dd ~flow:0 ~server:k
  done;
  (* Buffer requirement is a running prefix {e max} (the same left fold
     as [Decomposed.flow_backlog]), over the same shared pass. *)
  let dd_backlog = Array.make (n_max + 1) 0. in
  for k = 0 to n_max - 1 do
    dd_backlog.(k + 1) <-
      Float.max dd_backlog.(k) (Decomposed.local_backlog dd ~flow:0 ~server:k)
  done;
  let sc_delay = Array.make (n_max + 1) infinity in
  let conv = ref None and saturated = ref false in
  for k = 0 to n_max - 1 do
    if not !saturated then
      (match Service_curve_method.hop_service_curve scm ~flow:0 ~server:k with
      | beta ->
          if Pwl.final_slope beta <= 0. then saturated := true
          else
            conv :=
              Some
                (match !conv with
                | None -> beta
                | Some c -> Curve_repr.conv c beta)
      | exception Invalid_argument _ -> saturated := true);
    sc_delay.(k + 1) <-
      (if !saturated then infinity
       else
         match !conv with
         | Some beta -> Deviation.hdev ~alpha ~beta
         | None -> infinity)
  done;
  let integ_delay n' =
    if n' mod 2 = 0 then begin
      let total = ref 0. in
      for i = 0 to (n' / 2) - 1 do
        total :=
          !total
          +. Integrated.subnet_delay integ ~flow:0
               ~subnet:(Pairing.Pair ((2 * i), (2 * i) + 1))
      done;
      !total
    end
    else
      let tp = Tandem.make ~n:n' ~utilization:u ~sigma ~peak () in
      Integrated.flow_delay
        (Integrated.analyze ?options ~strategy:(Pairing.Along_route 0)
           tp.network)
        0
  in
  let integ_backlog n' =
    if n' mod 2 = 0 then begin
      (* Per-server backlogs at servers [< n'] are shared with the max
         pairing's first [n'/2] pairs; prefix max, as in
         [Integrated.flow_backlog]. *)
      let m = ref 0. in
      for k = 0 to n' - 1 do
        m := Float.max !m (Integrated.local_backlog integ ~flow:0 ~server:k)
      done;
      !m
    end
    else
      let tp = Tandem.make ~n:n' ~utilization:u ~sigma ~peak () in
      Integrated.flow_backlog
        (Integrated.analyze ?options ~strategy:(Pairing.Along_route 0)
           tp.network)
        0
  in
  let theta_delay n' =
    if not with_theta then nan
    else
      let tp = Tandem.make ~n:n' ~utilization:u ~sigma ~peak () in
      Fifo_theta.flow_delay (Fifo_theta.analyze ?options tp.network) 0
  in
  List.map
    (fun n' ->
      Incremental.note_reuse ();
      {
        Engine.flow = 0;
        decomposed = dd_delay.(n');
        service_curve = sc_delay.(n');
        integrated = integ_delay n';
        fifo_theta = theta_delay n';
        decomposed_backlog = dd_backlog.(n');
        integrated_backlog = integ_backlog n';
      })
    hops

let tandem_grid ?options ?(with_theta = false) ?(sigma = 1.) ?(peak = 1.)
    ~hops ~loads () =
  if hops = [] || loads = [] then []
  else if not (Incremental.enabled ()) then
    let cells =
      List.concat_map (fun u -> List.map (fun n -> (u, n)) hops) loads
    in
    Par.map (fun (u, n) -> scratch ?options ~with_theta ~sigma ~peak u n) cells
  else
    List.concat
      (Par.map (fun u -> per_load ?options ~with_theta ~sigma ~peak ~hops u) loads)

(** Connection admission control — the application the paper motivates
    its analysis with (Sec. 1: "admission control mechanisms that in
    turn use end-to-end delay computation algorithms").

    Candidate connections carry end-to-end deadlines; a connection is
    admitted when, with it added, the chosen analysis method still
    proves {e every} admitted connection's bound below its deadline.
    A tighter analysis admits more connections on the same plant —
    the utilization benefit of Algorithm Integrated.

    {!decide_one} is the single-candidate kernel shared by the batch
    {!run} loop and the long-lived [netcalc serve] service; {!run} is
    exactly a fold of {!decide_one} over the candidate list (tested). *)

type reject_reason =
  | No_deadline  (** candidates without a deadline are rejected outright *)
  | Cyclic_route  (** adding the candidate makes the routing graph cyclic *)
  | Deadline_violated of { flow : int; bound : float; deadline : float }
      (** admitting would break [flow]'s guarantee: its bound under the
          chosen method exceeds its deadline (the candidate itself when
          [flow] is the candidate's id; [bound] is [infinity] past an
          unstable server).  When several flows would miss their
          deadlines, the lowest id is reported. *)
  | Buffer_violated of {
      flow : int;
      server : int;
      backlog : float;
      buffer : float;
    }
      (** admitting would overflow [flow]'s buffer budget: its backlog
          bound at [server] exceeds its per-hop [buffer].  Checked only
          for flows that carry a budget, after every deadline check
          passes; the lowest flow id is reported, and for that flow the
          first over-budget hop along its route. *)

type verdict =
  | Accepted of { bounds : (int * float) list }
      (** per-flow bounds of the whole population with the candidate
          admitted, in id order (what the analysis proved) *)
  | Rejected of reject_reason

type outcome = {
  admitted : Flow.t list;      (** in the order they were accepted *)
  rejected : Flow.t list;      (** in the order they were refused *)
  rejections : (Flow.t * reject_reason) list;
      (** [rejected], each with the reason the analysis refused it *)
  admitted_rate : float;       (** sum of admitted long-run rates *)
}

val decide_one :
  ?options:Options.t ->
  ?strategy:Pairing.strategy ->
  servers:Server.t list ->
  flows:Flow.t list ->
  candidate:Flow.t ->
  method_:Engine.method_ ->
  unit ->
  verdict
(** Test one candidate against the current population [flows] (the
    candidate is appended after them, matching the batch loop's
    network construction).  Admission requires both feasibility checks:
    every deadline holds, and every flow with a [buffer] budget keeps
    its per-hop backlog bound within it (deadline ∧ buffer).
    @raise Invalid_argument on duplicate flow
    ids or a route through an unknown server. *)

val run :
  ?options:Options.t ->
  ?strategy:Pairing.strategy ->
  servers:Server.t list ->
  base:Flow.t list ->
  candidates:Flow.t list ->
  method_:Engine.method_ ->
  unit ->
  outcome
(** Sequentially test each candidate (first-come-first-served, no
    backtracking, as an online CAC would).  [base] flows are part of
    the network but have no deadline requirement unless they carry one.
    Candidates without a deadline are rejected outright.
    @raise Invalid_argument on duplicate flow ids. *)

val deadline_met : (int * float) list -> Flow.t list -> bool
(** [deadline_met bounds flows]: every flow with a deadline has a
    finite bound at most its deadline. *)

val deadline_ok : bound:float -> deadline:float -> bool
(** The single deadline feasibility predicate: finite and within
    tolerance ({!Float_ops.eps}) of the deadline. *)

val buffer_ok : backlog:float -> buffer:float -> bool
(** The single buffer feasibility predicate: finite backlog bound
    within tolerance of the budget.  Shared with the serve delta engine
    so both admission paths agree bit-for-bit. *)

val bounds_for :
  ?options:Options.t ->
  ?strategy:Pairing.strategy ->
  servers:Server.t list ->
  Flow.t list ->
  Engine.method_ ->
  (int * float) list
(** Per-flow end-to-end bounds of a flow population under one method,
    in id order — the analysis primitive behind {!decide_one}, exposed
    for services that must re-derive the full bound table (e.g. the
    serve full-re-analysis fallback after a teardown).
    @raise Network.Cyclic on non-feedforward routing. *)

val reason_to_string : reject_reason -> string
(** Human-readable rendering for CLI tables. *)

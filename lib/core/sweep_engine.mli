(** Incremental (U, n) tandem sweeps.

    The paper's evaluation grids (Figures 4-6) analyze the same tandem
    family at every hop count; because the family is prefix-closed and
    propagation is feedforward, one analysis of the largest tandem per
    load determines the bounds of every prefix bit-for-bit.  This
    module serves a whole grid from those shared passes (plus the
    {!Incremental} memo across figures), falling back to one scratch
    {!Engine.compare_all} per cell when the engine is disabled —
    producing byte-identical tables either way. *)

val tandem_grid :
  ?options:Options.t ->
  ?with_theta:bool ->
  ?sigma:float ->
  ?peak:float ->
  hops:int list ->
  loads:float list ->
  unit ->
  Engine.comparison list
(** [tandem_grid ~hops ~loads ()] is one {!Engine.comparison} of
    Connection 0 per grid cell, in the order
    [List.concat_map (fun u -> List.map (fun n -> (u, n)) hops) loads]
    (the row-major order the bench tables print in).  The pairing
    strategy is the paper's [Pairing.Along_route 0]; [with_theta]
    (default [false], like the figures) additionally runs the
    FIFO-theta extension per cell.  [sigma] and [peak] (defaults [1.])
    are passed to {!Tandem.make}. *)

type t = {
  net : Network.t;
  pairing : Pairing.subnet array;
  envs : Propagation.env_table;
  contributions : (int * int, float) Hashtbl.t; (* (flow, subnet idx) *)
  poisoned : (int * int, unit) Hashtbl.t;       (* (flow, server) *)
}

let network t = t.net
let pairing t = Array.to_list t.pairing

let require_fifo net =
  List.iter
    (fun (s : Server.t) ->
      if s.discipline <> Discipline.Fifo then
        invalid_arg
          (Printf.sprintf
             "Integrated: server %s is %s; the integrated method is derived \
              for FIFO servers only"
             s.name
             (Discipline.to_string s.discipline)))
    (Network.servers net)

(* Sum of the given flows' envelopes at [server], honoring the link-cap
   option (each same-upstream group capped by the upstream rate). *)
let class_envelope options net envs ~server flows =
  if flows = [] then Pwl.zero
  else Propagation.aggregate_input ~options net envs ~server ~flows

let poison_rest poisoned (f : Flow.t) ~from =
  let rec mark = function
    | s :: rest ->
        if s = from then
          List.iter (fun s' -> Hashtbl.replace poisoned (f.id, s') ()) rest
        else mark rest
    | [] -> ()
  in
  mark f.route

let c_pairs = Metrics.counter "integrated.subnets.pairs"
let c_singles = Metrics.counter "integrated.subnets.singles"

let analyze_with_pairing ?(options = Options.default) net pairing_list =
  Prof.span "integrated.analyze" @@ fun () ->
  require_fifo net;
  Pairing.validate net pairing_list;
  let pairing = Array.of_list pairing_list in
  let envs = Propagation.create net in
  let contributions = Hashtbl.create 64 in
  let poisoned = Hashtbl.create 4 in
  let record idx (f : Flow.t) ~entry ~last d =
    Hashtbl.replace contributions (f.id, idx) d;
    if d = infinity then poison_rest poisoned f ~from:last
    else
      let env = Propagation.get envs ~flow:f.id ~server:entry in
      Propagation.set_next envs f ~after:last
        (Options.compact_envelope options (Pwl.shift_left env d))
  in
  Array.iteri
    (fun idx subnet ->
      match subnet with
      | Pairing.Single u ->
          Prof.count c_singles;
          let present = Network.flows_at net u in
          if present <> [] then begin
            let bad =
              List.exists
                (fun (f : Flow.t) -> Hashtbl.mem poisoned (f.id, u))
                present
            in
            let d =
              if bad then infinity
              else
                Fifo.local_delay ~rate:(Network.server net u).Server.rate
                  ~agg:
                    (Propagation.aggregate_input ~options net envs ~server:u
                       ~flows:present)
            in
            List.iter (fun f -> record idx f ~entry:u ~last:u d) present
          end
      | Pairing.Pair (u, v) ->
          Prof.count c_pairs;
          let at_u = Network.flows_at net u and at_v = Network.flows_at net v in
          let s12, s1 =
            List.partition
              (fun (f : Flow.t) -> Flow.next_hop f u = Some v)
              at_u
          in
          let s2 =
            List.filter
              (fun (f : Flow.t) ->
                not (List.exists (fun (g : Flow.t) -> g.id = f.id) s12))
              at_v
          in
          let bad =
            List.exists (fun (f : Flow.t) -> Hashtbl.mem poisoned (f.id, u))
              (s12 @ s1)
            || List.exists (fun (f : Flow.t) -> Hashtbl.mem poisoned (f.id, v))
                 s2
          in
          let result =
            if bad then
              {
                Pair_analysis.d_pair = infinity;
                d1 = infinity;
                d2 = infinity;
                busy1 = infinity;
                busy2 = infinity;
              }
            else
              Pair_analysis.analyze
                {
                  c1 = (Network.server net u).Server.rate;
                  c2 = (Network.server net v).Server.rate;
                  s12 = [ class_envelope options net envs ~server:u s12 ];
                  s1 = [ class_envelope options net envs ~server:u s1 ];
                  s2 = [ class_envelope options net envs ~server:v s2 ];
                }
          in
          List.iter
            (fun f -> record idx f ~entry:u ~last:v result.Pair_analysis.d_pair)
            s12;
          List.iter
            (fun f -> record idx f ~entry:u ~last:u result.Pair_analysis.d1)
            s1;
          List.iter
            (fun f -> record idx f ~entry:v ~last:v result.Pair_analysis.d2)
            s2)
    pairing;
  { net; pairing; envs; contributions; poisoned }

let memo : t Incremental.table = Incremental.table ()

let analyze ?(options = Options.default) ?(strategy = Pairing.Greedy) net =
  Incremental.memoize memo
    (Incremental.net_key ~options ~strategy net)
    (fun () -> analyze_with_pairing ~options net (Pairing.build net strategy))

let flow_delay t id =
  let total = ref 0. in
  Array.iteri
    (fun idx _ ->
      match Hashtbl.find_opt t.contributions (id, idx) with
      | Some d -> total := !total +. d
      | None -> ())
    t.pairing;
  !total

let all_flow_delays t =
  Network.flows t.net
  |> List.map (fun (f : Flow.t) -> (f.id, flow_delay t f.id))
  |> List.sort compare

let subnet_delay t ~flow ~subnet =
  let idx = ref None in
  Array.iteri (fun i s -> if s = subnet then idx := Some i) t.pairing;
  match !idx with
  | None -> raise Not_found
  | Some i -> (
      match Hashtbl.find_opt t.contributions (flow, i) with
      | Some d -> d
      | None -> raise Not_found)

let envelope_at t ~flow ~server =
  if Hashtbl.mem t.poisoned (flow, server) then
    invalid_arg "Integrated.envelope_at: unbounded envelope"
  else Propagation.get t.envs ~flow ~server

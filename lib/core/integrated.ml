type t = {
  net : Network.t;
  pairing : Pairing.subnet array;
  envs : Propagation.env_table;
  contributions : (int * int, float) Hashtbl.t; (* (flow, subnet idx) *)
  poisoned : (int * int, unit) Hashtbl.t;       (* (flow, server) *)
  server_backlogs : (int, float) Hashtbl.t;
  flow_backlogs : (int * int, float) Hashtbl.t; (* (flow, server) *)
}

let network t = t.net
let pairing t = Array.to_list t.pairing

let require_fifo net =
  List.iter
    (fun (s : Server.t) ->
      if s.discipline <> Discipline.Fifo then
        invalid_arg
          (Printf.sprintf
             "Integrated: server %s is %s; the integrated method is derived \
              for FIFO servers only"
             s.name
             (Discipline.to_string s.discipline)))
    (Network.servers net)

(* Sum of the given flows' envelopes at [server], honoring the link-cap
   option (each same-upstream group capped by the upstream rate). *)
let class_envelope options net envs ~server flows =
  if flows = [] then Pwl.zero
  else Propagation.aggregate_input ~options net envs ~server ~flows

let poison_rest poisoned (f : Flow.t) ~from =
  let rec mark = function
    | s :: rest ->
        if s = from then
          List.iter (fun s' -> Hashtbl.replace poisoned (f.id, s') ()) rest
        else mark rest
    | [] -> ()
  in
  mark f.route

let c_pairs = Metrics.counter "integrated.subnets.pairs"
let c_singles = Metrics.counter "integrated.subnets.singles"

let analyze_with_pairing ?(options = Options.default) net pairing_list =
  Prof.span "integrated.analyze" @@ fun () ->
  require_fifo net;
  Pairing.validate net pairing_list;
  let pairing = Array.of_list pairing_list in
  let envs = Propagation.create net in
  let contributions = Hashtbl.create 64 in
  let poisoned = Hashtbl.create 4 in
  let server_backlogs = Hashtbl.create 16 in
  let flow_backlogs = Hashtbl.create 64 in
  (* Backlog bookkeeping: per-server aggregate bound plus the minimal
     per-flow split, computed from the same integrated input windows
     the delay analysis uses.  [alphas] pairs each present flow with
     its envelope at the server's input (for transit flows at the
     second server of a pair, the delay-inflated upstream envelope,
     which the env table never holds). *)
  let record_backlogs sid ~agg ~alphas =
    let rate = (Network.server net sid).Server.rate in
    Hashtbl.replace server_backlogs sid (Fifo.backlog ~rate ~agg);
    let beta = Pwl.affine ~y0:0. ~slope:rate in
    List.iter
      (fun ((f : Flow.t), alpha_i) ->
        Hashtbl.replace flow_backlogs (f.id, sid)
          (match alpha_i with
          | Some alpha_i -> Deviation.vdev_per_flow ~alpha_i ~agg ~beta
          | None -> infinity))
      alphas
  in
  let record_backlogs_bad sid flows =
    Hashtbl.replace server_backlogs sid infinity;
    List.iter
      (fun (f : Flow.t) -> Hashtbl.replace flow_backlogs (f.id, sid) infinity)
      flows
  in
  let record idx (f : Flow.t) ~entry ~last d =
    Hashtbl.replace contributions (f.id, idx) d;
    if d = infinity then poison_rest poisoned f ~from:last
    else
      let env = Propagation.get envs ~flow:f.id ~server:entry in
      Propagation.set_next envs f ~after:last
        (Options.compact_envelope options (Pwl.shift_left env d))
  in
  Array.iteri
    (fun idx subnet ->
      match subnet with
      | Pairing.Single u ->
          Prof.count c_singles;
          let present = Network.flows_at net u in
          if present <> [] then begin
            let bad =
              List.exists
                (fun (f : Flow.t) -> Hashtbl.mem poisoned (f.id, u))
                present
            in
            let d =
              if bad then begin
                record_backlogs_bad u present;
                infinity
              end
              else begin
                let agg =
                  Propagation.aggregate_input ~options net envs ~server:u
                    ~flows:present
                in
                record_backlogs u ~agg
                  ~alphas:
                    (List.map
                       (fun (f : Flow.t) ->
                         (f, Some (Propagation.get envs ~flow:f.id ~server:u)))
                       present);
                Fifo.local_delay ~rate:(Network.server net u).Server.rate ~agg
              end
            in
            List.iter (fun f -> record idx f ~entry:u ~last:u d) present
          end
      | Pairing.Pair (u, v) ->
          Prof.count c_pairs;
          let at_u = Network.flows_at net u and at_v = Network.flows_at net v in
          let s12, s1 =
            List.partition
              (fun (f : Flow.t) -> Flow.next_hop f u = Some v)
              at_u
          in
          let s2 =
            List.filter
              (fun (f : Flow.t) ->
                not (List.exists (fun (g : Flow.t) -> g.id = f.id) s12))
              at_v
          in
          let bad =
            List.exists (fun (f : Flow.t) -> Hashtbl.mem poisoned (f.id, u))
              (s12 @ s1)
            || List.exists (fun (f : Flow.t) -> Hashtbl.mem poisoned (f.id, v))
                 s2
          in
          let result =
            if bad then begin
              record_backlogs_bad u at_u;
              record_backlogs_bad v at_v;
              {
                Pair_analysis.d_pair = infinity;
                d1 = infinity;
                d2 = infinity;
                busy1 = infinity;
                busy2 = infinity;
                b1 = infinity;
                b2 = infinity;
              }
            end
            else begin
              let g12 = class_envelope options net envs ~server:u s12 in
              let g1 = class_envelope options net envs ~server:u s1 in
              let g2 = class_envelope options net envs ~server:v s2 in
              let c1 = (Network.server net u).Server.rate in
              let result =
                Pair_analysis.analyze
                  {
                    c1;
                    c2 = (Network.server net v).Server.rate;
                    s12 = [ g12 ];
                    s1 = [ g1 ];
                    s2 = [ g2 ];
                  }
              in
              let env_at s (f : Flow.t) =
                Propagation.get envs ~flow:f.id ~server:s
              in
              record_backlogs u
                ~agg:(Pwl.add g12 g1)
                ~alphas:
                  (List.map (fun f -> (f, Some (env_at u f))) (s12 @ s1));
              (* At server v the transit aggregate is the integrated
                 window (link-capped, delay-inflated as a whole); each
                 transit flow's own envelope there is its upstream one
                 shifted by the server-1 class bound d1. *)
              let d1 = result.Pair_analysis.d1 in
              let link = Pwl.affine ~y0:0. ~slope:c1 in
              let transit =
                if d1 = infinity then link
                else Pwl.min_pw link (Pwl.shift_left g12 d1)
              in
              record_backlogs v ~agg:(Pwl.add transit g2)
                ~alphas:
                  (List.map
                     (fun (f : Flow.t) ->
                       if Float_ops.is_finite d1 then
                         (f, Some (Pwl.shift_left (env_at u f) d1))
                       else (f, None))
                     s12
                  @ List.map (fun f -> (f, Some (env_at v f))) s2);
              result
            end
          in
          List.iter
            (fun f -> record idx f ~entry:u ~last:v result.Pair_analysis.d_pair)
            s12;
          List.iter
            (fun f -> record idx f ~entry:u ~last:u result.Pair_analysis.d1)
            s1;
          List.iter
            (fun f -> record idx f ~entry:v ~last:v result.Pair_analysis.d2)
            s2)
    pairing;
  { net; pairing; envs; contributions; poisoned; server_backlogs; flow_backlogs }

let memo : t Incremental.table = Incremental.table ()

let analyze ?(options = Options.default) ?(strategy = Pairing.Greedy) net =
  Incremental.memoize memo
    (Incremental.net_key ~options ~strategy net)
    (fun () -> analyze_with_pairing ~options net (Pairing.build net strategy))

let flow_delay t id =
  let total = ref 0. in
  Array.iteri
    (fun idx _ ->
      match Hashtbl.find_opt t.contributions (id, idx) with
      | Some d -> total := !total +. d
      | None -> ())
    t.pairing;
  !total

let all_flow_delays t =
  Network.flows t.net
  |> List.map (fun (f : Flow.t) -> (f.id, flow_delay t f.id))
  |> List.sort compare

let subnet_delay_opt t ~flow ~subnet =
  let idx = ref None in
  Array.iteri (fun i s -> if s = subnet then idx := Some i) t.pairing;
  match !idx with
  | None -> None
  | Some i -> Hashtbl.find_opt t.contributions (flow, i)

let subnet_delay t ~flow ~subnet =
  match subnet_delay_opt t ~flow ~subnet with
  | Some d -> d
  | None ->
      invalid_arg
        (Printf.sprintf
           "Integrated.subnet_delay: flow %d does not cross the requested \
            subnet"
           flow)

let envelope_at t ~flow ~server =
  if Hashtbl.mem t.poisoned (flow, server) then
    invalid_arg "Integrated.envelope_at: unbounded envelope"
  else Propagation.get t.envs ~flow ~server

let server_backlog t sid =
  match Hashtbl.find_opt t.server_backlogs sid with Some b -> b | None -> 0.

let local_backlog t ~flow ~server =
  match Hashtbl.find_opt t.flow_backlogs (flow, server) with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf
           "Integrated.local_backlog: flow %d does not cross server %d" flow
           server)

let server_flow_backlogs t sid =
  Network.flows_at t.net sid
  |> List.map (fun (f : Flow.t) -> (f.id, local_backlog t ~flow:f.id ~server:sid))
  |> List.sort compare

let flow_backlog t id =
  let f = Network.flow t.net id in
  List.fold_left
    (fun acc s -> Float.max acc (local_backlog t ~flow:id ~server:s))
    0. f.route

(** Integrated delay analysis of a two-multiplexor subsystem
    (paper Sec. 2, Fig. 1; Theorem 1 as re-derived in DESIGN.md §3.3).

    Server 1 feeds server 2.  Flow sets, with the envelopes their
    traffic satisfies {e at the subsystem entry}:
    - [s12]: traverse server 1 then server 2;
    - [s1]:  traverse server 1 only;
    - [s2]:  enter at server 2 only.

    The computed quantities:
    - [d_pair]: end-to-end bound through both servers for [s12]
      traffic.  The integration step bounds the transit traffic
      entering server 2 by the physical link rate of server 1 and by
      the joint source constraint of the transit flows — which is what
      the decomposition-based method loses (its per-flow inflated
      envelopes add bursts the shared link physically cannot deliver
      simultaneously);
    - [d1]: local bound at server 1 (for [s1] traffic);
    - [d2]: local bound at server 2 (for [s2] traffic), also
      integrated: the transit aggregate is rate-capped and
      delay-inflated as a whole.

    All bounds are [infinity] when the corresponding server is
    unstable.

    Two entry points: {!analyze} for plain FIFO servers of constant
    rate (the paper's setting), and {!analyze_general} where each
    server offers the analyzed traffic class a convex {e service
    curve} — the generalization that carries the integrated method to
    static-priority classes (the paper's Sec. 5 future work), with the
    class's leftover curve [(C t - higher t)^+] as [beta]. *)

type input = {
  c1 : float;
  c2 : float;
  s12 : Pwl.t list;
  s1 : Pwl.t list;
  s2 : Pwl.t list;
}

type general_input = {
  link1 : float;  (** physical rate of server 1's output link — caps
                      {e all} transit regardless of class *)
  beta1 : Pwl.t;  (** convex service curve offered by server 1 to the
                      analyzed class ([lambda_C] for FIFO) *)
  beta2 : Pwl.t;  (** same for server 2 *)
  g12 : Pwl.t;    (** aggregate entry envelope of the s12 flows *)
  g1 : Pwl.t;     (** same for s1 flows *)
  g2 : Pwl.t;     (** same for s2 flows *)
}

type result = {
  d_pair : float;  (** end-to-end bound for [s12] flows *)
  d1 : float;      (** server-1 bound for [s1] flows *)
  d2 : float;      (** server-2 bound for [s2] flows *)
  busy1 : float;   (** server-1 busy-period bound [B1] *)
  busy2 : float;   (** server-2 busy-period bound [B2] *)
  b1 : float;      (** backlog bound of the analyzed class at server 1:
                       [vdev (g12 + g1) beta1] *)
  b2 : float;      (** backlog bound at server 2, for the integrated
                       (rate-capped, delay-inflated) input window *)
}

val analyze : input -> result
(** FIFO servers of constant rates [c1], [c2]. *)

val analyze_general : general_input -> result
(** Service-curve servers.  Requires [beta1], [beta2] convex
    nondecreasing with positive final slope (checked); the FIFO case
    [beta_i = lambda_(c_i)] makes this coincide with {!analyze}. *)

val single : rate:float -> envelopes:Pwl.t list -> float
(** Delay bound of a singleton subnetwork (one FIFO server). *)

val single_general : beta:Pwl.t -> agg:Pwl.t -> float
(** Delay bound of a singleton service-curve server for an aggregate:
    [hdev agg beta]. *)

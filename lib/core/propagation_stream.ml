(* Streaming frontier propagation — the memory-bounded scale-out path.

   The table-based engines (Decomposed & friends) materialize the full
   (flow, server) -> envelope table: total_hop_count curves stay
   resident until the analysis object dies.  That is fine for tandems
   of a few hundred servers and fatal at 10^5-10^6: the envelopes are
   the memory.

   This engine exploits the one-shot consumption structure of the
   forward pass instead.  The envelope of flow f at the input of
   server s has exactly one consumer: the local analysis of s itself
   (aggregate + per-flow delay).  So the pass can run level by level
   over the antichain decomposition of the routing DAG
   (Network.levels), install each flow's source curve only when its
   first hop's level begins, and evict (f, s) the moment s has been
   analyzed.  What stays resident — the live frontier — is only the
   envelopes crossing the current antichain boundary, bounded by the
   flow population of two adjacent levels, never by the topology size.

   Within a level no server depends on another (every edge crosses
   levels strictly upward), so the per-server work is sharded across
   the netcalc.par domain pool: workers only read the shared tables
   (envelope reads of already-written entries, poison marks written by
   strictly earlier levels), and all writes — local delays, poison
   marks, next-hop installs, evictions — happen in a sequential merge
   in ascending server order.  Per-server arithmetic is identical to
   Decomposed's (same Local_bounds.at_server, same shift + compaction),
   and the merge order is deterministic, so the results are
   bit-identical to the table-based path at any jobs count (pinned by
   tests).

   Frontier accounting is published as netcalc.obs metrics:
   [propagation.frontier.live] (resident-entry count observed at each
   level boundary), [propagation.frontier.peak] (high watermark) and
   [propagation.frontier.evicted] (entries dropped). *)

type frontier_stats = {
  peak_live : int;
  evicted : int;
  total_pairs : int;
  widest_antichain : int;
  levels : int;
}

type t = {
  net : Network.t;
  options : Options.t;
  locals : (int * int, float) Hashtbl.t; (* (flow, server) -> local bound *)
  stats : frontier_stats;
}

let network t = t.net
let frontier_stats t = t.stats

let c_evicted = Metrics.counter "propagation.frontier.evicted"
let d_live = Metrics.dist "propagation.frontier.live"
let p_peak = Metrics.peak "propagation.frontier.peak"

(* Outcome of one server's (read-only) local analysis, applied by the
   sequential merge. *)
type server_result = {
  sid : int;
  present : Flow.t list;
  (* None: a flow present here was poisoned upstream — every present
     flow gets an infinite local bound and poisons its remaining hops
     (exactly Decomposed's rule).  Some: per-flow local delay plus the
     shifted envelope to install at the next hop (None when the delay
     is infinite or the hop is the flow's last). *)
  bounds : (Flow.t * float * Pwl.t option) list option;
}

let analyze ?(options = Options.default) ?jobs net =
  let levels = Network.levels net in
  let locals = Hashtbl.create 1024 in
  let poisoned = Hashtbl.create 64 in
  let envs = Propagation.empty ~size_hint:1024 () in
  (* Group the source installs by the level of each flow's first hop,
     so a curve only becomes resident when its consumer's antichain is
     next in line. *)
  let level_of = Hashtbl.create (max 16 (Network.size net)) in
  List.iteri
    (fun i sids -> List.iter (fun sid -> Hashtbl.replace level_of sid i) sids)
    levels;
  let n_levels = List.length levels in
  let installs = Array.make (max 1 n_levels) [] in
  List.iter
    (fun (f : Flow.t) ->
      let l = Hashtbl.find level_of (Flow.first_hop f) in
      installs.(l) <- f :: installs.(l))
    (Network.flows net);
  Array.iteri (fun i fs -> installs.(i) <- List.rev fs) installs;
  let peak_live = ref 0 in
  let evicted = ref 0 in
  let observe_live () =
    let live = Propagation.length envs in
    if live > !peak_live then peak_live := live;
    if Prof.enabled () then begin
      Metrics.observe d_live (float_of_int live);
      Metrics.observe_peak p_peak live
    end
  in
  let poison_rest (f : Flow.t) ~from =
    let rec mark = function
      | s :: rest ->
          if s = from then
            List.iter (fun s' -> Hashtbl.replace poisoned (f.id, s') ()) rest
          else mark rest
      | [] -> ()
    in
    mark f.route
  in
  (* Read-only per-server analysis, safe to run concurrently: [envs]
     and [poisoned] were last written while merging a strictly earlier
     level. *)
  let analyze_server sid =
    let present = Network.flows_at net sid in
    if present = [] then { sid; present; bounds = None }
    else if
      List.exists (fun (f : Flow.t) -> Hashtbl.mem poisoned (f.id, sid)) present
    then { sid; present; bounds = None }
    else begin
      let with_envs =
        List.map
          (fun (f : Flow.t) -> (f, Propagation.get envs ~flow:f.id ~server:sid))
          present
      in
      let delays =
        Local_bounds.at_server ~options net envs ~server:sid
      in
      let bounds =
        List.map2
          (fun ((f : Flow.t), env) ((f' : Flow.t), d) ->
            assert (f.id = f'.id);
            let next =
              if d = infinity then None
              else
                match Flow.next_hop f sid with
                | Some _ ->
                    Some
                      (Options.compact_envelope options (Pwl.shift_left env d))
                | None -> None
            in
            (f, d, next))
          with_envs delays
      in
      { sid; present; bounds = Some bounds }
    end
  in
  List.iteri
    (fun li sids ->
      (* Phase 1: this level's source curves become resident. *)
      List.iter
        (fun (f : Flow.t) ->
          Propagation.install_source envs f)
        installs.(li);
      observe_live ();
      (* Phase 2: shard the antichain across the pool.  Par.map returns
         results in list order whatever the schedule, and [sids] is
         sorted, so the merge below is deterministic. *)
      let results = Par.map ?jobs analyze_server sids in
      (* Phase 3: sequential merge in ascending server order — the only
         writer of locals / poisons / next-hop installs. *)
      List.iter
        (fun r ->
          match r.bounds with
          | None ->
              List.iter
                (fun (f : Flow.t) ->
                  if r.present <> [] then begin
                    Hashtbl.replace locals (f.id, r.sid) infinity;
                    poison_rest f ~from:r.sid
                  end)
                r.present
          | Some bounds ->
              List.iter
                (fun ((f : Flow.t), d, next) ->
                  Hashtbl.replace locals (f.id, r.sid) d;
                  if d = infinity then poison_rest f ~from:r.sid
                  else
                    match (Flow.next_hop f r.sid, next) with
                    | Some s', Some env ->
                        Propagation.set envs ~flow:f.id ~server:s' env
                    | _ -> ())
                bounds)
        results;
      observe_live ();
      (* Phase 4: every (f, sid) of this level has been consumed. *)
      List.iter
        (fun r ->
          List.iter
            (fun (f : Flow.t) ->
              match Propagation.find_opt envs ~flow:f.id ~server:r.sid with
              | Some _ ->
                  Propagation.remove envs ~flow:f.id ~server:r.sid;
                  incr evicted
              | None -> ())
            r.present)
        results)
    levels;
  if Prof.enabled () then Metrics.add c_evicted !evicted;
  let stats =
    {
      peak_live = !peak_live;
      evicted = !evicted;
      total_pairs = Network.total_hop_count net;
      widest_antichain =
        List.fold_left (fun acc l -> max acc (List.length l)) 0 levels;
      levels = n_levels;
    }
  in
  { net; options; locals; stats }

let local_delay t ~flow ~server =
  match Hashtbl.find_opt t.locals (flow, server) with
  | Some d -> d
  | None ->
      invalid_arg
        (Printf.sprintf
           "Propagation_stream.local_delay: flow %d does not cross server %d"
           flow server)

let flow_delay t id =
  let f = Network.flow t.net id in
  List.fold_left (fun acc s -> acc +. local_delay t ~flow:id ~server:s) 0.
    f.route

let all_flow_delays t =
  Network.flows t.net
  |> List.map (fun (f : Flow.t) -> (f.id, flow_delay t f.id))
  |> List.sort compare

type t = {
  net : Network.t;
  locals : (int * int, float) Hashtbl.t; (* (flow, server) -> local bound *)
  converged : bool;
  iterations : int;
}

let converged t = t.converged
let iterations t = t.iterations

(* Distance between two envelopes (sup norm); the envelopes share the
   same long-run rate, so this is finite whenever both are. *)
let distance a b =
  Float.max (Pwl.sup_diff a b) (Pwl.sup_diff b a)

let c_runs = Metrics.counter "fixed_point.runs"
let c_iterations = Metrics.counter "fixed_point.iterations"

let analyze ?(options = Options.default) ?(max_iter = 200) ?(tol = 1e-9) net =
  Prof.count c_runs;
  Prof.span "fixed_point.analyze" @@ fun () ->
  let flows = Network.flows net in
  let servers = Network.servers net in
  let locals = Hashtbl.create 64 in
  (* Optimistic seed: every flow carries its source envelope at every
     hop.  The iteration operator is monotone, so the iterates only
     grow from here. *)
  let seed () =
    let table = Propagation.create net in
    List.iter
      (fun (f : Flow.t) ->
        List.iter
          (fun sid ->
            Propagation.set table ~flow:f.id ~server:sid (Flow.source_curve f))
          f.route)
      flows;
    table
  in
  let envs = ref (seed ()) in
  let rec iterate round =
    if round >= max_iter then (false, round)
    else begin
      (* Jacobi step: all local delays from the current table, then all
         envelope updates into a fresh table.  Per-server bounds only
         read the (frozen) current table, so they are independent —
         exactly the structure a Jacobi sweep buys over Gauss-Seidel —
         and run on the netcalc.par pool.  [Par.map] keeps list order,
         so the fold below applies updates in the sequential order and
         the iterates are bit-identical at any jobs count. *)
      let delays =
        Par.map
          (fun (s : Server.t) ->
            (s.id, Local_bounds.at_server ~options net !envs ~server:s.id))
          servers
      in
      let diverged = ref false in
      List.iter
        (fun (sid, per_flow) ->
          List.iter
            (fun ((f : Flow.t), d) ->
              Hashtbl.replace locals (f.id, sid) d;
              if d = infinity then diverged := true)
            per_flow)
        delays;
      if !diverged then (false, round + 1)
      else begin
        let next = seed () in
        List.iter
          (fun (sid, per_flow) ->
            List.iter
              (fun ((f : Flow.t), d) ->
                match Flow.next_hop f sid with
                | Some s' ->
                    Propagation.set next ~flow:f.id ~server:s'
                      (Options.compact_envelope options
                         (Pwl.shift_left
                            (Propagation.get !envs ~flow:f.id ~server:sid)
                            d))
                | None -> ())
              per_flow)
          delays;
        let change =
          List.fold_left
            (fun acc (f : Flow.t) ->
              List.fold_left
                (fun acc sid ->
                  Float.max acc
                    (distance
                       (Propagation.get next ~flow:f.id ~server:sid)
                       (Propagation.get !envs ~flow:f.id ~server:sid)))
                acc f.route)
            0. flows
        in
        envs := next;
        if change <= tol then (true, round + 1) else iterate (round + 1)
      end
    end
  in
  let ok, rounds = iterate 0 in
  Prof.count_n c_iterations rounds;
  { net; locals; converged = ok; iterations = rounds }

let local_delay t ~flow ~server =
  match Hashtbl.find_opt t.locals (flow, server) with
  | Some d -> if t.converged then d else infinity
  | None ->
      invalid_arg
        (Printf.sprintf
           "Fixed_point.local_delay: flow %d does not cross server %d" flow
           server)

let flow_delay t id =
  if not t.converged then infinity
  else
    let f = Network.flow t.net id in
    List.fold_left
      (fun acc sid -> acc +. local_delay t ~flow:id ~server:sid)
      0. f.route

let all_flow_delays t =
  Network.flows t.net
  |> List.map (fun (f : Flow.t) -> (f.id, flow_delay t f.id))
  |> List.sort compare

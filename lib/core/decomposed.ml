type t = {
  net : Network.t;
  options : Options.t;
  envs : Propagation.env_table;
  locals : (int * int, float) Hashtbl.t; (* (flow, server) -> local bound *)
  poisoned : (int * int, unit) Hashtbl.t; (* hops with unbounded envelope *)
}

let network t = t.net

let analyze_raw ~options net =
  let order = Network.topological_order net in
  let envs = Propagation.create net in
  let locals = Hashtbl.create 64 in
  let poisoned = Hashtbl.create 4 in
  let poison_rest (f : Flow.t) ~from =
    let rec mark = function
      | s :: rest ->
          if s = from then
            List.iter (fun s' -> Hashtbl.replace poisoned (f.id, s') ()) rest
          else mark rest
      | [] -> ()
    in
    mark f.route
  in
  List.iter
    (fun sid ->
      let present = Network.flows_at net sid in
      if present <> [] then begin
        let unbounded =
          List.exists (fun (f : Flow.t) -> Hashtbl.mem poisoned (f.id, sid))
            present
        in
        if unbounded then
          List.iter
            (fun (f : Flow.t) ->
              Hashtbl.replace locals (f.id, sid) infinity;
              poison_rest f ~from:sid)
            present
        else begin
          let with_envs =
            List.map
              (fun (f : Flow.t) ->
                (f, Propagation.get envs ~flow:f.id ~server:sid))
              present
          in
          let delays = Local_bounds.at_server ~options net envs ~server:sid in
          List.iter2
            (fun ((f : Flow.t), env) ((f' : Flow.t), d) ->
              assert (f.id = f'.id);
              Hashtbl.replace locals (f.id, sid) d;
              if d = infinity then poison_rest f ~from:sid
              else
                Propagation.set_next envs f ~after:sid
                  (Options.compact_envelope options (Pwl.shift_left env d)))
            with_envs delays
        end
      end)
    order;
  { net; options; envs; locals; poisoned }

(* The sweep-engine memo: one entry per structurally distinct
   (network, options).  The result record is only mutated during
   [analyze_raw], so sharing it between callers is safe. *)
let memo : t Incremental.table = Incremental.table ()

let analyze ?(options = Options.default) net =
  Incremental.memoize memo
    (Incremental.net_key ~options net)
    (fun () -> analyze_raw ~options net)

let local_delay t ~flow ~server =
  match Hashtbl.find_opt t.locals (flow, server) with
  | Some d -> d
  | None ->
      invalid_arg
        (Printf.sprintf
           "Decomposed.local_delay: flow %d does not cross server %d" flow
           server)

let flow_delay t id =
  let f = Network.flow t.net id in
  List.fold_left (fun acc s -> acc +. local_delay t ~flow:id ~server:s) 0.
    f.route

let all_flow_delays t =
  Network.flows t.net
  |> List.map (fun (f : Flow.t) -> (f.id, flow_delay t f.id))
  |> List.sort compare

let envelope_at t ~flow ~server =
  if Hashtbl.mem t.poisoned (flow, server) then
    invalid_arg "Decomposed.envelope_at: unbounded envelope (unstable upstream)"
  else Propagation.get t.envs ~flow ~server

let server_delay t sid =
  Network.flows_at t.net sid
  |> List.map (fun (f : Flow.t) -> local_delay t ~flow:f.id ~server:sid)
  |> List.fold_left Float.max 0.

let server_aggregate t sid =
  let present = Network.flows_at t.net sid in
  if present = [] then None
  else if
    List.exists (fun (f : Flow.t) -> Hashtbl.mem t.poisoned (f.id, sid)) present
  then Some None
  else
    Some
      (Some
         (Propagation.aggregate_input ~options:t.options t.net t.envs
            ~server:sid ~flows:present))

let server_backlog t sid =
  match server_aggregate t sid with
  | None -> 0.
  | Some None -> infinity
  | Some (Some agg) ->
      Fifo.backlog ~rate:(Network.server t.net sid).Server.rate ~agg

let poisoned_server t sid =
  List.exists
    (fun (f : Flow.t) -> Hashtbl.mem t.poisoned (f.id, sid))
    (Network.flows_at t.net sid)

let server_flow_backlogs t sid =
  let present = Network.flows_at t.net sid in
  if present = [] then []
  else if poisoned_server t sid then
    List.map (fun (f : Flow.t) -> (f.id, infinity)) present
    |> List.sort compare
  else
    Backlog.per_flow ~options:t.options t.net t.envs ~server:sid
      ~flows:present ~targets:present
      ~local_delay:(fun ~flow -> local_delay t ~flow ~server:sid)
    |> List.map (fun ((f : Flow.t), b) -> (f.id, b))
    |> List.sort compare

let local_backlog t ~flow ~server =
  let present = Network.flows_at t.net server in
  let target =
    match List.find_opt (fun (f : Flow.t) -> f.id = flow) present with
    | Some f -> f
    | None ->
        invalid_arg
          (Printf.sprintf
             "Decomposed.local_backlog: flow %d does not cross server %d" flow
             server)
  in
  if poisoned_server t server then infinity
  else
    match
      Backlog.per_flow ~options:t.options t.net t.envs ~server ~flows:present
        ~targets:[ target ]
        ~local_delay:(fun ~flow -> local_delay t ~flow ~server)
    with
    | [ (_, b) ] -> b
    | _ -> assert false

let flow_backlog t id =
  let f = Network.flow t.net id in
  List.fold_left
    (fun acc s -> Float.max acc (local_backlog t ~flow:id ~server:s))
    0. f.route

let server_busy_period t sid =
  match server_aggregate t sid with
  | None -> 0.
  | Some None -> infinity
  | Some (Some agg) ->
      Fifo.busy_period ~rate:(Network.server t.net sid).Server.rate ~agg

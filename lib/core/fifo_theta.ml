type t = { net : Network.t; prop : Decomposed.t }

let analyze ?options net = { net; prop = Decomposed.analyze ?options net }
let network t = t.net

(* Per-hop data: server rate and cross-traffic envelope. *)
let hop_data t ~(flow : Flow.t) =
  List.map
    (fun sid ->
      let s = Network.server t.net sid in
      let cross =
        Network.flows_at t.net sid
        |> List.filter (fun (g : Flow.t) -> g.id <> flow.id)
        |> List.map (fun (g : Flow.t) ->
               Decomposed.envelope_at t.prop ~flow:g.id ~server:sid)
        |> Pwl.sum
      in
      (s.Server.rate, cross))
    flow.route

let end_to_end alpha hops thetas =
  let curves =
    List.map2
      (fun (rate, cross) theta -> Service.fifo_theta ~rate ~cross ~theta)
      hops thetas
  in
  if List.exists (fun b -> Pwl.final_slope b <= 0.) curves then infinity
  else Deviation.hdev ~alpha ~beta:(Curve_repr.conv_list curves)

(* Candidate thetas for one hop: 0 (the leftover curve), the analytic
   optimum for token-bucket cross traffic (burst / rate), and a few
   multiples to let coordinate descent escape it. *)
let candidates (rate, cross) =
  let base = Pwl.value_at_zero cross /. rate in
  List.sort_uniq compare
    [ 0.; base /. 2.; base; 1.5 *. base; 2. *. base; 4. *. base ]

let tune ?(sweeps = 2) alpha hops =
  let analytic = List.map (fun (r, c) -> Pwl.value_at_zero c /. r) hops in
  let zeros = List.map (fun _ -> 0.) hops in
  let start =
    if end_to_end alpha hops analytic <= end_to_end alpha hops zeros then
      analytic
    else zeros
  in
  let thetas = Array.of_list start in
  let best = ref (end_to_end alpha hops (Array.to_list thetas)) in
  for _ = 1 to sweeps do
    List.iteri
      (fun i hop ->
        List.iter
          (fun cand ->
            let saved = thetas.(i) in
            thetas.(i) <- cand;
            let d = end_to_end alpha hops (Array.to_list thetas) in
            if d < !best then best := d else thetas.(i) <- saved)
          (candidates hop))
      hops
  done;
  (!best, Array.to_list thetas)

let flow_delay ?sweeps t id =
  let f = Network.flow t.net id in
  match hop_data t ~flow:f with
  | hops -> fst (tune ?sweeps (Flow.source_curve f) hops)
  | exception Invalid_argument _ -> infinity

let all_flow_delays ?sweeps t =
  Network.flows t.net
  |> List.map (fun (f : Flow.t) -> (f.id, flow_delay ?sweeps t f.id))
  |> List.sort compare

let thetas ?sweeps t ~flow =
  let f = Network.flow t.net flow in
  snd (tune ?sweeps (Flow.source_curve f) (hop_data t ~flow:f))

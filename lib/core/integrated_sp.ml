type t = {
  net : Network.t;
  pairing : Pairing.subnet array;
  envs : Propagation.env_table;
  contributions : (int * int, float) Hashtbl.t; (* (flow, subnet idx) *)
  poisoned : (int * int, unit) Hashtbl.t;       (* (flow, server) *)
  server_backlogs : (int, float) Hashtbl.t;     (* sum over classes *)
  flow_backlogs : (int * int, float) Hashtbl.t; (* (flow, server) *)
}

let network t = t.net
let pairing t = Array.to_list t.pairing

let require_sp_or_fifo net =
  let kinds =
    Network.servers net
    |> List.map (fun (s : Server.t) ->
           match s.discipline with
           | Discipline.Static_priority | Discipline.Fifo -> s.discipline
           | d ->
               invalid_arg
                 (Printf.sprintf
                    "Integrated_sp: server %s is %s; only FIFO/static-priority \
                     servers are supported"
                    s.name (Discipline.to_string d)))
    |> List.sort_uniq compare
  in
  if List.length kinds > 1 then
    invalid_arg
      "Integrated_sp: mixing FIFO and static-priority servers is not \
       supported (priority classes would not be consistent across a pair)"

(* Priority of a flow at a server: at a FIFO server every flow is in
   one class. *)
let class_of net sid (f : Flow.t) =
  match (Network.server net sid).Server.discipline with
  | Discipline.Fifo -> 0
  | _ -> f.Flow.priority

let poison_rest poisoned (f : Flow.t) ~from =
  let rec mark = function
    | s :: rest ->
        if s = from then
          List.iter (fun s' -> Hashtbl.replace poisoned (f.id, s') ()) rest
        else mark rest
    | [] -> ()
  in
  mark f.route

let sorted_classes net sid flows =
  flows
  |> List.map (class_of net sid)
  |> List.sort_uniq compare

let analyze_raw ~options ~strategy net =
  require_sp_or_fifo net;
  let pairing_list = Pairing.build net strategy in
  let pairing = Array.of_list pairing_list in
  let envs = Propagation.create net in
  let contributions = Hashtbl.create 64 in
  let poisoned = Hashtbl.create 4 in
  let server_backlogs = Hashtbl.create 16 in
  let flow_backlogs = Hashtbl.create 64 in
  let env_at (f : Flow.t) sid = Propagation.get envs ~flow:f.id ~server:sid in
  (* Backlog bookkeeping, one class at a time: the class queue is
     bounded by its vertical deviation from the class's leftover
     service, the server by the sum over its classes, and each flow by
     the minimal FIFO split within its class (service is FIFO inside a
     priority class). *)
  let add_server_backlog sid b =
    let cur =
      match Hashtbl.find_opt server_backlogs sid with Some x -> x | None -> 0.
    in
    Hashtbl.replace server_backlogs sid (cur +. b)
  in
  let record_class_backlogs sid ~beta ~agg ~alphas =
    add_server_backlog sid (Deviation.vdev ~alpha:agg ~beta);
    List.iter
      (fun ((f : Flow.t), alpha_i) ->
        Hashtbl.replace flow_backlogs (f.id, sid)
          (match alpha_i with
          | Some alpha_i -> Deviation.vdev_per_flow ~alpha_i ~agg ~beta
          | None -> infinity))
      alphas
  in
  let record_class_backlogs_bad sid flows =
    add_server_backlog sid infinity;
    List.iter
      (fun (f : Flow.t) -> Hashtbl.replace flow_backlogs (f.id, sid) infinity)
      flows
  in
  let agg sid flows =
    if flows = [] then Pwl.zero
    else Propagation.aggregate_input ~options net envs ~server:sid ~flows
  in
  let record idx (f : Flow.t) ~entry ~last d =
    Hashtbl.replace contributions (f.id, idx) d;
    if d = infinity then poison_rest poisoned f ~from:last
    else
      Propagation.set_next envs f ~after:last
        (Pwl.shift_left (env_at f entry) d)
  in
  Array.iteri
    (fun idx subnet ->
      match subnet with
      | Pairing.Single u ->
          let present = Network.flows_at net u in
          let rate = (Network.server net u).Server.rate in
          List.iter
            (fun p ->
              let mine =
                List.filter (fun f -> class_of net u f = p) present
              in
              let higher =
                List.filter (fun f -> class_of net u f < p) present
              in
              let bad =
                List.exists
                  (fun (f : Flow.t) -> Hashtbl.mem poisoned (f.id, u))
                  (mine @ higher)
              in
              let d =
                if bad then begin
                  record_class_backlogs_bad u mine;
                  infinity
                end
                else begin
                  let beta =
                    Static_priority.class_service ~rate ~higher:(agg u higher)
                      ~blocking:options.Options.sp_blocking ()
                  in
                  let own = agg u mine in
                  record_class_backlogs u ~beta ~agg:own
                    ~alphas:
                      (List.map (fun f -> (f, Some (env_at f u))) mine);
                  Pair_analysis.single_general ~beta ~agg:own
                end
              in
              List.iter (fun f -> record idx f ~entry:u ~last:u d) mine)
            (sorted_classes net u present)
      | Pairing.Pair (u, v) ->
          let at_u = Network.flows_at net u and at_v = Network.flows_at net v in
          let rate_u = (Network.server net u).Server.rate in
          let rate_v = (Network.server net v).Server.rate in
          let s12_all, s1_all =
            List.partition (fun (f : Flow.t) -> Flow.next_hop f u = Some v) at_u
          in
          let s2_all =
            List.filter
              (fun (f : Flow.t) ->
                not (List.exists (fun (g : Flow.t) -> g.id = f.id) s12_all))
              at_v
          in
          (* Per-class server-1 delays, filled in urgency order; used
             to build the transit part of the higher-priority envelope
             at server 2. *)
          let d1_by_class = Hashtbl.create 4 in
          let classes =
            sorted_classes net u (at_u @ at_v)
            |> List.filter (fun p ->
                   List.exists (fun f -> class_of net u f = p) (at_u @ at_v))
          in
          List.iter
            (fun p ->
              let in_class f = class_of net u f = p in
              let s12 = List.filter in_class s12_all in
              let s1 = List.filter in_class s1_all in
              let s2 = List.filter in_class s2_all in
              let higher_u =
                List.filter (fun f -> class_of net u f < p) at_u
              in
              let higher_s2 =
                List.filter (fun (f : Flow.t) -> class_of net v f < p) s2_all
              in
              let higher_s12 =
                List.filter (fun f -> class_of net u f < p) s12_all
              in
              let bad =
                List.exists
                  (fun (f : Flow.t) -> Hashtbl.mem poisoned (f.id, u))
                  (s12 @ s1 @ higher_u)
                || List.exists
                     (fun (f : Flow.t) -> Hashtbl.mem poisoned (f.id, v))
                     (s2 @ higher_s2)
              in
              let record_bad () =
                record_class_backlogs_bad u (s12 @ s1);
                record_class_backlogs_bad v (s12 @ s2);
                {
                  Pair_analysis.d_pair = infinity;
                  d1 = infinity;
                  d2 = infinity;
                  busy1 = infinity;
                  busy2 = infinity;
                  b1 = infinity;
                  b2 = infinity;
                }
              in
              let result =
                if bad then record_bad ()
                else begin
                  (* Higher-priority arrivals at server 2: fresh s2
                     flows with their propagated envelopes, plus the
                     transit of higher classes through server 1 —
                     delay-inflated per class and capped by the shared
                     link as one group. *)
                  let transit_higher =
                    match higher_s12 with
                    | [] -> Pwl.zero
                    | flows ->
                        let inflated =
                          List.map
                            (fun (f : Flow.t) ->
                              let q = class_of net u f in
                              let dq =
                                match Hashtbl.find_opt d1_by_class q with
                                | Some d -> d
                                | None -> infinity
                              in
                              if dq = infinity then
                                Pwl.affine ~y0:0. ~slope:rate_u
                              else Pwl.shift_left (env_at f u) dq)
                            flows
                        in
                        Pwl.min_pw
                          (Pwl.affine ~y0:0. ~slope:rate_u)
                          (Pwl.sum inflated)
                  in
                  let h2 = Pwl.add (agg v higher_s2) transit_higher in
                  let blocking = options.Options.sp_blocking in
                  let beta1 =
                    Static_priority.class_service ~rate:rate_u
                      ~higher:(agg u higher_u) ~blocking ()
                  in
                  let beta2 =
                    Static_priority.class_service ~rate:rate_v ~higher:h2
                      ~blocking ()
                  in
                  if
                    Pwl.final_slope beta1 <= 0. || Pwl.final_slope beta2 <= 0.
                  then record_bad ()
                  else begin
                    let g12 = agg u s12 in
                    let g1 = agg u s1 in
                    let g2 = agg v s2 in
                    let result =
                      Pair_analysis.analyze_general
                        { link1 = rate_u; beta1; beta2; g12; g1; g2 }
                    in
                    record_class_backlogs u ~beta:beta1 ~agg:(Pwl.add g12 g1)
                      ~alphas:
                        (List.map (fun f -> (f, Some (env_at f u))) (s12 @ s1));
                    let d1 = result.Pair_analysis.d1 in
                    let link = Pwl.affine ~y0:0. ~slope:rate_u in
                    let transit =
                      if d1 = infinity then link
                      else Pwl.min_pw link (Pwl.shift_left g12 d1)
                    in
                    record_class_backlogs v ~beta:beta2
                      ~agg:(Pwl.add transit g2)
                      ~alphas:
                        (List.map
                           (fun (f : Flow.t) ->
                             if Float_ops.is_finite d1 then
                               (f, Some (Pwl.shift_left (env_at f u) d1))
                             else (f, None))
                           s12
                        @ List.map (fun f -> (f, Some (env_at f v))) s2);
                    result
                  end
                end
              in
              Hashtbl.replace d1_by_class p result.Pair_analysis.d1;
              List.iter
                (fun f ->
                  record idx f ~entry:u ~last:v result.Pair_analysis.d_pair)
                s12;
              List.iter
                (fun f -> record idx f ~entry:u ~last:u result.Pair_analysis.d1)
                s1;
              List.iter
                (fun f -> record idx f ~entry:v ~last:v result.Pair_analysis.d2)
                s2)
            classes)
    pairing;
  { net; pairing; envs; contributions; poisoned; server_backlogs; flow_backlogs }

let memo : t Incremental.table = Incremental.table ()

let analyze ?(options = Options.default) ?(strategy = Pairing.Greedy) net =
  Incremental.memoize memo
    (Incremental.net_key ~options ~strategy net)
    (fun () -> analyze_raw ~options ~strategy net)

let flow_delay t id =
  let total = ref 0. in
  Array.iteri
    (fun idx _ ->
      match Hashtbl.find_opt t.contributions (id, idx) with
      | Some d -> total := !total +. d
      | None -> ())
    t.pairing;
  !total

let all_flow_delays t =
  Network.flows t.net
  |> List.map (fun (f : Flow.t) -> (f.id, flow_delay t f.id))
  |> List.sort compare

let envelope_at t ~flow ~server =
  if Hashtbl.mem t.poisoned (flow, server) then
    invalid_arg "Integrated_sp.envelope_at: unbounded envelope"
  else Propagation.get t.envs ~flow ~server

let server_backlog t sid =
  match Hashtbl.find_opt t.server_backlogs sid with Some b -> b | None -> 0.

let local_backlog t ~flow ~server =
  match Hashtbl.find_opt t.flow_backlogs (flow, server) with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf
           "Integrated_sp.local_backlog: flow %d does not cross server %d"
           flow server)

let server_flow_backlogs t sid =
  Network.flows_at t.net sid
  |> List.map (fun (f : Flow.t) ->
         (f.id, local_backlog t ~flow:f.id ~server:sid))
  |> List.sort compare

let flow_backlog t id =
  let f = Network.flow t.net id in
  List.fold_left
    (fun acc s -> Float.max acc (local_backlog t ~flow:id ~server:s))
    0. f.route

(** Shared bookkeeping for topological-order analyses.

    Every end-to-end method in this library sweeps the servers (or
    subnetworks) in topological order, maintaining for each flow the
    envelope of its traffic {e at the input} of each server on its
    route.  This module holds that table and the aggregate-input
    computation, including the optional link-capacity sharpening. *)

type env_table

val create : Network.t -> env_table
(** A fresh table with each flow's source envelope installed at its
    first hop. *)

val empty : ?size_hint:int -> unit -> env_table
(** A fresh table with {e nothing} installed.  The streaming engine
    ({!Propagation_stream}) starts here and installs each source curve
    only when its first hop's antichain level begins, so the resident
    set never jumps to one-entry-per-flow up front. *)

val length : env_table -> int
(** Number of resident [(flow, server)] entries — the live frontier
    size, in the streaming engine's vocabulary. *)

val get : env_table -> flow:int -> server:int -> Pwl.t
(** Input envelope of a flow at a server.  @raise Not_found when the
    upstream analysis has not reached this hop yet (a bug in the
    caller's traversal order). *)

val find_opt : env_table -> flow:int -> server:int -> Pwl.t option

val set : env_table -> flow:int -> server:int -> Pwl.t -> unit

val remove : env_table -> flow:int -> server:int -> unit
(** Forget one entry (delta re-analysis hook: a torn-down flow's hops
    are dropped before the affected cone is recomputed). *)

val install_source : env_table -> Flow.t -> unit
(** Install a flow's source envelope at its first hop — what {!create}
    does for every flow; exposed so an online engine can splice a newly
    admitted flow into an existing table. *)

val set_next : env_table -> Flow.t -> after:int -> Pwl.t -> unit
(** Install a flow's envelope at the hop following [after] on its
    route; no-op when [after] is the last hop. *)

val aggregate_input :
  ?options:Options.t ->
  Network.t ->
  env_table ->
  server:int ->
  flows:Flow.t list ->
  Pwl.t
(** Aggregate envelope of the given flows at the input of [server]:
    the sum of their envelopes, except that with
    [options.link_cap = true] the flows arriving from a common upstream
    server are first summed and capped by that upstream link's rate. *)

val total_rate : Flow.t list -> float
(** Sum of long-run source rates. *)

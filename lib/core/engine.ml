type method_ = Decomposed | Service_curve | Integrated | Integrated_sp | Fifo_theta

let all_methods = [ Decomposed; Service_curve; Integrated; Integrated_sp; Fifo_theta ]

let method_name = function
  | Decomposed -> "Decomposed"
  | Service_curve -> "Service Curve"
  | Integrated -> "Integrated"
  | Integrated_sp -> "Integrated-SP"
  | Fifo_theta -> "FIFO-theta"

let compute ?options ?strategy net method_ flow =
  match method_ with
  | Decomposed -> Decomposed.flow_delay (Decomposed.analyze ?options net) flow
  | Service_curve ->
      Service_curve_method.flow_delay (Service_curve_method.analyze ?options net) flow
  | Integrated ->
      Integrated.flow_delay (Integrated.analyze ?options ?strategy net) flow
  | Integrated_sp ->
      Integrated_sp.flow_delay (Integrated_sp.analyze ?options ?strategy net) flow
  | Fifo_theta -> Fifo_theta.flow_delay (Fifo_theta.analyze ?options net) flow

let c_flow_delay = Metrics.counter "engine.flow_delay.calls"
let d_flow_delay_ns = Metrics.dist "engine.flow_delay.ns"

let flow_delay ?options ?strategy net method_ flow =
  if not (Prof.enabled ()) then compute ?options ?strategy net method_ flow
  else begin
    (* One span per (method, flow) query: profiles aggregate per method
       name, traces show the per-flow breakdown. *)
    Metrics.incr c_flow_delay;
    Trace.with_span ("engine." ^ method_name method_) @@ fun () ->
    (* Wall clock (same clock as the trace spans), not [Sys.time]: CPU
       seconds aggregate over every netcalc.par domain, so they
       over-report per-query latency by up to [jobs]x. *)
    let t0 = Trace.now_us () in
    let d = compute ?options ?strategy net method_ flow in
    Metrics.observe d_flow_delay_ns ((Trace.now_us () -. t0) *. 1e3);
    d
  end

(* Buffer requirement (worst per-hop backlog bound) of one flow under
   one method.  Service Curve and FIFO-theta have no backlog notion of
   their own; the decomposed engine's bound is sound for them too. *)
let flow_backlog ?options ?strategy net method_ flow =
  match method_ with
  | Decomposed | Service_curve | Fifo_theta ->
      Decomposed.flow_backlog (Decomposed.analyze ?options net) flow
  | Integrated ->
      Integrated.flow_backlog (Integrated.analyze ?options ?strategy net) flow
  | Integrated_sp ->
      Integrated_sp.flow_backlog
        (Integrated_sp.analyze ?options ?strategy net)
        flow

type comparison = {
  flow : int;
  decomposed : float;
  service_curve : float;
  integrated : float;
  fifo_theta : float;
  decomposed_backlog : float;
  integrated_backlog : float;
}

let compare_all ?options ?strategy ?(with_theta = true) net flow =
  (* The four methods are independent whole-network analyses, so run
     them on the netcalc.par pool.  [Par.map] returns results in list
     order whatever the schedule, so the comparison record (and every
     table built from it) is identical at any jobs count.  Backlogs
     ride along with the delay of the engine that produced them, so the
     comparison costs no extra analyses. *)
  let run = function
    | Some Fifo_theta -> (flow_delay ?options net Fifo_theta flow, nan)
    | Some Integrated ->
        ( flow_delay ?options ?strategy net Integrated flow,
          flow_backlog ?options ?strategy net Integrated flow )
    | Some Decomposed ->
        ( flow_delay ?options net Decomposed flow,
          flow_backlog ?options net Decomposed flow )
    | Some m -> (flow_delay ?options net m flow, nan)
    | None -> (nan, nan)
  in
  match
    Par.map run
      [
        Some Decomposed; Some Service_curve; Some Integrated;
        (if with_theta then Some Fifo_theta else None);
      ]
  with
  | [
   (decomposed, decomposed_backlog);
   (service_curve, _);
   (integrated, integrated_backlog);
   (fifo_theta, _);
  ] ->
      {
        flow;
        decomposed;
        service_curve;
        integrated;
        fifo_theta;
        decomposed_backlog;
        integrated_backlog;
      }
  | _ -> assert false

let relative_improvement dx dy =
  if not (Float.is_finite dx) || not (Float.is_finite dy)
     || Float_ops.eq_exact dx 0.
  then nan
  else (dx -. dy) /. dx

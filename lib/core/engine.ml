type method_ = Decomposed | Service_curve | Integrated | Integrated_sp | Fifo_theta

let all_methods = [ Decomposed; Service_curve; Integrated; Integrated_sp; Fifo_theta ]

let method_name = function
  | Decomposed -> "Decomposed"
  | Service_curve -> "Service Curve"
  | Integrated -> "Integrated"
  | Integrated_sp -> "Integrated-SP"
  | Fifo_theta -> "FIFO-theta"

let compute ?options ?strategy net method_ flow =
  match method_ with
  | Decomposed -> Decomposed.flow_delay (Decomposed.analyze ?options net) flow
  | Service_curve ->
      Service_curve_method.flow_delay (Service_curve_method.analyze ?options net) flow
  | Integrated ->
      Integrated.flow_delay (Integrated.analyze ?options ?strategy net) flow
  | Integrated_sp ->
      Integrated_sp.flow_delay (Integrated_sp.analyze ?options ?strategy net) flow
  | Fifo_theta -> Fifo_theta.flow_delay (Fifo_theta.analyze ?options net) flow

let c_flow_delay = Metrics.counter "engine.flow_delay.calls"
let d_flow_delay_ns = Metrics.dist "engine.flow_delay.ns"

let flow_delay ?options ?strategy net method_ flow =
  if not (Prof.enabled ()) then compute ?options ?strategy net method_ flow
  else begin
    (* One span per (method, flow) query: profiles aggregate per method
       name, traces show the per-flow breakdown. *)
    Metrics.incr c_flow_delay;
    Trace.with_span ("engine." ^ method_name method_) @@ fun () ->
    (* Wall clock (same clock as the trace spans), not [Sys.time]: CPU
       seconds aggregate over every netcalc.par domain, so they
       over-report per-query latency by up to [jobs]x. *)
    let t0 = Trace.now_us () in
    let d = compute ?options ?strategy net method_ flow in
    Metrics.observe d_flow_delay_ns ((Trace.now_us () -. t0) *. 1e3);
    d
  end

type comparison = {
  flow : int;
  decomposed : float;
  service_curve : float;
  integrated : float;
  fifo_theta : float;
}

let compare_all ?options ?strategy ?(with_theta = true) net flow =
  (* The four methods are independent whole-network analyses, so run
     them on the netcalc.par pool.  [Par.map] returns results in list
     order whatever the schedule, so the comparison record (and every
     table built from it) is identical at any jobs count. *)
  let run = function
    | Some Fifo_theta -> flow_delay ?options net Fifo_theta flow
    | Some Integrated -> flow_delay ?options ?strategy net Integrated flow
    | Some m -> flow_delay ?options net m flow
    | None -> nan
  in
  match
    Par.map run
      [
        Some Decomposed; Some Service_curve; Some Integrated;
        (if with_theta then Some Fifo_theta else None);
      ]
  with
  | [ decomposed; service_curve; integrated; fifo_theta ] ->
      { flow; decomposed; service_curve; integrated; fifo_theta }
  | _ -> assert false

let relative_improvement dx dy =
  if not (Float.is_finite dx) || not (Float.is_finite dy)
     || Float_ops.eq_exact dx 0.
  then nan
  else (dx -. dy) /. dx

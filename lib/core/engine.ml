type method_ = Decomposed | Service_curve | Integrated | Integrated_sp | Fifo_theta

let all_methods = [ Decomposed; Service_curve; Integrated; Integrated_sp; Fifo_theta ]

let method_name = function
  | Decomposed -> "Decomposed"
  | Service_curve -> "Service Curve"
  | Integrated -> "Integrated"
  | Integrated_sp -> "Integrated-SP"
  | Fifo_theta -> "FIFO-theta"

let compute ?options ?strategy net method_ flow =
  match method_ with
  | Decomposed -> Decomposed.flow_delay (Decomposed.analyze ?options net) flow
  | Service_curve ->
      Service_curve_method.flow_delay (Service_curve_method.analyze ?options net) flow
  | Integrated ->
      Integrated.flow_delay (Integrated.analyze ?options ?strategy net) flow
  | Integrated_sp ->
      Integrated_sp.flow_delay (Integrated_sp.analyze ?options ?strategy net) flow
  | Fifo_theta -> Fifo_theta.flow_delay (Fifo_theta.analyze ?options net) flow

let c_flow_delay = Metrics.counter "engine.flow_delay.calls"
let d_flow_delay_ns = Metrics.dist "engine.flow_delay.ns"

let flow_delay ?options ?strategy net method_ flow =
  if not (Prof.enabled ()) then compute ?options ?strategy net method_ flow
  else begin
    (* One span per (method, flow) query: profiles aggregate per method
       name, traces show the per-flow breakdown. *)
    Metrics.incr c_flow_delay;
    Trace.with_span ("engine." ^ method_name method_) @@ fun () ->
    let t0 = Sys.time () in
    let d = compute ?options ?strategy net method_ flow in
    Metrics.observe d_flow_delay_ns ((Sys.time () -. t0) *. 1e9);
    d
  end

type comparison = {
  flow : int;
  decomposed : float;
  service_curve : float;
  integrated : float;
  fifo_theta : float;
}

let compare_all ?options ?strategy ?(with_theta = true) net flow =
  {
    flow;
    decomposed = flow_delay ?options net Decomposed flow;
    service_curve = flow_delay ?options net Service_curve flow;
    integrated = flow_delay ?options ?strategy net Integrated flow;
    fifo_theta =
      (if with_theta then flow_delay ?options net Fifo_theta flow else nan);
  }

let relative_improvement dx dy =
  if not (Float.is_finite dx) || not (Float.is_finite dy) || dx = 0. then nan
  else (dx -. dy) /. dx

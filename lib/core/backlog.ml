(* Per-server backlog bounds from the current envelope table.  Shared
   by the decomposition engine and the serve delta engine so that both
   run the identical code path (delta re-analysis must reproduce the
   from-scratch bounds bit for bit). *)

let beta_rate rate = Pwl.affine ~y0:0. ~slope:rate

let server ~options net envs ~server:sid ~flows =
  let agg = Propagation.aggregate_input ~options net envs ~server:sid ~flows in
  Fifo.backlog ~rate:(Network.server net sid).Server.rate ~agg

let per_flow ~options net envs ~server:sid ~flows ~targets ~local_delay =
  let srv = Network.server net sid in
  let rate = srv.Server.rate in
  let env (f : Flow.t) = Propagation.get envs ~flow:f.id ~server:sid in
  let agg = Propagation.aggregate_input ~options net envs ~server:sid ~flows in
  let b_agg = Fifo.backlog ~rate ~agg in
  match srv.Server.discipline with
  | Discipline.Fifo ->
      let beta = beta_rate rate in
      List.map
        (fun (f : Flow.t) ->
          (f, Deviation.vdev_per_flow ~alpha_i:(env f) ~agg ~beta))
        targets
  | Discipline.Static_priority ->
      (* FIFO within a class: the minimal split applies against the
         class aggregate and the class's leftover service curve. *)
      let of_class pred =
        Pwl.sum
          (List.filter_map
             (fun (g : Flow.t) ->
               if pred g.priority then Some (env g) else None)
             flows)
      in
      List.map
        (fun (f : Flow.t) ->
          let higher = of_class (fun p -> p < f.priority) in
          let own = of_class (fun p -> p = f.priority) in
          let beta =
            Static_priority.class_service ~rate ~higher
              ~blocking:options.Options.sp_blocking ()
          in
          ( f,
            Float.min b_agg
              (Deviation.vdev_per_flow ~alpha_i:(env f) ~agg:own ~beta) ))
        targets
  | Discipline.Gps ->
      (* Each flow is guaranteed its weighted share whenever it is
         backlogged, so its own vertical deviation from that share
         bounds its queue. *)
      let total_weight =
        List.fold_left (fun acc (f : Flow.t) -> acc +. f.weight) 0. flows
      in
      List.map
        (fun (f : Flow.t) ->
          let share = rate *. f.weight /. total_weight in
          ( f,
            Float.min b_agg
              (Deviation.vdev ~alpha:(env f) ~beta:(beta_rate share)) ))
        targets
  | Discipline.Edf ->
      (* Generic discipline-agnostic split: what the flow can emit
         during its own local delay bound, capped by the whole queue. *)
      List.map
        (fun (f : Flow.t) ->
          let d = local_delay ~flow:f.id in
          let own =
            if Float_ops.is_finite d then Pwl.eval (env f) d else infinity
          in
          (f, Float.min own b_agg))
        targets

(** Streaming frontier propagation — the memory-bounded path for
    massive feedforward topologies.

    Runs the same forward pass as {!Decomposed} (identical per-server
    arithmetic: {!Local_bounds.at_server}, then shift + optional
    compaction), but level by level over the antichain decomposition of
    the routing DAG ({!Network.levels}) instead of server by server over
    a fully materialized envelope table:

    - a flow's source curve becomes resident only when its first hop's
      level begins;
    - each antichain is sharded across the netcalc.par domain pool
      (workers are read-only; a sequential merge in ascending server
      order applies all writes, so results are bit-identical at any
      jobs count);
    - the envelope of flow [f] at server [s] is evicted as soon as [s]
      has been analyzed — its only consumer.

    Peak resident envelopes are therefore bounded by the flow
    population crossing one antichain boundary, never by
    [Network.total_hop_count].  Delay results are bit-identical to
    {!Decomposed.flow_delay} on every feedforward network (pinned by
    tests); what this engine gives up is the post-hoc envelope /
    backlog queries of the table-based result — the envelopes no
    longer exist once the pass is over.

    Frontier accounting is published as the
    [propagation.frontier.{live,peak,evicted}] observability metrics
    and returned in {!frontier_stats}. *)

type t

type frontier_stats = {
  peak_live : int;  (** max resident [(flow, server)] envelopes *)
  evicted : int;  (** entries dropped after consumption *)
  total_pairs : int;
      (** [Network.total_hop_count] — what a table-based pass keeps *)
  widest_antichain : int;  (** largest level of the DAG *)
  levels : int;  (** number of antichain levels *)
}

val analyze : ?options:Options.t -> ?jobs:int -> Network.t -> t
(** Full streaming pass.  [jobs] overrides the netcalc.par pool size
    for this analysis only (the determinism tests pin jobs 1 vs 4
    byte-identical).  @raise Network.Cyclic on non-feedforward
    routing. *)

val network : t -> Network.t
val frontier_stats : t -> frontier_stats

val local_delay : t -> flow:int -> server:int -> float
(** Local bound of a flow at a server on its route ([infinity] when the
    upstream is unstable).  @raise Invalid_argument off the flow's route. *)

val flow_delay : t -> int -> float
(** End-to-end bound: sum of local bounds along the route — bit-equal
    to [Decomposed.flow_delay] on the same network and options. *)

val all_flow_delays : t -> (int * float) list
(** Sorted by flow id. *)

type input = {
  c1 : float;
  c2 : float;
  s12 : Pwl.t list;
  s1 : Pwl.t list;
  s2 : Pwl.t list;
}

type general_input = {
  link1 : float;
  beta1 : Pwl.t;
  beta2 : Pwl.t;
  g12 : Pwl.t;
  g1 : Pwl.t;
  g2 : Pwl.t;
}

type result = {
  d_pair : float;
  d1 : float;
  d2 : float;
  busy1 : float;
  busy2 : float;
  b1 : float;
  b2 : float;
}

let single ~rate ~envelopes = Fifo.local_delay ~rate ~agg:(Pwl.sum envelopes)
let single_general ~beta ~agg = Deviation.hdev ~alpha:agg ~beta

let identity = Pwl.affine ~y0:0. ~slope:1.

let check_service name beta =
  if Pwl.final_slope beta <= 0. then
    invalid_arg (Printf.sprintf "Pair_analysis: %s offers no long-run service" name);
  match Pwl.shape beta with
  | `Convex | `Affine -> ()
  | `Concave | `General ->
      invalid_arg
        (Printf.sprintf "Pair_analysis: %s must be a convex service curve" name)

(* The integrated pair bound of DESIGN.md §3.3, in service-curve form.
   The tagged s12 bit arrives at server 1 at time s of its class busy
   period (origin 0), leaves server 1 by tau = t1 s = max(s,
   beta1^{-1}(G1 s)), and leaves server 2 by u2 + beta2^{-1}(arrivals
   of its class into server 2 during (u2, tau]) where u2 is the start
   of server 2's class busy period and w = tau - u2.  Transit into
   server 2 over that window is universally capped by
   min(link1 w, F12 (w + d1)) (physical link rate; Cruz output
   characterization); when u2 >= 0 (case A, w <= tau) it is
   additionally capped by F12 tau, because server 1 had no class
   backlog just before 0 so all of it arrived after 0 — the
   integration step Algorithm Decomposed misses.  FIFO servers are the
   special case beta_i = lambda_(C_i). *)
let c_analyze = Metrics.counter "pair.analyze.calls"
let d_candidates = Metrics.dist "pair.analyze.s_candidates"

let analyze_general { link1; beta1; beta2; g12; g1; g2 } =
  Prof.count c_analyze;
  Prof.span "pair.analyze" @@ fun () ->
  if link1 <= 0. then invalid_arg "Pair_analysis: nonpositive link rate";
  check_service "beta1" beta1;
  check_service "beta2" beta2;
  let g_server1 = Pwl.add g12 g1 in
  let f12 = g12 and f2 = g2 in
  let d1 = Deviation.hdev ~alpha:g_server1 ~beta:beta1 in
  let busy1 = Pwl.first_crossing_under g_server1 ~below:beta1 in
  let link = Pwl.affine ~y0:0. ~slope:link1 in
  let transit_window =
    if d1 = infinity then link
    else Pwl.min_pw link (Pwl.shift_left f12 d1)
  in
  let a2_window = Pwl.add transit_window f2 in
  let d2 = Deviation.hdev ~alpha:a2_window ~beta:beta2 in
  let busy2 = Pwl.first_crossing_under a2_window ~below:beta2 in
  let b1 = Deviation.vdev ~alpha:g_server1 ~beta:beta1 in
  let b2 = Deviation.vdev ~alpha:a2_window ~beta:beta2 in
  let d_pair =
    if d1 = infinity || d2 = infinity then infinity
    else begin
      let beta1_inv = Pwl.pseudo_inverse beta1 in
      let beta2_inv = Pwl.pseudo_inverse beta2 in
      let t1 =
        Pwl.max_pw identity (Pwl.compose ~outer:beta1_inv ~inner:g_server1)
      in
      let mf = Pwl.compose ~outer:f12 ~inner:t1 in
      let f12_shifted = Pwl.shift_left f12 d1 in
      (* chi_b w = beta2^{-1}(min(link1 w, F12 (w + d1)) + F2 w) - w :
         the case-B integrand, independent of s. *)
      let chi_b =
        Pwl.sub
          (Pwl.compose ~outer:beta2_inv
             ~inner:(Pwl.add (Pwl.min_pw link f12_shifted) f2))
          identity
      in
      (* Candidate s values: every point where the affine description
         of the inner suprema can change.  Between consecutive
         candidates the bound is a maximum of affine functions of s,
         hence convex, so the outer supremum is attained at a
         candidate. *)
      let preimages_of_breakpoints outer inner =
        Pwl.breakpoints (Pwl.compose ~outer ~inner)
      in
      let t1_plus_b2 =
        if Float.is_finite busy2 then Pwl.add t1 (Pwl.constant busy2) else t1
      in
      let mf_over_c1 = Pwl.scale (1. /. link1) mf in
      let s_candidates =
        (0. :: busy1
        :: (Pwl.breakpoints t1 @ Pwl.breakpoints mf
           @ Pwl.breakpoints (Pwl.min_pw mf_over_c1 t1)
           @ preimages_of_breakpoints f2 mf_over_c1
           @ preimages_of_breakpoints f12_shifted mf_over_c1
           @ preimages_of_breakpoints chi_b t1
           @ preimages_of_breakpoints chi_b t1_plus_b2))
        |> List.filter (fun s -> s >= 0. && s <= busy1)
        |> List.sort_uniq compare
      in
      if Prof.enabled () then
        Metrics.observe d_candidates
          (float_of_int (List.length s_candidates));
      let bound_at s =
        let tau = Pwl.eval t1 s in
        let m = Pwl.eval mf s in
        let chi_a =
          Pwl.sub
            (Pwl.compose ~outer:beta2_inv
               ~inner:
                 (Pwl.add
                    (Pwl.min_list [ link; Pwl.constant m; f12_shifted ])
                    f2))
            identity
        in
        let inner_a =
          Float_ops.positive_part (Pwl.sup_on chi_a ~lo:0. ~hi:tau)
        in
        let inner_b = Pwl.sup_on chi_b ~lo:tau ~hi:(tau +. busy2) in
        tau -. s +. Float.max inner_a inner_b
      in
      Float.max d1 (Float_ops.max_list (List.map bound_at s_candidates))
    end
  in
  { d_pair; d1; d2; busy1; busy2; b1; b2 }

let analyze { c1; c2; s12; s1; s2 } =
  if c1 <= 0. || c2 <= 0. then invalid_arg "Pair_analysis: nonpositive rate";
  analyze_general
    {
      link1 = c1;
      beta1 = Service.constant_rate c1;
      beta2 = Service.constant_rate c2;
      g12 = Pwl.sum s12;
      g1 = Pwl.sum s1;
      g2 = Pwl.sum s2;
    }

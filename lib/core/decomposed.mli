(** Algorithm Decomposed — the decomposition-based baseline
    (Cruz [8, 9]; paper Sec. 1.1 and 4.2).

    The network is analyzed one server at a time in topological order:
    the local worst-case delay is computed from the aggregate input
    envelope, each flow's envelope is inflated by that local delay
    (Cruz's output characterization), and the end-to-end bound is the
    sum of the local bounds along the route.  This over-estimates
    because it charges every flow the worst case at {e every} hop.

    FIFO servers use the aggregate bound [sup (G t / C - t)]; static
    priority, EDF and GPS servers use the corresponding substrate
    bounds ({!Static_priority}, {!Edf}, {!Gps}), making this engine a
    general-purpose decomposition analyzer. *)

type t

val analyze : ?options:Options.t -> Network.t -> t
(** Runs the sweep.  Unstable servers yield [infinity] local delays,
    which propagate to [infinity] end-to-end bounds (envelopes after an
    unstable server are unconstrained; flows that avoid unstable
    servers keep finite bounds).
    @raise Network.Cyclic on non-feedforward routing.
    @raise Invalid_argument when an EDF server carries a flow without a
    deadline. *)

val network : t -> Network.t

val flow_delay : t -> int -> float
(** End-to-end delay bound of a flow (by id). *)

val all_flow_delays : t -> (int * float) list
(** [(flow id, bound)] for every flow, in id order. *)

val local_delay : t -> flow:int -> server:int -> float
(** The flow's local delay bound at one of its hops. *)

val envelope_at : t -> flow:int -> server:int -> Pwl.t
(** Input envelope of a flow at a hop, as propagated by this analysis
    (also consumed by Algorithm Service Curve for cross traffic). *)

val server_delay : t -> int -> float
(** Worst local delay bound over the flows at a server ([0.] for an
    idle server). *)

val server_backlog : t -> int -> float
(** Worst-case backlog bound at a server,
    [sup_t (G t - C t)^+] for its propagated aggregate input envelope —
    the buffer size that guarantees zero loss ([0.] for an idle
    server, [infinity] past an unstable one). *)

val server_flow_backlogs : t -> int -> (int * float) list
(** Per-flow backlog bounds at a server, [(flow id, bound)] in id
    order ({!Backlog.per_flow}: the minimal FIFO split, class-level
    for static priority, share-based for GPS, discipline-agnostic for
    EDF).  Empty for an idle server, all [infinity] past an unstable
    one. *)

val local_backlog : t -> flow:int -> server:int -> float
(** The flow's backlog bound at one of its hops.
    @raise Invalid_argument when the flow does not cross the server. *)

val flow_backlog : t -> int -> float
(** The flow's buffer requirement: its worst per-hop backlog bound
    over its route — admission compares this against the flow's
    [buffer] budget. *)

val server_busy_period : t -> int -> float
(** Busy-period bound at a server ([0.] for an idle server). *)

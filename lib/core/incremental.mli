(** Cross-call memoization of whole-network analyses.

    The analysis modules ({!Decomposed}, {!Integrated}, ...) each keep
    a private {!table} and consult it from [analyze], keyed by
    {!net_key} — a structural fingerprint of the network (server and
    flow configs, source curves by intern uid), the {!Options.t} and
    the pairing strategy.  Structurally identical inputs anywhere in a
    process — sweep cells, repeated figures, experiments — then share
    one analysis.  A hit returns an immutable value a miss would have
    recomputed bit-identically, so results are byte-identical with the
    engine on or off (pinned by the determinism tests); disabling only
    costs recomputation.

    Tables are bounded (wholesale reset past a cap) and safe to use
    from netcalc.par worker domains.  Hits and misses are published as
    the [incremental.reuse] / [incremental.recompute] observability
    counters. *)

type key
(** Structural fingerprint; equal keys mean analyses are
    interchangeable. *)

val net_key :
  ?options:Options.t -> ?strategy:Pairing.strategy -> Network.t -> key
(** Fingerprint of everything an analysis result depends on.  Source
    curves enter by {!Pwl.uid}, so the key is cheap and never conflates
    distinct curves; omit [strategy] for methods that take none. *)

type 'a table

val table : unit -> 'a table
(** A fresh bounded memo table, registered with {!clear}. *)

val memoize : 'a table -> key -> (unit -> 'a) -> 'a
(** [memoize t k compute] returns the cached value for [k] or runs
    [compute], stores and returns it.  When the engine is disabled it
    always computes. *)

val note_reuse : unit -> unit
(** Count one reuse that happened outside [memoize] (e.g. a sweep cell
    served from a shared prefix pass in [Sweep_engine]). *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Turn the engine on/off (on by default).  Toggling clears every
    table, so stale values can never resurface after re-enabling. *)

val with_enabled : bool -> (unit -> 'a) -> 'a
(** [with_enabled b f] runs [f] with the engine forced to [b] and
    restores the previous state afterwards (exception-safe).  Used by
    measurements that must not be served from the memo — e.g. the serve
    churn benchmark's from-scratch leg. *)

val clear : unit -> unit
(** Drop every memoized analysis (subsequent calls recompute). *)

type stats = { reuse : int; recompute : int; entries : int }

val stats : unit -> stats
(** Cumulative reuse/recompute since the last [Metrics.reset] and the
    current number of live entries across all tables. *)

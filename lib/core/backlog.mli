(** Per-server backlog bounds from an envelope table.

    The single code path shared by {!Decomposed} and the serve delta
    engine, so that delta re-analysis reproduces the from-scratch
    bounds bit for bit. *)

val server :
  options:Options.t ->
  Network.t ->
  Propagation.env_table ->
  server:int ->
  flows:Flow.t list ->
  float
(** Aggregate backlog bound at the server: the vertical deviation of
    the aggregate input from the constant-rate line — valid for any
    work-conserving discipline.  The caller is responsible for the
    poisoned (unbounded-envelope) case. *)

val per_flow :
  options:Options.t ->
  Network.t ->
  Propagation.env_table ->
  server:int ->
  flows:Flow.t list ->
  targets:Flow.t list ->
  local_delay:(flow:int -> float) ->
  (Flow.t * float) list
(** Backlog bounds for the [targets] flows (a subset of [flows], the
    full population at the server, which feeds the aggregates), one
    entry per target in order.  FIFO
    servers use the minimal per-flow split {!Deviation.vdev_per_flow};
    static priority applies the same split within the class against
    its leftover service; GPS uses the flow's deviation from its
    weighted share; EDF falls back to the discipline-agnostic
    [min (alpha_i d_i) B_agg] using the flow's local delay bound
    [local_delay].  Every bound is capped by the aggregate bound of
    {!server}. *)

(** Options shared by the analysis engines. *)

type t = {
  link_cap : bool;
      (** When true, the aggregate of flows arriving at a server from
          the same upstream server is additionally capped by that
          upstream link's rate ([C * I] over any window) — the
          sharpening ablation of DESIGN.md §3.3.  Off by default: the
          classic algorithms of the paper do not use it. *)
  sp_blocking : float;
      (** Non-preemption blocking term for static-priority servers:
          the size of the largest lower-priority packet that can be in
          service when an urgent packet arrives.  [0.] (default)
          models the fluid preemptive server; set it to the packet
          size when validating against the packetized simulator. *)
  compact_eps : float;
      (** When [> 0.], intermediate traffic envelopes are pruned with
          {!Pwl.compact} (direction [`Up]) to at most
          [compact_max_segs] segments, moving them only upward by at
          most [compact_eps] where the budget allows.  Bounds stay
          valid — they can only loosen, by an amount governed by the
          eps (see DESIGN.md "Curve compaction").  [0.] (default)
          disables compaction and keeps every result exact. *)
  compact_max_segs : int;
      (** Segment budget used when [compact_eps > 0.]; ignored
          otherwise. *)
}

val default : t
(** [{ link_cap = false; sp_blocking = 0.; compact_eps = 0.;
      compact_max_segs = 64 }] *)

val sharpened : t
(** [default] with [link_cap = true]. *)

val with_blocking : float -> t -> t

val with_compaction : ?max_segs:int -> float -> t -> t
(** [with_compaction ?max_segs eps t] enables envelope compaction
    ([max_segs] defaults to 64).  [with_compaction 0. t] disables it.
    @raise Invalid_argument on [eps < 0.] or [max_segs < 2]. *)

val compact_envelope : t -> Pwl.t -> Pwl.t
(** Apply the compaction knob to a traffic envelope: identity when
    [compact_eps <= 0.], otherwise [Pwl.compact ~dir:`Up].  The result
    is pointwise [>=] the input, so downstream delay bounds remain
    valid upper bounds. *)

(** {1 Curve backend}

    Which curve representation the engines' kernel operations run on
    ({!Curve_repr}): [`Pwl] (finite piecewise-linear, the default) or
    [`Upp] (ultimately pseudo-periodic, horizon-independent size).
    Unlike the record fields above this is process-global state — it
    namespaces the process-global memo caches — so the selectors here
    delegate to {!Curve_repr} rather than extend [t]; CLI and bench
    apply [--curve-backend] (or NETCALC_CURVE_BACKEND) through these
    before running any analysis.  Both backends produce bit-identical
    tables on the paper's grids. *)

type curve_backend = Curve_repr.backend

val curve_backend_of_string : string -> (curve_backend, string) result
val set_curve_backend : curve_backend -> unit
val curve_backend : unit -> curve_backend
val curve_backend_name : unit -> string

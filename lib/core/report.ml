let buffer_add_table buf tbl =
  Buffer.add_string buf (Table.to_string tbl);
  Buffer.add_char buf '\n'

let header buf net title =
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (String.make (String.length title) '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Format.asprintf "%a@.@." Network.pp net)

let route_names net (f : Flow.t) =
  String.concat " -> "
    (List.map (fun s -> (Network.server net s).Server.name) f.route)

let decomposed a =
  let net = Decomposed.network a in
  let buf = Buffer.create 1024 in
  header buf net "Decomposed (per-server) analysis";
  let servers = Table.create
      ~header:[ "server"; "disc"; "rate"; "util"; "local delay"; "backlog"; "busy period" ]
  in
  List.iter
    (fun (s : Server.t) ->
      Table.add_row servers
        [
          s.name;
          Discipline.to_string s.discipline;
          Table.float_cell s.rate;
          Table.float_cell (Network.utilization net s.id);
          Table.float_cell (Decomposed.server_delay a s.id);
          Table.float_cell (Decomposed.server_backlog a s.id);
          Table.float_cell (Decomposed.server_busy_period a s.id);
        ])
    (Network.servers net);
  buffer_add_table buf servers;
  Buffer.add_char buf '\n';
  let flows =
    Table.create
      ~header:
        [ "flow"; "route"; "bound"; "per-hop"; "deadline"; "buffer need" ]
  in
  List.iter
    (fun (f : Flow.t) ->
      Table.add_row flows
        [
          f.name;
          route_names net f;
          Table.float_cell (Decomposed.flow_delay a f.id);
          String.concat " + "
            (List.map
               (fun s ->
                 Table.float_cell
                   (Decomposed.local_delay a ~flow:f.id ~server:s))
               f.route);
          (match f.deadline with
          | Some d -> Table.float_cell d
          | None -> "-");
          Table.float_cell (Decomposed.flow_backlog a f.id);
        ])
    (Network.flows net);
  buffer_add_table buf flows;
  Buffer.contents buf

let integrated a =
  let net = Integrated.network a in
  let buf = Buffer.create 1024 in
  header buf net "Integrated (pairwise) analysis";
  Buffer.add_string buf
    (Format.asprintf "Pairing: %a@.@." Pairing.pp (Integrated.pairing a));
  let servers = Table.create ~header:[ "server"; "rate"; "backlog" ] in
  List.iter
    (fun (s : Server.t) ->
      Table.add_row servers
        [
          s.name;
          Table.float_cell s.rate;
          Table.float_cell (Integrated.server_backlog a s.id);
        ])
    (Network.servers net);
  buffer_add_table buf servers;
  Buffer.add_char buf '\n';
  let flows =
    Table.create
      ~header:[ "flow"; "route"; "bound"; "per-subnetwork"; "buffer need" ]
  in
  List.iter
    (fun (f : Flow.t) ->
      let contributions =
        List.filter_map
          (fun subnet ->
            Integrated.subnet_delay_opt a ~flow:f.id ~subnet
            |> Option.map (fun d ->
                   Format.asprintf "%a:%s" Pairing.pp [ subnet ]
                     (Table.float_cell d)))
          (Integrated.pairing a)
      in
      Table.add_row flows
        [
          f.name;
          route_names net f;
          Table.float_cell (Integrated.flow_delay a f.id);
          String.concat " + " contributions;
          Table.float_cell (Integrated.flow_backlog a f.id);
        ])
    (Network.flows net);
  buffer_add_table buf flows;
  Buffer.contents buf

let comparison ?options ?(strategy = Pairing.Greedy) net =
  let buf = Buffer.create 1024 in
  header buf net "Method comparison";
  let dd = Decomposed.analyze ?options net in
  let sc = Service_curve_method.analyze ?options net in
  let integ = Integrated.analyze ?options ~strategy net in
  let tbl =
    Table.create
      ~header:
        [ "flow"; "Decomposed"; "Service Curve"; "Integrated"; "best" ]
  in
  List.iter
    (fun (f : Flow.t) ->
      let d = Decomposed.flow_delay dd f.id in
      let s = Service_curve_method.flow_delay sc f.id in
      let i = Integrated.flow_delay integ f.id in
      let best =
        if i <= Float.min d s then "Integrated"
        else if d <= s then "Decomposed"
        else "Service Curve"
      in
      Table.add_row tbl
        [
          f.name;
          Table.float_cell d;
          Table.float_cell s;
          Table.float_cell i;
          best;
        ])
    (Network.flows net);
  buffer_add_table buf tbl;
  Buffer.contents buf

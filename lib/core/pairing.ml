type subnet = Single of int | Pair of int * int
type t = subnet list
type strategy = Along_route of int | Greedy | Singletons

let servers_of = function Single s -> [ s ] | Pair (u, v) -> [ u; v ]

let pp ppf pairing =
  let pp_subnet ppf = function
    | Single s -> Format.fprintf ppf "{%d}" s
    | Pair (u, v) -> Format.fprintf ppf "{%d,%d}" u v
  in
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
    pp_subnet ppf pairing

(* Map each server to the index of its subnet; raise on bad covers. *)
let subnet_assignment net subnets =
  let assignment = Hashtbl.create 32 in
  List.iteri
    (fun i subnet ->
      List.iter
        (fun s ->
          ignore (Network.server net s);
          if Hashtbl.mem assignment s then
            invalid_arg
              (Printf.sprintf "Pairing: server %d appears in two subnets" s);
          Hashtbl.replace assignment s i)
        (servers_of subnet))
    subnets;
  List.iter
    (fun (s : Server.t) ->
      if not (Hashtbl.mem assignment s.id) then
        invalid_arg
          (Printf.sprintf "Pairing: server %d not covered by any subnet" s.id))
    (Network.servers net);
  assignment

(* Topologically order the contracted (subnet) graph; raise
   Network.Cyclic when contraction created a cycle. *)
let order_subnets net subnets =
  let assignment = subnet_assignment net subnets in
  let arr = Array.of_list subnets in
  let n = Array.length arr in
  let contracted_edges =
    Network.edges net
    |> List.filter_map (fun (a, b) ->
           let ia = Hashtbl.find assignment a
           and ib = Hashtbl.find assignment b in
           if ia = ib then None else Some (ia, ib))
    |> List.sort_uniq compare
  in
  let indegree = Array.make n 0 in
  List.iter (fun (_, b) -> indegree.(b) <- indegree.(b) + 1) contracted_edges;
  let ready = ref [] in
  for i = n - 1 downto 0 do
    if indegree.(i) = 0 then ready := i :: !ready
  done;
  let rec kahn order = function
    | [] -> List.rev order
    | i :: rest ->
        let next =
          List.fold_left
            (fun acc (a, b) ->
              if a = i then begin
                indegree.(b) <- indegree.(b) - 1;
                if indegree.(b) = 0 then b :: acc else acc
              end
              else acc)
            [] contracted_edges
        in
        kahn (i :: order) (List.sort compare next @ rest)
  in
  let order = kahn [] !ready in
  if List.length order <> n then raise Network.Cyclic;
  List.map (fun i -> arr.(i)) order

(* A pair is only meaningful when some flow rides the edge u -> v. *)
let check_pair_has_edge net = function
  | Single _ -> ()
  | Pair (u, v) ->
      if not (List.mem (u, v) (Network.edges net)) then
        invalid_arg
          (Printf.sprintf
             "Pairing: no flow traverses servers %d -> %d consecutively" u v)

let validate net subnets =
  List.iter (check_pair_has_edge net) subnets;
  let ordered = order_subnets net subnets in
  (* The supplied list must itself be a valid processing order: every
     edge into a subnet must come from an earlier subnet. *)
  let position = Hashtbl.create 32 in
  List.iteri
    (fun i subnet ->
      List.iter (fun s -> Hashtbl.replace position s i) (servers_of subnet))
    subnets;
  List.iter
    (fun (a, b) ->
      let ia = Hashtbl.find position a and ib = Hashtbl.find position b in
      if ia > ib then
        invalid_arg
          (Printf.sprintf
             "Pairing: subnet of server %d is listed after its downstream \
              server %d" a b))
    (Network.edges net);
  ignore ordered

let singletons net =
  List.map (fun (s : Server.t) -> Single s.id) (Network.servers net)

let along_route net flow_id =
  (* [Network.flow] itself raises a descriptive [Invalid_argument] for
     an unknown id. *)
  let f = Network.flow net flow_id in
  let rec pair_up = function
    | u :: v :: rest -> Pair (u, v) :: pair_up rest
    | [ u ] -> [ Single u ]
    | [] -> []
  in
  let on_route = pair_up f.route in
  let covered =
    List.concat_map servers_of on_route |> List.sort_uniq compare
  in
  let rest =
    Network.servers net
    |> List.filter_map (fun (s : Server.t) ->
           if List.mem s.id covered then None else Some (Single s.id))
  in
  on_route @ rest

(* Shared transit count: flows riding the edge u -> v. *)
let transit_count net (u, v) =
  Network.flows net
  |> List.filter (fun f -> List.mem (u, v) (Flow.hop_pairs f))
  |> List.length

let singletons_of_unpaired net paired chosen =
  let in_chosen =
    List.concat_map servers_of chosen |> List.sort_uniq compare
  in
  Network.servers net
  |> List.filter_map (fun (s : Server.t) ->
         if Hashtbl.mem paired s.id || List.mem s.id in_chosen then None
         else Some (Single s.id))

let greedy net =
  let order = Network.topological_order net in
  let paired = Hashtbl.create 32 in
  let chosen = ref [] in
  let acyclic_with extra =
    match order_subnets net (extra @ singletons_of_unpaired net paired extra) with
    | _ -> true
    | exception Network.Cyclic -> false
  in
  List.iter
    (fun u ->
      if not (Hashtbl.mem paired u) then begin
        let candidates =
          Network.edges net
          |> List.filter (fun (a, b) ->
                 a = u && (not (Hashtbl.mem paired b)) && b <> u)
          |> List.sort (fun e1 e2 ->
                 compare (transit_count net e2) (transit_count net e1))
        in
        let rec try_candidates = function
          | (a, b) :: rest ->
              let tentative = Pair (a, b) :: !chosen in
              if acyclic_with tentative then begin
                chosen := tentative;
                Hashtbl.replace paired a ();
                Hashtbl.replace paired b ()
              end
              else try_candidates rest
          | [] -> ()
        in
        try_candidates candidates
      end)
    order;
  let subnets = !chosen @ singletons_of_unpaired net paired !chosen in
  order_subnets net subnets

let build net strategy =
  let subnets =
    match strategy with
    | Singletons -> singletons net
    | Along_route flow_id -> along_route net flow_id
    | Greedy -> greedy net
  in
  let ordered = order_subnets net subnets in
  validate net ordered;
  ordered

type t = {
  link_cap : bool;
  sp_blocking : float;
  compact_eps : float;
  compact_max_segs : int;
}

let default =
  { link_cap = false;
    sp_blocking = 0.;
    compact_eps = 0.;
    compact_max_segs = 64 }

let sharpened = { default with link_cap = true }
let with_blocking b t = { t with sp_blocking = b }

let with_compaction ?(max_segs = 64) eps t =
  if eps < 0. then invalid_arg "Options.with_compaction: eps < 0";
  if max_segs < 2 then invalid_arg "Options.with_compaction: max_segs < 2";
  { t with compact_eps = eps; compact_max_segs = max_segs }

let compact_envelope t env =
  if t.compact_eps <= 0. then env
  else
    Pwl.compact ~dir:`Up ~eps:t.compact_eps ~max_segs:t.compact_max_segs env

(* The curve backend is process-global (it must stay consistent with
   the process-global Minplus/intern/Incremental caches, whose keys it
   namespaces — see Curve_repr), so these are delegations rather than
   a record field: a per-record backend could silently interleave two
   backends against the same caches. *)
type curve_backend = Curve_repr.backend

let curve_backend_of_string = Curve_repr.of_string
let set_curve_backend = Curve_repr.set_backend
let curve_backend = Curve_repr.backend
let curve_backend_name = Curve_repr.backend_name

type t = { net : Network.t; prop : Decomposed.t }

let analyze ?options net = { net; prop = Decomposed.analyze ?options net }
let network t = t.net

(* Envelope of a cross flow at a server, from the decomposed sweep. *)
let cross_envelopes t ~server ~(flow : Flow.t) =
  Network.flows_at t.net server
  |> List.filter (fun (g : Flow.t) -> g.id <> flow.id)
  |> List.map (fun (g : Flow.t) ->
         (g, Decomposed.envelope_at t.prop ~flow:g.id ~server))

let hop_service_curve t ~flow ~server =
  let f = Network.flow t.net flow in
  let s = Network.server t.net server in
  let cross = cross_envelopes t ~server ~flow:f in
  match s.discipline with
  | Discipline.Fifo | Discipline.Edf ->
      Fifo.leftover ~rate:s.rate ~cross:(Pwl.sum (List.map snd cross))
  | Discipline.Static_priority ->
      (* Service left after all traffic of priority <= ours (the flow
         itself is FIFO within its class, so same-class cross traffic
         also precedes it in the worst case). *)
      let competing =
        List.filter_map
          (fun ((g : Flow.t), env) ->
            if g.priority <= f.priority then Some env else None)
          cross
      in
      Static_priority.class_service ~rate:s.rate ~higher:(Pwl.sum competing) ()
  | Discipline.Gps ->
      let total_weight =
        List.fold_left
          (fun acc ((g : Flow.t), _) -> acc +. g.weight)
          f.weight cross
      in
      Gps.flow_service ~rate:s.rate ~weight:f.weight ~total_weight ()

let network_service_curve t ~flow =
  let f = Network.flow t.net flow in
  let curves =
    List.map (fun sid -> hop_service_curve t ~flow ~server:sid) f.route
  in
  List.iter
    (fun beta ->
      if Pwl.final_slope beta <= 0. then
        invalid_arg
          "Service_curve_method: a hop offers no long-run service \
           (saturated by cross traffic)")
    curves;
  Curve_repr.conv_list curves

let flow_delay t id =
  let f = Network.flow t.net id in
  match network_service_curve t ~flow:id with
  | beta -> Deviation.hdev ~alpha:(Flow.source_curve f) ~beta
  | exception Invalid_argument _ -> infinity

let all_flow_delays t =
  Network.flows t.net
  |> List.map (fun (f : Flow.t) -> (f.id, flow_delay t f.id))
  |> List.sort compare

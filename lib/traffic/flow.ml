type t = {
  id : int;
  name : string;
  arrival : Arrival.t;
  route : int list;
  deadline : float option;
  priority : int;
  weight : float;
  buffer : float option;
}

let make ~id ?name ~arrival ~route ?deadline ?(priority = 0) ?(weight = 1.)
    ?buffer () =
  if route = [] then invalid_arg "Flow.make: empty route";
  let sorted = List.sort_uniq compare route in
  if List.length sorted <> List.length route then
    invalid_arg "Flow.make: route visits a server twice";
  if weight <= 0. then invalid_arg "Flow.make: nonpositive weight";
  (match deadline with
  | Some d when d <= 0. -> invalid_arg "Flow.make: nonpositive deadline"
  | _ -> ());
  (match buffer with
  | Some b when b <= 0. -> invalid_arg "Flow.make: nonpositive buffer"
  | _ -> ());
  let name = match name with Some n -> n | None -> "flow" ^ string_of_int id in
  { id; name; arrival; route; deadline; priority; weight; buffer }

let source_curve f = Arrival.curve f.arrival
let rate f = Arrival.rate f.arrival
let burst f = Arrival.burst f.arrival
let traverses f s = List.mem s f.route

let rec next_in_list s = function
  | a :: (b :: _ as rest) -> if a = s then Some b else next_in_list s rest
  | _ -> None

let next_hop f s = next_in_list s f.route
let prev_hop f s = next_in_list s (List.rev f.route)

let first_hop f = List.hd f.route
let last_hop f = List.nth f.route (List.length f.route - 1)

let hop_pairs f =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  pairs f.route

let pp ppf f =
  Format.fprintf ppf "%s: route [%a], sigma=%g rho=%g" f.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Format.pp_print_int)
    f.route (burst f) (rate f)

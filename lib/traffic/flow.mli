(** Connections (flows) with source constraints and routes.

    A flow enters the network with a token-bucket-style source
    constraint (paper Eq. (4)) and follows a fixed route — the ordered
    list of server ids it traverses.  Optional QoS attributes are used
    by the non-FIFO disciplines and by admission control. *)

type t = private {
  id : int;
  name : string;
  arrival : Arrival.t;  (** source traffic constraint *)
  route : int list;     (** server ids in traversal order, non-empty *)
  deadline : float option;  (** end-to-end deadline (admission control) *)
  priority : int;       (** static-priority class; lower = more urgent *)
  weight : float;       (** GPS weight *)
  buffer : float option;
      (** per-hop buffer budget: admission requires the flow's backlog
          bound at every server on its route to stay within this *)
}

val make :
  id:int ->
  ?name:string ->
  arrival:Arrival.t ->
  route:int list ->
  ?deadline:float ->
  ?priority:int ->
  ?weight:float ->
  ?buffer:float ->
  unit ->
  t
(** [name] defaults to ["flow<id>"], [priority] to [0], [weight] to
    [1.].  @raise Invalid_argument on an empty route, a route visiting a
    server twice, nonpositive weight, or a nonpositive deadline or
    buffer budget. *)

val source_curve : t -> Pwl.t
(** Envelope of the flow at its entry point. *)

val rate : t -> float
val burst : t -> float

val traverses : t -> int -> bool
(** Whether the route contains the given server id. *)

val next_hop : t -> int -> int option
(** [next_hop f s] is the server after [s] on the route ([None] when
    [s] is the last hop or not on the route). *)

val prev_hop : t -> int -> int option
val first_hop : t -> int
val last_hop : t -> int

val hop_pairs : t -> (int * int) list
(** Consecutive pairs of the route, in order. *)

val pp : Format.formatter -> t -> unit

(** Minimal JSON for the serve line protocol.

    The container ships no JSON library, and the protocol only needs
    flat requests/responses, so this is a small self-contained value
    type with a strict parser and a deterministic renderer (object keys
    keep their construction order; numbers render through a shortest
    round-trip format), which is what makes golden-transcript tests
    byte-stable. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Position-tagged message. *)

val parse : string -> t
(** Parse one JSON document; trailing non-whitespace is an error.
    @raise Parse_error on malformed input. *)

val render : t -> string
(** Compact single-line rendering (no spaces, keys in listed order).
    Non-finite numbers are not JSON; they render as the string
    sentinels ["inf"], ["-inf"], ["nan"] so clients can distinguish an
    unbounded value from an absent field. *)

val num_of_int : int -> t
val float_repr : float -> t
(** [Num x] when finite; the matching sentinel [Str] otherwise. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on absence or non-objects. *)

val to_float : t -> float option
(** [Num]s, plus the non-finite string sentinels. *)

val to_int : t -> int option
(** Integral [Num]s only. *)

val to_string : t -> string option
val to_list : t -> t list option

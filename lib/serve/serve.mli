(** The [netcalc serve] line protocol and session loops.

    A server holds one engine — delta re-analysis ({!Delta_engine}) or
    full re-analysis through {!Admission.decide_one} — and processes a
    stream of newline-delimited JSON requests:

    {v
    {"op":"admit","flow":{"id":7,"sigma":1,"rho":0.1,"route":[0,1],
                          "deadline":20,"peak":1}}
    {"op":"teardown","flow":7}
    {"op":"query","flow":0}
    {"op":"stats"}
    v}

    Every request gets exactly one single-line JSON response with a
    leading ["ok"] field.  Successful admits and teardowns report the
    operation's [cone_nodes] / [reused_nodes] (a full-engine operation
    re-analyzes every server, so [reused_nodes] is 0).  Errors are
    in-band: [{"ok":false,"error":...}] with [error] one of
    [parse_error], [bad_request], [unknown_op], [unknown_flow],
    [duplicate_flow], or [rejected] (admission refused; a [reason]
    field then carries [no_deadline], [cyclic_route], or
    [deadline_violated] with the violating flow's id, bound and
    deadline).

    Responses have a fixed key order and deterministic number
    formatting ({!Sjson.render}), so protocol transcripts can be pinned
    byte-for-byte in tests. *)

type mode =
  | Delta  (** incremental cone re-analysis (decomposed method) *)
  | Full of Engine.method_  (** from-scratch re-analysis per operation *)

type t

val create :
  ?options:Options.t ->
  mode:mode ->
  servers:Server.t list ->
  flows:Flow.t list ->
  unit ->
  t
(** Analyze the initial population and stand the service up.
    @raise Network.Cyclic / [Invalid_argument] as {!Network.make}. *)

val handle_line : t -> string -> string
(** Process one request line, return one response line (no trailing
    newline).  Never raises: malformed input becomes an in-band
    [{"ok":false,...}] response, and any unexpected exception an
    [{"ok":false,"error":"internal_error",...}] one.  The typed
    linter enforces totality via the [@@lint.exn_barrier] attribute
    on the implementation. *)

val session : t -> next:(unit -> string option) -> emit:(string -> unit) -> unit
(** Pull request lines from [next] until it returns [None], emitting
    one response per non-blank line. *)

val run_channels : t -> in_channel -> out_channel -> unit
(** {!session} over channels, flushing after every response — the
    [--stdin] transport and the per-connection socket loop. *)

val listen_unix : ?clients:int -> t -> path:string -> unit
(** Bind a Unix-domain socket at [path] (unlinking any stale one) and
    serve connections sequentially; [clients] (default unbounded) stops
    after that many connections, for tests. *)

val listen_tcp : ?clients:int -> t -> port:int -> unit
(** Same over TCP on the loopback interface. *)

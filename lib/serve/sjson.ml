type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over the string.  The cursor is a
   local ref per parse call, so the parser is reentrant (no module
   state to lock).                                                      *)
(* ------------------------------------------------------------------ *)

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "at %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail (Printf.sprintf "expected '%c', got '%c'" c d)
    | None -> fail (Printf.sprintf "expected '%c', got end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail "bad \\u escape"
  in
  (* Encode a Unicode scalar value as UTF-8 bytes. *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          (match peek () with
          | None -> fail "unterminated escape"
          | Some c -> (
              advance ();
              match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' ->
                  let cp = hex4 () in
                  let cp =
                    (* surrogate pair *)
                    if cp >= 0xD800 && cp <= 0xDBFF && !pos + 1 < n
                       && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                    then begin
                      pos := !pos + 2;
                      let lo = hex4 () in
                      if lo >= 0xDC00 && lo <= 0xDFFF then
                        0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                      else fail "unpaired surrogate"
                    end
                    else cp
                  in
                  add_utf8 buf cp
              | c -> fail (Printf.sprintf "bad escape '\\%c'" c)));
          loop ())
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if (match peek () with Some '-' -> true | _ -> false) then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if (match peek () with Some '.' -> true | _ -> false) then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with
        | Some ('+' | '-') -> advance ()
        | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> Num x
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if (match peek () with Some '}' -> true | _ -> false) then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if (match peek () with Some ']' -> true | _ -> false) then begin
          advance ();
          List []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elems [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage after document";
  v

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(* JSON has no non-finite numbers.  Rendering them as [null] (the old
   behaviour) conflated "unbounded" with "absent", so clients could not
   tell an unstable flow's infinite bound from a missing field; the
   protocol instead uses unambiguous string sentinels. *)
let nonfinite_repr x =
  if Float.is_nan x then "nan" else if Float.sign_bit x then "-inf" else "inf"

(* Shortest representation that round-trips: try increasing precision,
   settle for full 17 digits.  Deterministic, so protocol transcripts
   can be pinned byte-for-byte. *)
let render_float x =
  if not (Float.is_finite x) then "\"" ^ nonfinite_repr x ^ "\""
  else if Float_ops.eq_exact (Float.rem x 1.) 0. && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else
    let try_prec p =
      let s = Printf.sprintf "%.*g" p x in
      if Float_ops.eq_exact (float_of_string s) x then Some s else None
    in
    match try_prec 12 with
    | Some s -> s
    | None -> (
        match try_prec 15 with
        | Some s -> s
        | None -> Printf.sprintf "%.17g" x)

let escape_string buf str =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    str;
  Buffer.add_char buf '"'

let render v =
  let buf = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool true -> Buffer.add_string buf "true"
    | Bool false -> Buffer.add_string buf "false"
    | Num x -> Buffer.add_string buf (render_float x)
    | Str s -> escape_string buf s
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          xs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            escape_string buf k;
            Buffer.add_char buf ':';
            go x)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let num_of_int i = Num (float_of_int i)
let float_repr x = if Float.is_finite x then Num x else Str (nonfinite_repr x)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Num x -> Some x
  | Str "inf" -> Some infinity
  | Str "-inf" -> Some neg_infinity
  | Str "nan" -> Some nan
  | _ -> None

let to_int = function
  | Num x
    when Float_ops.eq_exact (Float.rem x 1.) 0.
         && Float.abs x <= float_of_int max_int ->
      Some (int_of_float x)
  | _ -> None

let to_string = function Str s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None

(* Incremental (delta) re-analysis for the serve subsystem.

   The state mirrors Decomposed.analyze_raw exactly — envelope table,
   per-(flow, server) local bounds, poison marks past unstable servers —
   with one addition: each poison mark remembers the server that
   originated it, so a cone recompute can drop exactly the marks whose
   origin is being re-analyzed and keep those inherited from untouched
   upstream state.

   The cone of a change is the forward closure of the changed flow's
   route in the routing DAG.  Three facts make cone recomputation
   exact (not approximate):
   - an envelope at (flow, server) is written by the flow's previous
     hop, so every table entry a change can affect lives at a server
     inside the forward closure;
   - the closure is computed on the post-change edge set, whose new (or
     removed) edges connect route servers that are all seeds, so the
     same closure also covers the pre-change dependencies;
   - per-server recomputation is the same deterministic code path as
     the batch analysis, fed inputs that are either recomputed in
     topological order or physically unchanged.

   Rollback of a rejected admit is a teardown of the candidate over the
   same cone: recomputing the old flow population from unchanged
   outside-cone inputs reproduces the previous state bit-for-bit. *)

let c_cone = Metrics.counter "serve.delta.cone_nodes"
let c_reused = Metrics.counter "serve.delta.reused_nodes"
let c_accepted = Metrics.counter "serve.admit.accepted"
let c_rejected = Metrics.counter "serve.admit.rejected"
let c_teardown = Metrics.counter "serve.teardown"

type t = {
  options : Options.t;
  mutable net : Network.t;
  envs : Propagation.env_table;
  locals : (int * int, float) Hashtbl.t;    (* (flow, server) -> local bound *)
  poisoned : (int * int, int) Hashtbl.t;    (* (flow, server) -> origin server *)
  violated : (int, Admission.reject_reason) Hashtbl.t;
      (* flows failing a feasibility check, with the reason *)
  mutable admits : int;
  mutable rejects : int;
  mutable teardowns : int;
  mutable cone_total : int;
  mutable reused_total : int;
}

let network t = t.net

let flow_delay t id =
  let f = Network.flow t.net id in
  List.fold_left
    (fun acc s -> acc +. Hashtbl.find t.locals (id, s))
    0. f.Flow.route

let all_flow_delays t =
  Network.flows t.net
  |> List.map (fun (f : Flow.t) -> (f.id, flow_delay t f.id))
  |> List.sort compare

let query t id =
  match Network.flow_opt t.net id with
  | None -> None
  | Some f -> Some (f, flow_delay t id)

(* Backlog accessors: the same shared [Backlog] code path as
   [Decomposed], over this engine's incrementally maintained envelope
   table, so delta backlogs are bit-identical to a from-scratch
   re-analysis (tested alongside the delay invariant). *)
let poisoned_server t sid =
  List.exists
    (fun (f : Flow.t) -> Hashtbl.mem t.poisoned (f.id, sid))
    (Network.flows_at t.net sid)

let server_backlog t sid =
  let present = Network.flows_at t.net sid in
  if present = [] then 0.
  else if poisoned_server t sid then infinity
  else
    Backlog.server ~options:t.options t.net t.envs ~server:sid ~flows:present

let local_backlog t ~flow ~server =
  let present = Network.flows_at t.net server in
  let target =
    match List.find_opt (fun (f : Flow.t) -> f.id = flow) present with
    | Some f -> f
    | None ->
        invalid_arg
          (Printf.sprintf
             "Delta_engine.local_backlog: flow %d does not cross server %d"
             flow server)
  in
  if poisoned_server t server then infinity
  else
    match
      Backlog.per_flow ~options:t.options t.net t.envs ~server ~flows:present
        ~targets:[ target ]
        ~local_delay:(fun ~flow -> Hashtbl.find t.locals (flow, server))
    with
    | [ (_, b) ] -> b
    | _ -> assert false

let server_flow_backlogs t sid =
  let present = Network.flows_at t.net sid in
  if present = [] then []
  else if poisoned_server t sid then
    List.map (fun (f : Flow.t) -> (f.id, infinity)) present |> List.sort compare
  else
    Backlog.per_flow ~options:t.options t.net t.envs ~server:sid ~flows:present
      ~targets:present
      ~local_delay:(fun ~flow -> Hashtbl.find t.locals (flow, sid))
    |> List.map (fun ((f : Flow.t), b) -> (f.id, b))
    |> List.sort compare

let flow_backlog t id =
  let f = Network.flow t.net id in
  List.fold_left
    (fun acc s -> Float.max acc (local_backlog t ~flow:id ~server:s))
    0. f.Flow.route

(* Mirrors [Admission.flow_violation]: the deadline check first, then —
   only for flows carrying a buffer budget — per-hop backlogs in route
   order.  Flows without budgets cost nothing beyond the old deadline
   check. *)
let refresh_violation t (f : Flow.t) =
  let deadline_v =
    match f.deadline with
    | None -> None
    | Some dl ->
        let b = flow_delay t f.id in
        if Admission.deadline_ok ~bound:b ~deadline:dl then None
        else
          Some
            (Admission.Deadline_violated
               { flow = f.id; bound = b; deadline = dl })
  in
  let v =
    match deadline_v with
    | Some _ -> deadline_v
    | None -> (
        match f.buffer with
        | None -> None
        | Some budget ->
            List.find_map
              (fun s ->
                let b = local_backlog t ~flow:f.id ~server:s in
                if Admission.buffer_ok ~backlog:b ~buffer:budget then None
                else
                  Some
                    (Admission.Buffer_violated
                       { flow = f.id; server = s; backlog = b; buffer = budget }))
              f.route)
  in
  match v with
  | None -> Hashtbl.remove t.violated f.id
  | Some reason -> Hashtbl.replace t.violated f.id reason

(* Successor map of the routing DAG, built once per operation. *)
let successors net =
  let succs = Hashtbl.create 64 in
  List.iter
    (fun (a, b) ->
      let cur = try Hashtbl.find succs a with Not_found -> [] in
      Hashtbl.replace succs a (b :: cur))
    (Network.edges net);
  succs

let succs_of succs sid = try Hashtbl.find succs sid with Not_found -> []

(* Forward closure of [seeds]. *)
let cone_of ~succs ~seeds =
  let cone = Hashtbl.create 64 in
  let rec visit sid =
    if not (Hashtbl.mem cone sid) then begin
      Hashtbl.add cone sid ();
      List.iter visit (succs_of succs sid)
    end
  in
  List.iter visit seeds;
  cone

(* Topological order of the cone subgraph (Kahn, ties by ascending id).
   Only in-cone predecessors count: inputs from outside the cone are
   already final.  Raises Network.Cyclic when the subgraph has a cycle
   — and any cycle a new flow can create passes through its route
   servers, which are all cone seeds, so checking the cone suffices.
   Per-operation cost scales with the cone, not the network. *)
let cone_topo_order ~succs cone =
  let indeg = Hashtbl.create 64 in
  Hashtbl.iter (fun sid () -> Hashtbl.replace indeg sid 0) cone;
  Hashtbl.iter
    (fun sid () ->
      List.iter
        (fun b ->
          if Hashtbl.mem cone b then
            Hashtbl.replace indeg b (Hashtbl.find indeg b + 1))
        (succs_of succs sid))
    cone;
  let ready =
    Hashtbl.fold
      (fun sid () acc -> if Hashtbl.find indeg sid = 0 then sid :: acc else acc)
      cone []
    |> List.sort compare
  in
  let rec kahn order = function
    | [] -> List.rev order
    | sid :: rest ->
        let next =
          List.fold_left
            (fun acc b ->
              if Hashtbl.mem cone b then begin
                let d = Hashtbl.find indeg b - 1 in
                Hashtbl.replace indeg b d;
                if d = 0 then b :: acc else acc
              end
              else acc)
            [] (succs_of succs sid)
        in
        kahn (sid :: order) (List.sort compare next @ rest)
  in
  let order = kahn [] ready in
  if List.length order <> Hashtbl.length cone then raise Network.Cyclic
  else order

(* Re-run the topological sweep restricted to the cone.  Raises
   Network.Cyclic before any mutation when the cone subgraph has a
   cycle (the caller rolls back the flow-list change). *)
let recompute t ~succs ~cone =
  let order = cone_topo_order ~succs cone in
  (* Poison marks originating inside the cone are about to be
     re-derived; marks inherited from untouched upstream servers stay. *)
  Hashtbl.fold
    (fun key origin acc -> if Hashtbl.mem cone origin then key :: acc else acc)
    t.poisoned []
  |> List.sort compare
  |> List.iter (fun key -> Hashtbl.remove t.poisoned key);
  let poison_rest (f : Flow.t) ~from =
    let rec mark = function
      | s :: rest ->
          if s = from then
            List.iter (fun s' -> Hashtbl.replace t.poisoned (f.id, s') from) rest
          else mark rest
      | [] -> ()
    in
    mark f.route
  in
  List.iter
    (fun sid ->
      let present = Network.flows_at t.net sid in
      if present <> [] then begin
        let unbounded =
          List.exists
            (fun (f : Flow.t) -> Hashtbl.mem t.poisoned (f.id, sid))
            present
        in
        if unbounded then
          List.iter
            (fun (f : Flow.t) ->
              Hashtbl.replace t.locals (f.id, sid) infinity;
              poison_rest f ~from:sid)
            present
        else begin
          let with_envs =
            List.map
              (fun (f : Flow.t) ->
                (f, Propagation.get t.envs ~flow:f.id ~server:sid))
              present
          in
          let delays =
            Local_bounds.at_server ~options:t.options t.net t.envs ~server:sid
          in
          List.iter2
            (fun ((f : Flow.t), env) ((f' : Flow.t), d) ->
              assert (f.id = f'.id);
              Hashtbl.replace t.locals (f.id, sid) d;
              if Float_ops.eq_exact d infinity then poison_rest f ~from:sid
              else
                Propagation.set_next t.envs f ~after:sid
                  (Options.compact_envelope t.options (Pwl.shift_left env d)))
            with_envs delays
        end
      end)
    order;
  (* Bounds can only have changed for flows that touch the cone. *)
  List.iter
    (fun (f : Flow.t) ->
      if List.exists (fun s -> Hashtbl.mem cone s) f.route then
        refresh_violation t f)
    (Network.flows t.net)

let create ?(options = Options.default) ~servers ~flows () =
  let net = Network.make ~servers ~flows in
  let t =
    {
      options;
      net;
      envs = Propagation.create net;
      locals = Hashtbl.create 64;
      poisoned = Hashtbl.create 8;
      violated = Hashtbl.create 8;
      admits = 0;
      rejects = 0;
      teardowns = 0;
      cone_total = 0;
      reused_total = 0;
    }
  in
  let cone = Hashtbl.create 64 in
  List.iter (fun (s : Server.t) -> Hashtbl.replace cone s.id ()) servers;
  recompute t ~succs:(successors net) ~cone;
  t

type op_stats = { cone_nodes : int; reused_nodes : int }

type admit_result =
  | Admitted of { bound : float; stats : op_stats }
  | Rejected of { reason : Admission.reject_reason; stats : op_stats }

(* An operation that touched no server state (no-deadline or cyclic
   rejection) still shows up in the cumulative accounting: it reused
   everything. *)
let note_skip t =
  let reused_nodes = Network.size t.net in
  Metrics.add c_reused reused_nodes;
  t.reused_total <- t.reused_total + reused_nodes;
  { cone_nodes = 0; reused_nodes }

let note_delta t cone =
  let cone_nodes = Hashtbl.length cone in
  let reused_nodes = Network.size t.net - cone_nodes in
  Metrics.add c_cone cone_nodes;
  Metrics.add c_reused reused_nodes;
  t.cone_total <- t.cone_total + cone_nodes;
  t.reused_total <- t.reused_total + reused_nodes;
  { cone_nodes; reused_nodes }

(* Drop every per-hop trace of a flow (teardown, or admit rollback). *)
let forget_flow t (f : Flow.t) =
  List.iter
    (fun s ->
      Propagation.remove t.envs ~flow:f.id ~server:s;
      Hashtbl.remove t.locals (f.id, s);
      Hashtbl.remove t.poisoned (f.id, s))
    f.route;
  Hashtbl.remove t.violated f.id

(* Lowest-id violated flow, matching Admission.first_violation.  The
   stored reason is current: [refresh_violation] re-derives it whenever
   the flow's route touches a recomputed cone, and outside-cone state
   cannot move. *)
let current_violation t =
  Hashtbl.fold (fun id reason acc -> (id, reason) :: acc) t.violated []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> function
  | [] -> None
  | (_, reason) :: _ -> Some reason

let admit t (cand : Flow.t) =
  match cand.deadline with
  | None ->
      t.rejects <- t.rejects + 1;
      Metrics.incr c_rejected;
      Rejected { reason = Admission.No_deadline; stats = note_skip t }
  | Some _ -> (
      let old_net = t.net in
      (* Raises Invalid_argument on a duplicate id or unknown server
         before any state is touched. *)
      let new_net =
        Network.with_flows old_net (Network.flows old_net @ [ cand ])
      in
      t.net <- new_net;
      Propagation.install_source t.envs cand;
      let succs = successors new_net in
      let cone = cone_of ~succs ~seeds:cand.route in
      match recompute t ~succs ~cone with
      | exception Network.Cyclic ->
          (* Nothing was recomputed (the cycle check precedes all
             mutation): undo the flow-list splice and reject. *)
          Propagation.remove t.envs ~flow:cand.id ~server:(Flow.first_hop cand);
          t.net <- old_net;
          t.rejects <- t.rejects + 1;
          Metrics.incr c_rejected;
          Rejected { reason = Admission.Cyclic_route; stats = note_skip t }
      | () ->
          let stats = note_delta t cone in
          if Hashtbl.length t.violated = 0 then begin
            t.admits <- t.admits + 1;
            Metrics.incr c_accepted;
            Admitted { bound = flow_delay t cand.id; stats }
          end
          else begin
            let reason =
              match current_violation t with
              | Some r -> r
              | None -> assert false
            in
            (* Roll back: tear the candidate out over the same cone.
               Outside-cone state never moved, so this reproduces the
               pre-admit state bit-for-bit. *)
            forget_flow t cand;
            t.net <- old_net;
            recompute t ~succs ~cone;
            t.rejects <- t.rejects + 1;
            Metrics.incr c_rejected;
            Rejected { reason; stats }
          end)

let teardown t id =
  match Network.flow_opt t.net id with
  | None -> Error `Unknown_flow
  | Some f ->
      let flows' =
        List.filter (fun (g : Flow.t) -> g.id <> id) (Network.flows t.net)
      in
      forget_flow t f;
      t.net <- Network.with_flows t.net flows';
      let succs = successors t.net in
      let cone = cone_of ~succs ~seeds:f.route in
      recompute t ~succs ~cone;
      t.teardowns <- t.teardowns + 1;
      Metrics.incr c_teardown;
      Ok (note_delta t cone)

type stats = {
  servers : int;
  flows : int;
  admitted_rate : float;
  admits : int;
  rejects : int;
  teardowns : int;
  cone_nodes : int;
  reused_nodes : int;
}

let stats t =
  {
    servers = Network.size t.net;
    flows = List.length (Network.flows t.net);
    admitted_rate = Propagation.total_rate (Network.flows t.net);
    admits = t.admits;
    rejects = t.rejects;
    teardowns = t.teardowns;
    cone_nodes = t.cone_total;
    reused_nodes = t.reused_total;
  }

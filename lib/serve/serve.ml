type mode = Delta | Full of Engine.method_

(* Full re-analysis fallback: every operation re-derives the complete
   bound table through the batch admission kernel. *)
type full = {
  f_options : Options.t;
  f_servers : Server.t list;
  f_method : Engine.method_;
  mutable f_flows : Flow.t list; (* base ++ admitted, admission order *)
  mutable f_admits : int;
  mutable f_rejects : int;
  mutable f_teardowns : int;
  mutable f_cone : int; (* cumulative servers re-analyzed *)
}

type engine = E_delta of Delta_engine.t | E_full of full
type t = { engine : engine }

exception Bad_request of string

let create ?(options = Options.default) ~mode ~servers ~flows () =
  match mode with
  | Delta -> { engine = E_delta (Delta_engine.create ~options ~servers ~flows ()) }
  | Full method_ ->
      (* Validate the initial population the same way the delta engine
         does (duplicate ids, unknown route servers, cycles). *)
      ignore (Network.topological_order (Network.make ~servers ~flows));
      {
        engine =
          E_full
            {
              f_options = options;
              f_servers = servers;
              f_method = method_;
              f_flows = flows;
              f_admits = 0;
              f_rejects = 0;
              f_teardowns = 0;
              f_cone = 0;
            };
      }

(* ------------------------------------------------------------------ *)
(* Request decoding                                                     *)
(* ------------------------------------------------------------------ *)

let field name conv j =
  match Sjson.member name j with
  | None -> None
  | Some v -> (
      match conv v with
      | Some x -> Some x
      | None -> raise (Bad_request (Printf.sprintf "invalid %S field" name)))

let req name conv j =
  match field name conv j with
  | Some x -> x
  | None -> raise (Bad_request (Printf.sprintf "missing or invalid %S field" name))

let to_route j =
  match Sjson.to_list j with
  | None -> None
  | Some elems ->
      let ids = List.filter_map Sjson.to_int elems in
      if List.length ids = List.length elems then Some ids else None

let flow_of_json j =
  match j with
  | Sjson.Obj _ ->
      let id = req "id" Sjson.to_int j in
      let sigma = req "sigma" Sjson.to_float j in
      let rho = req "rho" Sjson.to_float j in
      let route = req "route" to_route j in
      let peak = field "peak" Sjson.to_float j in
      let deadline = field "deadline" Sjson.to_float j in
      let buffer = field "buffer" Sjson.to_float j in
      let priority = field "priority" Sjson.to_int j in
      let weight = field "weight" Sjson.to_float j in
      let name = field "name" Sjson.to_string j in
      let arrival = Arrival.token_bucket ?peak ~sigma ~rho () in
      Flow.make ~id ?name ~arrival ~route ?deadline ?buffer ?priority ?weight ()
  | _ -> raise (Bad_request "\"flow\" must be an object")

(* ------------------------------------------------------------------ *)
(* Response encoding                                                    *)
(* ------------------------------------------------------------------ *)

let obj fields = Sjson.render (Sjson.Obj fields)
let ok b = ("ok", Sjson.Bool b)
let str k v = (k, Sjson.Str v)
let int k v = (k, Sjson.num_of_int v)
let delta_fields (s : Delta_engine.op_stats) =
  [ int "cone_nodes" s.cone_nodes; int "reused_nodes" s.reused_nodes ]

let reason_fields = function
  | Admission.No_deadline -> [ str "reason" "no_deadline" ]
  | Admission.Cyclic_route -> [ str "reason" "cyclic_route" ]
  | Admission.Deadline_violated { flow; bound; deadline } ->
      [
        str "reason" "deadline_violated";
        int "violating_flow" flow;
        ("violating_bound", Sjson.float_repr bound);
        ("violating_deadline", Sjson.Num deadline);
      ]
  | Admission.Buffer_violated { flow; server; backlog; buffer } ->
      [
        str "reason" "buffer_violated";
        int "violating_flow" flow;
        int "violating_server" server;
        ("violating_backlog", Sjson.float_repr backlog);
        ("violating_buffer", Sjson.Num buffer);
      ]

let bad_request msg = obj [ ok false; str "error" "bad_request"; str "detail" msg ]

let unknown_flow op id =
  obj [ ok false; str "op" op; int "flow" id; str "error" "unknown_flow" ]

(* ------------------------------------------------------------------ *)
(* Operations                                                           *)
(* ------------------------------------------------------------------ *)

let flow_present t id =
  match t.engine with
  | E_delta e -> Delta_engine.query e id <> None
  | E_full f -> List.exists (fun (g : Flow.t) -> g.Flow.id = id) f.f_flows

let full_op_fields f =
  let n = List.length f.f_servers in
  f.f_cone <- f.f_cone + n;
  [ int "cone_nodes" n; int "reused_nodes" 0 ]

let do_admit t (cand : Flow.t) =
  let head = [ str "op" "admit"; int "flow" cand.id ] in
  if flow_present t cand.id then
    obj ((ok false :: head) @ [ str "error" "duplicate_flow" ])
  else
    match t.engine with
    | E_delta e -> (
        match Delta_engine.admit e cand with
        | Delta_engine.Admitted { bound; stats } ->
            let backlog = Delta_engine.flow_backlog e cand.id in
            obj
              ((ok true :: head)
              @ ("bound", Sjson.float_repr bound)
                :: ("backlog", Sjson.float_repr backlog)
                :: delta_fields stats)
        | Delta_engine.Rejected { reason; stats } ->
            obj
              ((ok false :: head)
              @ (str "error" "rejected" :: reason_fields reason)
              @ delta_fields stats))
    | E_full f -> (
        match
          Admission.decide_one ~options:f.f_options ~servers:f.f_servers
            ~flows:f.f_flows ~candidate:cand ~method_:f.f_method ()
        with
        | Admission.Accepted { bounds } ->
            f.f_flows <- f.f_flows @ [ cand ];
            f.f_admits <- f.f_admits + 1;
            let bound = List.assoc cand.id bounds in
            let backlog =
              Engine.flow_backlog ~options:f.f_options
                (Network.make ~servers:f.f_servers ~flows:f.f_flows)
                f.f_method cand.id
            in
            obj
              ((ok true :: head)
              @ ("bound", Sjson.float_repr bound)
                :: ("backlog", Sjson.float_repr backlog)
                :: full_op_fields f)
        | Admission.Rejected reason ->
            f.f_rejects <- f.f_rejects + 1;
            obj
              ((ok false :: head)
              @ (str "error" "rejected" :: reason_fields reason)
              @ full_op_fields f))

let do_teardown t id =
  match t.engine with
  | E_delta e -> (
      match Delta_engine.teardown e id with
      | Error `Unknown_flow -> unknown_flow "teardown" id
      | Ok stats ->
          obj
            ((ok true :: [ str "op" "teardown"; int "flow" id ])
            @ delta_fields stats))
  | E_full f ->
      if not (flow_present t id) then unknown_flow "teardown" id
      else begin
        f.f_flows <- List.filter (fun (g : Flow.t) -> g.Flow.id <> id) f.f_flows;
        f.f_teardowns <- f.f_teardowns + 1;
        obj
          ((ok true :: [ str "op" "teardown"; int "flow" id ])
          @ full_op_fields f)
      end

let query_response (f : Flow.t) bound backlog =
  obj
    [
      ok true;
      str "op" "query";
      int "flow" f.id;
      ("bound", Sjson.float_repr bound);
      ("backlog", Sjson.float_repr backlog);
      ( "deadline",
        match f.deadline with Some d -> Sjson.Num d | None -> Sjson.Null );
      ( "buffer",
        match f.buffer with Some b -> Sjson.Num b | None -> Sjson.Null );
      ("route", Sjson.List (List.map Sjson.num_of_int f.route));
    ]

let do_query t id =
  match t.engine with
  | E_delta e -> (
      match Delta_engine.query e id with
      | None -> unknown_flow "query" id
      | Some (f, bound) -> query_response f bound (Delta_engine.flow_backlog e id))
  | E_full f -> (
      match List.find_opt (fun (g : Flow.t) -> g.Flow.id = id) f.f_flows with
      | None -> unknown_flow "query" id
      | Some flow ->
          let bounds =
            Admission.bounds_for ~options:f.f_options ~servers:f.f_servers
              f.f_flows f.f_method
          in
          let backlog =
            Engine.flow_backlog ~options:f.f_options
              (Network.make ~servers:f.f_servers ~flows:f.f_flows)
              f.f_method id
          in
          query_response flow (List.assoc id bounds) backlog)

let do_stats t =
  let engine_name, servers, flows, rate, admits, rejects, teardowns, cone, reused
      =
    match t.engine with
    | E_delta e ->
        let s = Delta_engine.stats e in
        ( "delta",
          s.servers,
          s.flows,
          s.admitted_rate,
          s.admits,
          s.rejects,
          s.teardowns,
          s.cone_nodes,
          s.reused_nodes )
    | E_full f ->
        ( "full",
          List.length f.f_servers,
          List.length f.f_flows,
          Propagation.total_rate f.f_flows,
          f.f_admits,
          f.f_rejects,
          f.f_teardowns,
          f.f_cone,
          0 )
  in
  obj
    [
      ok true;
      str "op" "stats";
      str "engine" engine_name;
      (* Which curve representation served the session's kernel calls
         (process-global; delta re-analysis and memo keys are
         namespaced by it — see Curve_repr). *)
      str "curve_backend" (Options.curve_backend_name ());
      int "servers" servers;
      int "flows" flows;
      ("admitted_rate", Sjson.Num rate);
      int "admits" admits;
      int "rejects" rejects;
      int "teardowns" teardowns;
      int "cone_nodes" cone;
      int "reused_nodes" reused;
    ]

(* ------------------------------------------------------------------ *)
(* Dispatch                                                             *)
(* ------------------------------------------------------------------ *)

(* Every request must produce a response: an exception escaping the
   dispatch kills the session — and with it every later request on the
   connection.  The two expected failure classes map to [bad_request];
   anything else becomes an [internal_error] response instead of a
   crash.  The [@@lint.exn_barrier] attribute makes the typed linter
   enforce that this closure stays total as operations are added. *)
let handle_line t line =
  (try
     match Sjson.parse line with
     | exception Sjson.Parse_error msg ->
         obj [ ok false; str "error" "parse_error"; str "detail" msg ]
     | j -> (
         match field "op" Sjson.to_string j with
         | None -> bad_request "missing or invalid \"op\" field"
         | Some op -> (
             match op with
             | "admit" -> (
                 match Sjson.member "flow" j with
                 | None -> raise (Bad_request "missing \"flow\" field")
                 | Some fj -> do_admit t (flow_of_json fj))
             | "teardown" -> do_teardown t (req "flow" Sjson.to_int j)
             | "query" -> do_query t (req "flow" Sjson.to_int j)
             | "stats" -> do_stats t
             | op ->
                 obj [ ok false; str "error" "unknown_op"; str "detail" op ]))
   with
  | Bad_request msg -> bad_request msg
  | Invalid_argument msg -> bad_request msg
  | e ->
      obj
        [ ok false;
          str "error" "internal_error";
          str "detail" (Printexc.to_string e)
        ])
[@@lint.exn_barrier]

let session t ~next ~emit =
  let rec loop () =
    match next () with
    | None -> ()
    | Some line ->
        if String.trim line <> "" then emit (handle_line t line);
        loop ()
  in
  loop ()

let run_channels t ic oc =
  session t
    ~next:(fun () -> In_channel.input_line ic)
    ~emit:(fun resp ->
      output_string oc resp;
      output_char oc '\n';
      flush oc)

(* ------------------------------------------------------------------ *)
(* Socket transports (sequential accept loop)                           *)
(* ------------------------------------------------------------------ *)

let serve_fd t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try run_channels t ic oc with Sys_error _ | End_of_file -> ());
  (* Closing the output channel flushes and closes the shared fd. *)
  close_out_noerr oc

let accept_loop ?(clients = -1) t sock =
  let remaining = ref clients in
  while !remaining <> 0 do
    let fd, _ = Unix.accept sock in
    if !remaining > 0 then decr remaining;
    serve_fd t fd
  done;
  Unix.close sock

let listen_unix ?clients t ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  accept_loop ?clients t sock

let listen_tcp ?clients t ~port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 8;
  accept_loop ?clients t sock

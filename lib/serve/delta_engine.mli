(** Delta re-analysis engine for the admission-control service.

    Holds one network (fixed servers, evolving flow population) together
    with the full state of a {!Decomposed}-style topological analysis —
    per-hop input envelopes, per-hop local delay bounds, instability
    poison marks — and updates it {e incrementally}: when a flow is
    admitted or torn down, only the {e downstream cone} of its route
    (the forward closure of the route's servers in the routing DAG) is
    recomputed; every envelope and bound outside the cone is reused
    unchanged.

    Correctness invariant, pinned by the determinism tests: after any
    sequence of operations, {!all_flow_delays} is {e byte-identical}
    (IEEE bit patterns) to a from-scratch [Decomposed.analyze] of the
    same servers and the same flow list in the same order.  This holds
    because envelopes at a server only depend on upstream state, the
    cone is closed under DAG successors, and the per-server recompute
    is the same code path over the same inputs.

    A rejected admit rolls back by tearing the candidate out over the
    same cone, restoring the previous state bit-for-bit.

    Cone sizes are published through [netcalc.obs] as the
    [serve.delta.cone_nodes] / [serve.delta.reused_nodes] counters. *)

type t

val create :
  ?options:Options.t -> servers:Server.t list -> flows:Flow.t list -> unit -> t
(** Build the network and run the initial full analysis (the cone is
    every server).  @raise Network.Cyclic on non-feedforward routing,
    [Invalid_argument] on duplicate ids / unknown route servers. *)

type op_stats = {
  cone_nodes : int;    (** servers re-analyzed by this operation *)
  reused_nodes : int;  (** servers whose state was reused untouched *)
}

type admit_result =
  | Admitted of { bound : float; stats : op_stats }
      (** the candidate's end-to-end bound, now guaranteed *)
  | Rejected of { reason : Admission.reject_reason; stats : op_stats }

val admit : t -> Flow.t -> admit_result
(** Decide one candidate, mutating the engine on acceptance and rolling
    back bit-exactly on rejection.  Decisions agree with
    [Admission.decide_one ~method_:Decomposed] over the same population
    (tested).  @raise Invalid_argument on a duplicate flow id or a
    route through an unknown server (state unchanged). *)

val teardown : t -> int -> (op_stats, [ `Unknown_flow ]) result
(** Remove a flow by id and re-analyze its downstream cone. *)

val query : t -> int -> (Flow.t * float) option
(** A present flow and its current end-to-end bound. *)

val flow_delay : t -> int -> float
(** @raise Invalid_argument for an absent flow. *)

val all_flow_delays : t -> (int * float) list
(** [(flow id, bound)] for every flow, in id order — same shape as
    [Decomposed.all_flow_delays]. *)

val server_backlog : t -> int -> float
(** Aggregate backlog bound at a server — bit-identical to
    [Decomposed.server_backlog] of a from-scratch analysis (shared
    {!Backlog} code path over the same envelope table). *)

val server_flow_backlogs : t -> int -> (int * float) list
(** Per-flow backlog bounds at a server, [(flow id, bound)] in id order
    — bit-identical to [Decomposed.server_flow_backlogs]. *)

val local_backlog : t -> flow:int -> server:int -> float
(** The flow's backlog bound at one of its hops.
    @raise Invalid_argument when the flow does not cross the server. *)

val flow_backlog : t -> int -> float
(** The flow's buffer requirement: its worst per-hop backlog bound over
    its route.  @raise Invalid_argument for an absent flow. *)

val network : t -> Network.t
(** Current network; flow list order is base order + admission order
    (what a from-scratch comparison must replicate). *)

type stats = {
  servers : int;
  flows : int;
  admitted_rate : float;  (** sum of long-run rates of present flows *)
  admits : int;           (** accepted admits since [create] *)
  rejects : int;
  teardowns : int;
  cone_nodes : int;       (** cumulative over all delta operations *)
  reused_nodes : int;
}

val stats : t -> stats

let guaranteed_rate ~rate ~weight ~total_weight =
  if weight <= 0. || total_weight < weight then
    invalid_arg "Gps: weights must satisfy 0 < weight <= total_weight";
  rate *. weight /. total_weight

let flow_service ~rate ~weight ~total_weight ?(packet_latency = 0.) () =
  Service.rate_latency
    ~rate:(guaranteed_rate ~rate ~weight ~total_weight)
    ~latency:packet_latency

let local_delay ~rate ~weight ~total_weight ~alpha ?packet_latency () =
  Deviation.hdev ~alpha
    ~beta:(flow_service ~rate ~weight ~total_weight ?packet_latency ())

let output_flow ~rate ~weight ~total_weight ~alpha ?packet_latency () =
  Curve_repr.deconv alpha
    (flow_service ~rate ~weight ~total_weight ?packet_latency ())

(** Build-time-selected execution backend for {!Par}.

    Two implementations share this interface (see the dune rules in
    this directory):
    - [par_backend_domains.ml] (OCaml >= 5.0): a persistent pool of
      [Domain.t] workers fed through a generation-stamped job slot;
    - [par_backend_seq.ml] (OCaml 4.x): a sequential fallback that
      runs every chunk inline on the calling thread.

    User code never touches this module directly; {!Par} layers the
    list API, chunking policy, jobs resolution and exception transport
    on top. *)

val name : string
(** ["domains"] or ["sequential"] — reported by benchmarks so recorded
    timings can be attributed to the right execution mode. *)

val available : bool
(** Whether real parallelism exists.  [false] means {!parallel_for}
    runs everything on the calling thread regardless of [jobs]. *)

val recommended_jobs : unit -> int
(** Hardware-derived default worker count
    ([Domain.recommended_domain_count] on OCaml 5, [1] on 4.x). *)

val in_parallel : unit -> bool
(** True while the calling thread is executing a chunk body of some
    enclosing {!parallel_for}.  {!Par} uses this to run nested
    parallel calls inline instead of deadlocking on or oversubscribing
    the pool. *)

val parallel_for : jobs:int -> chunks:int -> (int -> unit) -> unit
(** [parallel_for ~jobs ~chunks body] runs [body c] exactly once for
    every [c] in [0 .. chunks - 1], using at most [jobs] threads of
    execution (the caller participates).  [body] must not raise — the
    {!Par} layer catches and transports exceptions itself.  Returns
    once every chunk has completed.  Top-level invocations are
    serialized internally; reentrant calls from a chunk body are
    forbidden (guard with {!in_parallel}). *)

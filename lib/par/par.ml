(* Frontend of netcalc.par: jobs resolution, chunking, deterministic
   result assembly and exception transport.  The execution strategy
   lives in Par_backend (Domain pool on OCaml 5, inline on 4.x). *)

let backend = Par_backend.name
let parallel_available = Par_backend.available

let env_jobs =
  lazy
    (match Sys.getenv_opt "NETCALC_JOBS" with
    | None -> None
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> Some n
        | Some _ | None -> None))

let override =
  ref None
[@@lint.waive
    "cache-key: jobs override; Par results are bit-identical at any jobs \
     count (pinned by the determinism tests)"]
[@@lint.domain_safe
  "written by set_jobs/clear_jobs from the main domain during setup, before \
   any parallel region runs; workers never touch it (netcalc.par depends on \
   nothing, so Obs_sync is unavailable here)"]

let set_jobs n =
  if n < 1 then invalid_arg "Par.set_jobs: jobs must be >= 1";
  override := Some n

let clear_jobs () = override := None

let default_jobs () =
  match Lazy.force env_jobs with
  | Some n -> n
  | None -> max 1 (Par_backend.recommended_jobs ())

let jobs () = match !override with Some n -> n | None -> default_jobs ()

let mapi ?jobs:requested f xs =
  let jobs =
    match requested with Some n -> max 1 n | None -> jobs ()
  in
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else if jobs <= 1 || n <= 1 || Par_backend.in_parallel () then
    List.mapi f xs
  else begin
    let out = Array.make n None in
    (* Exception transport is by smallest failing index, not by which
       domain's failure is observed first: a bare "first CAS wins"
       would surface a schedule-dependent exception.  Workers race to
       keep the minimum, and a chunk is only skipped when a failure
       strictly before its range is already recorded (such a chunk
       cannot produce a smaller index).  The raised exception is then
       the one the sequential run would raise, at any jobs count. *)
    let first_err : (int * exn) option Atomic.t = Atomic.make None in
    let record i e =
      let rec go () =
        match Atomic.get first_err with
        | Some (j, _) when j <= i -> ()
        | cur ->
            if not (Atomic.compare_and_set first_err cur (Some (i, e))) then
              go ()
      in
      go ()
    in
    (* Small chunks (several per worker) so an expensive cell — high
       utilization, many hops — does not leave the other domains idle;
       index-ordered assembly keeps the output deterministic anyway. *)
    let chunk = max 1 (n / (jobs * 4)) in
    let chunks = (n + chunk - 1) / chunk in
    let body c =
      let lo = c * chunk and hi = min n ((c + 1) * chunk) - 1 in
      let skip =
        match Atomic.get first_err with Some (j, _) -> j < lo | None -> false
      in
      if not skip then begin
        let i = ref lo in
        try
          while !i <= hi do
            out.(!i) <- Some (f !i arr.(!i));
            incr i
          done
        with e -> record !i e
      end
    in
    Par_backend.parallel_for ~jobs ~chunks body;
    (match Atomic.get first_err with Some (_, e) -> raise e | None -> ());
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) out)
  end

let map ?jobs f xs = mapi ?jobs (fun _ x -> f x) xs

let map_reduce ?jobs ~map:f ~reduce init xs =
  List.fold_left reduce init (map ?jobs f xs)

(* Sequential fallback backend of netcalc.par (OCaml 4.x, no Domain).

   Same interface as the domains backend; every chunk runs inline on
   the calling thread, in order.  Par's result assembly is identical
   in both modes, which is what makes "--jobs N" output byte-identical
   across compilers. *)

let name = "sequential"
let available = false
let recommended_jobs () = 1
let in_parallel () = false

let parallel_for ~jobs:_ ~chunks body =
  for c = 0 to chunks - 1 do
    body c
  done

(** Deterministic data parallelism for the analysis engines
    ([netcalc.par]).

    The paper's evaluation is a grid of independent analyses
    (utilizations x hop counts x methods), and the fixed-point
    engine's Jacobi step is independent per server — embarrassingly
    parallel workloads.  This module runs them on a pool of OCaml 5
    domains while keeping every observable result {e byte-identical}
    to the sequential run: inputs are split by index, outputs are
    reassembled by index, and reductions fold in list order, so the
    only nondeterminism (which domain computes which chunk, in which
    order) never reaches the caller.

    On OCaml 4.x the library degrades to a sequential backend with the
    same API ({!backend} = ["sequential"], {!parallel_available} =
    [false]), so code written against it builds on the whole CI
    matrix.

    Worker count resolution, in decreasing priority:
    + the [?jobs] argument of the call;
    + {!set_jobs} (what [--jobs N] command lines feed);
    + the [NETCALC_JOBS] environment variable;
    + [Domain.recommended_domain_count] (OCaml 5) or 1 (OCaml 4.x).

    Nested calls (a parallel map whose body itself calls {!map}) are
    detected and run inline on the already-parallel worker, so
    composing parallel layers — bench grid over
    [Engine.compare_all] over [Fixed_point] — is safe and does not
    oversubscribe. *)

val backend : string
(** ["domains"] (OCaml 5 pool) or ["sequential"] (fallback). *)

val parallel_available : bool
(** True when {!backend} can actually run work concurrently. *)

val default_jobs : unit -> int
(** [NETCALC_JOBS] if set to a positive integer, otherwise the
    hardware recommendation.  Always [>= 1]. *)

val set_jobs : int -> unit
(** Override the default worker count for the whole process (CLI
    [--jobs]).  @raise Invalid_argument on [n < 1]. *)

val clear_jobs : unit -> unit
(** Drop the {!set_jobs} override, returning to {!default_jobs}. *)

val jobs : unit -> int
(** The effective worker count: the {!set_jobs} override when present,
    {!default_jobs} otherwise. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] is [List.map f xs], computed with up to [jobs] domains.
    Order is preserved.  If any application raises, the exception of
    the {e smallest failing index} is re-raised in the caller after
    in-flight chunks complete — the same exception the sequential run
    surfaces, so failure behavior is deterministic at any jobs count.
    [f] runs in an unspecified order, possibly concurrently — it must
    not rely on shared mutable state beyond what it synchronizes
    itself. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** Indexed {!map}. *)

val map_reduce :
  ?jobs:int -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> 'c -> 'a list -> 'c
(** [map_reduce ~map ~reduce init xs] maps in parallel, then folds the
    results {e sequentially, in list order} — associativity of
    [reduce] is not required and the result is deterministic. *)

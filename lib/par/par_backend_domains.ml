(* Domain-based work pool (OCaml >= 5.0 backend of netcalc.par).

   Design: a process-global pool of worker domains blocked on a
   condition variable, woken by bumping a generation counter that
   points them at the current job.  A job is a bag of chunk indices
   drained through an atomic cursor, so scheduling is dynamic (good
   load balance for irregular analyses) while the caller assembles
   results by index, keeping output deterministic.

   Invariants that make this simple rather than subtle:
   - [submit_lock] serializes top-level parallel_for calls, so at most
     one job is ever live and the single [job]/[generation] slot
     cannot be overwritten while workers still need it (the caller
     only returns once [pending] hits 0, i.e. every chunk body has
     finished).
   - Nested calls never reach the pool: Par checks [in_parallel] and
     runs them inline on whichever domain is executing the chunk.
   - Workers that wake late for a finished job find the chunk cursor
     exhausted, do nothing, and go back to waiting for the next
     generation.
   - The pool is shut down (and every domain joined) from an [at_exit]
     hook; without it the OCaml runtime would wait forever at process
     exit for domains blocked in [Condition.wait]. *)

type job = {
  body : int -> unit; (* chunk body; must not raise (Par guarantees) *)
  chunks : int;
  cursor : int Atomic.t; (* next chunk index to claim *)
  pending : int Atomic.t; (* chunks not yet completed *)
  tickets : int Atomic.t; (* helper admission (bounds active workers) *)
  max_helpers : int;
  done_m : Mutex.t;
  done_c : Condition.t;
}

let name = "domains"
let available = true
let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

(* Domain-local "am I inside a chunk body" flag, read by Par to run
   nested parallel calls inline. *)
let in_par_key = Domain.DLS.new_key (fun () -> ref false)
let in_parallel () = !(Domain.DLS.get in_par_key)

let run_chunks j =
  let flag = Domain.DLS.get in_par_key in
  flag := true;
  let rec go () =
    let c = Atomic.fetch_and_add j.cursor 1 in
    if c < j.chunks then begin
      j.body c;
      (* Completion count; the domain finishing the last chunk wakes
         the submitter.  The broadcast happens under [done_m] so the
         submitter cannot check-then-sleep between our decrement and
         our signal (no lost wakeup). *)
      if Atomic.fetch_and_add j.pending (-1) = 1 then begin
        Mutex.lock j.done_m;
        Condition.broadcast j.done_c;
        Mutex.unlock j.done_m
      end;
      go ()
    end
  in
  go ();
  flag := false

(* ---- the pool ---------------------------------------------------- *)

let pool_m = Mutex.create ()
let pool_c = Condition.create ()

(* The pool state below is guarded by [pool_m] directly: netcalc.par
   sits at the bottom of the dependency stack and must not depend on
   netcalc.obs, so Obs_sync (which the lint race rule looks for) is not
   available here.  Each binding carries a waiver saying which raw
   mutex protects it. *)
let current : job option ref = ref None
[@@lint.domain_safe "read/written under pool_m (raw Mutex; see above)"]

let generation = ref 0
[@@lint.domain_safe "read/written under pool_m (raw Mutex; see above)"]
[@@lint.waive
    "cache-key: pool bookkeeping; Par results are bit-identical at any jobs \
     count (pinned by the determinism tests)"]

let live = ref true
[@@lint.waive
    "cache-key: pool bookkeeping; Par results are bit-identical at any jobs \
     count (pinned by the determinism tests)"]
[@@lint.domain_safe
  "written under pool_m; the one unlocked read in parallel_for is a benign \
   monotone check (false only after shutdown, when falling back to the \
   sequential loop is exactly right)"]

let workers : unit Domain.t list ref = ref []
[@@lint.domain_safe "read/written under pool_m (raw Mutex; see above)"]

let pool_size = ref 0
[@@lint.domain_safe "read/written under pool_m (raw Mutex; see above)"]
[@@lint.waive
    "cache-key: worker-pool size; Par results are bit-identical at any \
     jobs count (pinned by the determinism tests)"]

let worker () =
  let seen = ref 0 in
  Mutex.lock pool_m;
  let rec loop () =
    while !live && !generation = !seen do
      Condition.wait pool_c pool_m
    done;
    if not !live then Mutex.unlock pool_m
    else begin
      seen := !generation;
      let j = Option.get !current in
      Mutex.unlock pool_m;
      (* Admission ticket: a pool larger than the job's [jobs] budget
         must not throw every worker at it. *)
      if Atomic.fetch_and_add j.tickets 1 < j.max_helpers then run_chunks j;
      Mutex.lock pool_m;
      loop ()
    end
  in
  loop ()

let shutdown () =
  Mutex.lock pool_m;
  live := false;
  Condition.broadcast pool_c;
  Mutex.unlock pool_m;
  List.iter Domain.join !workers;
  workers := [];
  pool_size := 0

let ensure_workers n =
  Mutex.lock pool_m;
  if !live && n > !pool_size then begin
    if !pool_size = 0 then Stdlib.at_exit shutdown;
    for _ = 1 to n - !pool_size do
      workers := Domain.spawn worker :: !workers
    done;
    pool_size := n
  end;
  Mutex.unlock pool_m

(* Serializes top-level submissions (see header). *)
let submit_lock = Mutex.create ()

let parallel_for ~jobs ~chunks body =
  if chunks <= 0 then ()
  else if jobs <= 1 || chunks = 1 || not !live then
    for c = 0 to chunks - 1 do
      body c
    done
  else begin
    Mutex.lock submit_lock;
    let finally () = Mutex.unlock submit_lock in
    match
      let helpers = min (jobs - 1) (chunks - 1) in
      ensure_workers helpers;
      let j =
        {
          body;
          chunks;
          cursor = Atomic.make 0;
          pending = Atomic.make chunks;
          tickets = Atomic.make 0;
          max_helpers = helpers;
          done_m = Mutex.create ();
          done_c = Condition.create ();
        }
      in
      Mutex.lock pool_m;
      current := Some j;
      incr generation;
      Condition.broadcast pool_c;
      Mutex.unlock pool_m;
      (* The submitter is a full participant, not just a waiter. *)
      run_chunks j;
      Mutex.lock j.done_m;
      while Atomic.get j.pending > 0 do
        Condition.wait j.done_c j.done_m
      done;
      Mutex.unlock j.done_m
    with
    | () -> finally ()
    | exception e ->
        (* unreachable in practice: [body] never raises *)
        finally ();
        raise e
  end

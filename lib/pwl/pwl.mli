(** Piecewise-linear functions on [0, +oo).

    This is the numeric substrate of the whole library: arrival curves,
    service curves, traffic envelopes and every intermediate quantity in
    the delay analyses are values of this type, and all operations are
    {e breakpoint-exact}: values and slopes are computed algebraically
    from the operands, with no sampling or discretization anywhere.

    A value represents a function [f : \[0, +oo) -> R] given by finitely
    many affine segments; the last segment extends to infinity.  Functions
    are {e right-continuous}: the value stored at a breakpoint is the
    value on the segment that starts there.  Upward jumps at breakpoints
    are allowed (e.g. a token bucket stores [f 0 = sigma], the
    right-continuous version of the classical [sigma + rho t for t > 0]
    curve; this convention is conservative and standard).

    All functions used by the analyses are nondecreasing, but the algebra
    below does not require it unless stated. *)

type t

(** {1 Hash-consing}

    Every value built by {!make} (hence by every operation) is interned
    in a process-global table keyed on the exact bit pattern of its
    normalized segments: two structurally identical curves constructed
    anywhere are one physical value.  This gives O(1) content keys for
    the operation caches ({!Minplus}, the incremental sweep engine) via
    {!uid}, and physical-equality fast paths in {!equal}, {!add},
    {!min_pw} and friends.  The table is bounded (wholesale reset past
    a cap, like the [Minplus] cache); after a reset equal curves get
    fresh uids, so uid-keyed caches miss and recompute identical values
    — correctness never depends on the cap. *)

val uid : t -> int
(** Unique id of this interned value.  Never reused within a process;
    [uid f = uid g] implies [f == g].  Not stable across runs or intern
    resets — a cache key, not a serialization format. *)

val content_hash : t -> int
(** Precomputed hash of the normalized segments (bit-pattern based). *)

type intern_stats = { hits : int; misses : int; entries : int }

val intern_stats : unit -> intern_stats
(** Cumulative intern hits/misses since the last [Metrics.reset] and
    the current number of live interned values.  Also published as the
    [pwl.intern.hits] / [pwl.intern.misses] observability counters. *)

val intern_clear : unit -> unit
(** Drop every interned value (subsequent constructions re-intern). *)

val intern_enabled : unit -> bool

val set_intern_enabled : bool -> unit
(** Disable/enable interning (on by default).  Toggling clears the
    table.  With interning off every construction is fresh and
    uid-keyed caches degrade to always-miss; results are unchanged. *)

(** {1 Construction} *)

val make : (float * float * float) list -> t
(** [make segs] builds a function from segments [(x, y, slope)] meaning
    [f t = y + slope * (t - x)] for [t] in [\[x, next_x)].  Requirements:
    the list is nonempty, the first [x] is [0.], the [x] are strictly
    increasing, and all numbers are finite.  Collinear adjacent segments
    are merged.  @raise Invalid_argument on violation. *)

val zero : t
(** The constant 0 function. *)

val constant : float -> t
(** [constant c] is [fun _ -> c].  Requires [c] finite. *)

val affine : y0:float -> slope:float -> t
(** [affine ~y0 ~slope] is [fun t -> y0 +. slope *. t]. *)

val of_sampler :
  ?eval_seq:(float array -> float array) ->
  candidates:float list -> eval:(float -> float) -> unit -> t
(** [of_sampler ~candidates ~eval ()] reconstructs a piecewise-linear
    function from an exact evaluator.  [candidates] must contain every
    true breakpoint of the function (extra points and duplicates are
    fine; points are clamped to [>= 0.]).  [eval] must be the
    right-continuous evaluation.  Reserved for genuinely search-like
    operations (deconvolution, the FIFO-theta clipping): the structural
    operations below are exact segmentwise constructions instead, so
    probe noise cannot accumulate through chained uses (see DESIGN.md
    §7).

    [?eval_seq], when given, replaces the pointwise [eval] for the bulk
    of the work: it receives the complete probe array (sorted
    nondecreasing) and must return the values at those points, allowing
    implementations backed by {!eval_seq}-style monotone cursors to
    avoid a binary search per probe.  It must agree with [eval]. *)

(** {1 Inspection} *)

val eval : t -> float -> float
(** [eval f t] for [t >= 0.] (negative [t] evaluates to [eval f 0.]). *)

val eval_left : t -> float -> float
(** Left limit [f (t-)]; equals [eval f t] except at upward jumps.
    [eval_left f 0. = eval f 0.]. *)

val eval_seq : t -> float array -> float array
(** [eval_seq f ts] evaluates [f] at every point of [ts], which must be
    sorted nondecreasing (negative points are clamped to [0.] first).
    Semantically [Array.map (eval f) ts], but a single monotone cursor
    walks the segments once instead of binary-searching per point —
    O(|ts| + |f|) instead of O(|ts| log |f|).  This is the batch
    evaluator behind the min-plus kernels ({!Minplus.deconv},
    [conv_with_rate]) whose probe sets are sorted by construction.
    @raise Invalid_argument if [ts] decreases. *)

val eval_left_seq : t -> float array -> float array
(** Batch {!eval_left} under the same contract as {!eval_seq}. *)

val segments : t -> (float * float * float) list
(** The segments as given to {!make}, normalized. *)

val breakpoints : t -> float list
(** The abscissae of the segments, increasing, starting with [0.]. *)

val final_slope : t -> float
(** Slope of the last (infinite) segment. *)

val value_at_zero : t -> float
(** [eval f 0.], the (right-continuous) initial value — e.g. the burst of
    a token bucket. *)

val last_breakpoint : t -> float
(** Abscissa of the final (infinite) segment. *)

val is_nondecreasing : t -> bool

val shape : t -> [ `Affine | `Concave | `Convex | `General ]
(** Shape classification used to select convolution algorithms.  A
    function is [`Concave] if it is continuous on [ (0, oo) ] with
    nonincreasing slopes (an upward jump at 0 is allowed), [`Convex] if
    continuous everywhere with nondecreasing slopes, [`Affine] if both. *)

val equal : t -> t -> bool
(** Pointwise equality up to the {!Float_ops.eps}
    tolerance. *)

val compare : t -> t -> int
(** Total order on curves: physical-equality fast path (interning makes
    it meaningful), then lexicographic on the bit patterns of the
    normalized segments.  Arbitrary but fixed within and across runs,
    independent of intern uids, and usable with interning off — the
    right argument for [Map.Make]/[Set.Make] and sorts.  Bit-exact:
    [compare f g = 0] is strictly finer than the tolerant {!equal}.

    This, {!equal} and {!hash} are the blessed comparison API enforced
    by the [pwl-poly-eq] lint rule: polymorphic [=] / [compare] /
    [Hashtbl.hash] on [t] would traverse segment arrays and mix in the
    intern uid, making equal curves built across an intern reset
    compare unequal. *)

val hash : t -> int
(** [hash = content_hash]: the precomputed segment-content hash,
    consistent with {!compare} (and with interning off). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** {1 Pointwise algebra} *)

val add : t -> t -> t
val sum : t list -> t
(** [sum \[\] = zero]. *)

val sub : t -> t -> t
val scale : float -> t -> t
val min_pw : t -> t -> t
(** Pointwise minimum (crossing points become breakpoints). *)

val max_pw : t -> t -> t
val nonneg : t -> t
(** [nonneg f = max_pw f zero], written [\[f\]^+] in the papers. *)

val min_list : t list -> t
(** Pointwise minimum of a nonempty list. *)

(** {1 Transformations} *)

val shift_left : t -> float -> t
(** [shift_left f d] is [fun t -> eval f (t +. d)] for [d >= 0.] — the
    envelope of traffic that has suffered at most [d] of delay/jitter. *)

val shift_right : t -> float -> t
(** [shift_right f d] is [fun t -> if t < d then 0. else eval f (t -. d)]
    for [d >= 0.] — e.g. delaying a service curve. *)

val compose : outer:t -> inner:t -> t
(** [compose ~outer ~inner] is [fun t -> eval outer (eval inner t)].
    Requires [inner] nondecreasing and nonnegative.  Exact. *)

val pseudo_inverse : t -> t
(** Upper pseudo-inverse [f^{-1}(y) = sup { x : f x <= y }] of a
    nondecreasing function, returned as a right-continuous
    piecewise-linear function of [y] (with [f^{-1}(y) = 0.] below
    [f 0.]).  The upper variant is the right-continuous one, hence
    representable; it dominates the lower pseudo-inverse
    [inf { x : f x >= y }] and the two differ only on the (finitely
    many) ordinates where [f] is flat, so delay bounds computed with it
    remain valid upper bounds and are exact for strictly increasing
    curves.  Flat segments of [f] become jumps of the inverse and jumps
    of [f] become flat segments.  Requires [final_slope f > 0.].
    @raise Invalid_argument if [f] decreases or is eventually flat. *)


val running_max : t -> t
(** [running_max f = fun t -> sup_{0 <= s <= t} f s] — the smallest
    nondecreasing majorant.  The identity on nondecreasing functions;
    used to scrub sub-tolerance negative slopes introduced by repeated
    floating-point reconstructions before an operation that requires
    monotonicity. *)

val lower_convex_hull : t -> t
(** Greatest convex minorant.  Used to turn members of the FIFO
    service-curve family (which may jump) into valid convex service
    curves without losing more than the hull requires. *)

val compact : dir:[ `Up | `Down ] -> eps:float -> max_segs:int -> t -> t
(** [compact ~dir ~eps ~max_segs f] prunes breakpoints of [f],
    moving the curve only in the safe direction: with [`Up] the result
    is pointwise [>= f] (sound for arrival envelopes — the bound can
    only loosen), with [`Down] pointwise [<= f] (sound for service
    curves).  The result stays within [eps] of [f] everywhere as long
    as the segment budget allows; when more than [max_segs] segments
    remain after all [<= eps] removals, pruning continues past [eps]
    (still direction-safe) until the budget is met or no admissible
    removal is left.  The value at 0 and the final slope are always
    preserved exactly.  Exact removals only happen at locally concave
    ([`Up]) / convex ([`Down]) breakpoints, which covers every curve
    the analyses feed it (envelopes are concave, service curves
    convex); elsewhere the function is conservative and keeps the
    breakpoint.  @raise Invalid_argument on [eps < 0] or
    [max_segs < 2]. *)

(** {1 Suprema and crossings} *)

val sup_diff : t -> t -> float
(** [sup_diff f g = sup_{t >= 0} (f t -. g t)], which is [infinity] when
    [final_slope f > final_slope g].  Left limits at jumps are taken into
    account, so the result is a true supremum over the right- and
    left-continuous versions. *)

val sup_on : t -> lo:float -> hi:float -> float
(** Supremum of [f] on [\[lo, hi\]] ([hi] may be [infinity] only if the
    final slope is [<= 0.]). *)

val first_crossing_below : t -> rate:float -> float
(** [first_crossing_below f ~rate] is [inf { t > 0 : f t <= rate *. t }]
    — the busy-period bound of an aggregate envelope [f] served at
    [rate].  Returns [infinity] when no such [t] exists (unstable
    server).  For [f 0. = 0.] with initial slope [<= rate] this is
    [0.]. *)

val first_crossing_under : t -> below:t -> float
(** [first_crossing_under f ~below:g = inf { t > 0 : f t <= g t }] —
    the busy-period bound of an envelope [f] served according to a
    service curve [g] (generalizes {!first_crossing_below} to
    non-constant-rate service, e.g. the leftover curve of a
    static-priority class).  [infinity] when [f] stays above [g]. *)

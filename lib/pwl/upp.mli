(** Ultimately pseudo-periodic (UPP) curves: a finite {!Pwl.t} prefix
    plus a periodic law [f (t + period) = f t + increment] for
    [t >= rank] (Nancy-style; Zippo & Stea, arXiv 2205.11449).  Curve
    size is independent of the analysis horizon, which is what the
    [upp] backend of {!Curve_repr} buys on long-horizon/cyclic-style
    workloads.

    Eventually-affine curves — every token-bucket and rate-latency
    curve in this repro — are the [affine_tail] special case, on which
    every operation delegates to the exact finite [Pwl]/[Minplus]
    kernels over the {e same} hash-consed values: results are
    bit-identical to the pwl backend there.  Genuinely periodic curves
    use windowed kernels (unroll to transient + two periods, operate,
    re-verify the law, minimize); those paths are tolerance-exact
    ({!Float_ops.( =~ )}), with the periodic-law verification refusing
    (raising [Invalid_argument]) rather than returning an unverified
    law. *)

type t

val of_pwl : Pwl.t -> t
(** Wrap a finite curve as the eventually-affine UPP curve equal to it
    everywhere.  Exact; O(1). *)

val to_pwl : t -> Pwl.t
(** Exact lowering back to a finite curve.
    @raise Invalid_argument when the curve is genuinely periodic (its
    finite representation would depend on a horizon; use {!unroll}). *)

val make :
  rank:float -> period:float -> increment:float ->
  (float * float * float) list -> t
(** [make ~rank ~period ~increment segs] builds the curve that follows
    the segments (a {!Pwl.make} triple list, which must not extend to
    [rank + period] or beyond) on [0, rank + period) and the law
    [f (t + period) = f t + increment] from [rank] on.  The result is
    normalized: affine-tail collapse, rank reduction by whole periods,
    period division ({!normalize} is idempotent).
    @raise Invalid_argument on [rank < 0], [period <= 0], non-finite
    parameters, or segments reaching past the trusted window. *)

val staircase : step:float -> interval:float -> t
(** The pure staircase [t -> step * (1 + floor (t / interval))]: jumps
    by [step] at [0, interval, 2 interval, ...].  One segment,
    regardless of how far it is ever evaluated — the canonical
    horizon-independence stress curve. *)

val normalize : t -> t
(** Re-establish minimality (affine-tail collapse, rank reduction,
    period division).  Every constructor and operation already returns
    normalized curves; [normalize] is idempotent. *)

val eval : t -> float -> float
(** Value at [t >= 0] (negative [t] clamps to 0 like {!Pwl.eval}),
    folding [t] into the trusted window by whole periods. *)

val unroll : t -> horizon:float -> Pwl.t
(** Explicit finite prefix, exact on [0, horizon] (eventually-affine
    curves return their base unchanged).  Past the horizon the result
    continues with the slope of its last segment — the unavoidable
    lie of any finite representation, which is exactly what this
    module exists to avoid. *)

val base : t -> Pwl.t
(** The stored finite prefix (trusted on [0, rank + period)). *)

val rank : t -> float
val period : t -> float
val increment : t -> float
val is_affine_tail : t -> bool

val rate : t -> float
(** Long-run growth rate: [final_slope base] for eventually-affine
    curves, [increment / period] otherwise. *)

val segment_count : t -> int
(** Number of stored segments — the representation size that stays
    bounded where an unrolled {!Pwl.t} grows with the horizon. *)

(** {1 Algebra}

    Binary operations on genuinely periodic operands require the two
    periods to be commensurable (common multiple within a small integer
    factor) when both laws matter, and raise [Invalid_argument]
    otherwise — a refusal, never a wrong law. *)

val add : t -> t -> t
val min_pw : t -> t -> t

val conv : t -> t -> t
(** Envelope-convention min-plus convolution
    [min (f t, g t, inf_{0 <= s <= t} f s + g (t - s))] — coincides
    with {!Minplus.conv} on concave operands and with
    {!Minplus.conv_with_rate} when one operand is a rate line through
    the origin.  Eventually-affine operands delegate to
    {!Minplus.conv} (bit-identical, shape rules and all); periodic
    operands use the windowed UPP decomposition (transient/periodic
    sub-convolutions, {!Par.map}-parallel). *)

val conv_with_rate : rate:float -> t -> t
(** Reich's equation against a constant-rate server; the periodic path
    is [conv] with the rate line. @raise Invalid_argument on
    [rate <= 0]. *)

val deconv : t -> t -> t
(** Min-plus deconvolution [sup_{u >= 0} f (t + u) - g u].
    @raise Invalid_argument when infinite ([rate f > rate g]). *)

val compact :
  dir:[ `Up | `Down ] -> eps:float -> max_segs:int -> t -> t
(** {!Pwl.compact} on the eventually-affine case; the identity on
    genuinely periodic curves (their periodic part is already minimal
    and compacting it would break the law it repeats under). *)

(** {1 Identity} *)

val compare : t -> t -> int
(** Total order on (law parameters, base content) bit patterns;
    mirrors {!Pwl.compare} — consistent with {!hash}, independent of
    intern uids. *)

val hash : t -> int
(** Content hash over the base's content hash and the law parameters. *)


let hdev ~alpha ~beta =
  let open Float_ops in
  if Pwl.final_slope beta <~ Pwl.final_slope alpha then infinity
  else
    let beta_inv = Pwl.pseudo_inverse beta in
    let departure = Pwl.compose ~outer:beta_inv ~inner:alpha in
    let identity = Pwl.affine ~y0:0. ~slope:1. in
    Float_ops.positive_part (Pwl.sup_diff departure identity)

let vdev ~alpha ~beta = Float_ops.positive_part (Pwl.sup_diff alpha beta)

let vdev_per_flow ~alpha_i ~agg ~beta =
  let open Float_ops in
  if Pwl.final_slope beta <~ Pwl.final_slope agg then infinity
  else
    (* Naive split: the flow's backlog is bounded by what it can emit
       during one aggregate delay bound, and by the whole queue. *)
    let naive =
      let d = hdev ~alpha:agg ~beta in
      if is_finite d then Float.min (Pwl.eval alpha_i d) (vdev ~alpha:agg ~beta)
      else infinity
    in
    if not (is_finite naive) then infinity
    else if Pwl.final_slope agg <= 0. then naive
    else
      (* Refinement: at busy-period age tau the data of flow i still
         queued entered within the last [gap tau] time units, where
         [gap tau = tau - sup { u : agg u <= beta tau }] (FIFO: older
         flow-i data left with the older aggregate prefix).  Both
         bounds hold at the same tau, so
         [B_i = sup_tau min (alpha_i (gap tau)) (agg tau - beta tau)]. *)
      let served = Pwl.compose ~outer:(Pwl.pseudo_inverse agg) ~inner:beta in
      let gap = Pwl.nonneg (Pwl.sub (Pwl.affine ~y0:0. ~slope:1.) served) in
      (* [alpha_i . gap] is piecewise affine but [gap] is not monotone,
         so [Pwl.compose] does not apply: rebuild it by sampling at its
         true kinks — the kinks of [gap] plus the preimages under [gap]
         of the kinks of [alpha_i], solved per segment. *)
      let preimages =
        let kinks = Pwl.breakpoints alpha_i in
        let segs = Array.of_list (Pwl.segments gap) in
        let acc = ref [] in
        Array.iteri
          (fun i (x, y, s) ->
            let hi =
              if i + 1 < Array.length segs then
                let x', _, _ = segs.(i + 1) in
                x'
              else infinity
            in
            if not (eq_exact s 0.) then
              List.iter
                (fun b ->
                  let tau = x +. ((b -. y) /. s) in
                  if is_finite tau && tau >= x && tau <= hi then
                    acc := tau :: !acc)
                kinks)
          segs;
        !acc
      in
      let candidates = (0. :: Pwl.breakpoints gap) @ preimages in
      let h1 =
        Pwl.of_sampler ~candidates
          ~eval:(fun tau -> Pwl.eval alpha_i (Pwl.eval gap tau))
          ()
      in
      let m = Pwl.min_pw h1 (Pwl.sub agg beta) in
      Float.min naive (positive_part (Pwl.sup_diff m Pwl.zero))

let delay_fifo_aggregate ~agg ~rate =
  if rate <= 0. then invalid_arg "Deviation.delay_fifo_aggregate: rate <= 0";
  if not (Minplus.stable ~agg ~rate) then infinity
  else
    let service = Pwl.affine ~y0:0. ~slope:rate in
    Float_ops.positive_part (Pwl.sup_diff agg service) /. rate

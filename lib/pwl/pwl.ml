
type seg = { x : float; y : float; slope : float }

type t = { segs : seg array; uid : int; hash : int }
(* Values are hash-consed: [make] interns the normalized segment array,
   so two structurally (bit-)identical curves constructed anywhere in
   the process are one physical value.  [uid] is unique per interned
   value and never reused, which makes it a sound O(1) cache key
   ([Minplus], the incremental engine): uid equality implies physical
   equality implies mathematical equality.  [hash] is the content hash,
   precomputed once. *)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let check_finite v name =
  if not (Float.is_finite v) then
    invalid_arg (Printf.sprintf "Pwl.make: non-finite %s" name)

(* Merge adjacent collinear segments; assumes x strictly increasing.
   The slope test is ABSOLUTE: a tolerance relative to the slope
   magnitude would let near-vertical segments merge while their
   extrapolated values drift arbitrarily over the merged span. *)
let normalize segs =
  let open Float_ops in
  let join acc seg =
    match acc with
    | prev :: rest ->
        let dx = seg.x -. prev.x in
        let continuous = seg.y =~ prev.y +. (prev.slope *. dx) in
        if continuous && Float.abs (seg.slope -. prev.slope) <= 1e-9 then
          prev :: rest
        else seg :: acc
    | [] -> [ seg ]
  in
  Array.of_list (List.rev (List.fold_left join [] segs))

(* Every pwl value goes through [make], so a counter here measures the
   total construction volume of an analysis and the breakpoint
   distribution measures how large intermediate functions get
   ([pwl.breakpoints]'s max is the peak complexity).  Recording is
   branch-guarded by Obs: disabled runs pay one load and branch.

   [pwl.segments.total] (cumulative segments constructed — the
   segments-processed denominator of the curve-backend A/B bench) and
   [pwl.segments.max] (largest single curve ever built) make
   horizon-dependent representation blowup directly visible in
   [netcalc profile] and bench [--obs]: under the pwl backend the peak
   grows with the unrolled horizon, under the upp backend it stays at
   the transient-plus-period structure size. *)
let c_make = Metrics.counter "pwl.make.calls"
let d_breakpoints = Metrics.dist "pwl.breakpoints"
let c_segs_total = Metrics.counter "pwl.segments.total"
let p_segs_max = Metrics.peak "pwl.segments.max"

(* ------------------------------------------------------------------ *)
(* Intern (hash-consing) table                                         *)
(* ------------------------------------------------------------------ *)

(* Content identity is decided on the float bit patterns, so [0.] and
   [-0.] (and any two NaN payloads) stay distinct and returning an
   interned value is byte-for-byte indistinguishable from building a
   fresh one.  The table is bounded like the [Minplus] cache: past the
   cap it is reset wholesale, after which structurally equal curves get
   fresh uids — downstream uid-keyed caches then miss and recompute the
   same values, so correctness never depends on the cap.  One lock
   guards lookup+insert: netcalc.par worker domains construct curves
   concurrently. *)

let seg_equal_bits a b =
  Int64.bits_of_float a.x = Int64.bits_of_float b.x
  && Int64.bits_of_float a.y = Int64.bits_of_float b.y
  && Int64.bits_of_float a.slope = Int64.bits_of_float b.slope

let segs_equal_bits a b =
  Array.length a = Array.length b
  &&
  let rec go i = i < 0 || (seg_equal_bits a.(i) b.(i) && go (i - 1)) in
  go (Array.length a - 1)

let hash_segs segs =
  let h = ref 0x9e3779b9 in
  let mix_float v = h := (!h * 31) + Int64.to_int (Int64.bits_of_float v) in
  Array.iter
    (fun s ->
      mix_float s.x;
      mix_float s.y;
      mix_float s.slope)
    segs;
  !h land max_int

let intern_lock = Obs_sync.create ()
let intern_cap = 16384
let intern_on =
  ref true
[@@lint.waive
    "cache-key: toggles interning only; interned and fresh curves are \
     content-equal, so cached results are unchanged"]
let intern_tbl : (int, t list) Hashtbl.t = Hashtbl.create 1024
let intern_count =
  ref 0
[@@lint.waive
    "cache-key: intern-table occupancy counter; interning is \
     content-transparent"]
let next_uid =
  ref 0
[@@lint.waive
    "cache-key: uid allocation counter; uids name values, they never \
     influence computed curve content"]

(* Hit/miss counters are recorded unconditionally, mirroring the
   [Minplus] cache counters: [intern_stats] must be accurate even when
   profiling is enabled only for the final report. *)
let c_intern_hit = Metrics.counter "pwl.intern.hits"
let c_intern_miss = Metrics.counter "pwl.intern.misses"
let d_intern_size = Metrics.dist "pwl.intern.size"

type intern_stats = { hits : int; misses : int; entries : int }

let intern_stats () =
  { hits = Metrics.value c_intern_hit;
    misses = Metrics.value c_intern_miss;
    entries = Obs_sync.with_lock intern_lock (fun () -> !intern_count) }

let intern_clear () =
  Obs_sync.with_lock intern_lock (fun () ->
      Hashtbl.reset intern_tbl;
      intern_count := 0)

let intern_enabled () = Obs_sync.with_lock intern_lock (fun () -> !intern_on)

let set_intern_enabled b =
  Obs_sync.with_lock intern_lock (fun () ->
      if !intern_on <> b then begin
        intern_on := b;
        Hashtbl.reset intern_tbl;
        intern_count := 0
      end)

let intern segs =
  let h = hash_segs segs in
  Obs_sync.with_lock intern_lock (fun () ->
      let fresh () =
        let uid = !next_uid in
        Stdlib.incr next_uid;
        { segs; uid; hash = h }
      in
      if not !intern_on then fresh ()
      else begin
        let bucket = Option.value ~default:[] (Hashtbl.find_opt intern_tbl h) in
        match List.find_opt (fun v -> segs_equal_bits v.segs segs) bucket with
        | Some v ->
            Metrics.incr c_intern_hit;
            v
        | None ->
            Metrics.incr c_intern_miss;
            if !intern_count >= intern_cap then begin
              Hashtbl.reset intern_tbl;
              intern_count := 0
            end;
            let v = fresh () in
            Hashtbl.replace intern_tbl h
              (v :: Option.value ~default:[] (Hashtbl.find_opt intern_tbl h));
            Stdlib.incr intern_count;
            if Prof.enabled () then
              Metrics.observe d_intern_size (float_of_int !intern_count);
            v
      end)

let uid f = f.uid
let content_hash f = f.hash

(* Blessed comparison API (the lint rule pwl-poly-eq points here).
   Polymorphic compare/hash on [t] would traverse the segment arrays
   and, worse, hash the [uid] field — two structurally equal curves
   built across an intern reset would then compare unequal or hash
   apart.  [hash] is the precomputed segment-content hash; [compare]
   is a total order on the normalized segment bit patterns: arbitrary
   but fixed, consistent with [hash], and independent of uids, so it
   also works with interning disabled.  Note the asymmetry with
   {!equal}, which is tolerant and pointwise: [compare f g = 0] is
   bit-exact structural identity, strictly finer than [equal]. *)
let hash = content_hash

let compare f g =
  if f == g then 0
  else
    let bits = Int64.bits_of_float in
    let cmp_seg a b =
      match Int64.compare (bits a.x) (bits b.x) with
      | 0 -> (
          match Int64.compare (bits a.y) (bits b.y) with
          | 0 -> Int64.compare (bits a.slope) (bits b.slope)
          | c -> c)
      | c -> c
    in
    let na = Array.length f.segs and nb = Array.length g.segs in
    let rec go i =
      if i >= na then if i >= nb then 0 else -1
      else if i >= nb then 1
      else match cmp_seg f.segs.(i) g.segs.(i) with 0 -> go (i + 1) | c -> c
    in
    go 0

let make triples =
  if triples = [] then invalid_arg "Pwl.make: empty segment list";
  Prof.count c_make;
  let segs = List.map (fun (x, y, slope) -> { x; y; slope }) triples in
  List.iter
    (fun s ->
      check_finite s.x "x";
      check_finite s.y "y";
      check_finite s.slope "slope")
    segs;
  (match segs with
  | first :: _ when not (Float_ops.eq_exact first.x 0.) ->
      invalid_arg "Pwl.make: first x must be 0."
  | _ -> ());
  let rec check_increasing = function
    | a :: (b :: _ as rest) ->
        if b.x <= a.x then invalid_arg "Pwl.make: x not strictly increasing";
        check_increasing rest
    | _ -> ()
  in
  check_increasing segs;
  let segs = normalize segs in
  if Prof.enabled () then begin
    Metrics.observe d_breakpoints (float_of_int (Array.length segs));
    Metrics.add c_segs_total (Array.length segs);
    Metrics.observe_peak p_segs_max (Array.length segs)
  end;
  intern segs

let zero = make [ (0., 0., 0.) ]
let constant c = make [ (0., c, 0.) ]
let affine ~y0 ~slope = make [ (0., y0, slope) ]

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)
(* ------------------------------------------------------------------ *)

(* Index of the segment containing t (last i with segs.(i).x <= t). *)
let seg_index f t =
  let n = Array.length f.segs in
  let rec search lo hi =
    (* invariant: segs.(lo).x <= t and (hi = n or segs.(hi).x > t) *)
    if hi - lo <= 1 then lo
    else
      let mid = (lo + hi) / 2 in
      if f.segs.(mid).x <= t then search mid hi else search lo mid
  in
  if t <= 0. then 0 else search 0 n

let eval f t =
  let t = Float.max t 0. in
  let s = f.segs.(seg_index f t) in
  s.y +. (s.slope *. (t -. s.x))

let eval_left f t =
  if t <= 0. then eval f 0.
  else
    let i = seg_index f t in
    let s = f.segs.(i) in
    if s.x = t && i > 0 then
      let p = f.segs.(i - 1) in
      p.y +. (p.slope *. (t -. p.x))
    else s.y +. (s.slope *. (t -. s.x))

(* Batch evaluation over sorted abscissae with a monotone segment
   cursor: one pass over the points and one over the segments, instead
   of a binary search (and its per-call float boxing) per point.  The
   deconvolution inner loop and conv_with_rate evaluate thousands of
   sorted points per call, which is where this matters. *)

let check_sorted_step name prev t =
  if t < prev then
    invalid_arg (name ^ ": abscissae must be sorted nondecreasing")

let eval_seq f ts =
  let n = Array.length ts in
  let out = Array.make n 0. in
  let segs = f.segs in
  let nsegs = Array.length segs in
  let j = ref 0 in
  let prev = ref neg_infinity in
  for i = 0 to n - 1 do
    let t = Float.max ts.(i) 0. in
    check_sorted_step "Pwl.eval_seq" !prev t;
    prev := t;
    while !j + 1 < nsegs && segs.(!j + 1).x <= t do
      incr j
    done;
    let s = segs.(!j) in
    out.(i) <- s.y +. (s.slope *. (t -. s.x))
  done;
  out

let eval_left_seq f ts =
  let n = Array.length ts in
  let out = Array.make n 0. in
  let segs = f.segs in
  let nsegs = Array.length segs in
  let j = ref 0 in
  let prev = ref neg_infinity in
  for i = 0 to n - 1 do
    let t = Float.max ts.(i) 0. in
    check_sorted_step "Pwl.eval_left_seq" !prev t;
    prev := t;
    while !j + 1 < nsegs && segs.(!j + 1).x <= t do
      incr j
    done;
    let s = segs.(!j) in
    out.(i) <-
      (if s.x = t && !j > 0 then
         let p = segs.(!j - 1) in
         p.y +. (p.slope *. (t -. p.x))
       else s.y +. (s.slope *. (t -. s.x)))
  done;
  out

let segments f = Array.to_list (Array.map (fun s -> (s.x, s.y, s.slope)) f.segs)
let breakpoints f = Array.to_list (Array.map (fun s -> s.x) f.segs)
let final_slope f = f.segs.(Array.length f.segs - 1).slope
let value_at_zero f = f.segs.(0).y

let last_breakpoint f = f.segs.(Array.length f.segs - 1).x

let is_nondecreasing f =
  let open Float_ops in
  (* Judged on value decreases, not raw slopes: a reconstruction-noise
     slope of -1e-8 across a near-degenerate segment drops the value by
     an amount far below tolerance and must not count. *)
  let ok = ref true in
  let n = Array.length f.segs in
  for i = 0 to n - 1 do
    let s = f.segs.(i) in
    if i + 1 < n then begin
      let next = f.segs.(i + 1) in
      let v_end = s.y +. (s.slope *. (next.x -. s.x)) in
      if v_end <~ s.y then ok := false;
      (* downward jump at the next breakpoint *)
      if next.y <~ v_end then ok := false
    end
    else if s.slope <~ 0. then (* unbounded eventual decrease *)
      ok := false
  done;
  !ok

let has_interior_jump f =
  let open Float_ops in
  let n = Array.length f.segs in
  let jump = ref false in
  for i = 1 to n - 1 do
    let s = f.segs.(i) and p = f.segs.(i - 1) in
    let left = p.y +. (p.slope *. (s.x -. p.x)) in
    if not (s.y =~ left) then jump := true
  done;
  !jump

let shape f =
  let open Float_ops in
  let n = Array.length f.segs in
  if n = 1 then `Affine
  else if has_interior_jump f then `General
  else begin
    let nonincreasing = ref true and nondecreasing = ref true in
    for i = 1 to n - 1 do
      let s = f.segs.(i).slope and p = f.segs.(i - 1).slope in
      if s <~ p then nondecreasing := false;
      if p <~ s then nonincreasing := false
    done;
    match (!nonincreasing, !nondecreasing) with
    | true, true -> `Affine
    | true, false -> `Concave
    | false, true -> if value_at_zero f =~ 0. || value_at_zero f > 0. then `Convex else `General
    | false, false -> `General
  end

let pp ppf f =
  let pp_seg ppf s = Format.fprintf ppf "(%g, %g, %g)" s.x s.y s.slope in
  Format.fprintf ppf "@[<hov 2>[%a]@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_seg)
    (Array.to_list f.segs)

let to_string f = Format.asprintf "%a" pp f

(* ------------------------------------------------------------------ *)
(* Exact reconstruction from a sampler                                 *)
(* ------------------------------------------------------------------ *)

(* Drop candidates closer than ~1e-9 (relative): the midpoint probes of
   [of_sampler] divide by the interval width, so near-coincident
   candidates (typically two float routes to the same geometric
   crossing) would amplify evaluation noise into garbage slopes.
   Merging them instead loses at most slope * 1e-9 of accuracy.
   In place on a sorted array; returns the deduped length. *)
let dedup_sorted_into arr =
  let near a b = b -. a < 1e-9 *. Float.max 1. (Float.abs a) in
  let n = Array.length arr in
  if n = 0 then 0
  else begin
    let w = ref 0 in
    for i = 1 to n - 1 do
      if not (near arr.(!w) arr.(i)) then begin
        Stdlib.incr w;
        arr.(!w) <- arr.(i)
      end
    done;
    !w + 1
  end

let of_sampler ?eval_seq:batch ~candidates ~eval:sample () =
  (* Sanitize into a sorted deduped array.  Array.sort with
     Float.compare beats the former List.sort_uniq with polymorphic
     compare by a wide margin on the O(|f|*|g|) candidate sets the
     deconvolution feeds through here. *)
  let keep x = Float.is_finite x (* drops nan and both infinities *) in
  let raw = List.filter keep candidates in
  let arr = Array.make (1 + List.length raw) 0. in
  List.iteri (fun i x -> arr.(i + 1) <- Float.max 0. x) raw;
  Array.sort Float.compare arr;
  let n = dedup_sorted_into arr in
  (* Probe points x_i < m1_i < m2_i < x_{i+1}, interleaved — globally
     sorted, so a batch evaluator can run them in one monotone pass. *)
  let probes = Array.make (3 * n) 0. in
  for i = 0 to n - 1 do
    let x = arr.(i) in
    let m1, m2 =
      if i + 1 < n then
        let w = arr.(i + 1) -. x in
        (x +. (w /. 3.), x +. (2. *. w /. 3.))
      else (x +. 1., x +. 2.)
    in
    probes.(3 * i) <- x;
    probes.((3 * i) + 1) <- m1;
    probes.((3 * i) + 2) <- m2
  done;
  let values =
    match batch with
    | Some eval_seq -> eval_seq probes
    | None -> Array.map sample probes
  in
  if Array.length values <> 3 * n then
    invalid_arg "Pwl.of_sampler: eval_seq returned a wrong-sized array";
  make
    (List.init n (fun i ->
         let x = probes.(3 * i) and y = values.(3 * i) in
         let m1 = probes.((3 * i) + 1) and m2 = probes.((3 * i) + 2) in
         let slope = (values.((3 * i) + 2) -. values.((3 * i) + 1)) /. (m2 -. m1) in
         (x, y, slope)))

(* ------------------------------------------------------------------ *)
(* Pointwise algebra                                                   *)
(* ------------------------------------------------------------------ *)

let merged_breakpoints f g =
  List.sort_uniq Float.compare (breakpoints f @ breakpoints g)

(* Right slope at t: the slope of the segment containing t. *)
let slope_at f t = f.segs.(seg_index f t).slope

(* Exact pointwise combination on the merged breakpoints: values and
   slopes are read off the operands directly, never probed. *)
let pointwise_exact op_val op_slope f g =
  make
    (List.map
       (fun x -> (x, op_val (eval f x) (eval g x), op_slope (slope_at f x) (slope_at g x)))
       (merged_breakpoints f g))

(* Physical-equality fast paths: interning makes identity checks
   meaningful (equal content constructed anywhere is one value), so the
   neutral-element and idempotent cases skip the merged-breakpoint
   rebuild entirely.  [f + zero] rebuilt pointwise yields the same
   floats as [f] ([y +. 0. = y] for the finite values stored here), so
   the fast path is indistinguishable from the slow one. *)
let add f g =
  if f == zero then g
  else if g == zero then f
  else pointwise_exact ( +. ) ( +. ) f g

let sum = function [] -> zero | f :: rest -> List.fold_left add f rest

let sub f g = if g == zero then f else pointwise_exact ( -. ) ( -. ) f g

let scale k f =
  make (List.map (fun (x, y, s) -> (x, k *. y, k *. s)) (segments f))

(* Crossing points of f - g strictly inside each candidate interval,
   computed from exact right values and slopes. *)
let crossings f g candidates =
  let cross a b =
    let h = eval f a -. eval g a in
    let sh = slope_at f a -. slope_at g a in
    if Float_ops.eq_exact sh 0. then None
    else
      let t = a -. (h /. sh) in
      if t > a +. (1e-12 *. Float.max 1. (Float.abs a)) && t < b then Some t
      else None
  in
  let rec walk acc = function
    | a :: (b :: _ as rest) ->
        let acc = match cross a b with Some t -> t :: acc | None -> acc in
        walk acc rest
    | [ a ] -> ( match cross a infinity with Some t -> t :: acc | None -> acc)
    | [] -> acc
  in
  walk [] candidates

let combine_extrema pick pick_slope f g =
  let open Float_ops in
  let base = merged_breakpoints f g in
  let candidates = List.sort_uniq Float.compare (base @ crossings f g base) in
  make
    (List.map
       (fun x ->
         let yf = eval f x and yg = eval g x in
         let slope =
           if yf <~ yg then (if pick yf yg = yf then slope_at f x else slope_at g x)
           else if yg <~ yf then (if pick yf yg = yg then slope_at g x else slope_at f x)
           else pick_slope (slope_at f x) (slope_at g x)
         in
         (x, pick yf yg, slope))
       candidates)

let min_pw f g = if f == g then f else combine_extrema Float.min Float.min f g
let max_pw f g = if f == g then f else combine_extrema Float.max Float.max f g
let nonneg f = max_pw f zero

let min_list = function
  | [] -> invalid_arg "Pwl.min_list: empty list"
  | f :: rest -> List.fold_left min_pw f rest

(* ------------------------------------------------------------------ *)
(* Transformations                                                     *)
(* ------------------------------------------------------------------ *)

let shift_left f d =
  if d < 0. then invalid_arg "Pwl.shift_left: negative shift";
  if Float_ops.eq_exact d 0. then f
  else
    (* Exact: drop the segments entirely left of d, split the one
       containing d, translate the rest. *)
    let rec build = function
      | (_, _, _) :: ((nx, _, _) :: _ as rest) when nx <= d -> build rest
      | (x, y, s) :: rest ->
          (0., y +. (s *. (d -. x)), s)
          :: List.map (fun (x, y, s) -> (x -. d, y, s)) rest
      | [] -> assert false
    in
    make (build (segments f))

let shift_right f d =
  if d < 0. then invalid_arg "Pwl.shift_right: negative shift";
  if Float_ops.eq_exact d 0. then f
  else
    let shifted = List.map (fun (x, y, s) -> (x +. d, y, s)) (segments f) in
    make ((0., 0., 0.) :: shifted)

let compose ~outer ~inner =
  if not (is_nondecreasing inner) then
    invalid_arg "Pwl.compose: inner must be nondecreasing";
  (* Exact segmentwise composition: every inner segment is mapped
     through outer, cutting at the outer breakpoints its value range
     crosses.  No sampling, so errors do not accumulate through
     chained compositions. *)
  let outer_levels = breakpoints outer in
  let slope_at v = outer.segs.(seg_index outer v).slope in
  let pieces =
    List.concat_map
      (fun ((x, y, s), next_x) ->
        if s <= 0. then [ (x, eval outer y, 0.) ]
        else begin
          let v_end =
            if Float.is_finite next_x then y +. (s *. (next_x -. x))
            else infinity
          in
          let cuts =
            List.filter (fun level -> level > y && level < v_end) outer_levels
          in
          (x, eval outer y, s *. slope_at y)
          :: List.map
               (fun level ->
                 (x +. ((level -. y) /. s), eval outer level, s *. slope_at level))
               cuts
        end)
      (let rec with_next = function
         | seg :: ((nx, _, _) :: _ as rest) -> (seg, nx) :: with_next rest
         | [ seg ] -> [ (seg, infinity) ]
         | [] -> []
       in
       with_next (segments inner))
  in
  (* Cut abscissae are strictly increasing by construction, but float
     rounding can land a cut on a segment boundary; merge such
     degenerates, keeping the later piece (right-continuity). *)
  let rec merge_close = function
    | (x1, _, _) :: ((x2, y2, s2) :: rest)
      when x2 <= x1 +. (1e-12 *. Float.max 1. (Float.abs x1)) ->
        merge_close ((x1, y2, s2) :: rest)
    | p :: rest -> p :: merge_close rest
    | [] -> []
  in
  make (merge_close pieces)

let pseudo_inverse f =
  if not (is_nondecreasing f) then
    invalid_arg "Pwl.pseudo_inverse: function must be nondecreasing";
  if final_slope f <= 0. then
    invalid_arg "Pwl.pseudo_inverse: function must be eventually increasing";
  (* Exact construction: rising segments of f become 1/s segments of
     the inverse, upward jumps of f become flats, flats of f become
     the (right-continuous) upward jumps of the upper pseudo-inverse
     implicitly — the next rising piece starts at the same ordinate
     with a larger abscissa, and the later piece wins below. *)
  let buf = ref [] in
  let push y x s = buf := (y, x, s) :: !buf in
  let y0 = value_at_zero f in
  if y0 > 0. then push 0. 0. 0.;
  let rec walk = function
    | (x, y, s) :: rest ->
        (match rest with
        | (nx, ny, _) :: _ ->
            let y_end = y +. (s *. (nx -. x)) in
            if s > 0. then push y x (1. /. s);
            if ny > y_end then push y_end nx 0.
        | [] -> push y x (1. /. s));
        walk rest
    | [] -> ()
  in
  walk (segments f);
  (* Clamp ordinates (arithmetic noise can push the first one a few
     ulps below zero), then merge exact/near ties keeping the later
     (larger-abscissa) piece: the upper pseudo-inverse is
     right-continuous and takes the supremum. *)
  let pieces = List.rev_map (fun (y, x, s) -> (Float.max 0. y, x, s)) !buf in
  (* Merge tied ordinates keeping the later (larger-abscissa) piece:
     the right-continuous representation takes the supremum there.
     (A right-continuous "lower" pseudo-inverse would be the same
     function — the lower/upper distinction lives entirely in the left
     limits, which sup_diff and eval_left already expose.) *)
  let rec merge_close = function
    | (y1, _, _) :: ((y2, x2, s2) :: rest)
      when y2 <= y1 +. (1e-12 *. Float.max 1. (Float.abs y1)) ->
        merge_close ((y1, x2, s2) :: rest)
    | p :: rest -> p :: merge_close rest
    | [] -> []
  in
  make (merge_close pieces)

let rec running_max_depth depth f =
  if is_nondecreasing f then f
  else begin
    (* Exact segmentwise construction (no sampling): walk the segments
       carrying the maximum seen so far; a segment below it becomes a
       flat at that level, a segment crossing it from below is split at
       the crossing.  The result is nondecreasing by construction. *)
    let buf = ref [] in
    let push x y s = buf := (x, y, s) :: !buf in
    let rec walk m = function
      | (x, y, s) :: rest ->
          let next_x =
            match rest with (nx, _, _) :: _ -> nx | [] -> infinity
          in
          let y_end =
            if Float.is_finite next_x then y +. (s *. (next_x -. x))
            else if s > 0. then infinity
            else y
          in
          let m' =
            if y >= m then begin
              (* starts at or above the running max *)
              push x y (Float.max s 0.);
              if s >= 0. then Float.max m y_end else Float.max m y
            end
            else if s > 0. && y_end > m then begin
              (* crosses the running max inside the segment; if the
                 crossing rounds onto the segment start, rise from [m]
                 right away — silently dropping the rising piece would
                 freeze the curve at [m] for the whole segment *)
              let t = x +. ((m -. y) /. s) in
              if t > x && t < next_x then begin
                push x m 0.;
                push t m s
              end
              else push x m s;
              y_end
            end
            else begin
              (* entirely below: flat at the running max *)
              push x m 0.;
              m
            end
          in
          walk m' rest
      | [] -> ()
    in
    walk neg_infinity (segments f);
    (* merge pieces landing on (near-)identical abscissae *)
    let rec merge_close = function
      | (x1, y1, _) :: ((x2, y2, s2) :: rest)
        when x2 <= x1 +. (1e-12 *. Float.max 1. (Float.abs x1)) ->
          merge_close ((x1, Float.max y1 y2, s2) :: rest)
      | p :: rest -> p :: merge_close rest
      | [] -> []
    in
    let rebuilt = make (merge_close (List.rev !buf)) in
    (* A sub-ulp join produced by [make]'s normalization can survive a
       single pass; iterating reaches a fixed point in one or two more
       (each pass strictly lifts any remaining dip onto its running
       maximum). *)
    if is_nondecreasing rebuilt || depth >= 4 then rebuilt
    else running_max_depth (depth + 1) rebuilt
  end

let running_max f = running_max_depth 0 f

let lower_convex_hull f =
  (* Lower hull of the breakpoint cloud (taking left limits into account
     at jumps), closed with the final slope as a direction at infinity. *)
  let points =
    List.concat_map
      (fun x -> [ (x, Float.min (eval f x) (eval_left f x)) ])
      (breakpoints f)
  in
  let slope (x1, y1) (x2, y2) = (y2 -. y1) /. (x2 -. x1) in
  let rec push hull p =
    match hull with
    | b :: a :: rest when slope a b >= slope a p -> push (a :: rest) p
    | _ -> p :: hull
  in
  let hull = List.rev (List.fold_left push [] points) in
  let s_inf = final_slope f in
  (* Drop trailing hull points whose incoming slope already exceeds the
     final slope: the infinite ray of slope [s_inf] attaches at the last
     point below it (convexity requires nondecreasing slopes). *)
  let rec trim = function
    | last :: prev :: rest when slope prev last >= s_inf ->
        trim (prev :: rest)
    | pts -> pts
  in
  let hull = List.rev (trim (List.rev hull)) in
  let rec to_segs = function
    | (x, y) :: ((x2, y2) :: _ as rest) ->
        (x, y, slope (x, y) (x2, y2)) :: to_segs rest
    | [ (x, y) ] -> [ (x, y, s_inf) ]
    | [] -> assert false
  in
  make (to_segs hull)

(* ------------------------------------------------------------------ *)
(* Suprema and crossings                                               *)
(* ------------------------------------------------------------------ *)

let sup_diff f g =
  let open Float_ops in
  if final_slope g <~ final_slope f then infinity
  else
    let candidates = merged_breakpoints f g in
    let at t =
      Float.max (eval f t -. eval g t) (eval_left f t -. eval_left g t)
    in
    Float_ops.max_list (List.map at candidates)

let sup_on f ~lo ~hi =
  if hi < lo then invalid_arg "Pwl.sup_on: hi < lo";
  if hi = infinity then
    if final_slope f > 0. then infinity
    else
      let candidates = lo :: List.filter (fun x -> x >= lo) (breakpoints f) in
      Float_ops.max_list
        (List.concat_map (fun t -> [ eval f t; eval_left f t ]) candidates)
  else
    let inside = List.filter (fun x -> x > lo && x < hi) (breakpoints f) in
    let candidates = lo :: hi :: inside in
    Float_ops.max_list
      (List.concat_map (fun t -> [ eval f t; eval_left f t ]) candidates)

let first_crossing_below f ~rate =
  let open Float_ops in
  let h t = eval f t -. (rate *. t) in
  let segs = segments f in
  let rec walk = function
    | (x, _, s) :: rest ->
        let next_x = match rest with (nx, _, _) :: _ -> nx | [] -> infinity in
        let hx = h x in
        if hx <~ 0. then x
        else if hx =~ 0. then
          (* touching the line; below iff the segment does not escape up *)
          if s <=~ rate then x else walk rest
        else if s <~ rate then
          let t = x +. (hx /. (rate -. s)) in
          if t < next_x || not (Float.is_finite next_x) then t else walk rest
        else walk rest
    | [] -> infinity
  in
  walk segs

let first_crossing_under f ~below =
  let open Float_ops in
  (* Scan the merged breakpoints plus the crossings of f - below; the
     infimum of { t > 0 : f t <= below t } is one of those points (the
     difference is affine between consecutive candidates).  A mere
     touch point (difference 0 but escaping upward again) does not end
     a busy period, mirroring first_crossing_below: a candidate counts
     only if the difference stays <= 0 just after it, which we decide
     by probing the midpoint to the next candidate. *)
  let base = merged_breakpoints f below in
  let candidates =
    List.sort Float.compare (base @ crossings f below base)
    |> List.filter (fun t -> t >= 0.)
  in
  let h t = eval f t -. eval below t in
  let stays_below t next =
    let probe = match next with Some n -> (t +. n) /. 2. | None -> t +. 1. in
    h probe <=~ 0.
  in
  let rec scan = function
    | t :: rest ->
        let next = match rest with n :: _ -> Some n | [] -> None in
        if h t <~ 0. then t
        else if h t =~ 0. && stays_below t next then t
        else scan rest
    | [] ->
        (* after the last candidate the difference is affine *)
        if final_slope f <~ final_slope below then
          let t0 = Float_ops.max_list candidates in
          let slope = final_slope f -. final_slope below in
          t0 +. (h t0 /. -.slope)
        else infinity
  in
  scan candidates

let equal f g =
  if f == g then true
  else
  let open Float_ops in
  let candidates = merged_breakpoints f g in
  let mids =
    let rec between = function
      | a :: (b :: _ as rest) -> ((a +. b) /. 2.) :: between rest
      | [ a ] -> [ a +. 1.; a +. 2. ]
      | [] -> []
    in
    between candidates
  in
  List.for_all (fun t -> eval f t =~ eval g t) (candidates @ mids)

(* ------------------------------------------------------------------ *)
(* Conservative compaction                                             *)
(* ------------------------------------------------------------------ *)

(* [compact] prunes breakpoints while moving the curve in one safe
   direction only: [`Up] never decreases any value (valid for arrival
   envelopes — the bound can only loosen), [`Down] never increases any
   value (valid for service curves).  One step removes one interior
   segment [i] by extending its neighbours [p] and [q] to their
   crossing [xc]: on a (locally) concave stretch the curve is the min
   of its segment lines and dropping line [i] yields a pointwise-[>=]
   curve; on a convex stretch it is the max of its lines, dual.  A
   removal is admissible only when both neighbour lines dominate (are
   dominated by) segment [i] over its span and the crossing falls
   inside that span, so the result is exact outside the span and moves
   by at most the recorded error inside it.  Errors are always measured
   against the {e original} curve, so successive removals cannot
   silently compound past [eps].

   The first and last segments are never touched: the value at 0 and
   the final slope (stability, asymptotic rate) are preserved exactly.
   Segments are removed cheapest-first while the error stays within
   [eps]; when the curve still has more than [max_segs] segments,
   removal continues past [eps] (still direction-safe, never
   direction-violating) until the budget is met or no admissible
   removal remains. *)
let compact ~dir ~eps ~max_segs f =
  if Float.is_nan eps || eps < 0. then invalid_arg "Pwl.compact: eps < 0";
  if max_segs < 2 then invalid_arg "Pwl.compact: max_segs < 2";
  let n = Array.length f.segs in
  if n <= 2 then f
  else begin
    let sx = Array.map (fun s -> s.x) f.segs in
    let sy = Array.map (fun s -> s.y) f.segs in
    let ss = Array.map (fun s -> s.slope) f.segs in
    let prev = Array.init n (fun i -> i - 1) in
    let next = Array.init n (fun i -> if i = n - 1 then -1 else i + 1) in
    let alive = Array.make n true in
    let count = ref n in
    (* Line through segment j, evaluated at t. *)
    let line j t = sy.(j) +. (ss.(j) *. (t -. sx.(j))) in
    let orig_bps = breakpoints f in
    (* Signed gap in the safe direction: >= 0 when the candidate stays
       on the safe side of the original curve at t. *)
    let gap newv origv =
      match dir with `Up -> newv -. origv | `Down -> origv -. newv
    in
    (* Evaluate one candidate removal: segment [i] with alive
       neighbours [p] and [q].  Returns [Some (err, xc)] when
       admissible. *)
    let candidate i =
      let p = prev.(i) and q = next.(i) in
      if p < 0 || q < 0 then None
      else begin
        let ds = ss.(p) -. ss.(q) in
        let directed = match dir with `Up -> ds > 0. | `Down -> ds < 0. in
        if not directed then None
        else
          let xc =
            (sy.(q) -. (ss.(q) *. sx.(q)) -. sy.(p) +. (ss.(p) *. sx.(p))) /. ds
          in
          if not (Float.is_finite xc) || xc < sx.(i) || xc > sx.(q) then None
          else begin
            (* Both neighbour lines must stay on the safe side of
               segment [i] over its whole span (affine vs affine: the
               endpoints decide). *)
            let span_lo = sx.(i) and span_hi = sx.(q) in
            let tol = -1e-12 *. Float.max 1. (Float.abs sy.(i)) in
            let safe j =
              gap (line j span_lo) (line i span_lo) >= tol
              && gap (line j span_hi) (line i span_hi) >= tol
            in
            if not (safe p && safe q) then None
            else begin
              (* Error against the original curve over the changed
                 window [span_lo, span_hi): the new curve is line [p]
                 before [xc] and line [q] after. *)
              let newv t = if t < xc then line p t else line q t in
              let err = ref 0. in
              let consider t =
                if t >= span_lo && t <= span_hi then begin
                  err := Float.max !err (gap (newv t) (eval f t));
                  err := Float.max !err (gap (newv t) (eval_left f t))
                end
              in
              consider span_lo;
              consider xc;
              consider span_hi;
              List.iter consider orig_bps;
              (* A negative gap anywhere would mean the removal crosses
                 the original curve — inadmissible (can happen when the
                 window spans previously-merged material). *)
              let crosses =
                List.exists
                  (fun t ->
                    t >= span_lo && t <= span_hi
                    && gap (newv t) (eval f t) < tol)
                  (span_lo :: xc :: span_hi :: orig_bps)
              in
              if crosses then None else Some (!err, xc)
            end
          end
      end
    in
    let remove i xc =
      let q = next.(i) in
      sy.(q) <- line q xc;
      sx.(q) <- xc;
      alive.(i) <- false;
      next.(prev.(i)) <- q;
      prev.(q) <- prev.(i);
      Stdlib.decr count
    in
    let removed = ref false in
    let rec loop () =
      let best = ref None in
      for i = 1 to n - 2 do
        if alive.(i) then
          match candidate i with
          | Some (err, xc) -> (
              match !best with
              | Some (e, _, _) when e <= err -> ()
              | _ -> best := Some (err, i, xc))
          | None -> ()
      done;
      match !best with
      | Some (err, i, xc) when err <= eps || !count > max_segs ->
          remove i xc;
          removed := true;
          loop ()
      | _ -> ()
    in
    loop ();
    if not !removed then f
    else begin
      let out = ref [] in
      let rec walk i =
        if i >= 0 then begin
          out := (sx.(i), sy.(i), ss.(i)) :: !out;
          walk next.(i)
        end
      in
      walk 0;
      make (List.rev !out)
    end
  end

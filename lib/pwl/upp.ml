(* Ultimately pseudo-periodic (UPP) curves, after Nancy (Zippo & Stea,
   arXiv 2205.11449).  A curve is a finite {!Pwl.t} prefix — trusted on
   the window [0, rank + period) — plus a pseudo-periodic law: for every
   [t >= rank],

     f (t + period) = f t + increment.

   The representation size is therefore independent of the analysis
   horizon: a staircase evaluated at t = 10^6 costs the same handful of
   segments as at t = 10.  Eventually-affine curves (every token-bucket
   and rate-latency curve of the paper) are the degenerate case
   [affine_tail = true]: the base {!Pwl.t} is the whole function and the
   periodic law is the tautological one over its final slope.  All
   operations keep that case {e exact} by delegating to the finite
   [Pwl]/[Minplus] kernels on the very same hash-consed values, which is
   what makes the upp backend bit-identical to the pwl backend on the
   paper's grids (pinned by the cross-backend tests and the CI smoke
   job).

   Genuinely periodic curves go through windowed kernels instead: unroll
   both operands over a structure-sized window (transient + a couple of
   periods — never the analysis horizon), compute the exact finite
   operation there following the UPP decomposition into
   transient/periodic sub-convolutions ({!Par.map}-parallel), then
   recover the periodic law by verifying [w (t + d) = w t + c] over the
   last unrolled period and minimizing the result (rank reduction,
   period division, affine-tail collapse).  Verification is
   tolerance-based ({!Float_ops.( =~ )}): the periodic path trades bit
   exactness for horizon independence, which the dense-grid equivalence
   tests bound. *)

type t = {
  base : Pwl.t;  (* trusted on [0, rank + period); whole f when affine *)
  rank : float;  (* T >= 0: start of the pseudo-periodic law *)
  period : float;  (* d > 0 *)
  increment : float;  (* c: growth per period *)
  affine_tail : bool;  (* true: f = base everywhere (eventually affine) *)
}

let base f = f.base
let rank f = f.rank
let period f = f.period
let increment f = f.increment
let is_affine_tail f = f.affine_tail

(* Long-run growth rate — the quantity that decides which operand's
   periodic law survives a convolution. *)
let rate f =
  if f.affine_tail then Pwl.final_slope f.base else f.increment /. f.period

let segment_count f = List.length (Pwl.breakpoints f.base)

let of_pwl p =
  { base = p;
    rank = Pwl.last_breakpoint p;
    period = 1.;
    increment = Pwl.final_slope p;
    affine_tail = true }

let to_pwl f =
  if f.affine_tail then f.base
  else
    invalid_arg
      "Upp.to_pwl: curve is genuinely periodic (horizon-unbounded); use \
       unroll ~horizon"

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let eval f t =
  if f.affine_tail || t < f.rank +. f.period then Pwl.eval f.base t
  else begin
    (* Fold t into the trusted window by whole periods; the floor can
       land one period off at representation boundaries, so nudge. *)
    let k = Float.floor ((t -. f.rank) /. f.period) in
    let k, t' =
      let t' = t -. (k *. f.period) in
      if t' < f.rank then (k -. 1., t' +. f.period)
      else if t' >= f.rank +. f.period then (k +. 1., t' -. f.period)
      else (k, t')
    in
    Pwl.eval f.base t' +. (k *. f.increment)
  end

(* ------------------------------------------------------------------ *)
(* Windows and unrolling                                               *)
(* ------------------------------------------------------------------ *)

(* Segment triples describing [p] on [lo, hi): the first triple is cut
   to start exactly at [lo].  [lo >= 0] and [lo < hi] assumed. *)
let segs_window p ~lo ~hi =
  let rec go cur = function
    | ((x, _, _) as seg) :: rest when x <= lo -> go (Some seg) rest
    | rest ->
        let head =
          match cur with
          | Some (x, y, s) -> [ (lo, y +. (s *. (lo -. x)), s) ]
          | None -> []
        in
        let rec take acc = function
          | ((x, _, _) as seg) :: rest when x < hi -> take (seg :: acc) rest
          | _ -> List.rev acc
        in
        head @ take [] rest
  in
  go None (Pwl.segments p)

(* Value of a window (segment-triple list, sorted) at [x]; the last
   triple extends to the right.  Only used on x >= first triple's x. *)
let window_eval segs x =
  let rec go best = function
    | ((sx, _, _) as seg) :: rest when sx <= x -> go (Some seg) rest
    | _ -> best
  in
  match go None segs with
  | Some (sx, sy, ss) -> sy +. (ss *. (x -. sx))
  | None -> invalid_arg "Upp.window_eval: x before window"

(* Tolerant function equality of two windows over their merged
   breakpoints and interval midpoints (midpoints catch slope
   mismatches that agree at the ends).  The two windows nominally
   cover the same interval, but one usually arrives through
   [shift_triples], whose float addition can land its first breakpoint
   an ulp outside the other window — so probes are clamped to the
   intersection. *)
let windows_equal w1 w2 =
  let open Float_ops in
  match (w1, w2) with
  | [], [] -> true
  | [], _ | _, [] -> false
  | (x1, _, _) :: _, (x2, _, _) :: _ ->
      let lo = Float.max x1 x2 in
      let xs =
        List.map (fun (x, _, _) -> Float.max x lo) w1
        @ List.map (fun (x, _, _) -> Float.max x lo) w2
        |> List.sort_uniq Float.compare
      in
      let rec mids = function
        | a :: (b :: _ as rest) -> ((a +. b) /. 2.) :: mids rest
        | [ a ] -> [ a +. 0.5 ]
        | [] -> []
      in
      List.for_all
        (fun x -> window_eval w1 x =~ window_eval w2 x)
        (xs @ mids xs)

let shift_triples (dx, dy) segs =
  List.map (fun (x, y, s) -> (x +. dx, y +. dy, s)) segs

(* Does [p] satisfy p (t + period) = p t + increment on
   [rank, rank + period)?  (I.e., its segments on the following period
   are the shifted copy.) *)
let pattern_matches p ~rank ~period ~increment =
  let w1 = segs_window p ~lo:rank ~hi:(rank +. period) in
  let w2 = segs_window p ~lo:(rank +. period) ~hi:(rank +. (2. *. period)) in
  windows_equal (shift_triples (period, increment) w1) w2

(* Explicit finite prefix: exact on [0, horizon], continuing past it
   with the slope of the last unrolled pattern segment (callers never
   read past their horizon). *)
let unroll f ~horizon =
  if f.affine_tail then f.base
  else begin
    let head = if f.rank > 0. then segs_window f.base ~lo:0. ~hi:f.rank else [] in
    let pat = segs_window f.base ~lo:f.rank ~hi:(f.rank +. f.period) in
    let reps =
      2 + Stdlib.max 0 (int_of_float (Float.ceil ((horizon -. f.rank) /. f.period)))
    in
    let body =
      List.concat
        (List.init reps (fun k ->
             let k = float_of_int k in
             shift_triples (k *. f.period, k *. f.increment) pat))
    in
    Pwl.make (head @ body)
  end

(* ------------------------------------------------------------------ *)
(* Construction and minimization                                       *)
(* ------------------------------------------------------------------ *)

(* Largest number of whole sub-periods a period is tested against when
   minimizing, and the bound on the small-integer search for a common
   multiple of two periods.  Purely a cost cap: failing to minimize or
   to find a common multiple never makes a result wrong, only larger
   (or, for incommensurable periods, unsupported). *)
let max_period_factor = 64

(* Affine-tail collapse: when the pattern is a single affine piece
   whose increment equals slope * period, the periodic law says nothing
   the final segment doesn't. *)
let try_affine ~rank ~period ~increment base =
  let open Float_ops in
  match segs_window base ~lo:rank ~hi:(rank +. period) with
  | [ (_, _, s) ] when increment =~ s *. period ->
      (* Rebuild so the curve carries no segments beyond the pattern
         start (they would silently change the function: beyond the
         window the tail is the pattern's own slope). *)
      let head = if rank > 0. then segs_window base ~lo:0. ~hi:rank else [] in
      let at =
        match segs_window base ~lo:rank ~hi:(rank +. period) with
        | seg :: _ -> seg
        | [] -> assert false
      in
      Some (of_pwl (Pwl.make (head @ [ at ])))
  | _ -> None

let normalize f =
  if f.affine_tail then f
  else begin
    match try_affine ~rank:f.rank ~period:f.period ~increment:f.increment f.base
    with
    | Some g -> g
    | None ->
        (* Rank reduction in whole periods: pull the law left while the
           preceding window is the shifted pattern. *)
        let rank = ref f.rank in
        let continue_ = ref true in
        while !continue_ && !rank >= f.period do
          let prev = segs_window f.base ~lo:(!rank -. f.period) ~hi:!rank in
          let pat = segs_window f.base ~lo:!rank ~hi:(!rank +. f.period) in
          if windows_equal (shift_triples (f.period, f.increment) prev) pat
          then rank := !rank -. f.period
          else continue_ := false
        done;
        let rank = !rank in
        (* Period division: the smallest sub-period d/k whose k-fold
           repetition is the pattern. *)
        let divides k =
          let d' = f.period /. float_of_int k in
          let c' = f.increment /. float_of_int k in
          let w0 = segs_window f.base ~lo:rank ~hi:(rank +. d') in
          let rec all j =
            j >= k
            ||
            let lo = rank +. (float_of_int j *. d') in
            let wj = segs_window f.base ~lo ~hi:(lo +. d') in
            windows_equal
              (shift_triples (float_of_int j *. d', float_of_int j *. c') w0)
              wj
            && all (j + 1)
          in
          all 1
        in
        let rec find_k k = if k < 2 then 1 else if divides k then k else find_k (k - 1) in
        let k = find_k max_period_factor in
        let period = f.period /. float_of_int k in
        let increment = f.increment /. float_of_int k in
        (* Trim the base to the trusted window so segment_count reports
           the representation's real size. *)
        let head = if rank > 0. then segs_window f.base ~lo:0. ~hi:rank else [] in
        let pat = segs_window f.base ~lo:rank ~hi:(rank +. period) in
        let base = Pwl.make (head @ pat) in
        (match try_affine ~rank ~period ~increment base with
        | Some g -> g
        | None -> { base; rank; period; increment; affine_tail = false })
  end

let make ~rank ~period ~increment segs =
  if not (Float.is_finite rank) || rank < 0. then
    invalid_arg "Upp.make: rank must be finite and >= 0";
  if not (Float.is_finite period) || period <= 0. then
    invalid_arg "Upp.make: period must be finite and > 0";
  if not (Float.is_finite increment) then
    invalid_arg "Upp.make: increment must be finite";
  let base = Pwl.make segs in
  if Pwl.last_breakpoint base >= rank +. period then
    invalid_arg "Upp.make: segments extend beyond rank + period";
  normalize { base; rank; period; increment; affine_tail = false }

(* The canonical horizon-unbounded stress curve: a pure staircase that
   jumps by [step] at 0, [interval], [2 interval], ...  (An explicit
   Pwl of the same function needs one segment per step up to its
   horizon; this is one segment, ever.) *)
let staircase ~step ~interval =
  if not (Float.is_finite step) || step <= 0. then
    invalid_arg "Upp.staircase: step must be finite and > 0";
  if not (Float.is_finite interval) || interval <= 0. then
    invalid_arg "Upp.staircase: interval must be finite and > 0";
  make ~rank:0. ~period:interval ~increment:step [ (0., step, 0.) ]

(* ------------------------------------------------------------------ *)
(* Identity                                                            *)
(* ------------------------------------------------------------------ *)

(* Blessed comparison/hash, mirroring {!Pwl.compare}/{!Pwl.hash}: the
   parameter floats compare on bit patterns, the base on its content
   hash — never on uids, so identity survives intern resets. *)
let compare f g =
  if f == g then 0
  else
    let bits = Int64.bits_of_float in
    let c = Bool.compare f.affine_tail g.affine_tail in
    if c <> 0 then c
    else
      let c = Int64.compare (bits f.rank) (bits g.rank) in
      if c <> 0 then c
      else
        let c = Int64.compare (bits f.period) (bits g.period) in
        if c <> 0 then c
        else
          let c = Int64.compare (bits f.increment) (bits g.increment) in
          if c <> 0 then c else Pwl.compare f.base g.base

let hash f =
  let mix h v = (h * 31) + Int64.to_int (Int64.bits_of_float v) in
  let h = Pwl.hash f.base in
  let h = mix h f.rank in
  let h = mix h f.period in
  let h = mix h f.increment in
  ((h * 31) + Bool.to_int f.affine_tail) land max_int

(* ------------------------------------------------------------------ *)
(* Periodic-law algebra for binary operations                          *)
(* ------------------------------------------------------------------ *)

(* Smallest common multiple of the two periods found by small-integer
   search (k1 * df = k2 * dg, k1 <= max_period_factor); [None] when the
   periods are incommensurable within the cap.  Affine operands impose
   no constraint. *)
let common_period f g =
  if f.affine_tail then Some g.period
  else if g.affine_tail then Some f.period
  else begin
    let open Float_ops in
    let rec search k1 =
      if k1 > max_period_factor then None
      else
        let m = float_of_int k1 *. f.period in
        let k2 = Float.round (m /. g.period) in
        if k2 >= 1. && m =~ k2 *. g.period then Some m else search (k1 + 1)
    in
    search 1
  end

let incommensurable op =
  invalid_arg
    (Printf.sprintf
       "Upp.%s: operand periods are incommensurable (no common multiple \
        within factor %d)"
       op max_period_factor)

(* Periodic law of the result of an order-preserving binary operation:
   the operand with the strictly smaller long-run rate eventually
   dictates the tail; with equal rates the laws compose over a common
   multiple of the periods. *)
let result_law op f g =
  let open Float_ops in
  let rf = rate f and rg = rate g in
  if rf =~ rg then
    match common_period f g with
    | Some d -> (d, rf *. d)
    | None -> incommensurable op
  else
    let slow = if rf < rg then f else g in
    if slow.affine_tail then
      let other = if rf < rg then g else f in
      let d = if other.affine_tail then 1. else other.period in
      (d, rate slow *. d)
    else (slow.period, slow.increment)

(* Law for a sum: both laws must hold simultaneously, so the periods
   must be commensurable and the increments add over the common
   multiple. *)
let sum_law op f g =
  match common_period f g with
  | Some d -> (d, (rate f +. rate g) *. d)
  | None -> incommensurable op

(* Verification loop shared by every periodic-path operation: starting
   from the structural rank estimate, compute the exact window curve
   and accept the first rank at which the last unrolled period obeys
   the candidate law.  [window ~horizon] must be exact on
   [0, horizon]. *)
let max_rank_tries = 32

let periodize ~op ~d ~c ~rank0 window =
  let rec try_ i =
    if i >= max_rank_tries then
      invalid_arg
        (Printf.sprintf
           "Upp.%s: could not verify the periodic law within %d periods \
            past the structural rank"
           op max_rank_tries)
    else
      let rank = rank0 +. (float_of_int i *. d) in
      let horizon = rank +. (2. *. d) in
      let w = window ~horizon in
      if pattern_matches w ~rank ~period:d ~increment:c then
        let head = if rank > 0. then segs_window w ~lo:0. ~hi:rank else [] in
        let pat = segs_window w ~lo:rank ~hi:(rank +. d) in
        normalize
          { base = Pwl.make (head @ pat);
            rank;
            period = d;
            increment = c;
            affine_tail = false }
      else try_ (i + 1)
  in
  try_ 0

(* ------------------------------------------------------------------ *)
(* Pointwise operations                                                *)
(* ------------------------------------------------------------------ *)

(* Slack past every horizon so the reconstruction probes of
   {!Pwl.of_sampler} (which reach two units past the last candidate)
   stay inside the exactly-unrolled region. *)
let horizon_slack = 4.

let add f g =
  if f.affine_tail && g.affine_tail then of_pwl (Pwl.add f.base g.base)
  else
    let d, c = sum_law "add" f g in
    let rank0 = Float.max f.rank g.rank in
    periodize ~op:"add" ~d ~c ~rank0 (fun ~horizon ->
        let h = horizon +. horizon_slack +. d in
        Pwl.add (unroll f ~horizon:h) (unroll g ~horizon:h))

let min_pw f g =
  if f.affine_tail && g.affine_tail then of_pwl (Pwl.min_pw f.base g.base)
  else
    let d, c = result_law "min_pw" f g in
    let rank0 = Float.max f.rank g.rank in
    periodize ~op:"min_pw" ~d ~c ~rank0 (fun ~horizon ->
        let h = horizon +. horizon_slack +. d in
        Pwl.min_pw (unroll f ~horizon:h) (unroll g ~horizon:h))

(* ------------------------------------------------------------------ *)
(* Windowed exact convolution                                          *)
(* ------------------------------------------------------------------ *)

(* Exact envelope-convention convolution of two finite prefixes on
   [0, horizon]:

     (fw (x) gw) t = min (fw t, gw t, inf_{0 <= s <= t} fw s + gw (t-s))

   (the [fw t] / [gw t] branches are the s = 0- / s = t+ terms of the
   arrival-curve convention, matching both [Minplus.conv] on concave
   operands and [Minplus.conv_with_rate]'s empty-system start).

   The infimum is computed by the UPP decomposition: the s-axis splits
   at [rank_f] into f's transient and periodic parts and the (t-s)-axis
   at [rank_g] likewise, giving four independent sub-convolutions
   (transient (x) transient, transient (x) periodic, periodic (x)
   transient, periodic (x) periodic) evaluated in parallel with
   {!Par.map} and recombined by pointwise minimum.  Within a
   sub-rectangle both operands are affine between breakpoints, so the
   infimum over s is attained at a breakpoint of fw, at [t] minus a
   breakpoint of gw, or at a rectangle edge — including left limits at
   jumps.  Candidate result breakpoints are the pairwise breakpoint
   sums (Minkowski set); branch crossings that fall between candidates
   are recovered by the refinement loop in {!refine_sampled}. *)

let part_inf fw gw (slo, shi, ulo, uhi) t =
  let lo = Float.max slo (if uhi = infinity then 0. else t -. uhi) in
  let hi = Float.min (Float.min shi t) (t -. ulo) in
  if lo > hi then infinity
  else begin
    let cands = ref [ lo; hi ] in
    List.iter
      (fun b -> if b > lo && b < hi then cands := b :: !cands)
      (Pwl.breakpoints fw);
    List.iter
      (fun b ->
        let s = t -. b in
        if s > lo && s < hi then cands := s :: !cands)
      (Pwl.breakpoints gw);
    List.fold_left
      (fun best s ->
        let u = t -. s in
        let v =
          Float.min
            (Pwl.eval fw s +. Pwl.eval gw u)
            (Float.min
               (Pwl.eval_left fw s +. Pwl.eval gw u)
               (Pwl.eval fw s +. Pwl.eval_left gw u))
        in
        Float.min best v)
      infinity !cands
  end

(* Rebuild an exact curve from a sampler, then verify each reconstructed
   segment against the sampler and insert the branch crossings it
   missed: crossings of the sub-convolution minimum (or the
   deconvolution maximum) need not sit on the Minkowski candidate set.
   Between adjacent candidates the true curve is a min (resp. max) of
   affine branches, hence concave (resp. convex) there, while
   [of_sampler] extends the branch that is active just right of the
   left candidate; any deviation therefore persists all the way to the
   right candidate, so probing the midpoint and a point just left of
   the right end detects every mismatching segment.  On a mismatch the
   true curve is locally affine, so intersecting its local line with
   the reconstructed segment gives the exact crossing, and one round
   usually suffices. *)
let max_refine_rounds = 12

let refine_sampled ~candidates ~eval =
  let open Float_ops in
  let rec go cands round =
    let h = Pwl.of_sampler ~candidates:cands ~eval () in
    if round >= max_refine_rounds then h
    else begin
      let extra = ref [] in
      let check (a, ya, sa) b m =
        let ev = eval m in
        if not (Pwl.eval h m =~ ev) then begin
          let eps = (b -. a) /. 1048576. in
          let slope = (eval (m +. eps) -. ev) /. eps in
          let t =
            if slope =~ sa then m
            else ((ev -. (slope *. m)) -. (ya -. (sa *. a))) /. (sa -. slope)
          in
          let t = if t > a && t < b && not (t =~ a || t =~ b) then t else m in
          extra := t :: !extra
        end
      in
      let rec walk = function
        | ((a, _, _) as seg) :: ((b, _, _) :: _ as rest) ->
            let gap = b -. a in
            check seg b (a +. (0.5 *. gap));
            check seg b (b -. (gap /. 1024.));
            walk rest
        | _ -> ()
      in
      walk (Pwl.segments h);
      if !extra = [] then h else go (!extra @ cands) (round + 1)
    end
  in
  go candidates 0

let window_conv ~rank_f ~rank_g fw gw ~horizon =
  let bf = List.filter (fun x -> x <= horizon) (Pwl.breakpoints fw) in
  let bg = List.filter (fun x -> x <= horizon) (Pwl.breakpoints gw) in
  let candidates = ref [ 0.; horizon ] in
  List.iter
    (fun x ->
      candidates := x :: !candidates;
      List.iter
        (fun y ->
          let s = x +. y in
          if s <= horizon then candidates := s :: !candidates)
        bg)
    bf;
  List.iter (fun y -> candidates := y :: !candidates) bg;
  let parts =
    [ (0., rank_f, 0., rank_g);
      (0., rank_f, rank_g, infinity);
      (rank_f, infinity, 0., rank_g);
      (rank_f, infinity, rank_g, infinity) ]
  in
  (* Degenerate rectangles (an operand with no transient) contribute
     [infinity] everywhere and drop out of the minimum. *)
  let parts = List.filter (fun (slo, shi, _, _) -> slo < shi || shi = infinity) parts in
  let eval t =
    let sub = Par.map (fun p -> part_inf fw gw p t) parts in
    List.fold_left Float.min
      (Float.min (Pwl.eval fw t) (Pwl.eval gw t))
      sub
  in
  refine_sampled ~candidates:!candidates ~eval

(* Namespace for the shared [Minplus] result cache: upp window results
   are keyed apart from the pwl kernel's (namespace 0) and from other
   horizons — the unrolled-operand uids alone must never be allowed to
   collide with a pwl-backend entry (see the cache-keying regression
   test). *)
let cache_ns ~kind ~horizon =
  let tag =
    ((Hashtbl.hash kind * 31) + Int64.to_int (Int64.bits_of_float horizon))
    land max_int
  in
  if tag = 0 then 1 else tag

let conv f g =
  if f.affine_tail && g.affine_tail then of_pwl (Minplus.conv f.base g.base)
  else
    let d, c = result_law "conv" f g in
    let rank0 = f.rank +. g.rank +. d in
    periodize ~op:"conv" ~d ~c ~rank0 (fun ~horizon ->
        let h = horizon +. horizon_slack +. d in
        let fw = unroll f ~horizon:h and gw = unroll g ~horizon:h in
        Minplus.cached_op `Conv
          ~ns:(cache_ns ~kind:"upp.conv" ~horizon)
          fw gw
          (fun () -> window_conv ~rank_f:f.rank ~rank_g:g.rank fw gw ~horizon))

let conv_with_rate ~rate:r f =
  if r <= 0. then invalid_arg "Upp.conv_with_rate: rate <= 0";
  if f.affine_tail then of_pwl (Minplus.conv_with_rate ~rate:r f.base)
  else conv f (of_pwl (Pwl.affine ~y0:0. ~slope:r))

(* ------------------------------------------------------------------ *)
(* Windowed exact deconvolution                                        *)
(* ------------------------------------------------------------------ *)

(* (f (/) g) t = sup_{u >= 0} f (t + u) - g u.  Beyond both transients
   the difference changes by (rate f - rate g) * D over a common period
   D: strictly decreasing when rate f < rate g, exactly periodic when
   the rates tie — either way the supremum over u is attained within
   [0, max rank + D], so a finite window of exact unrolled values
   suffices.  The result inherits f's law: shifting t by f's period
   adds f's increment to every branch of the supremum once t is past
   the verified rank. *)
let deconv f g =
  if f.affine_tail && g.affine_tail then of_pwl (Minplus.deconv f.base g.base)
  else begin
    let open Float_ops in
    if rate g <~ rate f then
      invalid_arg "Upp.deconv: infinite (f grows faster than g)";
    let du =
      match common_period f g with
      | Some d -> d
      | None -> incommensurable "deconv"
    in
    let u_max = Float.max f.rank g.rank +. du in
    let d, c =
      if f.affine_tail then (1., rate f) else (f.period, f.increment)
    in
    let rank0 = f.rank +. du in
    periodize ~op:"deconv" ~d ~c ~rank0 (fun ~horizon ->
        let fw = unroll f ~horizon:(horizon +. u_max +. horizon_slack +. d) in
        let gw = unroll g ~horizon:(u_max +. horizon_slack +. d) in
        Minplus.cached_op `Deconv
          ~ns:(cache_ns ~kind:"upp.deconv" ~horizon)
          fw gw
          (fun () ->
            let bg = List.filter (fun x -> x <= u_max) (Pwl.breakpoints gw) in
            let bf = Pwl.breakpoints fw in
            let eval t =
              let cands = ref [ 0.; u_max ] in
              List.iter
                (fun b -> if b > 0. && b < u_max then cands := b :: !cands)
                bg;
              List.iter
                (fun b ->
                  let u = b -. t in
                  if u > 0. && u < u_max then cands := u :: !cands)
                bf;
              List.fold_left
                (fun best u ->
                  let v =
                    Float.max
                      (Pwl.eval fw (t +. u) -. Pwl.eval gw u)
                      (Pwl.eval_left fw (t +. u) -. Pwl.eval_left gw u)
                  in
                  Float.max best v)
                neg_infinity !cands
            in
            let candidates = ref [ 0.; horizon ] in
            List.iter
              (fun x ->
                if x <= horizon then candidates := x :: !candidates;
                List.iter
                  (fun y ->
                    let t = x -. y in
                    if t > 0. && t <= horizon then candidates := t :: !candidates)
                  bg)
              bf;
            refine_sampled ~candidates:!candidates ~eval))
  end

(* ------------------------------------------------------------------ *)
(* Compaction                                                          *)
(* ------------------------------------------------------------------ *)

(* Compaction exists to tame transient growth; the periodic part is
   already minimal (period division above), and compacting it would
   break the law it repeats under.  So: eventually-affine curves
   compact exactly like their pwl selves; periodic curves compact the
   transient prefix only. *)
let compact ~dir ~eps ~max_segs f =
  if f.affine_tail then of_pwl (Pwl.compact ~dir ~eps ~max_segs f.base)
  else f

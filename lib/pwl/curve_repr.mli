(** Curve-representation seam (DESIGN.md §15): the module type every
    curve backend implements, the two backends (finite piecewise-linear
    {!Pwl}, ultimately-pseudo-periodic {!Upp}), the process-global
    backend switch, and the dispatching kernel operations the engines
    call instead of [Minplus] directly.

    Both backends produce bit-identical delay/backlog tables on the
    paper's (eventually-affine) token-bucket grids: the upp backend
    delegates its affine-tail case to the same [Minplus] kernels on the
    same hash-consed values.  The upp backend additionally carries
    genuinely periodic curves with horizon-independent size. *)

(** Operations a curve representation must provide.  [of_pwl]/[to_pwl]
    are the exact interchange with the engines' wire type. *)
module type S = sig
  type curve

  val name : string
  val of_pwl : Pwl.t -> curve
  val to_pwl : curve -> Pwl.t
  val eval : curve -> float -> float
  val add : curve -> curve -> curve
  val min_pw : curve -> curve -> curve
  val conv : curve -> curve -> curve
  val conv_with_rate : rate:float -> curve -> curve
  val deconv : curve -> curve -> curve
  val compare : curve -> curve -> int
  val hash : curve -> int
  val compact : dir:[ `Up | `Down ] -> eps:float -> max_segs:int -> curve -> curve
  val segment_count : curve -> int
end

module Pwl_backend : S with type curve = Pwl.t
module Upp_backend : S with type curve = Upp.t

(** {1 Backend selection}

    Process-global, like the caches it must stay consistent with
    (Minplus result cache, intern table, Incremental memos).  Reads
    NETCALC_CURVE_BACKEND lazily on first use; [--curve-backend] in the
    CLI and bench harness calls {!set_backend} (via
    [Options.set_curve_backend]) before any analysis runs. *)

type backend = [ `Pwl | `Upp ]

val of_string : string -> (backend, string) result
val to_string : backend -> string

val backend : unit -> backend
(** The active backend ([`Pwl] unless overridden by environment or
    {!set_backend}).
    @raise Invalid_argument on first read when NETCALC_CURVE_BACKEND
    holds an unknown value. *)

val set_backend : backend -> unit

val backend_name : unit -> string
(** [to_string (backend ())]. *)

val backend_tag : unit -> int
(** Small integer identifying the active backend, for cache keys that
    must not conflate results across backends ([Incremental.net_key]
    folds it into every memo key). *)

(** {1 Dispatching kernel operations}

    [Pwl.t] in, [Pwl.t] out, routed through the active backend.
    Contracts (shape rules, stability requirements, raised exceptions)
    are those of the corresponding [Minplus] kernels and are
    backend-independent. *)

val conv : Pwl.t -> Pwl.t -> Pwl.t
val conv_list : Pwl.t list -> Pwl.t
val conv_with_rate : rate:float -> Pwl.t -> Pwl.t
val deconv : Pwl.t -> Pwl.t -> Pwl.t

(** Min-plus (network-calculus) operations on piecewise-linear functions.

    Conventions follow Cruz and Le Boudec:
    - convolution   [(f (x) g)(t) = inf_{0 <= s <= t} f(s) + g(t - s)]
    - deconvolution [(f (/) g)(t) = sup_{s >= 0} f(t + s) - g(s)]

    Convolution is implemented for the two shape classes the analyses
    need, both with well-known exact forms:
    - concave (x) concave (with value 0 at 0-) = pointwise minimum
      (Le Boudec, {e Network Calculus}, Thm 3.1.6);
    - convex (x) convex = concatenation of segments sorted by increasing
      slope (inf-convolution of convex functions).

    Arrival curves are concave and service curves convex throughout this
    library, so these two cases cover every use. *)

val conv : Pwl.t -> Pwl.t -> Pwl.t
(** Min-plus convolution.  Dispatches on {!Pwl.shape}; affine functions
    may pair with either class.  For the concave case the functions are
    interpreted as right-continuous envelopes with implicit value 0 at
    [t = 0-] (the standard arrival-curve convention), so the result is
    the pointwise minimum.
    @raise Invalid_argument when neither shape rule applies (one operand
    [`General], or a convex operand with an interior jump). *)

val conv_list : Pwl.t list -> Pwl.t
(** Left fold of {!conv}.  @raise Invalid_argument on the empty list. *)

val conv_with_rate : rate:float -> Pwl.t -> Pwl.t
(** [(lambda_rate (x) g)(t) = min_{0 <= s <= t} (g s + rate (t - s))] for
    an {e arbitrary} nondecreasing [g] — not just the concave/convex
    classes of {!conv}.  This is Reich's equation: the exact cumulative
    departure function of a work-conserving constant-rate server whose
    cumulative arrivals are [g].  [g] is treated as a cumulative
    function that vanishes before the origin, so a value jump at 0 is
    an instantaneous burst into an initially empty server.  Computed by
    the running-minimum scan
    [min (g t, rate * t + min_{b <= t} (g b - rate b))] over
    breakpoints. *)

val deconv : Pwl.t -> Pwl.t -> Pwl.t
(** [deconv f g = f (/) g].  Used to bound the output of a server:
    the traffic of a flow with arrival curve [alpha] leaving a server
    with service curve [beta] is constrained by [alpha (/) beta].
    Requires [Pwl.final_slope f <= Pwl.final_slope g], otherwise the
    deconvolution is infinite everywhere.
    @raise Invalid_argument when it would be infinite. *)

(** {1 Result cache}

    [conv] and [deconv] memoize their results in a cache keyed by the
    operands' intern uids ({!Pwl.uid}) — hash-consing makes uid
    equality mean content equality, so the key is O(1) instead of a
    walk over every segment — because the fixed-point iteration and the
    figure sweeps re-derive the same curve pairs many times over.
    Cached values are immutable, so a hit is indistinguishable from
    recomputation and results are byte-identical with the cache on or
    off.  The cache is enabled by
    default, bounded (wholesale reset past a few thousand entries), and
    safe to use from netcalc.par worker domains.  Hits and misses are
    also published as the [pwl.cache.hits] / [pwl.cache.misses]
    observability counters. *)

val cached_op :
  [ `Conv | `Deconv ] ->
  ns:int -> Pwl.t -> Pwl.t -> (unit -> Pwl.t) -> Pwl.t
(** Namespaced access to the shared result cache for alternative curve
    backends (the upp representation caches its windowed kernel
    results here).  Keys are [(ns, uid f, uid g)]; the pwl kernels of
    this module own namespace 0, so a backend whose operation on the
    same two interned curves computes a different function can never
    be served — or serve — a pwl entry.  [compute] must be a
    deterministic function of [(ns, f, g)], for the same reason the
    kernels above must be: a hit replays its value.
    @raise Invalid_argument on [ns = 0]. *)

type cache_stats = { hits : int; misses : int; entries : int }

val cache_enabled : unit -> bool
val set_cache_enabled : bool -> unit

val cache_clear : unit -> unit
(** Drop every cached entry (keeps the hit/miss counters; those are
    reset with [Metrics.reset]). *)

val cache_stats : unit -> cache_stats
(** Cumulative hits/misses since the last [Metrics.reset] and the
    current number of live entries. *)

val busy_period : agg:Pwl.t -> rate:float -> float
(** [busy_period ~agg ~rate] bounds the length of a busy period of a
    work-conserving server of rate [rate] whose aggregate input is
    constrained by [agg]: the first positive crossing of [agg] below the
    service line, [inf { t > 0 : agg t <= rate t }].  [infinity] when
    the server is unstable ([final_slope agg >= rate] and no crossing
    exists). *)

val stable : agg:Pwl.t -> rate:float -> bool
(** True when the long-run input rate is strictly below [rate] — the
    condition for every delay bound in this library to be finite. *)

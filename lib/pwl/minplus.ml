(* Operation-cost metrics (see DESIGN.md "Observability"): min-plus
   operations dominate analysis runtime, so each entry point counts its
   calls and records the breakpoint complexity of its result.  All
   recording is branch-guarded by Obs and free when disabled. *)
let c_conv = Metrics.counter "pwl.conv.calls"
let c_conv_rate = Metrics.counter "pwl.conv_with_rate.calls"
let c_deconv = Metrics.counter "pwl.deconv.calls"
let d_conv_bps = Metrics.dist "pwl.conv.breakpoints"
let d_deconv_bps = Metrics.dist "pwl.deconv.breakpoints"

let observed_bps d r =
  if Prof.enabled () then
    Metrics.observe d (float_of_int (List.length (Pwl.breakpoints r)));
  r

(* Convex (x) convex: sort the slope pieces of both operands by
   increasing slope and concatenate, starting from the sum of the
   initial values.  Pieces steeper than the smaller of the two final
   slopes can never be reached (they would follow an infinite piece). *)
let conv_convex f g =
  let pieces h =
    let rec walk = function
      | (x, _, s) :: ((nx, _, _) :: _ as rest) -> (s, nx -. x) :: walk rest
      | [ (_, _, s) ] -> [ (s, infinity) ]
      | [] -> []
    in
    walk (Pwl.segments h)
  in
  let final = Float.min (Pwl.final_slope f) (Pwl.final_slope g) in
  let finite_pieces =
    pieces f @ pieces g
    |> List.filter (fun (s, len) -> Float.is_finite len && s < final)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let y0 = Pwl.value_at_zero f +. Pwl.value_at_zero g in
  let rec build x y = function
    | (s, len) :: rest -> (x, y, s) :: build (x +. len) (y +. (s *. len)) rest
    | [] -> [ (x, y, final) ]
  in
  Pwl.make (build 0. y0 finite_pieces)

let conv f g =
  Prof.count c_conv;
  let fail () =
    invalid_arg "Minplus.conv: unsupported shape combination (need concave \
                 x concave or convex x convex)"
  in
  let r =
    match (Pwl.shape f, Pwl.shape g) with
    | (`Concave | `Affine), (`Concave | `Affine) -> Pwl.min_pw f g
    | (`Convex | `Affine), (`Convex | `Affine) -> conv_convex f g
    | _ -> fail ()
  in
  observed_bps d_conv_bps r

let conv_list = function
  | [] -> invalid_arg "Minplus.conv_list: empty list"
  | f :: rest -> List.fold_left conv f rest

let conv_with_rate ~rate g =
  Prof.count c_conv_rate;
  if rate <= 0. then invalid_arg "Minplus.conv_with_rate: rate <= 0";
  if not (Pwl.is_nondecreasing g) then
    invalid_arg "Minplus.conv_with_rate: input must be nondecreasing";
  (* Candidate minimizers of g s - rate s are the breakpoints (value
     and left limit — the function is affine in between, so interior
     minima sit at segment ends; the s = t candidate is the g-branch of
     the outer min).  Build the running minimum as a step function over
     the same abscissae; the result is min (g t, rate t + m t).  The
     running minimum starts at 0: g is a cumulative function that
     vanishes before the origin, so an instantaneous burst at 0
     (g 0 > 0) still leaves the server starting from an empty system. *)
  let bps = Pwl.breakpoints g in
  let steps, _ =
    List.fold_left
      (fun (acc, best) x ->
        let v =
          Float.min
            (Pwl.eval g x -. (rate *. x))
            (Pwl.eval_left g x -. (rate *. x))
        in
        let best = Float.min best v in
        ((x, best, 0.) :: acc, best))
      ([], 0.) bps
  in
  let m = Pwl.make (List.rev steps) in
  Pwl.min_pw g (Pwl.add (Pwl.affine ~y0:0. ~slope:rate) m)

let final_slope_exceeds f g =
  let open Float_ops in
  Pwl.final_slope g <~ Pwl.final_slope f

let deconv f g =
  Prof.count c_deconv;
  if final_slope_exceeds f g then
    invalid_arg "Minplus.deconv: infinite (f grows faster than g)"
  else begin
    let bps_f = Pwl.breakpoints f and bps_g = Pwl.breakpoints g in
    let far = Float_ops.max_list (bps_f @ bps_g) +. 1. in
    let value_at t =
      let s_candidates =
        (0. :: far :: bps_g)
        @ List.filter_map
            (fun x -> if x -. t >= 0. then Some (x -. t) else None)
            bps_f
      in
      let at s =
        Float.max
          (Pwl.eval f (t +. s) -. Pwl.eval g s)
          (Pwl.eval_left f (t +. s) -. Pwl.eval_left g s)
      in
      Float_ops.max_list (List.map at s_candidates)
    in
    let t_candidates =
      List.concat_map
        (fun xf ->
          List.filter_map
            (fun xg -> if xf -. xg >= 0. then Some (xf -. xg) else None)
            bps_g)
        bps_f
      @ bps_f
    in
    observed_bps d_deconv_bps
      (Pwl.of_sampler ~candidates:t_candidates ~eval:value_at)
  end

let busy_period ~agg ~rate = Pwl.first_crossing_below agg ~rate

let stable ~agg ~rate =
  let open Float_ops in
  Pwl.final_slope agg <~ rate

(* Operation-cost metrics (see DESIGN.md "Observability"): min-plus
   operations dominate analysis runtime, so each entry point counts its
   calls and records the breakpoint complexity of its result.  All
   recording is branch-guarded by Obs and free when disabled. *)
let c_conv = Metrics.counter "pwl.conv.calls"
let c_conv_rate = Metrics.counter "pwl.conv_with_rate.calls"
let c_deconv = Metrics.counter "pwl.deconv.calls"
let d_conv_bps = Metrics.dist "pwl.conv.breakpoints"
let d_deconv_bps = Metrics.dist "pwl.deconv.breakpoints"

let observed_bps d r =
  if Prof.enabled () then
    Metrics.observe d (float_of_int (List.length (Pwl.breakpoints r)));
  r

(* Memo cache for [conv] and [deconv].  The fixed-point iteration and
   the figure sweeps recompute the same small set of curve pairs many
   times over (the Jacobi step re-derives every server's inputs each
   round, and neighbouring sweep cells share most of their curves), so
   even a small exact-match cache removes a large fraction of the
   kernel work.  Keys are the operands' intern uids ({!Pwl.uid}):
   hash-consing makes uid equality mean content equality, so two
   separately-constructed but equal curves share an entry, and the key
   is two machine words instead of a walk over every segment.  Values
   are immutable [Pwl.t], so returning the cached value is
   indistinguishable from recomputing: results stay byte-identical
   whether or not the cache is on, which the determinism tests pin.
   (After an intern-table reset, equal curves get fresh uids and the
   lookup misses — a recompute of the identical value, never a wrong
   hit: uids are not reused.)  Guarded by one lock: netcalc.par worker
   domains hit these tables concurrently.

   Keys carry a namespace tag [ns] besides the operand uids.  The pwl
   kernels here always use [ns = 0]; alternative curve backends
   (netcalc's upp representation) store their windowed results under
   nonzero namespaces via [cached_op].  Without the tag, a backend
   whose operation on the same two interned curves means something
   different (a upp window convolution on an unrolled prefix vs this
   module's shape-dispatched convolution) could be served the other
   backend's value — the cross-backend conflation the cache-keying
   regression test pins. *)
module Cache_key = struct
  type t = { ns : int; a : int; b : int }

  let equal k1 k2 = k1.ns = k2.ns && k1.a = k2.a && k1.b = k2.b
  let hash { ns; a; b } = (((((ns * 31) + a) * 31) + b) * 0x9e3779b9) land max_int
end

module Cache_tbl = Hashtbl.Make (Cache_key)

let cache_lock = Obs_sync.create ()
let cache_cap = 4096
let cache_on = ref true
let conv_cache : Pwl.t Cache_tbl.t = Cache_tbl.create 256
[@@lint.domain_safe
  "only passed by reference into [cached], which performs every table \
   operation under cache_lock"]

let deconv_cache : Pwl.t Cache_tbl.t = Cache_tbl.create 256
[@@lint.domain_safe
  "only passed by reference into [cached], which performs every table \
   operation under cache_lock"]

(* Hit/miss counters are recorded unconditionally (not Prof-guarded):
   they cost one mutex round-trip next to a kernel call that costs far
   more, and [cache_stats] must be accurate even when profiling was
   enabled only for the final report. *)
let c_cache_hit = Metrics.counter "pwl.cache.hits"
let c_cache_miss = Metrics.counter "pwl.cache.misses"

type cache_stats = { hits : int; misses : int; entries : int }

let cache_enabled () = Obs_sync.with_lock cache_lock (fun () -> !cache_on)

let set_cache_enabled b =
  Obs_sync.with_lock cache_lock (fun () -> cache_on := b)

let cache_clear () =
  Obs_sync.with_lock cache_lock (fun () ->
      Cache_tbl.reset conv_cache;
      Cache_tbl.reset deconv_cache)

let cache_stats () =
  let entries =
    Obs_sync.with_lock cache_lock (fun () ->
        Cache_tbl.length conv_cache + Cache_tbl.length deconv_cache)
  in
  { hits = Metrics.value c_cache_hit;
    misses = Metrics.value c_cache_miss;
    entries }

let cached ?(ns = 0) tbl f g compute =
  if not (Obs_sync.with_lock cache_lock (fun () -> !cache_on)) then compute ()
  else begin
    let key = { Cache_key.ns; a = Pwl.uid f; b = Pwl.uid g } in
    match Obs_sync.with_lock cache_lock (fun () -> Cache_tbl.find_opt tbl key)
    with
    | Some r ->
        Metrics.incr c_cache_hit;
        r
    | None ->
        Metrics.incr c_cache_miss;
        (* Compute outside the lock: kernels are the expensive part,
           and a concurrent duplicate computation of the same key is
           harmless (both produce the identical value). *)
        let r = compute () in
        Obs_sync.with_lock cache_lock (fun () ->
            if Cache_tbl.length tbl >= cache_cap then Cache_tbl.reset tbl;
            if not (Cache_tbl.mem tbl key) then Cache_tbl.add tbl key r);
        r
  end

let cached_op op ~ns f g compute =
  if ns = 0 then
    invalid_arg "Minplus.cached_op: namespace 0 is reserved for the pwl kernel";
  cached ~ns (match op with `Conv -> conv_cache | `Deconv -> deconv_cache) f g
    compute

(* Convex (x) convex: sort the slope pieces of both operands by
   increasing slope and concatenate, starting from the sum of the
   initial values.  Pieces steeper than the smaller of the two final
   slopes can never be reached (they would follow an infinite piece). *)
let conv_convex f g =
  let pieces h =
    let rec walk = function
      | (x, _, s) :: ((nx, _, _) :: _ as rest) -> (s, nx -. x) :: walk rest
      | [ (_, _, s) ] -> [ (s, infinity) ]
      | [] -> []
    in
    walk (Pwl.segments h)
  in
  let final = Float.min (Pwl.final_slope f) (Pwl.final_slope g) in
  let finite_pieces =
    pieces f @ pieces g
    |> List.filter (fun (s, len) -> Float.is_finite len && s < final)
    |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
  in
  let y0 = Pwl.value_at_zero f +. Pwl.value_at_zero g in
  let rec build x y = function
    | (s, len) :: rest -> (x, y, s) :: build (x +. len) (y +. (s *. len)) rest
    | [] -> [ (x, y, final) ]
  in
  Pwl.make (build 0. y0 finite_pieces)

let conv f g =
  Prof.count c_conv;
  cached conv_cache f g (fun () ->
      let fail () =
        invalid_arg
          "Minplus.conv: unsupported shape combination (need concave x \
           concave or convex x convex)"
      in
      let r =
        match (Pwl.shape f, Pwl.shape g) with
        | (`Concave | `Affine), (`Concave | `Affine) -> Pwl.min_pw f g
        | (`Convex | `Affine), (`Convex | `Affine) -> conv_convex f g
        | _ -> fail ()
      in
      observed_bps d_conv_bps r)

let conv_list = function
  | [] -> invalid_arg "Minplus.conv_list: empty list"
  | f :: rest -> List.fold_left conv f rest

let conv_with_rate ~rate g =
  Prof.count c_conv_rate;
  if rate <= 0. then invalid_arg "Minplus.conv_with_rate: rate <= 0";
  if not (Pwl.is_nondecreasing g) then
    invalid_arg "Minplus.conv_with_rate: input must be nondecreasing";
  (* Candidate minimizers of g s - rate s are the breakpoints (value
     and left limit — the function is affine in between, so interior
     minima sit at segment ends; the s = t candidate is the g-branch of
     the outer min).  Build the running minimum as a step function over
     the same abscissae; the result is min (g t, rate t + m t).  The
     running minimum starts at 0: g is a cumulative function that
     vanishes before the origin, so an instantaneous burst at 0
     (g 0 > 0) still leaves the server starting from an empty system.
     The abscissae are exactly g's segment starts, so both the value
     (the segment's own y) and the left limit (the previous segment
     extrapolated) fall out of one walk — no evaluation, no search. *)
  let steps, _, _ =
    List.fold_left
      (fun (acc, best, prev) (x, y, slope) ->
        let left =
          match prev with
          | None -> y
          | Some (px, py, ps) -> py +. (ps *. (x -. px))
        in
        let v = Float.min (y -. (rate *. x)) (left -. (rate *. x)) in
        let best = Float.min best v in
        ((x, best, 0.) :: acc, best, Some (x, y, slope)))
      ([], 0., None) (Pwl.segments g)
  in
  let m = Pwl.make (List.rev steps) in
  Pwl.min_pw g (Pwl.add (Pwl.affine ~y0:0. ~slope:rate) m)

let final_slope_exceeds f g =
  let open Float_ops in
  Pwl.final_slope g <~ Pwl.final_slope f

let deconv f g =
  Prof.count c_deconv;
  if final_slope_exceeds f g then
    invalid_arg "Minplus.deconv: infinite (f grows faster than g)"
  else
    cached deconv_cache f g (fun () ->
        let bps_f = Array.of_list (Pwl.breakpoints f) in
        let bps_g = Array.of_list (Pwl.breakpoints g) in
        let nf = Array.length bps_f and ng = Array.length bps_g in
        let far = Float.max bps_f.(nf - 1) bps_g.(ng - 1) +. 1. in
        (* Candidate maximizers s of f (t + s) - g s: the breakpoints
           of g, the breakpoints of f shifted to the s-axis, and a
           point beyond every breakpoint (both functions are affine
           from there on).  [s_base] — the t-independent part — is
           built once; breakpoint lists start at 0 and increase, so it
           is sorted and contains 0 already. *)
        let s_base = Array.append bps_g [| far |] in
        let nbase = ng + 1 in
        (* Reused per-t scratch; [value_at] is only ever called
           sequentially (from [of_sampler] below), never from worker
           domains, so sharing is safe. *)
        let sc = Array.make (nbase + nf) 0. in
        let ts_f = Array.make (nbase + nf) 0. in
        let value_at t =
          (* Merge [s_base] with the sorted shifted tail
             { x - t : x breakpoint of f, x >= t }. *)
          let i = ref 0 in
          let j = ref 0 in
          while !j < nf && bps_f.(!j) -. t < 0. do Stdlib.incr j done;
          let k = ref 0 in
          while !i < nbase || !j < nf do
            let take_base =
              !j >= nf || (!i < nbase && s_base.(!i) <= bps_f.(!j) -. t)
            in
            if take_base then begin
              sc.(!k) <- s_base.(!i);
              Stdlib.incr i
            end
            else begin
              sc.(!k) <- bps_f.(!j) -. t;
              Stdlib.incr j
            end;
            Stdlib.incr k
          done;
          let ns = !k in
          for i = 0 to ns - 1 do
            ts_f.(i) <- t +. sc.(i)
          done;
          let scv = Array.sub sc 0 ns and tsv = Array.sub ts_f 0 ns in
          let vf = Pwl.eval_seq f tsv in
          let vfl = Pwl.eval_left_seq f tsv in
          let vg = Pwl.eval_seq g scv in
          let vgl = Pwl.eval_left_seq g scv in
          let best = ref neg_infinity in
          for i = 0 to ns - 1 do
            let v = Float.max (vf.(i) -. vg.(i)) (vfl.(i) -. vgl.(i)) in
            if v > !best then best := v
          done;
          !best
        in
        (* Candidate breakpoints t of the result: pairwise differences
           of the operand breakpoints (plus the breakpoints of f
           themselves, i.e. the differences against g's origin).
           Built flat and deduped once inside [of_sampler]'s single
           array sort — no per-candidate list surgery. *)
        let t_candidates = ref [] in
        for i = nf - 1 downto 0 do
          let xf = bps_f.(i) in
          t_candidates := xf :: !t_candidates;
          for j = ng - 1 downto 0 do
            let d = xf -. bps_g.(j) in
            if d > 0. then t_candidates := d :: !t_candidates
          done
        done;
        observed_bps d_deconv_bps
          (Pwl.of_sampler ~candidates:!t_candidates ~eval:value_at ()))

let busy_period ~agg ~rate = Pwl.first_crossing_below agg ~rate

let stable ~agg ~rate =
  let open Float_ops in
  Pwl.final_slope agg <~ rate

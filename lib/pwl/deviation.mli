(** Horizontal and vertical deviations between curves.

    For an arrival curve [alpha] and a service curve [beta], the
    horizontal deviation bounds the delay and the vertical deviation
    bounds the backlog of any FIFO-per-flow system offering [beta] to
    traffic constrained by [alpha] (paper Eq. (1); Cruz; Le Boudec). *)

val hdev : alpha:Pwl.t -> beta:Pwl.t -> float
(** [hdev ~alpha ~beta = sup_{t >= 0} inf { d >= 0 : alpha t <= beta (t + d) }].
    Computed exactly as the supremum of
    [beta^{-1}(alpha t) - t] using the upper pseudo-inverse (see
    {!Pwl.pseudo_inverse}; conservative only on flats of [beta]).
    Returns [infinity] when [alpha] outgrows [beta]
    ([final_slope alpha > final_slope beta]), and also when the slopes
    are equal but the gap never closes. *)

val vdev : alpha:Pwl.t -> beta:Pwl.t -> float
(** [vdev ~alpha ~beta = sup_{t >= 0} (alpha t - beta t)] — the backlog
    bound.  [infinity] when [alpha] outgrows [beta]. *)

val vdev_per_flow : alpha_i:Pwl.t -> agg:Pwl.t -> beta:Pwl.t -> float
(** Minimal per-flow backlog bound at a FIFO aggregate server
    (the arXiv 2506.16914 refinement).  The server offers service
    [beta] to an aggregate constrained by [agg], of which flow [i]
    contributes at most [alpha_i]; then flow [i]'s backlog satisfies

    [B_i = sup_{tau >= 0} min (alpha_i (gap tau)) (agg tau - beta tau)]

    where [gap tau = (tau - sup { u : agg u <= beta tau })^+] is the
    age of the oldest unserved bit at busy-period age [tau]: under
    FIFO, flow [i] data still queued at age [tau] arrived within the
    last [gap tau] time units, so at most [alpha_i (gap tau)] of it
    exists; and no flow holds more than the whole queue
    [agg tau - beta tau].  Always [<= min (alpha_i (hdev agg beta))
    (vdev agg beta)] — the naive split — and often strictly below it.
    [infinity] when the aggregate outgrows [beta]. *)

val delay_fifo_aggregate : agg:Pwl.t -> rate:float -> float
(** Worst-case delay of a FIFO server of constant rate [rate] whose
    {e aggregate} input is constrained by [agg]:
    [sup_{t >= 0} (agg t / rate - t)]^+.  This is the single-server bound
    used by Algorithm Decomposed, equal to [hdev ~alpha:agg
    ~beta:(affine 0 rate)] but cheaper.  [infinity] if unstable. *)

(* Curve-representation seam (DESIGN.md §15): the engines' min-plus
   kernel operations go through the dispatch functions at the bottom of
   this module instead of calling [Minplus] directly (netcalc-lint's
   curve-repr rule enforces that in lib/core, lib/sched and lib/serve),
   so the finite piecewise-linear representation ({!Pwl}) becomes one
   of two interchangeable backends — the other being the
   ultimately-pseudo-periodic representation ({!Upp}).

   The selected backend is process-global state, exactly like the
   other cross-cutting switches it has to stay consistent with (the
   Minplus result cache, the Pwl intern table, Incremental's memo
   tables, Par's job count): a per-call or per-options backend would
   let two backends interleave against caches whose keys must be
   namespaced per backend ({!backend_tag} feeds both the Minplus cache
   namespace and Incremental.net_key).  [Options] re-exports
   setter/getter so CLI and bench wire the [--curve-backend] flag and
   the NETCALC_CURVE_BACKEND environment variable through the usual
   options surface.

   Engines exchange [Pwl.t] values at their interfaces whichever
   backend is active; the upp backend wraps operands ({!Upp.of_pwl},
   exact and O(1)) and lowers results back ({!Upp.to_pwl}).  On the
   eventually-affine curves of the paper's grids this delegates to the
   very same [Minplus] kernels on the same hash-consed values, so both
   backends produce bit-identical delay/backlog tables — pinned by the
   cross-backend tests and the CI smoke job.  The representational
   payoff (horizon-independent curve size) shows on genuinely periodic
   curves, which only the upp backend can carry without unrolling. *)

module type S = sig
  type curve

  val name : string
  val of_pwl : Pwl.t -> curve
  val to_pwl : curve -> Pwl.t
  val eval : curve -> float -> float
  val add : curve -> curve -> curve
  val min_pw : curve -> curve -> curve
  val conv : curve -> curve -> curve
  val conv_with_rate : rate:float -> curve -> curve
  val deconv : curve -> curve -> curve
  val compare : curve -> curve -> int
  val hash : curve -> int
  val compact : dir:[ `Up | `Down ] -> eps:float -> max_segs:int -> curve -> curve
  val segment_count : curve -> int
end

module Pwl_backend : S with type curve = Pwl.t = struct
  type curve = Pwl.t

  let name = "pwl"
  let of_pwl f = f
  let to_pwl f = f
  let eval = Pwl.eval
  let add = Pwl.add
  let min_pw = Pwl.min_pw
  let conv = Minplus.conv
  let conv_with_rate = Minplus.conv_with_rate
  let deconv = Minplus.deconv
  let compare = Pwl.compare
  let hash = Pwl.hash
  let compact = Pwl.compact
  let segment_count f = List.length (Pwl.breakpoints f)
end

module Upp_backend : S with type curve = Upp.t = struct
  type curve = Upp.t

  let name = "upp"
  let of_pwl = Upp.of_pwl
  let to_pwl = Upp.to_pwl
  let eval = Upp.eval
  let add = Upp.add
  let min_pw = Upp.min_pw
  let conv = Upp.conv
  let conv_with_rate = Upp.conv_with_rate
  let deconv = Upp.deconv
  let compare = Upp.compare
  let hash = Upp.hash
  let compact = Upp.compact
  let segment_count = Upp.segment_count
end

(* ------------------------------------------------------------------ *)
(* Backend selection                                                   *)
(* ------------------------------------------------------------------ *)

type backend = [ `Pwl | `Upp ]

let of_string s =
  match String.lowercase_ascii s with
  | "pwl" -> Ok `Pwl
  | "upp" -> Ok `Upp
  | _ -> Error (Printf.sprintf "unknown curve backend %S (expected pwl or upp)" s)

let to_string = function `Pwl -> "pwl" | `Upp -> "upp"

(* Initialized lazily from NETCALC_CURVE_BACKEND on first read so a
   bad value surfaces as a clean Invalid_argument at first use, not as
   a cryptic failure during module initialization. *)
let lock = Obs_sync.create ()
let initialized = ref false
let current : backend ref = ref `Pwl

let resolve_env () =
  match Sys.getenv_opt "NETCALC_CURVE_BACKEND" with
  | None -> `Pwl
  | Some s -> (
      match of_string s with
      | Ok b -> b
      | Error msg -> invalid_arg ("NETCALC_CURVE_BACKEND: " ^ msg))

let backend () =
  Obs_sync.with_lock lock (fun () ->
      if not !initialized then begin
        current := resolve_env ();
        initialized := true
      end;
      !current)

let set_backend b =
  Obs_sync.with_lock lock (fun () ->
      initialized := true;
      current := b)

let backend_name () = to_string (backend ())

(* Small integer tag for cache keys that must not conflate backends
   (Incremental.net_key; see also the Minplus cache namespaces the upp
   backend derives for its windowed results). *)
let backend_tag () = match backend () with `Pwl -> 0 | `Upp -> 1

(* ------------------------------------------------------------------ *)
(* Dispatching kernel operations                                       *)
(* ------------------------------------------------------------------ *)

(* Engine-facing entry points: [Pwl.t] in, [Pwl.t] out, routed through
   the selected backend.  Exceptions are part of the contract and
   backend-independent: the upp affine-tail paths delegate to the same
   Minplus kernels, shape rules, stability checks and all. *)

let conv f g =
  match backend () with
  | `Pwl -> Pwl_backend.conv f g
  | `Upp -> Upp.to_pwl (Upp_backend.conv (Upp.of_pwl f) (Upp.of_pwl g))

let conv_list = function
  | [] -> invalid_arg "Curve_repr.conv_list: empty list"
  | f :: rest -> List.fold_left conv f rest

let conv_with_rate ~rate g =
  match backend () with
  | `Pwl -> Pwl_backend.conv_with_rate ~rate g
  | `Upp -> Upp.to_pwl (Upp_backend.conv_with_rate ~rate (Upp.of_pwl g))

let deconv f g =
  match backend () with
  | `Pwl -> Pwl_backend.deconv f g
  | `Upp -> Upp.to_pwl (Upp_backend.deconv (Upp.of_pwl f) (Upp.of_pwl g))

let eps = 1e-9

let ( =~ ) a b =
  if a = b then true
  else if Float.is_nan a || Float.is_nan b then false
  else if not (Float.is_finite a) || not (Float.is_finite b) then false
  else
    let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
    Float.abs (a -. b) <= eps *. scale

let eq_exact (a : float) b = a = b [@@inline]
let ( <~ ) a b = a < b && not (a =~ b)
let ( <=~ ) a b = a < b || a =~ b
let is_finite = Float.is_finite

let div a b =
  if b = 0. then if a = 0. then 0. else if a > 0. then infinity else neg_infinity
  else a /. b

let clamp ~lo ~hi x =
  assert (lo <= hi);
  Float.min hi (Float.max lo x)

let positive_part x = Float.max x 0.
let max_list = List.fold_left Float.max neg_infinity
let min_list = List.fold_left Float.min infinity

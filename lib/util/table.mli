(** Plain-text tables for experiment output.

    The bench harness prints every reproduced figure as an aligned text
    table; this module does the width bookkeeping. *)

type t

val create : header:string list -> t
(** A table with the given column names. *)

val add_row : t -> string list -> unit
(** Append a row.  Rows shorter than the header are right-padded with
    empty cells; longer rows raise [Invalid_argument]. *)

val add_floats : t -> ?fmt:(float -> string) -> float list -> unit
(** Append a row of floats rendered with [fmt] (default: [%.4g], with
    [inf] rendered as ["inf"]). *)

val to_string : t -> string
(** Render with aligned columns, a separator under the header. *)

val print : t -> unit
(** [print t] writes [to_string t] to stdout followed by a newline. *)

val to_csv : t -> string
(** Comma-separated rendering, header first.  Cells containing commas,
    double quotes or line breaks (LF or CR) are quoted RFC-4180 style,
    with embedded quotes doubled, so arbitrary method names and
    scenario labels round-trip through CSV readers. *)

val save_csv : dir:string -> name:string -> t -> unit
(** Write [to_csv] to [dir/name.csv], creating [dir] if needed. *)

val float_cell : ?fmt:(float -> string) -> float -> string
(** Render a single float the way {!add_floats} does. *)

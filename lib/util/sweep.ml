let linspace ~lo ~hi ~n =
  assert (n >= 1);
  if n = 1 then [ lo ]
  else
    List.init n (fun i ->
        lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))

let steps ~lo ~hi ~step =
  assert (step > 0.);
  (* Generate by integer index, not by repeated addition: accumulating
     [x +. step] drifts by an ulp per term (0.1 +. 0.2 is already
     0.30000000000000004), which both misprints sweep labels and can
     gain or lose the endpoint.  [lo +. i * step] caps the error at one
     rounding, and snapping through a 12-significant-digit decimal
     rendering recovers the exact short decimals (0.3, not 0.300...04)
     that grid specs like 0.1..0.9 step 0.1 mean. *)
  let n = int_of_float (Float.floor (((hi -. lo) /. step) +. 0.5)) in
  if n < 0 then []
  else
    List.init (n + 1) (fun i ->
        let x = lo +. (float_of_int i *. step) in
        float_of_string (Printf.sprintf "%.12g" x))

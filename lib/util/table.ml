type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }

let add_row t row =
  let ncols = List.length t.header in
  let n = List.length row in
  if n > ncols then invalid_arg "Table.add_row: row wider than header";
  let row = if n < ncols then row @ List.init (ncols - n) (fun _ -> "") else row in
  t.rows <- row :: t.rows

let default_fmt x =
  if x = infinity then "inf"
  else if x = neg_infinity then "-inf"
  else Printf.sprintf "%.4g" x

let float_cell ?(fmt = default_fmt) x = fmt x

let add_floats t ?fmt xs = add_row t (List.map (float_cell ?fmt) xs)

let to_string t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let width c =
    List.fold_left
      (fun acc row -> Stdlib.max acc (String.length (List.nth row c)))
      0 all
  in
  let widths = List.init ncols width in
  let render_row row =
    String.concat "  "
      (List.map2 (fun w cell -> Printf.sprintf "%*s" w cell) widths row)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row t.header :: sep :: List.map render_row rows)

let print t = print_endline (to_string t)

(* RFC 4180: a cell containing a comma, a double quote, or a line break
   (LF or CR) is wrapped in double quotes, with embedded quotes
   doubled.  Method names and scenario labels flow into CSV output
   unmodified, so this must hold for arbitrary strings. *)
let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') cell
  then "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let rows = t.header :: List.rev t.rows in
  String.concat "\n"
    (List.map (fun row -> String.concat "," (List.map csv_cell row)) rows)
  ^ "\n"

let save_csv ~dir ~name t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out (Filename.concat dir (name ^ ".csv")) in
  output_string oc (to_csv t);
  close_out oc

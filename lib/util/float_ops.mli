(** Tolerant floating-point comparisons and guarded arithmetic.

    Every quantity in the analysis (times, rates, amounts of traffic) is a
    nonnegative float, with [infinity] used for unbounded delays and
    unconstrained curves.  All comparisons in the piecewise-linear algebra
    go through this module so the tolerance policy lives in one place. *)

val eps : float
(** Absolute/relative tolerance used by the [=~] family, [1e-9]. *)

val ( =~ ) : float -> float -> bool
(** [a =~ b] holds when [a] and [b] are equal up to a mixed
    absolute/relative tolerance of {!eps}.  Both infinities compare equal
    to themselves. *)

val eq_exact : float -> float -> bool
(** IEEE bit-for-bit [=] spelled out.  The blessed escape hatch for the
    [float-eq] lint rule: use it where exact equality is the point — a
    sentinel test like [d = 0.] before a fast path, or distinguishing a
    stored value from a recomputed one — so every remaining raw [=] on
    floats is a tolerance bug waiting to be found. *)

val ( <~ ) : float -> float -> bool
(** [a <~ b] is [a < b] and not [a =~ b]: strictly less, beyond tolerance. *)

val ( <=~ ) : float -> float -> bool
(** [a <=~ b] is [a < b || a =~ b]. *)

val is_finite : float -> bool
(** True for ordinary floats; false for [nan] and both infinities. *)

val div : float -> float -> float
(** [div a b] is [a /. b] with the conventions [div 0. 0. = 0.] and
    [div a 0. = infinity] for [a > 0.].  Negative numerators with zero
    denominator yield [neg_infinity]. *)

val clamp : lo:float -> hi:float -> float -> float
(** Clamp into [\[lo, hi\]].  Requires [lo <= hi]. *)

val positive_part : float -> float
(** [positive_part x] is [max x 0.]. *)

val max_list : float list -> float
(** Maximum of a list, [neg_infinity] on the empty list. *)

val min_list : float list -> float
(** Minimum of a list, [infinity] on the empty list. *)

(** Global switch for the observability subsystem.

    Everything in [netcalc.obs] is recorded only while the switch is on;
    instrumentation sites in the analysis engines go through {!Prof},
    which reads {!on} and does nothing (no allocation, one load and one
    branch) when the switch is off.  The switch starts on iff the
    [NETCALC_OBS] environment variable is set to [1], [true] or [yes]. *)

val on : bool ref
(** The switch itself, exposed so that hot paths can read it without a
    function call.  Treat as read-only outside this library: use
    {!enable} / {!disable}. *)

val enabled : unit -> bool
(** [enabled () = !on]. *)

val enable : unit -> unit
val disable : unit -> unit

(** Instrumentation façade for hot paths.

    Every function here first reads {!Obs.on}; when observability is
    disabled (the default) each call is one load and one branch — no
    allocation, no registry lookup, no clock read — so instrumented
    code pays essentially nothing in production runs.

    Counters and distributions are created once, at module
    initialization of the instrumented module:

    {[
      let c_conv = Metrics.counter "pwl.conv.calls"
      let conv f g = Prof.count c_conv; ...
    ]}

    Values that are themselves costly to compute (e.g. a breakpoint
    count) must be guarded at the call site with {!enabled}:

    {[
      if Prof.enabled () then Metrics.observe d (float_of_int (...))
    ]} *)

val enabled : unit -> bool
(** Same as {!Obs.enabled}. *)

val count : Metrics.counter -> unit
(** Increment when enabled. *)

val count_n : Metrics.counter -> int -> unit
(** Add when enabled ([n >= 0]). *)

val observe : Metrics.dist -> float -> unit
(** Record when enabled. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] under a {!Trace} span when enabled, plainly
    otherwise. *)

type counter = { cname : string; mutable n : int }

type dist = {
  dname : string;
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

type peak = { pname : string; mutable pmax : int }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let dists : (string, dist) Hashtbl.t = Hashtbl.create 32
let peaks : (string, peak) Hashtbl.t = Hashtbl.create 16

(* One lock for the whole registry and every update.  Recording from
   netcalc.par worker domains would otherwise lose increments (and
   corrupt the Hashtbls on registration); a single uncontended
   lock/unlock is tens of nanoseconds, far below the min-plus
   operations being counted, and recording only happens when Obs is
   enabled anyway.  (Per-domain buffers merged at report time would
   shave the contention, at the price of snapshot consistency; revisit
   if a profile ever shows this lock.) *)
let m = Obs_sync.create ()

let counter name =
  Obs_sync.with_lock m (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { cname = name; n = 0 } in
          Hashtbl.replace counters name c;
          c)

let incr c = Obs_sync.with_lock m (fun () -> c.n <- c.n + 1)

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters are monotone (n < 0)";
  Obs_sync.with_lock m (fun () -> c.n <- c.n + n)

let value c = Obs_sync.with_lock m (fun () -> c.n)
let counter_name c = c.cname

let dist name =
  Obs_sync.with_lock m (fun () ->
      match Hashtbl.find_opt dists name with
      | Some d -> d
      | None ->
          let d =
            { dname = name; count = 0; sum = 0.; vmin = infinity;
              vmax = neg_infinity }
          in
          Hashtbl.replace dists name d;
          d)

let observe d v =
  Obs_sync.with_lock m (fun () ->
      d.count <- d.count + 1;
      d.sum <- d.sum +. v;
      if v < d.vmin then d.vmin <- v;
      if v > d.vmax then d.vmax <- v)

let peak name =
  Obs_sync.with_lock m (fun () ->
      match Hashtbl.find_opt peaks name with
      | Some p -> p
      | None ->
          let p = { pname = name; pmax = 0 } in
          Hashtbl.replace peaks name p;
          p)

let observe_peak p v =
  Obs_sync.with_lock m (fun () -> if v > p.pmax then p.pmax <- v)

let peak_value p = Obs_sync.with_lock m (fun () -> p.pmax)
let peak_name p = p.pname

type dist_stats = {
  count : int;
  sum : float;
  mean : float;
  dmin : float;
  dmax : float;
}

(* Callers must hold [m]. *)
let dist_stats_unlocked (d : dist) =
  {
    count = d.count;
    sum = d.sum;
    mean = (if d.count = 0 then nan else d.sum /. float_of_int d.count);
    dmin = d.vmin;
    dmax = d.vmax;
  }

let dist_stats d = Obs_sync.with_lock m (fun () -> dist_stats_unlocked d)
let dist_name d = d.dname

let reset () =
  Obs_sync.with_lock m (fun () ->
      Hashtbl.iter (fun _ c -> c.n <- 0) counters;
      Hashtbl.iter
        (fun _ (d : dist) ->
          d.count <- 0;
          d.sum <- 0.;
          d.vmin <- infinity;
          d.vmax <- neg_infinity)
        dists;
      Hashtbl.iter (fun _ (p : peak) -> p.pmax <- 0) peaks)

type snapshot = {
  counters : (string * int) list;
  dists : (string * dist_stats) list;
  peaks : (string * int) list;
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun name v acc -> (name, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot () =
  Obs_sync.with_lock m (fun () ->
      {
        counters = sorted_bindings counters (fun c -> c.n);
        dists = sorted_bindings dists dist_stats_unlocked;
        peaks = sorted_bindings peaks (fun p -> p.pmax);
      })

let to_table ?(all = false) () =
  let s = snapshot () in
  let tbl =
    Table.create
      ~header:[ "metric"; "kind"; "count"; "sum"; "mean"; "min"; "max" ]
  in
  List.iter
    (fun (name, n) ->
      if all || n > 0 then
        Table.add_row tbl [ name; "counter"; string_of_int n ])
    s.counters;
  List.iter
    (fun (name, (st : dist_stats)) ->
      if all || st.count > 0 then
        Table.add_row tbl
          [
            name; "dist"; string_of_int st.count; Table.float_cell st.sum;
            Table.float_cell st.mean; Table.float_cell st.dmin;
            Table.float_cell st.dmax;
          ])
    s.dists;
  List.iter
    (fun (name, v) ->
      if all || v > 0 then
        Table.add_row tbl [ name; "peak"; ""; ""; ""; ""; string_of_int v ])
    s.peaks;
  tbl

let render () = Table.to_string (to_table ())

(* OCaml 4.x backend of Obs_sync: single-threaded recording (the
   netcalc.par fallback is sequential), so locks are free and the
   "domain-local" slot is one lazily initialized value. *)

type mutex = unit

let create () = ()
let with_lock () f = f ()

type 'a local = 'a Lazy.t

let make_local init = lazy (init ())
let get_local l = Lazy.force l

type event = { name : string; ts_us : float; dur_us : float; depth : int }

let t0 = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. t0) *. 1e6
let now_s () = now_us () /. 1e6

(* Ring buffer of completed events, newest kept.  Allocated lazily on
   the first record so that processes that never enable observability
   (the default) do not pay for a large array at startup.  Ring,
   counters and aggregates are shared across domains and guarded by
   [m]: netcalc.par workers record spans concurrently, and an unlocked
   ring would tear its indices. *)
let m = Obs_sync.create ()
let cap =
  ref 65536
[@@lint.waive
    "cache-key: trace ring capacity; observability state never feeds back \
     into computed bounds"]
let ring : event option array ref = ref [||]
let write_idx =
  ref 0
[@@lint.waive
    "cache-key: trace ring cursor; observability state never feeds back \
     into computed bounds"]
let stored =
  ref 0
[@@lint.waive
    "cache-key: trace ring counter; observability state never feeds back \
     into computed bounds"]
let dropped_count =
  ref 0
[@@lint.waive
    "cache-key: trace ring counter; observability state never feeds back \
     into computed bounds"]

(* Open spans, innermost first — per domain.  Span nesting is a
   property of one thread of control: a worker's spans must pop in the
   worker's own LIFO order, never interleave with another domain's.
   The recorded [depth] is likewise the domain-local nesting depth. *)
let stack = Obs_sync.make_local (fun () -> ref [])

(* Exact per-name aggregates, immune to ring eviction. *)
type agg = { calls : int; total_us : float; max_us : float }

let aggs : (string, agg) Hashtbl.t = Hashtbl.create 32

let clear () =
  Obs_sync.with_lock m (fun () ->
      ring := [||];
      write_idx := 0;
      stored := 0;
      dropped_count := 0;
      Hashtbl.reset aggs);
  (* Only the calling domain's open spans can be dropped; other
     domains' stacks are unreachable by design (and a worker mid-span
     during clear is a caller bug). *)
  Obs_sync.get_local stack := []

let capacity () = Obs_sync.with_lock m (fun () -> !cap)

let set_capacity n =
  if n <= 0 then invalid_arg "Trace.set_capacity: capacity must be positive";
  Obs_sync.with_lock m (fun () -> cap := n);
  clear ()

let record ev =
  Obs_sync.with_lock m (fun () ->
      if Array.length !ring <> !cap then ring := Array.make !cap None;
      let r = !ring in
      if r.(!write_idx) <> None then Stdlib.incr dropped_count
      else Stdlib.incr stored;
      r.(!write_idx) <- Some ev;
      write_idx := (!write_idx + 1) mod !cap;
      let prev =
        match Hashtbl.find_opt aggs ev.name with
        | Some a -> a
        | None -> { calls = 0; total_us = 0.; max_us = 0. }
      in
      Hashtbl.replace aggs ev.name
        {
          calls = prev.calls + 1;
          total_us = prev.total_us +. ev.dur_us;
          max_us = Float.max prev.max_us ev.dur_us;
        })

let begin_span name =
  let st = Obs_sync.get_local stack in
  st := (name, now_us ()) :: !st

let end_span () =
  let st = Obs_sync.get_local stack in
  match !st with
  | [] -> invalid_arg "Trace.end_span: no open span"
  | (name, start) :: rest ->
      st := rest;
      record
        {
          name;
          ts_us = start;
          dur_us = now_us () -. start;
          depth = List.length rest;
        }

let with_span name f =
  begin_span name;
  match f () with
  | v ->
      end_span ();
      v
  | exception e ->
      end_span ();
      raise e

let depth () = List.length !(Obs_sync.get_local stack)

let events () =
  (* Completion order: from the oldest live slot to the newest.  When
     the ring has wrapped, the oldest slot is the one about to be
     overwritten, i.e. [write_idx]. *)
  Obs_sync.with_lock m (fun () ->
      let r = !ring in
      let start = if !stored < !cap then 0 else !write_idx in
      let out = ref [] in
      for i = 0 to !stored - 1 do
        match r.((start + i) mod !cap) with
        | Some ev -> out := ev :: !out
        | None -> ()
      done;
      List.rev !out)

let dropped () = Obs_sync.with_lock m (fun () -> !dropped_count)

let aggregates () =
  Obs_sync.with_lock m (fun () ->
      Hashtbl.fold (fun name a acc -> (name, a) :: acc) aggs [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let summary_table () =
  let tbl =
    Table.create ~header:[ "span"; "calls"; "total ms"; "mean ms"; "max ms" ]
  in
  List.iter
    (fun (name, a) ->
      let ms us = us /. 1e3 in
      Table.add_row tbl
        [
          name; string_of_int a.calls; Table.float_cell (ms a.total_us);
          Table.float_cell (ms (a.total_us /. float_of_int a.calls));
          Table.float_cell (ms a.max_us);
        ])
    (aggregates ());
  tbl

(* Chrome trace-event JSON.  Only strings we emit are span names, but
   escape fully so arbitrary labels cannot corrupt the file. *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_chrome_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"netcalc\",\"ph\":\"X\",\"ts\":%.3f,\
            \"dur\":%.3f,\"pid\":1,\"tid\":1,\"args\":{\"depth\":%d}}"
           (json_escape ev.name) ev.ts_us ev.dur_us ev.depth))
    (events ());
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let save_chrome_json path =
  let oc = open_out path in
  output_string oc (to_chrome_json ());
  close_out oc

let enabled () = !Obs.on
let count c = if !Obs.on then Metrics.incr c
let count_n c n = if !Obs.on then Metrics.add c n
let observe d v = if !Obs.on then Metrics.observe d v
let span name f = if !Obs.on then Trace.with_span name f else f ()

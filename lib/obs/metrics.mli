(** Process-global registry of named counters and value distributions.

    Instrumented modules create their counters once at module
    initialization ([let c = Metrics.counter "pwl.conv.calls"]) and
    record through {!Prof} on the hot path; recording is a single field
    update, O(1) and allocation-free.  The registry itself (name
    lookup) is only touched at creation and rendering time.

    Names are dotted paths by convention: [pwl.conv.calls],
    [engine.flow_delay.ns], [sim.heap.depth].  Counters are monotone
    between {!reset}s; distributions keep count/sum/min/max (enough for
    mean and extremes without storing samples). *)

type counter
type dist
type peak

val counter : string -> counter
(** Find-or-create the counter with this name.  The same name always
    returns the same counter. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** [add c n] requires [n >= 0] (counters are monotone); negative
    increments raise [Invalid_argument]. *)

val value : counter -> int
val counter_name : counter -> string

val dist : string -> dist
(** Find-or-create the distribution with this name. *)

val observe : dist -> float -> unit

type dist_stats = {
  count : int;
  sum : float;
  mean : float;
  dmin : float;  (** [infinity] when empty *)
  dmax : float;  (** [neg_infinity] when empty *)
}

val dist_stats : dist -> dist_stats
val dist_name : dist -> string

val peak : string -> peak
(** Find-or-create the high-watermark gauge with this name.  A peak
    keeps the largest value ever observed since the last {!reset}
    ([pwl.segments.max] — the peak live-curve size — is one). *)

val observe_peak : peak -> int -> unit
(** Raise the recorded maximum to [v] if larger; no-op otherwise. *)

val peak_value : peak -> int
val peak_name : peak -> string

val reset : unit -> unit
(** Zero every counter and empty every distribution.  Registered names
    survive (the counter/dist values held by instrumented modules stay
    valid). *)

type snapshot = {
  counters : (string * int) list;      (** sorted by name *)
  dists : (string * dist_stats) list;  (** sorted by name *)
  peaks : (string * int) list;         (** sorted by name *)
}

val snapshot : unit -> snapshot

val to_table : ?all:bool -> unit -> Table.t
(** One row per metric, sorted by name: columns [metric], [kind],
    [count], [sum], [mean], [min], [max].  Counters fill [count] only;
    peaks fill [max] only.  By default rows with zero count (zero
    value, for peaks) are omitted; pass [~all:true] to keep them. *)

val render : unit -> string
(** [Table.to_string (to_table ())]. *)

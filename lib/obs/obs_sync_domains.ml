(* OCaml >= 5.0 backend of Obs_sync: real mutexes, Domain.DLS slots. *)

type mutex = Mutex.t

let create () = Mutex.create ()

let with_lock m f =
  Mutex.lock m;
  match f () with
  | v ->
      Mutex.unlock m;
      v
  | exception e ->
      Mutex.unlock m;
      raise e

type 'a local = 'a Domain.DLS.key

let make_local init = Domain.DLS.new_key init
let get_local k = Domain.DLS.get k

let on =
  ref
    (match Sys.getenv_opt "NETCALC_OBS" with
    | Some ("1" | "true" | "yes") -> true
    | Some _ | None -> false)
[@@lint.domain_safe
  "single boolean toggled from the main domain before parallel regions; a \
   stale read only delays when recording starts, never corrupts state"]
[@@lint.waive
    "cache-key: observability switch; it gates metric recording only and \
     never influences computed bounds"]

let enabled () = !on
let enable () = on := true
let disable () = on := false

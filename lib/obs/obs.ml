let on =
  ref
    (match Sys.getenv_opt "NETCALC_OBS" with
    | Some ("1" | "true" | "yes") -> true
    | Some _ | None -> false)

let enabled () = !on
let enable () = on := true
let disable () = on := false

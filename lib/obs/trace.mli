(** Nestable timing spans with a bounded ring buffer and a Chrome
    [trace_event] exporter.

    Spans nest on an explicit stack: {!begin_span} pushes, {!end_span}
    pops the innermost open span and records a completed event, so
    closing is LIFO by construction.  Prefer {!with_span}, which closes
    on exceptions too.  Completed events land in a ring buffer (newest
    kept, oldest dropped once {!capacity} is exceeded) for export, and
    in an exact per-name aggregate (calls / total / max duration) that
    is immune to ring drops.

    {!to_chrome_json} renders the buffer in the Chrome trace-event
    format (ph = "X" complete events, microsecond timestamps), which
    [chrome://tracing] and Perfetto open directly.

    Concurrency: the open-span stack (and hence {!depth} and the
    recorded nesting depth) is {e per domain}, so netcalc.par workers
    each keep their own well-nested spans; the completed-event ring
    and the per-name aggregates are shared and lock-guarded, so
    {!events}, {!aggregates} and {!summary_table} see every domain's
    spans.  {!clear} empties only the calling domain's open-span
    stack (call it between parallel regions, not inside one). *)

type event = {
  name : string;
  ts_us : float;   (** start, microseconds since process start *)
  dur_us : float;
  depth : int;     (** nesting depth at the time the span was open *)
}

val now_us : unit -> float
(** Elapsed {e wall-clock} microseconds since process start — the
    clock every span timestamp uses.  Exposed so other timing sites
    (e.g. [Engine.flow_delay], the bench harness) share one clock:
    unlike [Sys.time], which counts CPU seconds of the whole process
    and therefore over-reports by ~[jobs]x once netcalc.par domains
    run concurrently, this measures real latency. *)

val now_s : unit -> float
(** [now_us () /. 1e6], for callers reporting seconds. *)

val begin_span : string -> unit
val end_span : unit -> unit
(** @raise Invalid_argument when no span is open. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f ()]; the span is closed even when [f]
    raises. *)

val depth : unit -> int
(** Number of currently open spans. *)

val events : unit -> event list
(** Completed events still in the ring, in completion order. *)

val dropped : unit -> int
(** Events evicted from the ring since the last {!clear}. *)

val capacity : unit -> int

val set_capacity : int -> unit
(** Resize the ring (clears it).  @raise Invalid_argument on [n <= 0]. *)

val clear : unit -> unit
(** Empty the ring, the aggregates and the open-span stack. *)

type agg = { calls : int; total_us : float; max_us : float }

val aggregates : unit -> (string * agg) list
(** Exact per-name totals over all completed spans, sorted by name. *)

val summary_table : unit -> Table.t
(** Per-name [span | calls | total ms | mean ms | max ms] rows. *)

val to_chrome_json : unit -> string
(** The ring as [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)

val save_chrome_json : string -> unit
(** Write {!to_chrome_json} to a file. *)

(** Synchronization shims that make [netcalc.obs] safe under
    concurrent recording from [netcalc.par] worker domains.

    Selected at build time (see the dune rules in this directory):
    OCaml 5 gets real [Mutex]es and [Domain.DLS]-backed domain-local
    slots; OCaml 4.x — where netcalc.par is sequential and only one
    thread ever records — gets free no-op locks and a single shared
    slot.  Instrumented modules write against this interface and stay
    identical across both compilers. *)

type mutex

val create : unit -> mutex

val with_lock : mutex -> (unit -> 'a) -> 'a
(** Run the thunk holding the lock; released on exception. *)

type 'a local
(** A per-domain slot (one shared slot on the sequential backend). *)

val make_local : (unit -> 'a) -> 'a local
(** [make_local init] creates the slot; [init] runs once per domain on
    first access (once overall, sequentially, on OCaml 4.x). *)

val get_local : 'a local -> 'a
(** The calling domain's value. *)

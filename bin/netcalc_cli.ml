(* netcalc — command-line front end.

   Subcommands:
     tandem    delay bounds for Connection 0 of the paper's tandem
     sweep     load sweep over all methods (one figure's worth of data)
     simulate  greedy packet simulation of the tandem, bounds vs observed
     fluid     exact fluid tightness probe (no packetization slack)
     random    analyze a random feedforward network
     analyze   analyze a scenario file (with optional full report)
     ring      fixed-point analysis of a cyclic ring
     sp        static-priority tandem (the Sec. 5 extension)
     dot       emit a routing graph (tandem or corpus family) as Graphviz
     scale     streaming frontier analysis of a corpus-family topology
     admit     batch admission control over a scenario file
     serve     online admission-control service (NDJSON line protocol) *)

open Cmdliner

let hops_arg =
  Arg.(value & opt int 4 & info [ "n"; "hops" ] ~docv:"N"
         ~doc:"Number of 3x3 switches in the tandem.")

let util_arg =
  Arg.(value & opt float 0.6 & info [ "u"; "utilization" ] ~docv:"U"
         ~doc:"Internal link utilization, in (0, 1).")

let sigma_arg =
  Arg.(value & opt float 1. & info [ "sigma" ] ~docv:"S"
         ~doc:"Token bucket burst of every source.")

let peak_arg =
  Arg.(value & opt float 1. & info [ "peak" ] ~docv:"P"
         ~doc:"Source peak rate (use 'inf' semantics with a large value; \
               the paper uses the link rate 1).")

let link_cap_arg =
  Arg.(value & flag & info [ "link-cap" ]
         ~doc:"Enable the link-capacity sharpening (ablation).")

let options_of link_cap =
  if link_cap then Options.sharpened else Options.default

let methods_table net ~flow ~options =
  let tbl =
    Table.create ~header:[ "method"; "delay bound"; "R vs Decomposed" ]
  in
  let dd = Engine.flow_delay ~options net Engine.Decomposed flow in
  List.iter
    (fun m ->
      let d =
        Engine.flow_delay ~options ~strategy:(Pairing.Along_route flow) net m
          flow
      in
      Table.add_row tbl
        [
          Engine.method_name m;
          Table.float_cell d;
          (if m = Engine.Decomposed then "-"
           else Table.float_cell (Engine.relative_improvement dd d));
        ])
    Engine.all_methods;
  tbl

let tandem_cmd =
  let run n u sigma peak link_cap () =
    let t = Tandem.make ~n ~utilization:u ~sigma ~peak () in
    Printf.printf
      "Tandem of %d switches (Fig. 3), U = %g, sigma = %g, peak = %g\n\
       Connection 0 end-to-end delay bounds:\n\n"
      n u sigma peak;
    Table.print (methods_table t.network ~flow:0 ~options:(options_of link_cap))
  in
  ("tandem", "Delay bounds for Connection 0 of the tandem",
   Term.(const run $ hops_arg $ util_arg $ sigma_arg $ peak_arg $ link_cap_arg))

let sweep_cmd =
  let run n sigma peak link_cap () =
    let options = options_of link_cap in
    let tbl =
      Table.create
        ~header:[ "U"; "Decomposed"; "Service Curve"; "Integrated"; "FIFO-theta" ]
    in
    List.iter
      (fun u ->
        let t = Tandem.make ~n ~utilization:u ~sigma ~peak () in
        let c =
          Engine.compare_all ~options ~strategy:(Pairing.Along_route 0)
            t.network 0
        in
        Table.add_floats tbl
          [ u; c.decomposed; c.service_curve; c.integrated; c.fifo_theta ])
      (Sweep.steps ~lo:0.1 ~hi:0.9 ~step:0.1);
    Printf.printf "Load sweep, tandem n = %d:\n\n" n;
    Table.print tbl
  in
  ("sweep", "Sweep the load and compare all methods",
   Term.(const run $ hops_arg $ sigma_arg $ peak_arg $ link_cap_arg))

let simulate_cmd =
  let horizon_arg =
    Arg.(value & opt float 400. & info [ "horizon" ] ~docv:"T"
           ~doc:"Source emission horizon.")
  in
  let packet_arg =
    Arg.(value & opt float 0.25 & info [ "packet-size" ] ~docv:"L"
           ~doc:"Packet size (must be at most sigma).")
  in
  let run n u sigma horizon packet_size () =
    (* Packetized sources cannot meet a finite fluid peak-rate envelope;
       simulate against peak-free sources (see Validate). *)
    let t = Tandem.make ~n ~utilization:u ~sigma ~peak:infinity () in
    let net = t.network in
    let integ = Integrated.analyze ~strategy:(Pairing.Along_route 0) net in
    let config = { Sim.default_config with horizon; packet_size } in
    let reports =
      Validate.check ~config ~bounds:(Integrated.all_flow_delays integ) net
    in
    let tbl =
      Table.create
        ~header:[ "flow"; "observed max"; "integrated bound"; "slack" ]
    in
    List.iter
      (fun (r : Validate.report) ->
        Table.add_row tbl
          [
            (Network.flow net r.flow).Flow.name;
            Table.float_cell r.observed;
            Table.float_cell r.bound;
            Table.float_cell r.slack;
          ])
      reports;
    Printf.printf
      "Greedy simulation of the tandem (n = %d, U = %g, peak-free sources):\n\n"
      n u;
    Table.print tbl;
    match Validate.violations reports with
    | [] -> print_endline "\nAll bounds hold."
    | v -> Printf.printf "\n*** %d VIOLATION(S) ***\n" (List.length v)
  in
  ("simulate", "Validate bounds against a greedy simulation",
   Term.(const run $ hops_arg $ util_arg $ sigma_arg $ horizon_arg $ packet_arg))

let random_cmd =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")
  in
  let flows_arg =
    Arg.(value & opt int 8 & info [ "flows" ] ~docv:"K" ~doc:"Number of flows.")
  in
  let layers_arg =
    Arg.(value & opt int 3 & info [ "layers" ] ~docv:"L" ~doc:"Layers.")
  in
  let run seed flows layers u link_cap () =
    let net =
      Randomnet.generate
        { Randomnet.default with seed; num_flows = flows; layers;
          utilization = u }
    in
    let options = options_of link_cap in
    let dd = Decomposed.analyze ~options net in
    let integ = Integrated.analyze ~options ~strategy:Pairing.Greedy net in
    let tbl =
      Table.create ~header:[ "flow"; "hops"; "Decomposed"; "Integrated"; "R" ]
    in
    List.iter
      (fun (f : Flow.t) ->
        let d = Decomposed.flow_delay dd f.id in
        let i = Integrated.flow_delay integ f.id in
        Table.add_row tbl
          [
            f.name;
            string_of_int (List.length f.route);
            Table.float_cell d;
            Table.float_cell i;
            Table.float_cell (Engine.relative_improvement d i);
          ])
      (Network.flows net);
    Format.printf "%a@.@." Network.pp net;
    Table.print tbl
  in
  ("random", "Analyze a random feedforward network",
   Term.(const run $ seed_arg $ flows_arg $ layers_arg $ util_arg $ link_cap_arg))

let analyze_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Scenario file (see the Scenario module for the format).")
  in
  let report_arg =
    Arg.(value & flag & info [ "report" ]
           ~doc:"Print the full per-hop report instead of the summary table.")
  in
  let run file report link_cap () =
    let net =
      try Scenario.load file
      with Scenario.Parse_error (line, msg) ->
        Printf.eprintf "%s:%d: %s\n" file line msg;
        exit 1
    in
    let options = options_of link_cap in
    if report && Network.is_feedforward net then begin
      print_string (Report.decomposed (Decomposed.analyze ~options net));
      print_newline ();
      print_string
        (Report.integrated (Integrated.analyze ~options ~strategy:Pairing.Greedy net))
    end
    else begin
    Format.printf "%a@.@." Network.pp net;
    if Network.is_feedforward net then begin
      let dd = Decomposed.analyze ~options net in
      let integ = Integrated.analyze ~options ~strategy:Pairing.Greedy net in
      let tbl =
        Table.create
          ~header:[ "flow"; "hops"; "Decomposed"; "Integrated"; "R"; "deadline ok" ]
      in
      List.iter
        (fun (f : Flow.t) ->
          let d = Decomposed.flow_delay dd f.id in
          let i = Integrated.flow_delay integ f.id in
          Table.add_row tbl
            [
              f.name;
              string_of_int (List.length f.route);
              Table.float_cell d;
              Table.float_cell i;
              Table.float_cell (Engine.relative_improvement d i);
              (match f.deadline with
              | None -> "-"
              | Some dl -> if i <= dl then "yes" else "NO");
            ])
        (Network.flows net);
      Table.print tbl
    end
    else begin
      print_endline
        "Routing graph has cycles: using the fixed-point (feedback) engine.";
      let fp = Fixed_point.analyze ~options net in
      Printf.printf "Converged: %b after %d iteration(s)\n\n"
        (Fixed_point.converged fp) (Fixed_point.iterations fp);
      let tbl = Table.create ~header:[ "flow"; "hops"; "bound" ] in
      List.iter
        (fun (f : Flow.t) ->
          Table.add_row tbl
            [
              f.name;
              string_of_int (List.length f.route);
              Table.float_cell (Fixed_point.flow_delay fp f.id);
            ])
        (Network.flows net);
      Table.print tbl
    end
    end
  in
  ("analyze", "Analyze a network described in a scenario file",
   Term.(const run $ file_arg $ report_arg $ link_cap_arg))

let ring_cmd =
  let ring_n =
    Arg.(value & opt int 6 & info [ "n" ] ~docv:"N" ~doc:"Ring size.")
  in
  let ring_hops =
    Arg.(value & opt int 3 & info [ "ring-hops" ] ~docv:"H"
           ~doc:"Hops each flow travels around the ring.")
  in
  let run n hops u () =
    let r = Ring.make ~n ~hops ~utilization:u () in
    let fp = Fixed_point.analyze r.network in
    Printf.printf
      "Ring of %d servers, %d hops per flow, U = %g\nConverged: %b after %d \
       iteration(s)\n"
      n hops u (Fixed_point.converged fp) (Fixed_point.iterations fp);
    if Fixed_point.converged fp then
      Printf.printf "Per-flow end-to-end bound: %s\n"
        (Table.float_cell (Fixed_point.flow_delay fp 0))
    else
      print_endline
        "The decomposition fixed point diverges (feedback instability); no \
         finite bound."
  in
  ("ring", "Fixed-point analysis of a cyclic ring network",
   Term.(const run $ ring_n $ ring_hops $ util_arg))

let sp_cmd =
  let run n u () =
    let t =
      Tandem.make ~n ~utilization:u ~discipline:Discipline.Static_priority ()
    in
    let net = t.network in
    let dd = Decomposed.analyze net in
    let sp = Integrated_sp.analyze ~strategy:(Pairing.Along_route 0) net in
    Printf.printf
      "Static-priority tandem (n = %d, U = %g); priorities: A = 0 (urgent),        conn0 = 1, B = 2:

"
      n u;
    let tbl =
      Table.create
        ~header:[ "flow"; "prio"; "SP-decomposed"; "SP-integrated"; "R" ]
    in
    List.iter
      (fun (f : Flow.t) ->
        let d = Decomposed.flow_delay dd f.id in
        let i = Integrated_sp.flow_delay sp f.id in
        Table.add_row tbl
          [
            f.name;
            string_of_int f.priority;
            Table.float_cell d;
            Table.float_cell i;
            Table.float_cell (Engine.relative_improvement d i);
          ])
      (Network.flows net);
    Table.print tbl
  in
  ("sp", "Static-priority tandem: integrated extension vs decomposition",
   Term.(const run $ hops_arg $ util_arg))

let fluid_cmd =
  let tries_arg =
    Arg.(value & opt int 8 & info [ "tries" ] ~docv:"K"
           ~doc:"Number of phase-randomized fluid scenarios.")
  in
  let run n u tries () =
    let t = Tandem.make ~n ~utilization:u ~peak:infinity () in
    let net = t.network in
    let observed = Fluid.phase_search ~tries net in
    let integ = Integrated.analyze ~strategy:(Pairing.Along_route 0) net in
    let dd = Decomposed.analyze net in
    Printf.printf
      "Exact fluid scenarios (%d phase draws) on the tandem (n = %d, U = %g):\n\n"
      tries n u;
    let tbl =
      Table.create
        ~header:[ "flow"; "fluid max"; "D_I"; "obs/D_I"; "D_D"; "obs/D_D" ]
    in
    List.iter
      (fun (id, obs) ->
        let f = Network.flow net id in
        let di = Integrated.flow_delay integ id in
        let d = Decomposed.flow_delay dd id in
        Table.add_row tbl
          [
            f.Flow.name;
            Table.float_cell obs;
            Table.float_cell di;
            Table.float_cell (obs /. di);
            Table.float_cell d;
            Table.float_cell (obs /. d);
          ])
      observed;
    Table.print tbl;
    print_endline
      "\nFluid scenarios conform to the analytic envelopes exactly, so \
       obs/D is a\ntrue lower estimate of each bound's tightness."
  in
  ("fluid", "Exact fluid tightness probe for the tandem (no packetization)",
   Term.(const run $ hops_arg $ util_arg $ tries_arg))

(* Scenario-corpus selectors, shared by `dot` and `scale`. *)
let family_choices = List.map (fun f -> (Corpus.to_string f, f)) Corpus.all

let family_arg =
  Arg.(value & opt (some (enum family_choices)) None
       & info [ "family" ] ~docv:"FAMILY"
           ~doc:"Generate a scenario-corpus topology instead of the tandem: \
                 $(b,leaf-spine), $(b,fat-tree), $(b,edge-cloud) or \
                 $(b,heavytail).")

let servers_arg =
  Arg.(value & opt int 1000 & info [ "servers" ] ~docv:"N"
         ~doc:"Target server count for the corpus generator.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
         ~doc:"Generator seed (the corpus is deterministic in \
               family/servers/seed).")

let dot_cmd =
  let max_servers_arg =
    Arg.(value & opt int 2000 & info [ "max-servers" ] ~docv:"N"
           ~doc:"Refuse to dump graphs larger than N servers (Graphviz \
                 itself stops being useful long before the generator does); \
                 raise the limit explicitly to override.")
  in
  let run n u family servers seed max_servers () =
    let net =
      match family with
      | None -> (Tandem.make ~n ~utilization:u ()).Tandem.network
      | Some family -> Corpus.generate ~family ~target_servers:servers ~seed
    in
    let size = Network.size net in
    if size > max_servers then begin
      Printf.eprintf
        "netcalc: refusing to dump %d servers as Graphviz (limit %d).\n\
         Pass --max-servers %d to override.\n"
        size max_servers size;
      exit 1
    end;
    Dot.output_net stdout net
  in
  ("dot", "Emit a routing graph (tandem or corpus family) as Graphviz",
   Term.(const run $ hops_arg $ util_arg $ family_arg $ servers_arg $ seed_arg
         $ max_servers_arg))

let scale_cmd =
  let family_req_arg =
    Arg.(value & opt (enum family_choices) Corpus.Leaf_spine
         & info [ "family" ] ~docv:"FAMILY"
             ~doc:"Corpus family: $(b,leaf-spine), $(b,fat-tree), \
                   $(b,edge-cloud) or $(b,heavytail).")
  in
  let servers_arg =
    Arg.(value & opt int 10000 & info [ "servers" ] ~docv:"N"
           ~doc:"Target server count.")
  in
  let check_arg =
    Arg.(value & flag & info [ "check" ]
           ~doc:"Also run the table-based engine and verify the streaming \
                 bounds are bit-identical (costs the table path's memory; \
                 keep the size moderate).")
  in
  let run family servers seed check link_cap () =
    let options = options_of link_cap in
    let net = Corpus.generate ~family ~target_servers:servers ~seed in
    let t0 = Unix.gettimeofday () in
    let s = Propagation_stream.analyze ~options net in
    let dt = Unix.gettimeofday () -. t0 in
    let st = Propagation_stream.frontier_stats s in
    let delays = Propagation_stream.all_flow_delays s in
    let finite = List.filter (fun (_, d) -> d < infinity) delays in
    let worst = List.fold_left (fun acc (_, d) -> Float.max acc d) 0. finite in
    Printf.printf
      "Streaming analysis of %s (%d servers, %d flows, seed %d):\n\n"
      (Corpus.to_string family) (Network.size net)
      (List.length (Network.flows net)) seed;
    let tbl = Table.create ~header:[ "metric"; "value" ] in
    Table.add_row tbl [ "antichain levels"; string_of_int st.levels ];
    Table.add_row tbl [ "widest antichain"; string_of_int st.widest_antichain ];
    Table.add_row tbl
      [ "total (flow,server) pairs"; string_of_int st.total_pairs ];
    Table.add_row tbl [ "peak live frontier"; string_of_int st.peak_live ];
    Table.add_row tbl [ "envelopes evicted"; string_of_int st.evicted ];
    Table.add_row tbl
      [ "bounded flows"; Printf.sprintf "%d / %d" (List.length finite)
          (List.length delays) ];
    Table.add_row tbl [ "worst bounded delay"; Table.float_cell worst ];
    Table.add_row tbl [ "analysis time (s)"; Printf.sprintf "%.3f" dt ];
    Table.add_row tbl
      [ "servers / s";
        Printf.sprintf "%.0f" (float_of_int (Network.size net) /. dt) ];
    Table.print tbl;
    if check then begin
      let d = Decomposed.analyze ~options net in
      let table_delays =
        List.map (fun (id, _) -> (id, Decomposed.flow_delay d id)) delays
      in
      if delays = table_delays then
        print_endline "\ncheck: streaming bounds bit-identical to the \
                       table-based engine"
      else begin
        print_endline "\ncheck: MISMATCH between streaming and table-based \
                       bounds";
        exit 1
      end
    end
  in
  ("scale",
   "Streaming frontier analysis of a corpus-family topology at scale",
   Term.(const run $ family_req_arg $ servers_arg $ seed_arg $ check_arg
         $ link_cap_arg))

let method_choices =
  [
    ("decomposed", Engine.Decomposed);
    ("service-curve", Engine.Service_curve);
    ("integrated", Engine.Integrated);
    ("integrated-sp", Engine.Integrated_sp);
    ("fifo-theta", Engine.Fifo_theta);
  ]

let load_scenario file =
  try Scenario.load file
  with Scenario.Parse_error (line, msg) ->
    Printf.eprintf "%s:%d: %s\n" file line msg;
    exit 1

let admit_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Scenario file.  Flows carrying a deadline are the admission \
                 candidates (tested in file order); the rest are the standing \
                 population.")
  in
  let method_arg =
    Arg.(value & opt (enum method_choices) Engine.Decomposed
         & info [ "method" ] ~docv:"M"
             ~doc:"Analysis method backing the admission test, one of \
                   $(b,decomposed), $(b,service-curve), $(b,integrated), \
                   $(b,integrated-sp), $(b,fifo-theta).")
  in
  let run file method_ link_cap () =
    let net = load_scenario file in
    let options = options_of link_cap in
    let servers = Network.servers net in
    let all = Network.flows net in
    let base = List.filter (fun (f : Flow.t) -> f.deadline = None) all in
    let candidates = List.filter (fun (f : Flow.t) -> f.deadline <> None) all in
    let outcome = Admission.run ~options ~servers ~base ~candidates ~method_ () in
    let bounds =
      Admission.bounds_for ~options ~servers (base @ outcome.admitted) method_
    in
    let rejected_reason (c : Flow.t) =
      List.find_opt (fun ((f : Flow.t), _) -> f.id = c.id) outcome.rejections
    in
    let admitted_net =
      Network.make ~servers ~flows:(base @ outcome.admitted)
    in
    let tbl =
      Table.create
        ~header:
          [ "candidate"; "deadline"; "buffer"; "verdict"; "bound"; "backlog";
            "reason" ]
    in
    List.iter
      (fun (c : Flow.t) ->
        let deadline =
          match c.deadline with Some d -> Table.float_cell d | None -> "-"
        in
        let budget =
          match c.buffer with Some b -> Table.float_cell b | None -> "-"
        in
        match rejected_reason c with
        | Some (_, reason) ->
            Table.add_row tbl
              [ c.name; deadline; budget; "rejected"; "-"; "-";
                Admission.reason_to_string reason ]
        | None ->
            Table.add_row tbl
              [ c.name; deadline; budget; "admitted";
                Table.float_cell (List.assoc c.id bounds);
                Table.float_cell
                  (Engine.flow_backlog ~options admitted_net method_ c.id);
                "-" ])
      candidates;
    Printf.printf
      "Admission control (%s): %d candidate(s), %d admitted, %d rejected, \
       admitted rate %g\n\n"
      (Engine.method_name method_) (List.length candidates)
      (List.length outcome.admitted) (List.length outcome.rejected)
      outcome.admitted_rate;
    Table.print tbl
  in
  ("admit", "Batch admission control over a scenario's deadline-bearing flows",
   Term.(const run $ file_arg $ method_arg $ link_cap_arg))

let serve_cmd =
  let file_arg =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Scenario file for the initial network.  Defaults to the \
                 paper's tandem built from --hops/--utilization/--sigma/--peak.")
  in
  let engine_choices =
    ("delta", Serve.Delta)
    :: List.map (fun (n, m) -> (n, Serve.Full m)) method_choices
  in
  let engine_arg =
    Arg.(value & opt (enum engine_choices) Serve.Delta
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:"$(b,delta) (default) re-analyzes only the affected \
                   downstream cone per operation; a method name \
                   ($(b,decomposed), $(b,integrated), ...) re-analyzes the \
                   whole network per operation with that method.")
  in
  let stdin_arg =
    Arg.(value & flag & info [ "stdin" ]
           ~doc:"Serve a single session on stdin/stdout (the default \
                 transport when no socket is requested).")
  in
  let unix_arg =
    Arg.(value & opt (some string) None & info [ "unix" ] ~docv:"PATH"
           ~doc:"Listen on a Unix-domain socket at PATH.")
  in
  let tcp_arg =
    Arg.(value & opt (some int) None & info [ "tcp" ] ~docv:"PORT"
           ~doc:"Listen on loopback TCP PORT.")
  in
  let clients_arg =
    Arg.(value & opt (some int) None & info [ "clients" ] ~docv:"N"
           ~doc:"Exit after serving N connections (socket transports only).")
  in
  let run file engine _stdin unix tcp clients n u sigma peak link_cap () =
    let net =
      match file with
      | Some f -> load_scenario f
      | None -> (Tandem.make ~n ~utilization:u ~sigma ~peak ()).Tandem.network
    in
    let t =
      Serve.create ~options:(options_of link_cap) ~mode:engine
        ~servers:(Network.servers net) ~flows:(Network.flows net) ()
    in
    match (unix, tcp) with
    | Some path, _ -> Serve.listen_unix ?clients t ~path
    | None, Some port -> Serve.listen_tcp ?clients t ~port
    | None, None -> Serve.run_channels t stdin stdout
  in
  ("serve", "Online admission-control service over an NDJSON line protocol",
   Term.(const run $ file_arg $ engine_arg $ stdin_arg $ unix_arg $ tcp_arg
         $ clients_arg $ hops_arg $ util_arg $ sigma_arg $ peak_arg
         $ link_cap_arg))

(* Every subcommand is a (name, doc, thunk term) triple so that it can
   be mounted twice: bare under `netcalc`, and wrapped with
   instrumentation under `netcalc profile`. *)
let subcommands =
  [
    tandem_cmd; sweep_cmd; simulate_cmd; random_cmd; analyze_cmd; ring_cmd;
    fluid_cmd; sp_cmd; dot_cmd; scale_cmd; admit_cmd; serve_cmd;
  ]

(* Worker-count option, shared by every subcommand (plain and
   profiled): the analyses fan out on netcalc.par, whose pool size is
   resolved as --jobs > NETCALC_JOBS > hardware count.  Results do not
   depend on the value. *)
let jobs_arg =
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for the parallel analysis pool \
               (netcalc.par).  Defaults to $(b,NETCALC_JOBS) or the \
               hardware-recommended count; results are identical for \
               any value.")

(* Curve-representation backend, shared like --jobs: the engines'
   min-plus kernels run on the selected Curve_repr backend
   (process-global, like the caches it namespaces).  Tables are
   bit-identical between backends on the paper's curves. *)
let curve_backend_arg =
  Arg.(value & opt (some string) None
         & info [ "curve-backend" ] ~docv:"BACKEND"
             ~doc:"Curve representation for the min-plus kernels: \
                   $(b,pwl) (finite piecewise-linear, default) or \
                   $(b,upp) (ultimately pseudo-periodic, \
                   horizon-independent size).  Defaults to \
                   $(b,NETCALC_CURVE_BACKEND) or pwl; bounds are \
                   identical either way.")

let with_globals jobs backend f =
  (match jobs with
  | Some n when n >= 1 -> Par.set_jobs n
  | Some n ->
      Printf.eprintf "netcalc: --jobs expects a positive integer, got %d\n" n;
      exit 1
  | None -> ());
  (match backend with
  | Some s -> (
      match Options.curve_backend_of_string s with
      | Ok b -> Options.set_curve_backend b
      | Error msg ->
          Printf.eprintf "netcalc: --curve-backend: %s\n" msg;
          exit 1)
  | None -> ());
  f ()

let plain_cmd (name, doc, term) =
  Cmd.v (Cmd.info name ~doc)
    Term.(const with_globals $ jobs_arg $ curve_backend_arg $ term)

(* `netcalc profile CMD ARGS...` runs CMD under the netcalc.obs
   instrumentation and appends the operation-cost profile (metrics
   table + per-span timing summary); --trace exports the span ring as
   Chrome trace-event JSON for chrome://tracing / Perfetto. *)
let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace-event JSON file of the recorded spans.")

let metrics_csv_arg =
  Arg.(value & opt (some string) None & info [ "metrics-csv" ] ~docv:"FILE"
         ~doc:"Also write the metrics table as CSV.")

let profiled trace_out metrics_csv f =
  Obs.enable ();
  Metrics.reset ();
  Trace.clear ();
  f ();
  print_newline ();
  print_endline "== netcalc.obs: operation metrics ==";
  Table.print (Metrics.to_table ());
  print_newline ();
  print_endline "== netcalc.obs: timing spans ==";
  Table.print (Trace.summary_table ());
  if Trace.dropped () > 0 then
    Printf.printf "(%d span(s) evicted from the trace ring)\n"
      (Trace.dropped ());
  let write what ?(suffix = "") path save =
    try
      save path;
      Printf.printf "%s written to %s%s\n" what path suffix
    with Sys_error msg ->
      Printf.eprintf "netcalc: cannot write %s: %s\n" what msg;
      exit 1
  in
  (match metrics_csv with
  | Some path ->
      write "metrics CSV" path (fun p ->
          let oc = open_out p in
          output_string oc (Table.to_csv (Metrics.to_table ()));
          close_out oc)
  | None -> ());
  match trace_out with
  | Some path ->
      write "trace" ~suffix:" (open in chrome://tracing)" path
        Trace.save_chrome_json
  | None -> ()

let profiled_cmd (name, doc, term) =
  Cmd.v
    (Cmd.info name ~doc:(doc ^ " (instrumented)"))
    Term.(
      const (fun jobs backend trace csv f ->
          with_globals jobs backend (fun () -> profiled trace csv f))
      $ jobs_arg $ curve_backend_arg $ trace_arg $ metrics_csv_arg $ term)

let profile_cmd =
  Cmd.group
    (Cmd.info "profile"
       ~doc:"Run any analysis subcommand under netcalc.obs instrumentation \
             and report where the time and min-plus operations go")
    (List.map profiled_cmd subcommands)

let () =
  let info =
    Cmd.info "netcalc" ~version:"1.0.0"
      ~doc:"End-to-end delay analysis for feedforward FIFO networks \
            (Li/Bettati/Zhao, ICPP 1999)"
  in
  exit (Cmd.eval (Cmd.group info (profile_cmd :: List.map plain_cmd subcommands)))

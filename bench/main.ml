(* Benchmark harness: regenerates every figure of the paper's
   evaluation (Sec. 4) plus the ablations and validation experiments of
   DESIGN.md, and times the analysis algorithms with Bechamel.

   Usage:
     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- --only fig5  -- one experiment
     dune exec bench/main.exe -- --list       -- list experiment ids
     dune exec bench/main.exe -- --csv out/   -- also write CSV data files
     dune exec bench/main.exe -- --obs        -- per-experiment obs profiles
     dune exec bench/main.exe -- --jobs 4     -- netcalc.par pool size
     dune exec bench/main.exe -- --json out.json -- perf-trajectory JSON
     dune exec bench/main.exe -- --no-incremental -- per-cell scratch sweeps
     dune exec bench/main.exe -- --curve-backend upp -- curve representation
     dune exec bench/main.exe -- --compact-eps 0.1 [--compact-max-segs 64]
                                              -- envelope compaction knob

   Experiment ids: fig4 fig5 fig6 burstiness validation admission
                   burst-propagation ablation-pairing ablation-theta sp
                   tightness feedback edf-allocation randomnet timing
                   serve-churn curves scale

   Independent sweep cells (the (U, n) grids, the per-seed randomnet
   batch, ...) are computed on the netcalc.par pool; all printing stays
   sequential in the original order, so tables are byte-identical at
   any --jobs value.

   Absolute numbers are not expected to match the paper (its closed
   forms come from an unavailable technical report and its y-axes are
   unreadable in the OCR); the reproduced object is the *shape*: who
   wins, by how much, and where the orderings cross.  See
   EXPERIMENTS.md for the side-by-side reading. *)

let loads = Sweep.steps ~lo:0.1 ~hi:0.9 ~step:0.1

(* Analysis options for the sweeps; --compact-eps turns on envelope
   compaction here. *)
let bench_options = ref Options.default

let tandem ?(sigma = 1.) ?(peak = 1.) n u =
  Tandem.make ~n ~utilization:u ~sigma ~peak ()

let delays ?(with_theta = false) n u =
  let t = tandem n u in
  Engine.compare_all ~options:!bench_options ~with_theta
    ~strategy:(Pairing.Along_route 0) t.network 0

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* When --csv DIR is given, every printed table is also written to
   DIR/<name>.csv. *)
let csv_dir : string option ref = ref None

let output ~name tbl =
  Table.print tbl;
  match !csv_dir with
  | Some dir -> Table.save_csv ~dir ~name tbl
  | None -> ()

(* Named scalar results (timings, speedups) an experiment wants in the
   --json trajectory next to its counters; cleared per experiment. *)
let perf_values : (string * float) list ref = ref []
let record_value name v = perf_values := (name, v) :: !perf_values

(* Split [xs] into consecutive chunks of [k]. *)
let rec chunks k xs =
  if xs = [] then []
  else
    let rec take n = function
      | x :: rest when n > 0 ->
          let hd, tl = take (n - 1) rest in
          (x :: hd, tl)
      | rest -> ([], rest)
    in
    let hd, tl = take k xs in
    hd :: chunks k tl

(* Shared layout for the three figures: a delay table with two series
   per hop count, then a relative-improvement table.  The (U, n) grid
   goes through the incremental sweep engine: one shared forward pass
   per load serves every hop-count prefix (and repeated figures reuse
   the memoized passes); with --no-incremental it degrades to one
   scratch analysis per cell on the pool.  Both paths emit cells in
   the same row-major order, byte-identical (pinned by tests). *)
let figure ~name ~hops ~left ~right ~left_name ~right_name ~note () =
  let results =
    Sweep_engine.tandem_grid ~options:!bench_options ~hops ~loads ()
  in
  let cache =
    List.combine loads (chunks (List.length hops) results)
  in
  print_endline "\nEnd-to-end delay bounds:";
  let tbl =
    Table.create
      ~header:
        ("U"
        :: List.concat_map
             (fun n ->
               [
                 Printf.sprintf "%s(%d)" left_name n;
                 Printf.sprintf "%s(%d)" right_name n;
               ])
             hops)
  in
  List.iter
    (fun (u, row) ->
      Table.add_floats tbl
        (u :: List.concat_map (fun c -> [ left c; right c ]) row))
    cache;
  output ~name:(name ^ "-delays") tbl;
  Printf.printf
    "\nRelative improvement R = (%s - %s) / %s of %s over %s:\n" left_name
    right_name left_name right_name left_name;
  let tbl2 =
    Table.create
      ~header:("U" :: List.map (fun n -> Printf.sprintf "R(%d)" n) hops)
  in
  List.iter
    (fun (u, row) ->
      Table.add_floats tbl2
        (u
        :: List.map
             (fun c -> Engine.relative_improvement (left c) (right c))
             row))
    cache;
  output ~name:(name ^ "-improvement") tbl2;
  print_endline note

let fig4 () =
  section "Figure 4 — Decomposed vs Service Curve (tandem, Connection 0)";
  figure ~name:"fig4" ~hops:[ 2; 4; 6; 8 ]
    ~left:(fun (c : Engine.comparison) -> c.service_curve)
    ~right:(fun c -> c.decomposed)
    ~left_name:"D_SC" ~right_name:"D_D"
    ~note:
      "\nExpected shape: the service-curve method degrades sharply as the \
       load grows\n(its leftover rate collapses); for large n at low load \
       the compounding of\nper-server worst cases makes Decomposed slightly \
       worse instead (negative R)."
    ()

let fig5 () =
  section "Figure 5 — Integrated vs Decomposed (tandem, Connection 0)";
  figure ~name:"fig5" ~hops:[ 2; 4; 8 ]
    ~left:(fun (c : Engine.comparison) -> c.decomposed)
    ~right:(fun c -> c.integrated)
    ~left_name:"D_D" ~right_name:"D_I"
    ~note:
      "\nExpected shape: Integrated wins at every point; at low-to-moderate \
       load the\nimprovement grows with the network size."
    ()

let fig6 () =
  section "Figure 6 — Integrated vs Service Curve (tandem, Connection 0)";
  figure ~name:"fig6" ~hops:[ 2; 4; 6; 8 ]
    ~left:(fun (c : Engine.comparison) -> c.service_curve)
    ~right:(fun c -> c.integrated)
    ~left_name:"D_SC" ~right_name:"D_I"
    ~note:
      "\nExpected shape: significant gains everywhere (recall D_SC is \
       itself optimistic\nfor FIFO); the margin narrows only for large \
       systems under high load."
    ()

(* Buffer sizing over the same (U, n) tandem grid as the delay figures:
   Connection 0's buffer requirement (worst per-hop backlog bound,
   minimal per-flow split) under the decomposed and the integrated
   windows.  Served by the same shared sweep passes as fig4-6, so the
   whole grid costs one forward pass per load. *)
let buffers () =
  section "Buffer sizing — Connection 0's per-hop backlog bounds (tandem)";
  let hops = [ 2; 4; 6; 8 ] in
  let results =
    Sweep_engine.tandem_grid ~options:!bench_options ~hops ~loads ()
  in
  let cache = List.combine loads (chunks (List.length hops) results) in
  print_endline "\nBuffer requirement (worst per-hop backlog bound):";
  let tbl =
    Table.create
      ~header:
        ("U"
        :: List.concat_map
             (fun n ->
               [ Printf.sprintf "B_D(%d)" n; Printf.sprintf "B_I(%d)" n ])
             hops)
  in
  List.iter
    (fun (u, row) ->
      Table.add_floats tbl
        (u
        :: List.concat_map
             (fun (c : Engine.comparison) ->
               [ c.decomposed_backlog; c.integrated_backlog ])
             row))
    cache;
  output ~name:"buffers-bounds" tbl;
  print_endline
    "\nRelative improvement R = (B_D - B_I) / B_D of Integrated over \
     Decomposed:";
  let tbl2 =
    Table.create
      ~header:("U" :: List.map (fun n -> Printf.sprintf "R(%d)" n) hops)
  in
  List.iter
    (fun (u, row) ->
      Table.add_floats tbl2
        (u
        :: List.map
             (fun (c : Engine.comparison) ->
               Engine.relative_improvement c.decomposed_backlog
                 c.integrated_backlog)
             row))
    cache;
  output ~name:"buffers-improvement" tbl2;
  (* Every grid cell lands in the --json trajectory (finite by
     stability of the grid), so CI can assert the backlog pipeline
     stays live. *)
  List.iter
    (fun (u, row) ->
      List.iter2
        (fun n (c : Engine.comparison) ->
          let key part =
            Printf.sprintf "buffers.u%.0f.n%d.%s" (100. *. u) n part
          in
          record_value (key "decomposed") c.decomposed_backlog;
          record_value (key "integrated") c.integrated_backlog)
        hops row)
    cache;
  print_endline
    "\nExpected shape: the integrated window never needs more buffer than \
     the\ndecomposed one, and the gap widens with load (burstiness paid \
     once per pair)."

(* ------------------------------------------------------------------ *)
(* Burstiness invariance (paper Sec. 4.1 claim)                        *)
(* ------------------------------------------------------------------ *)

let burstiness () =
  section
    "Burstiness sweep — Sec. 4.1: \"increasing the traffic burstiness has \
     no effect on the relative improvement\"";
  let tbl =
    Table.create ~header:[ "sigma"; "D_D"; "D_I"; "R(D,I)"; "D_SC"; "R(SC,I)" ]
  in
  let rows =
    Par.map
      (fun sigma ->
        let t = tandem ~sigma 4 0.6 in
        let c =
          Engine.compare_all ~options:!bench_options ~with_theta:false
            ~strategy:(Pairing.Along_route 0) t.network 0
        in
        [
          sigma;
          c.decomposed;
          c.integrated;
          Engine.relative_improvement c.decomposed c.integrated;
          c.service_curve;
          Engine.relative_improvement c.service_curve c.integrated;
        ])
      [ 1.; 2.; 4.; 8. ]
  in
  List.iter (Table.add_floats tbl) rows;
  output ~name:"burstiness" tbl;
  print_endline
    "\nExpected shape: absolute delays scale with sigma while both \
     relative-improvement\ncolumns stay (nearly) constant (exactly \
     constant with peak-free sources,\nnearly with the paper's peak-rate-1 \
     clipping)."

(* ------------------------------------------------------------------ *)
(* Validation against the packet simulator                             *)
(* ------------------------------------------------------------------ *)

let validation () =
  section "Validation — analytic bounds vs greedy packet simulation";
  (* Compute both configurations (analysis + simulation) in parallel,
     print in order afterwards. *)
  let computed =
    Par.map
      (fun (n, u) ->
        let t = Tandem.make ~n ~utilization:u ~peak:infinity () in
        let net = t.network in
        let config =
          { Sim.default_config with packet_size = 0.2; horizon = 400. }
        in
        let bounds =
          [
            ("D_D", Decomposed.all_flow_delays (Decomposed.analyze net));
            ( "D_SC",
              Service_curve_method.all_flow_delays
                (Service_curve_method.analyze net) );
            ( "D_I",
              Integrated.all_flow_delays
                (Integrated.analyze ~strategy:(Pairing.Along_route 0) net) );
          ]
        in
        let reports =
          List.map
            (fun (name, b) -> (name, Validate.check ~config ~bounds:b net))
            bounds
        in
        (n, u, Network.flows net, reports))
      [ (2, 0.6); (4, 0.9) ]
  in
  List.iter
    (fun (n, u, flows, reports) ->
      Printf.printf "\nTandem n = %d, U = %g (peak-free sources):\n" n u;
      let tbl =
        Table.create ~header:[ "flow"; "observed"; "D_D"; "D_SC"; "D_I"; "ok" ]
      in
      List.iteri
        (fun i (f : Flow.t) ->
          let row = List.map (fun (_, rs) -> List.nth rs i) reports in
          let observed = (List.hd row).Validate.observed in
          let ok =
            List.for_all (fun (r : Validate.report) -> r.slack >= -1e-6) row
          in
          Table.add_row tbl
            ([ f.Flow.name; Table.float_cell observed ]
            @ List.map
                (fun (r : Validate.report) -> Table.float_cell r.bound)
                row
            @ [ (if ok then "yes" else "VIOLATION") ]))
        flows;
      output ~name:(Printf.sprintf "validation-n%d" n) tbl)
    computed;
  print_endline
    "\nEvery bound must dominate the observed maximum (column ok = yes)."

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let admission () =
  section "Admission control — connections admitted per analysis method";
  let n = 4 in
  let tbl =
    Table.create
      ~header:[ "deadline"; "Service Curve"; "Decomposed"; "Integrated" ]
  in
  List.iter
    (fun deadline ->
      let t = tandem n 0.4 in
      let servers = Network.servers t.network in
      let base = Network.flows t.network in
      let candidates =
        List.init 12 (fun i ->
            Flow.make ~id:(1000 + i)
              ~arrival:(Arrival.paper_source ~sigma:1. ~rho:0.03)
              ~route:(List.init n (fun k -> k))
              ~deadline ())
      in
      let count method_ =
        float_of_int
          (List.length
             (Admission.run ~servers ~base ~candidates ~method_
                ~strategy:(Pairing.Along_route 0) ())
               .admitted)
      in
      Table.add_floats tbl
        [
          deadline;
          count Engine.Service_curve;
          count Engine.Decomposed;
          count Engine.Integrated;
        ])
    [ 16.; 20.; 24.; 30.; 40. ];
  output ~name:"admission" tbl;
  print_endline
    "\nExpected shape: Integrated admits at least as many connections at \
     every\ndeadline, strictly more in the mid range."

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_pairing () =
  section "Ablation — pairing strategy and link-capacity sharpening (n = 8)";
  let tbl =
    Table.create
      ~header:[ "U"; "singletons"; "greedy"; "along-route"; "along+linkcap" ]
  in
  List.iter
    (fun u ->
      let t = tandem 8 u in
      let run ?options strategy =
        Integrated.flow_delay
          (Integrated.analyze ?options ~strategy t.network)
          0
      in
      Table.add_floats tbl
        [
          u;
          run Pairing.Singletons;
          run Pairing.Greedy;
          run (Pairing.Along_route 0);
          run ~options:Options.sharpened (Pairing.Along_route 0);
        ])
    [ 0.2; 0.4; 0.6; 0.8; 0.9 ];
  output ~name:"ablation-pairing" tbl;
  print_endline
    "\nExpected shape: singletons = Algorithm Decomposed (the degenerate \
     case);\npairing along the tagged route captures the delay \
     dependencies; the link-cap\noption sharpens further at no conceptual \
     cost."

let ablation_theta () =
  section
    "Ablation — FIFO service-curve family (theta) vs the paper's methods";
  let tbl =
    Table.create
      ~header:[ "n"; "U"; "D_SC (theta=0)"; "D_theta"; "D_I"; "D_D" ]
  in
  let rows =
    Par.map
      (fun (n, u) ->
        let c = delays ~with_theta:true n u in
        [
          float_of_int n;
          u;
          c.service_curve;
          c.fifo_theta;
          c.integrated;
          c.decomposed;
        ])
      [ (4, 0.3); (4, 0.6); (4, 0.9); (8, 0.3); (8, 0.6); (8, 0.9) ]
  in
  List.iter (Table.add_floats tbl) rows;
  output ~name:"ablation-theta" tbl;
  print_endline
    "\nExpected shape: tuning theta always improves on the theta = 0 \
     leftover curve\n(the paper's induced service curve).  At low load the \
     pairwise Integrated\nmethod still wins; at high load / long paths the \
     theta family overtakes it —\nits end-to-end rate does not degrade with \
     path length, validating the\nservice-curve research line the paper's \
     conclusion anticipates."

(* ------------------------------------------------------------------ *)
(* Burst propagation along the path (mechanism view)                   *)
(* ------------------------------------------------------------------ *)

let burst_propagation () =
  section
    "Burst propagation — Connection 0's envelope burst at each middle port";
  let n = 8 and u = 0.7 in
  let t = tandem n u in
  let net = t.network in
  (* Both analyses are memo hits when the figure sweeps already ran
     (fig4's (0.7, 8) pass is this exact network). *)
  let dd = Decomposed.analyze ~options:!bench_options net in
  let integ =
    Integrated.analyze ~options:!bench_options
      ~strategy:(Pairing.Along_route 0) net
  in
  let tbl =
    Table.create ~header:[ "port"; "Decomposed burst"; "Integrated burst" ]
  in
  List.iter
    (fun sid ->
      let burst_of env = Pwl.eval env 1.0 -. Pwl.final_slope env in
      let integrated_cell =
        (* Inside a pair the integrated method never materializes an
           envelope at the second server — that is precisely the
           integration. *)
        match Integrated.envelope_at integ ~flow:0 ~server:sid with
        | env -> Table.float_cell (burst_of env)
        | exception Not_found -> "(inside pair)"
      in
      Table.add_row tbl
        [
          Printf.sprintf "mid%d" sid;
          Table.float_cell
            (burst_of (Decomposed.envelope_at dd ~flow:0 ~server:sid));
          integrated_cell;
        ])
    t.mid_servers;
  output ~name:"burst-propagation" tbl;
  Printf.printf
    "\n(tandem n = %d, U = %g; burst = intercept of the envelope's final piece.)\nThis is the mechanism behind Figure 5: the decomposition inflates\nConnection 0's burst at every hop, while the integrated pairs charge it\nonce per pair; the gap in the bounds is the accumulated difference.\n"
    n u

(* ------------------------------------------------------------------ *)
(* Static-priority extension (paper Sec. 5 future work)                *)
(* ------------------------------------------------------------------ *)

let sp_extension () =
  section
    "Static-priority extension — Integrated vs Decomposed on the SP tandem \
     (paper Sec. 5 future work)";
  print_endline
    "\nSame Fig. 3 tandem with static-priority servers; priorities: A \
     sessions\nurgent (0), Connection 0 middle (1), B sessions background \
     (2).  Bounds for\nConnection 0 and for a background B session:";
  let tbl =
    Table.create
      ~header:
        [
          "n"; "U"; "conn0 D_D"; "conn0 D_Isp"; "R"; "B1 D_D"; "B1 D_Isp";
        ]
  in
  let rows =
    Par.map
      (fun (n, u) ->
        let t =
          Tandem.make ~n ~utilization:u
            ~discipline:Discipline.Static_priority ()
        in
        let dd = Decomposed.analyze t.network in
        let sp =
          Integrated_sp.analyze ~strategy:(Pairing.Along_route 0) t.network
        in
        let b1 = 4 (* flow id of B1 *) in
        [
          float_of_int n;
          u;
          Decomposed.flow_delay dd 0;
          Integrated_sp.flow_delay sp 0;
          Engine.relative_improvement
            (Decomposed.flow_delay dd 0)
            (Integrated_sp.flow_delay sp 0);
          Decomposed.flow_delay dd b1;
          Integrated_sp.flow_delay sp b1;
        ])
      [ (2, 0.3); (2, 0.7); (4, 0.5); (4, 0.8); (8, 0.6); (8, 0.9) ]
  in
  List.iter (Table.add_floats tbl) rows;
  output ~name:"sp" tbl;
  print_endline
    "\nExpected shape: the pairwise integration carries over to priority \
     classes\n(leftover service curves replace the constant rate) and keeps \
     beating the\ndecomposition, with even larger margins than FIFO at high \
     load — exactly the\nextension the paper announces in its conclusion."

(* ------------------------------------------------------------------ *)
(* EDF deadline allocation (paper ref [28])                            *)
(* ------------------------------------------------------------------ *)

let edf_allocation () =
  section
    "EDF deadline allocation — adaptive vs naive equal split (ref [28])";
  (* A two-hop flow through a hop that two tight pure-burst crosses keep
     busy early; sweep the end-to-end budget. *)
  let make_net deadline =
    let mk ~id ~sigma ~rho ~route ~deadline =
      Flow.make ~id ~arrival:(Arrival.token_bucket ~sigma ~rho ()) ~route
        ~deadline ()
    in
    Network.make
      ~servers:
        (List.init 2 (fun id ->
             Server.make ~id ~rate:1. ~discipline:Discipline.Edf ()))
      ~flows:
        [
          mk ~id:0 ~sigma:1. ~rho:0.05 ~route:[ 0; 1 ] ~deadline;
          mk ~id:1 ~sigma:1. ~rho:0. ~route:[ 0 ] ~deadline:1.;
          mk ~id:2 ~sigma:1. ~rho:0. ~route:[ 0 ] ~deadline:2.;
        ]
  in
  let tbl =
    Table.create
      ~header:[ "budget"; "equal split"; "adaptive"; "adaptive d0"; "d1" ]
  in
  List.iter
    (fun deadline ->
      let net = make_net deadline in
      let a = Edf_allocation.allocate net in
      Table.add_row tbl
        [
          Table.float_cell deadline;
          string_of_bool (Edf_allocation.equal_split_feasible net 0);
          string_of_bool (Edf_allocation.flow_feasible a 0);
          Table.float_cell (Edf_allocation.local_deadline a ~flow:0 ~server:0);
          Table.float_cell (Edf_allocation.local_deadline a ~flow:0 ~server:1);
        ])
    [ 4.0; 4.5; 5.0; 5.5; 6.5; 8.0 ];
  output ~name:"edf-allocation" tbl;
  print_endline
    "\nExpected shape: the adaptive split certifies budgets in a band where the\nequal split fails, by giving the contested first hop the larger share."

(* ------------------------------------------------------------------ *)
(* Feedback (cyclic) networks                                          *)
(* ------------------------------------------------------------------ *)

let feedback () =
  section
    "Feedback — fixed-point analysis of a cyclic ring (paper Sec. 5 \
     limitation)";
  let n = 6 and hops = 4 in
  Printf.printf
    "\nRing of %d rate-1 FIFO servers, each flow riding %d hops; the \
     linearized\nburst recursion has spectral radius U (hops - 1) / 2, so \
     the fixed point\nshould diverge past U = %.3f:\n\n"
    n hops
    (2. /. float_of_int (hops - 1));
  let tbl =
    Table.create ~header:[ "U"; "converged"; "iterations"; "per-flow bound" ]
  in
  let rows =
    Par.map
      (fun u ->
        let r = Ring.make ~n ~hops ~utilization:u () in
        let fp = Fixed_point.analyze ~max_iter:400 r.network in
        [
          Table.float_cell u;
          string_of_bool (Fixed_point.converged fp);
          string_of_int (Fixed_point.iterations fp);
          Table.float_cell (Fixed_point.flow_delay fp 0);
        ])
      [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.65; 0.7; 0.8; 0.9 ]
  in
  List.iter (Table.add_row tbl) rows;
  output ~name:"feedback" tbl;
  print_endline
    "\nExpected shape: finite bounds matching the symmetric closed form\n\
     hops^2 sigma / (1 - U (hops - 1) / 2) up to the threshold, divergence \
     beyond —\nthe feedback effect that keeps Algorithm Integrated \
     restricted to feedforward\nrouting in the paper."

(* ------------------------------------------------------------------ *)
(* Tightness: how close do conforming scenarios get to the bounds?     *)
(* ------------------------------------------------------------------ *)

let tightness () =
  section
    "Tightness — exact fluid scenarios (phase-searched) vs bounds";
  let tbl =
    Table.create
      ~header:
        [ "n"; "U"; "fluid obs"; "D_I"; "obs/D_I"; "D_D"; "obs/D_D" ]
  in
  let rows =
    Par.map
      (fun (n, u) ->
        let t = Tandem.make ~n ~utilization:u ~peak:infinity () in
        let net = t.network in
        let obs = List.assoc 0 (Fluid.phase_search ~tries:10 net) in
        let di =
          Integrated.flow_delay
            (Integrated.analyze ~strategy:(Pairing.Along_route 0) net)
            0
        in
        let dd = Decomposed.flow_delay (Decomposed.analyze net) 0 in
        [ float_of_int n; u; obs; di; obs /. di; dd; obs /. dd ])
      [ (2, 0.4); (2, 0.8); (4, 0.4); (4, 0.8); (8, 0.8) ]
  in
  List.iter (Table.add_floats tbl) rows;
  Table.print tbl;
  (match !csv_dir with Some dir -> Table.save_csv ~dir ~name:"tightness" tbl | None -> ());
  print_endline
    "\nThe fluid executor replays exactly-conforming scenarios (no packetization\nslack), so obs/D is a true lower estimate of each bound's tightness.  The\nintegrated bound is markedly closer to what conforming traffic achieves; on\na 2-server pair with no cross traffic it is attained exactly (tested)."

(* ------------------------------------------------------------------ *)
(* Random-network batch (stress + the pool's bulk workload)            *)
(* ------------------------------------------------------------------ *)

let randomnet () =
  section
    "Random feedforward networks — per-seed batch (methods on layered DAGs)";
  let params seed =
    {
      Randomnet.default with
      layers = 4;
      per_layer = 2;
      num_flows = 12;
      utilization = 0.7;
      seed;
    }
  in
  let seeds = List.init 16 (fun i -> 1 + i) in
  let tbl =
    Table.create ~header:[ "seed"; "D_D"; "D_SC"; "D_I"; "R(D,I)" ]
  in
  (* One independent generated network per seed — the embarrassingly
     parallel batch shape (parameter studies, capacity planning) the
     pool exists for.  Generation is seeded, so any jobs count produces
     the same networks and the same rows. *)
  let rows =
    Par.map
      (fun seed ->
        let net = Randomnet.generate (params seed) in
        let c =
          Engine.compare_all ~with_theta:false
            ~strategy:(Pairing.Along_route 0) net 0
        in
        [
          float_of_int seed;
          c.decomposed;
          c.service_curve;
          c.integrated;
          Engine.relative_improvement c.decomposed c.integrated;
        ])
      seeds
  in
  List.iter (Table.add_floats tbl) rows;
  output ~name:"randomnet" tbl;
  print_endline
    "\nExpected shape: Integrated <= Decomposed on every seed (the pairwise\n\
     integration never loses), with the margin varying by topology draw."

(* ------------------------------------------------------------------ *)
(* Timing (Bechamel)                                                   *)
(* ------------------------------------------------------------------ *)

let timing () =
  section "Timing — analysis cost vs tandem size, and the incremental sweep";
  (* Per-method single-analysis wall time, n in {4, 8, 16, 32}.  The
     memo engine is disabled around the staged runs: this times the
     analyses themselves, not a table lookup.  FIFO-theta's coordinate
     descent re-convolves the whole path per candidate, so its large
     sizes are skipped rather than letting one cell dominate the
     bench's runtime (noted in the table as "-"). *)
  let was_incremental = Incremental.enabled () in
  Incremental.set_enabled false;
  let open Bechamel in
  let sizes = [ 4; 8; 16; 32 ] in
  let theta_sizes = [ 4; 8 ] in
  let methods n =
    let net = (tandem n 0.6).network in
    [
      ( "decomposed",
        Some
          (fun () ->
            ignore (Decomposed.all_flow_delays (Decomposed.analyze net))) );
      ( "service-curve",
        Some
          (fun () ->
            ignore
              (Service_curve_method.all_flow_delays
                 (Service_curve_method.analyze net))) );
      ( "integrated",
        Some
          (fun () ->
            ignore
              (Integrated.all_flow_delays
                 (Integrated.analyze ~strategy:(Pairing.Along_route 0) net)))
      );
      ( "fifo-theta",
        if List.mem n theta_sizes then
          Some
            (fun () ->
              ignore (Fifo_theta.flow_delay (Fifo_theta.analyze net) 0))
        else None );
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let measure name f =
    match Test.elements (Test.make ~name (Staged.stage f)) with
    | [ elt ] -> (
        let raw = Benchmark.run cfg [ instance ] elt in
        match Analyze.OLS.estimates (Analyze.one ols instance raw) with
        | Some [ ns ] -> ns /. 1e6
        | _ -> nan)
    | _ -> nan
  in
  let cells =
    List.map
      (fun n ->
        ( n,
          List.map
            (fun (name, f) -> (name, Option.map (measure name) f))
            (methods n) ))
      sizes
  in
  let tbl =
    Table.create
      ~header:
        ("analysis"
        :: List.map (fun n -> Printf.sprintf "n=%d (ms)" n) sizes)
  in
  List.iter
    (fun m ->
      Table.add_row tbl
        (m
        :: List.map
             (fun (n, row) ->
               match List.assoc m row with
               | Some ms ->
                   record_value (Printf.sprintf "timing.%s.n%d_ms" m n) ms;
                   Printf.sprintf "%.3f" ms
               | None -> "-")
             cells))
    [ "decomposed"; "service-curve"; "integrated"; "fifo-theta" ];
  output ~name:"timing" tbl;
  (* The acceptance measurement: the whole Figure 4-6 grid family,
     incremental engine (one shared pass per load + cross-figure memo)
     vs the per-cell from-scratch path.  Both start from cold memo and
     kernel caches; the produced tables are byte-identical (tested), so
     this is a pure wall-time comparison. *)
  print_endline
    "\nIncremental sweep engine vs from-scratch (fig4 + fig5 + fig6 grids):";
  let fig_grids = [ [ 2; 4; 6; 8 ]; [ 2; 4; 8 ]; [ 2; 4; 6; 8 ] ] in
  let run_grids () =
    List.iter
      (fun hops ->
        ignore
          (Sweep_engine.tandem_grid ~options:!bench_options ~hops ~loads ()))
      fig_grids
  in
  let timed f =
    let t0 = Trace.now_s () in
    f ();
    Trace.now_s () -. t0
  in
  Minplus.cache_clear ();
  let scratch_s = timed run_grids in
  Incremental.set_enabled true (* the toggle clears the memo: cold start *);
  Minplus.cache_clear ();
  let incremental_s = timed run_grids in
  Incremental.set_enabled was_incremental;
  let speedup = scratch_s /. incremental_s in
  record_value "timing.sweep.scratch_s" scratch_s;
  record_value "timing.sweep.incremental_s" incremental_s;
  record_value "timing.sweep.speedup" speedup;
  let tbl2 = Table.create ~header:[ "sweep path"; "wall (s)" ] in
  Table.add_row tbl2 [ "from-scratch"; Printf.sprintf "%.3f" scratch_s ];
  Table.add_row tbl2 [ "incremental"; Printf.sprintf "%.3f" incremental_s ];
  Table.add_row tbl2 [ "speedup"; Printf.sprintf "%.2fx" speedup ];
  output ~name:"timing-sweep" tbl2;
  print_endline
    "\nSingle analyses run in milliseconds even at n = 32 (96 servers) — \
     fast enough\nfor the online admission-control use the paper targets — \
     and the sweep engine\nserves the paper's whole evaluation grid several \
     times faster than per-cell\nrecomputation (the speedup lands in the \
     --json trajectory)."

(* ------------------------------------------------------------------ *)
(* Serve churn: delta re-analysis vs full re-analysis                  *)
(* ------------------------------------------------------------------ *)

let serve_churn () =
  section
    "Serve churn — delta cone re-analysis vs full re-analysis (admission \
     service)";
  (* A deterministic admission-service workload on the paper's tandem:
     short cross sessions arrive near the tail of the chain (small
     downstream cones) and depart after a sliding window of later
     arrivals.  The delta leg runs the Delta_engine; the full leg runs
     the same script through Admission.decide_one (admit) and
     Admission.bounds_for (teardown refresh) — a service that keeps its
     bound table current by re-analyzing the whole network each time.
     The sweep memo is disabled around both legs: churn revisits
     equal-keyed network states, and a memo hit on the full leg would
     time a table lookup instead of an analysis. *)
  let sizes = [ 8; 16; 32 ] in
  let n_ops = 48 in
  let window = 8 in
  let tbl =
    Table.create
      ~header:
        [ "servers"; "ops"; "delta ops/s"; "full ops/s"; "speedup";
          "identical" ]
  in
  List.iter
    (fun n ->
      let t = tandem n 0.5 in
      let servers = Network.servers t.network in
      let base = Network.flows t.network in
      let candidate i =
        let k = n - 2 - (i mod 3) in
        Flow.make ~id:(10000 + i)
          ~arrival:(Arrival.token_bucket ~sigma:1. ~rho:0.005 ~peak:1. ())
          ~route:[ k; k + 1 ] ~deadline:1000. ()
      in
      let timed f =
        let t0 = Trace.now_s () in
        let r = f () in
        (r, Trace.now_s () -. t0)
      in
      let delta_run () =
        let e =
          Delta_engine.create ~options:!bench_options ~servers ~flows:base ()
        in
        let live = Queue.create () in
        let ops = ref 0 in
        for i = 0 to n_ops - 1 do
          (match Delta_engine.admit e (candidate i) with
          | Delta_engine.Admitted _ -> Queue.add (10000 + i) live
          | Delta_engine.Rejected _ -> ());
          incr ops;
          if Queue.length live > window then begin
            ignore (Delta_engine.teardown e (Queue.pop live));
            incr ops
          end
        done;
        (e, !ops)
      in
      let full_run () =
        let flows = ref base in
        let live = Queue.create () in
        let ops = ref 0 in
        for i = 0 to n_ops - 1 do
          let cand = candidate i in
          (match
             Admission.decide_one ~options:!bench_options ~servers
               ~flows:!flows ~candidate:cand ~method_:Engine.Decomposed ()
           with
          | Admission.Accepted _ ->
              flows := !flows @ [ cand ];
              Queue.add cand.Flow.id live
          | Admission.Rejected _ -> ());
          incr ops;
          if Queue.length live > window then begin
            let id = Queue.pop live in
            flows := List.filter (fun (g : Flow.t) -> g.Flow.id <> id) !flows;
            ignore
              (Admission.bounds_for ~options:!bench_options ~servers !flows
                 Engine.Decomposed);
            incr ops
          end
        done;
        (!flows, !ops)
      in
      Incremental.with_enabled false (fun () ->
          let (e, d_ops), delta_s = timed delta_run in
          let (final_flows, _), full_s = timed full_run in
          (* Same script, same decisions (tested), same final population:
             the delta engine's bound table must match a from-scratch
             analysis of it bit for bit. *)
          let scratch =
            Decomposed.all_flow_delays
              (Decomposed.analyze ~options:!bench_options
                 (Network.make ~servers ~flows:final_flows))
          in
          let mine = Delta_engine.all_flow_delays e in
          let identical =
            List.length scratch = List.length mine
            && List.for_all2
                 (fun (i, a) (j, b) ->
                   i = j && Int64.bits_of_float a = Int64.bits_of_float b)
                 scratch mine
          in
          let s = 3 * n in
          let delta_ops_s = float_of_int d_ops /. delta_s in
          let full_ops_s = float_of_int d_ops /. full_s in
          let speedup = delta_ops_s /. full_ops_s in
          record_value (Printf.sprintf "serve.churn.s%d.delta_ops_s" s)
            delta_ops_s;
          record_value (Printf.sprintf "serve.churn.s%d.full_ops_s" s)
            full_ops_s;
          record_value (Printf.sprintf "serve.churn.s%d.speedup" s) speedup;
          Table.add_row tbl
            [
              string_of_int s;
              string_of_int d_ops;
              Printf.sprintf "%.1f" delta_ops_s;
              Printf.sprintf "%.1f" full_ops_s;
              Printf.sprintf "%.2fx" speedup;
              (if identical then "yes" else "NO");
            ]))
    sizes;
  output ~name:"serve-churn" tbl;
  print_endline
    "\nExpected shape: the cone of a tail admit/teardown is a small, \
     size-independent\nslice of the network, so the delta engine's advantage \
     grows with the server\ncount (>= 3x at 96 servers) while column \
     'identical' certifies the reuse is\nbit-exact against from-scratch \
     analysis."

(* Curve-representation A/B: the pwl (finite piecewise-linear) backend
   against the upp (ultimately pseudo-periodic, Nancy-style) backend.
   Two measurements, one per claim (DESIGN.md 15):

   Part 1 — engine dispatch on the paper's own workload (the fig5
   grid).  Every curve there is eventually affine, so the upp backend
   delegates to the same hash-consed Minplus kernels: every float of
   every cell must match bit for bit, and the wall-time gap is the
   dispatch overhead.  The incremental memo is disabled (it namespaces
   keys by backend tag, so it could not leak cells across backends,
   but a warm pwl memo from an earlier figure would make the timing
   comparison meaningless) and the kernel cache starts cold per run.

   Part 2 — representation stress: a unit staircase arrival through a
   faster constant-rate server (Reich's equation) at growing horizons.
   The pwl side must unroll the staircase, so both its input and its
   smoothed output grow linearly with the horizon; the upp side stores
   one segment plus the periodic law at any horizon.  Kernel caches
   are cleared before every repeat so each iteration pays full price;
   'match' certifies both results agree pointwise on a dense grid. *)
let curves () =
  section "Curve backend A/B — pwl (finite) vs upp (pseudo-periodic)";
  let saved = Options.curve_backend () in
  Fun.protect ~finally:(fun () -> Options.set_curve_backend saved)
  @@ fun () ->
  let timed f =
    let t0 = Trace.now_s () in
    let r = f () in
    (r, Trace.now_s () -. t0)
  in
  (* Part 1: fig5 grid under both backends, cold caches. *)
  let grid backend =
    Options.set_curve_backend backend;
    Minplus.cache_clear ();
    timed (fun () ->
        Sweep_engine.tandem_grid ~options:!bench_options ~hops:[ 2; 4; 8 ]
          ~loads ())
  in
  let (pwl_cells, pwl_grid_s), (upp_cells, upp_grid_s) =
    Incremental.with_enabled false (fun () -> (grid `Pwl, grid `Upp))
  in
  let cell_bits (c : Engine.comparison) =
    List.map Int64.bits_of_float
      [
        c.decomposed; c.service_curve; c.integrated; c.fifo_theta;
        c.decomposed_backlog; c.integrated_backlog;
      ]
  in
  let identical =
    List.length pwl_cells = List.length upp_cells
    && List.for_all2
         (fun (a : Engine.comparison) (b : Engine.comparison) ->
           a.flow = b.flow && cell_bits a = cell_bits b)
         pwl_cells upp_cells
  in
  print_endline
    "\nEngine dispatch on the fig5 grid (eventually-affine curves only):";
  let tbl =
    Table.create ~header:[ "backend"; "grid wall (ms)"; "tables identical" ]
  in
  Table.add_row tbl [ "pwl"; Printf.sprintf "%.1f" (1000. *. pwl_grid_s); "-" ];
  Table.add_row tbl
    [
      "upp";
      Printf.sprintf "%.1f" (1000. *. upp_grid_s);
      (if identical then "yes" else "NO");
    ];
  output ~name:"curves-grid" tbl;
  record_value "curves.grid.pwl_ms" (1000. *. pwl_grid_s);
  record_value "curves.grid.upp_ms" (1000. *. upp_grid_s);
  record_value "curves.grid.identical" (if identical then 1. else 0.);
  (* Part 2: staircase x rate server at growing horizons, backend
     modules driven directly (the dispatch seam converts periodic
     results back to finite curves, which is exactly the unrolling
     this part measures the cost of). *)
  let step = 1. and interval = 1. and rate = 1.5 in
  let stair = Upp.staircase ~step ~interval in
  let horizons = [ 64; 256; 1024; 4096 ] in
  let repeats = 20 in
  let segs_total = Metrics.counter "pwl.segments.total" in
  let bench f =
    let r = f () in
    let s0 = Metrics.value segs_total in
    let (), wall = timed (fun () -> for _ = 1 to repeats do ignore (f ()) done) in
    let per_call = wall /. float_of_int repeats in
    let segs_s =
      if wall > 0. then float_of_int (Metrics.value segs_total - s0) /. wall
      else 0.
    in
    (r, per_call, segs_s)
  in
  print_endline
    "\nRepresentation stress: staircase (step 1, interval 1) through a \
     rate-1.5 server:";
  let tbl =
    Table.create
      ~header:
        [
          "horizon"; "pwl segs"; "upp segs"; "pwl ms"; "upp ms"; "speedup";
          "match";
        ]
  in
  List.iter
    (fun h ->
      let horizon = float_of_int h in
      let stair_pwl = Upp.unroll stair ~horizon in
      let pwl_r, pwl_s, pwl_segs_s =
        bench (fun () ->
            Minplus.cache_clear ();
            Minplus.conv_with_rate ~rate stair_pwl)
      in
      let upp_r, upp_s, upp_segs_s =
        bench (fun () ->
            Minplus.cache_clear ();
            Upp.conv_with_rate ~rate stair)
      in
      (* Pointwise agreement on a dense grid, sampled off the jump
         points (left/right limits differ there by construction). *)
      let max_dev = ref 0. in
      let n_samples = 4 * h in
      for k = 0 to n_samples do
        let t = (float_of_int k +. 0.41) /. 4. in
        if t <= horizon then
          max_dev :=
            Float.max !max_dev
              (Float.abs (Pwl.eval pwl_r t -. Upp.eval upp_r t))
      done;
      let agree = !max_dev <= 1e-6 in
      let pwl_segs = List.length (Pwl.segments pwl_r) in
      let upp_segs = Upp.segment_count upp_r in
      record_value (Printf.sprintf "curves.h%d.pwl_segs" h)
        (float_of_int pwl_segs);
      record_value (Printf.sprintf "curves.h%d.upp_segs" h)
        (float_of_int upp_segs);
      record_value (Printf.sprintf "curves.h%d.pwl_ms" h) (1000. *. pwl_s);
      record_value (Printf.sprintf "curves.h%d.upp_ms" h) (1000. *. upp_s);
      record_value (Printf.sprintf "curves.h%d.speedup" h) (pwl_s /. upp_s);
      record_value (Printf.sprintf "curves.h%d.pwl_segs_per_s" h) pwl_segs_s;
      record_value (Printf.sprintf "curves.h%d.upp_segs_per_s" h) upp_segs_s;
      record_value (Printf.sprintf "curves.h%d.max_dev" h) !max_dev;
      Table.add_row tbl
        [
          string_of_int h;
          string_of_int pwl_segs;
          string_of_int upp_segs;
          Printf.sprintf "%.3f" (1000. *. pwl_s);
          Printf.sprintf "%.3f" (1000. *. upp_s);
          Printf.sprintf "%.1fx" (pwl_s /. upp_s);
          (if agree then "yes" else "NO");
        ])
    horizons;
  output ~name:"curves-stress" tbl;
  print_endline
    "\nExpected shape: on the affine grid the two backends agree bit for bit \
     and\ncost the same; on the staircase the pwl result grows linearly with \
     the\nhorizon while the upp result keeps a constant segment count, so the\n\
     speedup column grows with the horizon."

(* ------------------------------------------------------------------ *)
(* Scale: streaming frontier propagation on the scenario corpus        *)
(* ------------------------------------------------------------------ *)

(* One row per corpus family: generate at the family's target size,
   run the streaming engine (Propagation_stream), report throughput
   and frontier accounting, then cross-validate a small sampled
   sub-network of the same topology against the packet simulator.
   Everything is seeded, so the rows (and the --json values, seed
   included) are reproducible. *)
let scale () =
  section "Scale — streaming frontier propagation on the scenario corpus";
  let seed = 42 in
  let specs =
    [
      (Corpus.Leaf_spine, 100_000);
      (Corpus.Fat_tree, 10_000);
      (Corpus.Edge_cloud, 10_000);
      (Corpus.Heavytail, 20_000);
    ]
  in
  let tbl =
    Table.create
      ~header:
        [
          "family"; "servers"; "flows"; "levels"; "widest"; "peak live";
          "pairs"; "servers/s"; "sim ok";
        ]
  in
  List.iter
    (fun (family, target) ->
      let name = Corpus.to_string family in
      let net = Corpus.generate ~family ~target_servers:target ~seed in
      let servers = Network.size net in
      let flows = List.length (Network.flows net) in
      let t0 = Trace.now_s () in
      let s = Propagation_stream.analyze ~options:!bench_options net in
      let wall = Trace.now_s () -. t0 in
      let st = Propagation_stream.frontier_stats s in
      let sps = float_of_int servers /. wall in
      (* Cross-validation: an unpeaked regeneration (same seed, same
         routes — the conforming packet emitter needs peak-free
         sources), restricted to a deterministic sample of flows, so
         the simulated sub-network and its analysis see the same
         contention. *)
      let unpeaked =
        Corpus.generate_unpeaked ~family ~target_servers:target ~seed
      in
      let all_ids =
        List.map (fun (f : Flow.t) -> f.Flow.id) (Network.flows unpeaked)
        |> List.sort compare
      in
      let n_ids = List.length all_ids in
      let stride = max 1 (n_ids / 6) in
      let flow_ids =
        List.filteri (fun i _ -> i mod stride = 0 && i / stride < 6) all_ids
      in
      let sub = Network.restrict unpeaked ~flow_ids in
      let bounds =
        Decomposed.all_flow_delays
          (Decomposed.analyze ~options:!bench_options sub)
      in
      let config =
        { Sim.default_config with packet_size = 0.05; horizon = 200. }
      in
      let reports = Validate.check ~config ~bounds sub in
      let sim_ok =
        reports <> []
        && List.for_all (fun (r : Validate.report) -> r.slack >= -1e-6) reports
      in
      let key part = Printf.sprintf "scale.%s.%s" name part in
      record_value (key "seed") (float_of_int seed);
      record_value (key "servers") (float_of_int servers);
      record_value (key "flows") (float_of_int flows);
      record_value (key "wall_s") wall;
      record_value (key "servers_per_sec") sps;
      record_value (key "levels") (float_of_int st.levels);
      record_value (key "widest_antichain") (float_of_int st.widest_antichain);
      record_value (key "peak_live_frontier") (float_of_int st.peak_live);
      record_value (key "evicted") (float_of_int st.evicted);
      record_value (key "total_pairs") (float_of_int st.total_pairs);
      record_value (key "sim.sub_servers") (float_of_int (Network.size sub));
      record_value (key "sim.sub_flows") (float_of_int (List.length flow_ids));
      record_value (key "sim.ok") (if sim_ok then 1. else 0.);
      Table.add_row tbl
        [
          name;
          string_of_int servers;
          string_of_int flows;
          string_of_int st.levels;
          string_of_int st.widest_antichain;
          string_of_int st.peak_live;
          string_of_int st.total_pairs;
          Printf.sprintf "%.0f" sps;
          (if sim_ok then "yes" else "NO");
        ])
    specs;
  output ~name:"scale" tbl;
  print_endline
    "\nExpected shape: every family completes a full streaming analysis in \
     one\nprocess — 10^5 servers for the leaf-spine — with the peak live \
     frontier a\nfraction of the total (flow, server) pairs (the table-based \
     footprint), and\nevery sampled sub-network's simulated delays dominated \
     by the analytic\nbounds (sim ok = yes)."

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("buffers", buffers);
    ("burstiness", burstiness);
    ("validation", validation);
    ("admission", admission);
    ("burst-propagation", burst_propagation);
    ("ablation-pairing", ablation_pairing);
    ("ablation-theta", ablation_theta);
    ("sp", sp_extension);
    ("tightness", tightness);
    ("feedback", feedback);
    ("edf-allocation", edf_allocation);
    ("randomnet", randomnet);
    ("timing", timing);
    ("serve-churn", serve_churn);
    ("curves", curves);
    ("scale", scale);
  ]

(* Perf-trajectory record for --json: one entry per experiment, with
   wall time, the nonzero netcalc.obs counters (min-plus op counts,
   cache and memo hits/misses) of that experiment alone, the
   curve-workload summary (peak live-curve size and segments processed
   per second, from the pwl.segments.* metrics), and any named scalar
   values it recorded (the timing sweeps). *)
type perf_record = {
  id : string;
  wall_s : float;
  peak_segments : int;
  segments_per_sec : float;
  peak_rss_kb : int option;
      (* VmHWM at the end of the experiment: the process's lifetime
         high watermark, so monotone across experiments — the first
         experiment that spikes it owns the jump.  None on platforms
         without /proc. *)
  major_words : float;
  top_heap_words : int;
  counters : (string * int) list;
  values : (string * float) list;
}

(* Peak resident set (VmHWM, kB) from /proc/self/status; None where
   the file or the field does not exist (non-Linux). *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let prefix = "VmHWM:" in
          let rec scan () =
            match input_line ic with
            | exception End_of_file -> None
            | line ->
                if
                  String.length line >= String.length prefix
                  && String.sub line 0 (String.length prefix) = prefix
                then
                  String.to_seq line
                  |> Seq.filter (fun c -> c >= '0' && c <= '9')
                  |> String.of_seq |> int_of_string_opt
                else scan ()
          in
          scan ())

let json_out : string option ref = ref None
let perf_records : perf_record list ref = ref []

(* With --obs, every experiment also emits its operation-cost profile
   (netcalc.obs metrics + span timings), so each figure ships with the
   min-plus workload that produced it; with --csv DIR the metrics also
   land in DIR/obs-<id>.csv.  With --json, metrics are likewise reset
   per experiment so the JSON counters are per-experiment deltas. *)
let run_experiment ~obs (id, f) =
  let collect = obs || !json_out <> None in
  if collect then begin
    Metrics.reset ();
    Trace.clear ()
  end;
  perf_values := [];
  let t0 = Trace.now_s () in
  f ();
  let wall_s = Trace.now_s () -. t0 in
  if !json_out <> None then begin
    let snap = Metrics.snapshot () in
    let counters = List.filter (fun (_, n) -> n > 0) snap.Metrics.counters in
    let peak_segments =
      Option.value ~default:0
        (List.assoc_opt "pwl.segments.max" snap.Metrics.peaks)
    in
    let segments_per_sec =
      match List.assoc_opt "pwl.segments.total" snap.Metrics.counters with
      | Some n when wall_s > 0. -> float_of_int n /. wall_s
      | _ -> 0.
    in
    let gc = Gc.quick_stat () in
    perf_records :=
      {
        id;
        wall_s;
        peak_segments;
        segments_per_sec;
        peak_rss_kb = peak_rss_kb ();
        major_words = gc.Gc.major_words;
        top_heap_words = gc.Gc.top_heap_words;
        counters;
        values = List.rev !perf_values;
      }
      :: !perf_records
  end;
  if obs then begin
    Printf.printf "\n[obs] operation profile for %s:\n\n" id;
    Table.print (Metrics.to_table ());
    print_newline ();
    Table.print (Trace.summary_table ());
    match !csv_dir with
    | Some dir -> Table.save_csv ~dir ~name:("obs-" ^ id) (Metrics.to_table ())
    | None -> ()
  end

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Schema netcalc-bench/3: /2 plus per-experiment memory accounting —
   "peak_rss_kb" (VmHWM from /proc/self/status; the key is absent on
   platforms without it, and monotone across experiments since it is a
   process-lifetime high watermark) and "gc" with the runtime's
   cumulative "major_words" and "top_heap_words". *)
let write_perf_json path ~total_wall_s =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":\"netcalc-bench/3\",\"backend\":\"%s\",\
        \"par_backend\":\"%s\",\"jobs\":%d,\
        \"total_wall_s\":%.6f,\"experiments\":["
       (json_escape (Options.curve_backend_name ()))
       (json_escape Par.backend) (Par.jobs ()) total_wall_s);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"id\":\"%s\",\"wall_s\":%.6f,\"peak_segments\":%d,\
            \"segments_per_sec\":%.6g,"
           (json_escape r.id) r.wall_s r.peak_segments
           (if Float.is_finite r.segments_per_sec then r.segments_per_sec
            else 0.));
      (match r.peak_rss_kb with
      | Some kb -> Buffer.add_string b (Printf.sprintf "\"peak_rss_kb\":%d," kb)
      | None -> ());
      Buffer.add_string b
        (Printf.sprintf
           "\"gc\":{\"major_words\":%.6g,\"top_heap_words\":%d},\"counters\":{"
           r.major_words r.top_heap_words);
      List.iteri
        (fun j (name, n) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\"%s\":%d" (json_escape name) n))
        r.counters;
      Buffer.add_string b "},\"values\":{";
      List.iteri
        (fun j (name, v) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\"%s\":%.6g" (json_escape name) v))
        (* inf/nan are not JSON numbers; a failed OLS fit just drops out. *)
        (List.filter (fun (_, v) -> Float.is_finite v) r.values);
      Buffer.add_string b "}}")
    (List.rev !perf_records);
  Buffer.add_string b "]}";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  output_char oc '\n';
  close_out oc

let () =
  let args = Array.to_list Sys.argv in
  if List.mem "--list" args then
    List.iter (fun (id, _) -> print_endline id) experiments
  else
    let rec find_opt key = function
      | k :: v :: _ when k = key -> Some v
      | _ :: rest -> find_opt key rest
      | [] -> None
    in
    csv_dir := find_opt "--csv" args;
    json_out := find_opt "--json" args;
    (match find_opt "--jobs" args with
    | Some n -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> Par.set_jobs n
        | _ ->
            Printf.eprintf "--jobs expects a positive integer, got %s\n" n;
            exit 1)
    | None -> ());
    (match find_opt "--curve-backend" args with
    | Some s -> (
        match Options.curve_backend_of_string s with
        | Ok b -> Options.set_curve_backend b
        | Error msg ->
            Printf.eprintf "--curve-backend: %s\n" msg;
            exit 1)
    | None -> ());
    if List.mem "--no-incremental" args then Incremental.set_enabled false;
    let compact_max_segs =
      match find_opt "--compact-max-segs" args with
      | Some s -> (
          match int_of_string_opt s with
          | Some k when k >= 2 -> k
          | _ ->
              Printf.eprintf
                "--compact-max-segs expects an integer >= 2, got %s\n" s;
              exit 1)
      | None -> Options.default.Options.compact_max_segs
    in
    (match find_opt "--compact-eps" args with
    | Some e -> (
        match float_of_string_opt e with
        | Some eps when eps >= 0. ->
            bench_options :=
              Options.with_compaction ~max_segs:compact_max_segs eps
                !bench_options
        | _ ->
            Printf.eprintf "--compact-eps expects a float >= 0, got %s\n" e;
            exit 1)
    | None -> ());
    let obs = List.mem "--obs" args || Prof.enabled () in
    if obs || !json_out <> None then Obs.enable ();
    let only = find_opt "--only" args in
    let selected =
      match only with
      | None -> experiments
      | Some id -> (
          match List.assoc_opt id experiments with
          | Some f -> [ (id, f) ]
          | None ->
              Printf.eprintf "unknown experiment %s; try --list\n" id;
              exit 1)
    in
    let t0 = Trace.now_s () in
    List.iter (run_experiment ~obs) selected;
    match !json_out with
    | Some path ->
        write_perf_json path ~total_wall_s:(Trace.now_s () -. t0);
        Printf.eprintf "[json] wrote %s\n" path
    | None -> ()

(* netcalc.par: the pool must behave exactly like List.map whatever the
   jobs count — same order, same exceptions, byte-identical downstream
   tables — and the pwl conv/deconv cache must be invisible except for
   speed.  These are the guarantees that let the bench sweeps and the
   engines parallelize without a determinism audit per call site. *)

open Testutil

let with_jobs n f =
  Par.set_jobs n;
  Fun.protect ~finally:Par.clear_jobs f

let test_map_order () =
  let xs = List.init 103 (fun i -> i) in
  let want = List.map (fun i -> (i * 7) mod 31) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        want
        (Par.map ~jobs (fun i -> (i * 7) mod 31) xs))
    [ 1; 2; 4; 7 ];
  Alcotest.(check (list int)) "empty" [] (Par.map ~jobs:4 (fun i -> i) []);
  Alcotest.(check (list int)) "singleton" [ 9 ]
    (Par.map ~jobs:4 (fun i -> i * 9) [ 1 ])

let test_mapi () =
  Alcotest.(check (list int)) "indexed" [ 10; 21; 32 ]
    (Par.mapi ~jobs:3 (fun i x -> (10 * x) + i) [ 1; 2; 3 ])

let test_map_reduce () =
  let xs = List.init 50 (fun i -> float_of_int (i + 1)) in
  (* Non-associative, order-sensitive reduction: the fold must happen
     in list order for this to match the sequential run bit for bit. *)
  let reduce acc v = (acc *. 0.5) +. v in
  let seq = List.fold_left reduce 0. (List.map sqrt xs) in
  List.iter
    (fun jobs ->
      let par = Par.map_reduce ~jobs ~map:sqrt ~reduce 0. xs in
      if par <> seq then
        Alcotest.failf "jobs=%d: %.17g <> %.17g" jobs par seq)
    [ 1; 3; 8 ]

exception Boom of int

let test_exception_propagation () =
  match
    Par.map ~jobs:4 (fun i -> if i >= 60 then raise (Boom i) else i)
      (List.init 100 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom _ -> ()

(* Which exception surfaces must not depend on the schedule: when
   several elements fail, the one raised is the sequential one — the
   smallest failing index — at any jobs count. *)
let test_exception_smallest_index () =
  let xs = List.init 200 (fun i -> i) in
  List.iter
    (fun jobs ->
      for _round = 1 to 5 do
        match
          Par.map ~jobs (fun i -> if i mod 7 = 3 then raise (Boom i) else i) xs
        with
        | _ -> Alcotest.fail "expected Boom"
        | exception Boom i ->
            Alcotest.(check int)
              (Printf.sprintf "jobs=%d raises the first failure" jobs)
              3 i
      done)
    [ 1; 2; 4; 8 ]

let test_nested () =
  let got =
    Par.map ~jobs:4
      (fun i -> Par.map ~jobs:4 (fun j -> (i * 10) + j) [ 0; 1; 2 ])
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list (list int))) "nested maps"
    [ [ 10; 11; 12 ]; [ 20; 21; 22 ]; [ 30; 31; 32 ]; [ 40; 41; 42 ] ]
    got

(* The fig5-style table must come out byte-identical at any jobs count:
   parallelism may only change the schedule, never the printed data. *)
let mini_fig5_table () =
  let t = Tandem.make ~n:4 ~utilization:0.6 ~sigma:1. ~peak:1. () in
  let cells =
    Par.map
      (fun u ->
        let t' = Tandem.make ~n:2 ~utilization:u ~sigma:1. ~peak:1. () in
        let c =
          Engine.compare_all ~with_theta:false
            ~strategy:(Pairing.Along_route 0) t'.network 0
        in
        (u, c))
      [ 0.2; 0.5; 0.8 ]
  in
  let c4 =
    Engine.compare_all ~with_theta:false ~strategy:(Pairing.Along_route 0)
      t.network 0
  in
  let tbl = Table.create ~header:[ "U"; "D_D"; "D_I" ] in
  List.iter
    (fun (u, (c : Engine.comparison)) ->
      Table.add_floats tbl [ u; c.decomposed; c.integrated ])
    (cells @ [ (0.6, c4) ]);
  Table.to_string tbl

let test_jobs_invariance () =
  let t1 = with_jobs 1 mini_fig5_table in
  let t4 = with_jobs 4 mini_fig5_table in
  Alcotest.(check string) "table identical at jobs 1 and 4" t1 t4

(* The bench figures now route through the incremental sweep engine:
   the printed table must not care whether the engine is on or off, nor
   how many workers serve the grid — all four combinations must render
   the same bytes. *)
let with_incremental b f =
  let prev = Incremental.enabled () in
  Incremental.set_enabled b;
  Fun.protect ~finally:(fun () -> Incremental.set_enabled prev) f

let sweep_table () =
  let hops = [ 2; 4 ] and loads = [ 0.2; 0.5; 0.8 ] in
  let cells = Sweep_engine.tandem_grid ~hops ~loads () in
  let tbl = Table.create ~header:[ "U"; "n"; "D_D"; "D_SC"; "D_I" ] in
  List.iter2
    (fun (u, n) (c : Engine.comparison) ->
      Table.add_floats tbl
        [ u; float_of_int n; c.decomposed; c.service_curve; c.integrated ])
    (List.concat_map (fun u -> List.map (fun n -> (u, n)) hops) loads)
    cells;
  Table.to_string tbl

let test_sweep_engine_invariance () =
  let variants =
    [
      ("incremental jobs=1", fun () -> with_incremental true (fun () -> with_jobs 1 sweep_table));
      ("incremental jobs=4", fun () -> with_incremental true (fun () -> with_jobs 4 sweep_table));
      ("scratch jobs=1", fun () -> with_incremental false (fun () -> with_jobs 1 sweep_table));
      ("scratch jobs=4", fun () -> with_incremental false (fun () -> with_jobs 4 sweep_table));
    ]
  in
  match List.map (fun (name, f) -> (name, f ())) variants with
  | [] -> ()
  | (_, want) :: rest ->
      List.iter
        (fun (name, got) ->
          Alcotest.(check string) ("table identical: " ^ name) want got)
        rest

let test_compare_all_invariance () =
  let net = (Tandem.make ~n:4 ~utilization:0.7 ()).network in
  let run () =
    Engine.compare_all ~strategy:(Pairing.Along_route 0) net 0
  in
  let a = with_jobs 1 run and b = with_jobs 4 run in
  let exact name x y =
    if not (x = y || (Float.is_nan x && Float.is_nan y)) then
      Alcotest.failf "%s: %.17g <> %.17g" name x y
  in
  exact "decomposed" a.Engine.decomposed b.Engine.decomposed;
  exact "service_curve" a.service_curve b.service_curve;
  exact "integrated" a.integrated b.integrated;
  exact "fifo_theta" a.fifo_theta b.fifo_theta

let test_fixed_point_invariance () =
  let net = (Ring.make ~n:5 ~hops:3 ~utilization:0.5 ()).network in
  let run () =
    let fp = Fixed_point.analyze ~max_iter:300 net in
    (Fixed_point.converged fp, Fixed_point.iterations fp,
     Fixed_point.all_flow_delays fp)
  in
  let c1, i1, d1 = with_jobs 1 run in
  let c4, i4, d4 = with_jobs 4 run in
  Alcotest.(check bool) "converged" c1 c4;
  Alcotest.(check int) "iterations" i1 i4;
  List.iter2
    (fun (f1, b1) (f4, b4) ->
      Alcotest.(check int) "flow" f1 f4;
      if b1 <> b4 then Alcotest.failf "flow %d: %.17g <> %.17g" f1 b1 b4)
    d1 d4

(* Concurrent recording into netcalc.obs from pool workers must lose
   nothing: N increments are N increments whatever the schedule. *)
let test_obs_concurrent () =
  Obs.enable ();
  Metrics.reset ();
  let c = Metrics.counter "test.par.incr" in
  let n = 400 in
  ignore
    (Par.map ~jobs:4
       (fun _ ->
         Metrics.incr c;
         Trace.with_span "test.par.span" (fun () -> ()))
       (List.init n (fun i -> i)));
  Alcotest.(check int) "no lost increments" n (Metrics.value c);
  let spans =
    match List.assoc_opt "test.par.span" (Trace.aggregates ()) with
    | Some a -> a.Trace.calls
    | None -> 0
  in
  Alcotest.(check int) "no lost spans" n spans;
  Obs.disable ();
  Metrics.reset ();
  Trace.clear ()

(* Cache transparency: conv/deconv with the cache on must equal the
   uncached computation segment for segment (same floats), on random
   token-bucket / rate-latency curve pairs. *)
let with_cache b f =
  let prev = Minplus.cache_enabled () in
  Minplus.set_cache_enabled b;
  Fun.protect ~finally:(fun () -> Minplus.set_cache_enabled prev) f

let same_curve a b = Pwl.segments a = Pwl.segments b

let qtest_cache_conv =
  qtest ~count:100 "cached conv = uncached conv"
    QCheck2.Gen.(pair gen_concave gen_concave)
    (fun (f, g) ->
      let cached = with_cache true (fun () -> Minplus.conv f g) in
      let fresh =
        with_cache false (fun () -> Minplus.cache_clear (); Minplus.conv f g)
      in
      same_curve cached fresh)

let qtest_cache_deconv =
  qtest ~count:100 "cached deconv = uncached deconv"
    QCheck2.Gen.(pair gen_concave gen_convex)
    (fun (alpha, beta) ->
      QCheck2.assume (Pwl.final_slope alpha <= Pwl.final_slope beta);
      let cached = with_cache true (fun () -> Minplus.deconv alpha beta) in
      let fresh =
        with_cache false (fun () ->
            Minplus.cache_clear ();
            Minplus.deconv alpha beta)
      in
      same_curve cached fresh)

let test_cache_hits () =
  with_cache true @@ fun () ->
  Minplus.cache_clear ();
  let before = (Minplus.cache_stats ()).hits in
  let f = Pwl.min_list [ Pwl.affine ~y0:2. ~slope:1.; Pwl.affine ~y0:5. ~slope:0.3 ] in
  let g = Testutil.rate_latency ~rate:2. ~latency:1. in
  let a = Minplus.deconv f g in
  let b = Minplus.deconv f g in
  Alcotest.(check bool) "identical results" true (same_curve a b);
  let after = (Minplus.cache_stats ()).hits in
  Alcotest.(check bool) "repeat lookup hit" true (after > before)

(* eval_seq is the batch kernel under deconv: must agree with pointwise
   eval on sorted probe sets, including breakpoints (jump points). *)
let qtest_eval_seq =
  qtest ~count:200 "eval_seq/eval_left_seq = pointwise eval"
    QCheck2.Gen.(pair gen_concave (list_size (int_range 0 20) gen_time))
    (fun (f, ts) ->
      let ts = Array.of_list (List.sort Float.compare (0. :: Pwl.breakpoints f @ ts)) in
      let vs = Pwl.eval_seq f ts in
      let vls = Pwl.eval_left_seq f ts in
      Array.for_all2 (fun t v -> v = Pwl.eval f t) ts vs
      && Array.for_all2 (fun t v -> v = Pwl.eval_left f t) ts vls)

(* The Incremental registry (clearers/sizers lists, the [on] flag) and
   each analysis memo table are shared across netcalc.par domains: a
   storm of memoize calls racing concurrent clears must only ever cause
   recomputation, never a wrong value, a lost registration, or a crash.
   On 4.14 Par degrades to sequential and this pins the same
   contract. *)
let test_incremental_concurrent_clear () =
  let t = Incremental.table () in
  let net = (Tandem.make ~n:2 ~utilization:0.5 ()).network in
  (* 64 distinct structural keys from one network: the sp_blocking
     option enters the fingerprint. *)
  let keys =
    Array.init 64 (fun i ->
        Incremental.net_key
          ~options:(Options.with_blocking (float_of_int i) Options.default)
          net)
  in
  let results =
    with_jobs 4 (fun () ->
        Par.map
          (fun i ->
            if i mod 16 = 0 then begin
              Incremental.clear ();
              -1
            end
            else Incremental.memoize t keys.(i mod 64) (fun () -> i mod 64))
          (List.init 256 Fun.id))
  in
  List.iteri
    (fun i v ->
      if i mod 16 <> 0 then
        Alcotest.(check int) (Printf.sprintf "memoize i=%d" i) (i mod 64) v)
    results;
  (* The table survived the clears and is still functional. *)
  Alcotest.(check int) "post-storm memoize" 7
    (Incremental.memoize t keys.(0) (fun () -> 7))

let suite =
  ( "par",
    [
      test "map preserves order" test_map_order;
      test "mapi" test_mapi;
      test "map_reduce folds in order" test_map_reduce;
      test "exception propagation" test_exception_propagation;
      test "exception is the smallest failing index"
        test_exception_smallest_index;
      test "nested maps" test_nested;
      test "table byte-identical across jobs" test_jobs_invariance;
      test "sweep engine invariant across jobs and on/off"
        test_sweep_engine_invariance;
      test "compare_all identical across jobs" test_compare_all_invariance;
      test "fixed point identical across jobs" test_fixed_point_invariance;
      test "obs safe under concurrent recording" test_obs_concurrent;
      test "incremental memoize races clear (4 domains)"
        test_incremental_concurrent_clear;
      qtest_cache_conv;
      qtest_cache_deconv;
      test "repeated deconv hits the cache" test_cache_hits;
      qtest_eval_seq;
    ] )

(* Tests for the piecewise-linear algebra: construction, pointwise
   operations, transformations, pseudo-inverse, suprema, min-plus
   convolution/deconvolution and deviations. *)

open Testutil

let token_bucket ~sigma ~rho = Pwl.affine ~y0:sigma ~slope:rho

(* ------------------------------------------------------------------ *)
(* Construction and evaluation                                         *)
(* ------------------------------------------------------------------ *)

let test_eval_basic () =
  let f = Pwl.make [ (0., 1., 2.); (3., 7., 0.5) ] in
  approx "f 0" 1. (Pwl.eval f 0.);
  approx "f 2" 5. (Pwl.eval f 2.);
  approx "f 3" 7. (Pwl.eval f 3.);
  approx "f 5" 8. (Pwl.eval f 5.);
  approx "f (-1) clamps" 1. (Pwl.eval f (-1.))

let test_eval_jump () =
  (* Upward jump at t = 2: left limit 2, right value 5. *)
  let f = Pwl.make [ (0., 0., 1.); (2., 5., 1.) ] in
  approx "right value" 5. (Pwl.eval f 2.);
  approx "left limit" 2. (Pwl.eval_left f 2.);
  approx "left limit inside segment" 1. (Pwl.eval_left f 1.)

let test_make_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Pwl.make: empty segment list")
    (fun () -> ignore (Pwl.make []));
  (try
     ignore (Pwl.make [ (1., 0., 0.) ]);
     Alcotest.fail "expected Invalid_argument for first x <> 0"
   with Invalid_argument _ -> ());
  (try
     ignore (Pwl.make [ (0., 0., 0.); (0., 1., 1.) ]);
     Alcotest.fail "expected Invalid_argument for non-increasing x"
   with Invalid_argument _ -> ())

let test_normalize_collinear () =
  let f = Pwl.make [ (0., 0., 1.); (2., 2., 1.); (4., 4., 3.) ] in
  Alcotest.(check int) "collinear segments merged" 2
    (List.length (Pwl.segments f))

let test_shape () =
  let tb = token_bucket ~sigma:1. ~rho:0.5 in
  let rl = rate_latency ~rate:1. ~latency:2. in
  Alcotest.(check bool) "token bucket affine" true (Pwl.shape tb = `Affine);
  Alcotest.(check bool) "rate-latency convex" true (Pwl.shape rl = `Convex);
  let concave = Pwl.min_pw (Pwl.affine ~y0:0. ~slope:2.) tb in
  Alcotest.(check bool) "min of affines concave" true
    (Pwl.shape concave = `Concave)

(* ------------------------------------------------------------------ *)
(* Pointwise algebra                                                   *)
(* ------------------------------------------------------------------ *)

let test_add_sub_scale () =
  let f = token_bucket ~sigma:1. ~rho:0.5 in
  let g = rate_latency ~rate:2. ~latency:1. in
  let s = Pwl.add f g in
  List.iter
    (fun t -> approx "add" (Pwl.eval f t +. Pwl.eval g t) (Pwl.eval s t))
    [ 0.; 0.5; 1.; 1.5; 3.; 10. ];
  let d = Pwl.sub s g in
  List.iter (fun t -> approx "sub" (Pwl.eval f t) (Pwl.eval d t))
    [ 0.; 1.; 2.; 7. ];
  let k = Pwl.scale 3. f in
  approx "scale" (3. *. Pwl.eval f 2.) (Pwl.eval k 2.)

let test_min_max_crossing () =
  let f = Pwl.affine ~y0:0. ~slope:2. in
  let g = token_bucket ~sigma:3. ~rho:1. in
  (* Cross at t = 3. *)
  let m = Pwl.min_pw f g in
  approx "min before" 2. (Pwl.eval m 1.);
  approx "min at crossing" 6. (Pwl.eval m 3.);
  approx "min after" 8. (Pwl.eval m 5.);
  let hi = Pwl.max_pw f g in
  approx "max before" 4. (Pwl.eval hi 1.);
  approx "max after" 10. (Pwl.eval hi 5.)

let test_nonneg () =
  let f = Pwl.affine ~y0:(-2.) ~slope:1. in
  let p = Pwl.nonneg f in
  approx "clipped" 0. (Pwl.eval p 1.);
  approx "above" 3. (Pwl.eval p 5.)

(* ------------------------------------------------------------------ *)
(* Transformations                                                     *)
(* ------------------------------------------------------------------ *)

let test_shift_left () =
  let f = rate_latency ~rate:2. ~latency:3. in
  let g = Pwl.shift_left f 1. in
  List.iter
    (fun t -> approx "shift_left" (Pwl.eval f (t +. 1.)) (Pwl.eval g t))
    [ 0.; 1.; 2.; 2.5; 4. ]

let test_shift_right () =
  let f = token_bucket ~sigma:2. ~rho:1. in
  let g = Pwl.shift_right f 2. in
  approx "before shift" 0. (Pwl.eval g 1.);
  approx "at shift" 2. (Pwl.eval g 2.);
  approx "after shift" 5. (Pwl.eval g 5.)

let test_compose () =
  let outer = rate_latency ~rate:1. ~latency:2. in
  let inner = Pwl.affine ~y0:1. ~slope:0.5 in
  let h = Pwl.compose ~outer ~inner in
  List.iter
    (fun t ->
      approx "compose" (Pwl.eval outer (Pwl.eval inner t)) (Pwl.eval h t))
    [ 0.; 1.; 2.; 3.; 5.; 10. ]

let test_pseudo_inverse_rate_latency () =
  let beta = rate_latency ~rate:2. ~latency:3. in
  let inv = Pwl.pseudo_inverse beta in
  (* Upper inverse: sup { x : beta x <= y }; beta is 0 until 3 then 2(t-3). *)
  approx "inv 0 (end of flat)" 3. (Pwl.eval inv 0.);
  approx "inv 2" 4. (Pwl.eval inv 2.);
  approx "inv 10" 8. (Pwl.eval inv 10.)

let test_pseudo_inverse_jump () =
  (* f with a jump at 2 from 2 to 5: the inverse is flat (= 2) on [2,5]. *)
  let f = Pwl.make [ (0., 0., 1.); (2., 5., 1.) ] in
  let inv = Pwl.pseudo_inverse f in
  approx "inv below jump" 1. (Pwl.eval inv 1.);
  approx "inv inside jump" 2. (Pwl.eval inv 3.5);
  approx "inv at top of jump" 2. (Pwl.eval inv 5.);
  approx "inv above" 3. (Pwl.eval inv 6.)

(* ------------------------------------------------------------------ *)
(* Suprema and crossings                                               *)
(* ------------------------------------------------------------------ *)

let test_sup_diff () =
  let f = token_bucket ~sigma:4. ~rho:0.5 in
  let line = Pwl.affine ~y0:0. ~slope:1. in
  (* sup (4 + 0.5 t - t) = 4 at t = 0. *)
  approx "sup at 0" 4. (Pwl.sup_diff f line);
  let steep = Pwl.affine ~y0:0. ~slope:2. in
  approx "unbounded" infinity (Pwl.sup_diff steep line)

let test_first_crossing_below () =
  let g = token_bucket ~sigma:2. ~rho:0.5 in
  (* 2 + 0.5 t = t  =>  t = 4. *)
  approx "busy period" 4. (Pwl.first_crossing_below g ~rate:1.);
  approx "unstable" infinity (Pwl.first_crossing_below g ~rate:0.5);
  approx "zero burst" 0.
    (Pwl.first_crossing_below (Pwl.affine ~y0:0. ~slope:0.2) ~rate:1.)

let test_sup_on () =
  let f = Pwl.make [ (0., 0., 2.); (1., 2., -1.) ] in
  approx "peak inside" 2. (Pwl.sup_on f ~lo:0. ~hi:3.);
  approx "window before peak" 1. (Pwl.sup_on f ~lo:0. ~hi:0.5);
  approx "window after peak" 1.5 (Pwl.sup_on f ~lo:1.5 ~hi:4.)

(* ------------------------------------------------------------------ *)
(* Min-plus operations                                                 *)
(* ------------------------------------------------------------------ *)

let test_conv_concave_is_min () =
  let f = token_bucket ~sigma:1. ~rho:2. in
  let g = Pwl.affine ~y0:0. ~slope:3. in
  let c = Minplus.conv f g in
  List.iter
    (fun t ->
      approx "conv = min" (Float.min (Pwl.eval f t) (Pwl.eval g t))
        (Pwl.eval c t))
    [ 0.; 0.2; 1.; 5. ]

let test_conv_rate_latency () =
  (* beta_{R1,T1} (x) beta_{R2,T2} = beta_{min R, T1+T2}. *)
  let b1 = rate_latency ~rate:2. ~latency:1. in
  let b2 = rate_latency ~rate:1. ~latency:3. in
  let c = Minplus.conv b1 b2 in
  let expect = rate_latency ~rate:1. ~latency:4. in
  Alcotest.(check bool) "rate-latency composition" true (Pwl.equal c expect)

let test_conv_convex_general () =
  (* Brute-force check of the convex convolution on a small grid. *)
  let b1 = Minplus.conv_list
      [ rate_latency ~rate:2. ~latency:1.; rate_latency ~rate:5. ~latency:0.5 ]
  in
  let b2 = rate_latency ~rate:3. ~latency:0.2 in
  let c = Minplus.conv b1 b2 in
  let brute t =
    let n = 2000 in
    let best = ref infinity in
    for i = 0 to n do
      let s = t *. float_of_int i /. float_of_int n in
      best := Float.min !best (Pwl.eval b1 s +. Pwl.eval b2 (t -. s))
    done;
    !best
  in
  List.iter
    (fun t -> approx ~tol:1e-3 "convex conv vs brute force" (brute t) (Pwl.eval c t))
    [ 0.5; 1.; 2.; 3.; 6.; 12. ]

let test_deconv_token_bucket_rate_latency () =
  (* alpha (/) beta_{R,T} for alpha = sigma + rho t is sigma + rho (t + T):
     the output burst grows by rho * T. *)
  let alpha = token_bucket ~sigma:2. ~rho:1. in
  let beta = rate_latency ~rate:3. ~latency:2. in
  let out = Minplus.deconv alpha beta in
  let expect = token_bucket ~sigma:4. ~rho:1. in
  Alcotest.(check bool) "output envelope" true (Pwl.equal out expect)

let test_deconv_unstable () =
  let alpha = token_bucket ~sigma:1. ~rho:2. in
  let beta = rate_latency ~rate:1. ~latency:0. in
  (try
     ignore (Minplus.deconv alpha beta);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Deviations                                                          *)
(* ------------------------------------------------------------------ *)

let test_hdev_classic () =
  (* Token bucket vs rate-latency: D = T + sigma / R. *)
  let alpha = token_bucket ~sigma:3. ~rho:1. in
  let beta = rate_latency ~rate:2. ~latency:1.5 in
  approx "hdev" (1.5 +. (3. /. 2.)) (Deviation.hdev ~alpha ~beta);
  approx "vdev" (3. +. (1. *. 1.5)) (Deviation.vdev ~alpha ~beta)

let test_hdev_unstable () =
  let alpha = token_bucket ~sigma:1. ~rho:3. in
  let beta = rate_latency ~rate:2. ~latency:0. in
  approx "unstable hdev" infinity (Deviation.hdev ~alpha ~beta)

let test_vdev_equal_final_slope () =
  (* Limit case: token bucket vs rate-latency at the {e same} rate.
     The difference is constant (= sigma + rho T) past the last merged
     breakpoint; the supremum must be that constant, not infinity and
     not the value at 0. *)
  let alpha = token_bucket ~sigma:1. ~rho:0.5 in
  let beta = rate_latency ~rate:0.5 ~latency:4. in
  approx "sup_diff at equal final slopes" 3. (Pwl.sup_diff alpha beta);
  approx "vdev = sigma + rho T" 3. (Deviation.vdev ~alpha ~beta);
  (* An epsilon-slower server tips it over to unbounded. *)
  let beta' = rate_latency ~rate:0.499 ~latency:4. in
  approx "slower server unbounded" infinity (Deviation.vdev ~alpha ~beta:beta')

let test_delay_fifo_aggregate () =
  let agg = token_bucket ~sigma:4. ~rho:0.5 in
  approx "fifo delay" 4. (Deviation.delay_fifo_aggregate ~agg ~rate:1.);
  approx "fifo delay scaled" 2. (Deviation.delay_fifo_aggregate ~agg ~rate:2.);
  approx "unstable" infinity (Deviation.delay_fifo_aggregate ~agg ~rate:0.5)

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                *)
(* ------------------------------------------------------------------ *)

let prop_min_below_both =
  qtest "min_pw is below both operands"
    QCheck2.Gen.(triple gen_concave gen_concave gen_time)
    (fun (f, g, t) ->
      let m = Pwl.eval (Pwl.min_pw f g) t in
      m <= Pwl.eval f t +. 1e-6 && m <= Pwl.eval g t +. 1e-6)

let prop_add_pointwise =
  qtest "add is pointwise sum"
    QCheck2.Gen.(triple gen_concave gen_convex gen_time)
    (fun (f, g, t) ->
      let s = Pwl.eval (Pwl.add f g) t in
      Float.abs (s -. (Pwl.eval f t +. Pwl.eval g t)) <= 1e-6 *. Float.max 1. s)

let prop_conv_commutative =
  qtest "convex convolution commutes"
    QCheck2.Gen.(pair gen_convex gen_convex)
    (fun (f, g) -> Pwl.equal (Minplus.conv f g) (Minplus.conv g f))

let prop_conv_below_operand =
  qtest "f (x) g <= f (when g 0 = 0)"
    QCheck2.Gen.(triple gen_convex gen_convex gen_time)
    (fun (f, g, t) ->
      Pwl.eval (Minplus.conv f g) t <= Pwl.eval f t +. 1e-6)

let prop_deconv_dominates =
  qtest "alpha (/) beta >= alpha (when beta 0 = 0)"
    QCheck2.Gen.(triple gen_concave gen_convex gen_time)
    (fun (alpha, beta, t) ->
      QCheck2.assume (Pwl.final_slope alpha <= Pwl.final_slope beta -. 1e-6);
      Pwl.eval (Minplus.deconv alpha beta) t >= Pwl.eval alpha t -. 1e-6)

let prop_hdev_token_bucket_formula =
  qtest "hdev(token bucket, rate-latency) = T + sigma/R"
    QCheck2.Gen.(quad gen_burst gen_rate gen_rate gen_latency)
    (fun (sigma, rho, rate, latency) ->
      QCheck2.assume (rho <= rate -. 1e-3);
      let alpha = token_bucket ~sigma ~rho in
      let beta = rate_latency ~rate ~latency in
      let d = Deviation.hdev ~alpha ~beta in
      Float.abs (d -. (latency +. (sigma /. rate))) <= 1e-6 *. Float.max 1. d)

let prop_inverse_roundtrip =
  qtest "f (f^{-1} y) >= y for increasing f"
    QCheck2.Gen.(pair gen_concave (QCheck2.Gen.float_range 0. 50.))
    (fun (f, y) ->
      QCheck2.assume (Pwl.final_slope f > 1e-3);
      let inv = Pwl.pseudo_inverse f in
      Pwl.eval f (Pwl.eval inv y) >= Float.min y (Pwl.eval f 0.) -. 1e-6)

let prop_busy_period_is_crossing =
  qtest "aggregate is below the line just after the busy period"
    QCheck2.Gen.(pair gen_concave gen_rate)
    (fun (agg, rate) ->
      QCheck2.assume (Pwl.final_slope agg < rate -. 1e-3);
      let b = Pwl.first_crossing_below agg ~rate in
      Float.is_finite b
      && Pwl.eval agg (b +. 1e-6) <= (rate *. (b +. 1e-6)) +. 1e-4)

let suite =
  ( "pwl",
    [
      test "eval basic" test_eval_basic;
      test "eval jump" test_eval_jump;
      test "make validation" test_make_validation;
      test "normalize collinear" test_normalize_collinear;
      test "shape classification" test_shape;
      test "add/sub/scale" test_add_sub_scale;
      test "min/max with crossing" test_min_max_crossing;
      test "nonneg" test_nonneg;
      test "shift_left" test_shift_left;
      test "shift_right" test_shift_right;
      test "compose" test_compose;
      test "pseudo-inverse of rate-latency" test_pseudo_inverse_rate_latency;
      test "pseudo-inverse across a jump" test_pseudo_inverse_jump;
      test "sup_diff" test_sup_diff;
      test "first_crossing_below" test_first_crossing_below;
      test "sup_on" test_sup_on;
      test "conv concave = min" test_conv_concave_is_min;
      test "conv rate-latency" test_conv_rate_latency;
      test "conv convex vs brute force" test_conv_convex_general;
      test "deconv token bucket / rate-latency"
        test_deconv_token_bucket_rate_latency;
      test "deconv unstable rejected" test_deconv_unstable;
      test "hdev classic formula" test_hdev_classic;
      test "hdev unstable" test_hdev_unstable;
      test "vdev at equal final slopes" test_vdev_equal_final_slope;
      test "delay_fifo_aggregate" test_delay_fifo_aggregate;
      prop_min_below_both;
      prop_add_pointwise;
      prop_conv_commutative;
      prop_conv_below_operand;
      prop_deconv_dominates;
      prop_hdev_token_bucket_formula;
      prop_inverse_roundtrip;
      prop_busy_period_is_crossing;
    ] )

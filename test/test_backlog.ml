(* Backlog bounds and buffer dimensioning. *)

open Testutil

let test_single_server_backlog () =
  let f =
    Flow.make ~id:0 ~arrival:(Arrival.token_bucket ~sigma:3. ~rho:0.5 ())
      ~route:[ 0 ] ()
  in
  let net =
    Network.make ~servers:[ Server.make ~id:0 ~rate:1. () ] ~flows:[ f ]
  in
  let a = Decomposed.analyze net in
  approx "backlog = burst" 3. (Decomposed.server_backlog a 0);
  approx "busy period" 6. (Decomposed.server_busy_period a 0)

let test_backlog_grows_downstream () =
  (* Along the tandem the propagated envelopes get burstier, so buffer
     requirements at the middle ports grow with the hop index. *)
  let t = Tandem.make ~n:5 ~utilization:0.7 () in
  let a = Decomposed.analyze t.network in
  let backlogs = List.map (Decomposed.server_backlog a) t.mid_servers in
  let rec nondecreasing = function
    | x :: (y :: _ as rest) -> x <= y +. 1e-9 && nondecreasing rest
    | _ -> true
  in
  check_bool "nondecreasing along the chain" true
    (nondecreasing (List.tl backlogs));
  List.iter (fun b -> check_bool "finite" true (Float.is_finite b)) backlogs

let test_backlog_dominates_simulation () =
  let t = Tandem.make ~n:4 ~utilization:0.8 ~peak:infinity () in
  let net = t.network in
  let a = Decomposed.analyze net in
  let packet_size = 0.2 in
  let res =
    Sim.run ~config:{ Sim.default_config with packet_size; horizon = 300. } net
  in
  List.iter
    (fun (s : Server.t) ->
      let observed = Sim.server_max_backlog res s.id in
      let bound = Decomposed.server_backlog a s.id in
      (* Packetized arrivals are impulses: grant one packet per
         incoming link over the fluid envelope. *)
      let allowance =
        packet_size
        *. float_of_int (List.length (Network.flows_at net s.id))
      in
      check_bool
        (Printf.sprintf "backlog bound at %s: %.3f <= %.3f + %.3f" s.name
           observed bound allowance)
        true
        (observed <= bound +. allowance +. 1e-9))
    (Network.servers net)

let test_idle_server () =
  let net =
    Network.make
      ~servers:[ Server.make ~id:0 ~rate:1. (); Server.make ~id:1 ~rate:1. () ]
      ~flows:
        [
          Flow.make ~id:0 ~arrival:(Arrival.token_bucket ~sigma:1. ~rho:0.1 ())
            ~route:[ 0 ] ();
        ]
  in
  let a = Decomposed.analyze net in
  approx "idle backlog" 0. (Decomposed.server_backlog a 1);
  approx "idle busy period" 0. (Decomposed.server_busy_period a 1)

let prop_backlog_at_least_delay_times_nothing =
  (* Classic relation at a constant-rate server: backlog = delay * rate
     for the FIFO aggregate bound (both are deviations of the same
     envelope). *)
  qtest "backlog = rate * delay at a FIFO server"
    QCheck2.Gen.(triple gen_burst (float_range 0.05 0.7) (float_range 0.5 3.))
    (fun (sigma, rho, rate) ->
      QCheck2.assume (rho < rate -. 1e-3);
      let agg = Pwl.affine ~y0:sigma ~slope:rho in
      let d = Fifo.local_delay ~rate ~agg in
      let b = Fifo.backlog ~rate ~agg in
      Float.abs (b -. (rate *. d)) <= 1e-6 *. Float.max 1. b)

let test_local_delay_bounds_dominate_simulation () =
  (* Finer-grained than the end-to-end check: the per-server local
     delay bound must dominate the worst simulated single-hop delay
     (one packet of store-and-forward allowance per hop). *)
  let t = Tandem.make ~n:4 ~utilization:0.8 ~peak:infinity () in
  let net = t.network in
  let a = Decomposed.analyze net in
  let packet_size = 0.2 in
  let res =
    Sim.run ~config:{ Sim.default_config with packet_size; horizon = 300. } net
  in
  List.iter
    (fun (s : Server.t) ->
      let observed = Sim.server_max_delay res s.id in
      let bound = Decomposed.server_delay a s.id in
      check_bool
        (Printf.sprintf "local bound at %s: %.3f <= %.3f + %.3f" s.name
           observed bound (packet_size /. s.rate))
        true
        (observed <= bound +. (packet_size /. s.rate) +. 1e-9))
    (Network.servers net)

let test_buffer_dimensioning_no_loss () =
  (* Provision every server's buffer at its backlog bound (plus the
     packetization grace): the simulation must drop nothing. *)
  let t = Tandem.make ~n:4 ~utilization:0.8 ~peak:infinity () in
  let net = t.network in
  let a = Decomposed.analyze net in
  let packet_size = 0.25 in
  let buffers =
    List.map
      (fun (s : Server.t) ->
        let grace =
          packet_size *. float_of_int (List.length (Network.flows_at net s.id))
        in
        (s.id, Decomposed.server_backlog a s.id +. grace))
      (Network.servers net)
  in
  let res =
    Sim.run
      ~config:{ Sim.default_config with packet_size; horizon = 300.; buffers }
      net
  in
  Alcotest.(check int) "zero drops with dimensioned buffers" 0
    (Sim.total_drops res)

let test_per_flow_refinement_hand_example () =
  (* Two token buckets through a rate-1 FIFO server.  The naive split
     min (alpha_1 (hdev agg beta)) (vdev agg beta) gives 4.6 for flow 1;
     the FIFO-age argument tightens it to 31/7 because at the time the
     queue peaks, flow 1's freshest queued bits are younger than the
     worst-case delay. *)
  let alpha1 = Pwl.affine ~y0:3. ~slope:0.2 in
  let alpha2 = Pwl.affine ~y0:5. ~slope:0.3 in
  let agg = Pwl.add alpha1 alpha2 in
  let beta = Pwl.affine ~y0:0. ~slope:1. in
  let refined = Deviation.vdev_per_flow ~alpha_i:alpha1 ~agg ~beta in
  let naive =
    Float.min
      (Pwl.eval alpha1 (Deviation.hdev ~alpha:agg ~beta))
      (Deviation.vdev ~alpha:agg ~beta)
  in
  approx ~tol:1e-9 "refined bound" (31. /. 7.) refined;
  approx ~tol:1e-9 "naive bound" 4.6 naive;
  check_bool "strictly tighter than the naive split" true
    (refined < naive -. 0.1)

let prop_per_flow_below_naive =
  qtest ~count:150 "per-flow refinement never exceeds the naive split"
    QCheck2.Gen.(triple gen_concave gen_concave gen_rate)
    (fun (alpha1, alpha2, rate) ->
      let agg = Pwl.add alpha1 alpha2 in
      let beta = Pwl.affine ~y0:0. ~slope:rate in
      let refined = Deviation.vdev_per_flow ~alpha_i:alpha1 ~agg ~beta in
      let vdev = Deviation.vdev ~alpha:agg ~beta in
      if not (Float.is_finite vdev) then
        (* Unstable aggregate: both bounds blow up. *)
        refined = infinity
      else
        let naive =
          Float.min (Pwl.eval alpha1 (Deviation.hdev ~alpha:agg ~beta)) vdev
        in
        refined <= naive +. 1e-6 *. Float.max 1. naive)

let test_per_flow_accessors_consistent () =
  (* The per-flow bounds partition consistently: each is at most the
     server aggregate bound, matches the local accessor, and the
     flow-level buffer need is the max over the route. *)
  let t = Tandem.make ~n:4 ~utilization:0.7 () in
  let net = t.network in
  let a = Decomposed.analyze net in
  List.iter
    (fun (s : Server.t) ->
      let b_agg = Decomposed.server_backlog a s.id in
      List.iter
        (fun (fid, b) ->
          check_bool
            (Printf.sprintf "flow %d at %s within aggregate" fid s.name)
            true
            (b <= b_agg +. 1e-9);
          approx
            (Printf.sprintf "accessors agree for flow %d at %s" fid s.name)
            b
            (Decomposed.local_backlog a ~flow:fid ~server:s.id))
        (Decomposed.server_flow_backlogs a s.id))
    (Network.servers net);
  List.iter
    (fun (f : Flow.t) ->
      let expected =
        List.fold_left
          (fun acc s ->
            Float.max acc (Decomposed.local_backlog a ~flow:f.id ~server:s))
          0. f.route
      in
      approx
        (Printf.sprintf "flow %d buffer need = max over route" f.id)
        expected
        (Decomposed.flow_backlog a f.id))
    (Network.flows net)

let test_backlog_dominates_random_dags () =
  (* Same soundness check as the tandem, on random feedforward DAGs. *)
  let packet_size = 0.05 in
  List.iter
    (fun seed ->
      let net =
        Randomnet.generate
          {
            Randomnet.default with
            layers = 3;
            per_layer = 2;
            num_flows = 6;
            utilization = 0.75;
            peak = infinity;
            seed;
          }
      in
      let a = Decomposed.analyze net in
      let res =
        Sim.run
          ~config:{ Sim.default_config with packet_size; horizon = 200. }
          net
      in
      List.iter
        (fun (s : Server.t) ->
          let observed = Sim.server_max_backlog res s.id in
          let bound = Decomposed.server_backlog a s.id in
          let allowance =
            packet_size
            *. float_of_int (List.length (Network.flows_at net s.id))
          in
          check_bool
            (Printf.sprintf "seed %d server %s: %.3f <= %.3f + %.3f" seed
               s.name observed bound allowance)
            true
            (observed <= bound +. allowance +. 1e-9))
        (Network.servers net))
    [ 1; 7; 42; 1999 ]

let test_undersized_buffers_drop () =
  let t = Tandem.make ~n:3 ~utilization:0.8 ~peak:infinity () in
  let net = t.network in
  let packet_size = 0.25 in
  (* First measure the real peaks, then provision at half of them. *)
  let free =
    Sim.run ~config:{ Sim.default_config with packet_size; horizon = 200. } net
  in
  let buffers =
    List.filter_map
      (fun (s : Server.t) ->
        let peak = Sim.server_max_backlog free s.id in
        if peak > packet_size then Some (s.id, peak /. 2.) else None)
      (Network.servers net)
  in
  let res =
    Sim.run
      ~config:{ Sim.default_config with packet_size; horizon = 200.; buffers }
      net
  in
  check_bool "halved buffers cause drops" true (Sim.total_drops res > 0)


let suite =
  ( "backlog",
    [
      test "single server" test_single_server_backlog;
      test "grows downstream" test_backlog_grows_downstream;
      test "dominates simulated backlog" test_backlog_dominates_simulation;
      test "local delay bounds dominate per-hop simulation"
        test_local_delay_bounds_dominate_simulation;
      test "idle server" test_idle_server;
      test "buffer dimensioning prevents loss"
        test_buffer_dimensioning_no_loss;
      test "undersized buffers drop" test_undersized_buffers_drop;
      prop_backlog_at_least_delay_times_nothing;
      test "per-flow refinement hand example"
        test_per_flow_refinement_hand_example;
      prop_per_flow_below_naive;
      test "per-flow accessors consistent" test_per_flow_accessors_consistent;
      test "dominates simulation on random DAGs"
        test_backlog_dominates_random_dags;
    ] )

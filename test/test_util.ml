(* Tests for the utility layer: tolerant comparisons, sweeps, tables. *)

open Testutil

let test_float_ops_eq () =
  let open Float_ops in
  check_bool "exact" true (1.0 =~ 1.0);
  check_bool "within tolerance" true (1.0 =~ (1.0 +. 1e-12));
  check_bool "relative tolerance on big numbers" true
    (1e12 =~ (1e12 +. 1.0 /. 1e3));
  check_bool "beyond tolerance" false (1.0 =~ 1.001);
  check_bool "inf = inf" true (infinity =~ infinity);
  check_bool "inf <> finite" false (infinity =~ 1e308);
  check_bool "nan never equal" false (Float.nan =~ Float.nan)

let test_float_ops_order () =
  let open Float_ops in
  check_bool "strictly less" true (1.0 <~ 2.0);
  check_bool "not less within tolerance" false (1.0 <~ (1.0 +. 1e-12));
  check_bool "leq on equal" true (1.0 <=~ 1.0);
  check_bool "leq on tolerance" true ((1.0 +. 1e-12) <=~ 1.0)

let test_float_ops_div () =
  approx "normal" 2. (Float_ops.div 4. 2.);
  approx "zero by zero" 0. (Float_ops.div 0. 0.);
  approx "positive by zero" infinity (Float_ops.div 3. 0.);
  approx "negative by zero" neg_infinity (Float_ops.div (-3.) 0.)

let test_float_ops_misc () =
  approx "clamp below" 1. (Float_ops.clamp ~lo:1. ~hi:5. 0.);
  approx "clamp above" 5. (Float_ops.clamp ~lo:1. ~hi:5. 9.);
  approx "clamp inside" 3. (Float_ops.clamp ~lo:1. ~hi:5. 3.);
  approx "positive part" 0. (Float_ops.positive_part (-2.));
  approx "max of empty" neg_infinity (Float_ops.max_list []);
  approx "min of empty" infinity (Float_ops.min_list []);
  approx "max list" 7. (Float_ops.max_list [ 3.; 7.; -1. ])

let test_sweep_linspace () =
  Alcotest.(check (list (float 1e-9)))
    "five points"
    [ 0.; 0.25; 0.5; 0.75; 1. ]
    (Sweep.linspace ~lo:0. ~hi:1. ~n:5);
  Alcotest.(check (list (float 1e-9))) "single" [ 2. ] (Sweep.linspace ~lo:2. ~hi:9. ~n:1)

let test_sweep_steps () =
  Alcotest.(check (list (float 1e-9)))
    "inclusive of endpoint"
    [ 0.1; 0.2; 0.3 ]
    (Sweep.steps ~lo:0.1 ~hi:0.3 ~step:0.1);
  Alcotest.(check int) "many steps" 9
    (List.length (Sweep.steps ~lo:0.1 ~hi:0.9 ~step:0.1))

(* The bench grid: index-based generation + decimal snapping must
   reproduce the exact float literals 0.1 .. 0.9 — no accumulation
   drift (0.1 +. 0.2 alone is already 0.30000000000000004).  Exact
   equality on purpose. *)
let test_sweep_steps_exact () =
  let got = Sweep.steps ~lo:0.1 ~hi:0.9 ~step:0.1 in
  let want = [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ] in
  Alcotest.(check int) "length" (List.length want) (List.length got);
  List.iter2
    (fun w g ->
      if w <> g then Alcotest.failf "grid point: expected %.17g, got %.17g" w g)
    want got;
  (* Robustness cases: single point, empty range. *)
  Alcotest.(check (list (float 0.))) "single point" [ 2. ]
    (Sweep.steps ~lo:2. ~hi:2. ~step:0.5);
  Alcotest.(check (list (float 0.))) "empty when hi < lo" []
    (Sweep.steps ~lo:1. ~hi:0. ~step:0.25)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_table_render () =
  let t = Table.create ~header:[ "a"; "bb" ] in
  Table.add_row t [ "x"; "yyy" ];
  Table.add_floats t [ 1.5; infinity ];
  let s = Table.to_string t in
  check_bool "has header" true (contains s "bb");
  check_bool "renders inf" true (contains s "inf");
  check_bool "renders float" true (contains s "1.5")

let test_table_padding_and_errors () =
  let t = Table.create ~header:[ "a"; "b"; "c" ] in
  Table.add_row t [ "only" ];
  check_bool "short rows padded" true
    (String.length (Table.to_string t) > 0);
  try
    Table.add_row t [ "1"; "2"; "3"; "4" ];
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_table_csv () =
  let t = Table.create ~header:[ "name"; "value" ] in
  Table.add_row t [ "plain"; "1" ];
  Table.add_row t [ "with,comma"; "quote\"inside" ];
  let csv = Table.to_csv t in
  Alcotest.(check string) "csv escaping"
    "name,value\nplain,1\n\"with,comma\",\"quote\"\"inside\"\n" csv

(* RFC 4180: embedded line breaks (LF or CR) force quoting too, and
   quotes inside quoted cells are doubled — a scenario label with any
   of these must not corrupt the row/column structure. *)
let test_table_csv_line_breaks () =
  let t = Table.create ~header:[ "label"; "value" ] in
  Table.add_row t [ "line\nbreak"; "2" ];
  Table.add_row t [ "carriage\rreturn"; "3" ];
  Table.add_row t [ "both\"and,more\n"; "4" ];
  Alcotest.(check string) "newline and cr quoting"
    ("label,value\n\"line\nbreak\",2\n\"carriage\rreturn\",3\n"
   ^ "\"both\"\"and,more\n\",4\n")
    (Table.to_csv t)

let suite =
  ( "util",
    [
      test "float equality" test_float_ops_eq;
      test "float ordering" test_float_ops_order;
      test "guarded division" test_float_ops_div;
      test "clamp and friends" test_float_ops_misc;
      test "linspace" test_sweep_linspace;
      test "steps" test_sweep_steps;
      test "steps exact decimal grid" test_sweep_steps_exact;
      test "table rendering" test_table_render;
      test "table padding and errors" test_table_padding_and_errors;
      test "table csv" test_table_csv;
      test "table csv line breaks" test_table_csv_line_breaks;
    ] )

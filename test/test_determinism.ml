(* Determinism: the random-network generator and the analysis engines
   must be pure functions of the seed — same params, same network, same
   bounds, bit for bit.  Regressions here (e.g. an accidental global
   RNG or hashtable-order dependence) would silently break experiment
   reproducibility. *)

open Testutil

let params = { Randomnet.default with seed = 20260806; num_flows = 10 }

let network_fingerprint net =
  let flows =
    Network.flows net
    |> List.map (fun (f : Flow.t) ->
           Format.asprintf "%s|%s|%a" f.name
             (String.concat "-" (List.map string_of_int f.route))
             Pwl.pp (Flow.source_curve f))
  in
  let servers =
    Network.servers net
    |> List.map (fun (s : Server.t) ->
           Printf.sprintf "%s|%d|%.17g" s.name s.id s.rate)
  in
  String.concat "\n" (servers @ flows)

let test_same_network () =
  let n1 = Randomnet.generate params and n2 = Randomnet.generate params in
  Alcotest.(check string) "identical networks"
    (network_fingerprint n1) (network_fingerprint n2)

let test_same_results () =
  let run () =
    let net = Randomnet.generate params in
    Network.flows net
    |> List.map (fun (f : Flow.t) ->
           Engine.compare_all ~strategy:Pairing.Greedy net f.id)
  in
  let r1 = run () and r2 = run () in
  List.iter2
    (fun (a : Engine.comparison) (b : Engine.comparison) ->
      Alcotest.(check int) "same flow" a.flow b.flow;
      let exact name x y =
        (* Bitwise equality: determinism, not numeric tolerance.  NaN
           (FIFO-theta disabled cases) compares equal to itself here. *)
        if not (x = y || (Float.is_nan x && Float.is_nan y)) then
          Alcotest.failf "flow %d %s: %.17g <> %.17g" a.flow name x y
      in
      exact "decomposed" a.decomposed b.decomposed;
      exact "service_curve" a.service_curve b.service_curve;
      exact "integrated" a.integrated b.integrated;
      exact "fifo_theta" a.fifo_theta b.fifo_theta)
    r1 r2

let suite =
  ( "determinism",
    [
      test "same seed, same network" test_same_network;
      test "same seed, same compare_all results" test_same_results;
    ] )

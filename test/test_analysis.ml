(* Tests for the analysis engines: Decomposed, Service Curve,
   Integrated (pairing + pair bound), FIFO-theta, admission control. *)

open Testutil

let tb ~sigma ~rho = Pwl.affine ~y0:sigma ~slope:rho

let tandem ?(peak = 1.) ?(sigma = 1.) n u =
  Tandem.make ~n ~utilization:u ~sigma ~peak ()

(* ------------------------------------------------------------------ *)
(* Pairing                                                             *)
(* ------------------------------------------------------------------ *)

let test_pairing_along_route () =
  let t = tandem 4 0.5 in
  let p = Pairing.build t.network (Pairing.Along_route 0) in
  let pairs =
    List.filter (function Pairing.Pair _ -> true | _ -> false) p
  in
  Alcotest.(check int) "two pairs on conn0's route" 2 (List.length pairs);
  check_bool "conn0 hops paired in order" true
    (List.mem (Pairing.Pair (0, 1)) p && List.mem (Pairing.Pair (2, 3)) p);
  (* All 12 servers covered exactly once. *)
  let covered = List.concat_map Pairing.servers_of p in
  Alcotest.(check int) "cover size" 12 (List.length covered);
  Alcotest.(check int) "no duplicates" 12
    (List.length (List.sort_uniq compare covered))

let test_pairing_singletons () =
  let t = tandem 3 0.5 in
  let p = Pairing.build t.network Pairing.Singletons in
  check_bool "only singletons" true
    (List.for_all (function Pairing.Single _ -> true | _ -> false) p)

let test_pairing_greedy () =
  let t = tandem 6 0.5 in
  let p = Pairing.build t.network Pairing.Greedy in
  Pairing.validate t.network p;
  check_bool "greedy pairs something" true
    (List.exists (function Pairing.Pair _ -> true | _ -> false) p)

let test_pairing_rejects_contraction_cycle () =
  (* u -> x -> v plus u -> v: pairing (u, v) would contract into a
     cycle through x's subnet and must be rejected. *)
  let arrival = Arrival.token_bucket ~sigma:1. ~rho:0.05 () in
  let servers = List.init 3 (fun id -> Server.make ~id ~rate:1. ()) in
  let flows =
    [
      Flow.make ~id:0 ~arrival ~route:[ 0; 2 ] ();
      Flow.make ~id:1 ~arrival ~route:[ 0; 1; 2 ] ();
    ]
  in
  let net = Network.make ~servers ~flows in
  (try
     Pairing.validate net [ Pairing.Pair (0, 2); Pairing.Single 1 ];
     Alcotest.fail "expected rejection"
   with Network.Cyclic | Invalid_argument _ -> ());
  (* Greedy must avoid that pair and still produce a valid pairing. *)
  let p = Pairing.build net Pairing.Greedy in
  Pairing.validate net p

let test_pairing_validate_cover () =
  let t = tandem 2 0.5 in
  try
    Pairing.validate t.network [ Pairing.Pair (0, 1) ];
    Alcotest.fail "expected cover violation"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Pair analysis (the Theorem)                                         *)
(* ------------------------------------------------------------------ *)

let test_pair_pay_burst_once () =
  (* One flow, two rate-1 servers, no cross traffic: end-to-end bound
     is sigma (burst paid once), versus sigma (2 + rho) decomposed. *)
  let r =
    Pair_analysis.analyze
      { c1 = 1.; c2 = 1.; s12 = [ tb ~sigma:2. ~rho:0.25 ]; s1 = []; s2 = [] }
  in
  approx "pay burst once" 2. r.d_pair;
  approx "d1 is the local bound" 2. r.d1

let test_pair_dominates_locals () =
  let r =
    Pair_analysis.analyze
      {
        c1 = 1.;
        c2 = 1.;
        s12 = [ tb ~sigma:1. ~rho:0.1 ];
        s1 = [ tb ~sigma:1. ~rho:0.1 ];
        s2 = [ tb ~sigma:1. ~rho:0.1 ];
      }
  in
  check_bool "d_pair >= d1" true (r.d_pair >= r.d1 -. 1e-9);
  check_bool "finite" true (Float.is_finite r.d_pair)

let test_pair_unstable () =
  let r =
    Pair_analysis.analyze
      { c1 = 1.; c2 = 1.; s12 = [ tb ~sigma:1. ~rho:1.2 ]; s1 = []; s2 = [] }
  in
  approx "unstable pair" infinity r.d_pair;
  approx "unstable d1" infinity r.d1

let test_pair_unstable_second_only () =
  (* Server 1 fine; server 2 overloaded by fresh traffic. *)
  let r =
    Pair_analysis.analyze
      {
        c1 = 1.;
        c2 = 1.;
        s12 = [ tb ~sigma:1. ~rho:0.2 ];
        s1 = [];
        s2 = [ tb ~sigma:1. ~rho:0.9 ];
      }
  in
  check_bool "d1 finite" true (Float.is_finite r.d1);
  approx "d2 infinite" infinity r.d2;
  approx "pair infinite" infinity r.d_pair

(* The pair bound must be at least as large as the bound evaluated on
   a dense grid of (s, u2) scenarios — a numeric guard for the
   candidate-set argument in DESIGN.md §3.3.  All ingredients (busy
   periods, d1) are recomputed independently so a bug in the engine
   cannot silently shrink the grid. *)
let dense_pair_bound ~c1 ~c2 ~s12 ~s1 ~s2 =
  let g1 = Pwl.sum (s12 @ s1) in
  let f12 = Pwl.sum s12 in
  let f2 = Pwl.sum s2 in
  let d1 = Fifo.local_delay ~rate:c1 ~agg:g1 in
  let busy1 = Fifo.busy_period ~rate:c1 ~agg:g1 in
  let a2win =
    Pwl.add
      (Pwl.min_pw (Pwl.affine ~y0:0. ~slope:c1) (Pwl.shift_left f12 d1))
      f2
  in
  let busy2 = Fifo.busy_period ~rate:c2 ~agg:a2win in
  let grid lo hi n =
    List.init (n + 1) (fun i ->
        lo +. ((hi -. lo) *. float_of_int i /. float_of_int n))
  in
  let best = ref 0. in
  List.iter
    (fun s ->
      let tau = Float.max s (Pwl.eval g1 s /. c1) in
      let m = Pwl.eval f12 tau in
      (* case A *)
      List.iter
        (fun w ->
          let transit =
            Float.min (c1 *. w)
              (Float.min m (Pwl.eval f12 (w +. d1)))
          in
          let v = tau -. s +. ((transit +. Pwl.eval f2 w) /. c2) -. w in
          if v > !best then best := v)
        (grid 0. tau 40);
      (* case B *)
      List.iter
        (fun w ->
          let transit = Float.min (c1 *. w) (Pwl.eval f12 (w +. d1)) in
          let v = tau -. s +. ((transit +. Pwl.eval f2 w) /. c2) -. w in
          if v > !best then best := v)
        (grid tau (tau +. Float.min busy2 50.) 40))
    (grid 0. busy1 60);
  !best

let test_pair_bound_dominates_dense_grid () =
  List.iter
    (fun (sigma, rho, cross) ->
      let input =
        {
          Pair_analysis.c1 = 1.;
          c2 = 1.;
          s12 = [ tb ~sigma ~rho; tb ~sigma:cross ~rho ];
          s1 = [ tb ~sigma:cross ~rho ];
          s2 = [ tb ~sigma ~rho; tb ~sigma:cross ~rho ];
        }
      in
      let r = Pair_analysis.analyze input in
      let dense =
        dense_pair_bound ~c1:1. ~c2:1. ~s12:input.s12 ~s1:input.s1
          ~s2:input.s2
      in
      check_bool
        (Printf.sprintf "candidate sup >= dense grid (sigma=%g rho=%g)" sigma
           rho)
        true
        (r.d_pair >= dense -. 1e-6))
    [ (1., 0.1, 1.); (2., 0.2, 0.5); (0.5, 0.05, 3.); (1., 0.24, 1.) ];
  (* The same property with the paper's peak-rate-1 (continuous at 0)
     sources — a regression guard for busy periods of envelopes that
     touch the service line at the origin. *)
  List.iter
    (fun u ->
      let rho = u /. 4. in
      let src () = Pwl.min_pw (Pwl.affine ~y0:0. ~slope:1.)
          (Pwl.affine ~y0:1. ~slope:rho) in
      let input =
        { Pair_analysis.c1 = 1.; c2 = 1.;
          s12 = [ src (); src () ]; s1 = [ src () ]; s2 = [ src (); src () ] }
      in
      let r = Pair_analysis.analyze input in
      check_bool "busy period not collapsed" true (r.busy1 > 1.);
      let dense =
        dense_pair_bound ~c1:1. ~c2:1. ~s12:input.s12 ~s1:input.s1
          ~s2:input.s2
      in
      check_bool
        (Printf.sprintf "peak-capped candidate sup >= dense grid (U=%g)" u)
        true
        (r.d_pair >= dense -. 1e-6))
    [ 0.1; 0.5; 0.9 ]

let prop_pair_below_two_hop_decomposition =
  (* The integrated pair bound never exceeds (and usually beats) the
     decomposed two-server bound with the same inputs. *)
  qtest ~count:100 "pair bound <= decomposed sum"
    QCheck2.Gen.(
      quad (float_range 0.2 3.) (float_range 0.01 0.2) (float_range 0. 3.)
        (float_range 0. 3.))
    (fun (sigma, rho, cross1, cross2) ->
      let s12 = [ tb ~sigma ~rho ] in
      let s1 = if cross1 = 0. then [] else [ tb ~sigma:cross1 ~rho ] in
      let s2 = if cross2 = 0. then [] else [ tb ~sigma:cross2 ~rho ] in
      let r = Pair_analysis.analyze { c1 = 1.; c2 = 1.; s12; s1; s2 } in
      (* Decomposed: local delay at server 1, then inflated envelopes
         at server 2. *)
      let d1 = Fifo.local_delay ~rate:1. ~agg:(Pwl.sum (s12 @ s1)) in
      let inflated = List.map (fun c -> Pwl.shift_left c d1) s12 in
      let d2 = Fifo.local_delay ~rate:1. ~agg:(Pwl.sum (inflated @ s2)) in
      r.d_pair <= d1 +. d2 +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Decomposed engine vs closed form                                    *)
(* ------------------------------------------------------------------ *)

let test_decomposed_matches_closed_form () =
  List.iter
    (fun (n, u) ->
      let t = tandem ~peak:infinity n u in
      let a = Decomposed.analyze t.network in
      let rho = u /. 4. in
      approx
        (Printf.sprintf "closed form n=%d U=%g" n u)
        (Closed_form.decomposed ~n ~sigma:1. ~rho)
        (Decomposed.flow_delay a 0))
    [ (2, 0.3); (3, 0.5); (4, 0.8); (8, 0.9); (6, 0.2) ]

let test_decomposed_locals_match () =
  let n = 4 and u = 0.6 in
  let t = tandem ~peak:infinity n u in
  let a = Decomposed.analyze t.network in
  let expected = Closed_form.decomposed_locals ~n ~sigma:1. ~rho:(u /. 4.) in
  List.iteri
    (fun k e ->
      approx (Printf.sprintf "E_%d" k) e
        (Decomposed.local_delay a ~flow:0 ~server:k))
    expected

(* Off-route lookups: the engines raise a descriptive
   Invalid_argument, never an ambient Not_found (which Par workers
   and the serve loop would see as stray control flow), and the _opt
   variant mirrors the raising one exactly. *)
let test_off_route_lookups () =
  let t = tandem 3 0.5 in
  let a = Decomposed.analyze t.network in
  let expect_invalid what f =
    try
      ignore (f ());
      Alcotest.failf "%s: expected Invalid_argument" what
    with Invalid_argument _ -> ()
  in
  expect_invalid "Decomposed.local_delay" (fun () ->
      Decomposed.local_delay a ~flow:0 ~server:999);
  expect_invalid "Decomposed.local_backlog" (fun () ->
      Decomposed.local_backlog a ~flow:0 ~server:999);
  let i = Integrated.analyze t.network in
  expect_invalid "Integrated.local_backlog" (fun () ->
      Integrated.local_backlog i ~flow:0 ~server:999);
  let off_route = ref 0 in
  List.iter
    (fun subnet ->
      match Integrated.subnet_delay_opt i ~flow:0 ~subnet with
      | Some d ->
          approx "subnet_delay agrees with _opt" d
            (Integrated.subnet_delay i ~flow:0 ~subnet)
      | None ->
          incr off_route;
          expect_invalid "Integrated.subnet_delay off-route" (fun () ->
              Integrated.subnet_delay i ~flow:0 ~subnet))
    (Integrated.pairing i);
  check_bool "some subnet is off-route for the through flow" true
    (!off_route > 0)

let test_service_curve_matches_closed_form () =
  List.iter
    (fun (n, u) ->
      let t = tandem ~peak:infinity n u in
      let a = Service_curve_method.analyze t.network in
      approx
        (Printf.sprintf "closed form n=%d U=%g" n u)
        (Closed_form.service_curve ~n ~sigma:1. ~rho:(u /. 4.))
        (Service_curve_method.flow_delay a 0))
    [ (2, 0.3); (4, 0.5); (5, 0.8) ]

let test_decomposed_unstable () =
  (* Utilization above 1 at an interior port: infinite bound for the
     flows that cross it, finite for those that do not. *)
  let arrival = Arrival.token_bucket ~sigma:1. ~rho:0.6 () in
  let servers = List.init 2 (fun id -> Server.make ~id ~rate:1. ()) in
  let flows =
    [
      Flow.make ~id:0 ~arrival ~route:[ 0; 1 ] ();
      Flow.make ~id:1 ~arrival ~route:[ 0; 1 ] ();
      Flow.make ~id:2 ~arrival:(Arrival.token_bucket ~sigma:1. ~rho:0.1 ())
        ~route:[ 0 ] ();
    ]
  in
  let net = Network.make ~servers ~flows in
  let a = Decomposed.analyze net in
  (* Server 0 carries 1.3 > 1: everyone through it is unbounded. *)
  approx "flow 0 unbounded" infinity (Decomposed.flow_delay a 0);
  approx "flow 2 unbounded" infinity (Decomposed.flow_delay a 2)

(* ------------------------------------------------------------------ *)
(* Integrated engine                                                   *)
(* ------------------------------------------------------------------ *)

let test_integrated_beats_decomposed_on_tandem () =
  List.iter
    (fun (n, u) ->
      let t = tandem n u in
      let dd = Decomposed.flow_delay (Decomposed.analyze t.network) 0 in
      let di =
        Integrated.flow_delay
          (Integrated.analyze ~strategy:(Pairing.Along_route 0) t.network)
          0
      in
      check_bool (Printf.sprintf "D_I < D_D at n=%d U=%g" n u) true
        (di < dd))
    [ (2, 0.2); (2, 0.9); (4, 0.5); (6, 0.8); (8, 0.9); (5, 0.4) ]

let test_integrated_all_flows_dominated () =
  let t = tandem 5 0.7 in
  let dd = Decomposed.analyze t.network in
  let integ = Integrated.analyze ~strategy:(Pairing.Along_route 0) t.network in
  List.iter
    (fun (f : Flow.t) ->
      check_bool (Printf.sprintf "%s integrated <= decomposed" f.name) true
        (Integrated.flow_delay integ f.id
        <= Decomposed.flow_delay dd f.id +. 1e-9))
    (Network.flows t.network)

let test_integrated_singletons_equals_decomposed () =
  (* With singleton subnetworks the integrated algorithm degenerates to
     the decomposed one. *)
  let t = tandem 4 0.6 in
  let dd = Decomposed.analyze t.network in
  let integ = Integrated.analyze ~strategy:Pairing.Singletons t.network in
  List.iter
    (fun (f : Flow.t) ->
      approx
        (Printf.sprintf "%s equal" f.name)
        (Decomposed.flow_delay dd f.id)
        (Integrated.flow_delay integ f.id))
    (Network.flows t.network)

let test_integrated_rejects_non_fifo () =
  let servers =
    [
      Server.make ~id:0 ~rate:1. ();
      Server.make ~id:1 ~rate:1. ~discipline:Discipline.Gps ();
    ]
  in
  let flows =
    [
      Flow.make ~id:0 ~arrival:(Arrival.token_bucket ~sigma:1. ~rho:0.1 ())
        ~route:[ 0; 1 ] ();
    ]
  in
  let net = Network.make ~servers ~flows in
  try
    ignore (Integrated.analyze net);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_integrated_subnet_delay_bookkeeping () =
  let t = tandem 4 0.5 in
  let integ = Integrated.analyze ~strategy:(Pairing.Along_route 0) t.network in
  let d01 = Integrated.subnet_delay integ ~flow:0 ~subnet:(Pairing.Pair (0, 1)) in
  let d23 = Integrated.subnet_delay integ ~flow:0 ~subnet:(Pairing.Pair (2, 3)) in
  approx "contributions sum to the bound" (d01 +. d23)
    (Integrated.flow_delay integ 0)

let test_link_cap_option_tightens () =
  let t = tandem 6 0.8 in
  let base = Decomposed.flow_delay (Decomposed.analyze t.network) 0 in
  let capped =
    Decomposed.flow_delay
      (Decomposed.analyze ~options:Options.sharpened t.network)
      0
  in
  check_bool "link cap never hurts" true (capped <= base +. 1e-9);
  check_bool "link cap strictly helps here" true (capped < base -. 1e-6)

let prop_integrated_dominated_on_random_nets =
  qtest ~count:40 "integrated <= decomposed on random feedforward nets"
    QCheck2.Gen.(
      triple (int_range 2 4) (int_range 2 10) (int_range 0 10_000))
    (fun (layers, num_flows, seed) ->
      let net =
        Randomnet.generate
          { Randomnet.default with layers; num_flows; seed; utilization = 0.8 }
      in
      let dd = Decomposed.analyze net in
      let integ = Integrated.analyze ~strategy:Pairing.Greedy net in
      List.for_all
        (fun (f : Flow.t) ->
          Integrated.flow_delay integ f.id
          <= Decomposed.flow_delay dd f.id +. 1e-6)
        (Network.flows net))

(* ------------------------------------------------------------------ *)
(* Service curve and FIFO-theta                                        *)
(* ------------------------------------------------------------------ *)

let test_service_curve_blowup_at_high_load () =
  (* The leftover rate collapses as U -> 1: D_SC grows much faster
     than D_D (Fig. 4's message). *)
  let r u =
    let t = tandem 4 u in
    let dsc = Service_curve_method.flow_delay (Service_curve_method.analyze t.network) 0 in
    let dd = Decomposed.flow_delay (Decomposed.analyze t.network) 0 in
    dsc /. dd
  in
  check_bool "ratio grows with load" true (r 0.9 > r 0.5 && r 0.5 > r 0.2)

let test_fifo_theta_beats_service_curve () =
  List.iter
    (fun (n, u) ->
      let t = tandem n u in
      let dsc =
        Service_curve_method.flow_delay
          (Service_curve_method.analyze t.network)
          0
      in
      let dth = Fifo_theta.flow_delay (Fifo_theta.analyze t.network) 0 in
      check_bool (Printf.sprintf "theta <= SFA at n=%d U=%g" n u) true
        (dth <= dsc +. 1e-9))
    [ (2, 0.5); (4, 0.8); (6, 0.9) ]

let test_network_service_curve_composition () =
  let t = tandem 3 0.5 in
  let a = Service_curve_method.analyze t.network in
  let net_curve = Service_curve_method.network_service_curve a ~flow:0 in
  (* The network curve is below every hop curve (convolution). *)
  List.iter
    (fun sid ->
      let hop = Service_curve_method.hop_service_curve a ~flow:0 ~server:sid in
      List.iter
        (fun x ->
          check_bool "network curve below hop curve" true
            (Pwl.eval net_curve x <= Pwl.eval hop x +. 1e-9))
        [ 0.; 1.; 5.; 20. ])
    [ 0; 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Engine and admission control                                        *)
(* ------------------------------------------------------------------ *)

let test_engine_comparison () =
  let t = tandem 3 0.6 in
  let c = Engine.compare_all ~strategy:(Pairing.Along_route 0) t.network 0 in
  check_bool "integrated strictly best of the paper's three" true
    (c.integrated < c.decomposed && c.integrated < c.service_curve);
  approx "relative improvement definition" 0.25
    (Engine.relative_improvement 4. 3.)

let test_admission_integrated_admits_more () =
  (* Offer identical deadline-bearing copies of conn0-like connections;
     the tighter analysis admits at least as many. *)
  let n = 4 in
  let base = Tandem.make ~n ~utilization:0.5 () in
  let servers = Network.servers base.network in
  let deadline = 18. in
  let candidates =
    List.init 6 (fun i ->
        Flow.make ~id:(100 + i)
          ~arrival:(Arrival.paper_source ~sigma:1. ~rho:0.02)
          ~route:(List.init n (fun k -> k))
          ~deadline ())
  in
  let run method_ =
    (Admission.run ~servers
       ~base:(Network.flows base.network)
       ~candidates ~method_ ~strategy:(Pairing.Along_route 0) ())
      .admitted |> List.length
  in
  let n_dec = run Engine.Decomposed in
  let n_int = run Engine.Integrated in
  check_bool
    (Printf.sprintf "integrated admits >= decomposed (%d vs %d)" n_int n_dec)
    true (n_int >= n_dec);
  check_bool "integrated admits something" true (n_int > 0)

let test_admission_rejects_no_deadline () =
  let base = Tandem.make ~n:2 ~utilization:0.3 () in
  let cand =
    Flow.make ~id:50 ~arrival:(Arrival.paper_source ~sigma:1. ~rho:0.01)
      ~route:[ 0; 1 ] ()
  in
  let outcome =
    Admission.run
      ~servers:(Network.servers base.network)
      ~base:(Network.flows base.network)
      ~candidates:[ cand ] ~method_:Engine.Decomposed ()
  in
  Alcotest.(check int) "rejected" 1 (List.length outcome.rejected)

let test_admission_is_fcfs () =
  (* A large early candidate can crowd out later small ones: admission
     is first-come-first-served with no backtracking. *)
  let n = 2 in
  let t = Tandem.make ~n ~utilization:0.3 () in
  let servers = Network.servers t.network in
  let base = Network.flows t.network in
  let big id =
    Flow.make ~id ~arrival:(Arrival.paper_source ~sigma:1. ~rho:0.3)
      ~route:[ 0; 1 ] ~deadline:30. ()
  in
  let small id =
    Flow.make ~id ~arrival:(Arrival.paper_source ~sigma:1. ~rho:0.05)
      ~route:[ 0; 1 ] ~deadline:30. ()
  in
  let count candidates =
    List.length
      (Admission.run ~servers ~base ~candidates ~method_:Engine.Integrated
         ~strategy:(Pairing.Along_route 0) ())
        .admitted
  in
  let big_first = count [ big 100; small 101; small 102; small 103 ] in
  let small_first = count [ small 101; small 102; small 103; big 100 ] in
  check_bool
    (Printf.sprintf "ordering matters (%d vs %d)" big_first small_first)
    true
    (small_first >= big_first)


let prop_link_cap_never_hurts_random =
  qtest ~count:30 "link-cap sharpening never hurts on random nets"
    QCheck2.Gen.(pair (int_range 2 8) (int_range 0 10_000))
    (fun (num_flows, seed) ->
      let net =
        Randomnet.generate
          { Randomnet.default with num_flows; seed; utilization = 0.75 }
      in
      let plain = Integrated.analyze ~strategy:Pairing.Greedy net in
      let capped =
        Integrated.analyze ~options:Options.sharpened ~strategy:Pairing.Greedy
          net
      in
      List.for_all
        (fun (f : Flow.t) ->
          Integrated.flow_delay capped f.id
          <= Integrated.flow_delay plain f.id +. 1e-6)
        (Network.flows net))


let suite =
  ( "analysis",
    [
      test "pairing along route" test_pairing_along_route;
      test "pairing singletons" test_pairing_singletons;
      test "pairing greedy" test_pairing_greedy;
      test "pairing rejects contraction cycles"
        test_pairing_rejects_contraction_cycle;
      test "pairing validates cover" test_pairing_validate_cover;
      test "off-route lookups raise Invalid_argument" test_off_route_lookups;
      test "pair: pay bursts only once" test_pair_pay_burst_once;
      test "pair dominates locals" test_pair_dominates_locals;
      test "pair unstable" test_pair_unstable;
      test "pair unstable second server" test_pair_unstable_second_only;
      test "pair bound dominates dense scenario grid"
        test_pair_bound_dominates_dense_grid;
      prop_pair_below_two_hop_decomposition;
      test "decomposed = closed form (D_D)" test_decomposed_matches_closed_form;
      test "decomposed locals = closed form (E_k)"
        test_decomposed_locals_match;
      test "service curve = closed form (D_SC)"
        test_service_curve_matches_closed_form;
      test "decomposed unstable propagation" test_decomposed_unstable;
      test "integrated beats decomposed on tandem (Fig. 5)"
        test_integrated_beats_decomposed_on_tandem;
      test "integrated dominates for every flow"
        test_integrated_all_flows_dominated;
      test "singleton pairing degenerates to decomposed"
        test_integrated_singletons_equals_decomposed;
      test "integrated rejects non-FIFO" test_integrated_rejects_non_fifo;
      test "subnet delay bookkeeping" test_integrated_subnet_delay_bookkeeping;
      test "link-cap sharpening" test_link_cap_option_tightens;
      prop_link_cap_never_hurts_random;
      prop_integrated_dominated_on_random_nets;
      test "service-curve blow-up at high load (Fig. 4)"
        test_service_curve_blowup_at_high_load;
      test "FIFO-theta never worse than SFA" test_fifo_theta_beats_service_curve;
      test "network service curve composition"
        test_network_service_curve_composition;
      test "engine comparison" test_engine_comparison;
      test "admission: integrated admits more"
        test_admission_integrated_admits_more;
      test "admission rejects deadline-less flows"
        test_admission_rejects_no_deadline;
      test "admission is FCFS (ordering matters)" test_admission_is_fcfs;
    ] )

(* Differential tests of the piecewise-linear algebra against
   brute-force reference computations on dense grids, plus coverage of
   the hull/crossing helpers added for the static-priority
   extension. *)

open Testutil

let grid lo hi n =
  List.init (n + 1) (fun i ->
      lo +. ((hi -. lo) *. float_of_int i /. float_of_int n))

(* ------------------------------------------------------------------ *)
(* Lower convex hull                                                   *)
(* ------------------------------------------------------------------ *)

let test_hull_of_convex_is_identity () =
  let f = Minplus.conv_list
      [ rate_latency ~rate:1. ~latency:2.; rate_latency ~rate:3. ~latency:0.5 ]
  in
  check_bool "hull of convex = itself" true
    (Pwl.equal f (Pwl.lower_convex_hull f))

let test_hull_below_function () =
  (* A zig-zag: hull must be below and convex. *)
  let f = Pwl.make [ (0., 0., 3.); (1., 3., 0.); (2., 3., 2.) ] in
  let h = Pwl.lower_convex_hull f in
  List.iter
    (fun t ->
      check_bool "hull below" true (Pwl.eval h t <= Pwl.eval f t +. 1e-9))
    (grid 0. 8. 64);
  check_bool "hull convex" true
    (match Pwl.shape h with `Convex | `Affine -> true | _ -> false)

let test_hull_with_jump () =
  (* Jump up at 2: the hull bridges it linearly. *)
  let f = Pwl.make [ (0., 0., 0.); (2., 4., 1.) ] in
  let h = Pwl.lower_convex_hull f in
  List.iter
    (fun t ->
      check_bool "hull below jump function" true
        (Pwl.eval h t <= Float.min (Pwl.eval f t) (Pwl.eval_left f t) +. 1e-9))
    (grid 0. 6. 48)

let prop_hull_greatest_convex_minorant =
  qtest ~count:100 "hull dominates any convex minorant candidate"
    QCheck2.Gen.(pair gen_concave gen_time)
    (fun (f, t) ->
      (* The hull of a concave nondecreasing f with f(0) >= 0 must stay
         nonnegative and below f. *)
      let h = Pwl.lower_convex_hull f in
      let v = Pwl.eval h t in
      v >= -1e-9 && v <= Pwl.eval f t +. 1e-9)

(* ------------------------------------------------------------------ *)
(* first_crossing_under                                                *)
(* ------------------------------------------------------------------ *)

let test_crossing_under_line_matches_rate_version () =
  let f = Pwl.affine ~y0:2. ~slope:0.5 in
  approx "matches first_crossing_below"
    (Pwl.first_crossing_below f ~rate:1.)
    (Pwl.first_crossing_under f ~below:(Pwl.affine ~y0:0. ~slope:1.))

let test_crossing_under_rate_latency () =
  (* Envelope 1 + 0.25 t vs leftover curve (t - 2)^+:
     1 + 0.25 t = t - 2  =>  t = 4. *)
  let f = Pwl.affine ~y0:1. ~slope:0.25 in
  let beta = rate_latency ~rate:1. ~latency:2. in
  approx "busy period vs curve" 4. (Pwl.first_crossing_under f ~below:beta)

let test_crossing_under_never () =
  let f = Pwl.affine ~y0:1. ~slope:1. in
  approx "never crosses" infinity
    (Pwl.first_crossing_under f ~below:(Pwl.affine ~y0:0. ~slope:0.5))

let prop_crossing_under_is_sound =
  qtest ~count:150 "f is below g just after the crossing"
    QCheck2.Gen.(pair gen_concave gen_convex)
    (fun (f, g) ->
      QCheck2.assume (Pwl.final_slope f < Pwl.final_slope g -. 1e-3);
      let t = Pwl.first_crossing_under f ~below:g in
      Float.is_finite t
      && Pwl.eval f (t +. 1e-6) <= Pwl.eval g (t +. 1e-6) +. 1e-3)

(* ------------------------------------------------------------------ *)
(* Brute-force differential checks                                     *)
(* ------------------------------------------------------------------ *)

let brute_deconv f g t =
  (* sup over s of f (t + s) - g s on a generous grid. *)
  List.fold_left
    (fun acc s -> Float.max acc (Pwl.eval f (t +. s) -. Pwl.eval g s))
    neg_infinity (grid 0. 60. 600)

let prop_deconv_matches_brute_force =
  qtest ~count:60 "deconvolution matches brute force"
    QCheck2.Gen.(triple gen_concave gen_convex gen_time)
    (fun (alpha, beta, t) ->
      QCheck2.assume (Pwl.final_slope alpha <= Pwl.final_slope beta -. 1e-2);
      let exact = Pwl.eval (Minplus.deconv alpha beta) t in
      let brute = brute_deconv alpha beta t in
      (* The grid under-approximates the sup, so exact >= brute, and
         they must be close. *)
      exact >= brute -. 1e-6
      && exact -. brute <= 0.05 *. Float.max 1. (Float.abs exact) +. 0.2)

let brute_hdev alpha beta =
  (* sup over t of inf over d of { alpha t <= beta (t + d) }. *)
  List.fold_left
    (fun acc t ->
      let target = Pwl.eval alpha t in
      let rec find_d lo hi =
        if hi -. lo < 1e-6 then hi
        else
          let mid = (lo +. hi) /. 2. in
          if Pwl.eval beta (t +. mid) >= target then find_d lo mid
          else find_d mid hi
      in
      Float.max acc (find_d 0. 200.))
    0. (grid 0. 60. 600)

let prop_hdev_matches_brute_force =
  qtest ~count:40 "horizontal deviation matches brute force"
    QCheck2.Gen.(pair gen_concave gen_convex)
    (fun (alpha, beta) ->
      QCheck2.assume (Pwl.final_slope alpha <= Pwl.final_slope beta -. 1e-2);
      let exact = Deviation.hdev ~alpha ~beta in
      let brute = brute_hdev alpha beta in
      exact >= brute -. 1e-4
      && exact -. brute <= 0.05 *. Float.max 1. exact +. 0.2)

let prop_vdev_matches_brute_force =
  (* alpha concave minus beta convex is concave, so the supremum is
     attained at a breakpoint of either curve (or at 0), unless the
     final ray diverges.  Sampling those candidates plus a dense grid
     must reproduce [Deviation.vdev] exactly in the stable case. *)
  qtest ~count:100 "vertical deviation matches brute force"
    QCheck2.Gen.(pair gen_concave gen_convex)
    (fun (alpha, beta) ->
      let exact = Deviation.vdev ~alpha ~beta in
      if Pwl.final_slope alpha > Pwl.final_slope beta +. 1e-9 then
        exact = infinity
      else begin
        let candidates =
          (0. :: Pwl.breakpoints alpha) @ Pwl.breakpoints beta
          @ grid 0. 120. 960
        in
        let brute =
          List.fold_left
            (fun acc t -> Float.max acc (Pwl.eval alpha t -. Pwl.eval beta t))
            neg_infinity candidates
        in
        (not (Float.is_finite exact))
        || Float.abs (exact -. brute)
           <= 1e-6 *. Float.max 1. (Float.abs exact)
      end)

let prop_compose_pointwise =
  qtest ~count:100 "composition is pointwise"
    QCheck2.Gen.(triple gen_convex gen_concave gen_time)
    (fun (outer, inner, t) ->
      let h = Pwl.compose ~outer ~inner in
      Float.abs (Pwl.eval h t -. Pwl.eval outer (Pwl.eval inner t))
      <= 1e-6 *. Float.max 1. (Float.abs (Pwl.eval h t)))

let prop_shift_left_window =
  qtest ~count:100 "shift_left agrees with evaluation"
    QCheck2.Gen.(triple gen_concave (QCheck2.Gen.float_range 0. 10.) gen_time)
    (fun (f, d, t) ->
      Float.abs (Pwl.eval (Pwl.shift_left f d) t -. Pwl.eval f (t +. d))
      <= 1e-9 *. Float.max 1. (Pwl.eval f (t +. d)))

let prop_pseudo_inverse_galois =
  qtest ~count:150 "upper pseudo-inverse Galois connection"
    QCheck2.Gen.(pair gen_convex (QCheck2.Gen.float_range 0. 40.))
    (fun (f, y) ->
      QCheck2.assume (Pwl.final_slope f > 1e-3);
      let inv = Pwl.pseudo_inverse f in
      let x = Pwl.eval inv y in
      (* f(x') <= y for every x' < x (x is the sup of that set). *)
      let x' = Float.max 0. (x -. 1e-6) in
      Pwl.eval f x' <= y +. 1e-4)

(* Convolution of a concave arrival with itself stays above the
   original only at 0 (conv is idempotent-ish: min f f = f). *)
let prop_conv_idempotent_concave =
  qtest "concave convolution is idempotent (min f f = f)" gen_concave
    (fun f -> Pwl.equal (Minplus.conv f f) f)

let suite =
  ( "pwl-deep",
    [
      test "hull of convex is identity" test_hull_of_convex_is_identity;
      test "hull below zig-zag" test_hull_below_function;
      test "hull bridges jumps" test_hull_with_jump;
      prop_hull_greatest_convex_minorant;
      test "crossing under a line" test_crossing_under_line_matches_rate_version;
      test "crossing under rate-latency" test_crossing_under_rate_latency;
      test "crossing never happens" test_crossing_under_never;
      prop_crossing_under_is_sound;
      prop_deconv_matches_brute_force;
      prop_hdev_matches_brute_force;
      prop_vdev_matches_brute_force;
      prop_compose_pointwise;
      prop_shift_left_window;
      prop_pseudo_inverse_galois;
      prop_conv_idempotent_concave;
    ] )

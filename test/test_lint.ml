(* Self-tests for netcalc-lint (tools/lint): run the built analyzer as
   a subprocess over its fixture corpus and over the real tree.

   The fixture assertions pin exact (file, rule, line) triples, so any
   drift in a rule's detection logic — or in the fixtures — fails
   loudly.  The real-tree check is the same invocation CI's lint gate
   runs: the shipped lib/, bin/ and bench/ must be clean modulo the
   checked-in (empty) baseline. *)

let exe = "../tools/lint/netcalc_lint.exe"
let lint_dir = "../tools/lint"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run cmd = Sys.command (cmd ^ " > /dev/null 2>&1")

(* Every finding the fixture corpus must produce, as exact
   (file, line, rule) triples; see tools/lint/fixtures/. *)
let expected_fixture_findings =
  [ ("fixtures/bench/bad_determinism.ml", 10, "unsorted-fold");
    ("fixtures/bench/bad_determinism.ml", 11, "unsorted-fold");
    ("fixtures/lib/core/bad_backend.ml", 6, "curve-repr");
    ("fixtures/lib/core/bad_backend.ml", 7, "curve-repr");
    ("fixtures/lib/core/bad_backend.ml", 8, "curve-repr");
    ("fixtures/lib/core/bad_backend.ml", 9, "curve-repr");
    ("fixtures/lib/core/bad_backend.ml", 10, "curve-repr");
    ("fixtures/lib/bad_float.ml", 7, "float-eq");
    ("fixtures/lib/bad_float.ml", 8, "float-eq");
    ("fixtures/lib/bad_float.ml", 9, "float-eq");
    ("fixtures/lib/bad_forbidden.ml", 4, "forbidden-prim");
    ("fixtures/lib/bad_forbidden.ml", 5, "forbidden-prim");
    ("fixtures/lib/bad_forbidden.ml", 6, "forbidden-prim");
    ("fixtures/lib/bad_forbidden.ml", 9, "forbidden-prim");
    ("fixtures/lib/bad_forbidden.ml", 10, "forbidden-prim");
    ("fixtures/lib/bad_hashcons.ml", 7, "pwl-poly-eq");
    ("fixtures/lib/bad_hashcons.ml", 8, "pwl-poly-eq");
    ("fixtures/lib/bad_hashcons.ml", 9, "pwl-poly-eq");
    ("fixtures/lib/bad_hashcons.ml", 10, "pwl-poly-eq");
    ("fixtures/lib/bad_race.ml", 8, "race-global");
    ("fixtures/lib/bad_race.ml", 9, "race-global");
    ("fixtures/lib/bad_race.ml", 14, "bad-waiver");
    ("fixtures/lib/bad_race.ml", 16, "race-global")
  ]

let fixture_report () =
  let report = Filename.concat (Sys.getcwd ()) "lint_fixture_report.json" in
  let code =
    run
      (Printf.sprintf "cd %s && ./netcalc_lint.exe --json %s fixtures"
         (Filename.quote lint_dir) (Filename.quote report))
  in
  (code, read_file report)

let test_fixtures_flag_exactly () =
  let code, report = fixture_report () in
  Alcotest.(check int) "seeded violations make the exit code nonzero" 1 code;
  let lines = String.split_on_char '\n' report in
  let finding_lines =
    List.filter (fun l -> contains l "\"file\": ") lines
  in
  Alcotest.(check int) "total findings"
    (List.length expected_fixture_findings)
    (List.length finding_lines);
  List.iter
    (fun (file, line, rule) ->
      let loc = Printf.sprintf "{\"file\": \"%s\", \"line\": %d," file line in
      let rul = Printf.sprintf "\"rule\": \"%s\"" rule in
      let hit = List.exists (fun l -> contains l loc && contains l rul) lines in
      if not hit then
        Alcotest.failf "missing finding %s:%d [%s]" file line rule)
    expected_fixture_findings

let test_clean_fixture_is_clean () =
  let _, report = fixture_report () in
  Alcotest.(check bool) "clean.ml produces no finding" false
    (contains report "clean.ml")

(* The ratchet: baselining the corpus turns exit 1 into exit 0, and a
   stale baseline does not hide anything new. *)
let test_baseline_ratchet () =
  let base = Filename.concat (Sys.getcwd ()) "lint_fixture_baseline.json" in
  let update =
    run
      (Printf.sprintf
         "cd %s && ./netcalc_lint.exe --baseline %s --update-baseline fixtures"
         (Filename.quote lint_dir) (Filename.quote base))
  in
  Alcotest.(check int) "update-baseline exits 0" 0 update;
  let again =
    run
      (Printf.sprintf "cd %s && ./netcalc_lint.exe --baseline %s fixtures"
         (Filename.quote lint_dir) (Filename.quote base))
  in
  Alcotest.(check int) "baselined corpus exits 0" 0 again

(* ------------------------------------------------------------------ *)
(* Typed (.cmt) pipeline: tools/lint/fixtures_typed is built as a
   real library, so `dune build @check` leaves its typedtrees in the
   build tree and the analyzer is pointed straight at them.  No
   source paths are passed, so everything below comes from the typed
   passes alone. *)

let typed_fixture_root = "../tools/lint/fixtures_typed"

let expected_typed_findings =
  [ ("tools/lint/fixtures_typed/bad_cache_key.ml", 11, "cache-key");
    ("tools/lint/fixtures_typed/bad_exn_escape.ml", 6, "exn-escape");
    ("tools/lint/fixtures_typed/bad_exn_escape.ml", 8, "exn-escape");
    ("tools/lint/fixtures_typed/bad_fold_flow.ml", 7, "unsorted-fold-flow");
    ("tools/lint/fixtures_typed/bad_par_escape.ml", 18, "par-escape");
    ("tools/lint/fixtures_typed/fixture_state.ml", 12, "par-escape")
  ]

let typed_cmd = Printf.sprintf "%s --typed --cmt-root %s" exe typed_fixture_root

let typed_report () =
  let report = Filename.concat (Sys.getcwd ()) "lint_typed_report.json" in
  let code = run (Printf.sprintf "%s --json %s" typed_cmd (Filename.quote report)) in
  (code, read_file report)

let test_typed_fixtures_flag_exactly () =
  let code, report = typed_report () in
  Alcotest.(check int) "seeded violations make the exit code nonzero" 1 code;
  Alcotest.(check bool) "report is schema v2" true
    (contains report "netcalc-lint/2");
  Alcotest.(check bool) "report records the typed pass ran" true
    (contains report "\"typed\": true");
  let lines = String.split_on_char '\n' report in
  let finding_lines = List.filter (fun l -> contains l "\"file\": ") lines in
  Alcotest.(check int) "total findings"
    (List.length expected_typed_findings)
    (List.length finding_lines);
  List.iter
    (fun (file, line, rule) ->
      let loc = Printf.sprintf "{\"file\": \"%s\", \"line\": %d," file line in
      let rul = Printf.sprintf "\"rule\": \"%s\"" rule in
      let hit = List.exists (fun l -> contains l loc && contains l rul) lines in
      if not hit then
        Alcotest.failf "missing typed finding %s:%d [%s]" file line rule)
    expected_typed_findings;
  (* every finding above comes from a typed rule and is tagged so *)
  Alcotest.(check bool) "no syntactic-pass findings" false
    (contains report "\"pass\": \"syntactic\"");
  Alcotest.(check bool) "typed pass tags present" true
    (contains report "\"pass\": \"typed\"")

let test_typed_clean_variants_clean () =
  let _, report = typed_report () in
  Alcotest.(check bool) "clean_* fixtures produce no finding" false
    (contains report "clean_")

(* The merged finding stream must not depend on the worker count. *)
let test_typed_jobs_deterministic () =
  let capture tag jobs =
    let out = Filename.concat (Sys.getcwd ()) ("lint_typed_out_" ^ tag) in
    let _ =
      Sys.command
        (Printf.sprintf "%s -j %d > %s 2>&1" typed_cmd jobs
           (Filename.quote out))
    in
    (* the trailing summary line carries wall time and the jobs count *)
    read_file out |> String.split_on_char '\n'
    |> List.filter (fun l -> not (contains l "netcalc-lint:"))
    |> String.concat "\n"
  in
  Alcotest.(check string) "identical findings at -j 1 and -j 4"
    (capture "j1" 1) (capture "j4" 4)

(* Ratchet round-trip on the typed findings: bootstrap silences the
   corpus; a stale entry fails a normal run, is pruned by
   --update-baseline, and a baseline missing a current finding makes
   --update-baseline refuse (the baseline only ever shrinks). *)
let write_lines path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

let baseline_json triples =
  [ "{"; "  \"schema\": \"netcalc-lint-baseline/1\","; "  \"findings\": [" ]
  @ (List.mapi
       (fun i (file, line, rule) ->
         Printf.sprintf "    {\"file\": \"%s\", \"rule\": \"%s\", \"line\": %d}%s"
           file rule line
           (if i = List.length triples - 1 then "" else ","))
       triples)
  @ [ "  ]"; "}" ]

let test_typed_baseline_ratchet () =
  let base = Filename.concat (Sys.getcwd ()) "lint_typed_baseline.json" in
  (try Sys.remove base with Sys_error _ -> ());
  let with_base extra =
    Printf.sprintf "%s --baseline %s%s" typed_cmd (Filename.quote base) extra
  in
  Alcotest.(check int) "bootstrap --update-baseline exits 0" 0
    (run (with_base " --update-baseline"));
  Alcotest.(check int) "baselined corpus exits 0" 0 (run (with_base ""));
  (* stale entry: fails a normal run, pruned by --update-baseline *)
  write_lines base
    (baseline_json
       (expected_typed_findings
       @ [ ("tools/lint/fixtures_typed/gone.ml", 1, "par-escape") ]));
  Alcotest.(check int) "stale baseline entry fails a normal run" 1
    (run (with_base ""));
  Alcotest.(check int) "--update-baseline prunes the stale entry" 0
    (run (with_base " --update-baseline"));
  Alcotest.(check bool) "stale entry is gone from the baseline" false
    (contains (read_file base) "gone.ml");
  Alcotest.(check int) "pruned baseline passes a normal run" 0
    (run (with_base ""));
  (* a baseline missing a current finding: --update-baseline refuses
     to absorb the fresh finding and leaves the file alone *)
  (match expected_typed_findings with
  | _ :: rest -> write_lines base (baseline_json rest)
  | [] -> assert false);
  let before = read_file base in
  Alcotest.(check int) "--update-baseline refuses fresh findings" 1
    (run (with_base " --update-baseline"));
  Alcotest.(check string) "refusal leaves the baseline untouched" before
    (read_file base)

let test_real_tree_clean () =
  let code =
    run
      (Printf.sprintf
         "cd .. && tools/lint/netcalc_lint.exe --baseline \
          tools/lint/baseline.json lib bin bench")
  in
  Alcotest.(check int) "lib/ bin/ bench/ clean modulo baseline" 0 code

let test name f = Alcotest.test_case name `Quick f

let suite =
  ( "lint",
    [
      test "fixtures: exact rule ids and lines" test_fixtures_flag_exactly;
      test "fixtures: clean file stays clean" test_clean_fixture_is_clean;
      test "baseline ratchet silences, then holds" test_baseline_ratchet;
      test "typed fixtures: exact rule ids and lines"
        test_typed_fixtures_flag_exactly;
      test "typed fixtures: clean variants stay clean"
        test_typed_clean_variants_clean;
      test "typed findings independent of -j" test_typed_jobs_deterministic;
      test "typed baseline ratchet: prune stale, refuse fresh"
        test_typed_baseline_ratchet;
      test "real tree clean modulo baseline" test_real_tree_clean;
    ] )

(* Self-tests for netcalc-lint (tools/lint): run the built analyzer as
   a subprocess over its fixture corpus and over the real tree.

   The fixture assertions pin exact (file, rule, line) triples, so any
   drift in a rule's detection logic — or in the fixtures — fails
   loudly.  The real-tree check is the same invocation CI's lint gate
   runs: the shipped lib/, bin/ and bench/ must be clean modulo the
   checked-in (empty) baseline. *)

let exe = "../tools/lint/netcalc_lint.exe"
let lint_dir = "../tools/lint"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run cmd = Sys.command (cmd ^ " > /dev/null 2>&1")

(* Every finding the fixture corpus must produce, as exact
   (file, line, rule) triples; see tools/lint/fixtures/. *)
let expected_fixture_findings =
  [ ("fixtures/bench/bad_determinism.ml", 10, "unsorted-fold");
    ("fixtures/bench/bad_determinism.ml", 11, "unsorted-fold");
    ("fixtures/lib/core/bad_backend.ml", 6, "curve-repr");
    ("fixtures/lib/core/bad_backend.ml", 7, "curve-repr");
    ("fixtures/lib/core/bad_backend.ml", 8, "curve-repr");
    ("fixtures/lib/core/bad_backend.ml", 9, "curve-repr");
    ("fixtures/lib/core/bad_backend.ml", 10, "curve-repr");
    ("fixtures/lib/bad_float.ml", 7, "float-eq");
    ("fixtures/lib/bad_float.ml", 8, "float-eq");
    ("fixtures/lib/bad_float.ml", 9, "float-eq");
    ("fixtures/lib/bad_forbidden.ml", 4, "forbidden-prim");
    ("fixtures/lib/bad_forbidden.ml", 5, "forbidden-prim");
    ("fixtures/lib/bad_forbidden.ml", 6, "forbidden-prim");
    ("fixtures/lib/bad_forbidden.ml", 9, "forbidden-prim");
    ("fixtures/lib/bad_forbidden.ml", 10, "forbidden-prim");
    ("fixtures/lib/bad_hashcons.ml", 7, "pwl-poly-eq");
    ("fixtures/lib/bad_hashcons.ml", 8, "pwl-poly-eq");
    ("fixtures/lib/bad_hashcons.ml", 9, "pwl-poly-eq");
    ("fixtures/lib/bad_hashcons.ml", 10, "pwl-poly-eq");
    ("fixtures/lib/bad_race.ml", 8, "race-global");
    ("fixtures/lib/bad_race.ml", 9, "race-global");
    ("fixtures/lib/bad_race.ml", 14, "bad-waiver");
    ("fixtures/lib/bad_race.ml", 16, "race-global")
  ]

let fixture_report () =
  let report = Filename.concat (Sys.getcwd ()) "lint_fixture_report.json" in
  let code =
    run
      (Printf.sprintf "cd %s && ./netcalc_lint.exe --json %s fixtures"
         (Filename.quote lint_dir) (Filename.quote report))
  in
  (code, read_file report)

let test_fixtures_flag_exactly () =
  let code, report = fixture_report () in
  Alcotest.(check int) "seeded violations make the exit code nonzero" 1 code;
  let lines = String.split_on_char '\n' report in
  let finding_lines =
    List.filter (fun l -> contains l "\"file\": ") lines
  in
  Alcotest.(check int) "total findings"
    (List.length expected_fixture_findings)
    (List.length finding_lines);
  List.iter
    (fun (file, line, rule) ->
      let loc = Printf.sprintf "{\"file\": \"%s\", \"line\": %d," file line in
      let rul = Printf.sprintf "\"rule\": \"%s\"" rule in
      let hit = List.exists (fun l -> contains l loc && contains l rul) lines in
      if not hit then
        Alcotest.failf "missing finding %s:%d [%s]" file line rule)
    expected_fixture_findings

let test_clean_fixture_is_clean () =
  let _, report = fixture_report () in
  Alcotest.(check bool) "clean.ml produces no finding" false
    (contains report "clean.ml")

(* The ratchet: baselining the corpus turns exit 1 into exit 0, and a
   stale baseline does not hide anything new. *)
let test_baseline_ratchet () =
  let base = Filename.concat (Sys.getcwd ()) "lint_fixture_baseline.json" in
  let update =
    run
      (Printf.sprintf
         "cd %s && ./netcalc_lint.exe --baseline %s --update-baseline fixtures"
         (Filename.quote lint_dir) (Filename.quote base))
  in
  Alcotest.(check int) "update-baseline exits 0" 0 update;
  let again =
    run
      (Printf.sprintf "cd %s && ./netcalc_lint.exe --baseline %s fixtures"
         (Filename.quote lint_dir) (Filename.quote base))
  in
  Alcotest.(check int) "baselined corpus exits 0" 0 again

let test_real_tree_clean () =
  let code =
    run
      (Printf.sprintf
         "cd .. && tools/lint/netcalc_lint.exe --baseline \
          tools/lint/baseline.json lib bin bench")
  in
  Alcotest.(check int) "lib/ bin/ bench/ clean modulo baseline" 0 code

let test name f = Alcotest.test_case name `Quick f

let suite =
  ( "lint",
    [
      test "fixtures: exact rule ids and lines" test_fixtures_flag_exactly;
      test "fixtures: clean file stays clean" test_clean_fixture_is_clean;
      test "baseline ratchet silences, then holds" test_baseline_ratchet;
      test "real tree clean modulo baseline" test_real_tree_clean;
    ] )

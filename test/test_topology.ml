(* Tests for flows, servers, networks, the tandem generator and the
   random feedforward generator. *)

open Testutil

let flow id route =
  Flow.make ~id ~arrival:(Arrival.token_bucket ~sigma:1. ~rho:0.1 ()) ~route ()

let servers n = List.init n (fun id -> Server.make ~id ~rate:1. ())

let test_flow_accessors () =
  let f = flow 7 [ 3; 1; 4 ] in
  Alcotest.(check int) "first hop" 3 (Flow.first_hop f);
  Alcotest.(check int) "last hop" 4 (Flow.last_hop f);
  Alcotest.(check (option int)) "next of 1" (Some 4) (Flow.next_hop f 1);
  Alcotest.(check (option int)) "next of 4" None (Flow.next_hop f 4);
  Alcotest.(check (option int)) "prev of 1" (Some 3) (Flow.prev_hop f 1);
  Alcotest.(check (option int)) "prev of 3" None (Flow.prev_hop f 3);
  check_bool "traverses" true (Flow.traverses f 1);
  check_bool "does not traverse" false (Flow.traverses f 9);
  Alcotest.(check (list (pair int int)))
    "hop pairs"
    [ (3, 1); (1, 4) ]
    (Flow.hop_pairs f)

let test_flow_validation () =
  let expect_invalid f =
    try
      ignore (f ());
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument _ -> ()
  in
  let arrival = Arrival.token_bucket ~sigma:1. ~rho:0.1 () in
  expect_invalid (fun () -> Flow.make ~id:0 ~arrival ~route:[] ());
  expect_invalid (fun () -> Flow.make ~id:0 ~arrival ~route:[ 1; 2; 1 ] ());
  expect_invalid (fun () -> Flow.make ~id:0 ~arrival ~route:[ 1 ] ~weight:0. ());
  expect_invalid (fun () ->
      Flow.make ~id:0 ~arrival ~route:[ 1 ] ~deadline:(-1.) ())

let test_network_basics () =
  let net =
    Network.make ~servers:(servers 3)
      ~flows:[ flow 0 [ 0; 1; 2 ]; flow 1 [ 1; 2 ]; flow 2 [ 0 ] ]
  in
  Alcotest.(check int) "size" 3 (Network.size net);
  Alcotest.(check int) "flows at 1" 2 (List.length (Network.flows_at net 1));
  Alcotest.(check (list (pair int int)))
    "edges"
    [ (0, 1); (1, 2) ]
    (Network.edges net);
  Alcotest.(check (list int))
    "topological order" [ 0; 1; 2 ]
    (Network.topological_order net);
  check_bool "feedforward" true (Network.is_feedforward net);
  approx "utilization at 0" 0.2 (Network.utilization net 0);
  check_bool "stable" true (Network.stable net)

let test_network_cycle () =
  let net =
    Network.make ~servers:(servers 2) ~flows:[ flow 0 [ 0; 1 ]; flow 1 [ 1; 0 ] ]
  in
  check_bool "cyclic detected" false (Network.is_feedforward net);
  (try
     ignore (Network.topological_order net);
     Alcotest.fail "expected Cyclic"
   with Network.Cyclic -> ())

let test_network_validation () =
  (try
     ignore (Network.make ~servers:(servers 2) ~flows:[ flow 0 [ 0; 5 ] ]);
     Alcotest.fail "expected Invalid_argument for unknown server"
   with Invalid_argument _ -> ());
  let s = Server.make ~id:0 ~rate:1. () in
  try
    ignore (Network.make ~servers:[ s; s ] ~flows:[]);
    Alcotest.fail "expected Invalid_argument for duplicate id"
  with Invalid_argument _ -> ()

(* Unknown-id lookups raise a descriptive Invalid_argument rather than
   an ambient Not_found — a Not_found leaking out of a lookup is
   indistinguishable from deliberate control flow once it crosses a
   Par worker or the serve request loop.  [flow_opt] is the variant
   for callers that treat absence as data. *)
let test_lookup_errors () =
  let msg_contains msg sub =
    let nh = String.length msg and nn = String.length sub in
    let rec go i = i + nn <= nh && (String.sub msg i nn = sub || go (i + 1)) in
    go 0
  in
  let net = Network.make ~servers:(servers 2) ~flows:[ flow 0 [ 0; 1 ] ] in
  (try
     ignore (Network.server net 9);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument msg ->
     check_bool "server error names the id" true (msg_contains msg "9"));
  (try
     ignore (Network.flow net 9);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument msg ->
     check_bool "flow error names the id" true (msg_contains msg "9"));
  check_bool "flow_opt: absent" true (Network.flow_opt net 9 = None);
  match Network.flow_opt net 0 with
  | Some f -> Alcotest.(check int) "flow_opt: present" 0 f.Flow.id
  | None -> Alcotest.fail "flow_opt lost an existing flow"

let test_tandem_structure () =
  let n = 5 in
  let t = Tandem.make ~n ~utilization:0.6 () in
  let net = t.network in
  Alcotest.(check int) "server count" (3 * n) (Network.size net);
  Alcotest.(check int)
    "flow count (2n+1)"
    ((2 * n) + 1)
    (List.length (Network.flows net));
  Alcotest.(check (list int))
    "conn0 route" [ 0; 1; 2; 3; 4 ]
    t.conn0.route;
  (* Paper invariant: every middle port except the first carries 4
     connections. *)
  List.iteri
    (fun j sid ->
      let expected = if j = 0 then 3 else 4 in
      Alcotest.(check int)
        (Printf.sprintf "population of mid%d" j)
        expected
        (List.length (Network.flows_at net sid)))
    t.mid_servers;
  (* Internal links run at the requested utilization. *)
  List.iteri
    (fun j sid ->
      let expected = if j = 0 then 0.45 else 0.6 in
      approx (Printf.sprintf "utilization of mid%d" j) expected
        (Network.utilization net sid))
    t.mid_servers;
  check_bool "feedforward" true (Network.is_feedforward net);
  Alcotest.(check int) "cross flows" (2 * n) (List.length (Tandem.cross_flows t))

let test_tandem_sources () =
  let t = Tandem.make ~n:3 ~utilization:0.8 ~sigma:2. () in
  List.iter
    (fun (f : Flow.t) ->
      let sigma, rho, peak = Arrival.token_params f.arrival in
      approx "sigma" 2. sigma;
      approx "rho = U/4" 0.2 rho;
      approx "peak" 1. peak)
    (Network.flows t.network)

let test_tandem_validation () =
  let expect_invalid f =
    try
      ignore (f ());
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument _ -> ()
  in
  expect_invalid (fun () -> Tandem.make ~n:1 ~utilization:0.5 ());
  expect_invalid (fun () -> Tandem.make ~n:4 ~utilization:1.2 ());
  expect_invalid (fun () -> Tandem.make ~n:4 ~utilization:0.5 ~sigma:0. ())

let test_randomnet () =
  let net = Randomnet.generate Randomnet.default in
  check_bool "feedforward" true (Network.is_feedforward net);
  check_bool "stable" true (Network.stable net);
  approx ~tol:1e-6 "max utilization hits target"
    Randomnet.default.utilization (Network.max_utilization net);
  (* Deterministic for a fixed seed. *)
  let net2 = Randomnet.generate Randomnet.default in
  Alcotest.(check (list (pair int int)))
    "deterministic" (Network.edges net) (Network.edges net2)

let prop_randomnet_always_feedforward =
  qtest ~count:50 "random networks are feedforward and stable"
    QCheck2.Gen.(
      quad (int_range 2 5) (int_range 1 3) (int_range 1 12) (int_range 0 1000))
    (fun (layers, per_layer, num_flows, seed) ->
      let net =
        Randomnet.generate
          {
            Randomnet.default with
            layers;
            per_layer;
            num_flows;
            seed;
            utilization = 0.7;
          }
      in
      Network.is_feedforward net && Network.stable net)

let test_dot_export () =
  let t = Tandem.make ~n:2 ~utilization:0.5 () in
  let dot = Dot.to_dot t.network in
  check_bool "has digraph" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  check_bool "mentions an edge" true
    (let rec contains i =
       i + 9 <= String.length dot
       && (String.sub dot i 9 = " 0 -> 1 [" || contains (i + 1))
     in
     contains 0)

let suite =
  ( "topology",
    [
      test "flow accessors" test_flow_accessors;
      test "flow validation" test_flow_validation;
      test "network basics" test_network_basics;
      test "cycle detection" test_network_cycle;
      test "network validation" test_network_validation;
      test "lookup errors are descriptive" test_lookup_errors;
      test "tandem structure (Fig. 3)" test_tandem_structure;
      test "tandem sources (Eq. 4)" test_tandem_sources;
      test "tandem validation" test_tandem_validation;
      test "random feedforward generator" test_randomnet;
      prop_randomnet_always_feedforward;
      test "dot export" test_dot_export;
    ] )

(* The serve subsystem's contracts:

   - Admission.run is exactly a fold of Admission.decide_one, and
     rejections carry the reason (which flow would miss its deadline);
   - the delta engine's state after any admit/teardown churn is
     byte-identical (IEEE bits) to a from-scratch decomposed analysis
     of the same population, and a rejected admit rolls back
     bit-exactly;
   - the line protocol is deterministic: golden transcripts pin the
     exact response bytes, including the in-band error paths;
   - delta operations actually reuse out-of-cone state
     (reused_nodes > 0 on a tail admit). *)

open Testutil

let bits = Int64.bits_of_float

let same_bounds msg expected actual =
  Alcotest.(check (list (pair int int64)))
    msg
    (List.map (fun (id, d) -> (id, bits d)) expected)
    (List.map (fun (id, d) -> (id, bits d)) actual)

let tb ?peak ~sigma ~rho () = Arrival.token_bucket ?peak ~sigma ~rho ()

(* Fresh decomposed bounds with the sweep memo off, so the comparison
   is against genuine from-scratch work, not a cache hit. *)
let scratch_bounds ~servers ~flows =
  Incremental.with_enabled false (fun () ->
      Decomposed.all_flow_delays
        (Decomposed.analyze (Network.make ~servers ~flows)))

(* ------------------------------------------------------------------ *)
(* Admission: decide_one vs run, rejection reasons                     *)
(* ------------------------------------------------------------------ *)

let tandem_parts n =
  let t = Tandem.make ~n ~utilization:0.6 () in
  (Network.servers t.Tandem.network, Network.flows t.Tandem.network)

let candidates_for n =
  List.init 6 (fun i ->
      let k = i mod (n - 1) in
      let deadline = if i mod 3 = 2 then 0.01 else 500. in
      Flow.make ~id:(1000 + i)
        ~arrival:(tb ~sigma:1. ~rho:0.02 ~peak:1. ())
        ~route:[ k; k + 1 ] ~deadline ())

let test_run_is_fold_of_decide_one () =
  let servers, base = tandem_parts 6 in
  let candidates = candidates_for 6 in
  let method_ = Engine.Decomposed in
  let outcome = Admission.run ~servers ~base ~candidates ~method_ () in
  let admitted_fold, rejected_fold =
    List.fold_left
      (fun (adm, rej) cand ->
        match
          Admission.decide_one ~servers ~flows:(base @ List.rev adm)
            ~candidate:cand ~method_ ()
        with
        | Admission.Accepted _ -> (cand :: adm, rej)
        | Admission.Rejected _ -> (adm, cand :: rej))
      ([], []) candidates
    |> fun (adm, rej) -> (List.rev adm, List.rev rej)
  in
  let ids = List.map (fun (f : Flow.t) -> f.id) in
  Alcotest.(check (list int))
    "admitted ids" (ids admitted_fold) (ids outcome.admitted);
  Alcotest.(check (list int))
    "rejected ids" (ids rejected_fold) (ids outcome.rejected);
  check_bool "some admitted" true (outcome.admitted <> []);
  check_bool "some rejected" true (outcome.rejected <> [])

let test_rejection_reasons () =
  let servers = List.init 2 (fun id -> Server.make ~id ~rate:1. ()) in
  let base =
    [ Flow.make ~id:0 ~arrival:(tb ~sigma:1. ~rho:0.2 ()) ~route:[ 0; 1 ]
        ~deadline:50. () ]
  in
  let mk ?deadline ~id ~route () =
    Flow.make ~id ~arrival:(tb ~sigma:1. ~rho:0.2 ()) ~route ?deadline ()
  in
  let decide cand =
    Admission.decide_one ~servers ~flows:base ~candidate:cand
      ~method_:Engine.Decomposed ()
  in
  (match decide (mk ~id:1 ~route:[ 0 ] ()) with
  | Admission.Rejected Admission.No_deadline -> ()
  | _ -> Alcotest.fail "expected No_deadline");
  (match decide (mk ~id:1 ~route:[ 1; 0 ] ~deadline:10. ()) with
  | Admission.Rejected Admission.Cyclic_route -> ()
  | _ -> Alcotest.fail "expected Cyclic_route");
  (* The candidate itself fits, but it pushes base flow 0 over its
     deadline: the report must name the violated flow, not just fail. *)
  let tight_base =
    [ Flow.make ~id:0 ~arrival:(tb ~sigma:1. ~rho:0.2 ()) ~route:[ 0; 1 ]
        ~deadline:2.1 () ]
  in
  match
    Admission.decide_one ~servers ~flows:tight_base
      ~candidate:(mk ~id:1 ~route:[ 0 ] ~deadline:100. ())
      ~method_:Engine.Decomposed ()
  with
  | Admission.Rejected (Admission.Deadline_violated { flow; bound; deadline })
    ->
      Alcotest.(check int) "violating flow" 0 flow;
      Alcotest.(check (float 1e-9)) "violating deadline" 2.1 deadline;
      check_bool "bound exceeds deadline" true (bound > deadline)
  | _ -> Alcotest.fail "expected Deadline_violated naming flow 0"

let test_buffer_violated_reason () =
  let servers = [ Server.make ~id:0 ~rate:1. () ] in
  let base =
    [ Flow.make ~id:0 ~arrival:(tb ~sigma:1. ~rho:0.2 ()) ~route:[ 0 ] () ]
  in
  let mk buffer =
    Flow.make ~id:1 ~arrival:(tb ~sigma:1. ~rho:0.2 ()) ~route:[ 0 ]
      ~deadline:100. ~buffer ()
  in
  let decide cand =
    Admission.decide_one ~servers ~flows:base ~candidate:cand
      ~method_:Engine.Decomposed ()
  in
  (match decide (mk 5.) with
  | Admission.Accepted _ -> ()
  | Admission.Rejected _ -> Alcotest.fail "generous budget must be accepted");
  match decide (mk 0.5) with
  | Admission.Rejected
      (Admission.Buffer_violated { flow; server; backlog; buffer }) ->
      Alcotest.(check int) "violating flow" 1 flow;
      Alcotest.(check int) "violating server" 0 server;
      Alcotest.(check (float 1e-9)) "budget" 0.5 buffer;
      check_bool "backlog exceeds budget" true (backlog > buffer)
  | _ -> Alcotest.fail "expected Buffer_violated naming flow 1"

(* ------------------------------------------------------------------ *)
(* Delta engine: determinism under churn, rollback, reuse              *)
(* ------------------------------------------------------------------ *)

let check_matches_scratch msg e =
  let net = Delta_engine.network e in
  same_bounds msg
    (scratch_bounds ~servers:(Network.servers net) ~flows:(Network.flows net))
    (Delta_engine.all_flow_delays e);
  (* Backlog accessors must agree bit-for-bit too: per-server aggregate
     bounds, the per-flow split at every server, and the flow-level
     buffer needs. *)
  let a =
    Incremental.with_enabled false (fun () ->
        Decomposed.analyze
          (Network.make ~servers:(Network.servers net)
             ~flows:(Network.flows net)))
  in
  List.iter
    (fun (s : Server.t) ->
      Alcotest.(check int64)
        (Printf.sprintf "%s: server %d backlog bits" msg s.id)
        (bits (Decomposed.server_backlog a s.id))
        (bits (Delta_engine.server_backlog e s.id));
      same_bounds
        (Printf.sprintf "%s: server %d per-flow backlogs" msg s.id)
        (Decomposed.server_flow_backlogs a s.id)
        (Delta_engine.server_flow_backlogs e s.id))
    (Network.servers net);
  same_bounds
    (Printf.sprintf "%s: flow buffer needs" msg)
    (List.map
       (fun (f : Flow.t) -> (f.id, Decomposed.flow_backlog a f.id))
       (Network.flows net))
    (List.map
       (fun (f : Flow.t) -> (f.id, Delta_engine.flow_backlog e f.id))
       (Network.flows net))

let test_churn_determinism () =
  let servers, base = tandem_parts 8 in
  let e = Delta_engine.create ~servers ~flows:base () in
  let admitted = Queue.create () in
  for i = 0 to 39 do
    let k = 6 - (i mod 3) in
    let cand =
      Flow.make ~id:(2000 + i)
        ~arrival:(tb ~sigma:1. ~rho:0.01 ~peak:1. ())
        ~route:[ k; k + 1 ]
        ~deadline:(if i mod 7 = 3 then 1e-3 else 1000.)
        ()
    in
    (match Delta_engine.admit e cand with
    | Delta_engine.Admitted _ -> Queue.add cand.Flow.id admitted
    | Delta_engine.Rejected _ -> ());
    if Queue.length admitted > 5 then
      match Delta_engine.teardown e (Queue.pop admitted) with
      | Ok _ -> ()
      | Error `Unknown_flow -> Alcotest.fail "teardown of admitted flow"
  done;
  check_bool "churn admitted flows" true (Queue.length admitted > 0);
  check_matches_scratch "post-churn bounds = from-scratch analysis" e

let test_rollback_bit_exact () =
  let servers, base = tandem_parts 6 in
  let e = Delta_engine.create ~servers ~flows:base () in
  let before = Delta_engine.all_flow_delays e in
  let cand =
    Flow.make ~id:3000
      ~arrival:(tb ~sigma:1. ~rho:0.02 ~peak:1. ())
      ~route:[ 0; 1 ] ~deadline:1e-4 ()
  in
  (match Delta_engine.admit e cand with
  | Delta_engine.Rejected
      { reason = Admission.Deadline_violated { flow; _ }; _ } ->
      Alcotest.(check int) "candidate is the violator" 3000 flow
  | _ -> Alcotest.fail "expected a deadline rejection");
  same_bounds "rejected admit leaves state bit-identical" before
    (Delta_engine.all_flow_delays e);
  check_matches_scratch "rolled-back state = from-scratch analysis" e

let test_delta_matches_decide_one () =
  let servers, base = tandem_parts 6 in
  let e = Delta_engine.create ~servers ~flows:base () in
  List.iter
    (fun cand ->
      let flows_now = Network.flows (Delta_engine.network e) in
      let batch =
        Admission.decide_one ~servers ~flows:flows_now ~candidate:cand
          ~method_:Engine.Decomposed ()
      in
      match (Delta_engine.admit e cand, batch) with
      | Delta_engine.Admitted { bound; _ }, Admission.Accepted { bounds } ->
          Alcotest.(check int64)
            "admitted bound matches batch analysis"
            (bits (List.assoc cand.Flow.id bounds))
            (bits bound)
      | Delta_engine.Rejected _, Admission.Rejected _ -> ()
      | Delta_engine.Admitted _, Admission.Rejected _ ->
          Alcotest.fail "delta admitted what batch rejected"
      | Delta_engine.Rejected _, Admission.Accepted _ ->
          Alcotest.fail "delta rejected what batch admitted")
    (candidates_for 6)

let test_tail_admit_reuses () =
  let servers, base = tandem_parts 8 in
  let e = Delta_engine.create ~servers ~flows:base () in
  let cand =
    Flow.make ~id:4000
      ~arrival:(tb ~sigma:1. ~rho:0.01 ~peak:1. ())
      ~route:[ 6; 7 ] ~deadline:1000. ()
  in
  match Delta_engine.admit e cand with
  | Delta_engine.Admitted { stats; _ } ->
      check_bool "tail cone is a strict subset" true
        (stats.reused_nodes > 0
        && stats.cone_nodes + stats.reused_nodes = 3 * 8);
      check_matches_scratch "delta admit = from-scratch analysis" e
  | Delta_engine.Rejected _ -> Alcotest.fail "tail admit should fit"

(* ------------------------------------------------------------------ *)
(* Sjson                                                               *)
(* ------------------------------------------------------------------ *)

let test_sjson_roundtrip () =
  let doc =
    Sjson.Obj
      [
        ("a", Sjson.Num 1.);
        ("b", Sjson.List [ Sjson.Bool true; Sjson.Null; Sjson.Str "x\"\n" ]);
        ("c", Sjson.Num 0.1);
        ("inf", Sjson.float_repr infinity);
        ("ninf", Sjson.float_repr neg_infinity);
      ]
  in
  let s = Sjson.render doc in
  Alcotest.(check string)
    "deterministic rendering"
    {|{"a":1,"b":[true,null,"x\"\n"],"c":0.1,"inf":"inf","ninf":"-inf"}|} s;
  Alcotest.(check string) "render/parse fixpoint" s (Sjson.render (Sjson.parse s))

let test_sjson_float_bits () =
  List.iter
    (fun x ->
      match Sjson.parse (Sjson.render (Sjson.Num x)) with
      | Sjson.Num y ->
          Alcotest.(check int64)
            (Printf.sprintf "float %h round-trips" x)
            (bits x) (bits y)
      | _ -> Alcotest.fail "expected a number")
    [ 0.; 1.; -1.5; 0.1; 1. /. 3.; 2.5499999999999994; 1e-300; 9.1941176470588228 ]

let test_sjson_errors () =
  List.iter
    (fun s ->
      match Sjson.parse s with
      | exception Sjson.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected Parse_error on %S" s)
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "1.2.3"; "\"unterminated";
      "{\"a\":1} trailing"; "\"bad \\q escape\"" ]

(* ------------------------------------------------------------------ *)
(* Line protocol: golden transcript                                    *)
(* ------------------------------------------------------------------ *)

(* One server of rate 1; token buckets with sigma 1, rho 0.1 give the
   FIFO bound (number of flows) * sigma exactly, so every response
   byte below is stable arithmetic. *)
let golden_server () =
  Serve.create ~mode:Serve.Delta
    ~servers:[ Server.make ~id:0 ~rate:1. () ]
    ~flows:[] ()

let golden_transcript =
  [
    ( {|{"op":"admit","flow":{"id":1,"sigma":1,"rho":0.1,"route":[0],"deadline":5}}|},
      {|{"ok":true,"op":"admit","flow":1,"bound":1,"backlog":1,"cone_nodes":1,"reused_nodes":0}|}
    );
    ( {|{"op":"admit","flow":{"id":2,"sigma":1,"rho":0.1,"route":[0],"deadline":5}}|},
      {|{"ok":true,"op":"admit","flow":2,"bound":2,"backlog":1.1111111111111112,"cone_nodes":1,"reused_nodes":0}|}
    );
    ( {|{"op":"admit","flow":{"id":3,"sigma":1,"rho":0.1,"route":[0],"deadline":2.5}}|},
      {|{"ok":false,"op":"admit","flow":3,"error":"rejected","reason":"deadline_violated","violating_flow":3,"violating_bound":3,"violating_deadline":2.5,"cone_nodes":1,"reused_nodes":0}|}
    );
    ( {|{"op":"query","flow":1}|},
      {|{"ok":true,"op":"query","flow":1,"bound":2,"backlog":1.1111111111111112,"deadline":5,"buffer":null,"route":[0]}|} );
    ( {|{"op":"admit","flow":{"id":1,"sigma":1,"rho":0.1,"route":[0],"deadline":5}}|},
      {|{"ok":false,"op":"admit","flow":1,"error":"duplicate_flow"}|} );
    ( {|{"op":"admit","flow":{"id":9,"sigma":1,"rho":0.1,"route":[0]}}|},
      {|{"ok":false,"op":"admit","flow":9,"error":"rejected","reason":"no_deadline","cone_nodes":0,"reused_nodes":1}|}
    );
    ( {|{"op":"teardown","flow":2}|},
      {|{"ok":true,"op":"teardown","flow":2,"cone_nodes":1,"reused_nodes":0}|} );
    ( {|{"op":"query","flow":1}|},
      {|{"ok":true,"op":"query","flow":1,"bound":1,"backlog":1,"deadline":5,"buffer":null,"route":[0]}|} );
    ( {|{"op":"teardown","flow":2}|},
      {|{"ok":false,"op":"teardown","flow":2,"error":"unknown_flow"}|} );
    ( {|{"op":"query","flow":77}|},
      {|{"ok":false,"op":"query","flow":77,"error":"unknown_flow"}|} );
    ( {|this is not json|},
      {|{"ok":false,"error":"parse_error","detail":"at 0: expected true"}|}
    );
    ( {|{"op":"frobnicate"}|},
      {|{"ok":false,"error":"unknown_op","detail":"frobnicate"}|} );
    ( {|{"op":"admit"}|},
      {|{"ok":false,"error":"bad_request","detail":"missing \"flow\" field"}|} );
    ( {|{"op":"admit","flow":{"id":8,"route":[0],"deadline":5}}|},
      {|{"ok":false,"error":"bad_request","detail":"missing or invalid \"sigma\" field"}|}
    );
    ( {|{"op":"teardown"}|},
      {|{"ok":false,"error":"bad_request","detail":"missing or invalid \"flow\" field"}|}
    );
    ( {|{"nop":1}|},
      {|{"ok":false,"error":"bad_request","detail":"missing or invalid \"op\" field"}|}
    );
    ( {|{"op":"stats"}|},
      {|{"ok":true,"op":"stats","engine":"delta","curve_backend":"pwl","servers":1,"flows":1,"admitted_rate":0.1,"admits":2,"rejects":2,"teardowns":1,"cone_nodes":4,"reused_nodes":1}|}
    );
    (* Buffer-constrained admission: flow 10's budget covers its backlog
       bound; flow 11's does not, and the rejection names the flow, the
       hop, and both sides of the comparison. *)
    ( {|{"op":"admit","flow":{"id":10,"sigma":1,"rho":0.1,"route":[0],"deadline":50,"buffer":2}}|},
      {|{"ok":true,"op":"admit","flow":10,"bound":2,"backlog":1.1111111111111112,"cone_nodes":1,"reused_nodes":0}|}
    );
    ( {|{"op":"admit","flow":{"id":11,"sigma":1,"rho":0.1,"route":[0],"deadline":50,"buffer":0.5}}|},
      {|{"ok":false,"op":"admit","flow":11,"error":"rejected","reason":"buffer_violated","violating_flow":11,"violating_server":0,"violating_backlog":1.2499999999999998,"violating_buffer":0.5,"cone_nodes":1,"reused_nodes":0}|}
    );
    ( {|{"op":"query","flow":10}|},
      {|{"ok":true,"op":"query","flow":10,"bound":2,"backlog":1.1111111111111112,"deadline":50,"buffer":2,"route":[0]}|}
    );
  ]

let test_golden_transcript () =
  let t = golden_server () in
  List.iteri
    (fun i (request, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "line %d: %s" i request)
        expected (Serve.handle_line t request))
    golden_transcript

(* handle_line is an exception barrier: every request, however
   malformed, gets an in-band ok:false response — nothing escapes to
   kill a session loop serving other clients. *)
let test_handle_line_is_a_barrier () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let t = golden_server () in
  List.iter
    (fun req ->
      match Serve.handle_line t req with
      | resp ->
          Alcotest.(check bool)
            (Printf.sprintf "in-band error for %S" req)
            true
            (contains resp {|"ok":false|})
      | exception e ->
          Alcotest.failf "handle_line raised %s on %S" (Printexc.to_string e)
            req)
    [
      "";
      "not json";
      "{}";
      {|{"op":42}|};
      {|{"op":"nope"}|};
      {|{"op":"query"}|};
      {|{"op":"query","flow":"x"}|};
      {|{"op":"query","flow":999}|};
      {|{"op":"teardown","flow":999}|};
      {|{"op":"admit"}|};
      {|{"op":"admit","flow":{"id":7,"sigma":1,"rho":0.1,"route":[999]}}|};
      {|{"op":"admit","flow":{"id":7}}|};
    ]

let test_session_loop () =
  let t = golden_server () in
  let pending = ref (List.map fst golden_transcript @ [ ""; "   " ]) in
  let responses = ref [] in
  Serve.session t
    ~next:(fun () ->
      match !pending with
      | [] -> None
      | line :: rest ->
          pending := rest;
          Some line)
    ~emit:(fun resp -> responses := resp :: !responses);
  Alcotest.(check (list string))
    "session = handle_line per non-blank line"
    (List.map snd golden_transcript)
    (List.rev !responses)

let test_unstable_sentinels () =
  (* A serve session over a poisoned server: an unstable base flow has
     infinite bounds, which the protocol reports as explicit "inf"
     sentinels rather than null, and any candidate behind it is
     rejected with an infinite violating bound.  The third request
     also round-trips a sentinel on input ("deadline":"inf"). *)
  let t =
    Serve.create ~mode:Serve.Delta
      ~servers:[ Server.make ~id:0 ~rate:1. () ]
      ~flows:
        [ Flow.make ~id:0 ~arrival:(tb ~sigma:1. ~rho:2. ()) ~route:[ 0 ] () ]
      ()
  in
  let check req expected =
    Alcotest.(check string) req expected (Serve.handle_line t req)
  in
  check {|{"op":"query","flow":0}|}
    {|{"ok":true,"op":"query","flow":0,"bound":"inf","backlog":"inf","deadline":null,"buffer":null,"route":[0]}|};
  check
    {|{"op":"admit","flow":{"id":1,"sigma":1,"rho":0.1,"route":[0],"deadline":5}}|}
    {|{"ok":false,"op":"admit","flow":1,"error":"rejected","reason":"deadline_violated","violating_flow":1,"violating_bound":"inf","violating_deadline":5,"cone_nodes":1,"reused_nodes":0}|};
  check
    {|{"op":"admit","flow":{"id":2,"sigma":1,"rho":2,"route":[0],"deadline":"inf"}}|}
    {|{"ok":false,"op":"admit","flow":2,"error":"rejected","reason":"deadline_violated","violating_flow":2,"violating_bound":"inf","violating_deadline":"inf","cone_nodes":1,"reused_nodes":0}|}

(* ------------------------------------------------------------------ *)
(* Full engine parity                                                  *)
(* ------------------------------------------------------------------ *)

let test_full_engine_agrees () =
  let servers, base = tandem_parts 4 in
  let delta = Serve.create ~mode:Serve.Delta ~servers ~flows:base () in
  let full =
    Serve.create ~mode:(Serve.Full Engine.Decomposed) ~servers ~flows:base ()
  in
  let requests =
    [
      {|{"op":"admit","flow":{"id":500,"sigma":1,"rho":0.02,"peak":1,"route":[2,3],"deadline":900}}|};
      {|{"op":"admit","flow":{"id":501,"sigma":1,"rho":0.02,"peak":1,"route":[0,1],"deadline":0.001}}|};
      {|{"op":"query","flow":500}|};
      {|{"op":"teardown","flow":500}|};
    ]
  in
  List.iter
    (fun request ->
      let strip line =
        (* The engines legitimately differ in cone accounting; decisions
           and bounds must agree. *)
        match Sjson.parse line with
        | Sjson.Obj fields ->
            Sjson.render
              (Sjson.Obj
                 (List.filter
                    (fun (k, _) ->
                      k <> "cone_nodes" && k <> "reused_nodes")
                    fields))
        | v -> Sjson.render v
      in
      Alcotest.(check string)
        ("delta/full parity on " ^ request)
        (strip (Serve.handle_line full request))
        (strip (Serve.handle_line delta request)))
    requests

let suite =
  ( "serve",
    [
      test "admission: run is a fold of decide_one" test_run_is_fold_of_decide_one;
      test "admission: rejection reasons" test_rejection_reasons;
      test "admission: buffer budget rejection" test_buffer_violated_reason;
      test "delta: churn matches from-scratch bits" test_churn_determinism;
      test "delta: rejected admit rolls back bit-exactly" test_rollback_bit_exact;
      test "delta: decisions match decide_one" test_delta_matches_decide_one;
      test "delta: tail admit reuses out-of-cone state" test_tail_admit_reuses;
      test "sjson: deterministic render and round-trip" test_sjson_roundtrip;
      test "sjson: float bit round-trip" test_sjson_float_bits;
      test "sjson: parse errors" test_sjson_errors;
      test "protocol: golden transcript" test_golden_transcript;
      test "protocol: session loop" test_session_loop;
      test "protocol: handle_line is an exception barrier"
        test_handle_line_is_a_barrier;
      test "protocol: non-finite sentinels" test_unstable_sentinels;
      test "protocol: delta/full engine parity" test_full_engine_agrees;
    ] )

(* The incremental sweep engine must be invisible except for speed:
   memoized analyses and prefix-served sweep cells return the same bits
   as from-scratch computation, and Pwl.compact may move a curve only
   in its safe direction, by a bounded amount, down to a bounded
   segment count.  These are the guarantees the bench tables and the
   compaction Options knob rely on. *)

open Testutil

let with_incremental b f =
  let prev = Incremental.enabled () in
  Incremental.set_enabled b;
  Fun.protect ~finally:(fun () -> Incremental.set_enabled prev) f

(* ------------------------------------------------------------------ *)
(* Pwl.compact                                                         *)
(* ------------------------------------------------------------------ *)

let gen_eps = QCheck2.Gen.float_range 0.0 2.0
let gen_budget = QCheck2.Gen.int_range 2 6

let qtest_compact_budget =
  qtest ~count:200 "compact: unlimited eps reaches the segment budget"
    QCheck2.Gen.(pair gen_concave gen_budget)
    (fun (f, max_segs) ->
      let r = Pwl.compact ~dir:`Up ~eps:infinity ~max_segs f in
      List.length (Pwl.segments r) <= max_segs)

let qtest_compact_eps =
  qtest ~count:200 "compact: within eps of the input everywhere"
    QCheck2.Gen.(pair gen_concave gen_eps)
    (fun (f, eps) ->
      let r = Pwl.compact ~dir:`Up ~eps ~max_segs:1000 f in
      (* `Up never goes below f, so the sup distance is sup (r - f). *)
      Pwl.sup_diff r f <= eps +. (1e-9 *. (1. +. eps)))

let qtest_compact_up_safe =
  qtest ~count:200 "compact `Up: pointwise >= input (envelope-safe)"
    QCheck2.Gen.(pair gen_concave gen_eps)
    (fun (f, eps) ->
      let r = Pwl.compact ~dir:`Up ~eps ~max_segs:3 f in
      Pwl.sup_diff f r <= 1e-9
      && Pwl.value_at_zero r = Pwl.value_at_zero f
      && Pwl.final_slope r = Pwl.final_slope f)

let qtest_compact_down_safe =
  qtest ~count:200 "compact `Down: pointwise <= input (service-safe)"
    QCheck2.Gen.(pair gen_convex gen_eps)
    (fun (f, eps) ->
      let r = Pwl.compact ~dir:`Down ~eps ~max_segs:3 f in
      Pwl.sup_diff r f <= 1e-9
      && Pwl.value_at_zero r = Pwl.value_at_zero f
      && Pwl.final_slope r = Pwl.final_slope f)

let test_compact_exact () =
  (* A 4-piece concave envelope with a removable middle breakpoint. *)
  let f =
    Pwl.min_list
      [
        Pwl.affine ~y0:4. ~slope:1.;
        Pwl.affine ~y0:5. ~slope:0.8;
        Pwl.affine ~y0:8. ~slope:0.2;
      ]
  in
  let r = Pwl.compact ~dir:`Up ~eps:infinity ~max_segs:2 f in
  check_bool "budget met" true (List.length (Pwl.segments r) <= 2);
  check_bool "still above" true (Pwl.sup_diff f r <= 1e-12);
  approx "zero eps is the identity" 0.
    (Pwl.sup_diff (Pwl.compact ~dir:`Up ~eps:0. ~max_segs:1000 f) f)

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                        *)
(* ------------------------------------------------------------------ *)

let test_interning () =
  let mk () = Pwl.make [ (0., 2., 1.5); (3., 6.5, 0.25) ] in
  let a = mk () and b = mk () in
  check_bool "equal content is one physical value" true (a == b);
  Alcotest.(check int) "same uid" (Pwl.uid a) (Pwl.uid b);
  let c = Pwl.make [ (0., 2., 1.5); (3., 6.5, 0.5) ] in
  check_bool "distinct content, distinct uid" true (Pwl.uid c <> Pwl.uid a);
  let s = Pwl.intern_stats () in
  check_bool "live entries counted" true (s.Pwl.entries > 0);
  check_bool "duplicate construction hit" true (s.Pwl.hits > 0)

let test_intern_toggle () =
  let mk () = Pwl.make [ (0., 1., 1.); (2., 3., 0.5) ] in
  Pwl.set_intern_enabled false;
  Fun.protect ~finally:(fun () -> Pwl.set_intern_enabled true) @@ fun () ->
  let a = mk () and b = mk () in
  check_bool "no sharing when disabled" true (a != b);
  check_bool "uids still unique" true (Pwl.uid a <> Pwl.uid b);
  check_bool "values still equal" true (Pwl.equal a b)

(* ------------------------------------------------------------------ *)
(* Memoized analyses                                                   *)
(* ------------------------------------------------------------------ *)

let exact_delays name want got =
  List.iter2
    (fun (f1, d1) (f2, d2) ->
      Alcotest.(check int) (name ^ ": flow") f1 f2;
      if
        Int64.bits_of_float d1 <> Int64.bits_of_float d2
      then Alcotest.failf "%s: flow %d: %.17g <> %.17g" name f1 d1 d2)
    want got

let test_memo_transparent () =
  let net = (Tandem.make ~n:5 ~utilization:0.7 ()).network in
  let run () =
    ( Decomposed.all_flow_delays (Decomposed.analyze net),
      Integrated.all_flow_delays
        (Integrated.analyze ~strategy:(Pairing.Along_route 0) net) )
  in
  let dd_off, di_off = with_incremental false run in
  let dd_on, di_on = with_incremental true run in
  exact_delays "decomposed" dd_off dd_on;
  exact_delays "integrated" di_off di_on

let test_memo_reuse () =
  with_incremental true @@ fun () ->
  Incremental.clear ();
  let before = (Incremental.stats ()).Incremental.reuse in
  let net = (Tandem.make ~n:3 ~utilization:0.5 ()).network in
  let a = Decomposed.analyze net in
  (* Structurally identical rebuild: must be served from the memo. *)
  let net' = (Tandem.make ~n:3 ~utilization:0.5 ()).network in
  let b = Decomposed.analyze net' in
  check_bool "second analysis reused" true
    ((Incremental.stats ()).Incremental.reuse > before);
  exact_delays "same bounds"
    (Decomposed.all_flow_delays a)
    (Decomposed.all_flow_delays b)

(* ------------------------------------------------------------------ *)
(* Sweep engine: prefix reads = scratch analyses, bit for bit          *)
(* ------------------------------------------------------------------ *)

let exact_cell n u name x y =
  if
    Int64.bits_of_float x <> Int64.bits_of_float y
    && not (Float.is_nan x && Float.is_nan y)
  then Alcotest.failf "n=%d U=%g %s: %.17g <> %.17g" n u name x y

let test_sweep_prefix_identity () =
  (* Odd hop count included to exercise the per-cell fallback. *)
  let hops = [ 2; 3; 4 ] and loads = [ 0.3; 0.6; 0.85 ] in
  let grid b =
    with_incremental b (fun () ->
        Sweep_engine.tandem_grid ~hops ~loads ())
  in
  let on = grid true and off = grid false in
  let cells =
    List.concat_map (fun u -> List.map (fun n -> (u, n)) hops) loads
  in
  List.iter2
    (fun (u, n) ((a : Engine.comparison), b) ->
      exact_cell n u "decomposed" a.decomposed b.Engine.decomposed;
      exact_cell n u "service_curve" a.service_curve b.service_curve;
      exact_cell n u "integrated" a.integrated b.integrated;
      exact_cell n u "fifo_theta" a.fifo_theta b.fifo_theta)
    cells (List.combine on off)

let test_sweep_saturated_load () =
  (* U = 0.9 with sigma high enough to saturate nothing: just check the
     grid agrees with direct compare_all at the largest prefix too. *)
  let u = 0.9 and n = 4 in
  let want =
    with_incremental false (fun () ->
        let t = Tandem.make ~n ~utilization:u ~sigma:1. ~peak:1. () in
        Engine.compare_all ~with_theta:false
          ~strategy:(Pairing.Along_route 0) t.network 0)
  in
  let got =
    with_incremental true (fun () ->
        match Sweep_engine.tandem_grid ~hops:[ 2; n ] ~loads:[ u ] () with
        | [ _; c ] -> c
        | _ -> Alcotest.fail "expected two cells")
  in
  exact_cell n u "decomposed" want.Engine.decomposed got.Engine.decomposed;
  exact_cell n u "service_curve" want.service_curve got.service_curve;
  exact_cell n u "integrated" want.integrated got.integrated

(* Compaction loosens bounds only upward, and only when enabled. *)
let test_compaction_bound_direction () =
  let net = (Tandem.make ~n:6 ~utilization:0.8 ()).network in
  let exact =
    with_incremental false (fun () ->
        Decomposed.flow_delay (Decomposed.analyze net) 0)
  in
  List.iter
    (fun eps ->
      let options = Options.with_compaction ~max_segs:8 eps Options.default in
      let d =
        with_incremental false (fun () ->
            Decomposed.flow_delay (Decomposed.analyze ~options net) 0)
      in
      check_bool
        (Printf.sprintf "eps=%g keeps a valid (only looser) bound" eps)
        true
        (d >= exact -. 1e-9);
      check_bool
        (Printf.sprintf "eps=%g stays within a sane factor" eps)
        true
        (d <= exact *. 2.))
    [ 0.01; 0.1; 0.5 ]

(* On a multi-piece concave source (where there is something to prune),
   compaction must actually prune the propagated envelopes while the
   bound stays valid.  The paper's token buckets have <= 3 segments, so
   on those grids the knob is the identity — this pins the general
   case. *)
let test_compaction_prunes () =
  let alpha =
    Pwl.min_list
      [
        Pwl.affine ~y0:0.5 ~slope:2.;
        Pwl.affine ~y0:1.5 ~slope:1.;
        Pwl.affine ~y0:3. ~slope:0.5;
        Pwl.affine ~y0:6. ~slope:0.1;
      ]
  in
  let net =
    Network.make
      ~servers:
        (List.init 3 (fun id -> Server.make ~id ~rate:1. ()))
      ~flows:
        [ Flow.make ~id:0 ~arrival:(Arrival.of_curve alpha) ~route:[ 0; 1; 2 ] () ]
  in
  with_incremental false @@ fun () ->
  let exact = Decomposed.analyze net in
  let options = Options.with_compaction ~max_segs:2 infinity Options.default in
  let pruned = Decomposed.analyze ~options net in
  let segs t sid =
    List.length (Pwl.segments (Decomposed.envelope_at t ~flow:0 ~server:sid))
  in
  check_bool "exact propagation keeps the breakpoints" true (segs exact 1 > 2);
  Alcotest.(check int) "compacted envelope at hop 2 hits the budget" 2
    (segs pruned 1);
  let d_exact = Decomposed.flow_delay exact 0 in
  let d_pruned = Decomposed.flow_delay pruned 0 in
  check_bool "pruned bound still a valid upper bound" true
    (d_pruned >= d_exact -. 1e-9)

(* Key-coverage audit: every process input that can change a memoized
   result must be folded into net_key — the compaction knobs (eps and
   max_segs), the pairing strategy, and the curve-backend tag.  A miss
   here is silent: the memo would replay a value computed under
   different settings. *)
let test_net_key_coverage () =
  with_incremental true (fun () ->
      let net = (Tandem.make ~n:2 ~utilization:0.5 ()).network in
      let tbl : int Incremental.table = Incremental.table () in
      let calls = ref 0 in
      let get key =
        ignore
          (Incremental.memoize tbl key (fun () ->
               incr calls;
               !calls))
      in
      get (Incremental.net_key ~options:Options.default net);
      get (Incremental.net_key ~options:Options.default net);
      Alcotest.(check int) "identical inputs hit the memo" 1 !calls;
      get
        (Incremental.net_key
           ~options:(Options.with_compaction 0.25 Options.default)
           net);
      Alcotest.(check int) "compaction eps is keyed" 2 !calls;
      get
        (Incremental.net_key
           ~options:(Options.with_compaction ~max_segs:5 0.25 Options.default)
           net);
      Alcotest.(check int) "compaction max_segs is keyed" 3 !calls;
      get
        (Incremental.net_key ~options:Options.default
           ~strategy:(Pairing.Along_route 0) net);
      Alcotest.(check int) "pairing strategy is keyed" 4 !calls;
      let prev = Curve_repr.backend () in
      Fun.protect
        ~finally:(fun () -> Curve_repr.set_backend prev)
        (fun () ->
          Curve_repr.set_backend
            (match prev with `Pwl -> `Upp | `Upp -> `Pwl);
          get (Incremental.net_key ~options:Options.default net);
          Alcotest.(check int) "curve backend is keyed" 5 !calls))

let suite =
  ( "incremental",
    [
      qtest_compact_budget;
      qtest_compact_eps;
      qtest_compact_up_safe;
      qtest_compact_down_safe;
      test "compact on a concrete envelope" test_compact_exact;
      test "hash-consing interns equal curves" test_interning;
      test "interning can be disabled" test_intern_toggle;
      test "memoized analyses are transparent" test_memo_transparent;
      test "net_key covers every result-changing input"
        test_net_key_coverage;
      test "structural rebuild hits the memo" test_memo_reuse;
      test "sweep grid = scratch grid, bit for bit" test_sweep_prefix_identity;
      test "largest prefix matches compare_all" test_sweep_saturated_load;
      test "compaction only loosens bounds" test_compaction_bound_direction;
      test "compaction prunes propagated envelopes" test_compaction_prunes;
    ] )

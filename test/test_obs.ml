(* Tests for the observability subsystem (netcalc.obs): counter
   monotonicity and reset, zero-cost disabled mode, LIFO span nesting,
   the trace ring buffer, and the Chrome trace-event JSON exporter. *)

open Testutil

(* Each test starts from a clean, disabled state and leaves it that
   way: the rest of the suite must never run instrumented. *)
let fresh f () =
  Obs.enable ();
  Metrics.reset ();
  Trace.clear ();
  Fun.protect ~finally:(fun () ->
      Obs.disable ();
      Metrics.reset ();
      Trace.clear ())
    f

let test_counter_monotone () =
  let c = Metrics.counter "test.ctr" in
  let v0 = Metrics.value c in
  Alcotest.(check int) "starts at zero" 0 v0;
  Prof.count c;
  Prof.count c;
  Alcotest.(check int) "incremented" 2 (Metrics.value c);
  Prof.count_n c 3;
  Alcotest.(check int) "bulk add" 5 (Metrics.value c);
  check_bool "same name, same counter" true
    (Metrics.counter "test.ctr" == c);
  (try
     Metrics.add c (-1);
     Alcotest.fail "negative add must raise"
   with Invalid_argument _ -> ());
  Metrics.reset ();
  Alcotest.(check int) "reset to zero" 0 (Metrics.value c);
  Prof.count c;
  Alcotest.(check int) "counter survives reset" 1 (Metrics.value c)

let test_dist () =
  let d = Metrics.dist "test.dist" in
  Prof.observe d 2.;
  Prof.observe d 6.;
  Prof.observe d 4.;
  let st = Metrics.dist_stats d in
  Alcotest.(check int) "count" 3 st.Metrics.count;
  approx "sum" 12. st.Metrics.sum;
  approx "mean" 4. st.Metrics.mean;
  approx "min" 2. st.Metrics.dmin;
  approx "max" 6. st.Metrics.dmax;
  Metrics.reset ();
  Alcotest.(check int) "reset empties" 0 (Metrics.dist_stats d).Metrics.count

let test_disabled_noop () =
  Obs.disable ();
  let c = Metrics.counter "test.disabled.ctr" in
  let d = Metrics.dist "test.disabled.dist" in
  let before = Metrics.value c in
  Prof.count c;
  Prof.count_n c 10;
  Prof.observe d 1.;
  let ran = ref false in
  let r = Prof.span "test.disabled.span" (fun () -> ran := true; 42) in
  Alcotest.(check int) "span still runs the body" 42 r;
  check_bool "body executed" true !ran;
  Alcotest.(check int) "no counter drift" before (Metrics.value c);
  Alcotest.(check int) "no dist drift" 0 (Metrics.dist_stats d).Metrics.count;
  Alcotest.(check int) "no spans recorded" 0 (List.length (Trace.events ()))

let test_span_lifo () =
  let r =
    Prof.span "outer" (fun () ->
        Prof.span "inner" (fun () -> Alcotest.(check int) "depth inside" 2 (Trace.depth ()); 7))
  in
  Alcotest.(check int) "result threads through" 7 r;
  Alcotest.(check int) "all spans closed" 0 (Trace.depth ());
  match Trace.events () with
  | [ inner; outer ] ->
      (* Completion order is LIFO: the inner span closes first. *)
      Alcotest.(check string) "inner closes first" "inner" inner.Trace.name;
      Alcotest.(check string) "outer closes last" "outer" outer.Trace.name;
      Alcotest.(check int) "inner depth" 1 inner.Trace.depth;
      Alcotest.(check int) "outer depth" 0 outer.Trace.depth;
      check_bool "inner starts after outer" true
        (inner.Trace.ts_us >= outer.Trace.ts_us);
      check_bool "inner contained in outer" true
        (inner.Trace.ts_us +. inner.Trace.dur_us
         <= outer.Trace.ts_us +. outer.Trace.dur_us +. 1e-3)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_span_exception_safe () =
  (try
     Prof.span "raises" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span closed on exception" 0 (Trace.depth ());
  Alcotest.(check int) "event still recorded" 1
    (List.length (Trace.events ()));
  try
    Trace.end_span ();
    Alcotest.fail "end_span with no open span must raise"
  with Invalid_argument _ -> ()

let test_ring_eviction () =
  Trace.set_capacity 4;
  Fun.protect ~finally:(fun () -> Trace.set_capacity 65536) @@ fun () ->
  for i = 1 to 10 do
    Prof.span (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  let evs = Trace.events () in
  Alcotest.(check int) "ring keeps capacity" 4 (List.length evs);
  Alcotest.(check int) "evicted count" 6 (Trace.dropped ());
  Alcotest.(check (list string)) "newest survive"
    [ "s7"; "s8"; "s9"; "s10" ]
    (List.map (fun e -> e.Trace.name) evs);
  (* Aggregates are exact even though the ring dropped events. *)
  Alcotest.(check int) "aggregates unaffected by eviction" 10
    (List.length (Trace.aggregates ()))

(* A deliberately small JSON parser: enough to check that the exporter
   emits structurally valid JSON in the Chrome trace-event dialect
   (object with a traceEvents array of complete "X" events). *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else raise (Bad "eof") in
    let advance () = incr pos in
    let rec skip_ws () =
      if !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      then (advance (); skip_ws ())
    in
    let expect c =
      skip_ws ();
      if peek () <> c then raise (Bad (Printf.sprintf "expected %c at %d" c !pos));
      advance ()
    in
    let literal word v =
      if !pos + String.length word <= n
         && String.sub s !pos (String.length word) = word
      then (pos := !pos + String.length word; v)
      else raise (Bad word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance (); Buffer.contents b
        | '\\' ->
            advance ();
            (match peek () with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                for _ = 1 to 4 do advance () done;
                Buffer.add_char b '?'
            | c -> raise (Bad (Printf.sprintf "escape %c" c)));
            advance ();
            go ()
        | c -> Buffer.add_char b c; advance (); go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let numchar c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
        || c = 'E'
      in
      while !pos < n && numchar s.[!pos] do advance () done;
      if !pos = start then raise (Bad "number");
      Num (float_of_string (String.sub s start (!pos - start)))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
          advance ();
          skip_ws ();
          if peek () = '}' then (advance (); Obj [])
          else
            let rec members acc =
              let key = (skip_ws (); parse_string ()) in
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' -> advance (); members ((key, v) :: acc)
              | '}' -> advance (); Obj (List.rev ((key, v) :: acc))
              | c -> raise (Bad (Printf.sprintf "in object: %c" c))
            in
            members []
      | '[' ->
          advance ();
          skip_ws ();
          if peek () = ']' then (advance (); List [])
          else
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' -> advance (); elements (v :: acc)
              | ']' -> advance (); List (List.rev (v :: acc))
              | c -> raise (Bad (Printf.sprintf "in array: %c" c))
            in
            elements []
      | '"' -> Str (parse_string ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v
end

let test_chrome_json () =
  Prof.span "alpha" (fun () -> Prof.span "beta \"quoted\",\n" (fun () -> ()));
  let json = Trace.to_chrome_json () in
  let doc =
    try Json.parse json
    with Json.Bad msg -> Alcotest.failf "invalid JSON (%s): %s" msg json
  in
  match doc with
  | Json.Obj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (Json.List evs) ->
          Alcotest.(check int) "two events" 2 (List.length evs);
          List.iter
            (fun ev ->
              match ev with
              | Json.Obj f ->
                  (match List.assoc_opt "name" f with
                  | Some (Json.Str _) -> ()
                  | _ -> Alcotest.fail "event missing string name");
                  (match List.assoc_opt "ph" f with
                  | Some (Json.Str "X") -> ()
                  | _ -> Alcotest.fail "event ph must be X");
                  (match (List.assoc_opt "ts" f, List.assoc_opt "dur" f) with
                  | Some (Json.Num ts), Some (Json.Num dur) ->
                      check_bool "nonnegative ts" true (ts >= 0.);
                      check_bool "nonnegative dur" true (dur >= 0.)
                  | _ -> Alcotest.fail "event needs numeric ts and dur")
              | _ -> Alcotest.fail "event is not an object")
            evs
      | _ -> Alcotest.fail "missing traceEvents array")
  | _ -> Alcotest.fail "top level is not an object"

let test_metrics_table () =
  let c = Metrics.counter "test.table.ctr" in
  Prof.count c;
  let d = Metrics.dist "test.table.dist" in
  Prof.observe d 3.5;
  let s = Table.to_string (Metrics.to_table ()) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "counter listed" true (contains s "test.table.ctr");
  check_bool "dist listed" true (contains s "test.table.dist");
  (* Zero-count metrics are hidden by default but kept with ~all. *)
  Metrics.reset ();
  let hidden = Table.to_string (Metrics.to_table ()) in
  check_bool "zero rows hidden" false (contains hidden "test.table.ctr");
  let kept = Table.to_string (Metrics.to_table ~all:true ()) in
  check_bool "zero rows kept with ~all" true (contains kept "test.table.ctr")

let suite =
  ( "obs",
    [
      test "counters are monotone and reset" (fresh test_counter_monotone);
      test "distributions" (fresh test_dist);
      test "disabled mode is a no-op" (fresh test_disabled_noop);
      test "nested spans close in LIFO order" (fresh test_span_lifo);
      test "spans close on exceptions" (fresh test_span_exception_safe);
      test "ring buffer evicts oldest" (fresh test_ring_eviction);
      test "chrome trace JSON is valid" (fresh test_chrome_json);
      test "metrics table rendering" (fresh test_metrics_table);
    ] )

let () =
  Alcotest.run "netcalc"
    [
      Test_util.suite;
      Test_obs.suite;
      Test_pwl.suite;
      Test_pwl_deep.suite;
      Test_pwl_differential.suite;
      Test_curves.suite;
      Test_sched.suite;
      Test_topology.suite;
      Test_analysis.suite;
      Test_sim.suite;
      Test_fluid.suite;
      Test_fluid_envelopes.suite;
      Test_integrated_sp.suite;
      Test_fixed_point.suite;
      Test_backlog.suite;
      Test_scenario.suite;
      Test_report.suite;
      Test_edge_cases.suite;
      Test_heterogeneous.suite;
      Test_edf_allocation.suite;
      Test_determinism.suite;
      Test_par.suite;
      Test_incremental.suite;
      Test_lint.suite;
    ]
